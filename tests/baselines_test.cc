#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/cracking.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

TEST(NonSegmentedTest, AlwaysScansWholeColumn) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(10000, 100000, 1);
  NonSegmented<int32_t> strat(data, ValueRange(0, 100000), &space);
  for (int i = 0; i < 5; ++i) {
    auto ex = strat.RunRange(ValueRange(i * 1000.0, i * 1000.0 + 500));
    EXPECT_EQ(ex.read_bytes, 40000u);
    EXPECT_EQ(ex.write_bytes, 0u);
    EXPECT_EQ(ex.segments_scanned, 1u);
  }
  EXPECT_EQ(strat.Segments().size(), 1u);
  EXPECT_EQ(strat.Name(), "NoSegm");
}

TEST(NonSegmentedTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(5000, 50000, 2);
  NonSegmented<int32_t> strat(data, ValueRange(0, 50000), &space);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double lo = rng.NextUniform(0, 45000);
    const ValueRange q(lo, lo + 2000);
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    EXPECT_EQ(SortedValues(result), BruteForce(data, q));
  }
}

TEST(StaticPartitionTest, ScansOnlyOverlappingParts) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(10000, 100000, 4);  // 40KB
  StaticPartition<int32_t> strat(data, ValueRange(0, 100000), 10, &space);
  EXPECT_EQ(strat.Segments().size(), 10u);
  // Query within one part.
  auto ex = strat.RunRange(ValueRange(12000, 18000));
  EXPECT_EQ(ex.segments_scanned, 1u);
  EXPECT_LT(ex.read_bytes, 6000u);
  // Query straddling two parts.
  auto ex2 = strat.RunRange(ValueRange(18000, 22000));
  EXPECT_EQ(ex2.segments_scanned, 2u);
  EXPECT_EQ(strat.Name(), "Static10");
}

TEST(StaticPartitionTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(5000, 50000, 5);
  StaticPartition<int32_t> strat(data, ValueRange(0, 50000), 7, &space);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const double lo = rng.NextUniform(0, 40000);
    const ValueRange q(lo, lo + rng.NextUniform(10, 10000));
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q));
  }
}

TEST(StaticPartitionTest, NeverReorganizes) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(5000, 50000, 7);
  StaticPartition<int32_t> strat(data, ValueRange(0, 50000), 4, &space);
  UniformRangeGenerator gen(ValueRange(0, 50000), 0.1, 8);
  for (int i = 0; i < 100; ++i) {
    auto ex = strat.RunRange(gen.Next().range);
    EXPECT_EQ(ex.write_bytes, 0u);
    EXPECT_EQ(ex.splits, 0u);
  }
  EXPECT_EQ(strat.Segments().size(), 4u);
}

TEST(PositionalBlocksTest, ScansAllBlocksWithoutZoneMaps) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(16384, 100000, 9);  // 64KB
  PositionalBlocks<int32_t> strat(data, ValueRange(0, 100000), 8 * kKiB, &space);
  auto ex = strat.RunRange(ValueRange(10, 20));
  EXPECT_EQ(ex.segments_scanned, 8u);  // 64KB / 8KB
  EXPECT_EQ(ex.read_bytes, 65536u);    // everything, always
}

TEST(PositionalBlocksTest, ZoneMapsHelpOnlyClusteredData) {
  SegmentSpace space;
  // Uniform data: zone maps cannot skip anything.
  auto data = MakeUniformIntColumn(16384, 100000, 10);
  PositionalBlocks<int32_t> uniform(data, ValueRange(0, 100000), 8 * kKiB,
                                    &space, /*use_zone_maps=*/true);
  auto ex = uniform.RunRange(ValueRange(10, 500));
  EXPECT_EQ(ex.segments_scanned, 8u);

  // Sorted (perfectly clustered) data: zone maps skip almost everything.
  std::sort(data.begin(), data.end());
  SegmentSpace space2;
  PositionalBlocks<int32_t> clustered(data, ValueRange(0, 100000), 8 * kKiB,
                                      &space2, /*use_zone_maps=*/true);
  auto ex2 = clustered.RunRange(ValueRange(10, 500));
  EXPECT_LT(ex2.segments_scanned, 3u);
}

TEST(PositionalBlocksTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(5000, 50000, 11);
  PositionalBlocks<int32_t> strat(data, ValueRange(0, 50000), 4 * kKiB, &space);
  Rng rng(12);
  for (int i = 0; i < 30; ++i) {
    const double lo = rng.NextUniform(0, 45000);
    const ValueRange q(lo, lo + 3000);
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q));
  }
}

TEST(CrackingTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 13);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 100000), &space);
  Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(10, 20000));
    std::vector<int32_t> result;
    auto ex = strat.RunRange(q, &result);
    ASSERT_EQ(ex.result_count, result.size());
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
  }
}

TEST(CrackingTest, PiecesGrowByAtMostTwoPerQuery) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(10000, 100000, 15);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 100000), &space);
  size_t prev = strat.NumPieces();
  EXPECT_EQ(prev, 1u);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.05, 16);
  for (int i = 0; i < 50; ++i) {
    strat.RunRange(gen.Next().range);
    const size_t now = strat.NumPieces();
    EXPECT_LE(now, prev + 2);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(CrackingTest, TouchedBytesShrinkOverTime) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 17);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 1000000), &space);
  UniformRangeGenerator gen(ValueRange(0, 1000000), 0.01, 18);
  uint64_t first = strat.RunRange(gen.Next().range).read_bytes;
  uint64_t late = 0;
  for (int i = 0; i < 300; ++i) late = strat.RunRange(gen.Next().range).read_bytes;
  EXPECT_GT(first, 300000u);  // first query cracks the whole column
  EXPECT_LT(late, first / 4);
}

TEST(CrackingTest, RepeatedQueryIsFree) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(10000, 100000, 19);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 100000), &space);
  const ValueRange q(20000, 30000);
  strat.RunRange(q);
  auto ex = strat.RunRange(q);  // bounds already cracked
  EXPECT_EQ(ex.write_bytes, 0u);
  EXPECT_EQ(ex.splits, 0u);
  // Only the contiguous result region is read.
  EXPECT_LT(ex.read_bytes, 6000u);
}

TEST(CrackingTest, FootprintIsDoubleTheColumn) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 20);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 10000), &space);
  EXPECT_EQ(strat.Footprint().materialized_bytes, 8000u);  // column + replica
}

TEST(CrackingTest, SegmentsReflectCrackerIndex) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 21);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 10000), &space);
  strat.RunRange(ValueRange(2000, 7000));
  auto segs = strat.Segments();
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].range, ValueRange(0, 2000));
  EXPECT_EQ(segs[1].range, ValueRange(2000, 7000));
  EXPECT_EQ(segs[2].range, ValueRange(7000, 10000));
  uint64_t total = 0;
  for (const auto& s : segs) total += s.count;
  EXPECT_EQ(total, 1000u);
}

TEST(CrackingTest, DomainEdgeQueries) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 22);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 10000), &space);
  std::vector<int32_t> all;
  strat.RunRange(ValueRange(0, 10000), &all);
  EXPECT_EQ(all.size(), 1000u);
  std::vector<int32_t> none;
  auto ex = strat.RunRange(ValueRange(10000, 20000), &none);
  EXPECT_EQ(ex.result_count, 0u);
}

}  // namespace
}  // namespace socs
