#include <gtest/gtest.h>

#include "common/units.h"
#include "core/apm.h"
#include "core/gaussian_dice.h"

namespace socs {
namespace {

SplitGeometry Geo(uint64_t seg, uint64_t total, uint64_t left, uint64_t mid,
                  uint64_t right) {
  SplitGeometry g;
  g.seg_bytes = seg;
  g.total_bytes = total;
  g.left_bytes = left;
  g.mid_bytes = mid;
  g.right_bytes = right;
  g.has_left = left > 0;
  g.has_right = right > 0;
  return g;
}

// --- Gaussian Dice ----------------------------------------------------------

TEST(GaussianDiceTest, ProbabilityPeaksAtHalf) {
  EXPECT_DOUBLE_EQ(GaussianDice::DecisionProbability(0.5, 0.3), 1.0);
  EXPECT_GT(GaussianDice::DecisionProbability(0.5, 0.1),
            GaussianDice::DecisionProbability(0.4, 0.1));
  EXPECT_GT(GaussianDice::DecisionProbability(0.4, 0.1),
            GaussianDice::DecisionProbability(0.1, 0.1));
}

TEST(GaussianDiceTest, ProbabilityIsSymmetricAroundHalf) {
  for (double d : {0.1, 0.2, 0.3}) {
    EXPECT_NEAR(GaussianDice::DecisionProbability(0.5 - d, 0.2),
                GaussianDice::DecisionProbability(0.5 + d, 0.2), 1e-12);
  }
}

TEST(GaussianDiceTest, LargerSegmentsSplitMoreEasily) {
  // sigma = seg/total: big segments have flat curves -> higher probability
  // for off-center cuts (the paper's "preference to selections splitting
  // relatively large segments").
  EXPECT_GT(GaussianDice::DecisionProbability(0.1, 1.0),
            GaussianDice::DecisionProbability(0.1, 0.05));
}

TEST(GaussianDiceTest, ZeroSigmaNeverSplits) {
  EXPECT_DOUBLE_EQ(GaussianDice::DecisionProbability(0.3, 0.0), 0.0);
}

TEST(GaussianDiceTest, QueryCoveringSegmentNeverSplits) {
  GaussianDice gd(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gd.Decide(Geo(1000, 10000, 0, 1000, 0)), SplitAction::kKeep);
  }
}

TEST(GaussianDiceTest, HalfSplitOfWholeColumnAlmostAlwaysSplits) {
  // x = 0.5 => O(x) = 1: every draw r < 1 splits.
  GaussianDice gd(2);
  int splits = 0;
  for (int i = 0; i < 200; ++i) {
    splits += gd.Decide(Geo(1000, 1000, 500, 500, 0)) ==
              SplitAction::kSplitAtBounds;
  }
  EXPECT_EQ(splits, 200);
}

TEST(GaussianDiceTest, TinyCutOfSmallSegmentRarelySplits) {
  GaussianDice gd(3);
  int splits = 0;
  for (int i = 0; i < 1000; ++i) {
    // x = 0.01, sigma = 0.01: probability ~ exp(-0.49^2/0.0002) ~ 0.
    splits += gd.Decide(Geo(1000, 100000, 0, 10, 990)) ==
              SplitAction::kSplitAtBounds;
  }
  EXPECT_EQ(splits, 0);
}

TEST(GaussianDiceTest, SplitRateTracksProbability) {
  GaussianDice gd(4);
  // x = 0.4, sigma = 0.5 -> O(x) = exp(-0.01/0.5) ~ 0.9802
  const double expected = GaussianDice::DecisionProbability(0.4, 0.5);
  int splits = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    splits += gd.Decide(Geo(5000, 10000, 3000, 2000, 0)) ==
              SplitAction::kSplitAtBounds;
  }
  EXPECT_NEAR(static_cast<double>(splits) / n, expected, 0.02);
}

TEST(GaussianDiceTest, CloneReproducesSequence) {
  GaussianDice gd(99);
  auto clone = gd.Clone();
  SplitGeometry g = Geo(1000, 2000, 300, 400, 300);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gd.Decide(g), clone->Decide(g));
  }
}

TEST(GaussianDiceTest, NameAndBounds) {
  GaussianDice gd;
  EXPECT_EQ(gd.Name(), "GD");
  EXPECT_EQ(gd.min_bytes(), 0u);
  EXPECT_EQ(gd.max_bytes(), UINT64_MAX);
}

// --- APM --------------------------------------------------------------------

class ApmRuleTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kMin = 3 * kKiB;
  static constexpr uint64_t kMax = 12 * kKiB;
  Apm apm_{kMin, kMax};
  static constexpr uint64_t kTotal = 400 * kKiB;
};

TEST_F(ApmRuleTest, Rule1SmallSegmentsNeverSplit) {
  EXPECT_EQ(apm_.Decide(Geo(kMin - 1, kTotal, 1000, 1000, 1070)),
            SplitAction::kKeep);
}

TEST_F(ApmRuleTest, Rule2SplitsWhenAllPiecesLargeEnough) {
  EXPECT_EQ(apm_.Decide(Geo(12 * kKiB, kTotal, 4 * kKiB, 4 * kKiB, 4 * kKiB)),
            SplitAction::kSplitAtBounds);
}

TEST_F(ApmRuleTest, Rule2TwoPieceSplit) {
  SplitGeometry g = Geo(10 * kKiB, kTotal, 0, 5 * kKiB, 5 * kKiB);
  EXPECT_EQ(apm_.Decide(g), SplitAction::kSplitAtBounds);
}

TEST_F(ApmRuleTest, Rule3SmallPieceInLargeSegmentSplitsBounded) {
  // A point-ish query chips 1KB out of a 20KB segment: piece < Mmin but
  // segment > Mmax -> bounded split.
  EXPECT_EQ(apm_.Decide(Geo(20 * kKiB, kTotal, 10 * kKiB, kKiB, 9 * kKiB)),
            SplitAction::kSplitBounded);
}

TEST_F(ApmRuleTest, SmallPieceInMidSizeSegmentKeeps) {
  // Segment between Mmin and Mmax: a too-small piece means no split at all.
  EXPECT_EQ(apm_.Decide(Geo(10 * kKiB, kTotal, 5 * kKiB, kKiB, 4 * kKiB)),
            SplitAction::kKeep);
}

TEST_F(ApmRuleTest, CoveringQueryKeeps) {
  EXPECT_EQ(apm_.Decide(Geo(20 * kKiB, kTotal, 0, 20 * kKiB, 0)),
            SplitAction::kKeep);
}

TEST_F(ApmRuleTest, DeterministicAcrossCalls) {
  SplitGeometry g = Geo(20 * kKiB, kTotal, 10 * kKiB, kKiB, 9 * kKiB);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(apm_.Decide(g), SplitAction::kSplitBounded);
  }
}

TEST_F(ApmRuleTest, NameEncodesBounds) {
  EXPECT_EQ(apm_.Name(), "APM 3.0KB-12.0KB");
  EXPECT_EQ(apm_.min_bytes(), kMin);
  EXPECT_EQ(apm_.max_bytes(), kMax);
}

TEST_F(ApmRuleTest, CloneKeepsBounds) {
  auto c = apm_.Clone();
  EXPECT_EQ(c->min_bytes(), kMin);
  EXPECT_EQ(c->max_bytes(), kMax);
  EXPECT_EQ(c->Name(), apm_.Name());
}

// Parameterized sweep: decisions respect the Mmin boundary exactly.
class ApmBoundarySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApmBoundarySweep, MinPieceBoundaryIsExact) {
  const uint64_t piece = GetParam();
  Apm apm(4096, 16384);
  // Segment of 3 * piece cut into three equal pieces.
  SplitGeometry g = Geo(3 * piece, 1 << 20, piece, piece, piece);
  const SplitAction a = apm.Decide(g);
  if (3 * piece < 4096) {
    EXPECT_EQ(a, SplitAction::kKeep);  // rule 1
  } else if (piece >= 4096) {
    EXPECT_EQ(a, SplitAction::kSplitAtBounds);  // rule 2
  } else if (3 * piece > 16384) {
    EXPECT_EQ(a, SplitAction::kSplitBounded);  // rule 3
  } else {
    EXPECT_EQ(a, SplitAction::kKeep);
  }
}

INSTANTIATE_TEST_SUITE_P(Boundary, ApmBoundarySweep,
                         ::testing::Values(512, 1365, 4095, 4096, 5461, 5462,
                                           8192, 16384));

TEST(SplitGeometryTest, Helpers) {
  SplitGeometry g = Geo(100, 1000, 20, 30, 50);
  EXPECT_FALSE(g.QueryCoversSegment());
  EXPECT_EQ(g.MinPieceBytes(), 20u);
  EXPECT_EQ(g.NumPieces(), 3);
  SplitGeometry cover = Geo(100, 1000, 0, 100, 0);
  EXPECT_TRUE(cover.QueryCoversSegment());
  EXPECT_EQ(cover.NumPieces(), 1);
}

TEST(SplitActionTest, Names) {
  EXPECT_STREQ(SplitActionName(SplitAction::kKeep), "keep");
  EXPECT_STREQ(SplitActionName(SplitAction::kSplitAtBounds), "split-at-bounds");
  EXPECT_STREQ(SplitActionName(SplitAction::kSplitBounded), "split-bounded");
}

}  // namespace
}  // namespace socs
