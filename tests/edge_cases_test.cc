// Edge cases and failure injection across the strategies: degenerate data
// distributions (constant, sorted, single-value, empty), boundary queries,
// and pathological workloads. A production column store must not fall over
// on any of these.
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/gaussian_dice.h"
#include "core/non_segmented.h"
#include "core/static_partition.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

std::unique_ptr<SegmentationModel> SmallApm() {
  return std::make_unique<Apm>(64, 256);
}

TEST(EdgeCases, EmptyColumnSegmentation) {
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat({}, ValueRange(0, 100), SmallApm(), &space);
  std::vector<int32_t> result;
  auto ex = strat.RunRange(ValueRange(10, 50), &result);
  EXPECT_EQ(ex.result_count, 0u);
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(strat.Footprint().materialized_bytes, 0u);
}

TEST(EdgeCases, EmptyColumnReplication) {
  SegmentSpace space;
  AdaptiveReplication<int32_t> strat({}, ValueRange(0, 100), SmallApm(), &space);
  auto ex = strat.RunRange(ValueRange(10, 50));
  EXPECT_EQ(ex.result_count, 0u);
  EXPECT_TRUE(strat.tree().Validate().ok());
}

TEST(EdgeCases, EmptyColumnCracking) {
  SegmentSpace space;
  CrackingColumn<int32_t> strat({}, ValueRange(0, 100), &space);
  auto ex = strat.RunRange(ValueRange(10, 50));
  EXPECT_EQ(ex.result_count, 0u);
}

TEST(EdgeCases, SingleValueColumn) {
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat({42}, ValueRange(0, 100), SmallApm(),
                                      &space);
  std::vector<int32_t> hit;
  strat.RunRange(ValueRange(42, 43), &hit);
  ASSERT_EQ(hit.size(), 1u);
  std::vector<int32_t> miss;
  strat.RunRange(ValueRange(43, 100), &miss);
  EXPECT_TRUE(miss.empty());
  EXPECT_TRUE(strat.index().Validate().ok());
}

TEST(EdgeCases, AllValuesEqualNeverFragments) {
  // A constant column: every split attempt would put everything on one side;
  // the strategies must not create empty segments or loop.
  SegmentSpace space;
  std::vector<int32_t> data(50000, 7);  // 200KB of the value 7
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100),
                                      std::make_unique<Apm>(kKiB, 4 * kKiB),
                                      &space);
  for (int i = 0; i < 50; ++i) {
    std::vector<int32_t> result;
    strat.RunRange(ValueRange(5, 10), &result);
    ASSERT_EQ(result.size(), 50000u);
    ASSERT_TRUE(strat.index().Validate().ok());
  }
  for (int i = 0; i < 50; ++i) {
    strat.RunRange(ValueRange(50, 60));  // no values here
    ASSERT_TRUE(strat.index().Validate().ok());
  }
  // All data carries the same value: no split point exists.
  EXPECT_EQ(strat.Segments().size(), 1u);
}

TEST(EdgeCases, AllValuesEqualReplication) {
  SegmentSpace space;
  std::vector<int32_t> data(20000, 7);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 100),
                                     std::make_unique<Apm>(kKiB, 4 * kKiB),
                                     &space);
  for (int i = 0; i < 30; ++i) {
    std::vector<int32_t> result;
    strat.RunRange(ValueRange(0, 50), &result);
    ASSERT_EQ(result.size(), 20000u);
    ASSERT_TRUE(strat.tree().Validate().ok());
  }
}

TEST(EdgeCases, SortedInputBehavesLikeRandom) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 3);
  std::sort(data.begin(), data.end());
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000),
                                      std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.05, 4);
  for (int i = 0; i < 100; ++i) {
    const ValueRange q = gen.Next().range;
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q));
  }
}

TEST(EdgeCases, QueryExactlyAtDomainEdges) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(5000, 1000, 5);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000), SmallApm(),
                                      &space);
  std::vector<int32_t> all;
  strat.RunRange(ValueRange(0, 1000), &all);
  EXPECT_EQ(all.size(), 5000u);
  std::vector<int32_t> left;
  strat.RunRange(ValueRange(0, 1), &left);
  EXPECT_EQ(left.size(), static_cast<size_t>(std::count(data.begin(),
                                                        data.end(), 0)));
  std::vector<int32_t> right;
  strat.RunRange(ValueRange(999, 1000), &right);
  EXPECT_EQ(right.size(), static_cast<size_t>(std::count(data.begin(),
                                                         data.end(), 999)));
}

TEST(EdgeCases, RepeatedIdenticalQueriesStabilize) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(50000, 500000, 6);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000),
                                      std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
                                      &space);
  const ValueRange q(200000, 250000);
  strat.RunRange(q);
  const size_t after_first = strat.Segments().size();
  uint64_t later_splits = 0;
  for (int i = 0; i < 100; ++i) later_splits += strat.RunRange(q).splits;
  // An exact repeat cannot trigger further reorganization (the query covers
  // its segments exactly).
  EXPECT_EQ(later_splits, 0u);
  EXPECT_EQ(strat.Segments().size(), after_first);
}

TEST(EdgeCases, AdversarialAlternatingQueries) {
  // Alternate between two interleaved combs of ranges; invariants must hold
  // throughout and results stay exact.
  SegmentSpace space;
  auto data = MakeUniformIntColumn(30000, 300000, 7);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 300000),
                                     std::make_unique<Apm>(2 * kKiB, 8 * kKiB),
                                     &space);
  for (int i = 0; i < 200; ++i) {
    const double base = (i % 2 == 0) ? 10000.0 : 15000.0;
    const double lo = base + (i / 2) * 2500.0;
    const ValueRange q(lo, lo + 5000.0);
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
    ASSERT_TRUE(strat.tree().Validate().ok()) << "query " << i;
  }
}

TEST(EdgeCases, FloatColumnNarrowRanges) {
  // Float payloads with very narrow query windows (sub-epsilon of the domain).
  SegmentSpace space;
  Rng rng(8);
  std::vector<float> data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(static_cast<float>(rng.NextUniform(0.0, 360.0)));
  }
  AdaptiveSegmentation<float> strat(data, ValueRange(0.0, 360.0),
                                    std::make_unique<Apm>(4 * kKiB, 16 * kKiB),
                                    &space);
  for (int i = 0; i < 100; ++i) {
    const double lo = rng.NextUniform(0.0, 359.9);
    const ValueRange q(lo, lo + 0.01);
    std::vector<float> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
  }
  EXPECT_TRUE(strat.index().Validate().ok());
}

TEST(EdgeCases, DeferredWithConstantData) {
  SegmentSpace space;
  std::vector<int32_t> data(20000, 9);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 2;
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 100),
                                      std::make_unique<Apm>(kKiB, 2 * kKiB),
                                      &space, opts);
  for (int i = 0; i < 20; ++i) {
    std::vector<int32_t> result;
    strat.RunRange(ValueRange(5, 20), &result);
    ASSERT_EQ(result.size(), 20000u);
    ASSERT_TRUE(strat.index().Validate().ok());
  }
  // Equi-depth cuts on constant data collapse to no cut: still one segment.
  EXPECT_EQ(strat.Segments().size(), 1u);
}

TEST(EdgeCases, StaticPartitionWithMorePartsThanValues) {
  SegmentSpace space;
  std::vector<int32_t> data{10, 20, 30};
  StaticPartition<int32_t> strat(data, ValueRange(0, 100), 16, &space);
  EXPECT_EQ(strat.Segments().size(), 16u);  // most parts empty
  std::vector<int32_t> result;
  strat.RunRange(ValueRange(0, 100), &result);
  EXPECT_EQ(result.size(), 3u);
}

TEST(EdgeCases, NonSegmentedEmptyColumn) {
  SegmentSpace space;
  NonSegmented<double> strat({}, ValueRange(0, 1), &space);
  auto ex = strat.RunRange(ValueRange(0, 1));
  EXPECT_EQ(ex.result_count, 0u);
}

TEST(EdgeCases, CrackingManyDistinctBoundsBounded) {
  // 2N cracks maximum for N distinct queried bounds; the index never
  // exceeds that even under heavy load.
  SegmentSpace space;
  auto data = MakeUniformIntColumn(10000, 100000, 9);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 100000), &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.001, 10);
  for (int i = 0; i < 500; ++i) strat.RunRange(gen.Next().range);
  EXPECT_LE(strat.NumPieces(), 1001u);
}

}  // namespace
}  // namespace socs
