#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "workload/range_generator.h"
#include "workload/skyserver.h"
#include "workload/trace.h"

namespace socs {
namespace {

TEST(UniformGeneratorTest, WidthMatchesSelectivity) {
  UniformRangeGenerator gen(ValueRange(0, 1000000), 0.1, 1);
  for (int i = 0; i < 100; ++i) {
    const RangeQuery q = gen.Next();
    EXPECT_NEAR(q.range.Span(), 100000.0, 1e-6);
    EXPECT_GE(q.range.lo, 0.0);
    EXPECT_LE(q.range.hi, 1000000.0);
  }
}

TEST(UniformGeneratorTest, DeterministicPerSeed) {
  UniformRangeGenerator a(ValueRange(0, 1000), 0.05, 42);
  UniformRangeGenerator b(ValueRange(0, 1000), 0.05, 42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Next().range.lo, b.Next().range.lo);
  }
}

TEST(UniformGeneratorTest, CoversTheDomain) {
  UniformRangeGenerator gen(ValueRange(0, 1000), 0.01, 3);
  bool low = false, high = false;
  for (int i = 0; i < 2000; ++i) {
    const double lo = gen.Next().range.lo;
    low |= lo < 100;
    high |= lo > 890;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(ZipfGeneratorTest, PlacementIsSkewed) {
  ZipfRangeGenerator gen(ValueRange(0, 1000000), 0.01, 4, 1.0, 100);
  std::map<int, int> bin_hits;
  for (int i = 0; i < 5000; ++i) {
    bin_hits[static_cast<int>(gen.Next().range.lo / 10000.0)]++;
  }
  // The hottest bin should receive far more than the uniform share (50).
  int max_hits = 0;
  for (const auto& [bin, hits] : bin_hits) max_hits = std::max(max_hits, hits);
  EXPECT_GT(max_hits, 400);
}

TEST(ZipfGeneratorTest, DefaultPlacementIsContiguous) {
  // Without scrambling, the hot area sits at the domain's low end.
  ZipfRangeGenerator gen(ValueRange(0, 1000), 0.001, 7, 1.0, 50);
  int low_hits = 0;
  for (int i = 0; i < 2000; ++i) low_hits += (gen.Next().range.lo < 100.0);
  EXPECT_GT(low_hits, 800);  // >40% of mass in the lowest 10% of the domain
}

TEST(ZipfGeneratorTest, ScrambleMovesHotSpot) {
  // With scrambling, the hot bin lands away from bin 0 for most seeds.
  int nonzero_hot = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    ZipfRangeGenerator gen(ValueRange(0, 1000), 0.001, seed, 1.0, 50,
                           /*scramble=*/true);
    std::map<int, int> hits;
    for (int i = 0; i < 2000; ++i) {
      hits[static_cast<int>(gen.Next().range.lo / 20.0)]++;
    }
    int hot_bin = 0, max_hits = 0;
    for (const auto& [bin, h] : hits) {
      if (h > max_hits) {
        max_hits = h;
        hot_bin = bin;
      }
    }
    nonzero_hot += (hot_bin != 0);
  }
  EXPECT_GT(nonzero_hot, 2);
}

TEST(ZipfGeneratorTest, QueriesStayInDomain) {
  ZipfRangeGenerator gen(ValueRange(100, 200), 0.1, 6);
  for (int i = 0; i < 500; ++i) {
    const RangeQuery q = gen.Next();
    EXPECT_GE(q.range.lo, 100.0);
    EXPECT_LE(q.range.hi, 200.0);
  }
}

TEST(MakeUniformIntColumnTest, ValuesInDomainAndDeterministic) {
  auto a = MakeUniformIntColumn(1000, 5000, 7);
  auto b = MakeUniformIntColumn(1000, 5000, 7);
  EXPECT_EQ(a, b);
  for (int32_t v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5000);
  }
}

TEST(SkyServerTest, RaColumnInFootprint) {
  SkyServerConfig cfg;
  cfg.num_objects = 100000;  // scaled down for the test
  auto ra = MakeRaColumn(cfg);
  ASSERT_EQ(ra.size(), 100000u);
  for (size_t i = 0; i < ra.size(); i += 97) {
    EXPECT_GE(ra[i], cfg.footprint.lo);
    EXPECT_LT(ra[i], cfg.footprint.hi);
  }
}

TEST(SkyServerTest, RaColumnIsStriped) {
  SkyServerConfig cfg;
  cfg.num_objects = 200000;
  auto ra = MakeRaColumn(cfg);
  // Histogram over 150 one-degree cells: stripes create strong contrast
  // between dense and sparse cells.
  std::vector<int> hist(151, 0);
  for (float v : ra) ++hist[static_cast<int>(v - cfg.footprint.lo)];
  int dense = 0, sparse = 0;
  const int uniform_share = 200000 / 150;
  for (int h : hist) {
    if (h > 2 * uniform_share) ++dense;
    if (h > 0 && h < uniform_share / 2) ++sparse;
  }
  EXPECT_GT(dense, 10);
  EXPECT_GT(sparse, 30);
}

TEST(SkyServerTest, RandomWorkloadSpansFootprint) {
  SkyServerConfig cfg;
  auto w = MakeRandomWorkload(cfg, 200);
  ASSERT_EQ(w.size(), 200u);
  double min_lo = 1e9, max_lo = -1e9;
  for (const auto& q : w) {
    EXPECT_GE(q.range.lo, cfg.footprint.lo);
    EXPECT_LE(q.range.hi, cfg.footprint.hi);
    EXPECT_GE(q.range.Span(), cfg.min_width_deg - 1e-9);
    EXPECT_LE(q.range.Span(), cfg.max_width_deg + 1e-9);
    min_lo = std::min(min_lo, q.range.lo);
    max_lo = std::max(max_lo, q.range.lo);
  }
  EXPECT_LT(min_lo, cfg.footprint.lo + 15);
  EXPECT_GT(max_lo, cfg.footprint.hi - 15);
}

TEST(SkyServerTest, SkewedWorkloadHitsTwoNarrowAreas) {
  SkyServerConfig cfg;
  auto w = MakeSkewedWorkload(cfg, 200);
  ASSERT_EQ(w.size(), 200u);
  // All query starts must fall into at most ~2 x 2.5-degree areas.
  double area1_lo = 1e9, area2_lo = 1e9;
  int outside = 0;
  const double span = cfg.footprint.Span();
  const double h1 = cfg.footprint.lo + 0.30 * span;
  const double h2 = cfg.footprint.lo + 0.70 * span;
  for (const auto& q : w) {
    const bool in1 = q.range.lo >= h1 - 0.1 && q.range.lo <= h1 + 2.1;
    const bool in2 = q.range.lo >= h2 - 0.1 && q.range.lo <= h2 + 2.1;
    if (!in1 && !in2) ++outside;
    if (in1) area1_lo = std::min(area1_lo, q.range.lo);
    if (in2) area2_lo = std::min(area2_lo, q.range.lo);
  }
  EXPECT_EQ(outside, 0);
  EXPECT_LT(area1_lo, 1e9);  // both areas actually used
  EXPECT_LT(area2_lo, 1e9);
}

TEST(SkyServerTest, ChangingWorkloadHasFourPhases) {
  SkyServerConfig cfg;
  auto w = MakeChangingWorkload(cfg, 200, 4);
  ASSERT_EQ(w.size(), 200u);
  // Phases focus on different areas: compare mean lo per 50-query block.
  std::vector<double> phase_mean(4, 0);
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 50; ++i) phase_mean[p] += w[p * 50 + i].range.lo;
    phase_mean[p] /= 50;
  }
  for (int p = 1; p < 4; ++p) {
    EXPECT_GT(phase_mean[p], phase_mean[p - 1] + 10)
        << "phases must move across the footprint";
  }
}

TEST(TraceTest, SaveLoadRoundtrip) {
  Workload w{RangeQuery(1.5, 2.5), RangeQuery(-3, 4.25), RangeQuery(0, 0)};
  const std::string path = ::testing::TempDir() + "/trace_test.txt";
  ASSERT_TRUE(SaveTrace(w, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ((*loaded)[i].range.lo, w[i].range.lo);
    EXPECT_EQ((*loaded)[i].range.hi, w[i].range.hi);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileIsNotFound) {
  auto r = LoadTrace("/nonexistent/path/trace.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GeneratorPolymorphismTest, GenerateProducesN) {
  UniformRangeGenerator gen(ValueRange(0, 100), 0.1, 9);
  QueryGenerator& base = gen;
  auto w = base.Generate(25);
  EXPECT_EQ(w.size(), 25u);
  EXPECT_EQ(base.Name(), "uniform");
}

}  // namespace
}  // namespace socs
