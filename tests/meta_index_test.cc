#include <gtest/gtest.h>

#include "core/segment_meta_index.h"

namespace socs {
namespace {

SegmentInfo Seg(double lo, double hi, uint64_t count, SegmentId id) {
  return SegmentInfo{ValueRange(lo, hi), count, id};
}

TEST(MetaIndexTest, InitSingleCoversDomain) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitSingle(Seg(0, 100, 1000, 1));
  EXPECT_EQ(idx.Size(), 1u);
  EXPECT_EQ(idx.TotalCount(), 1000u);
  EXPECT_TRUE(idx.Validate().ok());
}

TEST(MetaIndexTest, InitTilingValidates) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitTiling({Seg(0, 30, 10, 1), Seg(30, 70, 20, 2), Seg(70, 100, 5, 3)});
  EXPECT_EQ(idx.Size(), 3u);
  EXPECT_TRUE(idx.Validate().ok());
}

TEST(MetaIndexTest, FindOverlappingMiddle) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitTiling({Seg(0, 30, 10, 1), Seg(30, 70, 20, 2), Seg(70, 100, 5, 3)});
  auto [f, l] = idx.FindOverlapping(ValueRange(35, 40));
  EXPECT_EQ(f, 1u);
  EXPECT_EQ(l, 2u);
}

TEST(MetaIndexTest, FindOverlappingSpansMultiple) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitTiling({Seg(0, 30, 10, 1), Seg(30, 70, 20, 2), Seg(70, 100, 5, 3)});
  auto [f, l] = idx.FindOverlapping(ValueRange(10, 80));
  EXPECT_EQ(f, 0u);
  EXPECT_EQ(l, 3u);
}

TEST(MetaIndexTest, FindOverlappingBoundariesAreHalfOpen) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitTiling({Seg(0, 50, 10, 1), Seg(50, 100, 10, 2)});
  // Query ending exactly at 50 touches only the first segment.
  auto [f1, l1] = idx.FindOverlapping(ValueRange(10, 50));
  EXPECT_EQ(f1, 0u);
  EXPECT_EQ(l1, 1u);
  // Query starting exactly at 50 touches only the second.
  auto [f2, l2] = idx.FindOverlapping(ValueRange(50, 60));
  EXPECT_EQ(f2, 1u);
  EXPECT_EQ(l2, 2u);
}

TEST(MetaIndexTest, FindOverlappingEmptyQuery) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitSingle(Seg(0, 100, 10, 1));
  auto [f, l] = idx.FindOverlapping(ValueRange(42, 42));
  EXPECT_EQ(f, l);
}

TEST(MetaIndexTest, FindOverlappingOutsideDomain) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitSingle(Seg(0, 100, 10, 1));
  auto [f, l] = idx.FindOverlapping(ValueRange(200, 300));
  EXPECT_EQ(f, l);
}

TEST(MetaIndexTest, ReplaceSplitsSegment) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitTiling({Seg(0, 50, 10, 1), Seg(50, 100, 30, 2)});
  idx.Replace(1, {Seg(50, 60, 5, 3), Seg(60, 80, 20, 4), Seg(80, 100, 5, 5)});
  EXPECT_EQ(idx.Size(), 4u);
  EXPECT_TRUE(idx.Validate().ok());
  EXPECT_EQ(idx.TotalCount(), 40u);
  EXPECT_EQ(idx.At(1).id, 3u);
  EXPECT_EQ(idx.At(3).id, 5u);
}

TEST(MetaIndexTest, ValidateDetectsGap) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  // Bypass InitTiling's check via InitSingle then inspect Validate directly:
  // construct a broken tiling through InitTiling would die, so check the
  // validator on a correct one instead and a domain mismatch via a fresh idx.
  idx.InitSingle(Seg(0, 100, 10, 1));
  EXPECT_TRUE(idx.Validate().ok());
  SegmentMetaIndex empty(ValueRange(0, 1));
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(MetaIndexTest, IndexBytesIsSparse) {
  SegmentMetaIndex idx(ValueRange(0, 100));
  idx.InitSingle(Seg(0, 100, 1000000, 1));
  // One entry of bookkeeping for a million values: a *sparse* index.
  EXPECT_LT(idx.IndexBytes(), 100u);
}

TEST(ValueRangeTest, Basics) {
  ValueRange r(10, 20);
  EXPECT_TRUE(r.Contains(10));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_EQ(r.Span(), 10);
  EXPECT_TRUE(r.Overlaps(ValueRange(19, 25)));
  EXPECT_FALSE(r.Overlaps(ValueRange(20, 25)));
  EXPECT_TRUE(r.ContainsRange(ValueRange(12, 18)));
  EXPECT_FALSE(r.ContainsRange(ValueRange(12, 21)));
  EXPECT_EQ(r.Intersect(ValueRange(15, 30)), ValueRange(15, 20));
  EXPECT_TRUE(r.Intersect(ValueRange(25, 30)).Empty());
}

}  // namespace
}  // namespace socs
