// Unit tests for the parallel execution subsystem: ThreadPool fan-out
// semantics (inline determinism, full index coverage, concurrent groups),
// the TaskScheduler's background lane, and the ColumnLatch discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/column_latch.h"
#include "exec/task_scheduler.h"
#include "exec/thread_pool.h"

namespace socs {
namespace {

TEST(ThreadPool, InlineModeRunsInOrder) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.inline_mode());
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  bool ran = false;
  pool.Submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // inline Submit runs before returning
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.inline_mode());
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no iterations expected"; });
  std::atomic<int> n{0};
  pool.ParallelFor(1, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, ConcurrentParallelForGroupsDoNotInterleave) {
  ThreadPool pool(4);
  constexpr size_t kCallers = 6, kN = 400;
  std::vector<std::atomic<uint64_t>> sums(kCallers);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kN, [&, c](size_t i) { sums[c].fetch_add(i + 1); });
    });
  }
  for (auto& t : callers) t.join();
  const uint64_t expect = kN * (kN + 1) / 2;
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), expect) << "caller " << c;
  }
}

TEST(ThreadPool, SubmitTaskFutureCompletes) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::future<void>> ready;
  for (int i = 0; i < 32; ++i) {
    ready.push_back(pool.SubmitTask([&] { done.fetch_add(1); }));
  }
  for (auto& f : ready) f.get();
  EXPECT_EQ(done.load(), 32);
  EXPECT_GE(pool.tasks_run(), 32u);
}

TEST(TaskScheduler, SingleThreadedQueuesUntilDrain) {
  TaskScheduler sched(1);
  int runs = 0;
  sched.ScheduleBackground([&] { ++runs; });
  sched.ScheduleBackground([&] { ++runs; });
  EXPECT_EQ(runs, 0);  // deferred to the explicit idle point
  EXPECT_EQ(sched.background_pending(), 2u);
  sched.DrainBackground();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(sched.background_runs(), 2u);
  EXPECT_EQ(sched.background_pending(), 0u);
}

TEST(TaskScheduler, ThreadedRunsInBackgroundAndDrains) {
  TaskScheduler sched(2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 16; ++i) {
    sched.ScheduleBackground([&] { runs.fetch_add(1); });
  }
  sched.DrainBackground();
  EXPECT_EQ(runs.load(), 16);
  EXPECT_EQ(sched.background_runs(), 16u);
}

TEST(TaskScheduler, DestructorDrainsPendingJobs) {
  std::atomic<int> runs{0};
  {
    TaskScheduler sched(2);
    for (int i = 0; i < 8; ++i) {
      sched.ScheduleBackground([&] { runs.fetch_add(1); });
    }
  }
  EXPECT_EQ(runs.load(), 8);
}

TEST(ColumnLatch, SharedReadersCoexistExclusiveWriterAlone) {
  ColumnLatch latch;
  std::atomic<int> readers{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> writer_in{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        SharedColumnGuard guard(latch);
        ASSERT_FALSE(writer_in.load());
        const int now = readers.fetch_add(1) + 1;
        int prev = max_readers.load();
        while (prev < now && !max_readers.compare_exchange_weak(prev, now)) {
        }
        readers.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      ExclusiveColumnGuard guard(latch);
      writer_in.store(true);
      ASSERT_EQ(readers.load(), 0);
      writer_in.store(false);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(latch.shared_acquisitions(), 800u);
  EXPECT_EQ(latch.exclusive_acquisitions(), 100u);
}

}  // namespace
}  // namespace socs
