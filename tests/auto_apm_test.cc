// Tests for the self-tuning APM model (paper section 8 future work).
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/auto_apm.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

TEST(AutoApmTest, BoundsTrackObservedSelectionSize) {
  AutoApm model;
  SplitGeometry g;
  g.total_bytes = 400 * kKiB;
  g.seg_bytes = 100 * kKiB;
  g.left_bytes = 48 * kKiB;
  g.mid_bytes = 4 * kKiB;
  g.right_bytes = 48 * kKiB;
  g.has_left = g.has_right = true;
  for (int i = 0; i < 200; ++i) model.Decide(g);
  // EMA converged to the 4KB selection: Mmax ~ 12KB, Mmin ~ 3KB.
  EXPECT_NEAR(static_cast<double>(model.max_bytes()), 12.0 * kKiB, kKiB);
  EXPECT_NEAR(static_cast<double>(model.min_bytes()), 3.0 * kKiB, kKiB);
}

TEST(AutoApmTest, FloorAndCapRespected) {
  AutoApm::Tuning t;
  t.floor_bytes = 8 * kKiB;
  t.cap_bytes = 16 * kKiB;
  AutoApm model(t);
  EXPECT_EQ(model.max_bytes(), 8 * kKiB);  // unseeded -> floor
  SplitGeometry g;
  g.total_bytes = 1 * kGiB;
  g.seg_bytes = 100 * kMiB;
  g.mid_bytes = 50 * kMiB;  // huge selections
  g.left_bytes = g.right_bytes = 25 * kMiB;
  g.has_left = g.has_right = true;
  for (int i = 0; i < 100; ++i) model.Decide(g);
  EXPECT_EQ(model.max_bytes(), 16 * kKiB);  // capped
}

TEST(AutoApmTest, AdaptsWhenWorkloadChanges) {
  AutoApm model;
  SplitGeometry wide;
  wide.total_bytes = 400 * kKiB;
  wide.seg_bytes = 200 * kKiB;
  wide.mid_bytes = 40 * kKiB;
  wide.left_bytes = wide.right_bytes = 80 * kKiB;
  wide.has_left = wide.has_right = true;
  for (int i = 0; i < 200; ++i) model.Decide(wide);
  const uint64_t mmax_wide = model.max_bytes();
  SplitGeometry narrow = wide;
  narrow.mid_bytes = 1 * kKiB;
  for (int i = 0; i < 200; ++i) model.Decide(narrow);
  EXPECT_LT(model.max_bytes(), mmax_wide / 4);
}

TEST(AutoApmTest, CloneStartsFresh) {
  AutoApm model;
  SplitGeometry g;
  g.total_bytes = 1000;
  g.seg_bytes = 1000;
  g.mid_bytes = 500;
  g.left_bytes = 500;
  g.has_left = true;
  model.Decide(g);
  auto clone = model.Clone();
  EXPECT_EQ(clone->Name(), "AutoAPM");
}

TEST(AutoApmTest, EndToEndCorrectness) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(30000, 300000, 1);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 300000),
                                      std::make_unique<AutoApm>(), &space);
  UniformRangeGenerator gen(ValueRange(0, 300000), 0.02, 2);
  for (int i = 0; i < 200; ++i) {
    const ValueRange q = gen.Next().range;
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
    ASSERT_TRUE(strat.index().Validate().ok());
  }
}

TEST(AutoApmTest, ReadAmplificationBoundedAcrossSelectivities) {
  // The paper's fixed APM 3-12KB is tuned for ~4KB selections; AutoApm must
  // keep read amplification bounded for very different selectivities without
  // retuning.
  for (double sel : {0.1, 0.01, 0.001}) {
    SegmentSpace space;
    auto data = MakeUniformIntColumn(100000, 1000000, 3);  // 400KB
    AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000000),
                                        std::make_unique<AutoApm>(), &space);
    UniformRangeGenerator gen(ValueRange(0, 1000000), sel, 4);
    uint64_t reads = 0;
    const int kQueries = 2000;
    for (int i = 0; i < kQueries; ++i) reads += strat.RunRange(gen.Next().range).read_bytes;
    const double selection_bytes = 400000.0 * sel;
    const double tail_amplification =
        (static_cast<double>(reads) / kQueries) / selection_bytes;
    // Within an order of magnitude of the selection size at every
    // selectivity (fixed 3-12KB APM reaches ~30x at sel 0.001).
    EXPECT_LT(tail_amplification, 12.0) << "sel " << sel;
  }
}

TEST(AutoApmTest, BeatsMistunedFixedApmOnTinySelections) {
  // At selectivity 0.001 (400B selections), the paper's fixed 3-12KB bounds
  // floor reads at whole 12KB segments; AutoApm shrinks its bounds instead.
  auto data = MakeUniformIntColumn(100000, 1000000, 5);
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> fixed(
      data, ValueRange(0, 1000000), std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
      &s1);
  AdaptiveSegmentation<int32_t> tuned(
      data, ValueRange(0, 1000000), std::make_unique<AutoApm>(), &s2);
  UniformRangeGenerator g1(ValueRange(0, 1000000), 0.001, 6);
  UniformRangeGenerator g2(ValueRange(0, 1000000), 0.001, 6);
  uint64_t fixed_reads = 0, tuned_reads = 0;
  for (int i = 0; i < 3000; ++i) {
    fixed_reads += fixed.RunRange(g1.Next().range).read_bytes;
    tuned_reads += tuned.RunRange(g2.Next().range).read_bytes;
  }
  // Ignore the shared warm-up by comparing totals; the self-tuned model must
  // read substantially less once converged.
  EXPECT_LT(tuned_reads, fixed_reads);
}

}  // namespace
}  // namespace socs
