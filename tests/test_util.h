// Shared helpers for the test suite: brute-force oracles and multiset
// comparison for strategy correctness checks.
#ifndef SOCS_TESTS_TEST_UTIL_H_
#define SOCS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/oid_value.h"
#include "core/range.h"

namespace socs::testing {

/// Values of `data` within the half-open range, as a sorted vector (the
/// strategies return results unordered).
template <typename T>
std::vector<double> BruteForce(const std::vector<T>& data, const ValueRange& q) {
  std::vector<double> out;
  for (const T& v : data) {
    const double d = ValueOf(v);
    if (d >= q.lo && d < q.hi) out.push_back(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <typename T>
std::vector<double> SortedValues(const std::vector<T>& vs) {
  std::vector<double> out;
  out.reserve(vs.size());
  for (const T& v : vs) out.push_back(ValueOf(v));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace socs::testing

#endif  // SOCS_TESTS_TEST_UTIL_H_
