// The SegmentCodec seam: codec round-trips (randomized property tests plus
// adversarial shapes), the SegmentSpace's logical-vs-physical accounting,
// the CompressionAdvisor's cold detection, copy-on-write re-encoding under
// pinned readers, and the headline invariant -- every strategy returns an
// identical result set with compression on and off, because all
// reorganization decisions stay in logical bytes and codecs preserve
// element order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/compression_advisor.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "engine/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "exec/task_scheduler.h"
#include "storage/segment_codec.h"
#include "storage/segment_space.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

const ValueRange kDomain(0.0, 360.0);
constexpr size_t kNumStrategies = 7;

SegmentSpace::Options CompressionOn() {
  SegmentSpace::Options o;
  o.compression = true;
  return o;
}

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

const SegmentCodec kEncodingCodecs[] = {SegmentCodec::kRle,
                                        SegmentCodec::kDeltaFor,
                                        SegmentCodec::kDict};

/// Encode -> Decode must be the identity on the raw byte image whenever the
/// codec applies; the header must describe the payload it precedes.
template <typename T>
void ExpectRoundTrip(const std::vector<T>& values) {
  const auto* raw = reinterpret_cast<const std::byte*>(values.data());
  const size_t raw_bytes = values.size() * sizeof(T);
  for (SegmentCodec codec : kEncodingCodecs) {
    auto encoded = EncodeSegment(codec, raw, sizeof(T), values.size());
    if (!encoded.has_value()) continue;  // codec does not apply to this width
    const EncodedInfo info = InspectEncoded(*encoded);
    EXPECT_EQ(info.codec, codec);
    EXPECT_EQ(info.value_size, sizeof(T));
    EXPECT_EQ(info.logical_count, values.size());
    const std::vector<std::byte> decoded = DecodeSegment(*encoded);
    ASSERT_EQ(decoded.size(), raw_bytes) << SegmentCodecName(codec);
    EXPECT_EQ(std::memcmp(decoded.data(), raw, raw_bytes), 0)
        << SegmentCodecName(codec) << " corrupted a "
        << values.size() << "-element payload";
  }
}

TEST(SegmentCodecTest, EmptyAndSingletonRoundTrip) {
  ExpectRoundTrip<int32_t>({});
  ExpectRoundTrip<int32_t>({42});
  ExpectRoundTrip<double>({});
  ExpectRoundTrip<double>({3.14159});
  ExpectRoundTrip<OidValue>({});
  ExpectRoundTrip<OidValue>({{7, 1.5}});
}

TEST(SegmentCodecTest, ConstantRunsRoundTrip) {
  ExpectRoundTrip(std::vector<int32_t>(10000, -7));
  ExpectRoundTrip(std::vector<double>(10000, 2.5));
  ExpectRoundTrip(std::vector<OidValue>(5000, {123, 9.75}));
}

TEST(SegmentCodecTest, SortedSequencesRoundTrip) {
  std::vector<int32_t> ints;
  std::vector<double> dbls;
  std::vector<OidValue> pairs;
  for (int i = 0; i < 10000; ++i) {
    ints.push_back(i * 3 - 5000);
    dbls.push_back(i * 0.25);
    pairs.push_back({static_cast<uint64_t>(i), i * 0.5});
  }
  ExpectRoundTrip(ints);
  ExpectRoundTrip(dbls);
  ExpectRoundTrip(pairs);
}

TEST(SegmentCodecTest, AdversarialPayloadsRoundTrip) {
  // Extremes of the delta lanes: alternating min/max, sign flips, values
  // whose zigzag deltas span the full 64-bit range.
  std::vector<int32_t> extremes;
  std::vector<double> specials;
  for (int i = 0; i < 3000; ++i) {
    extremes.push_back(i % 2 == 0 ? INT32_MIN : INT32_MAX);
    switch (i % 5) {
      case 0: specials.push_back(0.0); break;
      case 1: specials.push_back(-0.0); break;
      case 2: specials.push_back(1e308); break;
      case 3: specials.push_back(-1e308); break;
      default: specials.push_back(5e-324); break;  // min subnormal
    }
  }
  ExpectRoundTrip(extremes);
  ExpectRoundTrip(specials);
  // A dictionary right at the u16-index boundary (65536 distinct values)
  // and one past it (the codec must bail, not truncate).
  std::vector<int32_t> at_limit, past_limit;
  for (int32_t i = 0; i < 65536; ++i) at_limit.push_back(i);
  ExpectRoundTrip(at_limit);
  for (int32_t i = 0; i < 65537; ++i) past_limit.push_back(i);
  const auto* raw = reinterpret_cast<const std::byte*>(past_limit.data());
  EXPECT_FALSE(EncodeSegment(SegmentCodec::kDict, raw, sizeof(int32_t),
                             past_limit.size())
                   .has_value());
}

TEST(SegmentCodecTest, RandomPayloadsRoundTripAllCodecs) {
  Rng rng(20260808);
  for (int iter = 0; iter < 30; ++iter) {
    const size_t n = 1 + static_cast<size_t>(rng.NextUniform(0, 4000));
    const int32_t cardinality = 1 + static_cast<int32_t>(rng.NextUniform(1, 300));
    std::vector<int32_t> ints;
    std::vector<double> dbls;
    std::vector<OidValue> pairs;
    for (size_t i = 0; i < n; ++i) {
      const int32_t v = static_cast<int32_t>(rng.NextUniform(0, cardinality));
      ints.push_back(v);
      dbls.push_back(v * 1.25);
      pairs.push_back({i * 3, static_cast<double>(v)});
    }
    ExpectRoundTrip(ints);
    ExpectRoundTrip(dbls);
    ExpectRoundTrip(pairs);
  }
}

TEST(SegmentCodecTest, ChooseEncodingFallsBackToRawWhenNothingWins) {
  // High-entropy doubles: no codec reaches the budget, the choice is raw.
  Rng rng(55);
  std::vector<double> noise;
  for (int i = 0; i < 4000; ++i) noise.push_back(rng.NextUniform(0, 1e9));
  const EncodedPayload enc = ChooseSegmentEncoding(
      reinterpret_cast<const std::byte*>(noise.data()), sizeof(double),
      noise.size(), /*max_fraction=*/0.9);
  EXPECT_EQ(enc.codec, SegmentCodec::kRaw);
  EXPECT_TRUE(enc.bytes.empty());
}

TEST(SegmentCodecTest, ChooseEncodingPicksBigWinOnConstantData) {
  const std::vector<int32_t> flat(50000, 3);
  const EncodedPayload enc = ChooseSegmentEncoding(
      reinterpret_cast<const std::byte*>(flat.data()), sizeof(int32_t),
      flat.size(), 0.9);
  ASSERT_NE(enc.codec, SegmentCodec::kRaw);
  EXPECT_LT(enc.bytes.size(), flat.size() * sizeof(int32_t) / 100);
  const std::vector<std::byte> decoded = DecodeSegment(enc.bytes);
  EXPECT_EQ(std::memcmp(decoded.data(), flat.data(), flat.size() * 4), 0);
}

// ---------------------------------------------------------------------------
// SegmentSpace: logical vs physical accounting
// ---------------------------------------------------------------------------

TEST(SegmentSpaceCompressionTest, ColdCreateStoresEncodedMetersPhysical) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  const std::vector<int32_t> flat(25000, 9);  // 100KB logical, tiny encoded
  IoCost create;
  const SegmentId id = space.Create(flat, &create, CompressionHint::kCold);
  EXPECT_NE(space.CodecOf(id), SegmentCodec::kRaw);
  EXPECT_EQ(space.LogicalSizeOf(id), 100000u);
  EXPECT_LT(space.PhysicalSizeOf(id), 100000u / 2);
  // Pool and write stats carry the physical (encoded) bytes...
  EXPECT_EQ(space.stats().mem_write_bytes, space.PhysicalSizeOf(id));
  EXPECT_EQ(create.bytes, space.PhysicalSizeOf(id));
  EXPECT_EQ(space.pool().resident_bytes(), space.PhysicalSizeOf(id));
  EXPECT_EQ(space.stats().encode_bytes, 100000u);
  // ...while the scan delivers every logical value and charges the decode.
  IoCost scan;
  auto span = space.Scan<int32_t>(id, &scan);
  ASSERT_EQ(span.size(), flat.size());
  EXPECT_TRUE(std::equal(span.begin(), span.end(), flat.begin()));
  EXPECT_EQ(scan.bytes, space.PhysicalSizeOf(id));
  EXPECT_EQ(scan.decode_bytes, 100000u);
  EXPECT_EQ(space.stats().decode_bytes, 100000u);
}

TEST(SegmentSpaceCompressionTest, HotCreateStaysRawEvenWhenEnabled) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  const std::vector<int32_t> flat(25000, 9);
  IoCost create;
  const SegmentId id = space.Create(flat, &create);  // default hint: hot
  EXPECT_EQ(space.CodecOf(id), SegmentCodec::kRaw);
  EXPECT_EQ(space.PhysicalSizeOf(id), space.LogicalSizeOf(id));
}

TEST(SegmentSpaceCompressionTest, DisabledSpaceIgnoresColdHint) {
  SegmentSpace space;  // compression off (the default)
  const std::vector<int32_t> flat(25000, 9);
  IoCost create;
  const SegmentId id = space.Create(flat, &create, CompressionHint::kCold);
  EXPECT_EQ(space.CodecOf(id), SegmentCodec::kRaw);
  EXPECT_EQ(create.bytes, 100000u);
  EXPECT_FALSE(space.compression_enabled());
}

TEST(SegmentSpaceCompressionTest, RecompressCowPreservesPinnedReaders) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  std::vector<int32_t> flat(25000, 4);
  IoCost create;
  const SegmentId raw_id = space.Create(flat, &create);  // hot -> raw
  ASSERT_EQ(space.CodecOf(raw_id), SegmentCodec::kRaw);
  // A reader pinned on the pre-recompress cover holds this span.
  auto pinned = space.Peek<int32_t>(raw_id);
  IoCost read, write;
  const SegmentId fresh = space.RecompressCow<int32_t>(raw_id, &read, &write);
  ASSERT_NE(fresh, raw_id);
  EXPECT_NE(space.CodecOf(fresh), SegmentCodec::kRaw);
  EXPECT_EQ(space.stats().segments_recompressed, 1u);
  EXPECT_GT(read.bytes, 0u);   // the probe scan is metered...
  EXPECT_GT(write.bytes, 0u);  // ...and so is the encoded successor write
  EXPECT_LT(write.bytes, 100000u / 2);
  // The pinned raw span is untouched until the reader unpins and the
  // retired segment is reclaimed (epoch machinery; here: explicit Free).
  EXPECT_TRUE(std::equal(pinned.begin(), pinned.end(), flat.begin()));
  IoCost scan;
  auto decoded = space.Scan<int32_t>(fresh, &scan);
  EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(), flat.begin()));
  space.Free(raw_id);
  EXPECT_EQ(space.segment_count(), 1u);
}

TEST(SegmentSpaceCompressionTest, RecompressCowSkipsIncompressible) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  Rng rng(77);
  std::vector<double> noise;
  for (int i = 0; i < 2000; ++i) noise.push_back(rng.NextUniform(0, 1e9));
  IoCost create;
  const SegmentId id = space.Create(noise, &create);
  IoCost read, write;
  EXPECT_EQ(space.RecompressCow<double>(id, &read, &write), id);
  EXPECT_EQ(space.stats().segments_recompressed, 0u);
  EXPECT_GT(read.bytes, 0u);   // the probe scan still happened
  EXPECT_EQ(write.bytes, 0u);  // nothing was written
}

// ---------------------------------------------------------------------------
// CompressionAdvisor: cold detection from metered access counts
// ---------------------------------------------------------------------------

TEST(CompressionAdvisorTest, FirstObservationIsNeverCold) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  IoCost c;
  const SegmentId id = space.Create(std::vector<int32_t>(1000, 1), &c);
  CompressionAdvisor advisor(&space);
  EXPECT_FALSE(advisor.IsColdRawCandidate(id, 4000));  // baseline only
  EXPECT_TRUE(advisor.IsColdRawCandidate(id, 4000));   // unchanged: cold
}

TEST(CompressionAdvisorTest, ScannedSegmentsStayHot) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  IoCost c;
  const SegmentId id = space.Create(std::vector<int32_t>(1000, 1), &c);
  CompressionAdvisor advisor(&space);
  EXPECT_FALSE(advisor.IsColdRawCandidate(id, 4000));
  IoCost scan;
  // With kernels on (the default), encoded segments are cheap to scan, so
  // "hot" means more than kernel_heat_tolerance metered scans per sweep.
  for (int i = 0; i < 3; ++i) space.Scan<int32_t>(id, &scan);
  EXPECT_FALSE(advisor.IsColdRawCandidate(id, 4000));
  EXPECT_TRUE(advisor.IsColdRawCandidate(id, 4000));  // now idle again
}

TEST(CompressionAdvisorTest, KernelHeatToleranceOnlyWithKernels) {
  // Kernels off: the strict pre-kernel rule -- any movement keeps it hot.
  SegmentSpace::Options no_kernels = CompressionOn();
  no_kernels.kernels = false;
  SegmentSpace strict(CostParams{}, 0, no_kernels);
  IoCost c;
  const SegmentId a = strict.Create(std::vector<int32_t>(1000, 1), &c);
  CompressionAdvisor strict_adv(&strict);
  EXPECT_FALSE(strict_adv.IsColdRawCandidate(a, 4000));  // baseline
  IoCost scan;
  strict.Scan<int32_t>(a, &scan);
  EXPECT_FALSE(strict_adv.IsColdRawCandidate(a, 4000));
  // Kernels on: the same single scan per sweep is within tolerance --
  // encoding a mildly-warm segment pays off when scans skip the decode.
  SegmentSpace tolerant(CostParams{}, 0, CompressionOn());
  const SegmentId b = tolerant.Create(std::vector<int32_t>(1000, 1), &c);
  CompressionAdvisor tolerant_adv(&tolerant);
  EXPECT_FALSE(tolerant_adv.IsColdRawCandidate(b, 4000));  // baseline
  tolerant.Scan<int32_t>(b, &scan);
  EXPECT_TRUE(tolerant_adv.IsColdRawCandidate(b, 4000));
}

TEST(CompressionAdvisorTest, TriedAndTinySegmentsAreSkipped) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  IoCost c;
  const SegmentId id = space.Create(std::vector<int32_t>(1000, 1), &c);
  CompressionAdvisor advisor(&space);
  EXPECT_FALSE(advisor.IsColdRawCandidate(id, 100));  // below min_bytes
  advisor.NoteTried(id);
  EXPECT_FALSE(advisor.IsColdRawCandidate(id, 4000));  // tried: never again
  advisor.Forget(id);  // retirement clears the memory for id reuse safety
  EXPECT_FALSE(advisor.IsColdRawCandidate(id, 4000));  // fresh baseline
  EXPECT_TRUE(advisor.IsColdRawCandidate(id, 4000));
}

TEST(CompressionAdvisorTest, SweepPeriodGatesBoundaryCalls) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  CompressionAdvisor advisor(&space, CompressionAdvisor::Options{4, 512});
  int sweeps = 0;
  for (int i = 0; i < 16; ++i) sweeps += advisor.ShouldSweep() ? 1 : 0;
  EXPECT_EQ(sweeps, 4);
}

// ---------------------------------------------------------------------------
// Strategy parity: compression ON delivers the same result sets as OFF
// ---------------------------------------------------------------------------

std::unique_ptr<AccessStrategy<OidValue>> MakeOidStrategy(
    size_t kind, std::vector<OidValue> pairs, SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<OidValue>>(std::move(pairs), kDomain,
                                                      space);
    case 1:
      return std::make_unique<StaticPartition<OidValue>>(std::move(pairs),
                                                         kDomain, 8, space);
    case 2:
      return std::make_unique<PositionalBlocks<OidValue>>(
          std::move(pairs), kDomain, 16 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<OidValue>>(std::move(pairs),
                                                        kDomain, space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    case 5:
      return std::make_unique<DeferredSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
  }
}

/// Low-cardinality (quantized) pairs: the value lane dictionary-encodes and
/// the oid lane delta-encodes, so cold segments compress well.
std::vector<OidValue> MakeQuantizedPairs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<OidValue> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = std::floor(rng.NextUniform(kDomain.lo, kDomain.hi));
    out.push_back({i, v});
  }
  return out;
}

TEST(CompressionParityTest, AllStrategiesSameResultsOnAndOff) {
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    SegmentSpace off_space;
    SegmentSpace on_space(CostParams{}, 0, CompressionOn());
    auto pairs = MakeQuantizedPairs(20000, 321);
    auto off = MakeOidStrategy(kind, pairs, &off_space);
    auto on = MakeOidStrategy(kind, pairs, &on_space);

    // A Zipf workload leaves most of the domain cold, so sweeps re-encode
    // real segments mid-run; interleaved appends exercise the hot path.
    ZipfRangeGenerator gen(kDomain, 0.05, 17);
    Rng ins(71);
    uint64_t next_oid = pairs.size();
    for (int i = 0; i < 120; ++i) {
      if (i % 10 == 9) {
        std::vector<OidValue> batch;
        for (int j = 0; j < 50; ++j) {
          batch.push_back({next_oid++,
                           std::floor(ins.NextUniform(kDomain.lo, kDomain.hi))});
        }
        off->Append(batch);
        on->Append(batch);
        continue;
      }
      const ValueRange q = gen.Next().range;
      std::vector<OidValue> off_result, on_result;
      const QueryExecution off_ex = off->RunRange(q, &off_result);
      const QueryExecution on_ex = on->RunRange(q, &on_result);
      ASSERT_EQ(off_ex.result_count, on_ex.result_count)
          << "kind " << kind << " query " << i;
      ASSERT_EQ(SortedValues(off_result), SortedValues(on_result))
          << "kind " << kind << " query " << i;
      // Structure evolution must not depend on the codec seam: identical
      // split/merge/replica decisions on both sides.
      ASSERT_EQ(off_ex.splits, on_ex.splits) << "kind " << kind;
      ASSERT_EQ(off_ex.merges, on_ex.merges) << "kind " << kind;
      ASSERT_EQ(off_ex.replicas_created, on_ex.replicas_created)
          << "kind " << kind;
    }
    // The OFF space must be fully raw. The ON space must have encoded real
    // payloads (the cold bulk load at minimum) -- except cracking, whose
    // payloads live outside the space. End-state physical < logical is NOT
    // asserted: an append proves a segment hot and rewrites it raw, and this
    // workload's appends spread across the whole domain, so a strategy
    // without a sweep boundary (or one whose appends keep resetting the
    // advisor's cold baselines) can legitimately end fully raw again.
    EXPECT_EQ(off_space.stats().encode_bytes, 0u);
    EXPECT_EQ(off_space.total_physical_bytes(), off_space.total_logical_bytes());
    if (kind != 3) {
      EXPECT_GT(on_space.stats().encode_bytes, 0u)
          << "kind " << kind << " never compressed anything";
    }
  }
}

TEST(CompressionParityTest, SweepsRecompressColdSegmentsUnderZipf) {
  // Focused check that the Reorganize-boundary sweep fires: adaptive
  // segmentation under a hot-spot workload leaves the off-spot segments
  // cold, and the advisor must eventually re-encode them.
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  auto pairs = MakeQuantizedPairs(40000, 5);
  auto strat = MakeOidStrategy(4, pairs, &space);
  ZipfRangeGenerator gen(kDomain, 0.05, 29);
  uint64_t recompressed = 0;
  for (int i = 0; i < 100; ++i) {
    const QueryExecution ex = strat->RunRange(gen.Next().range);
    recompressed += ex.segments_recompressed;
  }
  EXPECT_GT(recompressed, 0u);
  EXPECT_EQ(space.stats().segments_recompressed, recompressed);
  EXPECT_GT(space.stats().decode_bytes, 0u);
  // Re-encoded segments must still be exact: audit every live segment.
  auto segs = strat->Segments();
  uint64_t encoded_segments = 0;
  for (const SegmentInfo& s : segs) {
    if (space.CodecOf(s.id) == SegmentCodec::kRaw) continue;
    ++encoded_segments;
    auto span = space.Peek<OidValue>(s.id);
    ASSERT_EQ(span.size(), s.count);
    for (const OidValue& v : span) {
      ASSERT_TRUE(s.range.Contains(ValueOf(v)));
    }
  }
  EXPECT_GT(encoded_segments, 0u);
}

TEST(CompressionParityTest, ConcurrentScansRaceSweepsSafely) {
  // 4 reader threads stream range queries while a writer thread drives
  // appends (and thus reorganization + sweeps) through the same strategy:
  // snapshot scans must keep delivering exact results while cold sweeps
  // swap encoded successors underneath them.
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  auto pairs = MakeQuantizedPairs(30000, 83);
  const std::vector<OidValue> frozen = pairs;  // oracle input
  auto strat = MakeOidStrategy(4, pairs, &space);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      ZipfRangeGenerator gen(kDomain, 0.05, 100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const ValueRange q = gen.Next().range;
        std::vector<OidValue> result;
        strat->RunRange(q, &result);
        // Appends only ever *add* rows, so the frozen-prefix oracle is a
        // lower bound and every frozen row in range must be present.
        const std::vector<double> expect = BruteForce(frozen, q);
        const std::vector<double> got = SortedValues(result);
        ASSERT_GE(got.size(), expect.size());
        ASSERT_TRUE(std::includes(got.begin(), got.end(), expect.begin(),
                                  expect.end()));
      }
    });
  }
  Rng ins(3);
  uint64_t next_oid = 30000;
  for (int i = 0; i < 40; ++i) {
    std::vector<OidValue> batch;
    for (int j = 0; j < 100; ++j) {
      batch.push_back({next_oid++,
                       std::floor(ins.NextUniform(kDomain.lo, kDomain.hi))});
    }
    strat->Append(batch);
  }
  stop.store(true);
  for (auto& th : readers) th.join();
}

// ---------------------------------------------------------------------------
// Server integration: #compression report and a balanced ledger after Stop
// ---------------------------------------------------------------------------

TEST(CompressionServerTest, CompressionReportAndBalancedLedger) {
  SegmentSpace space(CostParams{}, 0, CompressionOn());
  Catalog cat;
  auto pairs = MakeQuantizedPairs(20000, 11);
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle("T", "v"), ValType::kDbl,
      MakeOidStrategy(5, std::move(pairs), &space), &space);
  ASSERT_TRUE(cat.AddSegmentedColumn("T", "v", std::move(col)).ok());
  TaskScheduler sched(2);
  server::SqlServer srv(&cat, &sched, server::SqlServer::Options{});
  ASSERT_TRUE(srv.Start().ok());
  uint64_t trailer_recompressed = 0;
  {
    auto conn = client::Connection::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(conn.ok());
    UniformRangeGenerator gen(kDomain, 0.05, 9);
    char buf[160];
    for (int i = 0; i < 40; ++i) {
      const ValueRange q = gen.Next().range;
      std::snprintf(buf, sizeof(buf),
                    "select count(*) from T where v between %.17g and %.17g",
                    q.lo, std::nextafter(q.hi, q.lo));
      auto reply = conn->Execute(buf);
      ASSERT_TRUE(reply.ok() && reply->ok);
      trailer_recompressed += reply->stats.segments_recompressed;
    }
    auto report = conn->Execute("#compression");
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->ok) << report->error;
    ASSERT_EQ(report->rows.size(), 1u);  // one segmented column
    EXPECT_EQ(report->columns[0], "column");
    EXPECT_NE(report->rows[0].find("sys_T_v"), std::string::npos);
  }
  srv.Stop();
  // After the graceful drain nothing may stay pending, and the codec-seam
  // counters must balance: every recompression the store recorded happened
  // either on a statement (its #stats trailer) or on the background lane
  // (the maintenance ledger), never off the books.
  const auto ledger = srv.Ledger();
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
  EXPECT_EQ(space.stats().segments_recompressed,
            trailer_recompressed +
                ledger.background_total.segments_recompressed);
}

}  // namespace
}  // namespace socs
