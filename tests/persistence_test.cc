// Persistence (save/restore of a learned segmentation) and bulk appends.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/column_persistence.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

std::unique_ptr<SegmentationModel> Model() {
  return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
}

std::string TempDirFor(const char* name) {
  const std::string dir = ::testing::TempDir() + "/socs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(PersistenceTest, SaveLoadRoundtripPreservesLayoutAndData) {
  auto data = MakeUniformIntColumn(50000, 500000, 1);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.05, 2);
  for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
  const auto before = strat.Segments();
  ASSERT_GT(before.size(), 5u);

  const std::string dir = TempDirFor("roundtrip");
  ASSERT_TRUE(SaveSegments<int32_t>(before, space, dir).ok());

  SegmentSpace space2;
  auto loaded = LoadSegments<int32_t>(&space2, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ((*loaded)[i].range, before[i].range);
    EXPECT_EQ((*loaded)[i].count, before[i].count);
    // Payloads byte-identical.
    auto a = space.Peek<int32_t>(before[i].id);
    auto b = space2.Peek<int32_t>((*loaded)[i].id);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(PersistenceTest, RestoredStrategyAnswersQueries) {
  auto data = MakeUniformIntColumn(30000, 300000, 3);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 300000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 300000), 0.05, 4);
  for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);

  const std::string dir = TempDirFor("restore");
  ASSERT_TRUE(SaveSegments<int32_t>(strat.Segments(), space, dir).ok());

  SegmentSpace space2;
  auto loaded = LoadSegments<int32_t>(&space2, dir);
  ASSERT_TRUE(loaded.ok());
  AdaptiveSegmentation<int32_t> restored(ValueRange(0, 300000),
                                         std::move(loaded.value()), Model(),
                                         &space2);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double lo = rng.NextUniform(0, 280000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 20000));
    std::vector<int32_t> result;
    restored.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
  }
  // The learned layout carried over: no warm-up rescan of the whole column.
  auto ex = restored.RunRange(ValueRange(100000, 110000));
  EXPECT_LT(ex.read_bytes, 50000u);
}

TEST(PersistenceTest, LoadRejectsValueSizeMismatch) {
  auto data = MakeUniformIntColumn(1000, 10000, 6);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000), Model(),
                                      &space);
  const std::string dir = TempDirFor("mismatch");
  ASSERT_TRUE(SaveSegments<int32_t>(strat.Segments(), space, dir).ok());
  SegmentSpace space2;
  auto loaded = LoadSegments<double>(&space2, dir);  // wrong type
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, LoadMissingDirIsNotFound) {
  SegmentSpace space;
  auto loaded = LoadSegments<int32_t>(&space, "/nonexistent/socs/dir");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(PersistenceTest, OidValuePayloadRoundtrip) {
  SegmentSpace space;
  std::vector<OidValue> data;
  Rng rng(7);
  for (uint64_t i = 0; i < 5000; ++i) data.push_back({i, rng.NextUniform(0, 100)});
  AdaptiveSegmentation<OidValue> strat(data, ValueRange(0, 100),
                                       std::make_unique<Apm>(1024, 4096), &space);
  strat.RunRange(ValueRange(20, 60));
  const std::string dir = TempDirFor("oidvalue");
  ASSERT_TRUE(SaveSegments<OidValue>(strat.Segments(), space, dir).ok());
  SegmentSpace space2;
  auto loaded = LoadSegments<OidValue>(&space2, dir);
  ASSERT_TRUE(loaded.ok());
  uint64_t total = 0;
  for (const auto& s : *loaded) total += s.count;
  EXPECT_EQ(total, 5000u);
}

TEST(BulkAppendTest, AppendedValuesAreQueryable) {
  auto data = MakeUniformIntColumn(20000, 100000, 8);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.05, 9);
  for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);

  auto extra = MakeUniformIntColumn(5000, 100000, 10);
  auto ex = strat.BulkAppend(extra);
  EXPECT_GT(ex.write_bytes, extra.size() * sizeof(int32_t));

  std::vector<int32_t> all = data;
  all.insert(all.end(), extra.begin(), extra.end());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 20000));
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(all, q)) << "query " << i;
    ASSERT_TRUE(strat.index().Validate().ok());
  }
  EXPECT_EQ(strat.index().TotalCount(), 25000u);
}

TEST(BulkAppendTest, RewritesOnlyAffectedSegments) {
  auto data = MakeUniformIntColumn(50000, 500000, 12);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.05, 13);
  for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
  // Append values into a narrow range: only that neighbourhood is rewritten.
  std::vector<int32_t> extra;
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    extra.push_back(static_cast<int32_t>(rng.NextInt(100000, 105000)));
  }
  auto ex = strat.BulkAppend(extra);
  EXPECT_LT(ex.read_bytes, 60000u);  // a few segments, not the whole 200KB
}

TEST(BulkAppendTest, EmptyAppendIsNoop) {
  auto data = MakeUniformIntColumn(1000, 10000, 15);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000), Model(),
                                      &space);
  auto ex = strat.BulkAppend({});
  EXPECT_EQ(ex.write_bytes, 0u);
  EXPECT_EQ(strat.index().TotalCount(), 1000u);
}

TEST(BulkAppendTest, AppendThenAdaptSplitsGrownSegments) {
  // After a load makes segments exceed Mmax, subsequent queries re-split.
  auto data = MakeUniformIntColumn(10000, 100000, 16);  // 40KB
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.1, 17);
  for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);
  const size_t before = strat.Segments().size();
  strat.BulkAppend(MakeUniformIntColumn(30000, 100000, 18));  // x4 the data
  for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
  EXPECT_GT(strat.Segments().size(), before);
  EXPECT_TRUE(strat.index().Validate().ok());
}

}  // namespace
}  // namespace socs
