// Persistence (a learned segmentation surviving a store close/reopen through
// the durable segment store, src/persist) and bulk appends. The historical
// text-file column dump this suite once covered is gone; the same guarantees
// -- layout preserved, payload bytes preserved, restored strategy answers
// queries without a warm-up rescan, type mismatches rejected -- now ride the
// PersistentStore + SaveState/RestoreStrategy path the server uses.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/strategy_restore.h"
#include "persist/store.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

std::unique_ptr<SegmentationModel> Model() {
  return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
}

std::string TempDirFor(const char* name) {
  const std::string dir = ::testing::TempDir() + "/socs_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

StatusOr<std::unique_ptr<persist::PersistentStore>> OpenStore(
    const std::string& dir) {
  persist::PersistentStore::Options opts;
  opts.dir = dir;
  return persist::PersistentStore::Open(std::move(opts));
}

/// Materializes every blob the reopened store holds into `space` -- the
/// recovery half the engine-level RestoreDatabase performs before strategy
/// reconstruction.
void MaterializeAll(persist::PersistentStore* store, SegmentSpace* space) {
  for (SegmentId id : store->AllSegments()) {
    auto blob = store->ReadSegment(id);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    space->RestoreSegment(id, std::move(blob->physical), blob->codec,
                          blob->logical_bytes);
  }
}

TEST(PersistenceTest, SaveLoadRoundtripPreservesLayoutAndData) {
  const std::string dir = TempDirFor("roundtrip");
  auto data = MakeUniformIntColumn(50000, 500000, 1);
  std::vector<std::byte> state_bytes;
  std::vector<SegmentInfo> before;
  std::vector<std::vector<int32_t>> payloads;
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    SegmentSpace space;
    space.set_durability(store->get());
    AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000), Model(),
                                        &space);
    UniformRangeGenerator gen(ValueRange(0, 500000), 0.05, 2);
    for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
    before = strat.Segments();
    ASSERT_GT(before.size(), 5u);
    for (const SegmentInfo& s : before) {
      auto span = space.Peek<int32_t>(s.id);
      payloads.emplace_back(span.begin(), span.end());
    }
    StrategyState saved;
    ASSERT_TRUE(strat.SaveState(&saved).ok());
    state_bytes = saved.Serialize();
    ASSERT_TRUE((*store)->health().ok()) << (*store)->health().ToString();
    space.set_durability(nullptr);  // keep the blobs through teardown
  }

  // Reopen from disk: the object table replays from the delta log (no
  // checkpoint was ever taken), the blobs come back from the class files.
  auto store2 = OpenStore(dir);
  ASSERT_TRUE(store2.ok()) << store2.status().ToString();
  SegmentSpace space2;
  MaterializeAll(store2->get(), &space2);
  auto state = StrategyState::Parse(state_bytes);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  auto loaded = RestoreStrategy<int32_t>(*state, &space2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto after = (*loaded)->Segments();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].range, before[i].range);
    EXPECT_EQ(after[i].count, before[i].count);
    EXPECT_EQ(after[i].id, before[i].id);
    // Payloads byte-identical.
    auto b = space2.Peek<int32_t>(after[i].id);
    ASSERT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(), b.begin(),
                           b.end()));
  }
}

TEST(PersistenceTest, RestoredStrategyAnswersQueries) {
  const std::string dir = TempDirFor("restore");
  auto data = MakeUniformIntColumn(30000, 300000, 3);
  std::vector<std::byte> state_bytes;
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    SegmentSpace space;
    space.set_durability(store->get());
    AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 300000), Model(),
                                        &space);
    UniformRangeGenerator gen(ValueRange(0, 300000), 0.05, 4);
    for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);
    StrategyState saved;
    ASSERT_TRUE(strat.SaveState(&saved).ok());
    state_bytes = saved.Serialize();
    space.set_durability(nullptr);
  }

  auto store2 = OpenStore(dir);
  ASSERT_TRUE(store2.ok()) << store2.status().ToString();
  SegmentSpace space2;
  MaterializeAll(store2->get(), &space2);
  auto state = StrategyState::Parse(state_bytes);
  ASSERT_TRUE(state.ok());
  auto restored_or = RestoreStrategy<int32_t>(*state, &space2);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  AccessStrategy<int32_t>& restored = **restored_or;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double lo = rng.NextUniform(0, 280000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 20000));
    std::vector<int32_t> result;
    restored.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
  }
  // The learned layout carried over: no warm-up rescan of the whole column.
  auto ex = restored.RunRange(ValueRange(100000, 110000));
  EXPECT_LT(ex.read_bytes, 50000u);
}

TEST(PersistenceTest, RestoreRejectsValueSizeMismatch) {
  const std::string dir = TempDirFor("mismatch");
  auto data = MakeUniformIntColumn(1000, 10000, 6);
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  SegmentSpace space;
  space.set_durability(store->get());
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000), Model(),
                                      &space);
  StrategyState state;
  ASSERT_TRUE(strat.SaveState(&state).ok());
  auto loaded = RestoreStrategy<double>(state, &space);  // wrong type
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  space.set_durability(nullptr);
}

TEST(PersistenceTest, OpenMissingDirFails) {
  auto store = OpenStore("/nonexistent/socs/dir");
  EXPECT_FALSE(store.ok());
}

TEST(PersistenceTest, OidValuePayloadRoundtrip) {
  const std::string dir = TempDirFor("oidvalue");
  std::vector<OidValue> data;
  Rng rng(7);
  for (uint64_t i = 0; i < 5000; ++i) {
    data.push_back({i, rng.NextUniform(0, 100)});
  }
  std::vector<std::byte> state_bytes;
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    SegmentSpace space;
    space.set_durability(store->get());
    AdaptiveSegmentation<OidValue> strat(data, ValueRange(0, 100),
                                         std::make_unique<Apm>(1024, 4096),
                                         &space);
    strat.RunRange(ValueRange(20, 60));
    StrategyState saved;
    ASSERT_TRUE(strat.SaveState(&saved).ok());
    state_bytes = saved.Serialize();
    space.set_durability(nullptr);
  }
  auto store2 = OpenStore(dir);
  ASSERT_TRUE(store2.ok());
  SegmentSpace space2;
  MaterializeAll(store2->get(), &space2);
  auto state = StrategyState::Parse(state_bytes);
  ASSERT_TRUE(state.ok());
  auto loaded = RestoreStrategy<OidValue>(*state, &space2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  uint64_t total = 0;
  for (const auto& s : (*loaded)->Segments()) total += s.count;
  EXPECT_EQ(total, 5000u);
}

TEST(BulkAppendTest, AppendedValuesAreQueryable) {
  auto data = MakeUniformIntColumn(20000, 100000, 8);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.05, 9);
  for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);

  auto extra = MakeUniformIntColumn(5000, 100000, 10);
  auto ex = strat.BulkAppend(extra);
  EXPECT_GT(ex.write_bytes, extra.size() * sizeof(int32_t));

  std::vector<int32_t> all = data;
  all.insert(all.end(), extra.begin(), extra.end());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 20000));
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(all, q)) << "query " << i;
    ASSERT_TRUE(strat.index().Validate().ok());
  }
  EXPECT_EQ(strat.index().TotalCount(), 25000u);
}

TEST(BulkAppendTest, RewritesOnlyAffectedSegments) {
  auto data = MakeUniformIntColumn(50000, 500000, 12);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.05, 13);
  for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
  // Append values into a narrow range: only that neighbourhood is rewritten.
  std::vector<int32_t> extra;
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    extra.push_back(static_cast<int32_t>(rng.NextInt(100000, 105000)));
  }
  auto ex = strat.BulkAppend(extra);
  EXPECT_LT(ex.read_bytes, 60000u);  // a few segments, not the whole 200KB
}

TEST(BulkAppendTest, EmptyAppendIsNoop) {
  auto data = MakeUniformIntColumn(1000, 10000, 15);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000), Model(),
                                      &space);
  auto ex = strat.BulkAppend({});
  EXPECT_EQ(ex.write_bytes, 0u);
  EXPECT_EQ(strat.index().TotalCount(), 1000u);
}

TEST(BulkAppendTest, AppendThenAdaptSplitsGrownSegments) {
  // After a load makes segments exceed Mmax, subsequent queries re-split.
  auto data = MakeUniformIntColumn(10000, 100000, 16);  // 40KB
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000), Model(),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.1, 17);
  for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);
  const size_t before = strat.Segments().size();
  strat.BulkAppend(MakeUniformIntColumn(30000, 100000, 18));  // x4 the data
  for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
  EXPECT_GT(strat.Segments().size(), before);
  EXPECT_TRUE(strat.index().Validate().ok());
}

}  // namespace
}  // namespace socs
