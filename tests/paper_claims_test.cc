// The paper's quantitative headline claims, asserted at the full simulation
// scale (section 6.1: 100K values / 1M domain / APM 3KB-12KB). These tests
// are the executable form of EXPERIMENTS.md: if one fails, the reproduction
// drifted from the paper.
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/gaussian_dice.h"
#include "core/run_stats.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

constexpr size_t kValues = 100'000;
constexpr int32_t kDomain = 1'000'000;
constexpr uint64_t kMmin = 3 * kKiB;
constexpr uint64_t kMmax = 12 * kKiB;

std::vector<int32_t> Column() { return MakeUniformIntColumn(kValues, kDomain, 2008); }

std::unique_ptr<SegmentationModel> ApmModel() {
  return std::make_unique<Apm>(kMmin, kMmax);
}

template <typename S>
RunRecorder Drive(S& strat, double sel, size_t n, uint64_t seed = 77) {
  UniformRangeGenerator gen(ValueRange(0, kDomain), sel, seed);
  RunRecorder rec;
  for (size_t i = 0; i < n; ++i) {
    rec.Record(strat.RunRange(gen.Next().range), strat.Footprint());
  }
  return rec;
}

// Paper section 6.1.1 / Fig. 5: "For all combinations of selectivity and
// distribution, adaptive replication requires less writes than its
// counterpart segmentation ... for the deterministic APM model, the
// reduction of writes is stable by a factor of 2.5."
TEST(PaperClaims, ApmReplicationWritesFactorBelowSegmentation) {
  auto data = Column();
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> segm(data, ValueRange(0, kDomain), ApmModel(), &s1);
  AdaptiveReplication<int32_t> repl(data, ValueRange(0, kDomain), ApmModel(), &s2);
  RunRecorder r1 = Drive(segm, 0.1, 3000);
  RunRecorder r2 = Drive(repl, 0.1, 3000);
  const double factor =
      r1.CumulativeWrites().back() / r2.CumulativeWrites().back();
  EXPECT_GT(factor, 1.4);  // paper: ~2.5; shape claim: solidly above 1
  EXPECT_LT(factor, 6.0);
}

// Paper section 6.1.1: "the APM model stops reorganizing the column after an
// initial number of queries" (uniform placement).
TEST(PaperClaims, ApmSaturatesUnderUniformLoad) {
  auto data = Column();
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, kDomain), ApmModel(),
                                      &space);
  RunRecorder rec = Drive(strat, 0.1, 3000);
  const auto cum = rec.CumulativeWrites();
  // Writes in the last two thirds are a tiny fraction of the total.
  EXPECT_LT(cum.back() - cum[999], 0.05 * cum.back());
}

// Paper section 6.1.1: "the GD model keeps issuing reorganization with
// decreasing probability."
TEST(PaperClaims, GdKeepsReorganizingLongAfterApmStops) {
  auto data = Column();
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> gd(data, ValueRange(0, kDomain),
                                   std::make_unique<GaussianDice>(5), &s1);
  AdaptiveSegmentation<int32_t> apm(data, ValueRange(0, kDomain), ApmModel(), &s2);
  RunRecorder rg = Drive(gd, 0.1, 3000);
  RunRecorder ra = Drive(apm, 0.1, 3000);
  const auto cg = rg.CumulativeWrites();
  const auto ca = ra.CumulativeWrites();
  const double gd_tail = cg.back() - cg[999];
  const double apm_tail = ca.back() - ca[999];
  EXPECT_GT(gd_tail, 4 * apm_tail);
}

// Paper Table 1, selectivity 0.1: "the number of reads converges to the
// minimal number of 40KB for all strategies" (40.7-45.0 KB in the paper).
TEST(PaperClaims, Table1ReadsConvergeToSelectionSizeAtSel01) {
  auto data = Column();
  for (int which = 0; which < 4; ++which) {
    SegmentSpace space;
    std::unique_ptr<AccessStrategy<int32_t>> strat;
    std::unique_ptr<SegmentationModel> model =
        which < 2 ? std::unique_ptr<SegmentationModel>(
                        std::make_unique<GaussianDice>(7))
                  : ApmModel();
    if (which % 2 == 0) {
      strat = std::make_unique<AdaptiveSegmentation<int32_t>>(
          data, ValueRange(0, kDomain), std::move(model), &space);
    } else {
      strat = std::make_unique<AdaptiveReplication<int32_t>>(
          data, ValueRange(0, kDomain), std::move(model), &space);
    }
    RunRecorder rec = Drive(*strat, 0.1, 4000);
    const double avg_kb = rec.AverageReadBytes() / 1024.0;
    EXPECT_GT(avg_kb, 38.0) << strat->Name();
    EXPECT_LT(avg_kb, 55.0) << strat->Name();
  }
}

// Paper Table 1, selectivity 0.01: "the number of reads with the APM model
// converges to 11-13KB and does not reach the minimum determined by the
// selection size of 4KB ... since entire segments are read the number of
// reads cannot go under the segment sizes."
TEST(PaperClaims, Table1ApmReadsFlooredBySegmentSizeAtSel001) {
  auto data = Column();
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, kDomain), ApmModel(),
                                      &space);
  RunRecorder rec = Drive(strat, 0.01, 10000);
  const double avg_kb = rec.AverageReadBytes() / 1024.0;
  EXPECT_GT(avg_kb, 4.0);   // above the 4KB selection size
  EXPECT_LT(avg_kb, 14.0);  // but bounded by Mmax-sized segments
  // And GD stays well above APM under uniform placement (31.2 vs 12.7 KB).
  SegmentSpace s2;
  AdaptiveSegmentation<int32_t> gd(data, ValueRange(0, kDomain),
                                   std::make_unique<GaussianDice>(9), &s2);
  RunRecorder rg = Drive(gd, 0.01, 10000);
  EXPECT_GT(rg.AverageReadBytes(), 1.8 * rec.AverageReadBytes());
}

// Paper section 6.1.3 / Fig. 8: "with a uniformly distributed query load, the
// replica tree needs extra storage of about 1.5 times the column size, which
// reduces substantially after the first 250 queries" -- and the tree
// "transforms into a structure very close to the segment list created by
// adaptive segmentation."
TEST(PaperClaims, ReplicaStoragePeaksThenCollapses) {
  auto data = Column();
  const uint64_t column_bytes = kValues * sizeof(int32_t);
  SegmentSpace space;
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, kDomain), ApmModel(),
                                     &space);
  RunRecorder rec = Drive(strat, 0.1, 2000);
  const auto& storage = rec.storage_bytes();
  const double peak = *std::max_element(storage.begin(), storage.end());
  EXPECT_GT(peak, 1.3 * column_bytes);  // real extra storage appears
  EXPECT_LT(peak, 3.0 * column_bytes);  // but bounded (~2.5x in the paper)
  // After convergence, storage returns close to the column size.
  EXPECT_LT(storage.back(), 1.3 * column_bytes);
}

// Paper section 6.1.3: "storage needs always reduce faster with the GD
// model" (GD materializes whole virtual segments on a no-split decision,
// releasing parents sooner).
TEST(PaperClaims, GdReplicaStorageShrinksFasterThanApm) {
  auto data = Column();
  SegmentSpace s1, s2;
  AdaptiveReplication<int32_t> gd(data, ValueRange(0, kDomain),
                                  std::make_unique<GaussianDice>(11), &s1);
  AdaptiveReplication<int32_t> apm(data, ValueRange(0, kDomain), ApmModel(), &s2);
  RunRecorder rg = Drive(gd, 0.1, 600, 33);
  RunRecorder ra = Drive(apm, 0.1, 600, 33);
  // Compare the query index at which storage first returns below 1.2x column.
  const double threshold = 1.2 * kValues * sizeof(int32_t);
  auto first_below = [&](const std::vector<double>& s) {
    for (size_t i = 100; i < s.size(); ++i) {
      if (s[i] < threshold) return i;
    }
    return s.size();
  };
  EXPECT_LE(first_below(rg.storage_bytes()), first_below(ra.storage_bytes()));
}

// Paper Fig. 7: replication shows full-column-scan spikes when queries hit
// areas covered only by virtual segments; segmentation does not.
TEST(PaperClaims, ReplicationSpikesSegmentationDoesNot) {
  auto data = Column();
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> segm(data, ValueRange(0, kDomain), ApmModel(), &s1);
  AdaptiveReplication<int32_t> repl(data, ValueRange(0, kDomain), ApmModel(), &s2);
  RunRecorder r1 = Drive(segm, 0.1, 1000, 55);
  RunRecorder r2 = Drive(repl, 0.1, 1000, 55);
  auto spikes_after = [&](const std::vector<double>& reads, size_t from) {
    int n = 0;
    for (size_t i = from; i < reads.size(); ++i) n += reads[i] >= 300'000.0;
    return n;
  };
  EXPECT_EQ(spikes_after(r1.reads(), 10), 0);   // segmentation: none after warmup
  EXPECT_GT(spikes_after(r2.reads(), 10), 0);   // replication: early spikes exist
  EXPECT_EQ(spikes_after(r2.reads(), 500), 0);  // and they die out
}

}  // namespace
}  // namespace socs
