// Differential fuzzing of the execution stack. Two oracles, both driven by
// seeded randomized SQL streams (interleaved SELECT/INSERT, uniform and Zipf
// predicate placement, random strategy kinds and thread counts):
//
//   A. engine vs core -- the SQL->MAL engine path (segment optimizer with
//      selection push-down + BPM iterator + bpm.adapt) against the direct
//      AccessStrategy::RunRange/Append path on a twin store: per-statement
//      execution records and end-of-stream IoStats must match byte for byte.
//   B. batched vs unbatched -- the same client traffic against two fresh SQL
//      servers, one with cooperative shared scans ON and one OFF (the
//      per-statement baseline): serialized wire replies, #stats trailers
//      included, must be byte-identical (single client: per statement;
//      concurrent identical clients: as multisets).
//
// Every failure prints the SOCS_FUZZ_SEED that reproduces it. ctest runs the
// fixed-seed smoke mode; override SOCS_FUZZ_SEED / SOCS_FUZZ_ITERS to fuzz
// wider:
//
//   SOCS_FUZZ_SEED=12345 SOCS_FUZZ_ITERS=200 ./fuzz_differential_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "engine/catalog.h"
#include "engine/mal_builder.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "exec/task_scheduler.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/compiler.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using client::Connection;
using server::SqlServer;

constexpr size_t kNumStrategies = 7;
const ValueRange kDomain(0.0, 360.0);

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::unique_ptr<AccessStrategy<OidValue>> MakeOidStrategy(
    size_t kind, std::vector<OidValue> pairs, SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<OidValue>>(std::move(pairs), kDomain,
                                                      space);
    case 1:
      return std::make_unique<StaticPartition<OidValue>>(std::move(pairs),
                                                         kDomain, 8, space);
    case 2:
      return std::make_unique<PositionalBlocks<OidValue>>(
          std::move(pairs), kDomain, 16 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<OidValue>>(std::move(pairs),
                                                        kDomain, space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    case 5:
      return std::make_unique<DeferredSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
  }
}

std::vector<OidValue> MakePairs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<OidValue> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({i, rng.NextUniform(kDomain.lo, kDomain.hi)});
  }
  return out;
}

std::unique_ptr<QueryGenerator> MakeGenerator(bool zipf, double selectivity,
                                              uint64_t seed) {
  if (zipf) {
    return std::make_unique<ZipfRangeGenerator>(kDomain, selectivity, seed);
  }
  return std::make_unique<UniformRangeGenerator>(kDomain, selectivity, seed);
}

// ---------------------------------------------------------------------------
// Part A: engine vs core, randomized streams
// ---------------------------------------------------------------------------

/// The hand-built Fig.-1-style plan (identical to parity_test's): inclusive
/// uselect over a segmented dbl column -- the shape the segment optimizer
/// rewrites into filtered (mode-2) segment delivery.
MalProgram BuildSelectPlan(double lo, double hi) {
  MalProgram prog;
  MalBuilder b(&prog);
  const int ra = b.Call("sql", "bind",
                        {MalArg::Str("sys"), MalArg::Str("P"), MalArg::Str("ra"),
                         MalArg::Num(0)});
  const int cand = b.Call("algebra", "uselect",
                          {MalArg::Var(ra), MalArg::Num(lo), MalArg::Num(hi),
                           MalArg::Num(1), MalArg::Num(1)});
  const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
  const int marked =
      b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
  const int renum = b.Call("bat", "reverse", {MalArg::Var(marked)});
  const int objid = b.Call("sql", "bind",
                           {MalArg::Str("sys"), MalArg::Str("P"),
                            MalArg::Str("objid"), MalArg::Num(0)});
  const int joined =
      b.Call("algebra", "join", {MalArg::Var(renum), MalArg::Var(objid)});
  const int rs = b.Call("sql", "resultSet", {});
  b.CallVoid("sql", "rsColumn",
             {MalArg::Var(rs), MalArg::Str("P.objid"), MalArg::Var(joined)});
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

void CheckRecordParity(const QueryExecution& eng, const QueryExecution& core,
                       int step) {
  ASSERT_EQ(eng.read_bytes, core.read_bytes) << "step " << step;
  ASSERT_EQ(eng.write_bytes, core.write_bytes) << "step " << step;
  ASSERT_EQ(eng.splits, core.splits) << "step " << step;
  ASSERT_EQ(eng.segments_scanned, core.segments_scanned) << "step " << step;
  ASSERT_EQ(eng.result_count, core.result_count) << "step " << step;
  ASSERT_EQ(eng.merges, core.merges) << "step " << step;
  ASSERT_EQ(eng.replicas_created, core.replicas_created) << "step " << step;
  ASSERT_EQ(eng.segments_dropped, core.segments_dropped) << "step " << step;
  ASSERT_EQ(eng.replicas_evicted, core.replicas_evicted) << "step " << step;
  EXPECT_DOUBLE_EQ(eng.selection_seconds, core.selection_seconds)
      << "step " << step;
  EXPECT_DOUBLE_EQ(eng.adaptation_seconds, core.adaptation_seconds)
      << "step " << step;
}

/// One randomized engine-vs-core round: a random strategy kind, random
/// scheduler width, random predicate placement (uniform/Zipf) and
/// selectivity, random insert cadence -- per-statement record parity plus
/// end-of-stream storage parity.
void FuzzEngineCoreOnce(uint64_t seed) {
  SCOPED_TRACE("reproduce with SOCS_FUZZ_SEED=" + std::to_string(seed));
  Rng meta(seed);
  const size_t kind = static_cast<size_t>(meta.NextInt(0, kNumStrategies - 1));
  // A threaded engine gets a background lane, and the interpreter hands
  // deferred batches to it after bpm.adapt -- work the core twin (which has
  // no lane) runs on the query path instead. Deferred segmentation (kind 5)
  // therefore only has record parity against the unthreaded engine.
  const size_t threads = kind != 5 && meta.NextInt(0, 1) == 1 ? 4 : 1;
  const bool zipf = meta.NextInt(0, 1) == 1;
  const double selectivity = meta.NextUniform(0.01, 0.15);
  const int insert_every = static_cast<int>(meta.NextInt(3, 6));
  const size_t n = 6000;
  const int steps = 60;
  SCOPED_TRACE("kind=" + std::to_string(kind) +
               " threads=" + std::to_string(threads) +
               " zipf=" + std::to_string(zipf));

  auto pairs = MakePairs(n, seed ^ 0xda7a5eedULL);
  std::vector<int64_t> objid;
  objid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    objid.push_back(static_cast<int64_t>(1'000'000 + i));
  }

  SegmentSpace engine_space, core_space;
  Catalog cat;
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle("P", "ra"), ValType::kDbl,
      MakeOidStrategy(kind, pairs, &engine_space), &engine_space);
  ASSERT_TRUE(cat.AddSegmentedColumn("P", "ra", std::move(col)).ok());
  ASSERT_TRUE(cat.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  auto direct = MakeOidStrategy(kind, pairs, &core_space);

  MalInterpreter interp(&cat);
  TaskScheduler sched(threads);
  if (threads > 1) interp.set_exec(&sched);
  auto gen = MakeGenerator(zipf, selectivity, seed ^ 0x9e3779b9ULL);
  Rng ins(seed ^ 0x1235813ULL);
  uint64_t core_rows = n;

  for (int step = 0; step < steps; ++step) {
    if (step % insert_every == insert_every - 1) {
      sql::InsertStmt stmt;
      stmt.table = "P";  // VALUES bind in declaration order: (ra, objid)
      const size_t batch = 1 + static_cast<size_t>(ins.NextInt(0, 3));
      std::vector<OidValue> core_pairs;
      for (size_t r = 0; r < batch; ++r) {
        // Occasionally stray past the domain to exercise widening parity.
        const double hi = ins.NextInt(0, 9) == 0 ? 380.0 : kDomain.hi;
        const double v = ins.NextUniform(kDomain.lo, hi);
        stmt.rows.push_back({v, static_cast<double>(2'000'000 + step)});
        core_pairs.push_back({core_rows + r, v});
      }
      auto prog = sql::Compile(stmt, cat);
      ASSERT_TRUE(prog.ok()) << prog.status().ToString();
      OptContext ctx;
      ctx.catalog = &cat;
      PassManager pm = MakeDefaultPipeline();
      ASSERT_TRUE(pm.Run(&prog.value(), &ctx).ok());
      auto rs = interp.Run(*prog);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      const QueryExecution core = direct->Append(core_pairs);
      core_rows += batch;
      ASSERT_EQ(*cat.RowCount("P"), core_rows) << "step " << step;
      CheckRecordParity(interp.last_execution(), core, step);
    } else {
      const ValueRange q = gen->Next().range;
      MalProgram prog = BuildSelectPlan(q.lo, q.hi);
      OptContext ctx;
      ctx.catalog = &cat;
      PassManager pm = MakeDefaultPipeline();
      ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
      auto rs = interp.Run(prog);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      const QueryExecution core =
          direct->RunRange(SegmentedColumn::InclusiveToHalfOpen(q.lo, q.hi));
      CheckRecordParity(interp.last_execution(), core, step);
      ASSERT_EQ((*rs)->NumRows(), core.result_count) << "step " << step;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // End-of-stream: the storage layers saw identical traffic, byte for byte.
  EXPECT_EQ(engine_space.stats().mem_read_bytes,
            core_space.stats().mem_read_bytes);
  EXPECT_EQ(engine_space.stats().mem_write_bytes,
            core_space.stats().mem_write_bytes);
  EXPECT_EQ(engine_space.stats().segments_created,
            core_space.stats().segments_created);
  EXPECT_EQ(engine_space.stats().segments_scanned,
            core_space.stats().segments_scanned);
}

TEST(FuzzDifferential, EngineVsCoreRandomizedStreams) {
  const uint64_t base = EnvU64("SOCS_FUZZ_SEED", 20260808);
  const uint64_t iters = EnvU64("SOCS_FUZZ_ITERS", 5);
  for (uint64_t i = 0; i < iters; ++i) {
    FuzzEngineCoreOnce(base + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Part B: batched vs unbatched server, randomized client traffic
// ---------------------------------------------------------------------------

std::string FuzzTableOf(size_t kind) { return "F" + std::to_string(kind); }

void AddFuzzTable(size_t kind, uint64_t seed, Catalog* cat,
                  SegmentSpace* space) {
  auto pairs = MakePairs(4000, seed ^ 0x0ddba11ULL);
  std::vector<int64_t> ids;
  ids.reserve(pairs.size());
  for (size_t j = 0; j < pairs.size(); ++j) {
    ids.push_back(static_cast<int64_t>(6'000'000 + j));
  }
  const std::string table = FuzzTableOf(kind);
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle(table, "v"), ValType::kDbl,
      MakeOidStrategy(kind, std::move(pairs), space), space);
  ASSERT_TRUE(cat->AddSegmentedColumn(table, "v", std::move(col)).ok());
  ASSERT_TRUE(cat->AddColumn(table, "id", TypedVector::Of(ids)).ok());
}

/// Seed-determined single-client script: batchable SELECT runs, count(*)
/// variants, INSERT barriers, an occasional unparsable line (ERR replies
/// must be identical too).
std::vector<std::string> MakeFuzzScript(size_t kind, uint64_t seed,
                                        size_t steps) {
  const std::string table = FuzzTableOf(kind);
  Rng meta(seed ^ 0xf00dULL);
  const bool zipf = meta.NextInt(0, 1) == 1;
  auto gen = MakeGenerator(zipf, meta.NextUniform(0.02, 0.12), seed ^ 0xbeefULL);
  Rng ins(seed ^ 0xca11ULL);
  std::vector<std::string> script;
  char buf[256];
  for (size_t s = 0; s < steps; ++s) {
    const int roll = static_cast<int>(ins.NextInt(0, 9));
    if (roll == 0) {
      script.push_back("select nonsense from nowhere");  // deterministic ERR
      continue;
    }
    if (roll <= 2) {
      const double v = ins.NextUniform(kDomain.lo, kDomain.hi);
      std::snprintf(buf, sizeof(buf),
                    "insert into %s (v, id) values (%.17g, %ld)", table.c_str(),
                    v, 7'000'000 + static_cast<long>(s));
      script.emplace_back(buf);
      continue;
    }
    const ValueRange q = gen->Next().range;
    const double hi = std::nextafter(q.hi, q.lo);  // inclusive form
    if (roll <= 6) {
      std::snprintf(buf, sizeof(buf),
                    "select id from %s where v between %.17g and %.17g",
                    table.c_str(), q.lo, hi);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "select count(*) from %s where v between %.17g and %.17g",
                    table.c_str(), q.lo, hi);
    }
    script.emplace_back(buf);
  }
  return script;
}

struct ServerRun {
  std::vector<std::string> replies;  // ordered (1 client) or arrival order
  uint64_t batches = 0;
  uint64_t saved = 0;
};

/// Runs the given traffic against a fresh store + server. Single-threaded
/// scheduler: background maintenance only runs at Stop(), so the query-time
/// stream is deterministic and the ON/OFF comparison is exact for every
/// strategy, the deferred one included.
ServerRun RunServer(size_t kind, uint64_t seed, bool shared_scans,
                    size_t clients, size_t executors,
                    const std::vector<std::string>& script,
                    bool compression = false, bool kernels = true) {
  ServerRun out;
  Catalog cat;
  SegmentSpace::Options sopts;
  sopts.compression = compression;
  sopts.kernels = kernels;
  SegmentSpace space(CostParams{}, /*pool_capacity_bytes=*/0, sopts);
  TaskScheduler sched(1);
  AddFuzzTable(kind, seed, &cat, &space);
  if (::testing::Test::HasFatalFailure()) return out;

  SqlServer::Options opts;
  opts.executors = executors;
  opts.max_pending_per_session = 6;
  opts.shared_scans = shared_scans;
  SqlServer srv(&cat, &sched, opts);
  EXPECT_TRUE(srv.Start().ok());

  if (clients == 1) {
    // void lambda so ASSERT_* (which returns) is usable here.
    [&] {
      auto conn = Connection::Connect("127.0.0.1", srv.port());
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      size_t in_flight = 0;
      for (const std::string& stmt : script) {
        ASSERT_TRUE(conn->Send(stmt).ok());
        if (++in_flight == 4) {
          auto reply = conn->ReadReply();
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
          out.replies.push_back(reply->Serialize());
          --in_flight;
        }
      }
      while (out.replies.size() < script.size()) {
        auto reply = conn->ReadReply();
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        out.replies.push_back(reply->Serialize());
      }
    }();
  } else {
    // Concurrent clients all pipeline the SAME statement sequence, so the
    // global execution order is some interleaving of identical statements
    // and reply multisets are comparable across servers.
    std::mutex mu;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        auto conn = Connection::Connect("127.0.0.1", srv.port());
        ASSERT_TRUE(conn.ok()) << conn.status().ToString();
        for (const std::string& stmt : script) {
          ASSERT_TRUE(conn->Send(stmt).ok());
        }
        for (size_t i = 0; i < script.size(); ++i) {
          auto reply = conn->ReadReply();
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
          std::lock_guard<std::mutex> lk(mu);
          out.replies.push_back(reply->Serialize());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  srv.Stop();
  out.batches = srv.scan_batches();
  out.saved = srv.shared_scans_saved();

  // The maintenance ledger balances whether or not batching ran.
  const auto ledger = srv.Ledger();
  EXPECT_EQ(ledger.schedules, ledger.runs + ledger.skips);
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
  return out;
}

/// One randomized batched-vs-unbatched round.
void FuzzServerPairOnce(uint64_t seed) {
  SCOPED_TRACE("reproduce with SOCS_FUZZ_SEED=" + std::to_string(seed));
  Rng meta(seed);
  const size_t kind = static_cast<size_t>(meta.NextInt(0, kNumStrategies - 1));
  const size_t clients =
      static_cast<size_t>(1) << static_cast<size_t>(meta.NextInt(0, 2));
  SCOPED_TRACE("kind=" + std::to_string(kind) +
               " clients=" + std::to_string(clients));

  if (clients == 1) {
    // Varied stream, random executor crew: one session serializes its own
    // statements, so replies are byte-comparable per index.
    const size_t executors = static_cast<size_t>(meta.NextInt(1, 3));
    const std::vector<std::string> script = MakeFuzzScript(kind, seed, 40);
    const ServerRun on = RunServer(kind, seed, true, 1, executors, script);
    if (::testing::Test::HasFatalFailure()) return;
    const ServerRun off = RunServer(kind, seed, false, 1, executors, script);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(on.replies.size(), off.replies.size());
    for (size_t i = 0; i < on.replies.size(); ++i) {
      ASSERT_EQ(on.replies[i], off.replies[i])
          << "statement " << i << ": " << script[i];
    }
    EXPECT_EQ(off.batches, 0u);
    EXPECT_EQ(off.saved, 0u);
  } else {
    // Identical hot statements from every client, ONE executor on both
    // servers: the global order is the same statement multiset either way,
    // so serialized replies must agree as multisets -- batched or not.
    const double lo = meta.NextUniform(kDomain.lo, kDomain.hi - 40.0);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "select id from %s where v between %.17g and %.17g",
                  FuzzTableOf(kind).c_str(), lo, lo + 40.0);
    const std::vector<std::string> script(5, std::string(buf));
    const ServerRun on = RunServer(kind, seed, true, clients, 1, script);
    if (::testing::Test::HasFatalFailure()) return;
    const ServerRun off = RunServer(kind, seed, false, clients, 1, script);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(on.replies.size(), off.replies.size());
    std::vector<std::string> a = on.replies, b = off.replies;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
    EXPECT_EQ(off.batches, 0u);
  }
}

TEST(FuzzDifferential, BatchedVsUnbatchedServerRandomizedTraffic) {
  const uint64_t base = EnvU64("SOCS_FUZZ_SEED", 20260808);
  const uint64_t iters = EnvU64("SOCS_FUZZ_ITERS", 6);
  for (uint64_t i = 0; i < iters; ++i) {
    FuzzServerPairOnce(base + 1000 + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// One randomized compressed-vs-raw round: the same single-client traffic
/// against a compression-ON and a compression-OFF server. Reply ROWS and
/// result counts must be identical -- the codec seam may change physical
/// bytes and add decode CPU (so #stats trailers legitimately differ), but
/// it must never change what a query returns.
void FuzzCompressedVsRawOnce(uint64_t seed) {
  SCOPED_TRACE("reproduce with SOCS_FUZZ_SEED=" + std::to_string(seed));
  Rng meta(seed);
  const size_t kind = static_cast<size_t>(meta.NextInt(0, kNumStrategies - 1));
  const bool shared = meta.NextInt(0, 1) == 1;
  SCOPED_TRACE("kind=" + std::to_string(kind) +
               " shared=" + std::to_string(shared));
  const std::vector<std::string> script = MakeFuzzScript(kind, seed, 40);
  const ServerRun raw =
      RunServer(kind, seed, shared, 1, 2, script, /*compression=*/false);
  if (::testing::Test::HasFatalFailure()) return;
  const ServerRun comp =
      RunServer(kind, seed, shared, 1, 2, script, /*compression=*/true);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_EQ(raw.replies.size(), comp.replies.size());
  for (size_t i = 0; i < raw.replies.size(); ++i) {
    // Parse both reply blocks and compare the result-bearing parts.
    std::istringstream r2(raw.replies[i]), c2(comp.replies[i]);
    auto pr = server::ParseReply(
        [&](std::string* l) { return static_cast<bool>(std::getline(r2, *l)); });
    auto pc = server::ParseReply(
        [&](std::string* l) { return static_cast<bool>(std::getline(c2, *l)); });
    ASSERT_TRUE(pr.ok() && pc.ok()) << "statement " << i;
    ASSERT_EQ(pr->ok, pc->ok) << "statement " << i << ": " << script[i];
    ASSERT_EQ(pr->error, pc->error) << "statement " << i;
    ASSERT_EQ(pr->columns, pc->columns) << "statement " << i;
    std::vector<std::string> rrows = pr->rows, crows = pc->rows;
    std::sort(rrows.begin(), rrows.end());
    std::sort(crows.begin(), crows.end());
    ASSERT_EQ(rrows, crows) << "statement " << i << ": " << script[i];
    ASSERT_EQ(pr->stats.result_count, pc->stats.result_count)
        << "statement " << i;
  }
}

TEST(FuzzDifferential, CompressedVsRawServerRandomizedTraffic) {
  const uint64_t base = EnvU64("SOCS_FUZZ_SEED", 20260808);
  const uint64_t iters = EnvU64("SOCS_FUZZ_ITERS", 6);
  for (uint64_t i = 0; i < iters; ++i) {
    FuzzCompressedVsRawOnce(base + 2000 + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// One randomized kernels-on-vs-off round: compression ON on both servers,
/// the scan kernels toggled. Kernels change only *how* encoded segments are
/// filtered (and therefore the decode-CPU charges in the #stats trailer);
/// reply rows and result counts must be byte-identical -- the kernels-off
/// server is the decode-then-filter differential oracle.
void FuzzKernelsOnVsOffOnce(uint64_t seed) {
  SCOPED_TRACE("reproduce with SOCS_FUZZ_SEED=" + std::to_string(seed));
  Rng meta(seed);
  const size_t kind = static_cast<size_t>(meta.NextInt(0, kNumStrategies - 1));
  const bool shared = meta.NextInt(0, 1) == 1;
  SCOPED_TRACE("kind=" + std::to_string(kind) +
               " shared=" + std::to_string(shared));
  const std::vector<std::string> script = MakeFuzzScript(kind, seed, 40);
  const ServerRun off = RunServer(kind, seed, shared, 1, 2, script,
                                  /*compression=*/true, /*kernels=*/false);
  if (::testing::Test::HasFatalFailure()) return;
  const ServerRun on = RunServer(kind, seed, shared, 1, 2, script,
                                 /*compression=*/true, /*kernels=*/true);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_EQ(off.replies.size(), on.replies.size());
  for (size_t i = 0; i < off.replies.size(); ++i) {
    std::istringstream o2(off.replies[i]), n2(on.replies[i]);
    auto po = server::ParseReply(
        [&](std::string* l) { return static_cast<bool>(std::getline(o2, *l)); });
    auto pn = server::ParseReply(
        [&](std::string* l) { return static_cast<bool>(std::getline(n2, *l)); });
    ASSERT_TRUE(po.ok() && pn.ok()) << "statement " << i;
    ASSERT_EQ(po->ok, pn->ok) << "statement " << i << ": " << script[i];
    ASSERT_EQ(po->error, pn->error) << "statement " << i;
    ASSERT_EQ(po->columns, pn->columns) << "statement " << i;
    std::vector<std::string> orows = po->rows, nrows = pn->rows;
    std::sort(orows.begin(), orows.end());
    std::sort(nrows.begin(), nrows.end());
    ASSERT_EQ(orows, nrows) << "statement " << i << ": " << script[i];
    ASSERT_EQ(po->stats.result_count, pn->stats.result_count)
        << "statement " << i;
  }
}

TEST(FuzzDifferential, KernelsOnVsOffServerRandomizedTraffic) {
  const uint64_t base = EnvU64("SOCS_FUZZ_SEED", 20260808);
  const uint64_t iters = EnvU64("SOCS_FUZZ_ITERS", 6);
  for (uint64_t i = 0; i < iters; ++i) {
    FuzzKernelsOnVsOffOnce(base + 3000 + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Part C: pinned snapshots vs structure mutation, randomized interleavings
// ---------------------------------------------------------------------------

/// Snapshot-capable strategy kinds (cracking opts out of versioned covers).
std::unique_ptr<AccessStrategy<int32_t>> MakeSnapshotStrategy(
    size_t kind, std::vector<int32_t> data, const ValueRange& domain,
    SegmentSpace* space) {
  auto model = std::make_unique<Apm>(2 * kKiB, 8 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<int32_t>>(std::move(data), domain,
                                                     space);
    case 1:
      return std::make_unique<StaticPartition<int32_t>>(std::move(data), domain,
                                                        8, space);
    case 2:
      return std::make_unique<PositionalBlocks<int32_t>>(
          std::move(data), domain, 8 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<AdaptiveSegmentation<int32_t>>(
          std::move(data), domain, std::move(model), space);
    case 4:
      return std::make_unique<DeferredSegmentation<int32_t>>(
          std::move(data), domain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<int32_t>>(
          std::move(data), domain, std::move(model), space);
  }
}

/// One randomized snapshot-isolation round: pin covers at random points of a
/// mutating statement stream (appends, reorganizing selects, idle flushes),
/// release them in random order, and require every stale cover to deliver
/// exactly the value multiset the column held at its pin time -- then the
/// retire list to drain once the last pin goes.
void FuzzSnapshotVsMutationOnce(uint64_t seed) {
  SCOPED_TRACE("reproduce with SOCS_FUZZ_SEED=" + std::to_string(seed));
  Rng meta(seed);
  const size_t kind = static_cast<size_t>(meta.NextInt(0, 5));
  SCOPED_TRACE("snapshot kind=" + std::to_string(kind));
  const ValueRange domain(0, 1'000'000);

  Rng data_rng(seed ^ 0x5eedULL);
  std::vector<int32_t> oracle;
  for (size_t i = 0; i < 5000; ++i) {
    oracle.push_back(static_cast<int32_t>(data_rng.NextInt(0, 999'999)));
  }
  SegmentSpace space;
  auto strat = MakeSnapshotStrategy(kind, oracle, domain, &space);

  struct Pinned {
    size_t slot;
    std::shared_ptr<const ColumnCover> cover;
    std::vector<int32_t> expect;  // sorted value multiset at pin time
  };
  std::vector<Pinned> pins;
  const auto verify_and_release = [&](size_t idx) {
    Pinned p = std::move(pins[idx]);
    pins.erase(pins.begin() + idx);
    std::vector<int32_t> rows;
    for (const SegmentInfo& seg : p.cover->Cover(domain)) {
      strat->ScanSegment(seg, domain, &rows);
    }
    std::sort(rows.begin(), rows.end());
    ASSERT_EQ(rows, p.expect)
        << "stale cover at epoch " << p.cover->epoch()
        << " must deliver exactly the rows present when it was pinned";
    strat->UnpinCover(p.slot);
  };

  UniformRangeGenerator gen(domain, meta.NextUniform(0.03, 0.2), seed ^ 0xabcULL);
  Rng ins(seed ^ 0xdefULL);
  for (int step = 0; step < 80; ++step) {
    const int roll = static_cast<int>(ins.NextInt(0, 9));
    if (roll < 2 && pins.size() < 4) {
      Pinned p;
      p.cover = strat->PinCover(&p.slot);
      ASSERT_NE(p.cover, nullptr);
      p.expect = oracle;
      std::sort(p.expect.begin(), p.expect.end());
      pins.push_back(std::move(p));
    } else if (roll < 4 && !pins.empty()) {
      verify_and_release(static_cast<size_t>(ins.NextInt(0, pins.size() - 1)));
    } else if (roll < 6) {
      std::vector<int32_t> batch;
      const size_t n = 1 + static_cast<size_t>(ins.NextInt(0, 4));
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(static_cast<int32_t>(ins.NextInt(0, 999'999)));
      }
      strat->Append(batch);
      oracle.insert(oracle.end(), batch.begin(), batch.end());
    } else if (roll < 9) {
      strat->RunRange(gen.Next().range);  // may split/merge/replicate
    } else if (strat->HasIdleWork()) {
      strat->RunIdleWork();  // deferred batch flush under live pins
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  while (!pins.empty()) {
    verify_and_release(pins.size() - 1);
    if (::testing::Test::HasFatalFailure()) return;
  }

  // No reader left: everything ever retired must have been reclaimed.
  EXPECT_EQ(strat->epochs().ActivePins(), 0u);
  EXPECT_EQ(strat->PendingRetired(), 0u);
  EXPECT_EQ(strat->epochs().reclaims(), strat->epochs().retires());
}

TEST(FuzzDifferential, PinnedSnapshotsVsStructureMutation) {
  const uint64_t base = EnvU64("SOCS_FUZZ_SEED", 20260808);
  const uint64_t iters = EnvU64("SOCS_FUZZ_ITERS", 6);
  for (uint64_t i = 0; i < iters; ++i) {
    FuzzSnapshotVsMutationOnce(base + 2000 + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace socs
