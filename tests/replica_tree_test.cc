#include <gtest/gtest.h>

#include "core/replica_tree.h"

namespace socs {
namespace {

TEST(ReplicaTreeTest, InitColumnBuildsSingleMaterializedChild) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 42);
  EXPECT_TRUE(root->materialized);
  EXPECT_EQ(root->count, 1000u);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.MaterializedValues(), 1000u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(ReplicaTreeTest, GetCoverReturnsRootInitially) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 42);
  std::vector<ReplicaNode*> cover;
  ASSERT_TRUE(tree.GetCover(ValueRange(10, 20), &cover));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], root);
}

TEST(ReplicaTreeTest, GetCoverOutsideDomainIsEmpty) {
  ReplicaTree tree(ValueRange(0, 100));
  tree.InitColumn(1000, 42);
  std::vector<ReplicaNode*> cover;
  ASSERT_TRUE(tree.GetCover(ValueRange(200, 300), &cover));
  EXPECT_TRUE(cover.empty());
}

TEST(ReplicaTreeTest, AddChildrenTilesParent) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 42);
  auto kids = tree.AddChildren(
      root, {{{0, 30}, 300}, {{30, 60}, 300}, {{60, 100}, 400}});
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0]->parent, root);
  EXPECT_FALSE(kids[0]->materialized);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.NodeCount(), 4u);
  EXPECT_EQ(tree.MaxDepth(), 2u);
}

TEST(ReplicaTreeTest, CoverPrefersDeepestMaterialized) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 42);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  kids[0]->materialized = true;
  kids[0]->seg = 43;
  kids[0]->count = 480;
  kids[0]->count_exact = true;
  std::vector<ReplicaNode*> cover;
  // Query inside the materialized child: the child covers it.
  ASSERT_TRUE(tree.GetCover(ValueRange(10, 20), &cover));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], kids[0]);
  // Query overlapping the virtual child: fall back to the root.
  ASSERT_TRUE(tree.GetCover(ValueRange(40, 60), &cover));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], root);
}

TEST(ReplicaTreeTest, CoverUsesDisjointSubtrees) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 42);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  for (auto* k : kids) {
    k->materialized = true;
    k->seg = 50 + k->range.lo;
    k->count_exact = true;
  }
  std::vector<ReplicaNode*> cover;
  ASSERT_TRUE(tree.GetCover(ValueRange(40, 60), &cover));
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0], kids[0]);
  EXPECT_EQ(cover[1], kids[1]);
}

TEST(ReplicaTreeTest, CheckForDropReleasesFullyReplicatedParent) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 42);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  for (auto* k : kids) {
    k->materialized = true;
    k->seg = 50 + static_cast<SegmentId>(k->range.lo);
    k->count_exact = true;
  }
  std::vector<SegmentId> freed;
  uint64_t drops = 0;
  tree.CheckForDrop(root, &freed, &drops);
  EXPECT_EQ(drops, 1u);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 42u);  // the root's segment is released
  // The children now hang off the sentinel.
  EXPECT_EQ(tree.sentinel()->children.size(), 2u);
  EXPECT_EQ(tree.NodeCount(), 2u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(ReplicaTreeTest, DropCascadesBottomUp) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 1);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  kids[1]->materialized = true;
  kids[1]->seg = 2;
  // kids[0] is virtual but its own children become materialized:
  auto grand = tree.AddChildren(kids[0], {{{0, 20}, 200}, {{20, 50}, 300}});
  grand[0]->materialized = true;
  grand[0]->seg = 3;
  grand[1]->materialized = true;
  grand[1]->seg = 4;
  std::vector<SegmentId> freed;
  uint64_t drops = 0;
  tree.CheckForDrop(root, &freed, &drops);
  // kids[0] (virtual) dropped, then root dropped: grandchildren + kids[1]
  // splice up to the sentinel.
  EXPECT_EQ(drops, 2u);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 1u);
  EXPECT_EQ(tree.sentinel()->children.size(), 3u);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.MaxDepth(), 1u);
}

TEST(ReplicaTreeTest, NoDropWhileAnyChildVirtual) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 1);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  kids[0]->materialized = true;
  kids[0]->seg = 2;
  std::vector<SegmentId> freed;
  uint64_t drops = 0;
  tree.CheckForDrop(root, &freed, &drops);
  EXPECT_EQ(drops, 0u);
  EXPECT_TRUE(freed.empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(ReplicaTreeTest, SentinelNeverDropped) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 1);
  std::vector<SegmentId> freed;
  uint64_t drops = 0;
  tree.CheckForDrop(root, &freed, &drops);  // root is a leaf: nothing happens
  EXPECT_EQ(drops, 0u);
  EXPECT_EQ(tree.sentinel()->children.size(), 1u);
}

TEST(ReplicaTreeTest, EstimateCountInterpolates) {
  ReplicaNode n;
  n.range = ValueRange(0, 100);
  n.count = 1000;
  EXPECT_EQ(ReplicaTree::EstimateCount(n, ValueRange(0, 50)), 500u);
  EXPECT_EQ(ReplicaTree::EstimateCount(n, ValueRange(25, 35)), 100u);
  EXPECT_EQ(ReplicaTree::EstimateCount(n, ValueRange(0, 100)), 1000u);
  // Sub-range clipped to the node's range.
  EXPECT_EQ(ReplicaTree::EstimateCount(n, ValueRange(90, 200)), 100u);
}

TEST(ReplicaTreeTest, MaterializedNodesSortedByRange) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 1);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  kids[1]->materialized = true;
  kids[1]->seg = 2;
  kids[1]->count = 490;
  auto mats = tree.MaterializedNodes();
  ASSERT_EQ(mats.size(), 2u);
  EXPECT_EQ(mats[0]->range.lo, 0);   // root first (same lo, wider range)
  EXPECT_EQ(mats[1]->range.lo, 50);
  EXPECT_EQ(tree.MaterializedNodeCount(), 2u);
  EXPECT_EQ(tree.MaterializedValues(), 1490u);
}

TEST(ReplicaTreeTest, CoverInfosMatchesGetCover) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 7);
  auto infos = tree.CoverInfos(ValueRange(10, 20));
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].id, 7u);
  EXPECT_EQ(infos[0].count, 1000u);
  (void)root;
}

TEST(ReplicaTreeTest, ValidateCatchesUncoveredLeaf) {
  ReplicaTree tree(ValueRange(0, 100));
  ReplicaNode* root = tree.InitColumn(1000, 1);
  auto kids = tree.AddChildren(root, {{{0, 50}, 500}, {{50, 100}, 500}});
  root->materialized = false;  // break the invariant by hand
  EXPECT_FALSE(tree.Validate().ok());
  (void)kids;
}

}  // namespace
}  // namespace socs
