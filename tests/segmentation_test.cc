#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/gaussian_dice.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

std::unique_ptr<SegmentationModel> MakeModel(const std::string& kind) {
  if (kind == "GD") return std::make_unique<GaussianDice>(7);
  return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
}

TEST(AdaptiveSegmentationTest, StartsAsSingleSegment) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 1);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000),
                                      MakeModel("APM"), &space);
  EXPECT_EQ(strat.Segments().size(), 1u);
  EXPECT_EQ(strat.Footprint().materialized_bytes, 4000u);
}

TEST(AdaptiveSegmentationTest, FirstQuerySplitsWithApm) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 2);  // 400KB
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000000),
                                      MakeModel("APM"), &space);
  // A central 10% selection: all three pieces far above Mmin.
  auto ex = strat.RunRange(ValueRange(450000, 550000));
  EXPECT_EQ(ex.splits, 1u);
  EXPECT_EQ(strat.Segments().size(), 3u);
  // Eager materialization rewrites the whole segment.
  EXPECT_EQ(ex.write_bytes, 400000u);
  EXPECT_EQ(ex.read_bytes, 400000u);
  EXPECT_GT(ex.adaptation_seconds, 0.0);
}

TEST(AdaptiveSegmentationTest, SecondQueryReadsOnlyRelevantSegments) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 3);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000000),
                                      MakeModel("APM"), &space);
  strat.RunRange(ValueRange(450000, 550000));
  // Query inside the materialized middle piece: reads only that piece.
  auto ex = strat.RunRange(ValueRange(460000, 540000));
  EXPECT_LT(ex.read_bytes, 60000u);  // ~10% piece, not 400KB
}

TEST(AdaptiveSegmentationTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 4);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000),
                                      MakeModel("APM"), &space);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 20000));
    std::vector<int32_t> result;
    auto ex = strat.RunRange(q, &result);
    EXPECT_EQ(ex.result_count, result.size());
    EXPECT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
  }
}

TEST(AdaptiveSegmentationTest, TilingInvariantHoldsThroughout) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 6);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000),
                                      MakeModel("GD"), &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.1, 8);
  for (int i = 0; i < 200; ++i) {
    strat.RunRange(gen.Next().range);
    ASSERT_TRUE(strat.index().Validate().ok()) << "after query " << i;
    ASSERT_EQ(strat.index().TotalCount(), 20000u);
  }
}

TEST(AdaptiveSegmentationTest, ApmSegmentsConvergeToBounds) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 9);  // 400KB
  const uint64_t mmin = 3 * kKiB, mmax = 12 * kKiB;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000000),
                                      std::make_unique<Apm>(mmin, mmax), &space);
  UniformRangeGenerator gen(ValueRange(0, 1000000), 0.01, 10);
  for (int i = 0; i < 2000; ++i) strat.RunRange(gen.Next().range);
  // Paper: sizes of segments touched by queries converge to [Mmin, Mmax].
  size_t within = 0, total = 0;
  for (const auto& s : strat.Segments()) {
    ++total;
    const uint64_t bytes = s.count * sizeof(int32_t);
    if (bytes >= mmin / 2 && bytes <= mmax) ++within;  // allow edge stragglers
  }
  EXPECT_GT(total, 30u);
  EXPECT_GT(static_cast<double>(within) / total, 0.9);
}

TEST(AdaptiveSegmentationTest, ReadsDeclineAsColumnAdapts) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 11);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000000),
                                      MakeModel("APM"), &space);
  UniformRangeGenerator gen(ValueRange(0, 1000000), 0.1, 12);
  uint64_t first10 = 0, last10 = 0;
  for (int i = 0; i < 300; ++i) {
    auto ex = strat.RunRange(gen.Next().range);
    if (i < 10) first10 += ex.read_bytes;
    if (i >= 290) last10 += ex.read_bytes;
  }
  EXPECT_LT(last10, first10 / 2);  // converges toward the 40KB selection size
}

TEST(AdaptiveSegmentationTest, EmptyQueryIsNoop) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 13);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000),
                                      MakeModel("APM"), &space);
  auto ex = strat.RunRange(ValueRange(50, 50));
  EXPECT_EQ(ex.result_count, 0u);
  EXPECT_EQ(ex.read_bytes, 0u);
  EXPECT_EQ(strat.Segments().size(), 1u);
}

TEST(AdaptiveSegmentationTest, QueryOutsideDomainReadsNothing) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 14);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000),
                                      MakeModel("APM"), &space);
  auto ex = strat.RunRange(ValueRange(20000, 30000));
  EXPECT_EQ(ex.result_count, 0u);
  EXPECT_EQ(ex.read_bytes, 0u);
}

TEST(AdaptiveSegmentationTest, FullDomainQueryNeverSplits) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(10000, 10000, 15);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 10000),
                                      MakeModel("APM"), &space);
  auto ex = strat.RunRange(ValueRange(0, 10000));
  EXPECT_EQ(ex.result_count, 10000u);
  EXPECT_EQ(ex.splits, 0u);
  EXPECT_EQ(strat.Segments().size(), 1u);
}

TEST(AdaptiveSegmentationTest, WorksWithOidValuePairs) {
  SegmentSpace space;
  std::vector<OidValue> data;
  Rng rng(16);
  for (uint64_t i = 0; i < 5000; ++i) {
    data.push_back({i, rng.NextUniform(0, 1000)});
  }
  AdaptiveSegmentation<OidValue> strat(data, ValueRange(0, 1000),
                                       std::make_unique<Apm>(1024, 4096), &space);
  std::vector<OidValue> result;
  auto ex = strat.RunRange(ValueRange(200, 400), &result);
  EXPECT_EQ(SortedValues(result), BruteForce(data, ValueRange(200, 400)));
  EXPECT_EQ(ex.result_count, result.size());
  // Oids stay attached to their values across reorganizations.
  std::vector<OidValue> again;
  strat.RunRange(ValueRange(200, 400), &again);
  auto key = [](const OidValue& a, const OidValue& b) {
    return a.oid < b.oid;
  };
  std::sort(result.begin(), result.end(), key);
  std::sort(again.begin(), again.end(), key);
  EXPECT_EQ(result, again);
}

TEST(AdaptiveSegmentationTest, StorageFootprintConstant) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(50000, 500000, 17);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000),
                                      MakeModel("APM"), &space);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.05, 18);
  for (int i = 0; i < 100; ++i) strat.RunRange(gen.Next().range);
  // In-place reorganization: no extra payload storage, only the sparse index.
  EXPECT_EQ(strat.Footprint().materialized_bytes, 200000u);
  EXPECT_EQ(space.total_logical_bytes(), 200000u);
  EXPECT_LT(strat.Footprint().meta_bytes, 100 * kKiB);
}

// Property sweep: both models, several selectivities; results always match
// the oracle and the tiling invariant holds.
class SegmentationProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(SegmentationProperty, OracleAndInvariants) {
  const auto& [model, sel] = GetParam();
  SegmentSpace space;
  auto data = MakeUniformIntColumn(30000, 200000, 19);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 200000),
                                      MakeModel(model), &space);
  UniformRangeGenerator gen(ValueRange(0, 200000), sel, 20);
  for (int i = 0; i < 150; ++i) {
    const ValueRange q = gen.Next().range;
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q))
        << model << " sel=" << sel << " query " << i;
    ASSERT_TRUE(strat.index().Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSelectivities, SegmentationProperty,
    ::testing::Combine(::testing::Values("GD", "APM"),
                       ::testing::Values(0.001, 0.01, 0.1, 0.5)));

}  // namespace
}  // namespace socs
