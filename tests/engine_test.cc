#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "engine/catalog.h"
#include "engine/mal_builder.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "engine/segment_optimizer.h"

namespace socs {
namespace {

/// Builds a catalog with table P: `ra` (dbl, adaptively segmented) and
/// `objid` (lng, plain). Returns the raw ra values for oracle checks.
std::vector<double> SetupCatalog(Catalog* cat, SegmentSpace* space,
                                 size_t n = 20000) {
  Rng rng(77);
  std::vector<double> ra;
  std::vector<OidValue> pairs;
  std::vector<int64_t> objid;
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.NextUniform(0.0, 360.0);
    ra.push_back(v);
    pairs.push_back({i, v});
    objid.push_back(static_cast<int64_t>(1000000 + i));
  }
  auto strat = std::make_unique<AdaptiveSegmentation<OidValue>>(
      pairs, ValueRange(0.0, 360.0), std::make_unique<Apm>(8 * kKiB, 32 * kKiB),
      space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               space);
  EXPECT_TRUE(cat->AddSegmentedColumn("P", "ra", std::move(col)).ok());
  EXPECT_TRUE(cat->AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  return ra;
}

std::vector<int64_t> OracleObjids(const std::vector<double>& ra, double lo,
                                  double hi) {
  std::vector<int64_t> out;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i] >= lo && ra[i] <= hi) out.push_back(1000000 + i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> ResultColumn(const ResultSet& rs, size_t col = 0) {
  std::vector<int64_t> out;
  const Bat& b = *rs.cols.at(col).bat;
  for (size_t i = 0; i < b.size(); ++i) {
    out.push_back(static_cast<int64_t>(b.tail().DoubleAt(i)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The unoptimized Fig.-1-style plan for
/// select objid from P where ra between lo and hi.
MalProgram BuildSelectPlan(double lo, double hi) {
  MalProgram prog;
  MalBuilder b(&prog);
  const int ra = b.Call("sql", "bind",
                        {MalArg::Str("sys"), MalArg::Str("P"), MalArg::Str("ra"),
                         MalArg::Num(0)});
  const int cand = b.Call("algebra", "uselect",
                          {MalArg::Var(ra), MalArg::Num(lo), MalArg::Num(hi),
                           MalArg::Num(1), MalArg::Num(1)});
  const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
  const int marked = b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
  const int renum = b.Call("bat", "reverse", {MalArg::Var(marked)});
  const int objid = b.Call("sql", "bind",
                           {MalArg::Str("sys"), MalArg::Str("P"),
                            MalArg::Str("objid"), MalArg::Num(0)});
  const int joined = b.Call("algebra", "join", {MalArg::Var(renum), MalArg::Var(objid)});
  const int rs = b.Call("sql", "resultSet", {});
  b.CallVoid("sql", "rsColumn",
             {MalArg::Var(rs), MalArg::Str("P.objid"), MalArg::Var(joined)});
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

TEST(MalProgramTest, PrintsLikeFigure1) {
  MalProgram prog = BuildSelectPlan(205.1, 205.12);
  const std::string s = prog.ToString();
  EXPECT_NE(s.find("sql.bind(\"sys\", \"P\", \"ra\", 0)"), std::string::npos);
  EXPECT_NE(s.find("algebra.uselect"), std::string::npos);
  EXPECT_NE(s.find("sql.exportResult"), std::string::npos);
}

TEST(MalInterpreterTest, ExecutesUnoptimizedPlan) {
  Catalog cat;
  SegmentSpace space;
  auto ra = SetupCatalog(&cat, &space);
  MalInterpreter interp(&cat);
  auto rs = interp.Run(BuildSelectPlan(100.0, 110.0));
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(ResultColumn(**rs), OracleObjids(ra, 100.0, 110.0));
}

TEST(MalInterpreterTest, UnknownOperatorIsUnimplemented) {
  Catalog cat;
  MalInterpreter interp(&cat);
  MalProgram prog;
  MalBuilder b(&prog);
  b.Call("nope", "mystery", {});
  auto rs = interp.Run(prog);
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnimplemented);
}

TEST(MalInterpreterTest, MismatchedBarrierFails) {
  Catalog cat;
  MalInterpreter interp(&cat);
  MalProgram prog;
  MalBuilder b(&prog);
  b.Barrier("bpm", "newIterator", {});
  // no exit
  EXPECT_FALSE(interp.Run(prog).ok());
}

TEST(CatalogTest, BindAndErrors) {
  Catalog cat;
  ASSERT_TRUE(cat.AddColumn("t", "a", TypedVector::Of(std::vector<int32_t>{1, 2})).ok());
  EXPECT_TRUE(cat.HasTable("t"));
  EXPECT_TRUE(cat.HasColumn("t", "a"));
  EXPECT_FALSE(cat.IsSegmented("t", "a"));
  auto b = cat.Bind("t", "a");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 2u);
  EXPECT_FALSE(cat.Bind("t", "zz").ok());
  EXPECT_FALSE(cat.Bind("zz", "a").ok());
  // Duplicate column.
  EXPECT_EQ(cat.AddColumn("t", "a", TypedVector::Of(std::vector<int32_t>{1, 2}))
                .code(),
            StatusCode::kAlreadyExists);
  // Row count mismatch.
  EXPECT_EQ(cat.AddColumn("t", "b", TypedVector::Of(std::vector<int32_t>{1})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.RowCount("t").value(), 2u);
}

TEST(CatalogTest, SegmentedBindSynthesizesFullScan) {
  Catalog cat;
  SegmentSpace space;
  auto ra = SetupCatalog(&cat, &space, 5000);
  EXPECT_TRUE(cat.IsSegmented("P", "ra"));
  auto b = cat.Bind("P", "ra");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), ra.size());
  auto seg = cat.GetSegmented(Catalog::SegHandle("P", "ra"));
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ((*seg)->sql_type(), ValType::kDbl);
  EXPECT_FALSE(cat.GetSegmented("sys_nope_x").ok());
}

TEST(SegmentOptimizerTest, RewritesSelectOverSegmentedColumn) {
  Catalog cat;
  SegmentSpace space;
  SetupCatalog(&cat, &space, 5000);
  MalProgram prog = BuildSelectPlan(10.0, 20.0);
  OptContext ctx;
  ctx.catalog = &cat;
  SegmentOptimizerPass pass;
  ASSERT_TRUE(pass.Apply(&prog, &ctx).ok());
  EXPECT_EQ(pass.rewrites(), 1);
  const std::string s = prog.ToString();
  EXPECT_NE(s.find("bpm.take(\"sys_P_ra\")"), std::string::npos);
  EXPECT_NE(s.find("barrier"), std::string::npos);
  EXPECT_NE(s.find("bpm.newIterator"), std::string::npos);
  EXPECT_NE(s.find("bpm.hasMoreElements"), std::string::npos);
  EXPECT_NE(s.find("bpm.adapt"), std::string::npos);
}

TEST(SegmentOptimizerTest, LeavesPlainColumnsAlone) {
  Catalog cat;
  ASSERT_TRUE(
      cat.AddColumn("t", "a", TypedVector::Of(std::vector<int32_t>{1, 2, 3})).ok());
  MalProgram prog;
  MalBuilder b(&prog);
  const int col = b.Call("sql", "bind",
                         {MalArg::Str("sys"), MalArg::Str("t"), MalArg::Str("a"),
                          MalArg::Num(0)});
  b.Call("algebra", "uselect",
         {MalArg::Var(col), MalArg::Num(1), MalArg::Num(2)});
  OptContext ctx;
  ctx.catalog = &cat;
  SegmentOptimizerPass pass;
  ASSERT_TRUE(pass.Apply(&prog, &ctx).ok());
  EXPECT_EQ(pass.rewrites(), 0);
}

TEST(DeadCodeElimTest, RemovesUnusedPureInstr) {
  Catalog cat;
  MalProgram prog;
  MalBuilder b(&prog);
  b.Call("calc", "oid", {MalArg::Num(0)});  // dead
  const int rs = b.Call("sql", "resultSet", {});
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  OptContext ctx;
  ctx.catalog = &cat;
  DeadCodeElimPass dce;
  ASSERT_TRUE(dce.Apply(&prog, &ctx).ok());
  ASSERT_EQ(prog.instrs.size(), 2u);
  EXPECT_TRUE(prog.instrs[0].Is("sql", "resultSet"));
}

TEST(OptimizedPlanTest, SameResultsAsUnoptimized) {
  Catalog cat;
  SegmentSpace space;
  auto ra = SetupCatalog(&cat, &space);
  MalInterpreter interp(&cat);

  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {10.0, 30.0}, {100.0, 101.5}, {350.0, 360.0}, {0.0, 360.0}}) {
    MalProgram plain = BuildSelectPlan(lo, hi);
    auto rs1 = interp.Run(plain);
    ASSERT_TRUE(rs1.ok()) << rs1.status().ToString();

    MalProgram opt = BuildSelectPlan(lo, hi);
    OptContext ctx;
    ctx.catalog = &cat;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&opt, &ctx).ok());
    auto rs2 = interp.Run(opt);
    ASSERT_TRUE(rs2.ok()) << rs2.status().ToString();

    EXPECT_EQ(ResultColumn(**rs1), ResultColumn(**rs2)) << lo << ".." << hi;
    EXPECT_EQ(ResultColumn(**rs2), OracleObjids(ra, lo, hi));
  }
}

TEST(OptimizedPlanTest, DeadBindRemovedAfterRewrite) {
  Catalog cat;
  SegmentSpace space;
  SetupCatalog(&cat, &space, 5000);
  MalProgram prog = BuildSelectPlan(10.0, 20.0);
  OptContext ctx;
  ctx.catalog = &cat;
  PassManager pm = MakeDefaultPipeline();
  ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
  // The ra sql.bind must be gone (replaced by bpm.take); objid bind stays.
  int binds = 0;
  for (const auto& in : prog.instrs) binds += in.Is("sql", "bind");
  EXPECT_EQ(binds, 1);
}

TEST(OptimizedPlanTest, AdaptReorganizesOverTime) {
  Catalog cat;
  SegmentSpace space;
  SetupCatalog(&cat, &space);
  MalInterpreter interp(&cat);
  auto* segcol = cat.GetSegmentedOrNull("P", "ra");
  ASSERT_NE(segcol, nullptr);
  const size_t before = segcol->strategy()->Segments().size();
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const double lo = rng.NextUniform(0.0, 300.0);
    MalProgram prog = BuildSelectPlan(lo, lo + 30.0);
    OptContext ctx;
    ctx.catalog = &cat;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
    ASSERT_TRUE(interp.Run(prog).ok());
  }
  EXPECT_GT(segcol->strategy()->Segments().size(), before);
  EXPECT_GT(interp.last_execution().read_bytes, 0u);
}

TEST(FootprintPassTest, EstimatesSelectionBytes) {
  Catalog cat;
  SegmentSpace space;
  SetupCatalog(&cat, &space, 10000);  // 10000 OidValue pairs = 160KB
  MalProgram prog = BuildSelectPlan(0.0, 360.0);
  OptContext ctx;
  ctx.catalog = &cat;
  PassManager pm = MakeDefaultPipeline();
  ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
  // Whole-domain selection over one segment: estimate = column size.
  EXPECT_EQ(ctx.estimated_scan_bytes, 10000 * sizeof(OidValue));
}

TEST(BpmTest, ScanSegmentBatCarriesOidsAndMetersOnce) {
  Catalog cat;
  SegmentSpace space;
  SetupCatalog(&cat, &space, 1000);
  auto* segcol = cat.GetSegmentedOrNull("P", "ra");
  auto segs = segcol->CoverSegments(0.0, 360.0);
  ASSERT_EQ(segs.size(), 1u);
  const IoStats before = space.stats();
  QueryExecution ex;
  Bat b = segcol->ScanSegmentBat(segs[0], 0.0, 360.0, &ex);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_FALSE(b.head().is_void());
  EXPECT_EQ(b.tail().type(), ValType::kDbl);
  // Delivery charges the payload exactly once and meters the scan.
  EXPECT_EQ(ex.read_bytes, 1000 * sizeof(OidValue));
  EXPECT_EQ(ex.segments_scanned, 1u);
  EXPECT_EQ(ex.result_count, 1000u);
  EXPECT_EQ((space.stats() - before).mem_read_bytes, 1000 * sizeof(OidValue));
}

const MalInstr* FindNewIterator(const MalProgram& prog) {
  for (const MalInstr& in : prog.instrs) {
    if (in.Is("bpm", "newIterator")) return &in;
  }
  return nullptr;
}

// Cost-based plan choice: once the meta-index shows a select's cover is
// ~the whole column across several segments, the optimizer flags the
// iterator for coalesced delivery (5th newIterator arg); narrow selects
// keep per-segment delivery. The coalesced plan must return the same rows
// with the same metered accounting as the per-segment one.
TEST(PlanChoiceTest, CoalescesWholeColumnSelectsWithIdenticalAccounting) {
  Catalog cat;
  SegmentSpace space;
  auto ra = SetupCatalog(&cat, &space);
  MalInterpreter interp(&cat);

  // Warm up: narrow selects cut the initial whole-column segment at their
  // predicate boundaries (a full-domain select has no interior cut points),
  // then two settle rounds absorb any remaining adaptation.
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    const bool wide = i >= 30;  // last two rounds: full-domain settle
    const double lo = wide ? 0.0 : rng.NextUniform(0.0, 300.0);
    MalProgram prog = BuildSelectPlan(lo, wide ? 360.0 : lo + 30.0);
    OptContext ctx;
    ctx.catalog = &cat;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
    ASSERT_TRUE(interp.Run(prog).ok());
  }
  ASSERT_GT(cat.GetSegmentedOrNull("P", "ra")->CoverSegments(0.0, 360.0).size(),
            1u);

  // Whole-domain select: flagged for coalesced delivery.
  MalProgram wide = BuildSelectPlan(0.0, 360.0);
  OptContext ctx;
  ctx.catalog = &cat;
  PassManager pm = MakeDefaultPipeline();
  ASSERT_TRUE(pm.Run(&wide, &ctx).ok());
  const MalInstr* it = FindNewIterator(wide);
  ASSERT_NE(it, nullptr);
  ASSERT_EQ(it->args.size(), 5u);
  EXPECT_EQ(it->args[4].num, 1.0);

  // Narrow select: per-segment delivery stays.
  MalProgram narrow = BuildSelectPlan(10.0, 20.0);
  ASSERT_TRUE(pm.Run(&narrow, &ctx).ok());
  const MalInstr* nit = FindNewIterator(narrow);
  ASSERT_NE(nit, nullptr);
  EXPECT_EQ(nit->args.size(), 4u);

  // Same plan, flag stripped = the per-segment baseline. At steady state
  // (no further adaptation) both deliveries must agree on rows AND on every
  // metered byte.
  MalProgram plain = BuildSelectPlan(0.0, 360.0);
  ASSERT_TRUE(pm.Run(&plain, &ctx).ok());
  for (MalInstr& in : plain.instrs) {
    if (in.Is("bpm", "newIterator")) in.args.pop_back();
  }
  auto rs_plain = interp.Run(plain);
  ASSERT_TRUE(rs_plain.ok());
  const QueryExecution base = interp.last_execution();
  ASSERT_EQ(base.splits, 0u) << "structure not steady; parity undefined";

  auto rs_coal = interp.Run(wide);
  ASSERT_TRUE(rs_coal.ok());
  const QueryExecution coal = interp.last_execution();
  EXPECT_EQ(coal.read_bytes, base.read_bytes);
  EXPECT_EQ(coal.segments_scanned, base.segments_scanned);
  EXPECT_EQ(coal.result_count, base.result_count);
  EXPECT_EQ(coal.selection_seconds, base.selection_seconds);
  EXPECT_EQ(coal.splits, 0u);
  EXPECT_EQ((*rs_coal)->NumRows(), (*rs_plain)->NumRows());
  EXPECT_EQ(ResultColumn(**rs_coal), ResultColumn(**rs_plain));
  EXPECT_EQ(ResultColumn(**rs_coal), OracleObjids(ra, 0.0, 360.0));
}

}  // namespace
}  // namespace socs
