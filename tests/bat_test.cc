#include <gtest/gtest.h>

#include "bat/algebra.h"
#include "bat/bat.h"

namespace socs {
namespace {

Bat IntBat(std::vector<int32_t> vals, Oid seqbase = 0) {
  return Bat::DenseTyped(TypedVector::Of(std::move(vals)), seqbase);
}

TEST(TypedVectorTest, TypedRoundtrip) {
  auto v = TypedVector::Of(std::vector<int32_t>{1, 2, 3});
  EXPECT_EQ(v.type(), ValType::kInt);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.Get<int32_t>()[2], 3);
  EXPECT_DOUBLE_EQ(v.AsDouble(1), 2.0);
  EXPECT_EQ(v.PayloadBytes(), 12u);
}

TEST(TypedVectorTest, AppendDoubleConverts) {
  TypedVector v(ValType::kInt);
  v.AppendDouble(41.0);
  v.AppendDouble(42.9);  // narrows
  EXPECT_EQ(v.Get<int32_t>()[0], 41);
  EXPECT_EQ(v.Get<int32_t>()[1], 42);
}

TEST(BatColumnTest, VoidColumn) {
  BatColumn c = BatColumn::Void(100, 5);
  EXPECT_TRUE(c.is_void());
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.OidAt(3), 103u);
  EXPECT_DOUBLE_EQ(c.DoubleAt(0), 100.0);
  BatColumn m = c.MaterializeOids();
  EXPECT_FALSE(m.is_void());
  EXPECT_EQ(m.OidAt(4), 104u);
}

TEST(BatTest, DenseTypedAndDescribe) {
  Bat b = IntBat({5, 6, 7}, 10);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.head().OidAt(0), 10u);
  EXPECT_DOUBLE_EQ(b.tail().DoubleAt(2), 7.0);
  EXPECT_EQ(b.Describe(), "[void(10), int] 3 rows");
}

TEST(AlgebraTest, SelectInclusiveBounds) {
  Bat b = IntBat({10, 20, 30, 40, 50});
  auto r = algebra::Select(b, 20, 40);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ(r->head().OidAt(0), 1u);  // oid of value 20
  EXPECT_DOUBLE_EQ(r->tail().DoubleAt(2), 40.0);
  // Exclusive bounds.
  auto ex = algebra::Select(b, 20, 40, false, false);
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->size(), 1u);
  EXPECT_DOUBLE_EQ(ex->tail().DoubleAt(0), 30.0);
}

TEST(AlgebraTest, UselectReturnsCandidateList) {
  Bat b = IntBat({10, 20, 30, 40, 50});
  auto r = algebra::Uselect(b, 25, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_TRUE(r->tail().is_void());
  EXPECT_EQ(r->head().OidAt(0), 2u);
}

TEST(AlgebraTest, SelectOnVoidTailFails) {
  Bat cands = Bat::OidList({1, 2, 3});
  EXPECT_FALSE(algebra::Select(cands, 0, 10).ok());
}

TEST(AlgebraTest, KUnionDeduplicatesByHead) {
  Bat a = Bat::OidList({1, 2, 3});
  Bat b = Bat::OidList({3, 4});
  auto r = algebra::KUnion(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(AlgebraTest, KDifferenceRemovesMatches) {
  Bat a = Bat::OidList({1, 2, 3, 4});
  Bat b = Bat::OidList({2, 4, 9});
  auto r = algebra::KDifference(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->head().OidAt(0), 1u);
  EXPECT_EQ(r->head().OidAt(1), 3u);
}

TEST(AlgebraTest, KIntersectKeepsCommon) {
  Bat a = Bat::OidList({1, 2, 3, 4});
  Bat b = Bat::OidList({2, 4, 9});
  auto r = algebra::KIntersect(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->head().OidAt(0), 2u);
  EXPECT_EQ(r->head().OidAt(1), 4u);
}

TEST(AlgebraTest, ReverseSwapsColumns) {
  Bat b = IntBat({7, 8});
  Bat r = algebra::Reverse(b);
  EXPECT_FALSE(r.head().is_void());
  EXPECT_TRUE(r.tail().is_void());
  EXPECT_DOUBLE_EQ(r.head().DoubleAt(1), 8.0);
}

TEST(AlgebraTest, MarkTRenumbers) {
  Bat cands = Bat::OidList({10, 20, 30});
  Bat m = algebra::MarkT(cands, 0);
  EXPECT_EQ(m.head().OidAt(1), 20u);
  EXPECT_TRUE(m.tail().is_void());
  EXPECT_EQ(m.tail().OidAt(2), 2u);
}

TEST(AlgebraTest, JoinPositionalFetch) {
  // Tuple reconstruction: candidates joined with a [void, lng] column.
  Bat col = Bat::DenseTyped(TypedVector::Of(std::vector<int64_t>{100, 101, 102, 103}));
  Bat cands = Bat::OidList({1, 3});
  Bat renumbered = algebra::Reverse(algebra::MarkT(cands, 0));  // [void, oid]
  auto r = algebra::Join(renumbered, col);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ(r->tail().DoubleAt(0), 101.0);
  EXPECT_DOUBLE_EQ(r->tail().DoubleAt(1), 103.0);
}

TEST(AlgebraTest, JoinHashPath) {
  // Right side with a materialized (non-void, non-dense) head.
  Bat right(BatColumn::Materialized(TypedVector::Of(std::vector<Oid>{5, 9, 7})),
            BatColumn::Materialized(TypedVector::Of(std::vector<double>{0.5, 0.9, 0.7})));
  Bat left = algebra::Reverse(algebra::MarkT(Bat::OidList({9, 5}), 0));
  auto r = algebra::Join(left, right);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ(r->tail().DoubleAt(0), 0.9);
  EXPECT_DOUBLE_EQ(r->tail().DoubleAt(1), 0.5);
}

TEST(AlgebraTest, JoinDropsDanglingKeys) {
  Bat col = Bat::DenseTyped(TypedVector::Of(std::vector<int64_t>{100, 101}));
  Bat left = algebra::Reverse(algebra::MarkT(Bat::OidList({0, 7}), 0));
  auto r = algebra::Join(left, col);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);  // oid 7 has no match
}

TEST(AlgebraTest, AppendConcatenates) {
  Bat a = IntBat({1, 2});
  Bat b = IntBat({3}, 2);
  auto r = algebra::Append(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_DOUBLE_EQ(r->tail().DoubleAt(2), 3.0);
  EXPECT_EQ(r->head().OidAt(2), 2u);
}

TEST(AlgebraTest, AppendTypeMismatchFails) {
  Bat a = IntBat({1});
  Bat b = Bat::DenseTyped(TypedVector::Of(std::vector<double>{1.0}));
  EXPECT_FALSE(algebra::Append(a, b).ok());
}

TEST(AlgebraTest, AppendOidLists) {
  auto r = algebra::Append(Bat::OidList({1, 2}), Bat::OidList({5}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_TRUE(r->tail().is_void());
}

TEST(AlgebraTest, Aggregates) {
  Bat b = IntBat({4, 6, 2});
  EXPECT_DOUBLE_EQ(algebra::Sum(b).value(), 12.0);
  EXPECT_DOUBLE_EQ(algebra::Min(b).value(), 2.0);
  EXPECT_DOUBLE_EQ(algebra::Max(b).value(), 6.0);
  EXPECT_EQ(algebra::Count(b), 3u);
  Bat empty = IntBat({});
  EXPECT_FALSE(algebra::Min(empty).ok());
  EXPECT_FALSE(algebra::Max(empty).ok());
  EXPECT_DOUBLE_EQ(algebra::Sum(empty).value(), 0.0);
}

}  // namespace
}  // namespace socs
