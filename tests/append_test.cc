// The write path: AccessStrategy::Append across all seven strategies
// (correctness of append + reread, cost accounting with write bytes charged
// exactly once), the BulkAppend boundary bugfixes, the deferred FlushBatch
// fixes, and the SQL INSERT path through the engine for every strategy.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "sql/compiler.h"
#include "sql/parser.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

// ---------------------------------------------------------------------------
// Per-strategy append + reread correctness and accounting
// ---------------------------------------------------------------------------

constexpr const char* kStrategyNames[] = {
    "NonSegmented", "StaticPartition", "PositionalBlocks", "Cracking",
    "AdaptiveSegmentation", "DeferredSegmentation", "AdaptiveReplication",
};
constexpr size_t kNumStrategies = 7;

std::unique_ptr<AccessStrategy<int32_t>> MakeStrategy(size_t kind,
                                                      std::vector<int32_t> data,
                                                      const ValueRange& domain,
                                                      SegmentSpace* space) {
  auto model = std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<int32_t>>(std::move(data), domain,
                                                     space);
    case 1:
      return std::make_unique<StaticPartition<int32_t>>(std::move(data), domain,
                                                        8, space);
    case 2:
      return std::make_unique<PositionalBlocks<int32_t>>(
          std::move(data), domain, 4 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<int32_t>>(std::move(data), domain,
                                                       space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<int32_t>>(
          std::move(data), domain, std::move(model), space);
    case 5: {
      DeferredSegmentation<int32_t>::Options opts;
      opts.batch_queries = 8;
      return std::make_unique<DeferredSegmentation<int32_t>>(
          std::move(data), domain, std::move(model), space, opts);
    }
    default:
      return std::make_unique<AdaptiveReplication<int32_t>>(
          std::move(data), domain, std::move(model), space);
  }
}

TEST(AppendAllStrategies, AppendedValuesAreQueryable) {
  const ValueRange domain(0, 100000);
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    SCOPED_TRACE(kStrategyNames[kind]);
    auto data = MakeUniformIntColumn(20000, 100000, 21);
    SegmentSpace space;
    auto strat = MakeStrategy(kind, data, domain, &space);

    // Warm up: let adaptive strategies fragment before the appends arrive.
    UniformRangeGenerator gen(domain, 0.05, 22);
    for (int i = 0; i < 60; ++i) strat->RunRange(gen.Next().range);

    auto extra = MakeUniformIntColumn(5000, 100000, 23);
    auto all = data;
    all.insert(all.end(), extra.begin(), extra.end());
    const QueryExecution ex = strat->Append(extra);
    EXPECT_GE(ex.write_bytes, extra.size() * sizeof(int32_t));
    EXPECT_GT(ex.adaptation_seconds, 0.0);
    EXPECT_EQ(ex.read_bytes + ex.result_count + ex.segments_scanned,
              kind == 4 ? ex.read_bytes : 0u);  // only segm. rewrites re-read

    Rng rng(24);
    for (int i = 0; i < 40; ++i) {
      const double lo = rng.NextUniform(0, 90000);
      const ValueRange q(lo, lo + rng.NextUniform(500, 15000));
      std::vector<int32_t> result;
      strat->RunRange(q, &result);
      ASSERT_EQ(SortedValues(result), BruteForce(all, q)) << "query " << i;
    }
  }
}

TEST(AppendAllStrategies, WriteBytesChargedExactlyOnce) {
  const ValueRange domain(0, 100000);
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    SCOPED_TRACE(kStrategyNames[kind]);
    auto data = MakeUniformIntColumn(20000, 100000, 31);
    SegmentSpace space;
    auto strat = MakeStrategy(kind, data, domain, &space);
    UniformRangeGenerator gen(domain, 0.05, 32);
    for (int i = 0; i < 40; ++i) strat->RunRange(gen.Next().range);

    auto extra = MakeUniformIntColumn(3000, 100000, 33);
    const IoStats before = space.stats();
    const QueryExecution ex = strat->Append(extra);
    const IoStats delta = space.stats() - before;

    // The execution record and the storage counters agree byte for byte:
    // nothing is written (or read) behind the record's back, and nothing is
    // double-charged.
    EXPECT_EQ(delta.mem_write_bytes, ex.write_bytes);
    EXPECT_EQ(delta.mem_read_bytes, ex.read_bytes);
    // Selection-side fields stay untouched by the write path.
    EXPECT_EQ(ex.selection_seconds, 0.0);
    EXPECT_EQ(ex.result_count, 0u);
  }
}

TEST(AppendAllStrategies, TailAppendStrategiesChargeOnlyAppendedBytes) {
  // The non-reorganizing appenders (NoSegm, static partitions, positional
  // blocks, deferred) pay exactly the appended payload -- no rewrite
  // amplification.
  const ValueRange domain(0, 100000);
  for (size_t kind : {0u, 1u, 2u, 5u}) {
    SCOPED_TRACE(kStrategyNames[kind]);
    auto data = MakeUniformIntColumn(20000, 100000, 41);
    SegmentSpace space;
    auto strat = MakeStrategy(kind, data, domain, &space);
    auto extra = MakeUniformIntColumn(3000, 100000, 42);
    const QueryExecution ex = strat->Append(extra);
    EXPECT_EQ(ex.write_bytes, extra.size() * sizeof(int32_t));
    EXPECT_EQ(ex.read_bytes, 0u);
  }
}

TEST(AppendAllStrategies, EmptyAppendIsFree) {
  const ValueRange domain(0, 1000);
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    SCOPED_TRACE(kStrategyNames[kind]);
    SegmentSpace space;
    auto strat =
        MakeStrategy(kind, MakeUniformIntColumn(1000, 1000, 51), domain, &space);
    const QueryExecution ex = strat->Append({});
    EXPECT_EQ(ex.write_bytes, 0u);
    EXPECT_EQ(ex.adaptation_seconds, 0.0);
  }
}

TEST(AppendAllStrategies, OutOfDomainValuesWidenInsteadOfDying) {
  const ValueRange domain(0, 1000);
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    SCOPED_TRACE(kStrategyNames[kind]);
    SegmentSpace space;
    auto data = MakeUniformIntColumn(2000, 1000, 61);
    auto strat = MakeStrategy(kind, data, domain, &space);
    const std::vector<int32_t> extra = {-250, 1500, 2000};
    strat->Append(extra);
    auto all = data;
    all.insert(all.end(), extra.begin(), extra.end());
    std::vector<int32_t> result;
    strat->RunRange(ValueRange(-300, 2100), &result);
    ASSERT_EQ(SortedValues(result), BruteForce(all, ValueRange(-300, 2100)));
  }
}

// ---------------------------------------------------------------------------
// BulkAppend boundary bugfixes (adaptive segmentation)
// ---------------------------------------------------------------------------

TEST(BulkAppendBoundary, ValueAtDomainUpperBoundLandsInLastSegment) {
  // Regression: a FindOverlapping probe with [hi, nextafter(hi)) maps a
  // value exactly at the domain's upper bound to *no* segment under the
  // half-open convention; PositionOf clamps it into the last segment.
  SegmentSpace space;
  std::vector<int32_t> data = MakeUniformIntColumn(5000, 1000, 71);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000),
                                      std::make_unique<Apm>(1 * kKiB, 4 * kKiB),
                                      &space);
  UniformRangeGenerator gen(ValueRange(0, 1000), 0.1, 72);
  for (int i = 0; i < 50; ++i) strat.RunRange(gen.Next().range);
  ASSERT_GT(strat.Segments().size(), 1u);

  const QueryExecution ex = strat.BulkAppend({1000});  // == domain.hi
  EXPECT_GT(ex.write_bytes, 0u);
  EXPECT_TRUE(strat.index().Validate().ok());
  EXPECT_EQ(strat.index().TotalCount(), 5001u);
  // The value went into the *last* segment, whose range was extended past it.
  EXPECT_GT(strat.Segments().back().range.hi, 1000.0);
  std::vector<int32_t> result;
  strat.RunRange(ValueRange(999.5, 1001), &result);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 1000);
}

TEST(BulkAppendBoundary, MetaIndexPositionOfClampsBoundary) {
  SegmentMetaIndex index(ValueRange(0, 10));
  index.InitTiling({SegmentInfo{ValueRange(0, 4), 1, 1},
                    SegmentInfo{ValueRange(4, 10), 1, 2}});
  EXPECT_EQ(index.PositionOf(0.0), 0u);
  EXPECT_EQ(index.PositionOf(3.999), 0u);
  EXPECT_EQ(index.PositionOf(4.0), 1u);
  EXPECT_EQ(index.PositionOf(10.0), 1u);  // the boundary clamp
  EXPECT_EQ(index.PositionOf(12.0), 1u);  // beyond: still the last segment
}

TEST(BulkAppendBoundary, OutOfDomainAppendWidensAndCharges) {
  // Regression: this used to die with "value outside the column domain".
  SegmentSpace space;
  std::vector<int32_t> data = MakeUniformIntColumn(5000, 1000, 81);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 1000),
                                      std::make_unique<Apm>(1 * kKiB, 4 * kKiB),
                                      &space);
  const QueryExecution ex = strat.BulkAppend({-50, 1200});
  EXPECT_GT(ex.write_bytes, 0u);
  EXPECT_GT(ex.adaptation_seconds, 0.0);
  EXPECT_TRUE(strat.index().Validate().ok());
  EXPECT_LE(strat.index().domain().lo, -50.0);
  EXPECT_GT(strat.index().domain().hi, 1200.0);
  std::vector<int32_t> result;
  strat.RunRange(ValueRange(-100, 1300), &result);
  auto all = data;
  all.push_back(-50);
  all.push_back(1200);
  ASSERT_EQ(SortedValues(result), BruteForce(all, ValueRange(-100, 1300)));
}

// ---------------------------------------------------------------------------
// DeferredSegmentation::FlushBatch fixes
// ---------------------------------------------------------------------------

TEST(DeferredFlush, IdleFlushWithNoMarksKeepsPendingThreshold) {
  // A scheduler calling FlushBatch at an idle point with nothing marked must
  // not reset the query counter -- that would silently push back the batch
  // the threshold already owes.
  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 100;
  // 4KB column with Mmin=8KB: the model never wants a split, nothing marks.
  DeferredSegmentation<int32_t> strat(
      MakeUniformIntColumn(1000, 10000, 91), ValueRange(0, 10000),
      std::make_unique<Apm>(8 * kKiB, 32 * kKiB), &space, opts);
  UniformRangeGenerator gen(ValueRange(0, 10000), 0.1, 92);
  for (int i = 0; i < 3; ++i) strat.RunRange(gen.Next().range);
  ASSERT_EQ(strat.pending_marks(), 0u);
  ASSERT_EQ(strat.queries_since_batch(), 3u);
  const QueryExecution ex = strat.FlushBatch();  // idle, nothing to do
  EXPECT_EQ(ex.write_bytes, 0u);
  EXPECT_EQ(strat.queries_since_batch(), 3u);  // not masked
}

TEST(DeferredFlush, FlushWithMarksRunsOnceAndResets) {
  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1000;  // only explicit flushes run the batch
  DeferredSegmentation<int32_t> strat(
      MakeUniformIntColumn(50000, 100000, 93), ValueRange(0, 100000),
      std::make_unique<Apm>(3 * kKiB, 12 * kKiB), &space, opts);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.05, 94);
  for (int i = 0; i < 20; ++i) strat.RunRange(gen.Next().range);
  ASSERT_GT(strat.pending_marks(), 0u);
  const size_t before = strat.Segments().size();

  const QueryExecution first = strat.FlushBatch();
  EXPECT_GT(first.splits, 0u);
  EXPECT_GT(strat.Segments().size(), before);
  EXPECT_EQ(strat.pending_marks(), 0u);
  EXPECT_EQ(strat.queries_since_batch(), 0u);  // a real batch resets

  // The marks were consumed exactly once: a second flush is free.
  const QueryExecution second = strat.FlushBatch();
  EXPECT_EQ(second.splits, 0u);
  EXPECT_EQ(second.write_bytes, 0u);
  EXPECT_EQ(second.read_bytes, 0u);
}

TEST(DeferredFlush, AppendMarksOversizedSegmentsForNextBatch) {
  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1000;
  DeferredSegmentation<int32_t> strat(
      MakeUniformIntColumn(1000, 100000, 95), ValueRange(0, 100000),
      std::make_unique<Apm>(3 * kKiB, 12 * kKiB), &space, opts);
  ASSERT_EQ(strat.pending_marks(), 0u);
  // Quadruple the column: the single segment grows far past Mmax.
  strat.Append(MakeUniformIntColumn(4000, 100000, 96));
  EXPECT_GT(strat.pending_marks(), 0u);
  const size_t before = strat.Segments().size();
  strat.FlushBatch();
  EXPECT_GT(strat.Segments().size(), before);  // the batch rebalanced it
  EXPECT_TRUE(strat.index().Validate().ok());
}

// ---------------------------------------------------------------------------
// SQL INSERT end-to-end through the engine, for every strategy
// ---------------------------------------------------------------------------

std::unique_ptr<AccessStrategy<OidValue>> MakeOidStrategy(
    size_t kind, std::vector<OidValue> pairs, const ValueRange& domain,
    SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<OidValue>>(std::move(pairs), domain,
                                                      space);
    case 1:
      return std::make_unique<StaticPartition<OidValue>>(std::move(pairs),
                                                         domain, 8, space);
    case 2:
      return std::make_unique<PositionalBlocks<OidValue>>(
          std::move(pairs), domain, 16 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<OidValue>>(std::move(pairs),
                                                        domain, space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), domain, std::move(model), space);
    case 5:
      return std::make_unique<DeferredSegmentation<OidValue>>(
          std::move(pairs), domain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<OidValue>>(
          std::move(pairs), domain, std::move(model), space);
  }
}

class SqlInsertAllStrategies : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    Rng rng(777);
    std::vector<OidValue> pairs;
    std::vector<int64_t> objid;
    for (size_t i = 0; i < 10000; ++i) {
      const double v = rng.NextUniform(0.0, 360.0);
      ra_.push_back(v);
      pairs.push_back({i, v});
      objid.push_back(static_cast<int64_t>(1000000 + i));
    }
    auto col = std::make_unique<SegmentedColumn>(
        Catalog::SegHandle("P", "ra"), ValType::kDbl,
        MakeOidStrategy(GetParam(), std::move(pairs), ValueRange(0.0, 360.0),
                        &space_),
        &space_);
    ASSERT_TRUE(cat_.AddSegmentedColumn("P", "ra", std::move(col)).ok());
    ASSERT_TRUE(cat_.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  }

  StatusOr<std::shared_ptr<ResultSet>> Exec(const std::string& text) {
    auto stmt = sql::ParseStatement(text);
    if (!stmt.ok()) return stmt.status();
    auto prog = sql::Compile(*stmt, cat_);
    if (!prog.ok()) return prog.status();
    OptContext ctx;
    ctx.catalog = &cat_;
    PassManager pm = MakeDefaultPipeline();
    if (Status st = pm.Run(&prog.value(), &ctx); !st.ok()) return st;
    MalInterpreter interp(&cat_);
    auto rs = interp.Run(*prog);
    if (rs.ok()) last_exec_ = interp.last_execution();
    return rs;
  }

  Catalog cat_;
  SegmentSpace space_;
  std::vector<double> ra_;
  QueryExecution last_exec_;
};

TEST_P(SqlInsertAllStrategies, InsertedRowsAreVisibleToSelects) {
  // Count in a narrow band, insert three rows into it, count again.
  auto rs = Exec("select count(*) from P where ra between 100 and 101");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const auto before =
      static_cast<int64_t>((*rs)->cols[0].bat->tail().DoubleAt(0));

  // No column list: VALUES bind in declaration order (ra first, then objid).
  rs = Exec(
      "insert into P values (100.25, 9000001), (100.5, 9000002), "
      "(100.75, 9000003)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ((*rs)->cols[0].name, "inserted");
  EXPECT_EQ((*rs)->cols[0].bat->tail().DoubleAt(0), 3.0);
  EXPECT_GT(last_exec_.write_bytes, 0u);        // charged as adaptation
  EXPECT_GT(last_exec_.adaptation_seconds, 0.0);
  EXPECT_EQ(last_exec_.selection_seconds, 0.0);  // no scan half

  rs = Exec("select count(*) from P where ra between 100 and 101");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(static_cast<int64_t>((*rs)->cols[0].bat->tail().DoubleAt(0)),
            before + 3);
  EXPECT_EQ(*cat_.RowCount("P"), 10003u);

  // The reconstructed projection sees the new oids joined to objid.
  rs = Exec("select objid from P where ra between 100.2 and 100.8");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::vector<int64_t> got;
  for (size_t i = 0; i < (*rs)->NumRows(); ++i) {
    got.push_back(
        static_cast<int64_t>((*rs)->cols[0].bat->tail().DoubleAt(i)));
  }
  int found = 0;
  for (int64_t v : got) {
    if (v >= 9000001 && v <= 9000003) ++found;
  }
  EXPECT_EQ(found, 3);
}

TEST_P(SqlInsertAllStrategies, ExplicitColumnListReorders) {
  auto rs = Exec("insert into P (ra, objid) values (200.125, 9000009)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  rs = Exec("select objid from P where ra between 200.12 and 200.13");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ((*rs)->NumRows(), 1u);
  EXPECT_EQ((*rs)->cols[0].bat->tail().DoubleAt(0), 9000009.0);
}

TEST_P(SqlInsertAllStrategies, InsertOutsideDomainWidensColumn) {
  auto rs = Exec("insert into P values (400.5, 9000010)");  // ra domain is 360
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  rs = Exec("select count(*) from P where ra between 400 and 401");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ((*rs)->cols[0].bat->tail().DoubleAt(0), 1.0);
}

TEST_P(SqlInsertAllStrategies, InsertErrors) {
  EXPECT_FALSE(Exec("insert into NoSuch values (1, 2)").ok());
  EXPECT_FALSE(Exec("insert into P values (1)").ok());        // arity
  EXPECT_FALSE(Exec("insert into P (ra) values (1)").ok());   // missing column
  EXPECT_FALSE(Exec("insert into P (ra, ra) values (1, 2)").ok());  // dup
  EXPECT_FALSE(Exec("insert into P (ra, nope) values (1, 2)").ok());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SqlInsertAllStrategies,
                         ::testing::Range<size_t>(0, kNumStrategies),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return kStrategyNames[info.param];
                         });

}  // namespace
}  // namespace socs
