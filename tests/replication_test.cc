#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/gaussian_dice.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

std::unique_ptr<SegmentationModel> MakeModel(const std::string& kind,
                                             uint64_t seed = 7) {
  if (kind == "GD") return std::make_unique<GaussianDice>(seed);
  return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
}

TEST(AdaptiveReplicationTest, FirstQueryCreatesReplicaOfSelection) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 1);  // 400KB
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000),
                                     MakeModel("APM"), &space);
  auto ex = strat.RunRange(ValueRange(450000, 550000));  // central 10%
  EXPECT_EQ(ex.replicas_created, 1u);
  // Lazy materialization: only the selection piece is written (~40KB),
  // not the whole 400KB segment.
  EXPECT_LT(ex.write_bytes, 60000u);
  EXPECT_GT(ex.write_bytes, 20000u);
  // The original column still exists: storage grew.
  EXPECT_GT(strat.Footprint().materialized_bytes, 400000u);
  EXPECT_TRUE(strat.tree().Validate().ok());
}

TEST(AdaptiveReplicationTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 2);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 100000),
                                     MakeModel("APM"), &space);
  Rng rng(3);
  for (int i = 0; i < 150; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 30000));
    std::vector<int32_t> result;
    auto ex = strat.RunRange(q, &result);
    ASSERT_EQ(ex.result_count, result.size());
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
    ASSERT_TRUE(strat.tree().Validate().ok()) << "after query " << i;
  }
}

TEST(AdaptiveReplicationTest, RepeatedQueryServedFromReplica) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 4);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000),
                                     MakeModel("APM"), &space);
  const ValueRange q(450000, 550000);
  auto first = strat.RunRange(q);
  auto second = strat.RunRange(q);
  EXPECT_EQ(first.read_bytes, 400000u);      // full column scan
  EXPECT_LT(second.read_bytes, 60000u);      // replica only
  EXPECT_EQ(second.write_bytes, 0u);         // nothing new to materialize
  EXPECT_EQ(first.result_count, second.result_count);
}

TEST(AdaptiveReplicationTest, UntouchedAreaCausesFullScanSpike) {
  // Paper Fig. 7: queries hitting areas covered only by virtual segments
  // must re-scan the covering (large) segment.
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 5);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000),
                                     MakeModel("APM"), &space);
  strat.RunRange(ValueRange(100000, 200000));
  auto spike = strat.RunRange(ValueRange(700000, 800000));
  EXPECT_EQ(spike.read_bytes, 400000u);  // the original column again
}

TEST(AdaptiveReplicationTest, RootDroppedOnceFullyReplicated) {
  SegmentSpace space;
  // Small column, queries that tile the domain.
  auto data = MakeUniformIntColumn(50000, 100000, 6);  // 200KB
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 100000),
                                     MakeModel("APM"), &space);
  uint64_t drops = 0;
  // Sweep left to right in 10% windows so all complements materialize.
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 10; ++i) {
      auto ex = strat.RunRange(ValueRange(i * 10000.0, (i + 1) * 10000.0));
      drops += ex.segments_dropped;
    }
  }
  EXPECT_GT(drops, 0u);
  // After the sweeps, storage must be close to the column size again
  // (paper Fig. 8: replica tree converges to a segment list).
  EXPECT_LT(strat.Footprint().materialized_bytes, 300000u);
  EXPECT_TRUE(strat.tree().Validate().ok());
}

TEST(AdaptiveReplicationTest, WritesLessThanSegmentationApm) {
  // The paper's headline overhead claim (Figs. 5-6): adaptive replication
  // needs fewer memory writes than adaptive segmentation; for APM stable
  // around a factor 2.5.
  auto data = MakeUniformIntColumn(100000, 1000000, 7);
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> segm(data, ValueRange(0, 1000000),
                                     MakeModel("APM"), &s1);
  AdaptiveReplication<int32_t> repl(data, ValueRange(0, 1000000),
                                    MakeModel("APM"), &s2);
  UniformRangeGenerator g1(ValueRange(0, 1000000), 0.1, 8);
  UniformRangeGenerator g2(ValueRange(0, 1000000), 0.1, 8);
  uint64_t w_segm = 0, w_repl = 0;
  for (int i = 0; i < 500; ++i) {
    w_segm += segm.RunRange(g1.Next().range).write_bytes;
    w_repl += repl.RunRange(g2.Next().range).write_bytes;
  }
  EXPECT_LT(w_repl, w_segm);
  EXPECT_GT(static_cast<double>(w_segm) / w_repl, 1.5);
}

TEST(AdaptiveReplicationTest, AdaptationCheaperThanSegmentationPerQuery) {
  auto data = MakeUniformIntColumn(100000, 1000000, 9);
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> segm(data, ValueRange(0, 1000000),
                                     MakeModel("APM"), &s1);
  AdaptiveReplication<int32_t> repl(data, ValueRange(0, 1000000),
                                    MakeModel("APM"), &s2);
  const ValueRange q(300000, 400000);
  auto e1 = segm.RunRange(q);
  auto e2 = repl.RunRange(q);
  EXPECT_GT(e1.adaptation_seconds, e2.adaptation_seconds);
}

TEST(AdaptiveReplicationTest, StorageNeverExceedsSmallMultipleOfColumn) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 10);  // 400KB
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000),
                                     MakeModel("GD", 11), &space);
  UniformRangeGenerator gen(ValueRange(0, 1000000), 0.1, 12);
  uint64_t peak = 0;
  for (int i = 0; i < 1000; ++i) {
    strat.RunRange(gen.Next().range);
    peak = std::max(peak, strat.Footprint().materialized_bytes);
  }
  // Paper Fig. 8: extra storage of about 1.5x the column size.
  EXPECT_LT(peak, 4 * 400000u);
  EXPECT_GT(peak, 400000u);
}

TEST(AdaptiveReplicationTest, FootprintMatchesSegmentSpace) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 13);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 100000),
                                     MakeModel("APM"), &space);
  UniformRangeGenerator gen(ValueRange(0, 100000), 0.05, 14);
  for (int i = 0; i < 200; ++i) strat.RunRange(gen.Next().range);
  // Every live segment byte is tracked by the space, and vice versa.
  EXPECT_EQ(strat.Footprint().materialized_bytes, space.total_physical_bytes());
}

TEST(AdaptiveReplicationTest, EmptyAndOutsideQueries) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(1000, 10000, 15);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 10000),
                                     MakeModel("APM"), &space);
  auto e1 = strat.RunRange(ValueRange(5, 5));
  EXPECT_EQ(e1.result_count, 0u);
  auto e2 = strat.RunRange(ValueRange(50000, 60000));
  EXPECT_EQ(e2.result_count, 0u);
  EXPECT_EQ(e2.read_bytes, 0u);
}

TEST(AdaptiveReplicationTest, SegmentsReportMaterializedNodes) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 16);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000),
                                     MakeModel("APM"), &space);
  strat.RunRange(ValueRange(400000, 600000));
  auto segs = strat.Segments();
  ASSERT_EQ(segs.size(), 2u);  // original column + the replica
  EXPECT_EQ(segs[0].range, ValueRange(0, 1000000));
  EXPECT_EQ(segs[1].range, ValueRange(400000, 600000));
}

TEST(AdaptiveReplicationTest, CoverSegmentsAreDisjoint) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(50000, 500000, 17);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 500000),
                                     MakeModel("GD", 18), &space);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.2, 19);
  for (int i = 0; i < 100; ++i) {
    strat.RunRange(gen.Next().range);
    auto cover = strat.CoverSegments(ValueRange(0, 500000));
    for (size_t a = 0; a < cover.size(); ++a) {
      for (size_t b = a + 1; b < cover.size(); ++b) {
        ASSERT_FALSE(cover[a].range.Overlaps(cover[b].range))
            << cover[a].ToString() << " vs " << cover[b].ToString();
      }
    }
  }
}

// Property sweep over models and selectivities.
class ReplicationProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ReplicationProperty, OracleAndInvariants) {
  const auto& [model, sel] = GetParam();
  SegmentSpace space;
  auto data = MakeUniformIntColumn(30000, 200000, 20);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 200000),
                                     MakeModel(model, 21), &space);
  UniformRangeGenerator gen(ValueRange(0, 200000), sel, 22);
  for (int i = 0; i < 150; ++i) {
    const ValueRange q = gen.Next().range;
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q))
        << model << " sel=" << sel << " query " << i;
    ASSERT_TRUE(strat.tree().Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSelectivities, ReplicationProperty,
    ::testing::Combine(::testing::Values("GD", "APM"),
                       ::testing::Values(0.001, 0.01, 0.1, 0.5)));

}  // namespace
}  // namespace socs
