// The multi-session SQL server: wire-protocol round trips, the admission /
// round-robin fairness dispatcher, and the headline acceptance -- 8
// concurrent TCP clients over loopback against ONE shared self-organizing
// store report byte-identical replies to the same statements run through a
// single in-process session, across all seven strategies, with interleaved
// INSERT/SELECT streams, a session disconnecting mid-stream, and background
// maintenance live during the run. Also the TSan workload for src/server.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/background_maintenance.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "server/client.h"
#include "server/dispatcher.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using client::Connection;
using server::Dispatcher;
using server::MakeErrorReply;
using server::ParseReply;
using server::Session;
using server::SqlServer;
using server::WireReply;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

std::function<bool(std::string*)> LineSource(const std::string& text,
                                             std::istringstream* is) {
  is->str(text);
  return [is](std::string* line) { return static_cast<bool>(std::getline(*is, *line)); };
}

TEST(WireProtocol, ResultReplyRoundTripsByteExactly) {
  WireReply r;
  r.ok = true;
  r.columns = {"P.objid", "P.dec"};
  r.rows = {"587722981742084097,-12.25", "587722981742084105,88.5"};
  r.stats.result_count = 2;
  r.stats.read_bytes = 4096;
  r.stats.write_bytes = 128;
  r.stats.segments_scanned = 3;
  r.stats.splits = 1;
  r.stats.selection_seconds = 0.1;       // not exactly representable
  r.stats.adaptation_seconds = 3.25e-05;
  const std::string wire = r.Serialize();

  std::istringstream is;
  auto parsed = ParseReply(LineSource(wire, &is));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->columns, r.columns);
  EXPECT_EQ(parsed->rows, r.rows);
  EXPECT_EQ(parsed->stats.result_count, 2u);
  EXPECT_EQ(parsed->stats.read_bytes, 4096u);
  EXPECT_EQ(parsed->stats.splits, 1u);
  EXPECT_EQ(parsed->stats.selection_seconds, 0.1);       // %.17g round trip
  EXPECT_EQ(parsed->stats.adaptation_seconds, 3.25e-05);
  // Parse -> serialize is the identity: the parity tests below may compare
  // re-serialized client replies against server-side blocks byte-for-byte.
  EXPECT_EQ(parsed->Serialize(), wire);
}

TEST(WireProtocol, ErrorReplyRoundTripsAndFlattensNewlines) {
  const WireReply r = MakeErrorReply("parse failed\non two lines");
  const std::string wire = r.Serialize();
  std::istringstream is;
  auto parsed = ParseReply(LineSource(wire, &is));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->error, "parse failed on two lines");
  EXPECT_EQ(parsed->Serialize(), wire);
}

TEST(WireProtocol, TruncatedReplyFailsCleanly) {
  std::istringstream is;
  auto parsed = ParseReply(LineSource("OK 3 1\nid\n42\n", &is));
  EXPECT_FALSE(parsed.ok());
}

// ---------------------------------------------------------------------------
// Dispatcher: round-robin fairness + admission bounds
// ---------------------------------------------------------------------------

TEST(DispatcherTest, RoundRobinPreventsFloodStarvation) {
  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/8});
  auto* a = d.Register("flooder");
  auto* b = d.Register("victim");

  std::mutex mu;
  std::condition_variable cv;
  bool started = false, go = false;
  std::vector<std::string> order;

  // Job a0 parks the only executor so the queues below build deterministically.
  d.Submit(a, [&] {
    std::unique_lock<std::mutex> lk(mu);
    started = true;
    cv.notify_all();
    cv.wait(lk, [&] { return go; });
    order.push_back("a0");
  });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return started; });
  }
  // The flood: three more statements from a, then ONE from b.
  for (int i = 1; i <= 3; ++i) {
    d.Submit(a, [&, i] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back("a" + std::to_string(i));
    });
  }
  d.Submit(b, [&] {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back("b0");
  });
  {
    std::lock_guard<std::mutex> lk(mu);
    go = true;
  }
  cv.notify_all();
  d.Drain();

  // b's statement runs right after the flooder's ONE in-flight statement --
  // round-robin, not FIFO over the flood.
  EXPECT_EQ(order,
            (std::vector<std::string>{"a0", "b0", "a1", "a2", "a3"}));
  EXPECT_EQ(d.statements_executed(), 5u);
  d.Stop();
}

TEST(DispatcherTest, AdmissionBoundBlocksPipelineFloods) {
  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/2});
  auto* a = d.Register("flooder");

  std::mutex mu;
  std::condition_variable cv;
  bool started = false, go = false;
  int ran = 0;
  d.Submit(a, [&] {
    std::unique_lock<std::mutex> lk(mu);
    started = true;
    cv.notify_all();
    cv.wait(lk, [&] { return go; });
    ++ran;
  });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return started; });
  }
  // Two fit in the queue; the third Submit must block until the executor
  // frees a slot.
  std::thread flooder([&] {
    for (int i = 0; i < 3; ++i) {
      d.Submit(a, [&] {
        std::lock_guard<std::mutex> lk(mu);
        ++ran;
      });
    }
  });
  // Wait (bounded) until the flooder is provably parked on admission.
  for (int spin = 0; spin < 500 && d.admission_waits() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(d.admission_waits(), 1u);
  {
    std::lock_guard<std::mutex> lk(mu);
    go = true;
  }
  cv.notify_all();
  flooder.join();
  d.Drain();
  EXPECT_EQ(ran, 4);
  EXPECT_LE(d.peak_session_queue(), 2u);
  d.Stop();
}

// ---------------------------------------------------------------------------
// The shared-store catalog: one table per client, all seven strategies
// ---------------------------------------------------------------------------

constexpr size_t kNumStrategies = 7;
constexpr size_t kClients = 8;  // the 8th repeats adaptive segmentation
constexpr size_t kRows = 6000;
const ValueRange kDomain(0.0, 360.0);

std::unique_ptr<AccessStrategy<OidValue>> MakeOidStrategy(
    size_t kind, std::vector<OidValue> pairs, SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<OidValue>>(std::move(pairs), kDomain,
                                                      space);
    case 1:
      return std::make_unique<StaticPartition<OidValue>>(std::move(pairs),
                                                         kDomain, 8, space);
    case 2:
      return std::make_unique<PositionalBlocks<OidValue>>(
          std::move(pairs), kDomain, 16 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<OidValue>>(std::move(pairs),
                                                        kDomain, space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    case 5:
      return std::make_unique<DeferredSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
  }
}

/// Client i's strategy: the seven kinds, then adaptive segmentation again
/// for the eighth connection.
size_t KindOf(size_t client) { return client < kNumStrategies ? client : 4; }

/// Deferred segmentation's reply bytes depend on *when* the background lane
/// flushed relative to each statement, so its stream gets set-equality
/// instead of byte-equality.
bool TimingSensitive(size_t client) { return KindOf(client) == 5; }

std::string TableOf(size_t client) { return "T" + std::to_string(client); }

/// Registers client i's table Ti(v segmented by its strategy, id plain lng).
void AddClientTable(size_t client, Catalog* cat, SegmentSpace* space) {
  Rng rng(900 + client);
  std::vector<OidValue> pairs;
  std::vector<int64_t> ids;
  for (size_t j = 0; j < kRows; ++j) {
    pairs.push_back({j, rng.NextUniform(kDomain.lo, kDomain.hi)});
    ids.push_back(static_cast<int64_t>(5'000'000 * client + j));
  }
  const std::string table = TableOf(client);
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle(table, "v"), ValType::kDbl,
      MakeOidStrategy(KindOf(client), std::move(pairs), space), space);
  ASSERT_TRUE(cat->AddSegmentedColumn(table, "v", std::move(col)).ok());
  ASSERT_TRUE(cat->AddColumn(table, "id", TypedVector::Of(ids)).ok());
}

/// Client i's statement script: interleaved SELECT (projection + count) and
/// INSERT statements, deterministic per client.
std::vector<std::string> MakeScript(size_t client, size_t steps = 36) {
  const std::string table = TableOf(client);
  UniformRangeGenerator gen(kDomain, 0.05, 40 + client);
  Rng ins(70 + client);
  std::vector<std::string> script;
  char buf[256];
  for (size_t s = 0; s < steps; ++s) {
    if (s % 3 == 2) {
      const double v = ins.NextUniform(kDomain.lo, kDomain.hi);
      const long id = 9'000'000 + static_cast<long>(client) * 10'000 +
                      static_cast<long>(s);
      std::snprintf(buf, sizeof(buf),
                    "insert into %s (v, id) values (%.17g, %ld)",
                    table.c_str(), v, id);
    } else {
      const ValueRange q = gen.Next().range;
      // BETWEEN is inclusive; the generator's ranges are half-open.
      const double hi = std::nextafter(q.hi, q.lo);
      if (s % 6 < 3) {
        std::snprintf(buf, sizeof(buf),
                      "select id from %s where v between %.17g and %.17g",
                      table.c_str(), q.lo, hi);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "select count(*) from %s where v between %.17g and %.17g",
                      table.c_str(), q.lo, hi);
      }
    }
    script.emplace_back(buf);
  }
  return script;
}

/// Sequential oracle: the same script through ONE in-process session on an
/// isolated catalog/space (no scheduler), returning serialized reply blocks.
std::vector<std::string> RunBaseline(size_t client) {
  Catalog cat;
  SegmentSpace space;
  AddClientTable(client, &cat, &space);
  Session session(&cat, /*sched=*/nullptr);
  std::vector<std::string> replies;
  for (const std::string& stmt : MakeScript(client)) {
    replies.push_back(session.ExecuteToWire(stmt));
  }
  return replies;
}

void ExpectReplyParity(size_t client, const std::vector<std::string>& baseline,
                       const std::vector<std::string>& got) {
  ASSERT_EQ(baseline.size(), got.size());
  for (size_t s = 0; s < baseline.size(); ++s) {
    if (!TimingSensitive(client)) {
      // Byte-exact: rows, order, and the whole stats trailer.
      ASSERT_EQ(baseline[s], got[s]) << "client " << client << " statement " << s;
      continue;
    }
    // Deferred segmentation: the reply's row SET and result count must
    // match; row order and scan costs legitimately shift with flush timing.
    std::istringstream bis, gis;
    auto b = ParseReply(LineSource(baseline[s], &bis));
    auto g = ParseReply(LineSource(got[s], &gis));
    ASSERT_TRUE(b.ok() && g.ok()) << "client " << client << " statement " << s;
    ASSERT_EQ(b->ok, g->ok) << "client " << client << " statement " << s;
    std::vector<std::string> brows = b->rows, grows = g->rows;
    std::sort(brows.begin(), brows.end());
    std::sort(grows.begin(), grows.end());
    ASSERT_EQ(brows, grows) << "client " << client << " statement " << s;
    ASSERT_EQ(b->stats.result_count, g->stats.result_count)
        << "client " << client << " statement " << s;
  }
}

// ---------------------------------------------------------------------------
// The acceptance test: 8 concurrent TCP clients == sequential baselines
// ---------------------------------------------------------------------------

TEST(SqlServerTest, EightConcurrentClientsMatchSequentialBaselines) {
  // Sequential baselines first (isolated stores, in-process sessions).
  std::vector<std::vector<std::string>> baselines(kClients);
  for (size_t c = 0; c < kClients; ++c) baselines[c] = RunBaseline(c);

  // One shared store for everything: 8 tables, one space, one scheduler.
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(4);
  for (size_t c = 0; c < kClients; ++c) AddClientTable(c, &cat, &space);

  SqlServer::Options opts;
  opts.executors = 3;
  opts.max_pending_per_session = 4;
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = Connection::Connect("127.0.0.1", srv.port());
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      for (const std::string& stmt : MakeScript(c)) {
        auto reply = conn->Execute(stmt);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        got[c].push_back(reply->Serialize());
      }
    });
  }
  for (auto& t : clients) t.join();

  srv.Stop();

  for (size_t c = 0; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c) + " (" + TableOf(c) + ")");
    ExpectReplyParity(c, baselines[c], got[c]);
  }

  // Background maintenance was live during the run and the shutdown drain
  // left the ledger balanced with nothing pending.
  const auto ledger = srv.Ledger();
  EXPECT_GT(ledger.schedules, 0u);
  EXPECT_EQ(ledger.schedules, ledger.runs + ledger.skips);
  EXPECT_GT(ledger.runs, 0u);
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
  EXPECT_EQ(srv.sessions_accepted(), kClients);
  EXPECT_EQ(srv.statements_executed(), kClients * MakeScript(0).size());
}

// ---------------------------------------------------------------------------
// Shared-table writes: statement-level INSERT atomicity across sessions
// ---------------------------------------------------------------------------

TEST(SqlServerTest, ConcurrentInsertsIntoOneTableNeverCollideOnRowIds) {
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(4);
  AddClientTable(/*client=*/4, &cat, &space);  // T4: adaptive segmentation
  const std::string table = TableOf(4);

  SqlServer::Options opts;
  opts.executors = 4;
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  // Each writer inserts 10 rows with unique ids into its own narrow band of
  // v; a torn oid base would break the candidate->id join below.
  constexpr size_t kWriters = 4, kPerWriter = 10;
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto conn = Connection::Connect("127.0.0.1", srv.port());
      ASSERT_TRUE(conn.ok());
      char buf[256];
      for (size_t i = 0; i < kPerWriter; ++i) {
        const double v = 350.0 + w + 0.01 * static_cast<double>(i);
        const long id = 7'000'000 + 1000 * static_cast<long>(w) +
                        static_cast<long>(i);
        std::snprintf(buf, sizeof(buf),
                      "insert into %s (v, id) values (%.17g, %ld)",
                      table.c_str(), v, id);
        auto reply = conn->Execute(buf);
        ASSERT_TRUE(reply.ok());
        ASSERT_TRUE(reply->ok) << reply->error;
      }
    });
  }
  for (auto& t : writers) t.join();

  // A fresh session must see every writer's ids, exactly once, via the
  // reconstruction join.
  auto conn = Connection::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  for (size_t w = 0; w < kWriters; ++w) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "select id from %s where v between %.17g and %.17g",
                  table.c_str(), 350.0 + w - 0.001,
                  350.0 + w + 0.01 * (kPerWriter - 1) + 0.001);
    auto reply = conn->Execute(buf);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok) << reply->error;
    // Every one of the writer's ids must come back exactly once (a torn oid
    // base would lose one to a mis-aligned join). The band may also contain
    // pre-seeded rows; those don't matter here.
    for (size_t i = 0; i < kPerWriter; ++i) {
      const std::string id = std::to_string(7'000'000 + 1000 * w + i);
      EXPECT_EQ(std::count(reply->rows.begin(), reply->rows.end(), id), 1)
          << "writer " << w << " id " << id;
    }
  }
  srv.Stop();
}

// ---------------------------------------------------------------------------
// Disconnect mid-stream + graceful shutdown
// ---------------------------------------------------------------------------

TEST(SqlServerTest, DisconnectMidStreamLeavesOtherSessionsAndLedgerIntact) {
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(4);
  AddClientTable(/*client=*/5, &cat, &space);  // T5: deferred segmentation
  const std::string table = TableOf(5);

  SqlServer::Options opts;
  opts.executors = 2;
  opts.max_pending_per_session = 4;
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  // The rude client pipelines statements without ever reading a reply, then
  // slams the connection.
  {
    auto rude = Connection::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(rude.ok());
    char buf[256];
    for (int i = 0; i < 6; ++i) {
      std::snprintf(buf, sizeof(buf),
                    "select count(*) from %s where v between %d and %d",
                    table.c_str(), 10 * i, 10 * i + 30);
      ASSERT_TRUE(rude->Send(buf).ok());
    }
    rude->Close();
  }

  // A polite client keeps querying throughout and must stay fully served.
  auto polite = Connection::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(polite.ok());
  char buf[256];
  for (int i = 0; i < 12; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "select count(*) from %s where v between %d and %d",
                  table.c_str(), 5 * i, 5 * i + 40);
    auto reply = polite->Execute(buf);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok) << reply->error;
  }
  polite->Close();

  srv.Stop();

  // Every statement the server admitted before the disconnect executed;
  // none wedged a latch or dropped a flush: the ledger balances and the
  // deferred column has nothing pending after the drain.
  const auto ledger = srv.Ledger();
  EXPECT_EQ(ledger.schedules, ledger.runs + ledger.skips);
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
  EXPECT_GE(srv.statements_executed(), 12u);
  EXPECT_EQ(srv.sessions_accepted(), 2u);
}

TEST(SqlServerTest, StopDrainsDeferredBatchesSoNoFlushIsDropped) {
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(2);
  AddClientTable(/*client=*/5, &cat, &space);  // deferred segmentation
  SegmentedColumn* col = cat.SegmentedColumns().at(0);

  SqlServer::Options opts;
  opts.executors = 1;
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  auto conn = Connection::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  char buf[256];
  for (int i = 0; i < 10; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "select id from %s where v between %d and %d",
                  TableOf(5).c_str(), 30 * i, 30 * i + 18);
    auto reply = conn->Execute(buf);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok) << reply->error;
  }
  conn->Close();

  srv.Stop();
  // The whole-column segment violates the APM bounds, so SOME pass must
  // have reorganized -- on the background lane or in the forced shutdown
  // drain -- and afterwards nothing may be pending.
  EXPECT_FALSE(col->HasPendingIdleWork());
  EXPECT_GT(col->background_runs(), 0u);
  EXPECT_EQ(col->background_schedules(),
            col->background_runs() + col->background_skips());
  EXPECT_GT(col->background_execution().splits, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection: scan batches vs disconnects and shutdown
// ---------------------------------------------------------------------------

TEST(SqlServerTest, DisconnectMidBatchStillServesSurvivingBatchMembers) {
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(4);
  AddClientTable(/*client=*/1, &cat, &space);  // T1: static partitioning
  const std::string table = TableOf(1);

  // Count oracle: batching and adaptation rearrange the physical work, never
  // WHAT qualifies -- replay AddClientTable's draws and count the range.
  Rng rng(900 + 1);
  uint64_t expected = 0;
  for (size_t j = 0; j < kRows; ++j) {
    const double v = rng.NextUniform(kDomain.lo, kDomain.hi);
    if (v >= 80.0 && v <= 160.0) ++expected;
  }

  SqlServer::Options opts;
  opts.executors = 1;  // one executor => queues go deep => batch windows form
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "select count(*) from %s where v between 80 and 160",
                table.c_str());
  const std::string stmt = buf;

  // The rude client floods one batchable statement and slams the door with
  // every reply unread -- its later statements are still queued inside or
  // behind the batch its front joined. The polite client pipelines the same
  // hot statement and must get every reply, each one correct.
  auto rude = Connection::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(rude.ok());
  auto polite = Connection::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(polite.ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(rude->Send(stmt).ok());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(polite->Send(stmt).ok());
  rude->Close();

  for (int i = 0; i < 8; ++i) {
    auto reply = polite->ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok) << reply->error;
    ASSERT_EQ(reply->rows.size(), 1u);
    EXPECT_EQ(reply->rows[0], std::to_string(expected)) << "reply " << i;
  }
  polite->Close();
  srv.Stop();

  // The floods batched (two sessions, one column, one executor)...
  EXPECT_GT(srv.batched_statements(), 0u);
  // ...and every statement admitted before the RST cut the rude reader off
  // still executed -- replies dropped, the adaptation work real: nothing
  // wedged, the maintenance ledger balances. (How much of the rude flood got
  // admitted is inherently timing-dependent: at least the polite 8, at most
  // all 16.)
  EXPECT_GE(srv.statements_executed(), 8u);
  EXPECT_LE(srv.statements_executed(), 16u);
  const auto ledger = srv.Ledger();
  EXPECT_EQ(ledger.schedules, ledger.runs + ledger.skips);
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
}

TEST(SqlServerTest, StopWithBatchInFlightCompletesAdmittedWorkAndBalances) {
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(4);
  AddClientTable(/*client=*/4, &cat, &space);  // T4: adaptive segmentation
  const std::string table = TableOf(4);

  // The qualifying id set is a pure function of the data.
  Rng rng(900 + 4);
  std::vector<std::string> expected;
  for (size_t j = 0; j < kRows; ++j) {
    const double v = rng.NextUniform(kDomain.lo, kDomain.hi);
    if (v >= 40.0 && v <= 140.0) {
      expected.push_back(std::to_string(5'000'000 * 4 + j));
    }
  }
  std::sort(expected.begin(), expected.end());

  SqlServer::Options opts;
  opts.executors = 2;
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "select id from %s where v between 40 and 140", table.c_str());
  const std::string stmt = buf;

  // Three hot-column floods, then Stop() races the batches they form. A
  // statement the shutdown never admitted may vanish; every admitted one
  // must execute, and every reply that comes back must be right.
  std::vector<client::Connection> conns;
  for (int c = 0; c < 3; ++c) {
    auto conn = Connection::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(conn.ok());
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(conn->Send(stmt).ok());
    conns.push_back(std::move(*conn));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  srv.Stop();  // batches (likely) in flight right now

  size_t replies_received = 0;
  for (auto& conn : conns) {
    for (;;) {
      auto reply = conn.ReadReply();
      if (!reply.ok()) break;  // EOF: the rest was never admitted
      ASSERT_TRUE(reply->ok) << reply->error;
      std::vector<std::string> rows = reply->rows;
      std::sort(rows.begin(), rows.end());
      ASSERT_EQ(rows, expected);
      ++replies_received;
    }
    conn.Close();
  }

  // Every admitted statement executed (and replied before its fd closed);
  // the drain left no latch held and no deferred flush behind.
  EXPECT_GE(srv.statements_executed(), replies_received);
  const auto ledger = srv.Ledger();
  EXPECT_EQ(ledger.schedules, ledger.runs + ledger.skips);
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
}

// ---------------------------------------------------------------------------
// The idle-detection watermark (satellite): saturated pool => skip, counted
// ---------------------------------------------------------------------------

TEST(IdleWatermark, SaturatedForegroundSkipsMaintenanceAndCountsIt) {
  SegmentSpace space;
  Rng rng(31);
  std::vector<int32_t> data;
  for (size_t i = 0; i < 4000; ++i) {
    data.push_back(static_cast<int32_t>(rng.NextInt(0, 999)));
  }
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 1000),
                                      std::make_unique<Apm>(kKiB, 4 * kKiB),
                                      &space);
  BackgroundMaintenance<int32_t> maint(&strat);
  TaskScheduler sched(2);  // 1 worker + the caller lane

  // Saturate the foreground: one task occupies the worker, one sits queued.
  std::mutex mu;
  std::condition_variable cv;
  bool go = false;
  auto parked = [&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return go; });
  };
  auto f1 = sched.pool().SubmitTask(parked);
  auto f2 = sched.pool().SubmitTask(parked);
  for (int spin = 0; spin < 500 && !sched.ForegroundSaturated(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(sched.ForegroundSaturated());

  EXPECT_FALSE(maint.Schedule(&sched));  // skipped by the watermark
  EXPECT_EQ(maint.skips(), 1u);
  EXPECT_EQ(maint.schedules(), 1u);
  EXPECT_TRUE(maint.Schedule(&sched, /*force=*/true));  // shutdown-style pass

  {
    std::lock_guard<std::mutex> lk(mu);
    go = true;
  }
  cv.notify_all();
  f1.wait();
  f2.wait();
  sched.DrainBackground();

  EXPECT_FALSE(sched.ForegroundSaturated());
  EXPECT_TRUE(maint.Schedule(&sched));  // idle again: enqueued normally
  sched.DrainBackground();

  EXPECT_EQ(maint.schedules(), 3u);
  EXPECT_EQ(maint.skips(), 1u);
  EXPECT_EQ(maint.runs(), 2u);
  EXPECT_EQ(maint.schedules(), maint.runs() + maint.skips());
}

}  // namespace
}  // namespace socs
