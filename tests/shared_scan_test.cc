// Shared scans: the dispatcher's cooperative batch-mode execution across
// sessions. Three layers of evidence:
//
//   1. Batch-window formation units against a parked Dispatcher -- same-
//      column statements group into one batch, mixed columns split, a
//      non-batchable statement (INSERT) acts as a barrier that flushes the
//      batch in front of it.
//   2. A deterministic Dispatcher + Session batch whose cooperative cache
//      provably saves filter passes (scans_saved > 0) while the replies stay
//      byte-identical to the sequential per-statement oracle.
//   3. End-to-end TCP streams with shared scans ON, across all 7 strategies:
//      a pipelining client's varied stream (SELECTs + INSERT barriers) and
//      8 concurrent hot-column clients must byte-match sequential per-query
//      baselines -- replies AND #stats trailers. Batching is a scheduling
//      optimization, never a semantic one.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/shared_scan.h"
#include "core/static_partition.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "server/client.h"
#include "server/dispatcher.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using client::Connection;
using server::AnalyzeForSharedScan;
using server::Dispatcher;
using server::ParseReply;
using server::Session;
using server::SqlServer;

constexpr size_t kNumStrategies = 7;
constexpr size_t kRows = 6000;
const ValueRange kDomain(0.0, 360.0);

std::unique_ptr<AccessStrategy<OidValue>> MakeOidStrategy(
    size_t kind, std::vector<OidValue> pairs, SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<OidValue>>(std::move(pairs), kDomain,
                                                      space);
    case 1:
      return std::make_unique<StaticPartition<OidValue>>(std::move(pairs),
                                                         kDomain, 8, space);
    case 2:
      return std::make_unique<PositionalBlocks<OidValue>>(
          std::move(pairs), kDomain, 16 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<OidValue>>(std::move(pairs),
                                                        kDomain, space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    case 5:
      return std::make_unique<DeferredSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
  }
}

/// Deferred segmentation's reply bytes depend on when the background lane
/// flushed relative to each statement; its streams get set-equality.
bool TimingSensitive(size_t kind) { return kind == 5; }

std::string TableOf(size_t kind) { return "S" + std::to_string(kind); }

/// Registers table Sk(v segmented by strategy `kind`, id plain lng).
void AddStrategyTable(size_t kind, Catalog* cat, SegmentSpace* space) {
  Rng rng(400 + kind);
  std::vector<OidValue> pairs;
  std::vector<int64_t> ids;
  for (size_t j = 0; j < kRows; ++j) {
    pairs.push_back({j, rng.NextUniform(kDomain.lo, kDomain.hi)});
    ids.push_back(static_cast<int64_t>(3'000'000 * kind + j));
  }
  const std::string table = TableOf(kind);
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle(table, "v"), ValType::kDbl,
      MakeOidStrategy(kind, std::move(pairs), space), space);
  ASSERT_TRUE(cat->AddSegmentedColumn(table, "v", std::move(col)).ok());
  ASSERT_TRUE(cat->AddColumn(table, "id", TypedVector::Of(ids)).ok());
}

std::string SelectIds(const std::string& table, double lo, double hi) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "select id from %s where v between %.17g and %.17g",
                table.c_str(), lo, hi);
  return buf;
}

// ---------------------------------------------------------------------------
// Batch-window formation (deterministic: one parked executor)
// ---------------------------------------------------------------------------

/// Parks the dispatcher's single executor inside a non-batchable plug job,
/// so queues submitted while parked build up deterministically and are
/// windowed in one shot on release.
class ParkedDispatcher {
 public:
  explicit ParkedDispatcher(Dispatcher* d, Dispatcher::SessionQueue* q)
      : d_(d) {
    d_->Submit(q, [this] {
      std::unique_lock<std::mutex> lk(mu_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lk, [this] { return released_; });
    });
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return parked_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  Dispatcher* d_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool released_ = false;
};

Dispatcher::BatchTag Tag(const std::string& column, double lo, double hi) {
  Dispatcher::BatchTag tag;
  tag.batchable = true;
  tag.column = column;
  tag.lo = lo;
  tag.hi = hi;
  return tag;
}

/// What each observed job records: which cooperative pass it ran under
/// (nullptr = per-statement path) and its consumer slot.
struct Seen {
  std::string label;
  const void* pass = nullptr;
  size_t consumer = 0;
};

TEST(BatchWindow, SameColumnStatementsAcrossSessionsFormOneBatch) {
  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/8,
                                   /*shared_scans=*/true, /*max_batch=*/32});
  auto* parkq = d.Register("park");
  auto* a = d.Register("a");
  auto* b = d.Register("b");
  auto* c = d.Register("c");

  std::mutex mu;
  std::vector<Seen> seen;
  auto observe = [&](const std::string& label) {
    return [&, label](const Dispatcher::SharedScanRef* shared) {
      std::lock_guard<std::mutex> lk(mu);
      seen.push_back(Seen{label, shared != nullptr ? shared->pass : nullptr,
                          shared != nullptr ? shared->consumer : 0});
    };
  };

  // Park the lone executor on a throwaway session so the four statements
  // below queue up while it is busy, then get windowed in one shot.
  ParkedDispatcher park(&d, parkq);
  // Two same-column statements from a, one each from b and c.
  d.Submit(a, observe("a0"), Tag("X", 0, 10));
  d.Submit(a, observe("a1"), Tag("X", 5, 15));
  d.Submit(b, observe("b0"), Tag("X", 2, 12));
  d.Submit(c, observe("c0"), Tag("X", 0, 10));
  park.Release();
  d.Drain();

  ASSERT_EQ(seen.size(), 4u);
  // One batch: every job saw the SAME cooperative pass, with consumer slots
  // handed out in admission order -- a's run first (its own queue's prefix),
  // then b's and c's front statements in ring order.
  EXPECT_EQ(d.scan_batches(), 1u);
  EXPECT_EQ(d.batched_statements(), 4u);
  const std::vector<std::string> labels{seen[0].label, seen[1].label,
                                        seen[2].label, seen[3].label};
  EXPECT_EQ(labels, (std::vector<std::string>{"a0", "a1", "b0", "c0"}));
  for (const Seen& s : seen) {
    ASSERT_NE(s.pass, nullptr) << s.label;
    EXPECT_EQ(s.pass, seen[0].pass) << s.label;
  }
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i].consumer, i);
  d.Stop();
}

TEST(BatchWindow, MixedColumnsSplitIntoSeparateBatches) {
  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/8,
                                   /*shared_scans=*/true, /*max_batch=*/32});
  auto* parkq = d.Register("park");
  auto* a = d.Register("a");
  auto* b = d.Register("b");

  std::mutex mu;
  std::vector<Seen> seen;
  auto observe = [&](const std::string& label) {
    return [&, label](const Dispatcher::SharedScanRef* shared) {
      std::lock_guard<std::mutex> lk(mu);
      seen.push_back(Seen{label, shared != nullptr ? shared->pass : nullptr,
                          shared != nullptr ? shared->consumer : 0});
    };
  };

  ParkedDispatcher park(&d, parkq);
  d.Submit(a, observe("aX0"), Tag("X", 0, 10));
  d.Submit(a, observe("aX1"), Tag("X", 0, 10));
  d.Submit(b, observe("bY0"), Tag("Y", 0, 10));
  d.Submit(b, observe("bY1"), Tag("Y", 0, 10));
  park.Release();
  d.Drain();

  ASSERT_EQ(seen.size(), 4u);
  // Two batches of two: X never groups with Y. (The two passes may reuse
  // one stack address on the lone executor, so the split is visible in the
  // batch count and in the consumer slots restarting at 0 -- one four-way
  // batch would have handed out slots 0..3.)
  EXPECT_EQ(d.scan_batches(), 2u);
  EXPECT_EQ(d.batched_statements(), 4u);
  ASSERT_NE(seen[0].pass, nullptr);
  EXPECT_EQ(seen[0].label.substr(1, 1), seen[1].label.substr(1, 1));
  EXPECT_EQ(seen[0].pass, seen[1].pass);
  EXPECT_EQ(seen[2].pass, seen[3].pass);
  EXPECT_EQ(seen[0].consumer, 0u);
  EXPECT_EQ(seen[1].consumer, 1u);
  EXPECT_EQ(seen[2].consumer, 0u);
  EXPECT_EQ(seen[3].consumer, 1u);
  d.Stop();
}

TEST(BatchWindow, NonBatchableStatementIsABarrierThatFlushesTheBatch) {
  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/8,
                                   /*shared_scans=*/true, /*max_batch=*/32});
  auto* a = d.Register("a");

  std::mutex mu;
  std::vector<Seen> seen;
  auto observe = [&](const std::string& label) {
    return [&, label](const Dispatcher::SharedScanRef* shared) {
      std::lock_guard<std::mutex> lk(mu);
      seen.push_back(Seen{label, shared != nullptr ? shared->pass : nullptr});
    };
  };

  ParkedDispatcher park(&d, a);
  // X, X, INSERT (non-batchable), X: the insert cuts the window.
  d.Submit(a, observe("s0"), Tag("X", 0, 10));
  d.Submit(a, observe("s1"), Tag("X", 0, 10));
  d.Submit(a, observe("ins"), Dispatcher::BatchTag{});
  d.Submit(a, observe("s2"), Tag("X", 0, 10));
  park.Release();
  d.Drain();

  ASSERT_EQ(seen.size(), 4u);
  // Session order preserved; exactly ONE batch (s0+s1). The insert and the
  // trailing select run on the per-statement path (batch of one).
  const std::vector<std::string> labels{seen[0].label, seen[1].label,
                                        seen[2].label, seen[3].label};
  EXPECT_EQ(labels, (std::vector<std::string>{"s0", "s1", "ins", "s2"}));
  EXPECT_EQ(d.scan_batches(), 1u);
  EXPECT_EQ(d.batched_statements(), 2u);
  ASSERT_NE(seen[0].pass, nullptr);
  EXPECT_EQ(seen[0].pass, seen[1].pass);
  EXPECT_EQ(seen[2].pass, nullptr);  // the barrier itself never batches
  EXPECT_EQ(seen[3].pass, nullptr);  // batch of one = per-statement path
  d.Stop();
}

TEST(BatchWindow, SharedScansOffNeverFormsABatch) {
  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/8,
                                   /*shared_scans=*/false, /*max_batch=*/32});
  auto* a = d.Register("a");
  auto* b = d.Register("b");

  std::mutex mu;
  int with_pass = 0, total = 0;
  auto observe = [&](const Dispatcher::SharedScanRef* shared) {
    std::lock_guard<std::mutex> lk(mu);
    ++total;
    if (shared != nullptr) ++with_pass;
  };

  ParkedDispatcher park(&d, a);
  d.Submit(a, observe, Tag("X", 0, 10));
  d.Submit(a, observe, Tag("X", 0, 10));
  d.Submit(b, observe, Tag("X", 0, 10));
  park.Release();
  d.Drain();

  EXPECT_EQ(total, 3);
  EXPECT_EQ(with_pass, 0);
  EXPECT_EQ(d.scan_batches(), 0u);
  EXPECT_EQ(d.shared_scans_saved(), 0u);
  d.Stop();
}

// ---------------------------------------------------------------------------
// A real batch provably saves scans and stays byte-identical
// ---------------------------------------------------------------------------

TEST(SharedScanExecution, BatchSavesFilterPassesAndMatchesSequentialReplies) {
  // Static partitioning: 8 segments, no reorganization -- every segment a
  // predecessor publishes stays valid, so the second identical statement
  // must hit on every covering segment.
  constexpr size_t kKind = 1;
  const std::string table = TableOf(kKind);
  const std::string stmt = SelectIds(table, 80.0, 120.0);

  // Sequential oracle: the same two statements through one fresh store.
  std::vector<std::string> baseline;
  {
    Catalog cat;
    SegmentSpace space;
    AddStrategyTable(kKind, &cat, &space);
    Session s(&cat, /*sched=*/nullptr);
    baseline.push_back(s.ExecuteToWire(stmt));
    baseline.push_back(s.ExecuteToWire(stmt));
  }

  Catalog cat;
  SegmentSpace space;
  AddStrategyTable(kKind, &cat, &space);
  Session s1(&cat, nullptr), s2(&cat, nullptr);

  Dispatcher d(Dispatcher::Options{/*executors=*/1,
                                   /*max_pending_per_session=*/8,
                                   /*shared_scans=*/true, /*max_batch=*/32});
  auto* qa = d.Register("a");
  auto* qb = d.Register("b");

  std::mutex mu;
  std::vector<std::string> replies;
  auto job = [&](Session* s) {
    return [&, s](const Dispatcher::SharedScanRef* shared) {
      if (shared != nullptr) s->set_shared_scan(shared->pass, shared->consumer);
      const std::string reply = s->ExecuteToWire(stmt);
      if (shared != nullptr) s->clear_shared_scan();
      std::lock_guard<std::mutex> lk(mu);
      replies.push_back(reply);
    };
  };

  const Dispatcher::BatchTag tag = AnalyzeForSharedScan(stmt, cat);
  ASSERT_TRUE(tag.batchable);
  EXPECT_EQ(tag.column, Catalog::SegHandle(table, "v"));

  ParkedDispatcher park(&d, qa);
  d.Submit(qa, job(&s1), tag);
  d.Submit(qb, job(&s2), tag);
  park.Release();
  d.Drain();

  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(d.scan_batches(), 1u);
  EXPECT_EQ(d.batched_statements(), 2u);
  // The second member replayed its charges from the cache: at least one
  // physical filter pass was provably skipped.
  EXPECT_GT(d.shared_scans_saved(), 0u);
  // ... and nobody can tell from the outside: replies (rows AND #stats)
  // byte-match the sequential per-query oracle.
  EXPECT_EQ(replies[0], baseline[0]);
  EXPECT_EQ(replies[1], baseline[1]);
  d.Stop();
}

// ---------------------------------------------------------------------------
// End-to-end TCP parity with shared scans ON, across all 7 strategies
// ---------------------------------------------------------------------------

/// A varied statement stream over table Sk: hot-column SELECT runs (the
/// batchable shape, repeated so within-session windows form), count(*)
/// variants, and interleaved INSERT barriers.
std::vector<std::string> MakeVariedScript(size_t kind, size_t steps = 30) {
  const std::string table = TableOf(kind);
  UniformRangeGenerator gen(kDomain, 0.05, 60 + kind);
  Rng ins(80 + kind);
  std::vector<std::string> script;
  char buf[256];
  for (size_t s = 0; s < steps; ++s) {
    if (s % 5 == 4) {
      const double v = ins.NextUniform(kDomain.lo, kDomain.hi);
      const long id = 8'000'000 + static_cast<long>(kind) * 10'000 +
                      static_cast<long>(s);
      std::snprintf(buf, sizeof(buf),
                    "insert into %s (v, id) values (%.17g, %ld)",
                    table.c_str(), v, id);
      script.emplace_back(buf);
      continue;
    }
    const ValueRange q = gen.Next().range;
    const double hi = std::nextafter(q.hi, q.lo);  // inclusive form
    if (s % 2 == 0) {
      script.push_back(SelectIds(table, q.lo, hi));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "select count(*) from %s where v between %.17g and %.17g",
                    table.c_str(), q.lo, hi);
      script.emplace_back(buf);
    }
  }
  return script;
}

void ExpectStreamParity(size_t kind, const std::vector<std::string>& baseline,
                        const std::vector<std::string>& got) {
  ASSERT_EQ(baseline.size(), got.size());
  for (size_t s = 0; s < baseline.size(); ++s) {
    if (!TimingSensitive(kind)) {
      ASSERT_EQ(baseline[s], got[s]) << "kind " << kind << " statement " << s;
      continue;
    }
    // Deferred segmentation: row set + result count, not scan-cost bytes.
    std::istringstream bis(baseline[s]), gis(got[s]);
    auto next_line = [](std::istringstream* is) {
      return [is](std::string* line) {
        return static_cast<bool>(std::getline(*is, *line));
      };
    };
    auto b = ParseReply(next_line(&bis));
    auto g = ParseReply(next_line(&gis));
    ASSERT_TRUE(b.ok() && g.ok()) << "kind " << kind << " statement " << s;
    ASSERT_EQ(b->ok, g->ok) << "kind " << kind << " statement " << s;
    std::vector<std::string> brows = b->rows, grows = g->rows;
    std::sort(brows.begin(), brows.end());
    std::sort(grows.begin(), grows.end());
    ASSERT_EQ(brows, grows) << "kind " << kind << " statement " << s;
    ASSERT_EQ(b->stats.result_count, g->stats.result_count)
        << "kind " << kind << " statement " << s;
  }
}

TEST(SharedScanServer, PipelinedVariedStreamsByteMatchBaselinesAllStrategies) {
  // Sequential per-query baselines, one isolated store per strategy.
  std::vector<std::vector<std::string>> baselines(kNumStrategies);
  for (size_t k = 0; k < kNumStrategies; ++k) {
    Catalog cat;
    SegmentSpace space;
    AddStrategyTable(k, &cat, &space);
    Session session(&cat, /*sched=*/nullptr);
    for (const std::string& stmt : MakeVariedScript(k)) {
      baselines[k].push_back(session.ExecuteToWire(stmt));
    }
  }

  // One shared store, shared scans ON, one pipelining client per strategy.
  // Pipelining keeps each session's queue deep, so the dispatcher windows
  // same-column runs *within* each session; the per-session statement order
  // (and thus each stream's reply bytes) is nevertheless invariant.
  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(4);
  for (size_t k = 0; k < kNumStrategies; ++k) AddStrategyTable(k, &cat, &space);

  SqlServer::Options opts;
  opts.executors = 3;
  opts.max_pending_per_session = 6;
  opts.shared_scans = true;
  SqlServer srv(&cat, &sched, opts);
  ASSERT_TRUE(srv.Start().ok());

  std::vector<std::vector<std::string>> got(kNumStrategies);
  std::vector<std::thread> clients;
  for (size_t k = 0; k < kNumStrategies; ++k) {
    clients.emplace_back([&, k] {
      auto conn = Connection::Connect("127.0.0.1", srv.port());
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      const std::vector<std::string> script = MakeVariedScript(k);
      size_t in_flight = 0;
      for (const std::string& stmt : script) {
        ASSERT_TRUE(conn->Send(stmt).ok());
        if (++in_flight == 4) {  // bounded pipeline depth
          auto reply = conn->ReadReply();
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
          got[k].push_back(reply->Serialize());
          --in_flight;
        }
      }
      while (got[k].size() < script.size()) {
        auto reply = conn->ReadReply();
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        got[k].push_back(reply->Serialize());
      }
    });
  }
  for (auto& t : clients) t.join();
  srv.Stop();

  for (size_t k = 0; k < kNumStrategies; ++k) {
    SCOPED_TRACE("strategy kind " + std::to_string(k));
    ExpectStreamParity(k, baselines[k], got[k]);
  }
  // The ledger balances with shared scans on, like it does without them.
  const auto ledger = srv.Ledger();
  EXPECT_EQ(ledger.schedules, ledger.runs + ledger.skips);
  EXPECT_EQ(ledger.columns_with_pending_work, 0u);
}

TEST(SharedScanServer, EightHotColumnClientsMatchSequentialBaselineAllStrategies) {
  // All 8 clients hammer the SAME statement on one strategy's table, m times
  // each: the global execution sequence is 8m copies of one statement in
  // *some* order -- which is every order, so the multiset of replies must
  // equal a sequential 8m-statement baseline's, batched or not. Runs once
  // per strategy kind over a fresh shared store.
  constexpr size_t kHotClients = 8;
  constexpr size_t kPerClient = 6;
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    SCOPED_TRACE("strategy kind " + std::to_string(kind));
    const std::string stmt = SelectIds(TableOf(kind), 100.0, 160.0);

    std::vector<std::string> baseline;
    {
      Catalog cat;
      SegmentSpace space;
      AddStrategyTable(kind, &cat, &space);
      Session session(&cat, /*sched=*/nullptr);
      for (size_t i = 0; i < kHotClients * kPerClient; ++i) {
        baseline.push_back(session.ExecuteToWire(stmt));
      }
    }

    Catalog cat;
    SegmentSpace space;
    TaskScheduler sched(4);
    AddStrategyTable(kind, &cat, &space);
    SqlServer::Options opts;
    opts.executors = 3;
    opts.shared_scans = true;
    SqlServer srv(&cat, &sched, opts);
    ASSERT_TRUE(srv.Start().ok());

    std::mutex mu;
    std::vector<std::string> got;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kHotClients; ++c) {
      clients.emplace_back([&] {
        auto conn = Connection::Connect("127.0.0.1", srv.port());
        ASSERT_TRUE(conn.ok()) << conn.status().ToString();
        for (size_t i = 0; i < kPerClient; ++i) {
          ASSERT_TRUE(conn->Send(stmt).ok());  // pipeline: deep queues, so
        }                                      // cross-session windows form
        for (size_t i = 0; i < kPerClient; ++i) {
          auto reply = conn->ReadReply();
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
          std::lock_guard<std::mutex> lk(mu);
          got.push_back(reply->Serialize());
        }
      });
    }
    for (auto& t : clients) t.join();
    srv.Stop();

    ASSERT_EQ(got.size(), baseline.size());
    if (TimingSensitive(kind)) {
      // Row sets only; scan costs legitimately shift with flush timing.
      for (size_t i = 0; i < got.size(); ++i) {
        std::istringstream bis(baseline[i]), gis(got[i]);
        auto next_line = [](std::istringstream* is) {
          return [is](std::string* line) {
            return static_cast<bool>(std::getline(*is, *line));
          };
        };
        auto b = ParseReply(next_line(&bis));
        auto g = ParseReply(next_line(&gis));
        ASSERT_TRUE(b.ok() && g.ok());
        std::vector<std::string> brows = b->rows, grows = g->rows;
        std::sort(brows.begin(), brows.end());
        std::sort(grows.begin(), grows.end());
        ASSERT_EQ(brows, grows) << "reply " << i;
      }
    } else {
      // Byte-exact as multisets: same replies, same #stats trailers, in some
      // interleaving of the sequential order.
      std::vector<std::string> b = baseline, g = got;
      std::sort(b.begin(), b.end());
      std::sort(g.begin(), g.end());
      EXPECT_EQ(b, g);
    }
  }
}

// ---------------------------------------------------------------------------
// The cooperative cache itself (core unit)
// ---------------------------------------------------------------------------

TEST(SharedScanPassUnit, LookupDemandsTheRegisteredPredicateExactly) {
  SharedScanPass<OidValue> pass;
  const ValueRange q(10.0, 20.0);
  const size_t me = pass.RegisterConsumer(q);
  const SharedScanPass<OidValue>::SegKey key{1, 0.0, 360.0, 100, 0};

  std::vector<OidValue> payload{{0, 5.0}, {1, 12.0}, {2, 19.0}, {3, 25.0}};
  auto own = std::make_shared<std::vector<OidValue>>(
      std::vector<OidValue>{{1, 12.0}, {2, 19.0}});
  pass.Publish(key, q, payload, own);

  // The registered predicate hits and aliases the producer's vector.
  auto hit = pass.Lookup(key, me, q);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), own.get());
  EXPECT_EQ(pass.scans_saved(), 1u);

  // A mismatched predicate (engine/analysis divergence) degrades to a miss.
  EXPECT_EQ(pass.Lookup(key, me, ValueRange(10.0, 21.0)), nullptr);
  // A different epoch (post-reorganization) misses too.
  const SharedScanPass<OidValue>::SegKey stale{1, 0.0, 360.0, 100, 1};
  EXPECT_EQ(pass.Lookup(stale, me, q), nullptr);
  EXPECT_EQ(pass.scans_saved(), 1u);
}

TEST(SharedScanPassUnit, PublishCoEvaluatesEveryOtherConsumersPredicate) {
  SharedScanPass<OidValue> pass;
  const ValueRange qa(0.0, 100.0), qb(50.0, 150.0), qc(0.0, 100.0);
  const size_t a = pass.RegisterConsumer(qa);
  const size_t b = pass.RegisterConsumer(qb);
  const size_t c = pass.RegisterConsumer(qc);
  const SharedScanPass<OidValue>::SegKey key{7, 0.0, 200.0, 4, 3};

  std::vector<OidValue> payload{{0, 25.0}, {1, 75.0}, {2, 125.0}, {3, 175.0}};
  auto own = std::make_shared<std::vector<OidValue>>(
      std::vector<OidValue>{{0, 25.0}, {1, 75.0}});
  pass.Publish(key, qa, payload, own);

  // b's disjoint predicate was co-evaluated in the same pass.
  auto hb = pass.Lookup(key, b, qb);
  ASSERT_NE(hb, nullptr);
  ASSERT_EQ(hb->size(), 2u);
  EXPECT_EQ((*hb)[0].oid, 1u);
  EXPECT_EQ((*hb)[1].oid, 2u);
  // c registered the producer's exact predicate: aliases `own`, no copy.
  auto hc = pass.Lookup(key, c, qc);
  ASSERT_EQ(hc.get(), own.get());
  // a itself also hits (its own slot holds `own`).
  EXPECT_EQ(pass.Lookup(key, a, qa).get(), own.get());
  EXPECT_EQ(pass.passes_run(), 1u);
  EXPECT_EQ(pass.scans_saved(), 3u);
}

}  // namespace
}  // namespace socs
