#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "engine/mal_builder.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "engine/segment_optimizer.h"
#include "sql/compiler.h"
#include "sql/parser.h"

namespace socs {
namespace {

using sql::Parse;

TEST(LexerTest, TokenizesFigure1Query) {
  auto toks = sql::Lex("select objId from P where ra between 205.1 and 205.12");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 10u);
  EXPECT_EQ((*toks)[0].type, sql::TokenType::kSelect);
  EXPECT_EQ((*toks)[1].type, sql::TokenType::kIdent);
  EXPECT_EQ((*toks)[1].text, "objId");
  EXPECT_EQ((*toks)[6].type, sql::TokenType::kBetween);
  EXPECT_EQ((*toks)[7].type, sql::TokenType::kNumber);
  EXPECT_DOUBLE_EQ((*toks)[7].number, 205.1);
  EXPECT_EQ(toks->back().type, sql::TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto toks = sql::Lex("SELECT x FROM t WHERE y BETWEEN 1 AND 2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, sql::TokenType::kSelect);
  EXPECT_EQ((*toks)[2].type, sql::TokenType::kFrom);
  EXPECT_EQ((*toks)[4].type, sql::TokenType::kWhere);
}

TEST(LexerTest, NumbersWithSigns) {
  auto toks = sql::Lex("select a from t where b between -2.5 and +3");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ((*toks)[7].type, sql::TokenType::kNumber);
  EXPECT_DOUBLE_EQ((*toks)[7].number, -2.5);
  ASSERT_EQ((*toks)[9].type, sql::TokenType::kNumber);
  EXPECT_DOUBLE_EQ((*toks)[9].number, 3.0);
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_FALSE(sql::Lex("select # from t").ok());
  EXPECT_FALSE(sql::Lex("select 'unterminated").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto s = Parse("select objid from P where ra between 205.1 and 205.12;");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_FALSE(s->count_star);
  ASSERT_EQ(s->columns.size(), 1u);
  EXPECT_EQ(s->columns[0], "objid");
  EXPECT_EQ(s->table, "P");
  ASSERT_EQ(s->predicates.size(), 1u);
  EXPECT_EQ(s->predicates[0].column, "ra");
  EXPECT_DOUBLE_EQ(s->predicates[0].lo, 205.1);
  EXPECT_DOUBLE_EQ(s->predicates[0].hi, 205.12);
}

TEST(ParserTest, MultiColumnMultiPredicate) {
  auto s = Parse(
      "select a, b, c from t where x between 1 and 2 and y between 3 and 4");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->columns.size(), 3u);
  EXPECT_EQ(s->predicates.size(), 2u);
  EXPECT_EQ(s->predicates[1].column, "y");
}

TEST(ParserTest, CountStar) {
  auto s = Parse("select count(*) from t where x between 0 and 1");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->count_star);
  EXPECT_TRUE(s->columns.empty());
}

TEST(ParserTest, NoWhereClause) {
  auto s = Parse("select a from t");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->predicates.empty());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("select from t").ok());
  EXPECT_FALSE(Parse("select a t").ok());
  EXPECT_FALSE(Parse("select a from t where x between 2").ok());
  EXPECT_FALSE(Parse("select a from t where x between 5 and 1").ok());
  EXPECT_FALSE(Parse("select a from t extra").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(ParserTest, ToStringRoundtrips) {
  auto s = Parse("select a from t where x between 1 and 2");
  ASSERT_TRUE(s.ok());
  auto again = Parse(s->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->table, "t");
  EXPECT_EQ(again->predicates.size(), 1u);
}

TEST(ParserInsertTest, SimpleInsert) {
  auto s = sql::ParseStatement("insert into P values (9000001, 205.5);");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->kind, sql::Statement::Kind::kInsert);
  EXPECT_EQ(s->insert.table, "P");
  EXPECT_TRUE(s->insert.columns.empty());
  ASSERT_EQ(s->insert.rows.size(), 1u);
  ASSERT_EQ(s->insert.rows[0].size(), 2u);
  EXPECT_DOUBLE_EQ(s->insert.rows[0][1], 205.5);
}

TEST(ParserInsertTest, MultiRowWithColumnList) {
  auto s = sql::ParseStatement(
      "INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (-5, 6.5)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->kind, sql::Statement::Kind::kInsert);
  ASSERT_EQ(s->insert.columns.size(), 2u);
  EXPECT_EQ(s->insert.columns[1], "b");
  ASSERT_EQ(s->insert.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(s->insert.rows[2][0], -5.0);
}

TEST(ParserInsertTest, SelectStillParsesThroughParseStatement) {
  auto s = sql::ParseStatement("select a from t where x between 1 and 2");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, sql::Statement::Kind::kSelect);
  EXPECT_EQ(s->select.table, "t");
}

TEST(ParserInsertTest, Errors) {
  EXPECT_FALSE(sql::ParseStatement("insert into t").ok());
  EXPECT_FALSE(sql::ParseStatement("insert into t values").ok());
  EXPECT_FALSE(sql::ParseStatement("insert into t values ()").ok());
  EXPECT_FALSE(sql::ParseStatement("insert t values (1)").ok());
  EXPECT_FALSE(sql::ParseStatement("insert into t values (1), (1, 2)").ok());
  EXPECT_FALSE(sql::ParseStatement("insert into t (a, b) values (1)").ok());
  EXPECT_FALSE(sql::ParseStatement("insert into t values (1) extra").ok());
  // The historical SELECT-only entry point rejects INSERTs.
  EXPECT_FALSE(Parse("insert into t values (1)").ok());
}

TEST(ParserInsertTest, ToStringRoundtrips) {
  auto s = sql::ParseStatement("insert into t (a, b) values (1, 2), (3, 4)");
  ASSERT_TRUE(s.ok());
  auto again = sql::ParseStatement(s->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->insert.rows, s->insert.rows);
  EXPECT_EQ(again->insert.columns, s->insert.columns);
}

// --- end-to-end through the full stack --------------------------------------

class SqlEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(123);
    std::vector<OidValue> pairs;
    std::vector<int64_t> objid;
    std::vector<double> decl;
    for (size_t i = 0; i < 20000; ++i) {
      const double v = rng.NextUniform(0.0, 360.0);
      ra_.push_back(v);
      pairs.push_back({i, v});
      objid.push_back(static_cast<int64_t>(5000000 + i));
      decl.push_back(rng.NextUniform(-90.0, 90.0));
    }
    dec_ = decl;
    auto strat = std::make_unique<AdaptiveReplication<OidValue>>(
        pairs, ValueRange(0.0, 360.0),
        std::make_unique<Apm>(8 * kKiB, 32 * kKiB), &space_);
    auto col = std::make_unique<SegmentedColumn>(
        Catalog::SegHandle("P", "ra"), ValType::kDbl, std::move(strat), &space_);
    ASSERT_TRUE(cat_.AddSegmentedColumn("P", "ra", std::move(col)).ok());
    ASSERT_TRUE(cat_.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
    ASSERT_TRUE(cat_.AddColumn("P", "dec", TypedVector::Of(decl)).ok());
  }

  StatusOr<std::shared_ptr<ResultSet>> Query(const std::string& text) {
    auto stmt = Parse(text);
    if (!stmt.ok()) return stmt.status();
    auto prog = sql::Compile(*stmt, cat_);
    if (!prog.ok()) return prog.status();
    OptContext ctx;
    ctx.catalog = &cat_;
    PassManager pm = MakeDefaultPipeline();
    Status st = pm.Run(&prog.value(), &ctx);
    if (!st.ok()) return st;
    MalInterpreter interp(&cat_);
    return interp.Run(*prog);
  }

  std::vector<int64_t> Oracle(double lo, double hi) {
    std::vector<int64_t> out;
    for (size_t i = 0; i < ra_.size(); ++i) {
      if (ra_[i] >= lo && ra_[i] <= hi) out.push_back(5000000 + i);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::vector<int64_t> Column(const ResultSet& rs, size_t c) {
    std::vector<int64_t> out;
    const Bat& b = *rs.cols.at(c).bat;
    for (size_t i = 0; i < b.size(); ++i) {
      out.push_back(static_cast<int64_t>(b.tail().DoubleAt(i)));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Catalog cat_;
  SegmentSpace space_;
  std::vector<double> ra_;
  std::vector<double> dec_;
};

TEST_F(SqlEndToEnd, Figure1Query) {
  auto rs = Query("select objid from P where ra between 205.1 and 205.12");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ((*rs)->cols.size(), 1u);
  EXPECT_EQ((*rs)->cols[0].name, "P.objid");
  EXPECT_EQ(Column(**rs, 0), Oracle(205.1, 205.12));
}

TEST_F(SqlEndToEnd, WiderRangeAfterAdaptation) {
  // Run several queries so the replication strategy reorganizes, then check
  // correctness still holds.
  for (double lo = 0; lo < 300; lo += 40) {
    auto rs = Query("select objid from P where ra between " +
                    std::to_string(lo) + " and " + std::to_string(lo + 25));
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(Column(**rs, 0), Oracle(lo, lo + 25));
  }
}

TEST_F(SqlEndToEnd, CountStar) {
  auto rs = Query("select count(*) from P where ra between 100 and 200");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ((*rs)->cols.size(), 1u);
  EXPECT_EQ(Column(**rs, 0)[0],
            static_cast<int64_t>(Oracle(100, 200).size()));
}

TEST_F(SqlEndToEnd, MultiPredicateConjunction) {
  auto rs = Query(
      "select objid from P where ra between 100 and 200 and dec between 0 and 45");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::vector<int64_t> oracle;
  for (size_t i = 0; i < ra_.size(); ++i) {
    if (ra_[i] >= 100 && ra_[i] <= 200 && dec_[i] >= 0 && dec_[i] <= 45) {
      oracle.push_back(5000000 + i);
    }
  }
  std::sort(oracle.begin(), oracle.end());
  EXPECT_EQ(Column(**rs, 0), oracle);
}

TEST_F(SqlEndToEnd, MultipleProjections) {
  auto rs = Query("select objid, dec from P where ra between 10 and 20");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ((*rs)->cols.size(), 2u);
  EXPECT_EQ((*rs)->cols[1].name, "P.dec");
  EXPECT_EQ((*rs)->cols[0].bat->size(), (*rs)->cols[1].bat->size());
  EXPECT_EQ(Column(**rs, 0), Oracle(10, 20));
}

TEST_F(SqlEndToEnd, ProjectionWithoutWhere) {
  auto rs = Query("select objid from P");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ((*rs)->NumRows(), 20000u);
}

TEST_F(SqlEndToEnd, CountWithoutWhere) {
  auto rs = Query("select count(*) from P");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(Column(**rs, 0)[0], 20000);
}

TEST_F(SqlEndToEnd, UnknownTableAndColumn) {
  EXPECT_FALSE(Query("select x from NoSuch where y between 1 and 2").ok());
  EXPECT_FALSE(Query("select nope from P where ra between 1 and 2").ok());
  EXPECT_FALSE(Query("select objid from P where nope between 1 and 2").ok());
}

TEST_F(SqlEndToEnd, EmptyResultRange) {
  auto rs = Query("select objid from P where ra between 400 and 500");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ((*rs)->NumRows(), 0u);
}

// --- multi-predicate plans over TWO segmented columns ------------------------

class SqlTwoSegmented : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(321);
    std::vector<OidValue> ra_pairs, dec_pairs;
    std::vector<int64_t> objid;
    for (size_t i = 0; i < 20000; ++i) {
      ra_.push_back(rng.NextUniform(0.0, 360.0));
      dec_.push_back(rng.NextUniform(-90.0, 90.0));
      ra_pairs.push_back({i, ra_.back()});
      dec_pairs.push_back({i, dec_.back()});
      objid.push_back(static_cast<int64_t>(7000000 + i));
    }
    auto add_segmented = [&](const std::string& name,
                             std::vector<OidValue> pairs, ValueRange domain) {
      auto strat = std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), domain, std::make_unique<Apm>(8 * kKiB, 32 * kKiB),
          &space_);
      auto col = std::make_unique<SegmentedColumn>(
          Catalog::SegHandle("P", name), ValType::kDbl, std::move(strat),
          &space_);
      ASSERT_TRUE(cat_.AddSegmentedColumn("P", name, std::move(col)).ok());
    };
    add_segmented("ra", std::move(ra_pairs), ValueRange(0.0, 360.0));
    add_segmented("dec", std::move(dec_pairs), ValueRange(-90.0, 90.0));
    ASSERT_TRUE(cat_.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  }

  StatusOr<MalProgram> CompileOnly(const std::string& text) {
    auto stmt = Parse(text);
    if (!stmt.ok()) return stmt.status();
    return sql::Compile(*stmt, cat_);
  }

  static std::vector<int64_t> Column(const ResultSet& rs, size_t c) {
    std::vector<int64_t> out;
    const Bat& b = *rs.cols.at(c).bat;
    for (size_t i = 0; i < b.size(); ++i) {
      out.push_back(static_cast<int64_t>(b.tail().DoubleAt(i)));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Catalog cat_;
  SegmentSpace space_;
  std::vector<double> ra_;
  std::vector<double> dec_;
};

TEST_F(SqlTwoSegmented, OptimizerRewritesBothSelections) {
  auto prog = CompileOnly(
      "select objid from P where ra between 100 and 200 and dec between 0 and 45");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  OptContext ctx;
  ctx.catalog = &cat_;
  SegmentOptimizerPass pass;
  ASSERT_TRUE(pass.Apply(&prog.value(), &ctx).ok());
  EXPECT_EQ(pass.rewrites(), 2);  // both BETWEEN selections went segment-aware
  const std::string s = prog->ToString();
  EXPECT_NE(s.find("bpm.take(\"sys_P_ra\")"), std::string::npos);
  EXPECT_NE(s.find("bpm.take(\"sys_P_dec\")"), std::string::npos);
}

TEST_F(SqlTwoSegmented, OptimizedConjunctionMatchesUnoptimizedPlan) {
  const struct {
    double ra_lo, ra_hi, dec_lo, dec_hi;
  } cases[] = {
      {100, 200, 0, 45}, {0, 360, -90, 90}, {205.1, 205.12, -5, 5},
      {350, 360, 80, 90},  // narrow corner: small results on both predicates
  };
  for (const auto& c : cases) {
    const std::string text = "select objid from P where ra between " +
                             std::to_string(c.ra_lo) + " and " +
                             std::to_string(c.ra_hi) + " and dec between " +
                             std::to_string(c.dec_lo) + " and " +
                             std::to_string(c.dec_hi);
    auto plain = CompileOnly(text);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    MalInterpreter interp(&cat_);
    auto rs_plain = interp.Run(*plain);
    ASSERT_TRUE(rs_plain.ok()) << rs_plain.status().ToString();

    auto opt = CompileOnly(text);
    ASSERT_TRUE(opt.ok());
    OptContext ctx;
    ctx.catalog = &cat_;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&opt.value(), &ctx).ok());
    auto rs_opt = interp.Run(*opt);
    ASSERT_TRUE(rs_opt.ok()) << rs_opt.status().ToString();

    std::vector<int64_t> oracle;
    for (size_t i = 0; i < ra_.size(); ++i) {
      if (ra_[i] >= c.ra_lo && ra_[i] <= c.ra_hi && dec_[i] >= c.dec_lo &&
          dec_[i] <= c.dec_hi) {
        oracle.push_back(7000000 + i);
      }
    }
    std::sort(oracle.begin(), oracle.end());
    EXPECT_EQ(Column(**rs_plain, 0), oracle) << text;
    EXPECT_EQ(Column(**rs_opt, 0), Column(**rs_plain, 0)) << text;
  }
}

// --- selection push-down into segment delivery -------------------------------

TEST_F(SqlEndToEnd, PushdownDropsMalSideRefilterAndMatchesOracle) {
  auto stmt = Parse("select objid from P where ra between 120 and 180");
  ASSERT_TRUE(stmt.ok());
  auto prog = sql::Compile(*stmt, cat_);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  OptContext ctx;
  ctx.catalog = &cat_;
  PassManager pm = MakeDefaultPipeline();
  ASSERT_TRUE(pm.Run(&prog.value(), &ctx).ok());

  // The rewritten loop asks the iterator for filtered delivery (the SQL
  // BETWEEN is inclusive, the column is dbl) and carries NO algebra
  // re-filter in the redo body: the metering filter pass is the only one.
  int iterators = 0, refilters = 0;
  double mode = -1;
  for (const MalInstr& in : prog->instrs) {
    if (in.Is("bpm", "newIterator")) {
      ++iterators;
      ASSERT_GE(in.args.size(), 4u);
      ASSERT_EQ(in.args[3].kind, MalArg::Kind::kNum);
      mode = in.args[3].num;
    }
    if (in.Is("algebra", "select") || in.Is("algebra", "uselect")) ++refilters;
  }
  EXPECT_EQ(iterators, 1);
  EXPECT_EQ(mode, 2);  // uselect shape: filtered candidate-oid delivery
  EXPECT_EQ(refilters, 0);

  MalInterpreter interp(&cat_);
  auto rs = interp.Run(*prog);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(Column(**rs, 0), Oracle(120, 180));
}

TEST_F(SqlEndToEnd, PushdownSkipsBoundsItCannotProveInclusive) {
  // Hand-built 4-arg uselect (bounds without inclusive flags): the optimizer
  // cannot prove the range inclusive, so it must fall back to raw delivery
  // (mode 0) and keep the per-segment re-filter in the loop body.
  MalProgram prog;
  MalBuilder b(&prog);
  const int ra = b.Call("sql", "bind",
                        {MalArg::Str("sys"), MalArg::Str("P"),
                         MalArg::Str("ra"), MalArg::Num(0)});
  b.Call("algebra", "uselect",
         {MalArg::Var(ra), MalArg::Num(100), MalArg::Num(200), MalArg::Num(0)});
  OptContext ctx;
  ctx.catalog = &cat_;
  SegmentOptimizerPass pass;
  ASSERT_TRUE(pass.Apply(&prog, &ctx).ok());
  EXPECT_EQ(pass.rewrites(), 1);

  int iterators = 0, refilters = 0;
  double mode = -1;
  for (const MalInstr& in : prog.instrs) {
    if (in.Is("bpm", "newIterator")) {
      ++iterators;
      ASSERT_GE(in.args.size(), 4u);
      mode = in.args[3].num;
    }
    if (in.Is("algebra", "uselect")) ++refilters;
  }
  EXPECT_EQ(iterators, 1);
  EXPECT_EQ(mode, 0);
  EXPECT_EQ(refilters, 1);  // the body re-filter survives
}

TEST(ParserAggTest, ParsesAggregates) {
  auto s = Parse("select sum(dec) from P where ra between 1 and 2");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->agg, sql::AggFn::kSum);
  EXPECT_EQ(s->agg_column, "dec");
  EXPECT_EQ(Parse("select min(x) from t")->agg, sql::AggFn::kMin);
  EXPECT_EQ(Parse("select max(x) from t")->agg, sql::AggFn::kMax);
  EXPECT_EQ(Parse("select avg(x) from t")->agg, sql::AggFn::kAvg);
  EXPECT_FALSE(Parse("select sum() from t").ok());
  EXPECT_FALSE(Parse("select sum(*) from t").ok());
}

TEST_F(SqlEndToEnd, AggregatesMatchOracle) {
  double sum = 0, mn = 1e300, mx = -1e300;
  uint64_t n = 0;
  for (size_t i = 0; i < ra_.size(); ++i) {
    if (ra_[i] >= 100 && ra_[i] <= 200) {
      sum += dec_[i];
      mn = std::min(mn, dec_[i]);
      mx = std::max(mx, dec_[i]);
      ++n;
    }
  }
  auto check = [&](const std::string& q, double expected) {
    auto rs = Query(q);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ((*rs)->NumRows(), 1u);
    EXPECT_NEAR((*rs)->cols[0].bat->tail().DoubleAt(0), expected,
                std::abs(expected) * 1e-9 + 1e-9)
        << q;
  };
  check("select sum(dec) from P where ra between 100 and 200", sum);
  check("select min(dec) from P where ra between 100 and 200", mn);
  check("select max(dec) from P where ra between 100 and 200", mx);
  check("select avg(dec) from P where ra between 100 and 200", sum / n);
}

TEST_F(SqlEndToEnd, AggregateOverWholeTable) {
  double sum = 0;
  for (double d : dec_) sum += d;
  auto rs = Query("select sum(dec) from P");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_NEAR((*rs)->cols[0].bat->tail().DoubleAt(0), sum, std::abs(sum) * 1e-9);
}

TEST_F(SqlEndToEnd, AggregateOverSegmentedColumnItself) {
  // Aggregating the adaptively managed column exercises the segment
  // optimizer path feeding an aggregate.
  double mx = -1e300;
  for (size_t i = 0; i < ra_.size(); ++i) {
    if (ra_[i] >= 50 && ra_[i] <= 60) mx = std::max(mx, ra_[i]);
  }
  auto rs = Query("select max(ra) from P where ra between 50 and 60");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_NEAR((*rs)->cols[0].bat->tail().DoubleAt(0), mx, 1e-9);
}

TEST_F(SqlEndToEnd, AggregateUnknownColumnFails) {
  EXPECT_FALSE(Query("select sum(nope) from P").ok());
}

}  // namespace
}  // namespace socs
