// Versioned segment covers (exec/epoch_manager.h + strategy.h): scans pin
// the published epoch and finish on an immutable cover snapshot while
// mutators publish new covers with one atomic epoch flip; segments retired
// by a mutation are reclaimed only once no reader can still be walking them.
// These tests pin the protocol: the EpochManager primitive itself, deferred
// reclamation under an active pin, snapshot isolation of in-flight scans
// from concurrent appends/flushes, and the retire list draining to empty at
// every joined idle point.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "exec/epoch_manager.h"

namespace socs {
namespace {

// --- the primitive ----------------------------------------------------------

TEST(EpochManager, PinUnpinLifecycle) {
  EpochManager em;
  EXPECT_EQ(em.published(), 1u);
  EXPECT_EQ(em.MinActive(), EpochManager::kNoReaders);
  EXPECT_EQ(em.ActivePins(), 0u);

  const size_t slot = em.Pin();
  EXPECT_EQ(em.PinnedAt(slot), 1u);
  EXPECT_EQ(em.ActivePins(), 1u);
  EXPECT_EQ(em.MinActive(), 1u);
  EXPECT_EQ(em.pins(), 1u);

  // A publish moves the world forward; the pinned reader stays at its epoch.
  EXPECT_EQ(em.Advance(), 2u);
  EXPECT_EQ(em.published(), 2u);
  EXPECT_EQ(em.PinnedAt(slot), 1u);
  EXPECT_EQ(em.MinActive(), 1u);

  em.Unpin(slot);
  EXPECT_EQ(em.ActivePins(), 0u);
  EXPECT_EQ(em.MinActive(), EpochManager::kNoReaders);
}

TEST(EpochManager, MinActiveIsOldestReader) {
  EpochManager em;
  const size_t old_reader = em.Pin();  // epoch 1
  em.Advance();
  em.Advance();
  const size_t new_reader = em.Pin();  // epoch 3
  EXPECT_EQ(em.PinnedAt(new_reader), 3u);
  EXPECT_EQ(em.MinActive(), 1u);
  em.Unpin(old_reader);
  EXPECT_EQ(em.MinActive(), 3u);
  em.Unpin(new_reader);
  EXPECT_EQ(em.MinActive(), EpochManager::kNoReaders);
  EXPECT_EQ(em.pins(), 2u);
}

TEST(EpochManager, RetireReclaimCounters) {
  EpochManager em;
  em.NoteRetire();
  em.NoteRetire();
  em.NoteReclaim();
  EXPECT_EQ(em.retires(), 2u);
  EXPECT_EQ(em.reclaims(), 1u);
}

// The announce race: a reader's pin must either be visible to a concurrent
// writer's post-Advance MinActive() scan, or the reader must observe the new
// epoch. Either way MinActive() can never lag the epoch a writer is about to
// retire under once the writer has advanced past it. Hammer the protocol
// from both sides and check the invariant a writer relies on: whenever a
// reader holds a pin, its pinned epoch is at most published() and MinActive()
// reports an epoch <= its own.
TEST(EpochManager, ConcurrentPinAdvanceKeepsInvariant) {
  EpochManager em;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};

  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) em.Advance();
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const size_t slot = em.Pin();
        const uint64_t mine = em.PinnedAt(slot);
        const uint64_t min = em.MinActive();
        // Our own pin is visible to ourselves, so MinActive <= mine, and no
        // pin can be newer than the published epoch.
        if (min > mine || mine > em.published()) violations.fetch_add(1);
        em.Unpin(slot);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(em.ActivePins(), 0u);
  EXPECT_EQ(em.published(), 4001u);
}

// --- deferred reclamation through the strategy ------------------------------

std::vector<int32_t> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<int32_t>(rng.NextInt(0, 999'999)));
  }
  return data;
}

// While a reader holds a pin on the pre-mutation cover, segments retired by
// a reorganization stay on the retire list and are NOT freed in the segment
// space; releasing the pin reclaims them all.
TEST(EpochCovers, RetireUnderPinDefersReclaim) {
  const ValueRange domain(0, 1'000'000);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(MakeData(8000, 42), domain,
                                      std::make_unique<Apm>(2 * kKiB, 8 * kKiB),
                                      &space);

  size_t slot = 0;
  const auto pinned = strat.PinCover(&slot);
  ASSERT_NE(pinned, nullptr);
  const uint64_t pinned_epoch = pinned->epoch();

  // The 32 KiB column violates the 8 KiB APM upper bound, so the first query
  // splits it -- retiring the whole-column segment while we still hold it.
  const QueryExecution ex = strat.RunRange(ValueRange(0, 500'000));
  ASSERT_GT(ex.splits, 0u);
  EXPECT_GT(strat.data_epoch(), pinned_epoch);
  EXPECT_GT(strat.PendingRetired(), 0u);
  EXPECT_EQ(space.stats().segments_freed, 0u)
      << "a pinned reader's segments must never be freed under it";
  EXPECT_GT(strat.epochs().retires(), 0u);
  EXPECT_EQ(strat.epochs().reclaims(), 0u);

  // The pinned cover still scans: every segment it lists is alive.
  uint64_t rows = 0;
  for (const SegmentInfo& seg : pinned->Cover(domain)) {
    rows += strat.ScanSegment(seg, domain, nullptr).result_count;
  }
  EXPECT_EQ(rows, 8000u);

  strat.UnpinCover(slot);
  EXPECT_EQ(strat.PendingRetired(), 0u);
  EXPECT_GT(space.stats().segments_freed, 0u);
  EXPECT_EQ(strat.epochs().reclaims(), strat.epochs().retires());
}

// A cover pinned before an append is a consistent snapshot: it keeps
// delivering exactly the pre-append rows (with the pre-append metering)
// while data_epoch() and fresh scans move on to the appended state.
TEST(EpochCovers, PinnedCoverIsSnapshotAcrossAppend) {
  const ValueRange domain(0, 1'000'000);
  const std::vector<int32_t> initial = MakeData(4000, 7);

  // Solo baseline: the same column, never mutated, scanned once.
  SegmentSpace solo_space;
  NonSegmented<int32_t> solo(initial, domain, &solo_space);
  std::vector<int32_t> solo_rows;
  const QueryExecution solo_ex = solo.RunRange(domain, &solo_rows);

  SegmentSpace space;
  NonSegmented<int32_t> strat(initial, domain, &space);
  size_t slot = 0;
  const auto pinned = strat.PinCover(&slot);
  ASSERT_NE(pinned, nullptr);

  // COW append: the tail-extend retires the old segment under our pin.
  const std::vector<int32_t> batch{5, 6, 7, 8, 9};
  strat.Append(batch);
  EXPECT_EQ(strat.data_epoch(), pinned->epoch() + 1);
  EXPECT_EQ(strat.PendingRetired(), 1u);

  // The old cover delivers the pre-append rows, byte-identical to the solo
  // scan of the never-mutated clone.
  std::vector<int32_t> old_rows;
  uint64_t old_bytes = 0;
  for (const SegmentInfo& seg : pinned->Cover(domain)) {
    old_bytes += strat.ScanSegment(seg, domain, &old_rows).read_bytes;
  }
  EXPECT_EQ(old_rows, solo_rows);
  EXPECT_EQ(old_bytes, solo_ex.read_bytes);

  // A fresh scan sees the appended state.
  std::vector<int32_t> new_rows;
  strat.RunRange(domain, &new_rows);
  EXPECT_EQ(new_rows.size(), initial.size() + batch.size());

  strat.UnpinCover(slot);
  EXPECT_EQ(strat.PendingRetired(), 0u);
}

// Cracking opts out of snapshot covers (it reorganizes its array in place)
// and keeps the shared-latch discipline; the snapshot strategies leave the
// shared counter untouched and prove their scans through the pin counter.
TEST(EpochCovers, CrackingKeepsLatchDiscipline) {
  const ValueRange domain(0, 1'000'000);
  SegmentSpace space;
  CrackingColumn<int32_t> crack(MakeData(2000, 11), domain, &space);
  EXPECT_FALSE(crack.snapshot_scans());
  crack.RunRange(ValueRange(100, 5000));
  EXPECT_GT(crack.latch().shared_acquisitions(), 0u);
  EXPECT_EQ(crack.epochs().pins(), 0u);

  SegmentSpace space2;
  AdaptiveSegmentation<int32_t> snap(MakeData(2000, 12), domain,
                                     std::make_unique<Apm>(2 * kKiB, 8 * kKiB),
                                     &space2);
  EXPECT_TRUE(snap.snapshot_scans());
  snap.RunRange(ValueRange(100, 5000));
  EXPECT_GT(snap.epochs().pins(), 0u);
  EXPECT_EQ(snap.latch().shared_acquisitions(), 0u);
}

// --- scans racing mutation, threaded ----------------------------------------

// Long scans pin a cover and walk it segment by segment while a writer
// thread keeps appending and flushing batches. Every scan must observe a
// row count that existed at SOME published epoch (initial + k * batch), and
// after both sides join, the retire list must have drained: live segments
// in the space == segments the index still references.
TEST(EpochCovers, LongScansRaceFlushBatch) {
  const ValueRange domain(0, 1'000'000);
  constexpr size_t kInitial = 6000;
  constexpr size_t kBatch = 7;
  constexpr int kAppends = 60;

  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1 << 30;  // flush only via RunIdleWork below
  DeferredSegmentation<int32_t> strat(MakeData(kInitial, 99), domain,
                                      std::make_unique<Apm>(2 * kKiB, 8 * kKiB),
                                      &space, opts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_counts{0};
  std::thread writer([&] {
    Rng rng(5);
    for (int i = 0; i < kAppends; ++i) {
      std::vector<int32_t> batch;
      for (size_t j = 0; j < kBatch; ++j) {
        batch.push_back(static_cast<int32_t>(rng.NextInt(0, 999'999)));
      }
      strat.Append(batch);
      if (strat.HasIdleWork()) strat.RunIdleWork();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      do {
        size_t slot = 0;
        const auto cover = strat.PinCover(&slot);
        uint64_t rows = 0;
        for (const SegmentInfo& seg : cover->Cover(domain)) {
          rows += strat.ScanSegment(seg, domain, nullptr).result_count;
        }
        // Appends publish atomically, so any pinned cover holds exactly
        // initial + k*batch rows for a whole number k of appends.
        if (rows < kInitial || (rows - kInitial) % kBatch != 0 ||
            rows > kInitial + kAppends * kBatch) {
          bad_counts.fetch_add(1);
        }
        strat.UnpinCover(slot);
      } while (!stop.load());
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_counts.load(), 0u);
  EXPECT_EQ(strat.epochs().ActivePins(), 0u);

  // Drain: the last publish or the last unpin ran reclamation with no pins
  // left, so nothing retired may still be held...
  EXPECT_EQ(strat.PendingRetired(), 0u);
  EXPECT_EQ(strat.epochs().reclaims(), strat.epochs().retires());
  // ... and the space's live-segment accounting must match the index.
  EXPECT_EQ(space.stats().segments_created - space.stats().segments_freed,
            strat.Segments().size());
  // Row conservation through every COW tail-extend and batched split.
  EXPECT_EQ(strat.index().TotalCount(), kInitial + kAppends * kBatch);
}

}  // namespace
}  // namespace socs
