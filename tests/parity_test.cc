// Engine/core parity: the SQL->MAL engine path (segment optimizer + BPM
// iterator + bpm.adapt) and the direct AccessStrategy::RunRange path must
// report byte-for-byte identical per-query accounting. This is the
// acceptance test of the single-pass execution protocol: the engine meters
// segment delivery through ScanSegment and runs only Reorganize in
// bpm.adapt, so nothing is scanned twice and the two harnesses agree.
//
// The parity requirement extends to the parallel execution subsystem: an
// engine running its scan phase across a 4-worker pool, and a core RunRange
// fanning out across a 4-worker pool, must both stay byte-identical --
// results, per-query records (bit-identical seconds included) and
// end-of-query IoStats totals -- to the single-threaded runs. The threaded
// variants below assert exactly that by comparing a threads=4 run against a
// threads=1 oracle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "engine/catalog.h"
#include "engine/mal_builder.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "exec/task_scheduler.h"
#include "exec/thread_pool.h"
#include "sql/compiler.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

enum class StratKind { kSegmentation, kReplication };

std::vector<OidValue> MakePairs(size_t n, const ValueRange& domain,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<OidValue> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({i, rng.NextUniform(domain.lo, domain.hi)});
  }
  return out;
}

std::unique_ptr<AccessStrategy<OidValue>> MakeStrategy(
    StratKind kind, const std::vector<OidValue>& pairs, const ValueRange& domain,
    SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  if (kind == StratKind::kSegmentation) {
    return std::make_unique<AdaptiveSegmentation<OidValue>>(
        pairs, domain, std::move(model), space);
  }
  return std::make_unique<AdaptiveReplication<OidValue>>(
      pairs, domain, std::move(model), space);
}

/// The Fig.-1-style plan `select objid from P where ra between lo and hi`.
MalProgram BuildSelectPlan(double lo, double hi) {
  MalProgram prog;
  MalBuilder b(&prog);
  const int ra = b.Call("sql", "bind",
                        {MalArg::Str("sys"), MalArg::Str("P"), MalArg::Str("ra"),
                         MalArg::Num(0)});
  const int cand = b.Call("algebra", "uselect",
                          {MalArg::Var(ra), MalArg::Num(lo), MalArg::Num(hi),
                           MalArg::Num(1), MalArg::Num(1)});
  const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
  const int marked =
      b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
  const int renum = b.Call("bat", "reverse", {MalArg::Var(marked)});
  const int objid = b.Call("sql", "bind",
                           {MalArg::Str("sys"), MalArg::Str("P"),
                            MalArg::Str("objid"), MalArg::Num(0)});
  const int joined =
      b.Call("algebra", "join", {MalArg::Var(renum), MalArg::Var(objid)});
  const int rs = b.Call("sql", "resultSet", {});
  b.CallVoid("sql", "rsColumn",
             {MalArg::Var(rs), MalArg::Str("P.objid"), MalArg::Var(joined)});
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

/// Drives the same workload through the engine path (optimized MAL plans
/// against one strategy instance) and the direct RunRange path (an identical
/// second instance), asserting identical per-query execution records. With
/// `engine_threads > 1` the engine scans fan out across a worker pool while
/// the core oracle stays single-threaded -- so the assertions below prove
/// the threads=N engine is byte-identical to the threads=1 baseline.
void ExpectEngineCoreParity(StratKind kind, bool zipf, size_t engine_threads = 1) {
  const ValueRange domain(0.0, 360.0);
  const size_t n = 20000;
  auto pairs = MakePairs(n, domain, 99);
  std::vector<int64_t> objid;
  objid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    objid.push_back(static_cast<int64_t>(1000000 + i));
  }

  SegmentSpace engine_space, core_space;
  Catalog cat;
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle("P", "ra"), ValType::kDbl,
      MakeStrategy(kind, pairs, domain, &engine_space), &engine_space);
  ASSERT_TRUE(cat.AddSegmentedColumn("P", "ra", std::move(col)).ok());
  ASSERT_TRUE(cat.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  auto direct = MakeStrategy(kind, pairs, domain, &core_space);

  MalInterpreter interp(&cat);
  TaskScheduler sched(engine_threads);
  if (engine_threads > 1) interp.set_exec(&sched);
  std::unique_ptr<QueryGenerator> gen;
  if (zipf) {
    gen = std::make_unique<ZipfRangeGenerator>(domain, 0.05, 7);
  } else {
    gen = std::make_unique<UniformRangeGenerator>(domain, 0.05, 7);
  }

  for (int i = 0; i < 80; ++i) {
    const ValueRange q = gen->Next().range;

    MalProgram prog = BuildSelectPlan(q.lo, q.hi);
    OptContext ctx;
    ctx.catalog = &cat;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
    auto rs = interp.Run(prog);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    const QueryExecution eng = interp.last_execution();

    // Both paths must see the identical half-open range: the MAL plan's
    // inclusive [lo, hi] is widened by the engine, so widen here too.
    const QueryExecution core =
        direct->RunRange(SegmentedColumn::InclusiveToHalfOpen(q.lo, q.hi));

    ASSERT_EQ(eng.read_bytes, core.read_bytes) << "query " << i;
    ASSERT_EQ(eng.write_bytes, core.write_bytes) << "query " << i;
    ASSERT_EQ(eng.splits, core.splits) << "query " << i;
    ASSERT_EQ(eng.segments_scanned, core.segments_scanned) << "query " << i;
    ASSERT_EQ(eng.result_count, core.result_count) << "query " << i;
    ASSERT_EQ(eng.merges, core.merges) << "query " << i;
    ASSERT_EQ(eng.replicas_created, core.replicas_created) << "query " << i;
    ASSERT_EQ(eng.segments_dropped, core.segments_dropped) << "query " << i;
    ASSERT_EQ(eng.replicas_evicted, core.replicas_evicted) << "query " << i;
    EXPECT_DOUBLE_EQ(eng.selection_seconds, core.selection_seconds)
        << "query " << i;
    EXPECT_DOUBLE_EQ(eng.adaptation_seconds, core.adaptation_seconds)
        << "query " << i;
    ASSERT_EQ((*rs)->NumRows(), core.result_count) << "query " << i;
  }

  // The storage layers saw identical traffic, byte for byte.
  EXPECT_EQ(engine_space.stats().mem_read_bytes,
            core_space.stats().mem_read_bytes);
  EXPECT_EQ(engine_space.stats().mem_write_bytes,
            core_space.stats().mem_write_bytes);
  EXPECT_EQ(engine_space.stats().segments_created,
            core_space.stats().segments_created);
  EXPECT_EQ(engine_space.stats().segments_scanned,
            core_space.stats().segments_scanned);
}

TEST(EngineCoreParity, SegmentationUniform) {
  ExpectEngineCoreParity(StratKind::kSegmentation, /*zipf=*/false);
}

TEST(EngineCoreParity, SegmentationZipf) {
  ExpectEngineCoreParity(StratKind::kSegmentation, /*zipf=*/true);
}

TEST(EngineCoreParity, ReplicationUniform) {
  ExpectEngineCoreParity(StratKind::kReplication, /*zipf=*/false);
}

TEST(EngineCoreParity, ReplicationZipf) {
  ExpectEngineCoreParity(StratKind::kReplication, /*zipf=*/true);
}

// The parallel-engine acceptance criterion: with a 4-worker scheduler the
// engine's per-query records, result counts and storage-layer IoStats remain
// byte-identical to the single-threaded core oracle.
TEST(EngineThreadParity, SegmentationUniformThreads4) {
  ExpectEngineCoreParity(StratKind::kSegmentation, /*zipf=*/false, 4);
}

TEST(EngineThreadParity, SegmentationZipfThreads4) {
  ExpectEngineCoreParity(StratKind::kSegmentation, /*zipf=*/true, 4);
}

TEST(EngineThreadParity, ReplicationUniformThreads4) {
  ExpectEngineCoreParity(StratKind::kReplication, /*zipf=*/false, 4);
}

TEST(EngineThreadParity, ReplicationZipfThreads4) {
  ExpectEngineCoreParity(StratKind::kReplication, /*zipf=*/true, 4);
}

// Core-side thread parity: RunRange with a 4-worker pool must be
// byte-identical to RunRange without one -- per-query records (bit-identical
// seconds), the *order and content* of the result vectors, and the space's
// final IoStats totals.
void ExpectCoreThreadParity(StratKind kind, bool zipf) {
  const ValueRange domain(0.0, 360.0);
  const size_t n = 20000;
  auto pairs = MakePairs(n, domain, 7);

  SegmentSpace seq_space, par_space;
  auto seq = MakeStrategy(kind, pairs, domain, &seq_space);
  auto par = MakeStrategy(kind, pairs, domain, &par_space);
  ThreadPool pool(4);

  std::unique_ptr<QueryGenerator> gen;
  if (zipf) {
    gen = std::make_unique<ZipfRangeGenerator>(domain, 0.05, 31);
  } else {
    gen = std::make_unique<UniformRangeGenerator>(domain, 0.05, 31);
  }

  for (int i = 0; i < 80; ++i) {
    const ValueRange q = gen->Next().range;
    std::vector<OidValue> seq_result, par_result;
    const QueryExecution a = seq->RunRange(q, &seq_result);
    const QueryExecution b = par->RunRange(q, &par_result, &pool);

    ASSERT_EQ(a.read_bytes, b.read_bytes) << "query " << i;
    ASSERT_EQ(a.write_bytes, b.write_bytes) << "query " << i;
    ASSERT_EQ(a.result_count, b.result_count) << "query " << i;
    ASSERT_EQ(a.segments_scanned, b.segments_scanned) << "query " << i;
    ASSERT_EQ(a.splits, b.splits) << "query " << i;
    ASSERT_EQ(a.replicas_created, b.replicas_created) << "query " << i;
    // Bit-identical, not approximately equal: the parallel fold must run in
    // cover order with the same arithmetic as the sequential loop.
    ASSERT_EQ(a.selection_seconds, b.selection_seconds) << "query " << i;
    ASSERT_EQ(a.adaptation_seconds, b.adaptation_seconds) << "query " << i;

    ASSERT_EQ(seq_result.size(), par_result.size()) << "query " << i;
    for (size_t r = 0; r < seq_result.size(); ++r) {
      ASSERT_EQ(seq_result[r].oid, par_result[r].oid) << "query " << i;
      ASSERT_EQ(seq_result[r].value, par_result[r].value) << "query " << i;
    }
  }

  // End-of-workload IoStats totals: byte-identical under parallelism.
  const IoStats a = seq_space.stats();
  const IoStats b = par_space.stats();
  EXPECT_EQ(a.mem_read_bytes, b.mem_read_bytes);
  EXPECT_EQ(a.mem_write_bytes, b.mem_write_bytes);
  EXPECT_EQ(a.disk_read_bytes, b.disk_read_bytes);
  EXPECT_EQ(a.disk_write_bytes, b.disk_write_bytes);
  EXPECT_EQ(a.segments_created, b.segments_created);
  EXPECT_EQ(a.segments_freed, b.segments_freed);
  EXPECT_EQ(a.segments_scanned, b.segments_scanned);
  // The buffer pool evolved identically too (touches replay in cover order).
  EXPECT_EQ(seq_space.pool().hits(), par_space.pool().hits());
  EXPECT_EQ(seq_space.pool().misses(), par_space.pool().misses());
  // The fan-out actually ran: scans pinned epochs (the snapshot-read
  // discipline; the shared latch is no longer on the scan path),
  // reorganization took the exclusive latch.
  EXPECT_GT(par->epochs().pins(), 0u);
  EXPECT_GT(par->latch().exclusive_acquisitions(), 0u);
}

TEST(CoreThreadParity, SegmentationUniform) {
  ExpectCoreThreadParity(StratKind::kSegmentation, /*zipf=*/false);
}

TEST(CoreThreadParity, SegmentationZipf) {
  ExpectCoreThreadParity(StratKind::kSegmentation, /*zipf=*/true);
}

TEST(CoreThreadParity, ReplicationUniform) {
  ExpectCoreThreadParity(StratKind::kReplication, /*zipf=*/false);
}

TEST(CoreThreadParity, ReplicationZipf) {
  ExpectCoreThreadParity(StratKind::kReplication, /*zipf=*/true);
}

// Write-path parity: an interleaved insert/select stream through the SQL
// engine (INSERT -> bpm.append, SELECT -> segment iterator + bpm.adapt) and
// the same stream through direct core calls (Append / RunRange) must report
// byte-for-byte identical per-statement accounting -- appends are just
// another adaptation side effect.
void ExpectInsertSelectParity(StratKind kind, size_t engine_threads = 1) {
  const ValueRange domain(0.0, 360.0);
  const size_t n = 20000;
  auto pairs = MakePairs(n, domain, 123);
  std::vector<int64_t> objid;
  objid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    objid.push_back(static_cast<int64_t>(1000000 + i));
  }

  SegmentSpace engine_space, core_space;
  Catalog cat;
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle("P", "ra"), ValType::kDbl,
      MakeStrategy(kind, pairs, domain, &engine_space), &engine_space);
  ASSERT_TRUE(cat.AddSegmentedColumn("P", "ra", std::move(col)).ok());
  ASSERT_TRUE(cat.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  auto direct = MakeStrategy(kind, pairs, domain, &core_space);

  MalInterpreter interp(&cat);
  TaskScheduler sched(engine_threads);
  if (engine_threads > 1) interp.set_exec(&sched);
  UniformRangeGenerator gen(domain, 0.05, 17);
  Rng rng(18);
  uint64_t core_rows = n;

  auto check = [&](const QueryExecution& eng, const QueryExecution& core,
                   int step) {
    ASSERT_EQ(eng.read_bytes, core.read_bytes) << "step " << step;
    ASSERT_EQ(eng.write_bytes, core.write_bytes) << "step " << step;
    ASSERT_EQ(eng.splits, core.splits) << "step " << step;
    ASSERT_EQ(eng.segments_scanned, core.segments_scanned) << "step " << step;
    ASSERT_EQ(eng.result_count, core.result_count) << "step " << step;
    ASSERT_EQ(eng.replicas_created, core.replicas_created) << "step " << step;
    ASSERT_EQ(eng.segments_dropped, core.segments_dropped) << "step " << step;
    EXPECT_DOUBLE_EQ(eng.selection_seconds, core.selection_seconds)
        << "step " << step;
    EXPECT_DOUBLE_EQ(eng.adaptation_seconds, core.adaptation_seconds)
        << "step " << step;
  };

  for (int step = 0; step < 90; ++step) {
    if (step % 3 == 2) {
      // INSERT a small batch; every ~5th batch strays past the domain to
      // exercise widening parity.
      sql::InsertStmt ins;
      ins.table = "P";  // VALUES bind in declaration order: (ra, objid)
      const size_t batch = 1 + static_cast<size_t>(rng.NextInt(1, 4));
      std::vector<OidValue> core_pairs;
      for (size_t r = 0; r < batch; ++r) {
        const double hi = step % 15 == 14 ? 380.0 : 360.0;
        const double v = rng.NextUniform(0.0, hi);
        ins.rows.push_back({v, static_cast<double>(2000000 + step)});
        core_pairs.push_back({core_rows + r, v});
      }
      auto prog = sql::Compile(ins, cat);
      ASSERT_TRUE(prog.ok()) << prog.status().ToString();
      OptContext ctx;
      ctx.catalog = &cat;
      PassManager pm = MakeDefaultPipeline();
      ASSERT_TRUE(pm.Run(&prog.value(), &ctx).ok());
      auto rs = interp.Run(*prog);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      const QueryExecution core = direct->Append(core_pairs);
      core_rows += batch;
      ASSERT_EQ(*cat.RowCount("P"), core_rows) << "step " << step;
      check(interp.last_execution(), core, step);
    } else {
      const ValueRange q = gen.Next().range;
      MalProgram prog = BuildSelectPlan(q.lo, q.hi);
      OptContext ctx;
      ctx.catalog = &cat;
      PassManager pm = MakeDefaultPipeline();
      ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
      auto rs = interp.Run(prog);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      const QueryExecution core =
          direct->RunRange(SegmentedColumn::InclusiveToHalfOpen(q.lo, q.hi));
      check(interp.last_execution(), core, step);
      ASSERT_EQ((*rs)->NumRows(), core.result_count) << "step " << step;
    }
  }

  // The storage layers saw identical traffic, byte for byte.
  EXPECT_EQ(engine_space.stats().mem_read_bytes,
            core_space.stats().mem_read_bytes);
  EXPECT_EQ(engine_space.stats().mem_write_bytes,
            core_space.stats().mem_write_bytes);
  EXPECT_EQ(engine_space.stats().disk_write_bytes,
            core_space.stats().disk_write_bytes);
  EXPECT_EQ(engine_space.stats().segments_created,
            core_space.stats().segments_created);
  EXPECT_EQ(engine_space.stats().segments_scanned,
            core_space.stats().segments_scanned);
}

TEST(InsertSelectParity, Segmentation) {
  ExpectInsertSelectParity(StratKind::kSegmentation);
}

TEST(InsertSelectParity, Replication) {
  ExpectInsertSelectParity(StratKind::kReplication);
}

// The write path under the parallel engine: INSERTs stay exclusive behind
// the column latch and SELECT fan-outs commit lanes in cover order, so the
// interleaved stream still matches the single-threaded core byte-for-byte.
TEST(InsertSelectParity, SegmentationThreads4) {
  ExpectInsertSelectParity(StratKind::kSegmentation, 4);
}

TEST(InsertSelectParity, ReplicationThreads4) {
  ExpectInsertSelectParity(StratKind::kReplication, 4);
}

// The acceptance criterion of the refactor: one engine-path query charges
// exactly the covering segments' payload bytes -- not 2x, as the old
// deliver-unmetered-then-rescan-in-Adapt scheme did.
TEST(SinglePassAccounting, EngineReadsEqualCoveringBytesExactlyOnce) {
  const ValueRange domain(0.0, 360.0);
  const size_t n = 20000;
  auto pairs = MakePairs(n, domain, 42);
  std::vector<int64_t> objid;
  for (size_t i = 0; i < n; ++i) {
    objid.push_back(static_cast<int64_t>(1000000 + i));
  }
  SegmentSpace space;
  Catalog cat;
  auto col = std::make_unique<SegmentedColumn>(
      Catalog::SegHandle("P", "ra"), ValType::kDbl,
      MakeStrategy(StratKind::kSegmentation, pairs, domain, &space), &space);
  ASSERT_TRUE(cat.AddSegmentedColumn("P", "ra", std::move(col)).ok());
  ASSERT_TRUE(cat.AddColumn("P", "objid", TypedVector::Of(objid)).ok());
  MalInterpreter interp(&cat);

  auto run = [&](double lo, double hi) {
    MalProgram prog = BuildSelectPlan(lo, hi);
    OptContext ctx;
    ctx.catalog = &cat;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
    ASSERT_TRUE(interp.Run(prog).ok());
  };

  // Warm-up: fragment the column so the cover is a non-trivial segment set.
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    const double lo = rng.NextUniform(0.0, 330.0);
    run(lo, lo + 20.0);
  }
  auto* segcol = cat.GetSegmentedOrNull("P", "ra");
  ASSERT_NE(segcol, nullptr);
  ASSERT_GT(segcol->strategy()->Segments().size(), 1u);

  const double lo = 120.0, hi = 140.0;
  const auto cover = segcol->CoverSegments(lo, hi);  // pre-query cover
  uint64_t cover_bytes = 0;
  for (const SegmentInfo& s : cover) cover_bytes += s.count * sizeof(OidValue);
  ASSERT_GT(cover_bytes, 0u);

  const IoStats before = space.stats();
  run(lo, hi);
  const IoStats delta = space.stats() - before;

  EXPECT_EQ(delta.mem_read_bytes, cover_bytes);  // exactly 1x, not 2x
  EXPECT_EQ(interp.last_execution().read_bytes, cover_bytes);
  EXPECT_EQ(interp.last_execution().segments_scanned, cover.size());
  EXPECT_EQ(delta.segments_scanned, cover.size());
}

}  // namespace
}  // namespace socs
