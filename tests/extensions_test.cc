// Tests for the reorganization variants beyond the two headline strategies:
// post-processing (deferred, batched, equi-depth splits -- paper section 3.3
// alternative 1), segment merging (sections 3.1/8), and replica storage
// budgets (section 8).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/deferred_segmentation.h"
#include "core/gaussian_dice.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

std::unique_ptr<SegmentationModel> ApmModel() {
  return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
}

// --- DeferredSegmentation (post-processing) ---------------------------------

TEST(DeferredSegmentationTest, NoReorganizationBeforeBatch) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 1);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 10;
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 1000000), ApmModel(),
                                      &space, opts);
  for (int i = 0; i < 9; ++i) {
    auto ex = strat.RunRange(ValueRange(100000.0 + i * 50000, 150000.0 + i * 50000));
    EXPECT_EQ(ex.write_bytes, 0u) << "query " << i;
    EXPECT_EQ(ex.splits, 0u);
  }
  EXPECT_EQ(strat.Segments().size(), 1u);  // still one segment
  EXPECT_GT(strat.pending_marks(), 0u);    // but marked for splitting
}

TEST(DeferredSegmentationTest, BatchReorganizesMarkedSegments) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 2);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 5;
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 1000000), ApmModel(),
                                      &space, opts);
  QueryExecution last;
  for (int i = 0; i < 5; ++i) {
    last = strat.RunRange(ValueRange(200000, 300000));
  }
  EXPECT_GT(last.splits, 0u);       // the 5th query triggered the batch
  EXPECT_GT(last.write_bytes, 0u);  // which materialized sub-segments
  EXPECT_GT(strat.Segments().size(), 1u);
  EXPECT_EQ(strat.pending_marks(), 0u);
  EXPECT_TRUE(strat.index().Validate().ok());
}

TEST(DeferredSegmentationTest, EquiDepthPiecesAreBalanced) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 3);  // 400KB
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1;       // reorganize after every query
  opts.target_bytes = 8 * kKiB;  // ~50 equal pieces
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 1000000), ApmModel(),
                                      &space, opts);
  strat.RunRange(ValueRange(400000, 600000));
  const auto segs = strat.Segments();
  ASSERT_GT(segs.size(), 10u);
  uint64_t mn = UINT64_MAX, mx = 0;
  for (const auto& s : segs) {
    mn = std::min(mn, s.count);
    mx = std::max(mx, s.count);
  }
  // Equi-depth: the largest piece is within 2x the smallest.
  EXPECT_LT(mx, 2 * mn);
}

TEST(DeferredSegmentationTest, ResultsMatchBruteForce) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 4);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 7;
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 100000), ApmModel(),
                                      &space, opts);
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(100, 25000));
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
    ASSERT_TRUE(strat.index().Validate().ok());
  }
}

TEST(DeferredSegmentationTest, DelayedBenefitVersusEager) {
  // Paper section 3.3: "the potential delay may cause subsequent queries on
  // the same segment to miss potential benefits."
  auto data = MakeUniformIntColumn(100000, 1000000, 6);
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> eager(data, ValueRange(0, 1000000), ApmModel(),
                                      &s1);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 64;
  DeferredSegmentation<int32_t> deferred(data, ValueRange(0, 1000000),
                                         ApmModel(), &s2, opts);
  const ValueRange q(450000, 550000);
  uint64_t eager_reads = 0, deferred_reads = 0;
  for (int i = 0; i < 10; ++i) {
    eager_reads += eager.RunRange(q).read_bytes;
    deferred_reads += deferred.RunRange(q).read_bytes;
  }
  // Eager splits on the first query; deferred keeps scanning 400KB.
  EXPECT_LT(eager_reads, deferred_reads / 2);
}

TEST(DeferredSegmentationTest, ExplicitReorganizeDrainsMarks) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 7);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1000;  // never triggers on its own
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 1000000), ApmModel(),
                                      &space, opts);
  strat.RunRange(ValueRange(100000, 200000));
  ASSERT_GT(strat.pending_marks(), 0u);
  QueryExecution batch = strat.FlushBatch();  // e.g. at an idle point
  EXPECT_GT(batch.splits, 0u);
  EXPECT_EQ(strat.pending_marks(), 0u);
}

// --- Merging -----------------------------------------------------------------

TEST(MergingTest, GluesFragmentsOnSkewedLoad) {
  // GD's worst case (paper section 6.2): near-identical skewed queries chop
  // tiny pieces. With merging enabled the fragments are glued back.
  auto data = MakeUniformIntColumn(100000, 1000000, 8);
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> plain(data, ValueRange(0, 1000000),
                                      std::make_unique<GaussianDice>(9), &s1);
  AdaptiveSegmentation<int32_t>::Options opts;
  opts.merge_small_segments = true;
  opts.merge_threshold_bytes = 3 * kKiB;
  AdaptiveSegmentation<int32_t> merging(data, ValueRange(0, 1000000),
                                        std::make_unique<GaussianDice>(9), &s2,
                                        opts);
  // Hot spot: queries shift by tiny deltas, carving small pieces.
  Rng rng(10);
  uint64_t merges = 0;
  for (int i = 0; i < 600; ++i) {
    const double lo = 500000 + rng.NextUniform(-2000, 2000);
    const ValueRange q(lo, lo + 10000);
    plain.RunRange(q);
    merges += merging.RunRange(q).merges;
  }
  EXPECT_GT(merges, 0u);
  // Count tiny segments (< 1.5KB) in the hot neighbourhood.
  auto tiny = [](const AdaptiveSegmentation<int32_t>& s) {
    size_t n = 0;
    for (const auto& seg : s.Segments()) {
      if (seg.range.Overlaps(ValueRange(490000, 520000)) &&
          seg.count * sizeof(int32_t) < 1536) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_LE(tiny(merging), tiny(plain));
  EXPECT_LT(merging.Segments().size(), plain.Segments().size() + 1);
}

TEST(MergingTest, CorrectnessPreservedWithMerging) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 11);
  AdaptiveSegmentation<int32_t>::Options opts;
  opts.merge_small_segments = true;
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000),
                                      std::make_unique<GaussianDice>(12), &space,
                                      opts);
  Rng rng(13);
  for (int i = 0; i < 150; ++i) {
    const double lo = rng.NextUniform(0, 95000);
    const ValueRange q(lo, lo + rng.NextUniform(50, 5000));
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
    ASSERT_TRUE(strat.index().Validate().ok());
    ASSERT_EQ(strat.index().TotalCount(), 20000u);
  }
}

TEST(MergingTest, ThresholdDefaultsFromModel) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(50000, 500000, 14);
  AdaptiveSegmentation<int32_t>::Options opts;
  opts.merge_small_segments = true;  // threshold <- Mmin
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 500000), ApmModel(),
                                      &space, opts);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.01, 15);
  for (int i = 0; i < 500; ++i) strat.RunRange(gen.Next().range);
  // No pair of adjacent segments both under Mmin/2 should persist in heavily
  // queried areas; at minimum the invariants hold and nothing crashed.
  EXPECT_TRUE(strat.index().Validate().ok());
}

// --- Replica storage budget ---------------------------------------------------

TEST(ReplicaBudgetTest, BudgetBoundsStorage) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 16);  // 400KB
  AdaptiveReplication<int32_t>::Options opts;
  opts.storage_budget_bytes = 500 * kKiB;  // column + 100KB of replicas
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000), ApmModel(),
                                     &space, opts);
  UniformRangeGenerator gen(ValueRange(0, 1000000), 0.1, 17);
  uint64_t evictions = 0;
  for (int i = 0; i < 300; ++i) {
    auto ex = strat.RunRange(gen.Next().range);
    evictions += ex.replicas_evicted;
    ASSERT_LE(strat.Footprint().materialized_bytes, opts.storage_budget_bytes)
        << "query " << i;
  }
  EXPECT_GT(evictions, 0u);
  EXPECT_TRUE(strat.tree().Validate().ok());
}

TEST(ReplicaBudgetTest, CorrectnessUnderPressure) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 18);  // 80KB
  AdaptiveReplication<int32_t>::Options opts;
  opts.storage_budget_bytes = 100 * kKiB;
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 100000), ApmModel(),
                                     &space, opts);
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    const double lo = rng.NextUniform(0, 90000);
    const ValueRange q(lo, lo + rng.NextUniform(500, 20000));
    std::vector<int32_t> result;
    strat.RunRange(q, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(data, q)) << "query " << i;
    ASSERT_TRUE(strat.tree().Validate().ok());
  }
}

TEST(ReplicaBudgetTest, UnlimitedByDefault) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(50000, 500000, 20);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 500000), ApmModel(),
                                     &space);
  UniformRangeGenerator gen(ValueRange(0, 500000), 0.1, 21);
  uint64_t evictions = 0;
  for (int i = 0; i < 100; ++i) evictions += strat.RunRange(gen.Next().range).replicas_evicted;
  EXPECT_EQ(evictions, 0u);
}

TEST(ReplicaBudgetTest, EvictionPrefersLeastRecentlyUsed) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(100000, 1000000, 22);  // 400KB
  AdaptiveReplication<int32_t>::Options opts;
  opts.storage_budget_bytes = 480 * kKiB;
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 1000000), ApmModel(),
                                     &space, opts);
  // Create two replicas; keep the first hot, then overflow the budget.
  strat.RunRange(ValueRange(100000, 200000));  // replica A (~40KB)
  strat.RunRange(ValueRange(700000, 800000));  // replica B (~40KB)
  for (int i = 0; i < 3; ++i) strat.RunRange(ValueRange(100000, 200000));  // A hot
  // Push over budget: another replica elsewhere.
  auto ex = strat.RunRange(ValueRange(400000, 500000));
  EXPECT_GT(ex.replicas_evicted, 0u);
  // A must still be materialized (hot); B was the LRU victim.
  bool a_mat = false, b_mat = false;
  for (const auto& s : strat.Segments()) {
    if (s.range == ValueRange(100000, 200000)) a_mat = true;
    if (s.range == ValueRange(700000, 800000)) b_mat = true;
  }
  EXPECT_TRUE(a_mat);
  EXPECT_FALSE(b_mat);
}

}  // namespace
}  // namespace socs
