// Cross-module integration tests: the full simulation pipeline (paper
// section 6.1 in miniature) and the SkyServer-style cost-model runs
// (section 6.2 in miniature).
#include <gtest/gtest.h>

#include <memory>

#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/gaussian_dice.h"
#include "core/non_segmented.h"
#include "core/run_stats.h"
#include "test_util.h"
#include "workload/range_generator.h"
#include "workload/skyserver.h"

namespace socs {
namespace {

using testing::BruteForce;
using testing::SortedValues;

struct MiniRun {
  RunRecorder rec;
  uint64_t total_results = 0;
};

template <typename Strategy>
MiniRun RunAll(Strategy& strat, const Workload& w) {
  MiniRun r;
  for (const RangeQuery& q : w) {
    auto ex = strat.RunRange(q.range);
    r.rec.Record(ex, strat.Footprint());
    r.total_results += ex.result_count;
  }
  return r;
}

class SimulationPipeline : public ::testing::Test {
 protected:
  static constexpr size_t kValues = 50000;
  static constexpr int32_t kDomain = 500000;

  void SetUp() override { data_ = MakeUniformIntColumn(kValues, kDomain, 2008); }

  std::unique_ptr<SegmentationModel> Gd() {
    return std::make_unique<GaussianDice>(99);
  }
  std::unique_ptr<SegmentationModel> ApmModel() {
    return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
  }

  std::vector<int32_t> data_;
};

TEST_F(SimulationPipeline, AllStrategiesAgreeOnEveryQuery) {
  SegmentSpace s0, s1, s2, s3, s4;
  NonSegmented<int32_t> base(data_, ValueRange(0, kDomain), &s0);
  AdaptiveSegmentation<int32_t> gd_segm(data_, ValueRange(0, kDomain), Gd(), &s1);
  AdaptiveSegmentation<int32_t> apm_segm(data_, ValueRange(0, kDomain),
                                         ApmModel(), &s2);
  AdaptiveReplication<int32_t> gd_repl(data_, ValueRange(0, kDomain),
                                       std::make_unique<GaussianDice>(7), &s3);
  AdaptiveReplication<int32_t> apm_repl(data_, ValueRange(0, kDomain),
                                        ApmModel(), &s4);
  UniformRangeGenerator gen(ValueRange(0, kDomain), 0.1, 17);
  for (int i = 0; i < 120; ++i) {
    const ValueRange q = gen.Next().range;
    const uint64_t expect = base.RunRange(q).result_count;
    ASSERT_EQ(gd_segm.RunRange(q).result_count, expect) << i;
    ASSERT_EQ(apm_segm.RunRange(q).result_count, expect) << i;
    ASSERT_EQ(gd_repl.RunRange(q).result_count, expect) << i;
    ASSERT_EQ(apm_repl.RunRange(q).result_count, expect) << i;
  }
}

TEST_F(SimulationPipeline, ReplicationWritesLessSegmentationReadsLess) {
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> segm(data_, ValueRange(0, kDomain), ApmModel(),
                                     &s1);
  AdaptiveReplication<int32_t> repl(data_, ValueRange(0, kDomain), ApmModel(),
                                    &s2);
  UniformRangeGenerator g1(ValueRange(0, kDomain), 0.1, 23);
  UniformRangeGenerator g2(ValueRange(0, kDomain), 0.1, 23);
  Workload w1 = g1.Generate(400), w2 = g2.Generate(400);
  MiniRun r1 = RunAll(segm, w1);
  MiniRun r2 = RunAll(repl, w2);
  // Paper Figs. 5-7: replication writes less; segmentation converges to
  // reads at least as small.
  EXPECT_LT(r2.rec.CumulativeWrites().back(), r1.rec.CumulativeWrites().back());
  const auto reads1 = r1.rec.reads();
  const auto reads2 = r2.rec.reads();
  double tail1 = 0, tail2 = 0;
  for (size_t i = 350; i < 400; ++i) {
    tail1 += reads1[i];
    tail2 += reads2[i];
  }
  EXPECT_LE(tail1, tail2 * 1.5);  // both converge to the selection size
}

TEST_F(SimulationPipeline, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    SegmentSpace space;
    AdaptiveSegmentation<int32_t> strat(data_, ValueRange(0, kDomain),
                                        std::make_unique<GaussianDice>(31),
                                        &space);
    UniformRangeGenerator gen(ValueRange(0, kDomain), 0.05, 37);
    uint64_t sig = 0;
    for (int i = 0; i < 200; ++i) {
      auto ex = strat.RunRange(gen.Next().range);
      sig = sig * 1315423911u + ex.read_bytes + ex.write_bytes + ex.result_count;
    }
    return sig;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(SimulationPipeline, ZipfWorkloadKeepsReorganizingLonger) {
  // Paper Fig. 6: with skew, untouched areas are hit late, so reorganization
  // continues deep into the run.
  SegmentSpace s1, s2;
  AdaptiveSegmentation<int32_t> uni_strat(data_, ValueRange(0, kDomain),
                                          ApmModel(), &s1);
  AdaptiveSegmentation<int32_t> zipf_strat(data_, ValueRange(0, kDomain),
                                           ApmModel(), &s2);
  UniformRangeGenerator ugen(ValueRange(0, kDomain), 0.001, 41);
  ZipfRangeGenerator zgen(ValueRange(0, kDomain), 0.001, 41, 1.0, 10000);
  int uni_last_split = -1, zipf_last_split = -1;
  uint64_t zipf_late_splits = 0;
  for (int i = 0; i < 4000; ++i) {
    if (uni_strat.RunRange(ugen.Next().range).splits > 0) uni_last_split = i;
    const uint64_t zs = zipf_strat.RunRange(zgen.Next().range).splits;
    if (zs > 0) {
      zipf_last_split = i;
      if (i >= 200) zipf_late_splits += zs;
    }
  }
  // Uniform placement converges quickly; skewed placement still reorganizes
  // long after, when cold areas are hit for the first time.
  EXPECT_LT(uni_last_split, 200);
  EXPECT_GT(zipf_last_split, uni_last_split);
  EXPECT_GT(zipf_late_splits, 0u);
}

TEST(SkyServerPipeline, AdaptiveBeatsNoSegmAfterWarmup) {
  SkyServerConfig cfg;
  cfg.num_objects = 2'000'000;  // ~8MB scaled-down column
  auto ra = MakeRaColumn(cfg);
  SegmentSpace s0, s1;
  NonSegmented<float> nosegm(ra, cfg.footprint, &s0);
  AdaptiveSegmentation<float> apm(ra, cfg.footprint,
                                  std::make_unique<Apm>(64 * kKiB, 512 * kKiB),
                                  &s1);
  Workload w = MakeRandomWorkload(cfg, 100);
  double nosegm_total = 0, apm_total = 0, apm_last20 = 0, nosegm_last20 = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    const double t0 = nosegm.RunRange(w[i].range).TotalSeconds();
    const double t1 = apm.RunRange(w[i].range).TotalSeconds();
    nosegm_total += t0;
    apm_total += t1;
    if (i >= 80) {
      nosegm_last20 += t0;
      apm_last20 += t1;
    }
  }
  // After warm-up the adaptive scheme is far faster per query...
  EXPECT_LT(apm_last20, nosegm_last20 / 4);
  // ...and has amortized its reorganization within 100 queries.
  EXPECT_LT(apm_total, nosegm_total);
}

TEST(SkyServerPipeline, SkewedWorkloadAmortizesFaster) {
  SkyServerConfig cfg;
  cfg.num_objects = 2'000'000;
  auto ra = MakeRaColumn(cfg);
  SegmentSpace s1, s2;
  AdaptiveSegmentation<float> random_run(
      ra, cfg.footprint, std::make_unique<Apm>(64 * kKiB, 512 * kKiB), &s1);
  AdaptiveSegmentation<float> skew_run(
      ra, cfg.footprint, std::make_unique<Apm>(64 * kKiB, 512 * kKiB), &s2);
  double random_adapt = 0, skew_adapt = 0;
  for (const auto& q : MakeRandomWorkload(cfg, 100)) {
    random_adapt += random_run.RunRange(q.range).adaptation_seconds;
  }
  for (const auto& q : MakeSkewedWorkload(cfg, 100)) {
    skew_adapt += skew_run.RunRange(q.range).adaptation_seconds;
  }
  // Paper section 6.2: reorganization for the skewed load affects a very
  // limited area, so its total adaptation overhead is smaller.
  EXPECT_LT(skew_adapt, random_adapt);
}

TEST(SkyServerPipeline, ResultsMatchOracleOnFloats) {
  SkyServerConfig cfg;
  cfg.num_objects = 300000;
  auto ra = MakeRaColumn(cfg);
  SegmentSpace space;
  AdaptiveSegmentation<float> strat(ra, cfg.footprint,
                                    std::make_unique<Apm>(16 * kKiB, 64 * kKiB),
                                    &space);
  for (const auto& q : MakeChangingWorkload(cfg, 60)) {
    std::vector<float> result;
    strat.RunRange(q.range, &result);
    ASSERT_EQ(SortedValues(result), BruteForce(ra, q.range));
  }
}

TEST(CostModelPipeline, ConstrainedPoolMakesColdScansExpensive) {
  // With a pool smaller than the column, the first scans pay disk bandwidth.
  auto data = MakeUniformIntColumn(100000, 1000000, 5);  // 400KB
  SegmentSpace small_pool(CostParams{}, 100 * kKiB);
  SegmentSpace big_pool(CostParams{}, 0);
  NonSegmented<int32_t> cold(data, ValueRange(0, 1000000), &small_pool);
  NonSegmented<int32_t> warm(data, ValueRange(0, 1000000), &big_pool);
  const double t_cold = cold.RunRange(ValueRange(0, 1000)).selection_seconds;
  const double t_warm = warm.RunRange(ValueRange(0, 1000)).selection_seconds;
  EXPECT_GT(t_cold, 3 * t_warm);
  EXPECT_GT(small_pool.stats().disk_read_bytes, 0u);
  EXPECT_EQ(big_pool.stats().disk_read_bytes, 0u);
}

TEST(RunRecorderTest, DerivedSeries) {
  RunRecorder rec;
  QueryExecution e1;
  e1.read_bytes = 100;
  e1.write_bytes = 10;
  e1.selection_seconds = 0.5;
  e1.adaptation_seconds = 0.5;
  QueryExecution e2;
  e2.read_bytes = 50;
  e2.write_bytes = 0;
  e2.selection_seconds = 0.25;
  StorageFootprint fp{1000, 3, 64};
  rec.Record(e1, fp);
  rec.Record(e2, fp);
  EXPECT_EQ(rec.NumQueries(), 2u);
  EXPECT_DOUBLE_EQ(rec.CumulativeWrites().back(), 10.0);
  EXPECT_DOUBLE_EQ(rec.CumulativeTotalSeconds().back(), 1.25);
  EXPECT_DOUBLE_EQ(rec.AverageReadBytes(), 75.0);
  EXPECT_DOUBLE_EQ(rec.AverageSelectionSeconds(), 0.375);
  EXPECT_DOUBLE_EQ(rec.AverageAdaptationSeconds(), 0.25);
}

}  // namespace
}  // namespace socs
