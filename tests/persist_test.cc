// Unit tests for the durable segment store (src/persist): the byte codecs
// and CRC framing, size-class blob files, the object-table delta log,
// checkpoint commit + recovery (including fallback to an older generation
// and torn-tail truncation), corruption detection, and SaveState /
// RestoreStrategy roundtrips for every strategy kind.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "core/strategy_restore.h"
#include "persist/format.h"
#include "persist/image.h"
#include "persist/object_table.h"
#include "persist/segment_files.h"
#include "persist/store.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs::persist {
namespace {

using socs::MakeUniformIntColumn;
using socs::UniformRangeGenerator;
using socs::testing::BruteForce;
using socs::testing::SortedValues;

std::string TempDirFor(const char* name) {
  const std::string dir = ::testing::TempDir() + "/socs_persist_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

StatusOr<std::unique_ptr<PersistentStore>> OpenStore(const std::string& dir) {
  PersistentStore::Options opts;
  opts.dir = dir;
  return PersistentStore::Open(std::move(opts));
}

std::vector<std::byte> Payload(size_t n, uint8_t seed) {
  std::vector<std::byte> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed + i * 31) & 0xFF);
  }
  return out;
}

/// Flips one byte of `path` at `offset` (negative = from the end).
void FlipByteAt(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  if (offset < 0) {
    f.seekg(0, std::ios::end);
    offset += static_cast<int64_t>(f.tellg());
  }
  f.seekg(offset);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(offset);
  f.write(&c, 1);
}

void AppendGarbage(const std::string& path, size_t n) {
  std::ofstream f(path, std::ios::app | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  for (size_t i = 0; i < n; ++i) f.put(static_cast<char>(0xEE));
}

// --- format ------------------------------------------------------------------

TEST(PersistFormatTest, Crc32MatchesKnownVector) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::byte> bytes;
  for (const char* p = s; *p; ++p) bytes.push_back(static_cast<std::byte>(*p));
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(PersistFormatTest, WriterReaderRoundtrip) {
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.Double(3.14159);
  w.String("hello");
  const std::vector<std::byte> bytes = w.Take();

  ByteReader r(bytes);
  auto u8 = r.U8();
  auto u32 = r.U32();
  auto u64 = r.U64();
  auto d = r.Double();
  ASSERT_TRUE(u8.ok() && u32.ok() && u64.ok() && d.ok());
  EXPECT_EQ(*u8, 0xAB);
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  EXPECT_EQ(*u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(*d, 3.14159);
  auto s = r.String();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "hello");
  EXPECT_TRUE(r.Done());
  // Reading past the end is DataLoss, not UB.
  auto past = r.U8();
  EXPECT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kDataLoss);
}

TEST(PersistFormatTest, TruncatedStringIsDataLoss) {
  ByteWriter w;
  w.String("truncate me");
  std::vector<std::byte> bytes = w.Take();
  bytes.resize(bytes.size() - 3);
  ByteReader r(bytes);
  auto s = r.String();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kDataLoss);
}

// --- segment files -----------------------------------------------------------

TEST(SegmentFilesTest, BlobRoundtripAcrossClasses) {
  const std::string dir = TempDirFor("blobs");
  auto files = SegmentFileSet::Open(dir);
  ASSERT_TRUE(files.ok()) << files.status().ToString();

  const auto small = Payload(100, 1);
  const auto large = Payload(2 * kMiB, 2);
  auto a1 = files->Append(small);
  auto a2 = files->Append(large);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  // Size classes keep small churn and bulk blobs in different files.
  EXPECT_NE(a1->file_class, a2->file_class);
  EXPECT_EQ(a1->length, small.size());

  auto r1 = files->Read(*a1);
  auto r2 = files->Read(*a2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, small);
  EXPECT_EQ(*r2, large);
}

TEST(SegmentFilesTest, CorruptedPayloadFailsCrc) {
  const std::string dir = TempDirFor("blob_corrupt");
  auto files = SegmentFileSet::Open(dir);
  ASSERT_TRUE(files.ok());
  auto addr = files->Append(Payload(512, 3));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(files->Sync().ok());
  FlipByteAt(dir + "/segments_cls0.dat", -1);  // last payload byte
  auto read = files->Read(*addr);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(SegmentFilesTest, OversizedPayloadRejectedAtAppend) {
  const std::string dir = TempDirFor("blob_oversize");
  auto files = SegmentFileSet::Open(dir);
  ASSERT_TRUE(files.ok());
  // The record header stores lengths as u32; anything larger must be
  // rejected up front instead of being written with a truncated header.
  // The size check runs before any payload byte is touched, so a span with
  // an inflated extent exercises it without a 4 GiB allocation.
  std::byte dummy{};
  std::span<const std::byte> huge(&dummy, size_t{1} << 32);
  auto addr = files->Append(huge);
  EXPECT_FALSE(addr.ok());
  EXPECT_EQ(addr.status().code(), StatusCode::kInvalidArgument);
}

// --- object table + delta log ------------------------------------------------

TEST(ObjectTableTest, SerializeParseRoundtrip) {
  ObjectTable table;
  table[3] = ObjectEntry{BlobAddress{0, 16, 100}, SegmentCodec::kRaw, 100, 7};
  table[9] = ObjectEntry{BlobAddress{2, 0, 4096}, SegmentCodec::kRle, 9000, 8};
  const auto bytes = SerializeObjectTable(table);
  auto parsed = ParseObjectTable(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, table);

  // Trailing garbage is DataLoss, not silently ignored.
  auto longer = bytes;
  longer.push_back(std::byte{1});
  EXPECT_EQ(ParseObjectTable(longer).status().code(), StatusCode::kDataLoss);
}

TEST(DeltaLogTest, ReplayRoundtripAndTornTail) {
  const std::string dir = TempDirFor("delta");
  const std::string path = dir + "/delta.log";
  const ObjectEntry e1{BlobAddress{0, 16, 64}, SegmentCodec::kRaw, 64, 11};
  const ObjectEntry e2{BlobAddress{1, 0, 8192}, SegmentCodec::kDeltaFor, 12000,
                       22};
  {
    auto log = DeltaLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE(log->AppendPut(5, e1, nullptr).ok());
    ASSERT_TRUE(log->AppendPut(6, e2, nullptr).ok());
    ASSERT_TRUE(log->AppendDel(5, nullptr).ok());
    ASSERT_TRUE(log->Sync().ok());
  }
  uint64_t clean_bytes = 0;
  {
    auto log = DeltaLog::Open(path);
    ASSERT_TRUE(log.ok());
    auto replay = log->Replay();
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay->clean_tail);
    ASSERT_EQ(replay->records.size(), 3u);
    EXPECT_EQ(replay->records[0].op, DeltaLog::kOpPut);
    EXPECT_EQ(replay->records[0].id, 5u);
    EXPECT_EQ(replay->records[0].entry, e1);
    EXPECT_EQ(replay->records[1].entry, e2);
    EXPECT_EQ(replay->records[2].op, DeltaLog::kOpDel);
    EXPECT_EQ(replay->records[2].id, 5u);
    clean_bytes = replay->valid_bytes;
  }
  // A torn record at the tail (half-written before a crash) is detected,
  // the valid prefix replays, and TruncateTo removes the garbage.
  AppendGarbage(path, 13);
  {
    auto log = DeltaLog::Open(path);
    ASSERT_TRUE(log.ok());
    auto replay = log->Replay();
    ASSERT_TRUE(replay.ok());
    EXPECT_FALSE(replay->clean_tail);
    EXPECT_EQ(replay->records.size(), 3u);
    EXPECT_EQ(replay->valid_bytes, clean_bytes);
    ASSERT_TRUE(log->TruncateTo(replay->valid_bytes).ok());
    auto again = log->Replay();
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->clean_tail);
    EXPECT_EQ(again->records.size(), 3u);
  }
}

// --- store: init, replay, checkpoint, fallbacks ------------------------------

TEST(PersistentStoreTest, FreshDirInitializesGenerationZero) {
  const std::string dir = TempDirFor("fresh");
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->recovery().generation, 0u);
  EXPECT_TRUE((*store)->image().tables.empty());
  EXPECT_TRUE((*store)->LiveSegments().empty());
  EXPECT_TRUE((*store)->health().ok());
}

TEST(PersistentStoreTest, DeltaLogReplaysWithoutCheckpoint) {
  const std::string dir = TempDirFor("replay");
  const auto p1 = Payload(777, 4);
  const auto p2 = Payload(3000, 5);
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    (*store)->PersistSegment(1, p1, SegmentCodec::kRaw, 777);
    (*store)->PersistSegment(2, p2, SegmentCodec::kRle, 6000);
    (*store)->ForgetSegment(1);
    ASSERT_TRUE((*store)->health().ok()) << (*store)->health().ToString();
  }
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->recovery().delta_records, 3u);
  EXPECT_EQ((*store)->LiveSegments(), std::vector<SegmentId>{2});
  auto blob = (*store)->ReadSegment(2);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->physical, p2);
  EXPECT_EQ(blob->codec, SegmentCodec::kRle);
  EXPECT_EQ(blob->logical_bytes, 6000u);
}

DatabaseImage TinyImage() {
  DatabaseImage db;
  TableImage t;
  t.name = "T";
  t.rows = 3;
  ColumnImage c;
  c.name = "x";
  c.segmented = false;
  c.sql_type = 2;
  c.plain_type = 2;
  c.plain_payload = Payload(12, 9);
  t.columns.push_back(c);
  db.tables.push_back(t);
  return db;
}

TEST(PersistentStoreTest, CheckpointCommitsAndReopens) {
  const std::string dir = TempDirFor("ckpt");
  const auto p1 = Payload(500, 6);
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    (*store)->PersistSegment(7, p1, SegmentCodec::kRaw, 500);
    auto gen = (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture());
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    EXPECT_EQ(*gen, 1u);
    EXPECT_EQ((*store)->stats().delta_records_since_checkpoint, 0u);
  }
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->recovery().generation, 1u);
  EXPECT_EQ((*store)->recovery().delta_records, 0u);
  EXPECT_FALSE((*store)->recovery().fell_back);
  ASSERT_EQ((*store)->image().tables.size(), 1u);
  EXPECT_EQ((*store)->image().tables[0].name, "T");
  EXPECT_EQ((*store)->image().tables[0].rows, 3u);
  ASSERT_EQ((*store)->image().tables[0].columns.size(), 1u);
  EXPECT_EQ((*store)->image().tables[0].columns[0].plain_payload,
            Payload(12, 9));
  auto blob = (*store)->ReadSegment(7);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->physical, p1);
}

TEST(PersistentStoreTest, SegmentFreedDuringCaptureStaysReadable) {
  // The capture/serialize race: a segment the image references is freed
  // between BeginCapture and WriteCheckpoint (a reorganization ran during
  // capture). The committed checkpoint must keep its blob readable, and
  // Rebase must be able to resurrect it.
  const std::string dir = TempDirFor("capture_race");
  const auto p = Payload(900, 7);
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    (*store)->PersistSegment(11, p, SegmentCodec::kRaw, 900);
    const uint64_t seq = (*store)->BeginCapture();
    (*store)->ForgetSegment(11);  // freed mid-capture
    auto gen = (*store)->WriteCheckpoint(TinyImage(), seq);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  }
  {
    // The committed checkpoint retains the entry (the image being captured
    // may reference it): readable after reopen, and Rebase keeps it when the
    // restored image does reference it.
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->HasSegment(11));
    auto blob = (*store)->ReadSegment(11);
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();
    EXPECT_EQ(blob->physical, p);
    ASSERT_TRUE((*store)->Rebase({11}).ok());
    EXPECT_EQ((*store)->LiveSegments(), std::vector<SegmentId>{11});
  }
  {
    // ...and drops it (bytes become dead extents) when the image does not.
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Rebase({}).ok());
    EXPECT_TRUE((*store)->LiveSegments().empty());
    EXPECT_FALSE((*store)->HasSegment(11));
  }
}

TEST(PersistentStoreTest, CorruptBlobIsDataLossNotWrongBytes) {
  const std::string dir = TempDirFor("bad_blob");
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  (*store)->PersistSegment(4, Payload(256, 8), SegmentCodec::kRaw, 256);
  FlipByteAt(dir + "/segments_cls0.dat", -1);
  auto blob = (*store)->ReadSegment(4);
  EXPECT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kDataLoss);
}

TEST(PersistentStoreTest, TruncatedDeltaTailRecoversCleanly) {
  const std::string dir = TempDirFor("torn_delta");
  const auto p = Payload(128, 10);
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    (*store)->PersistSegment(3, p, SegmentCodec::kRaw, 128);
  }
  AppendGarbage(dir + "/delta_0.log", 9);  // torn record at the tail
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().delta_tail_truncated);
  EXPECT_EQ((*store)->recovery().delta_records, 1u);
  auto blob = (*store)->ReadSegment(3);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->physical, p);
  // The tail was truncated away: appends after recovery start at a clean
  // boundary and a further reopen replays every record.
  (*store)->PersistSegment(8, Payload(64, 11), SegmentCodec::kRaw, 64);
  ASSERT_TRUE((*store)->health().ok());
  store->reset();
  auto again = OpenStore(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->recovery().delta_tail_truncated);
  EXPECT_EQ((*again)->recovery().delta_records, 2u);
}

TEST(PersistentStoreTest, CorruptSuperblockFallsBackToNewestCheckpoint) {
  const std::string dir = TempDirFor("bad_super");
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    (*store)->PersistSegment(1, Payload(100, 12), SegmentCodec::kRaw, 100);
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture()).ok());
  }
  FlipByteAt(dir + "/superblock", 8);
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().fell_back);
  EXPECT_EQ((*store)->recovery().generation, 1u);
  EXPECT_TRUE((*store)->ReadSegment(1).ok());
}

TEST(PersistentStoreTest, CorruptCheckpointFallsBackToPreviousGeneration) {
  const std::string dir = TempDirFor("bad_ckpt");
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    (*store)->PersistSegment(1, Payload(100, 13), SegmentCodec::kRaw, 100);
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture()).ok());
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture()).ok());
  }
  FlipByteAt(dir + "/checkpoint_2.ckpt", 64);
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().fell_back);
  EXPECT_EQ((*store)->recovery().generation, 1u);
  EXPECT_TRUE((*store)->ReadSegment(1).ok());
}

/// Opens `dir`, persists segment 1 with `payload`, and commits checkpoints
/// until the store sits at generation 6 -- past any fixed low-generation
/// window, with retention having deleted generations 0..4.
void AdvanceToGenerationSix(const std::string& dir,
                            const std::vector<std::byte>& payload) {
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  (*store)->PersistSegment(1, payload, SegmentCodec::kRaw, payload.size());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture()).ok());
  }
  ASSERT_EQ((*store)->stats().generation, 6u);
  ASSERT_FALSE(std::filesystem::exists(dir + "/checkpoint_4.ckpt"));
}

TEST(PersistentStoreTest, HighGenerationSuperblockLossFindsNewestCheckpoint) {
  // Retention keeps only {G-1, G}, so at generation 6 nothing exists below
  // generation 5. A corrupt superblock must still lead the directory scan to
  // the surviving checkpoints -- never to "fresh directory" re-initialization
  // over a populated store.
  const std::string dir = TempDirFor("high_gen_super");
  const auto p = Payload(200, 14);
  AdvanceToGenerationSix(dir, p);
  FlipByteAt(dir + "/superblock", 8);
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().fell_back);
  EXPECT_EQ((*store)->recovery().generation, 6u);
  auto blob = (*store)->ReadSegment(1);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->physical, p);
}

TEST(PersistentStoreTest, HighGenerationTornCheckpointFallsBackOne) {
  // Readable superblock pointing at a torn checkpoint G: recovery must fall
  // back to G-1 whatever G is, not report DataLoss because no checkpoint
  // lives at a small fixed generation.
  const std::string dir = TempDirFor("high_gen_ckpt");
  const auto p = Payload(200, 15);
  AdvanceToGenerationSix(dir, p);
  FlipByteAt(dir + "/checkpoint_6.ckpt", 64);
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().fell_back);
  EXPECT_EQ((*store)->recovery().generation, 5u);
  auto blob = (*store)->ReadSegment(1);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob->physical, p);
}

TEST(PersistentStoreTest, AllRootsCorruptRefusesSilently) {
  // Every checkpoint unreadable: Open must refuse with DataLoss rather than
  // silently reinitializing an empty store over existing data.
  const std::string dir = TempDirFor("all_bad");
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture()).ok());
  }
  FlipByteAt(dir + "/superblock", 8);
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("checkpoint_", 0) == 0) FlipByteAt(e.path().string(), 40);
  }
  auto store = OpenStore(dir);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
}

TEST(PersistentStoreTest, RetentionKeepsTwoGenerations) {
  const std::string dir = TempDirFor("retention");
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*store)->WriteCheckpoint(TinyImage(), (*store)->BeginCapture()).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(dir + "/checkpoint_2.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/checkpoint_3.ckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/checkpoint_4.ckpt"));
}

// --- SaveState / RestoreStrategy roundtrips for every strategy kind ----------

/// Drives `strat` through a workload, snapshots it, restores the snapshot
/// over the same space (its segments are still live there), and checks that
/// the restored strategy has identical geometry and answers queries exactly.
void VerifyStateRoundtrip(AccessStrategy<int32_t>& strat,
                          const std::vector<int32_t>& data,
                          const ValueRange& domain, SegmentSpace* space,
                          int seed, int warmup_queries = 40) {
  UniformRangeGenerator gen(domain, 0.05, seed);
  for (int i = 0; i < warmup_queries; ++i) strat.RunRange(gen.Next().range);

  StrategyState saved;
  ASSERT_TRUE(strat.SaveState(&saved).ok());
  auto state = StrategyState::Parse(saved.Serialize());
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  auto restored = RestoreStrategy<int32_t>(*state, space);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Identical learned geometry...
  const auto before = strat.Segments();
  const auto after = (*restored)->Segments();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].id, before[i].id);
    EXPECT_EQ(after[i].range, before[i].range);
    EXPECT_EQ(after[i].count, before[i].count);
  }
  // ...and exact answers (queries may adapt the restored copy further; the
  // original is not used past this point).
  Rng rng(seed + 1);
  for (int i = 0; i < 25; ++i) {
    const double lo =
        rng.NextUniform(domain.lo, domain.lo + domain.Span() * 0.9);
    const ValueRange q(lo, lo + rng.NextUniform(10, domain.Span() * 0.05));
    std::vector<int32_t> got;
    (*restored)->RunRange(q, &got);
    ASSERT_EQ(SortedValues(got), BruteForce(data, q)) << "query " << i;
  }
}

std::unique_ptr<SegmentationModel> TestModel() {
  return std::make_unique<Apm>(3 * kKiB, 12 * kKiB);
}

TEST(StrategyRestoreTest, NonSegmented) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 21);
  NonSegmented<int32_t> strat(data, ValueRange(0, 100000), &space);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 21);
}

TEST(StrategyRestoreTest, StaticPartition) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 22);
  StaticPartition<int32_t> strat(data, ValueRange(0, 100000), 10, &space);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 22);
}

TEST(StrategyRestoreTest, PositionalBlocks) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 23);
  PositionalBlocks<int32_t> strat(data, ValueRange(0, 100000), 8 * kKiB,
                                  &space);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 23);
}

TEST(StrategyRestoreTest, CrackingColumn) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 24);
  CrackingColumn<int32_t> strat(data, ValueRange(0, 100000), &space);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 24);
}

TEST(StrategyRestoreTest, AdaptiveSegmentation) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 25);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 100000), TestModel(),
                                      &space);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 25);
}

TEST(StrategyRestoreTest, DeferredSegmentation) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 26);
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 5;
  DeferredSegmentation<int32_t> strat(data, ValueRange(0, 100000), TestModel(),
                                      &space, opts);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 26);
}

TEST(StrategyRestoreTest, AdaptiveReplication) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(20000, 100000, 27);
  AdaptiveReplication<int32_t> strat(data, ValueRange(0, 100000), TestModel(),
                                     &space);
  VerifyStateRoundtrip(strat, data, ValueRange(0, 100000), &space, 27);
}

TEST(StrategyRestoreTest, UnknownKindRejected) {
  StrategyState st;
  st.PutString("kind", "time_travel");
  st.PutU64("value_size", 4);
  st.PutDouble("domain.lo", 0);
  st.PutDouble("domain.hi", 1);
  SegmentSpace space;
  auto restored = RestoreStrategy<int32_t>(st, &space);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyRestoreTest, MissingSegmentIsDataLoss) {
  SegmentSpace space;
  auto data = MakeUniformIntColumn(5000, 50000, 28);
  AdaptiveSegmentation<int32_t> strat(data, ValueRange(0, 50000), TestModel(),
                                      &space);
  StrategyState st;
  ASSERT_TRUE(strat.SaveState(&st).ok());
  SegmentSpace empty;  // the referenced segments are not here
  auto restored = RestoreStrategy<int32_t>(st, &empty);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace socs::persist
