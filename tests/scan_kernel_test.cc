// Scan kernels (storage/scan_kernels.h): per-codec selection over encoded
// payloads without materializing them. Covers the kernel contract -- result
// bytes identical to decode-then-filter, KernelStats a pure function of
// (blob, lo, hi) -- the per-codec mechanics (RLE run straddling, the dict
// qualifying-code table and its 65536-distinct bailout, delta-FOR zone-map
// block skipping with and without zones), the SegmentSpace metering seam
// (ScanFiltered / PeekFiltered, partial-decode charges, the kernel_scans
// counter, the decode-cache gauge), and the headline parity: every strategy
// returns byte-identical result sets with kernels on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "storage/scan_kernels.h"
#include "storage/segment_codec.h"
#include "storage/segment_space.h"
#include "test_util.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

using testing::SortedValues;

const ValueRange kDomain(0.0, 360.0);
constexpr size_t kNumStrategies = 7;

SegmentSpace::Options SpaceOptions(bool kernels) {
  SegmentSpace::Options o;
  o.compression = true;
  o.kernels = kernels;
  return o;
}

/// Decode-then-filter oracle over the original values, preserving order.
template <typename T>
std::vector<T> Oracle(const std::vector<T>& values, double lo, double hi) {
  std::vector<T> out;
  for (const T& v : values) {
    const double d = ValueOf(v);
    if (d >= lo && d < hi) out.push_back(v);
  }
  return out;
}

template <typename T>
void ExpectSameElements(const std::vector<T>& got, const std::vector<T>& want,
                        const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  if (!want.empty()) {
    EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(T)), 0)
        << what << ": element bytes differ";
  }
}

/// Encodes `values` under `codec`, runs the kernel twice (emitting and
/// count-only), and checks both the result bytes against the oracle and the
/// stats against the contract (identical with and without `out`). Returns
/// the stats for codec-specific assertions.
template <typename T>
KernelStats CheckKernel(SegmentCodec codec, const std::vector<T>& values,
                        double lo, double hi,
                        std::span<const ValueZone> zones = {}) {
  auto encoded =
      EncodeSegment(codec, reinterpret_cast<const std::byte*>(values.data()),
                    sizeof(T), values.size(), zones);
  EXPECT_TRUE(encoded.has_value()) << SegmentCodecName(codec);
  if (!encoded.has_value()) return {};
  const std::vector<T> want = Oracle(values, lo, hi);
  std::vector<T> got;
  const KernelStats ks = ScanEncodedSegment<T>(*encoded, lo, hi, &got);
  ExpectSameElements(got, want, SegmentCodecName(codec));
  EXPECT_EQ(ks.matched, want.size()) << SegmentCodecName(codec);
  // Count-only mode must meter identically (the shared-scan replay relies
  // on this).
  const KernelStats counted =
      ScanEncodedSegment<T>(*encoded, lo, hi, /*out=*/nullptr);
  EXPECT_EQ(counted.matched, ks.matched);
  EXPECT_EQ(counted.decode_bytes, ks.decode_bytes);
  EXPECT_EQ(counted.blocks_skipped, ks.blocks_skipped);
  EXPECT_EQ(counted.blocks_scanned, ks.blocks_scanned);
  EXPECT_EQ(counted.runs_scanned, ks.runs_scanned);
  return ks;
}

// ---------------------------------------------------------------------------
// Raw kernel
// ---------------------------------------------------------------------------

TEST(ScanKernelTest, RawKernelMatchesBranchingFilter) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextUniform(0.0, 100.0));
  values.push_back(25.0);  // exact boundary hits
  values.push_back(75.0);
  std::span<const double> span(values);
  for (auto [lo, hi] : {std::pair{25.0, 75.0}, {0.0, 100.0}, {50.0, 50.0},
                        {-10.0, 0.0}, {99.999, 200.0}}) {
    std::vector<double> got;
    const uint64_t n = ScanRawSegment<double>(span, lo, hi, &got);
    const std::vector<double> want = Oracle(values, lo, hi);
    EXPECT_EQ(n, want.size());
    ExpectSameElements(got, want, "raw kernel");
    // Null-out mode returns the same count.
    EXPECT_EQ(ScanRawSegment<double>(span, lo, hi, nullptr), n);
  }
  // Half-open semantics at the exact boundaries.
  EXPECT_EQ(ScanRawSegment<double>(span, 25.0, 25.5, nullptr),
            Oracle(values, 25.0, 25.5).size());
  std::vector<double> empty;
  EXPECT_EQ(ScanRawSegment<double>(std::span<const double>(empty), 0.0, 1.0,
                                   nullptr),
            0u);
}

TEST(ScanKernelTest, RawKernelAppendsAfterExistingOutput) {
  const std::vector<double> values = {1.0, 5.0, 9.0};
  std::vector<double> out = {42.0};
  ScanRawSegment<double>(values, 0.0, 6.0, &out);
  const std::vector<double> want = {42.0, 1.0, 5.0};
  ExpectSameElements(out, want, "append");
}

// ---------------------------------------------------------------------------
// RLE kernel
// ---------------------------------------------------------------------------

TEST(ScanKernelTest, RleEmitsQualifyingRunsWholesale) {
  std::vector<double> values;
  values.insert(values.end(), 100, 10.0);
  values.insert(values.end(), 50, 20.0);
  values.insert(values.end(), 200, 30.0);
  values.insert(values.end(), 1, 40.0);
  // A range straddling run boundaries: picks up the 20.0 and 30.0 runs.
  KernelStats ks = CheckKernel(SegmentCodec::kRle, values, 15.0, 35.0);
  EXPECT_EQ(ks.matched, 250u);
  EXPECT_EQ(ks.runs_scanned, 4u);  // every run is inspected...
  EXPECT_EQ(ks.decode_bytes, 250u * sizeof(double));  // ...matches inflate
  // Run-interior boundaries: [20.0, 30.0) takes the 20.0 run only.
  ks = CheckKernel(SegmentCodec::kRle, values, 20.0, 30.0);
  EXPECT_EQ(ks.matched, 50u);
  // Empty predicate inflates nothing.
  ks = CheckKernel(SegmentCodec::kRle, values, 12.0, 13.0);
  EXPECT_EQ(ks.matched, 0u);
  EXPECT_EQ(ks.decode_bytes, 0u);
  // Full-domain predicate emits everything.
  ks = CheckKernel(SegmentCodec::kRle, values, 0.0, 100.0);
  EXPECT_EQ(ks.matched, values.size());
}

TEST(ScanKernelTest, RleHandlesOidValueElements) {
  std::vector<OidValue> values;
  for (int r = 0; r < 20; ++r) {
    for (int i = 0; i < 37; ++i) {
      values.push_back({static_cast<uint64_t>(r), r * 5.0});
    }
  }
  const KernelStats ks = CheckKernel(SegmentCodec::kRle, values, 25.0, 50.0);
  EXPECT_EQ(ks.matched, 5u * 37u);
  EXPECT_EQ(ks.runs_scanned, 20u);
}

TEST(ScanKernelTest, RleEmptyPayload) {
  const KernelStats ks =
      CheckKernel(SegmentCodec::kRle, std::vector<double>{}, 0.0, 1.0);
  EXPECT_EQ(ks.matched, 0u);
  EXPECT_EQ(ks.runs_scanned, 0u);
}

// ---------------------------------------------------------------------------
// Dict kernel
// ---------------------------------------------------------------------------

TEST(ScanKernelTest, DictFiltersThroughQualifyingCodeTable) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 8000; ++i) {
    values.push_back(std::floor(rng.NextUniform(0.0, 200.0)));
  }
  const KernelStats ks = CheckKernel(SegmentCodec::kDict, values, 50.0, 60.0);
  // decode_bytes = dictionary + emitted elements, never the full payload.
  EXPECT_EQ(ks.decode_bytes, (200u + ks.matched) * sizeof(double));
  EXPECT_LT(ks.decode_bytes, values.size() * sizeof(double));
  // Boundary and degenerate predicates.
  CheckKernel(SegmentCodec::kDict, values, 0.0, 200.0);
  CheckKernel(SegmentCodec::kDict, values, 59.0, 59.0);
  CheckKernel(SegmentCodec::kDict, values, -5.0, 0.5);
}

TEST(ScanKernelTest, DictWideIndexesAndOidValues) {
  // > 256 distinct values forces u16 indexes.
  std::vector<double> values;
  for (int i = 0; i < 6000; ++i) values.push_back((i % 500) * 0.5);
  CheckKernel(SegmentCodec::kDict, values, 100.0, 150.0);
  // 16-byte elements: distinct (oid, value) pairs repeat in a cycle.
  std::vector<OidValue> pairs;
  for (int i = 0; i < 3000; ++i) {
    pairs.push_back({static_cast<uint64_t>(i % 40), (i % 40) * 9.0});
  }
  CheckKernel(SegmentCodec::kDict, pairs, 90.0, 270.0);
}

TEST(ScanKernelTest, DictBailsOutPast64KDistinct) {
  std::vector<int32_t> values(70000);
  for (int i = 0; i < 70000; ++i) values[i] = i;  // all distinct
  const auto encoded = EncodeSegment(
      SegmentCodec::kDict, reinterpret_cast<const std::byte*>(values.data()),
      sizeof(int32_t), values.size());
  EXPECT_FALSE(encoded.has_value())
      << "dict must bail past 65536 distinct values";
}

// ---------------------------------------------------------------------------
// Delta-FOR kernel
// ---------------------------------------------------------------------------

TEST(ScanKernelTest, DeltaForSkipsBlocksViaZoneMap) {
  // Sorted values: each kDeltaForBlock-element block owns a narrow value
  // interval, so a selective predicate prunes almost all of them.
  std::vector<double> values;
  for (int i = 0; i < 800; ++i) values.push_back(i * 0.45);
  const auto zones = BuildValueZones(values.data(), values.size());
  const KernelStats ks =
      CheckKernel(SegmentCodec::kDeltaFor, values, 100.0, 110.0, zones);
  const uint64_t blocks = (values.size() + kDeltaForBlock - 1) / kDeltaForBlock;
  EXPECT_EQ(ks.blocks_skipped + ks.blocks_scanned, blocks);
  EXPECT_GT(ks.blocks_skipped, blocks * 9 / 10);
  EXPECT_EQ(ks.decode_bytes, ks.blocks_scanned * kDeltaForBlock *
                                 sizeof(double));
  // An empty predicate skips every block: nothing is inflated at all.
  const KernelStats none =
      CheckKernel(SegmentCodec::kDeltaFor, values, 1000.0, 2000.0, zones);
  EXPECT_EQ(none.blocks_scanned, 0u);
  EXPECT_EQ(none.decode_bytes, 0u);
}

TEST(ScanKernelTest, DeltaForWithoutZonesDecodesEveryBlock) {
  std::vector<double> values;
  for (int i = 0; i < 800; ++i) values.push_back(i * 0.45);
  // Same blob minus the zone map: correctness is unchanged, skipping is off.
  const KernelStats ks =
      CheckKernel(SegmentCodec::kDeltaFor, values, 100.0, 110.0);
  EXPECT_EQ(ks.blocks_skipped, 0u);
  EXPECT_EQ(ks.blocks_scanned,
            (values.size() + kDeltaForBlock - 1) / kDeltaForBlock);
}

TEST(ScanKernelTest, DeltaForUnsortedAndPartialTailBlock) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 1003; ++i) {  // non-multiple of kDeltaForBlock
    values.push_back(rng.NextUniform(0.0, 360.0));
  }
  const auto zones = BuildValueZones(values.data(), values.size());
  CheckKernel(SegmentCodec::kDeltaFor, values, 90.0, 120.0, zones);
  CheckKernel(SegmentCodec::kDeltaFor, values, 0.0, 360.0, zones);
  CheckKernel(SegmentCodec::kDeltaFor, values, 359.9, 360.0, zones);
}

TEST(ScanKernelTest, DeltaForMultiLaneOidValues) {
  // 16-byte elements split into two u64 lanes; values sorted so zones bite.
  std::vector<OidValue> pairs;
  for (int i = 0; i < 640; ++i) {
    pairs.push_back({static_cast<uint64_t>(i * 3), i * 0.5});
  }
  const auto zones = BuildValueZones(pairs.data(), pairs.size());
  const KernelStats ks =
      CheckKernel(SegmentCodec::kDeltaFor, pairs, 40.0, 44.0, zones);
  EXPECT_GT(ks.blocks_skipped, 0u);
  CheckKernel(SegmentCodec::kDeltaFor, pairs, 0.0, 1000.0, zones);
  CheckKernel(SegmentCodec::kDeltaFor, std::vector<OidValue>{}, 0.0, 1.0);
}

// ---------------------------------------------------------------------------
// SegmentSpace::ScanFiltered / PeekFiltered metering
// ---------------------------------------------------------------------------

std::vector<double> QuantizedDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::floor(rng.NextUniform(kDomain.lo, kDomain.hi)));
  }
  return out;
}

TEST(ScanFilteredTest, MatchesScanPlusFilterAndChargesPartialDecode) {
  SegmentSpace space(CostParams{}, 0, SpaceOptions(/*kernels=*/true));
  const auto values = QuantizedDoubles(10000, 31);
  IoCost create;
  const SegmentId id =
      space.Create(values, &create, CompressionHint::kCold);
  ASSERT_NE(space.CodecOf(id), SegmentCodec::kRaw)
      << "quantized payload should encode";
  ASSERT_TRUE(space.KernelEligible(id));
  const uint64_t logical = space.LogicalSizeOf(id);

  IoCost cost;
  std::vector<double> got;
  const uint64_t n = space.ScanFiltered<double>(id, 50.0, 60.0, &got, &cost);
  const std::vector<double> want = Oracle(values, 50.0, 60.0);
  EXPECT_EQ(n, want.size());
  ExpectSameElements(got, want, "ScanFiltered");
  // Physical bytes still travel in full; decode CPU only for inflated bytes.
  EXPECT_EQ(cost.bytes, space.PhysicalSizeOf(id));
  EXPECT_GT(cost.decode_bytes, 0u);
  EXPECT_LT(cost.decode_bytes, logical);
  EXPECT_EQ(space.stats().kernel_scans, 1u);
  EXPECT_EQ(space.stats().decode_bytes, cost.decode_bytes);

  // Count-only mode: same charges, no output (the shared-scan replay path).
  IoCost replay;
  EXPECT_EQ(space.ScanFiltered<double>(id, 50.0, 60.0, nullptr, &replay), n);
  EXPECT_EQ(replay.bytes, cost.bytes);
  EXPECT_EQ(replay.decode_bytes, cost.decode_bytes);
  EXPECT_EQ(space.stats().kernel_scans, 2u);

  // The kernel path must never populate the full-decode cache.
  EXPECT_EQ(space.decoded_cache_bytes(), 0u);
}

TEST(ScanFilteredTest, KernelsOffFallsBackToFullDecode) {
  SegmentSpace space(CostParams{}, 0, SpaceOptions(/*kernels=*/false));
  const auto values = QuantizedDoubles(10000, 31);
  const SegmentId id = space.Create(values, nullptr, CompressionHint::kCold);
  ASSERT_NE(space.CodecOf(id), SegmentCodec::kRaw);
  EXPECT_FALSE(space.KernelEligible(id));

  IoCost cost;
  std::vector<double> got;
  const uint64_t n = space.ScanFiltered<double>(id, 50.0, 60.0, &got, &cost);
  const std::vector<double> want = Oracle(values, 50.0, 60.0);
  EXPECT_EQ(n, want.size());
  ExpectSameElements(got, want, "fallback");
  // Decode-then-filter charges the whole logical payload.
  EXPECT_EQ(cost.decode_bytes, space.LogicalSizeOf(id));
  EXPECT_EQ(space.stats().kernel_scans, 0u);
}

TEST(ScanFilteredTest, RawSegmentsNeverUseTheKernelCounter) {
  SegmentSpace space(CostParams{}, 0, SpaceOptions(/*kernels=*/true));
  const auto values = QuantizedDoubles(2000, 5);
  // Hot hint: stored raw even with compression on.
  const SegmentId id = space.Create(values, nullptr, CompressionHint::kHot);
  ASSERT_EQ(space.CodecOf(id), SegmentCodec::kRaw);
  EXPECT_FALSE(space.KernelEligible(id));
  IoCost cost;
  std::vector<double> got;
  space.ScanFiltered<double>(id, 10.0, 20.0, &got, &cost);
  ExpectSameElements(got, Oracle(values, 10.0, 20.0), "raw via ScanFiltered");
  EXPECT_EQ(cost.decode_bytes, 0u);
  EXPECT_EQ(space.stats().kernel_scans, 0u);
}

TEST(ScanFilteredTest, PeekFilteredIsUnmetered) {
  SegmentSpace space(CostParams{}, 0, SpaceOptions(/*kernels=*/true));
  const auto values = QuantizedDoubles(10000, 43);
  const SegmentId id = space.Create(values, nullptr, CompressionHint::kCold);
  const IoStats before = space.stats();
  std::vector<double> got;
  const uint64_t n = space.PeekFiltered<double>(id, 100.0, 140.0, &got);
  ExpectSameElements(got, Oracle(values, 100.0, 140.0), "PeekFiltered");
  EXPECT_EQ(n, got.size());
  const IoStats after = space.stats();
  EXPECT_EQ(after.mem_read_bytes, before.mem_read_bytes);
  EXPECT_EQ(after.decode_bytes, before.decode_bytes);
  EXPECT_EQ(after.kernel_scans, before.kernel_scans);
}

// ---------------------------------------------------------------------------
// Decode-cache accounting (satellite: SecondaryStore gauge + Footprint)
// ---------------------------------------------------------------------------

TEST(DecodeCacheTest, FullDecodeFillsDropAndFreeRelease) {
  SegmentSpace space(CostParams{}, 0, SpaceOptions(/*kernels=*/true));
  const auto values = QuantizedDoubles(10000, 99);
  const SegmentId id = space.Create(values, nullptr, CompressionHint::kCold);
  ASSERT_NE(space.CodecOf(id), SegmentCodec::kRaw);
  const uint64_t logical = space.LogicalSizeOf(id);
  EXPECT_EQ(space.decoded_cache_bytes(), 0u);

  // A full-materialization scan (mode-0 delivery shape) decodes and caches.
  IoCost cost;
  (void)space.Scan<double>(id, &cost);
  EXPECT_EQ(space.decoded_cache_bytes(), logical);
  EXPECT_EQ(space.DecodedCacheBytesOf(id), logical);
  // Re-scanning reuses the cache; the gauge must not double-count.
  (void)space.Scan<double>(id, &cost);
  EXPECT_EQ(space.decoded_cache_bytes(), logical);

  space.DropDecodedCache(id);
  EXPECT_EQ(space.decoded_cache_bytes(), 0u);
  EXPECT_EQ(space.DecodedCacheBytesOf(id), 0u);
  // Dropping an uncached segment is a no-op; a later scan refills.
  space.DropDecodedCache(id);
  (void)space.Scan<double>(id, &cost);
  EXPECT_EQ(space.decoded_cache_bytes(), logical);

  space.Free(id);
  EXPECT_EQ(space.decoded_cache_bytes(), 0u);
}

TEST(DecodeCacheTest, RawSegmentsNeverEnterTheGauge) {
  SegmentSpace space(CostParams{}, 0, SpaceOptions(/*kernels=*/true));
  const auto values = QuantizedDoubles(2000, 7);
  const SegmentId id = space.Create(values, nullptr, CompressionHint::kHot);
  IoCost cost;
  (void)space.Scan<double>(id, &cost);
  EXPECT_EQ(space.decoded_cache_bytes(), 0u);
  EXPECT_EQ(space.DecodedCacheBytesOf(id), 0u);
}

TEST(DecodeCacheTest, FootprintReportsDecodeCacheBytes) {
  // Kernels off: strategy scans take the full-decode path and the cache
  // shows up in the storage footprint. Kernels on: the cache stays empty.
  for (const bool kernels : {false, true}) {
    SegmentSpace space(CostParams{}, 0, SpaceOptions(kernels));
    auto values = QuantizedDoubles(20000, 13);
    NonSegmented<double> strat(std::move(values), kDomain, &space);
    std::vector<double> out;
    (void)strat.RunRange(ValueRange(40.0, 80.0), &out);
    const StorageFootprint fp = strat.Footprint();
    EXPECT_EQ(fp.decode_cache_bytes, space.decoded_cache_bytes());
    if (kernels) {
      EXPECT_EQ(fp.decode_cache_bytes, 0u)
          << "kernel scans must not populate the decode cache";
    } else {
      EXPECT_GT(fp.decode_cache_bytes, 0u)
          << "full-decode scans should surface cache bytes in the footprint";
    }
  }
}

// ---------------------------------------------------------------------------
// Strategy parity: kernels ON delivers the same result sets as OFF
// ---------------------------------------------------------------------------

std::unique_ptr<AccessStrategy<OidValue>> MakeOidStrategy(
    size_t kind, std::vector<OidValue> pairs, SegmentSpace* space) {
  auto model = std::make_unique<Apm>(8 * kKiB, 32 * kKiB);
  switch (kind) {
    case 0:
      return std::make_unique<NonSegmented<OidValue>>(std::move(pairs), kDomain,
                                                      space);
    case 1:
      return std::make_unique<StaticPartition<OidValue>>(std::move(pairs),
                                                         kDomain, 8, space);
    case 2:
      return std::make_unique<PositionalBlocks<OidValue>>(
          std::move(pairs), kDomain, 16 * kKiB, space, /*use_zone_maps=*/true);
    case 3:
      return std::make_unique<CrackingColumn<OidValue>>(std::move(pairs),
                                                        kDomain, space);
    case 4:
      return std::make_unique<AdaptiveSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    case 5:
      return std::make_unique<DeferredSegmentation<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
    default:
      return std::make_unique<AdaptiveReplication<OidValue>>(
          std::move(pairs), kDomain, std::move(model), space);
  }
}

std::vector<OidValue> MakeQuantizedPairs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<OidValue> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({i, std::floor(rng.NextUniform(kDomain.lo, kDomain.hi))});
  }
  return out;
}

TEST(KernelParityTest, AllStrategiesSameResultsKernelsOnAndOff) {
  for (size_t kind = 0; kind < kNumStrategies; ++kind) {
    // Pin the advisor's kernel heat tolerance to 0 on both sides so the two
    // spaces re-encode the identical segment population: the sweep isolates
    // the kernels' filter-on-encoded effect, not the (separate) policy of
    // encoding mildly-warm segments, whose extra kernel scans would
    // otherwise add decode charges the off side never pays.
    SegmentSpace::Options off_opts = SpaceOptions(/*kernels=*/false);
    SegmentSpace::Options on_opts = SpaceOptions(/*kernels=*/true);
    off_opts.kernel_heat_tolerance = 0;
    on_opts.kernel_heat_tolerance = 0;
    SegmentSpace off_space(CostParams{}, 0, off_opts);
    SegmentSpace on_space(CostParams{}, 0, on_opts);
    auto pairs = MakeQuantizedPairs(20000, 321);
    auto off = MakeOidStrategy(kind, pairs, &off_space);
    auto on = MakeOidStrategy(kind, pairs, &on_space);

    // Same Zipf + interleaved-append shape as the compression parity sweep:
    // cold segments encode mid-run, appends exercise the hot rewrite path.
    ZipfRangeGenerator gen(kDomain, 0.05, 17);
    Rng ins(71);
    uint64_t next_oid = pairs.size();
    for (int i = 0; i < 120; ++i) {
      if (i % 10 == 9) {
        std::vector<OidValue> batch;
        for (int j = 0; j < 50; ++j) {
          batch.push_back({next_oid++,
                           std::floor(ins.NextUniform(kDomain.lo, kDomain.hi))});
        }
        off->Append(batch);
        on->Append(batch);
        continue;
      }
      const ValueRange q = gen.Next().range;
      std::vector<OidValue> off_result, on_result;
      const QueryExecution off_ex = off->RunRange(q, &off_result);
      const QueryExecution on_ex = on->RunRange(q, &on_result);
      ASSERT_EQ(off_ex.result_count, on_ex.result_count)
          << "kind " << kind << " query " << i;
      ASSERT_EQ(SortedValues(off_result), SortedValues(on_result))
          << "kind " << kind << " query " << i;
      // Reorganization is driven by logical geometry, never by the kernel
      // seam: identical structural evolution on both sides.
      ASSERT_EQ(off_ex.splits, on_ex.splits) << "kind " << kind;
      ASSERT_EQ(off_ex.merges, on_ex.merges) << "kind " << kind;
      ASSERT_EQ(off_ex.replicas_created, on_ex.replicas_created)
          << "kind " << kind;
    }
    // The point of the kernels: strictly less decode work for the same
    // results. Cracking (kind 3) scans its own array outside the space, so
    // it never becomes kernel-eligible.
    EXPECT_EQ(off_space.stats().kernel_scans, 0u);
    if (kind != 3) {
      EXPECT_GT(on_space.stats().kernel_scans, 0u)
          << "kind " << kind << " never hit a kernel";
      EXPECT_LT(on_space.stats().decode_bytes, off_space.stats().decode_bytes)
          << "kind " << kind << " kernels did not reduce decode bytes";
    }
  }
}

}  // namespace
}  // namespace socs
