// Crash-injection tests for the durable segment store: a child process is
// SIGKILLed -- either blind (mid-serving) or surgically, at named fault
// points inside checkpoint/log writes via PersistentStore's fault hook --
// and the parent then recovers from the same data directory and checks the
// result. The headline test is the paper-shaped kill-and-recover: a server
// adapts its `ra` column under a SkyServer query stream, dies without
// warning, and the recovered store serves byte-identical SELECT replies and
// reports byte-identical segment geometry (#layout).
//
// The child processes run with fsync_data on the default path; a SIGKILL
// never loses page-cache writes, so the recovery semantics tested here are
// exactly the crash-consistency contract (torn tails truncated, committed
// checkpoints intact).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "persist/bootstrap.h"
#include "persist/store.h"
#include "server/client.h"
#include "server/server.h"
#include "server/session.h"
#include "workload/skyserver.h"

namespace socs {
namespace {

std::string TempDirFor(const char* name) {
  const std::string dir = ::testing::TempDir() + "/socs_recovery_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

StatusOr<std::unique_ptr<persist::PersistentStore>> OpenStore(
    const std::string& dir, persist::FaultHook hook = nullptr) {
  persist::PersistentStore::Options opts;
  opts.dir = dir;
  opts.fault_hook = std::move(hook);
  return persist::PersistentStore::Open(std::move(opts));
}

SkyServerConfig SmallSky() {
  SkyServerConfig cfg;
  cfg.num_objects = 120'000;  // ~1.9MB of OidValue -- seconds, not minutes
  return cfg;
}

/// The demo-shaped SkyServer catalog: P(ra adaptive-segmented, objid).
void BuildSkyCatalog(Catalog* cat, SegmentSpace* space,
                     const SkyServerConfig& cfg) {
  const std::vector<float> ra_floats = MakeRaColumn(cfg);
  std::vector<OidValue> ra;
  std::vector<int64_t> objid;
  ra.reserve(ra_floats.size());
  for (size_t i = 0; i < ra_floats.size(); ++i) {
    ra.push_back({i, static_cast<double>(ra_floats[i])});
    objid.push_back(static_cast<int64_t>(587722981742084097LL + i));
  }
  auto strat = std::make_unique<AdaptiveSegmentation<OidValue>>(
      ra, cfg.footprint, std::make_unique<Apm>(32 * kKiB, 128 * kKiB), space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               space);
  SOCS_CHECK(cat->AddSegmentedColumn("P", "ra", std::move(col)).ok());
  SOCS_CHECK(cat->AddColumn("P", "objid", TypedVector::Of(objid)).ok());
}

std::vector<std::string> SkyQueries(const SkyServerConfig& cfg, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) {
    const double width = rng.NextUniform(1.0, 8.0);
    const double lo =
        rng.NextUniform(cfg.footprint.lo, cfg.footprint.hi - width);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "select objid from P where ra between %.6f and %.6f", lo,
                  lo + width);
    out.push_back(buf);
  }
  return out;
}

/// Child body for the blind-kill test: builds the durable demo server,
/// reports its port on `port_fd`, then waits to be SIGKILLed. Never returns
/// normally; _exit codes mark setup failures.
[[noreturn]] void ServerChild(const std::string& dir, int port_fd) {
  auto store = OpenStore(dir);
  if (!store.ok()) _exit(41);
  Catalog cat;
  SegmentSpace space;
  space.set_durability(store->get());
  TaskScheduler sched(1);  // no background lane: adaptation is query-driven
  BuildSkyCatalog(&cat, &space, SmallSky());
  if (!persist::CheckpointNow(store->get(), cat).ok()) _exit(42);

  server::SqlServer::Options opts;
  opts.port = 0;
  opts.executors = 1;
  opts.persist = store->get();
  server::SqlServer srv(&cat, &sched, opts);
  if (!srv.Start().ok()) _exit(43);
  const uint16_t port = srv.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) _exit(44);
  ::close(port_fd);
  for (;;) ::pause();  // parent SIGKILLs us mid-serving
}

TEST(RecoveryTest, KilledServerRecoversByteIdenticalLayoutAndReplies) {
  const std::string dir = TempDirFor("kill");
  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(port_pipe[0]);
    ServerChild(dir, port_pipe[1]);
  }
  ::close(port_pipe[1]);
  uint16_t port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)))
      << "server child failed to start";
  ::close(port_pipe[0]);

  auto conn = client::Connection::Connect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  // Adapt under the SkyServer stream, then commit what was learned.
  const SkyServerConfig cfg = SmallSky();
  for (const std::string& q : SkyQueries(cfg, 50, 77)) {
    auto reply = conn->Execute(q);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok) << reply->error;
  }
  auto ckpt = conn->Execute("#checkpoint");
  ASSERT_TRUE(ckpt.ok() && ckpt->ok);

  // Record the committed truth: the exact segment geometry and the paper's
  // probe query reply. #layout is read-only; the probe adapts, but it runs
  // on exactly the checkpointed state -- as it will again after recovery.
  auto layout = conn->Execute("#layout");
  ASSERT_TRUE(layout.ok() && layout->ok);
  ASSERT_GT(layout->rows.size(), 3u) << "expected an adapted, split layout";
  const std::string probe_sql =
      "select objid from P where ra between 205.1 and 205.12";
  auto probe = conn->Execute(probe_sql);
  ASSERT_TRUE(probe.ok() && probe->ok);

  // No goodbye: SIGKILL mid-serving.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Recover in-process from the same directory.
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->health().ok());
  Catalog cat;
  SegmentSpace space;
  space.set_durability(store->get());
  auto report = persist::RestoreDatabase(store->get(), &space, &cat);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->tables, 1u);
  EXPECT_EQ(report->columns, 2u);
  EXPECT_GT(report->segments_restored, 3u);

  TaskScheduler sched(1);
  server::Session session(&cat, &sched);
  // Byte-identical geometry: the recovered strategies report exactly the
  // pre-crash segment list (ids, counts, IEEE-754 range bits).
  const server::WireReply layout2 = session.Execute("#layout");
  ASSERT_TRUE(layout2.ok) << layout2.error;
  EXPECT_EQ(layout2.rows, layout->rows);
  // Byte-identical answers: the probe reply matches the pre-crash reply.
  const server::WireReply probe2 = session.Execute(probe_sql);
  ASSERT_TRUE(probe2.ok) << probe2.error;
  EXPECT_EQ(probe2.columns, probe->columns);
  EXPECT_EQ(probe2.rows, probe->rows);
}

/// Child body for the fault-point tests: commits segment A at generation 1
/// with no hook, then re-opens with a hook that SIGKILLs at `point` and
/// walks into the fault (persist B, checkpoint). Never survives the fault.
[[noreturn]] void FaultChild(const std::string& dir, const std::string& point) {
  std::vector<std::byte> a(600), b(700);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::byte>(i & 0xFF);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::byte>(~i & 0xFF);
  {
    auto store = OpenStore(dir);
    if (!store.ok()) _exit(41);
    (*store)->PersistSegment(1, a, SegmentCodec::kRaw, a.size());
    if (!(*store)
             ->WriteCheckpoint(persist::DatabaseImage{},
                               (*store)->BeginCapture())
             .ok()) {
      _exit(42);
    }
  }
  auto store = OpenStore(dir, [&point](std::string_view p) {
    if (p == point) {
      ::kill(::getpid(), SIGKILL);
      ::pause();  // SIGKILL is not synchronous; never run past the fault
    }
  });
  if (!store.ok()) _exit(43);
  (*store)->PersistSegment(2, b, SegmentCodec::kRaw, b.size());
  (void)(*store)->WriteCheckpoint(persist::DatabaseImage{},
                                  (*store)->BeginCapture());
  _exit(44);  // the fault point never fired
}

class FaultPointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultPointTest, CrashAtPointRecoversConsistently) {
  const std::string point = GetParam();
  std::string tag = "fp_" + point;
  for (char& c : tag) {
    if (c == '.') c = '_';
  }
  const std::string dir = TempDirFor(tag.c_str());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) FaultChild(dir, point);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited " << WEXITSTATUS(wstatus)
      << " instead of dying at the fault point";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Whatever the point, Open recovers a consistent store: generation 1
  // (crash before the superblock flip landed) or 2 (after), never a mix,
  // and segment A -- committed before the fault -- is always readable.
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->health().ok());
  const uint64_t gen = (*store)->recovery().generation;
  EXPECT_TRUE(gen == 1 || gen == 2) << "generation " << gen;
  auto blob_a = (*store)->ReadSegment(1);
  ASSERT_TRUE(blob_a.ok()) << blob_a.status().ToString();
  EXPECT_EQ(blob_a->physical.size(), 600u);
  // Segment B's PUT hit delta_1.log before the checkpoint attempt, so it is
  // live in either generation; its payload must verify.
  auto blob_b = (*store)->ReadSegment(2);
  ASSERT_TRUE(blob_b.ok()) << blob_b.status().ToString();
  EXPECT_EQ(blob_b->physical.size(), 700u);
  // And the recovered store keeps working: another full commit succeeds.
  ASSERT_TRUE((*store)
                  ->WriteCheckpoint(persist::DatabaseImage{},
                                    (*store)->BeginCapture())
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(CheckpointCommit, FaultPointTest,
                         ::testing::Values("checkpoint.mid",
                                           "checkpoint.post_rename_pre_dirsync",
                                           "superblock.pre_flip",
                                           "superblock.mid",
                                           "superblock.post_rename_pre_dirsync"));

TEST(RecoveryTest, CrashMidLogAppendTruncatesTornRecord) {
  const std::string dir = TempDirFor("torn_append");
  // Stage segment A through a hookless store, then let a hooked child die
  // half-way through appending B's PUT record.
  {
    auto store = OpenStore(dir);
    ASSERT_TRUE(store.ok());
    std::vector<std::byte> a(300, std::byte{7});
    (*store)->PersistSegment(1, a, SegmentCodec::kRaw, 300);
    ASSERT_TRUE((*store)->health().ok());
  }
  int wstatus = 0;
  const pid_t pid2 = ::fork();
  ASSERT_GE(pid2, 0);
  if (pid2 == 0) {
    auto store = OpenStore(dir, [](std::string_view p) {
      if (p == "log.append.mid") {
        ::kill(::getpid(), SIGKILL);
        ::pause();
      }
    });
    if (!store.ok()) _exit(41);
    std::vector<std::byte> b(400, std::byte{9});
    (*store)->PersistSegment(2, b, SegmentCodec::kRaw, 400);
    _exit(44);  // the fault point never fired
  }
  ASSERT_EQ(::waitpid(pid2, &wstatus, 0), pid2);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited " << WEXITSTATUS(wstatus);

  // The half-written PUT for B is a torn tail: truncated on recovery, with
  // A's record (and blob) intact before it.
  auto store = OpenStore(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().delta_tail_truncated);
  EXPECT_EQ((*store)->LiveSegments(), std::vector<SegmentId>{1});
  auto blob = (*store)->ReadSegment(1);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->physical, std::vector<std::byte>(300, std::byte{7}));
}

}  // namespace
}  // namespace socs
