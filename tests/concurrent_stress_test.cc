// Concurrency stress for the parallel execution subsystem: mixed
// INSERT/SELECT streams running on N threads against one shared SegmentSpace
// (and one shared worker pool) must report byte-for-byte the per-statement
// records of the single-threaded baseline -- across all seven strategies --
// and the shared space's IoStats must equal the sum of the baselines'.
// Everything here is also the ThreadSanitizer workload for the storage,
// exec, core and engine layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/background_maintenance.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "engine/catalog.h"
#include "engine/mal_builder.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "exec/task_scheduler.h"
#include "sql/compiler.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

constexpr size_t kValues = 12000;
constexpr int32_t kDomainHi = 1'000'000;
constexpr int kSteps = 75;

enum class Kind {
  kNonSegmented,
  kStaticPartition,
  kPositionalBlocks,
  kCracking,
  kAdaptiveSegmentation,
  kDeferredSegmentation,
  kAdaptiveReplication,
};

const std::vector<Kind> kAllKinds{
    Kind::kNonSegmented,        Kind::kStaticPartition,
    Kind::kPositionalBlocks,    Kind::kCracking,
    Kind::kAdaptiveSegmentation, Kind::kDeferredSegmentation,
    Kind::kAdaptiveReplication,
};

std::unique_ptr<AccessStrategy<int32_t>> MakeStrategy(Kind kind,
                                                      std::vector<int32_t> data,
                                                      const ValueRange& domain,
                                                      SegmentSpace* space) {
  switch (kind) {
    case Kind::kNonSegmented:
      return std::make_unique<NonSegmented<int32_t>>(std::move(data), domain,
                                                     space);
    case Kind::kStaticPartition:
      return std::make_unique<StaticPartition<int32_t>>(std::move(data), domain,
                                                        16, space);
    case Kind::kPositionalBlocks:
      return std::make_unique<PositionalBlocks<int32_t>>(
          std::move(data), domain, 8 * kKiB, space, /*use_zone_maps=*/true);
    case Kind::kCracking:
      return std::make_unique<CrackingColumn<int32_t>>(std::move(data), domain,
                                                       space);
    case Kind::kAdaptiveSegmentation:
      return std::make_unique<AdaptiveSegmentation<int32_t>>(
          std::move(data), domain, std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
          space);
    case Kind::kDeferredSegmentation:
      return std::make_unique<DeferredSegmentation<int32_t>>(
          std::move(data), domain, std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
          space);
    case Kind::kAdaptiveReplication:
      return std::make_unique<AdaptiveReplication<int32_t>>(
          std::move(data), domain, std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
          space);
  }
  return nullptr;
}

/// One stream's pre-generated statement sequence (identical for the baseline
/// run and the concurrent run) and its recorded outcomes.
struct Stream {
  Kind kind;
  std::vector<int32_t> initial;
  // Step i: queries[i] when !is_insert[i], else inserts[i].
  std::vector<bool> is_insert;
  std::vector<ValueRange> queries;
  std::vector<std::vector<int32_t>> inserts;

  std::vector<QueryExecution> records;
  std::vector<std::vector<int32_t>> results;
};

Stream MakeStream(Kind kind, uint64_t seed) {
  Stream s;
  s.kind = kind;
  Rng data_rng(seed);
  s.initial.reserve(kValues);
  for (size_t i = 0; i < kValues; ++i) {
    s.initial.push_back(static_cast<int32_t>(data_rng.NextInt(0, kDomainHi - 1)));
  }
  UniformRangeGenerator gen(ValueRange(0, kDomainHi), 0.05, seed + 13);
  Rng ins_rng(seed + 29);
  for (int step = 0; step < kSteps; ++step) {
    const bool insert = step % 3 == 2;
    s.is_insert.push_back(insert);
    s.queries.push_back(insert ? ValueRange() : gen.Next().range);
    std::vector<int32_t> batch;
    if (insert) {
      const size_t n = 1 + static_cast<size_t>(ins_rng.NextInt(0, 3));
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(static_cast<int32_t>(ins_rng.NextInt(0, kDomainHi - 1)));
      }
    }
    s.inserts.push_back(std::move(batch));
  }
  return s;
}

/// Runs the stream against a strategy, recording every statement's record
/// and result vector. `pool` parallelizes the scan phases when non-null.
void RunStream(Stream* s, AccessStrategy<int32_t>* strat, ThreadPool* pool) {
  s->records.clear();
  s->results.clear();
  for (int step = 0; step < kSteps; ++step) {
    if (s->is_insert[step]) {
      s->records.push_back(strat->Append(s->inserts[step]));
      s->results.emplace_back();
    } else {
      std::vector<int32_t> result;
      s->records.push_back(strat->RunRange(s->queries[step], &result, pool));
      s->results.push_back(std::move(result));
    }
  }
}

void ExpectStreamsEqual(const Stream& base, const Stream& conc) {
  ASSERT_EQ(base.records.size(), conc.records.size());
  for (int step = 0; step < kSteps; ++step) {
    const QueryExecution& a = base.records[step];
    const QueryExecution& b = conc.records[step];
    ASSERT_EQ(a.read_bytes, b.read_bytes) << "step " << step;
    ASSERT_EQ(a.write_bytes, b.write_bytes) << "step " << step;
    ASSERT_EQ(a.result_count, b.result_count) << "step " << step;
    ASSERT_EQ(a.segments_scanned, b.segments_scanned) << "step " << step;
    ASSERT_EQ(a.splits, b.splits) << "step " << step;
    ASSERT_EQ(a.merges, b.merges) << "step " << step;
    ASSERT_EQ(a.replicas_created, b.replicas_created) << "step " << step;
    ASSERT_EQ(a.segments_dropped, b.segments_dropped) << "step " << step;
    ASSERT_EQ(a.selection_seconds, b.selection_seconds) << "step " << step;
    ASSERT_EQ(a.adaptation_seconds, b.adaptation_seconds) << "step " << step;
    ASSERT_EQ(base.results[step], conc.results[step]) << "step " << step;
  }
}

// Seven concurrent mixed INSERT/SELECT streams -- one per strategy -- on one
// shared SegmentSpace and one shared pool. Each stream's per-statement
// records and result vectors must be byte-identical to its single-threaded
// baseline (own space, no pool), and the shared space's final IoStats must
// equal the sum of the baseline spaces' (metering never leaks across
// streams, no matter the interleaving).
TEST(ConcurrentStress, MixedStreamsAcrossAllSevenStrategies) {
  const ValueRange domain(0, kDomainHi);

  // Baselines: sequential, isolated spaces.
  std::vector<Stream> baselines;
  IoStats baseline_total;
  for (size_t i = 0; i < kAllKinds.size(); ++i) {
    baselines.push_back(MakeStream(kAllKinds[i], 1000 + i));
    SegmentSpace space;
    auto strat = MakeStrategy(kAllKinds[i], baselines[i].initial, domain, &space);
    RunStream(&baselines[i], strat.get(), nullptr);
    baseline_total += space.stats();
  }

  // Concurrent run: same streams, one thread each, one shared space, every
  // scan phase fanned out across one shared 4-worker pool.
  SegmentSpace shared_space;
  TaskScheduler sched(4);
  std::vector<Stream> streams;
  std::vector<std::unique_ptr<AccessStrategy<int32_t>>> strategies;
  for (size_t i = 0; i < kAllKinds.size(); ++i) {
    streams.push_back(MakeStream(kAllKinds[i], 1000 + i));
    strategies.push_back(
        MakeStrategy(kAllKinds[i], streams[i].initial, domain, &shared_space));
  }
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kAllKinds.size(); ++i) {
    threads.emplace_back([&, i] {
      RunStream(&streams[i], strategies[i].get(), &sched.pool());
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < kAllKinds.size(); ++i) {
    SCOPED_TRACE(strategies[i]->Name());
    ExpectStreamsEqual(baselines[i], streams[i]);
  }

  const IoStats total = shared_space.stats();
  EXPECT_EQ(total.mem_read_bytes, baseline_total.mem_read_bytes);
  EXPECT_EQ(total.mem_write_bytes, baseline_total.mem_write_bytes);
  EXPECT_EQ(total.disk_read_bytes, baseline_total.disk_read_bytes);
  EXPECT_EQ(total.disk_write_bytes, baseline_total.disk_write_bytes);
  EXPECT_EQ(total.segments_created, baseline_total.segments_created);
  EXPECT_EQ(total.segments_freed, baseline_total.segments_freed);
  EXPECT_EQ(total.segments_scanned, baseline_total.segments_scanned);
}

// Background reorganization racing the query stream: a deferred column whose
// batch only ever runs on the scheduler's background lane must keep every
// query's results correct (counts match a plain-array oracle) no matter when
// the flushes interleave, and the flush work must land in the maintenance
// ledger, not in any query's record.
TEST(ConcurrentStress, BackgroundFlushKeepsQueriesCorrect) {
  const ValueRange domain(0, kDomainHi);
  Rng rng(77);
  std::vector<int32_t> data;
  for (size_t i = 0; i < kValues; ++i) {
    data.push_back(static_cast<int32_t>(rng.NextInt(0, kDomainHi - 1)));
  }
  std::vector<int32_t> oracle = data;

  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1 << 30;  // the query path never flushes ...
  DeferredSegmentation<int32_t> strat(data, domain,
                                      std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
                                      &space, opts);
  TaskScheduler sched(2);  // ... only the background lane does
  BackgroundMaintenance<int32_t> maint(&strat);

  UniformRangeGenerator gen(domain, 0.05, 5);
  Rng ins(6);
  for (int step = 0; step < 120; ++step) {
    if (step % 4 == 3) {
      std::vector<int32_t> batch;
      for (int i = 0; i < 3; ++i) {
        batch.push_back(static_cast<int32_t>(ins.NextInt(0, kDomainHi - 1)));
      }
      strat.Append(batch);
      oracle.insert(oracle.end(), batch.begin(), batch.end());
    } else {
      const ValueRange q = gen.Next().range;
      const QueryExecution ex = strat.RunRange(q);
      const auto expect = static_cast<uint64_t>(std::count_if(
          oracle.begin(), oracle.end(), [&](int32_t v) {
            return v >= q.lo && v < q.hi;
          }));
      ASSERT_EQ(ex.result_count, expect) << "step " << step;
    }
    maint.Schedule(&sched);  // statement finished -- an idle point
  }
  sched.DrainBackground();

  EXPECT_EQ(maint.runs(), 120u);
  // The whole-column segment violates the APM bounds immediately, so the
  // background lane must have actually reorganized...
  EXPECT_GT(maint.total().splits, 0u);
  EXPECT_GT(strat.Segments().size(), 1u);
  // ... and after the final drain nothing is left pending.
  EXPECT_FALSE(strat.HasIdleWork());
  // Row conservation across splits, appends and flushes.
  EXPECT_EQ(strat.index().TotalCount(), oracle.size());
}

/// The Fig.-1-style plan `select objid from P where ra between lo and hi`.
MalProgram BuildSelectPlan(double lo, double hi) {
  MalProgram prog;
  MalBuilder b(&prog);
  const int ra = b.Call("sql", "bind",
                        {MalArg::Str("sys"), MalArg::Str("P"), MalArg::Str("ra"),
                         MalArg::Num(0)});
  const int cand = b.Call("algebra", "uselect",
                          {MalArg::Var(ra), MalArg::Num(lo), MalArg::Num(hi),
                           MalArg::Num(1), MalArg::Num(1)});
  const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
  const int marked =
      b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
  const int renum = b.Call("bat", "reverse", {MalArg::Var(marked)});
  const int objid = b.Call("sql", "bind",
                           {MalArg::Str("sys"), MalArg::Str("P"),
                            MalArg::Str("objid"), MalArg::Num(0)});
  const int joined =
      b.Call("algebra", "join", {MalArg::Var(renum), MalArg::Var(objid)});
  const int rs = b.Call("sql", "resultSet", {});
  b.CallVoid("sql", "rsColumn",
             {MalArg::Var(rs), MalArg::Str("P.objid"), MalArg::Var(joined)});
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

struct EngineStream {
  std::vector<ValueRange> queries;
  std::vector<QueryExecution> records;
  std::vector<uint64_t> rows;
};

/// One engine session: its own catalog + interpreter + segmented column, the
/// space and scheduler shared with the other sessions.
void RunEngineStream(EngineStream* s, uint64_t seed, SegmentSpace* space,
                     TaskScheduler* sched) {
  const ValueRange domain(0.0, 360.0);
  const size_t n = 15000;
  Rng rng(seed);
  std::vector<OidValue> pairs;
  std::vector<int64_t> objid;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({i, rng.NextUniform(domain.lo, domain.hi)});
    objid.push_back(static_cast<int64_t>(1000000 + i));
  }
  Catalog cat;
  auto strat = std::make_unique<AdaptiveSegmentation<OidValue>>(
      pairs, domain, std::make_unique<Apm>(8 * kKiB, 32 * kKiB), space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               space);
  ASSERT_TRUE(cat.AddSegmentedColumn("P", "ra", std::move(col)).ok());
  ASSERT_TRUE(cat.AddColumn("P", "objid", TypedVector::Of(objid)).ok());

  MalInterpreter interp(&cat);
  if (sched != nullptr) interp.set_exec(sched);
  s->records.clear();
  s->rows.clear();
  for (const ValueRange& q : s->queries) {
    MalProgram prog = BuildSelectPlan(q.lo, q.hi);
    OptContext ctx;
    ctx.catalog = &cat;
    PassManager pm = MakeDefaultPipeline();
    ASSERT_TRUE(pm.Run(&prog, &ctx).ok());
    auto rs = interp.Run(prog);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    s->records.push_back(interp.last_execution());
    s->rows.push_back((*rs)->NumRows());
  }
  // All prefetch/background work for this session must settle before the
  // catalog goes out of scope.
  if (sched != nullptr) sched->DrainBackground();
}

// Three engine sessions on three threads, sharing one SegmentSpace and one
// threaded scheduler (prefetched segment delivery + background lane): every
// session must report the per-query records of its own single-threaded,
// isolated baseline.
TEST(ConcurrentStress, EngineSessionsShareSpaceAndScheduler) {
  constexpr size_t kSessions = 3;
  std::vector<EngineStream> baselines(kSessions), streams(kSessions);
  for (size_t i = 0; i < kSessions; ++i) {
    UniformRangeGenerator gen(ValueRange(0.0, 360.0), 0.05, 400 + i);
    for (int q = 0; q < 50; ++q) baselines[i].queries.push_back(gen.Next().range);
    streams[i].queries = baselines[i].queries;
  }

  for (size_t i = 0; i < kSessions; ++i) {
    SegmentSpace space;
    RunEngineStream(&baselines[i], 500 + i, &space, nullptr);
  }

  SegmentSpace shared_space;
  TaskScheduler sched(4);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back(
        [&, i] { RunEngineStream(&streams[i], 500 + i, &shared_space, &sched); });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < kSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    ASSERT_EQ(baselines[i].records.size(), streams[i].records.size());
    for (size_t q = 0; q < baselines[i].records.size(); ++q) {
      const QueryExecution& a = baselines[i].records[q];
      const QueryExecution& b = streams[i].records[q];
      ASSERT_EQ(a.read_bytes, b.read_bytes) << "query " << q;
      ASSERT_EQ(a.write_bytes, b.write_bytes) << "query " << q;
      ASSERT_EQ(a.result_count, b.result_count) << "query " << q;
      ASSERT_EQ(a.segments_scanned, b.segments_scanned) << "query " << q;
      ASSERT_EQ(a.splits, b.splits) << "query " << q;
      ASSERT_EQ(a.selection_seconds, b.selection_seconds) << "query " << q;
      ASSERT_EQ(a.adaptation_seconds, b.adaptation_seconds) << "query " << q;
      ASSERT_EQ(baselines[i].rows[q], streams[i].rows[q]) << "query " << q;
    }
  }
}

// Long snapshot scans racing reorganization: readers pin a cover and walk
// it slowly (yielding between segments, so publishes land mid-scan) while a
// writer interleaves appends with reorganizing selects. Every scan must see
// a row count that existed at some published epoch -- initial plus a whole
// number of append batches, never a torn intermediate -- and once all sides
// join, the retire list must have drained and the space's live-segment
// accounting must match the index.
TEST(ConcurrentStress, LongScansVsReorganizeInterleavings) {
  const ValueRange domain(0, kDomainHi);
  constexpr size_t kInitial = 6000;
  constexpr size_t kBatch = 5;
  constexpr int kWriterSteps = 80;

  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(
      [] {
        Rng rng(321);
        std::vector<int32_t> d;
        for (size_t i = 0; i < kInitial; ++i) {
          d.push_back(static_cast<int32_t>(rng.NextInt(0, kDomainHi - 1)));
        }
        return d;
      }(),
      domain, std::make_unique<Apm>(2 * kKiB, 8 * kKiB), &space);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_counts{0};
  std::thread writer([&] {
    UniformRangeGenerator gen(domain, 0.1, 9);
    Rng ins(10);
    for (int step = 0; step < kWriterSteps; ++step) {
      if (step % 2 == 0) {
        std::vector<int32_t> batch;
        for (size_t i = 0; i < kBatch; ++i) {
          batch.push_back(static_cast<int32_t>(ins.NextInt(0, kDomainHi - 1)));
        }
        strat.Append(batch);
      } else {
        strat.RunRange(gen.Next().range);  // splits/merges under the pins
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      do {
        size_t slot = 0;
        const auto cover = strat.PinCover(&slot);
        uint64_t rows = 0;
        for (const SegmentInfo& seg : cover->Cover(domain)) {
          rows += strat.ScanSegment(seg, domain, nullptr).result_count;
          std::this_thread::yield();  // let publishes land mid-walk
        }
        if (rows < kInitial || (rows - kInitial) % kBatch != 0 ||
            rows > kInitial + (kWriterSteps / 2) * kBatch) {
          bad_counts.fetch_add(1);
        }
        strat.UnpinCover(slot);
      } while (!stop.load());
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_counts.load(), 0u);
  EXPECT_EQ(strat.epochs().ActivePins(), 0u);
  EXPECT_EQ(strat.PendingRetired(), 0u);
  EXPECT_EQ(strat.epochs().reclaims(), strat.epochs().retires());
  EXPECT_EQ(space.stats().segments_created - space.stats().segments_freed,
            strat.Segments().size());
}

// Concurrent logging: one atomic write per line from any worker (the TSan
// job watches the level atomics and the line assembly).
TEST(ConcurrentStress, LoggingFromManyThreads) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep the test log quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        SOCS_LOG(Info) << "worker " << t << " line " << i;  // filtered
        if (i == 99) SetLogLevel(LogLevel::kError);         // racing writers
      }
    });
  }
  for (auto& t : threads) t.join();
  SetLogLevel(before);
}

}  // namespace
}  // namespace socs
