#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/series.h"
#include "common/status.h"
#include "common/units.h"

namespace socs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("segment 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: segment 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SOCS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  StatusOr<int> bad(Status::InvalidArgument("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBelow(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= (v == -3);
    hi_hit |= (v == 3);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  Rng rng(17);
  ZipfGenerator zipf(100, 0.99);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 50000; ++i) ++hits[zipf.Next(rng)];
  EXPECT_GT(hits[0], hits[1]);
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[1], hits[20]);
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(19);
  ZipfGenerator zipf(1000, 1.0);
  int top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) top10 += (zipf.Next(rng) < 10);
  // For theta=1, n=1000 the top-10 ranks hold ~39% of the mass.
  EXPECT_GT(top10, n / 4);
  EXPECT_LT(top10, n * 3 / 5);
}

TEST(ZipfTest, AllRanksReachable) {
  Rng rng(23);
  ZipfGenerator zipf(5, 0.8);
  std::set<uint64_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(zipf.Next(rng));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ZetaTest, MatchesDirectSum) {
  EXPECT_NEAR(Zeta(1, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(Zeta(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
}

TEST(ShuffleTest, IsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  Shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(3 * kKiB), "3.0KB");
  EXPECT_EQ(FormatBytes(kMiB + kMiB / 2), "1.5MB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2.00GB");
}

TEST(MathUtilTest, MeanAndStdDev) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MathUtilTest, CumulativeSum) {
  auto cs = CumulativeSum({1, 2, 3});
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_DOUBLE_EQ(cs[2], 6.0);
}

TEST(MathUtilTest, MovingAverageSmooths) {
  std::vector<double> xs{0, 10, 0, 10, 0, 10};
  auto ma = MovingAverage(xs, 2);
  ASSERT_EQ(ma.size(), xs.size());
  for (size_t i = 1; i < ma.size(); ++i) EXPECT_NEAR(ma[i], 5.0, 5.0);
  auto ma1 = MovingAverage(xs, 1);
  EXPECT_EQ(ma1, xs);
}

TEST(ResultTableTest, AlignedPrint) {
  ResultTable t("demo", {"a", "long_column", "c"});
  t.AddRow(1, "x", 2.5);
  t.AddRow(100, "yy", 3.25);
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("long_column"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ResultTableTest, CsvOutput) {
  ResultTable t("csv", {"x", "y"});
  t.AddRow(1, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("x,y\n1,2\n"), std::string::npos);
}

TEST(ResultTableTest, FormatNumberCompact) {
  EXPECT_EQ(FormatNumber(42.0), "42");
  EXPECT_EQ(FormatNumber(0.125), "0.125");
}

}  // namespace
}  // namespace socs
