#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/secondary_store.h"
#include "storage/segment_space.h"

namespace socs {
namespace {

TEST(SecondaryStoreTest, CreateReadFree) {
  SecondaryStore store;
  std::vector<int32_t> v{1, 2, 3};
  SegmentId id = store.CreateTyped(v);
  EXPECT_NE(id, kInvalidSegment);
  EXPECT_TRUE(store.Contains(id));
  EXPECT_EQ(store.LogicalSizeOf(id), 12u);
  auto span = store.ReadTyped<int32_t>(id);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[1], 2);
  EXPECT_EQ(store.total_logical_bytes(), 12u);
  store.Free(id);
  EXPECT_FALSE(store.Contains(id));
  EXPECT_EQ(store.total_logical_bytes(), 0u);
}

TEST(SecondaryStoreTest, IdsAreUnique) {
  SecondaryStore store;
  std::vector<int32_t> v{1};
  SegmentId a = store.CreateTyped(v);
  store.Free(a);
  SegmentId b = store.CreateTyped(v);
  EXPECT_NE(a, b);  // ids are never recycled
}

TEST(SecondaryStoreTest, EmptySegmentAllowed) {
  SecondaryStore store;
  std::vector<double> v;
  SegmentId id = store.CreateTyped(v);
  EXPECT_EQ(store.LogicalSizeOf(id), 0u);
  EXPECT_EQ(store.ReadTyped<double>(id).size(), 0u);
}

TEST(BufferPoolTest, UnboundedNeverEvicts) {
  BufferPool pool(0);
  for (SegmentId id = 1; id <= 100; ++id) EXPECT_FALSE(pool.Touch(id, 1000));
  EXPECT_EQ(pool.resident_bytes(), 100000u);
  EXPECT_EQ(pool.evictions(), 0u);
  EXPECT_TRUE(pool.Touch(1, 1000));  // hit
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(3000);
  pool.Touch(1, 1000);
  pool.Touch(2, 1000);
  pool.Touch(3, 1000);
  EXPECT_TRUE(pool.IsResident(1));
  pool.Touch(1, 1000);     // 1 becomes hottest; LRU order: 2, 3, 1
  pool.Touch(4, 1000);     // evicts 2
  EXPECT_FALSE(pool.IsResident(2));
  EXPECT_TRUE(pool.IsResident(3));
  EXPECT_TRUE(pool.IsResident(1));
  EXPECT_EQ(pool.evictions(), 1u);
}

TEST(BufferPoolTest, OversizedSegmentStreamsThrough) {
  BufferPool pool(2000);
  pool.Touch(1, 1000);
  pool.Touch(2, 1000);
  EXPECT_FALSE(pool.Touch(3, 5000));  // larger than capacity: never admitted
  EXPECT_TRUE(pool.IsResident(1));    // resident set undisturbed
  EXPECT_TRUE(pool.IsResident(2));
  EXPECT_FALSE(pool.IsResident(3));
  EXPECT_FALSE(pool.Touch(3, 5000));  // still a miss
}

TEST(BufferPoolTest, DropRemovesResident) {
  BufferPool pool(0);
  pool.Touch(1, 500);
  pool.Drop(1);
  EXPECT_FALSE(pool.IsResident(1));
  EXPECT_EQ(pool.resident_bytes(), 0u);
  pool.Drop(99);  // unknown id is a no-op
}

TEST(SegmentSpaceTest, CreateChargesWrites) {
  SegmentSpace space;
  IoCost cost;
  std::vector<int32_t> v(256, 7);
  SegmentId id = space.Create(v, &cost);
  EXPECT_EQ(cost.bytes, 1024u);
  EXPECT_GT(cost.seconds, 0.0);
  EXPECT_EQ(space.stats().mem_write_bytes, 1024u);
  EXPECT_EQ(space.stats().segments_created, 1u);
  EXPECT_EQ(space.LogicalSizeOf(id), 1024u);
}

TEST(SegmentSpaceTest, ScanHitChargesMemoryOnly) {
  SegmentSpace space;  // unbounded pool: creation makes it resident
  IoCost create_cost;
  std::vector<int32_t> v(256, 7);
  SegmentId id = space.Create(v, &create_cost);
  IoCost scan_cost;
  auto span = space.Scan<int32_t>(id, &scan_cost);
  EXPECT_EQ(span.size(), 256u);
  EXPECT_EQ(space.stats().mem_read_bytes, 1024u);
  EXPECT_EQ(space.stats().disk_read_bytes, 0u);  // pool hit
}

TEST(SegmentSpaceTest, ScanMissChargesDisk) {
  SegmentSpace space(CostParams{}, 512);  // tiny pool
  IoCost c;
  std::vector<int32_t> a(256, 1), b(256, 2);
  SegmentId ia = space.Create(a, &c);
  SegmentId ib = space.Create(b, &c);  // evicts a (pool = 512B, each = 1KB)
  IoCost scan;
  space.Scan<int32_t>(ia, &scan);
  EXPECT_GT(space.stats().disk_read_bytes, 0u);
  const double disk_scan_seconds = scan.seconds;
  IoCost scan2;
  space.Scan<int32_t>(ia, &scan2);  // now resident? still oversized pool: miss
  EXPECT_GT(disk_scan_seconds, 0.0);
  (void)ib;
}

TEST(SegmentSpaceTest, DiskSlowerThanMemory) {
  CostParams p;
  CostModel m(p);
  EXPECT_GT(m.DiskRead(kMiB), m.MemRead(kMiB));
  EXPECT_GT(m.DiskWrite(kMiB), m.MemWrite(kMiB));
}

TEST(SegmentSpaceTest, FreeUpdatesStats) {
  SegmentSpace space;
  IoCost c;
  std::vector<double> v(100, 1.0);
  SegmentId id = space.Create(v, &c);
  EXPECT_EQ(space.segment_count(), 1u);
  space.Free(id);
  EXPECT_EQ(space.segment_count(), 0u);
  EXPECT_EQ(space.stats().segments_freed, 1u);
  EXPECT_EQ(space.total_logical_bytes(), 0u);
}

TEST(SegmentSpaceTest, WriteThroughChargesDisk) {
  CostParams p;
  p.write_through = true;
  CostModel m(p);
  CostParams p2;
  CostModel m2(p2);
  EXPECT_GT(m.SegmentWrite(kMiB), m2.SegmentWrite(kMiB));
}

TEST(IoStatsTest, ArithmeticAndToString) {
  IoStats a;
  a.mem_read_bytes = 100;
  a.segments_scanned = 2;
  IoStats b;
  b.mem_read_bytes = 30;
  b.segments_scanned = 1;
  IoStats d = a - b;
  EXPECT_EQ(d.mem_read_bytes, 70u);
  EXPECT_EQ(d.segments_scanned, 1u);
  d += b;
  EXPECT_EQ(d.mem_read_bytes, 100u);
  EXPECT_NE(a.ToString().find("mem_read"), std::string::npos);
}

}  // namespace
}  // namespace socs
