// Walkthrough of the paper's Figure 4: how the replica tree grows under
// adaptive replication. The same queries as the Figure 3 walkthrough, but
// reorganization is lazy: query results are kept as materialized replicas,
// complements stay virtual until some query needs them, and fully replicated
// parents are dropped.
#include <cstdio>

#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/apm.h"
#include "workload/range_generator.h"

namespace {

void PrintTree(const socs::ReplicaNode* n, int depth) {
  if (depth >= 0) {  // skip the sentinel itself
    std::printf("  %*s%s [%6.1f, %6.1f)  %s\n", depth * 2, "",
                n->materialized ? "MAT" : "vir", n->range.lo, n->range.hi,
                n->materialized ? socs::FormatBytes(n->count * 4).c_str()
                                : "(size estimated)");
  }
  for (const auto& c : n->children) PrintTree(c.get(), depth + 1);
}

void PrintState(const socs::AdaptiveReplication<int32_t>& column,
                const char* label) {
  std::printf("%s\n", label);
  PrintTree(column.tree().sentinel(), -1);
  const auto fp = column.Footprint();
  std::printf("  storage: %s in %llu materialized segment(s)\n\n",
              socs::FormatBytes(fp.materialized_bytes).c_str(),
              static_cast<unsigned long long>(fp.segment_count));
}

}  // namespace

int main() {
  using namespace socs;
  const ValueRange domain(0, 1000);
  std::vector<int32_t> values = MakeUniformIntColumn(10'000, 1000, 3);
  SegmentSpace space;
  AdaptiveReplication<int32_t> column(
      values, domain, std::make_unique<Apm>(4 * kKiB, 12 * kKiB), &space);

  PrintState(column, "T0: initial replica tree (the column is the root)");

  const ValueRange queries[] = {{300, 600}, {150, 320}, {620, 630},
                                {0, 300},   {600, 1000}};
  const char* notes[] = {
      "Q1 = [300,600): result kept as a replica; complements stay virtual",
      "Q2 = [150,320): hits a virtual segment -> the covering column segment\n"
      "    is scanned again (the paper's full-scan spike)",
      "Q3 = [620,630): tiny selection inside a virtual segment",
      "Q4 = [0,300): materializes the left complement",
      "Q5 = [600,1000): completes the tiling; fully replicated parents are\n"
      "    dropped (check4Drop) and the tree collapses toward a segment list",
  };
  for (int i = 0; i < 5; ++i) {
    QueryExecution ex = column.RunRange(queries[i]);
    std::printf("%s\n  -> scanned %s, %llu replica(s) created, %llu parent(s) "
                "dropped\n\n",
                notes[i], FormatBytes(ex.read_bytes).c_str(),
                static_cast<unsigned long long>(ex.replicas_created),
                static_cast<unsigned long long>(ex.segments_dropped));
    char label[16];
    std::snprintf(label, sizeof(label), "T%d:", i + 1);
    PrintState(column, label);
  }
  return 0;
}
