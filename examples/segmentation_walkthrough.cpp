// Walkthrough of the paper's Figure 3: how three queries reorganize a column
// under adaptive segmentation with the APM model.
//
//   Q1 [300,600)  splits the initial segment into three (rule 2);
//   Q2 [150,320)  splits the first sub-segment but not the second, where the
//                 selection piece is below Mmin (rule 2 not fulfilled);
//   Q3 [620,630)  has tiny selectivity; the last segment exceeds Mmax, so it
//                 is split at (an approximation of) its mean value (rule 3).
#include <cstdio>

#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "workload/range_generator.h"

namespace {

void PrintSegments(const socs::AdaptiveSegmentation<int32_t>& column,
                   const char* label) {
  std::printf("%s\n", label);
  for (const socs::SegmentInfo& s : column.Segments()) {
    const int width = static_cast<int>(s.range.Span() / 12.0) + 1;
    std::printf("  [%6.1f, %6.1f)  %7s  |%.*s|\n", s.range.lo, s.range.hi,
                socs::FormatBytes(s.count * 4).c_str(), width,
                "==========================================================="
                "=============================");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace socs;
  const ValueRange domain(0, 1000);
  // 10K uniform values over [0, 1000): a 40KB column. APM bounds 4KB / 12KB.
  std::vector<int32_t> values = MakeUniformIntColumn(10'000, 1000, 3);
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> column(
      values, domain, std::make_unique<Apm>(4 * kKiB, 12 * kKiB), &space);

  PrintSegments(column, "S0: initial state (one segment holds the column)");

  struct Step {
    ValueRange q;
    const char* note;
  };
  const Step steps[] = {
      {{300, 600}, "Q1 = [300,600): all pieces above Mmin -> split in three"},
      {{150, 320},
       "Q2 = [150,320): splits the first segment; the piece cut from the\n"
       "    second segment is below Mmin and that segment is not above Mmax"},
      {{620, 630},
       "Q3 = [620,630): tiny selection, but the last segment exceeds Mmax ->\n"
       "    split at the approximate mean value"},
  };
  int step = 1;
  for (const Step& s : steps) {
    QueryExecution ex = column.RunRange(s.q);
    std::printf("%s\n  -> scanned %s, %llu split(s), %llu result rows\n\n",
                s.note, FormatBytes(ex.read_bytes).c_str(),
                static_cast<unsigned long long>(ex.splits),
                static_cast<unsigned long long>(ex.result_count));
    char label[32];
    std::snprintf(label, sizeof(label), "S%d:", step++);
    PrintSegments(column, label);
  }

  std::printf("Note how Q2 no longer scans the last segment: it immediately\n"
              "benefits from the reorganization triggered by Q1.\n");
  return 0;
}
