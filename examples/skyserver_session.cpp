// SkyServer session (paper section 6.2 in miniature): a synthetic right-
// ascension column under a spatial-search workload, comparing a plain scan
// with an adaptively segmented column. Prints the amortization story of
// Figures 11-12: the adaptive column is slower for the first queries and
// far faster afterwards.
//
//   $ ./examples/skyserver_session [num_objects]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/math_util.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/non_segmented.h"
#include "workload/skyserver.h"

int main(int argc, char** argv) {
  using namespace socs;
  SkyServerConfig cfg;
  cfg.num_objects = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                             : 4'000'000;  // ~16MB by default
  std::printf("synthesizing ra column: %zu photo objects (%s)...\n",
              cfg.num_objects,
              FormatBytes(cfg.num_objects * sizeof(float)).c_str());
  const std::vector<float> ra = MakeRaColumn(cfg);

  // APM bounds scaled to the column (1MB/5MB at the paper's 180MB scale).
  const double scale = static_cast<double>(cfg.num_objects) / 45e6;
  const auto mb = [&](double m) {
    return static_cast<uint64_t>(m * scale * kMiB) + 1;
  };
  SegmentSpace s0, s1;
  NonSegmented<float> nosegm(ra, cfg.footprint, &s0);
  AdaptiveSegmentation<float> adaptive(
      ra, cfg.footprint, std::make_unique<Apm>(mb(1), mb(5)), &s1);

  const Workload w = MakeRandomWorkload(cfg, 200);
  std::printf("\n%6s  %16s  %16s   (simulated ms per query)\n", "query",
              "NoSegm", "APM adaptive");
  double cum0 = 0, cum1 = 0;
  int crossover = -1;
  for (size_t i = 0; i < w.size(); ++i) {
    cum0 += nosegm.RunRange(w[i].range).TotalSeconds() * 1e3;
    cum1 += adaptive.RunRange(w[i].range).TotalSeconds() * 1e3;
    if (crossover < 0 && cum1 < cum0) crossover = static_cast<int>(i + 1);
    if ((i + 1) % 25 == 0 || i == 0) {
      std::printf("%6zu  %13.1f ms  %13.1f ms   (cumulative)\n", i + 1, cum0,
                  cum1);
    }
  }
  std::printf("\nadaptive column amortized its reorganization at query %d\n",
              crossover);
  std::printf("final layout: %zu segments, meta-index %s\n",
              adaptive.Segments().size(),
              FormatBytes(adaptive.Footprint().meta_bytes).c_str());
  return 0;
}
