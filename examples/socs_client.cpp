// socs_client: the blocking command-line client of the socs SQL server.
// Reads one SQL statement per line from stdin, sends it over the wire
// protocol (src/server/wire.h) and prints the reply -- rows plus the
// per-query adaptive-work trailer the server attaches to every statement.
//
//   $ ./examples/socs_client                      # 127.0.0.1:5433
//   $ ./examples/socs_client 127.0.0.1:5433
//   $ echo "select count(*) from P where ra between 200 and 210" |
//       ./examples/socs_client
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/client.h"

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = socs::client::kDefaultPort;
  if (argc > 1) socs::client::ParseHostPort(argv[1], &host, &port);

  auto conn = socs::client::Connection::Connect(host, port);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                 conn.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "connected to %s:%u; one statement per line\n",
               host.c_str(), port);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    auto reply = conn->Execute(line);
    if (!reply.ok()) {
      std::fprintf(stderr, "connection lost: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    std::fputs(socs::server::FormatReplyForDisplay(*reply).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
