// Quickstart: self-organizing column in ~40 lines.
//
// Build a column, wrap it in an adaptive-segmentation strategy, and watch
// range queries reorganize it: reads per query shrink as the column learns
// the workload.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "workload/range_generator.h"

int main() {
  using namespace socs;

  // 1M random integers from [0, 10M): a 4MB column.
  const ValueRange domain(0, 10'000'000);
  std::vector<int32_t> values = MakeUniformIntColumn(1'000'000, 10'000'000, 42);

  // Storage substrate: unbounded buffer pool, default 2007-era cost model.
  SegmentSpace space;

  // The self-organizing column: APM model with 32KB..128KB segment bounds.
  AdaptiveSegmentation<int32_t> column(
      values, domain, std::make_unique<Apm>(32 * kKiB, 128 * kKiB), &space);

  // Fire 1% range selections at it and watch it adapt.
  UniformRangeGenerator gen(domain, /*selectivity=*/0.01, /*seed=*/7);
  std::printf("%8s %14s %12s %10s\n", "query", "reads", "segments", "splits");
  uint64_t splits = 0;
  for (int i = 1; i <= 2000; ++i) {
    QueryExecution ex = column.RunRange(gen.Next().range);
    splits += ex.splits;
    if (i <= 4 || i % 400 == 0) {
      std::printf("%8d %14s %12zu %10llu\n", i,
                  FormatBytes(ex.read_bytes).c_str(), column.Segments().size(),
                  static_cast<unsigned long long>(splits));
    }
  }

  // Results are exact: fetch the values of one more query.
  std::vector<int32_t> result;
  column.RunRange(ValueRange(5'000'000, 5'100'000), &result);
  std::printf("\nfinal query returned %zu values; the column now holds %zu "
              "segments with a %s meta-index\n",
              result.size(), column.Segments().size(),
              FormatBytes(column.Footprint().meta_bytes).c_str());
  return 0;
}
