// socs_server: serves the demo SkyServer catalog over TCP so any number of
// concurrent clients (socs_client, sql_shell --connect, or a bare netcat)
// query ONE shared self-organizing store. The `ra` column uses *deferred*
// segmentation: reorganization batches accumulate on the query path and are
// flushed by the scheduler's background lane between statements -- watch the
// maintenance ledger printed at shutdown.
//
//   $ ./examples/socs_server --port 5433 --threads 4 &
//   $ echo "select objid from P where ra between 205.1 and 205.12" |
//       ./examples/socs_client 127.0.0.1:5433
//
// Flags: --port N (default 5433; 0 = ephemeral), --threads N (execution
// subsystem, default 4), --executors N (statement executors, default 2),
// --compression (store cold segments encoded; `#compression` on any client
// connection reports the per-column codec mix), --kernels / --no-kernels
// (predicate kernels over encoded segments, default on; `#stats` trailers
// show the decode_bytes savings), --data-dir DIR (durable store: first boot
// seeds the demo catalog and mirrors it to DIR; later boots recover the
// learned layout from DIR instead of rebuilding -- see docs/ARCHITECTURE.md,
// "Durability"), --checkpoint-every N (statements between scheduled
// checkpoints, default 256 with --data-dir).
// Stops gracefully on SIGINT/SIGTERM: pending statements finish, the
// background lane drains, no reorganization batch is dropped, and with
// --data-dir a final checkpoint commits the quiesced state.
#include <sys/stat.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/apm.h"
#include "core/deferred_segmentation.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "exec/threads_flag.h"
#include "persist/bootstrap.h"
#include "persist/store.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace socs;

void BuildDemoCatalog(Catalog* cat, SegmentSpace* space) {
  Rng rng(2008);
  const size_t n = 200'000;
  std::vector<OidValue> ra;
  std::vector<double> dec;
  std::vector<int64_t> objid;
  for (size_t i = 0; i < n; ++i) {
    ra.push_back({i, rng.NextUniform(0.0, 360.0)});
    dec.push_back(rng.NextUniform(-90.0, 90.0));
    objid.push_back(static_cast<int64_t>(587722981742084097LL + i));
  }
  auto strat = std::make_unique<DeferredSegmentation<OidValue>>(
      ra, ValueRange(0.0, 360.0), std::make_unique<Apm>(64 * kKiB, 256 * kKiB),
      space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               space);
  (void)cat->AddSegmentedColumn("P", "ra", std::move(col));
  (void)cat->AddColumn("P", "dec", TypedVector::Of(dec));
  (void)cat->AddColumn("P", "objid", TypedVector::Of(objid));
}

}  // namespace

int main(int argc, char** argv) {
  // Block SIGINT/SIGTERM before any thread spawns so every thread inherits
  // the mask and sigwait below is the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  const size_t threads = ParseThreadsFlag(argc, argv, /*default_threads=*/4);
  const long port = ParseLongFlag(argc, argv, "--port", client::kDefaultPort);
  const long executors = ParseLongFlag(argc, argv, "--executors", 2);
  const long ckpt_every = ParseLongFlag(argc, argv, "--checkpoint-every", 256);
  SegmentSpace::Options sopts;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compression") == 0) sopts.compression = true;
    // Scan kernels (on by default): range predicates filter encoded
    // segments without decoding them. --no-kernels restores the
    // decode-then-filter path for A/B runs; `#stats` shows the difference
    // in decode_bytes.
    if (std::strcmp(argv[i], "--kernels") == 0) sopts.kernels = true;
    if (std::strcmp(argv[i], "--no-kernels") == 0) sopts.kernels = false;
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[i + 1];
    }
    if (std::strncmp(argv[i], "--data-dir=", 11) == 0) {
      data_dir = argv[i] + 11;
    }
  }

  Catalog cat;
  SegmentSpace space(CostParams{}, /*pool_capacity_bytes=*/0, sopts);
  TaskScheduler sched(threads);

  // --data-dir: open (or initialize) the durable store BEFORE any segment
  // exists, so the build/restore below is mirrored to disk from the first
  // materialization on.
  std::unique_ptr<persist::PersistentStore> store;
  if (!data_dir.empty()) {
    ::mkdir(data_dir.c_str(), 0755);  // fine if it already exists
    persist::PersistentStore::Options popts;
    popts.dir = data_dir;
    auto opened = persist::PersistentStore::Open(std::move(popts));
    if (!opened.ok()) {
      std::fprintf(stderr, "open --data-dir %s failed: %s\n", data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(*opened);
    space.set_durability(store.get());
  }

  if (store != nullptr && !store->image().tables.empty()) {
    const persist::RecoveryInfo& rec = store->recovery();
    std::printf("recovering from %s (generation %llu, %llu delta record(s)"
                "%s%s)...\n", data_dir.c_str(),
                static_cast<unsigned long long>(rec.generation),
                static_cast<unsigned long long>(rec.delta_records),
                rec.delta_tail_truncated ? ", torn log tail truncated" : "",
                rec.fell_back ? ", FELL BACK to an older generation" : "");
    for (const std::string& note : rec.notes) {
      std::printf("  recovery: %s\n", note.c_str());
    }
    auto report = persist::RestoreDatabase(store.get(), &space, &cat);
    if (!report.ok()) {
      std::fprintf(stderr, "restore failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %llu table(s), %llu column(s), %llu segment(s) "
                "(%llu swept)\n",
                static_cast<unsigned long long>(report->tables),
                static_cast<unsigned long long>(report->columns),
                static_cast<unsigned long long>(report->segments_restored),
                static_cast<unsigned long long>(report->segments_swept));
  } else {
    std::printf("building demo catalog P(ra deferred-segmented, dec, objid), "
                "200K rows (exec threads: %zu)...\n", threads);
    BuildDemoCatalog(&cat, &space);
    if (store != nullptr) {
      // Commit the freshly built catalog so a crash before the first
      // scheduled checkpoint still recovers a complete database.
      if (auto gen = persist::CheckpointNow(store.get(), cat); !gen.ok()) {
        std::fprintf(stderr, "initial checkpoint failed: %s\n",
                     gen.status().ToString().c_str());
        return 1;
      }
    }
  }

  server::SqlServer::Options opts;
  opts.port = static_cast<uint16_t>(port);
  opts.executors = static_cast<size_t>(executors > 0 ? executors : 2);
  opts.persist = store.get();
  opts.checkpoint_every =
      store != nullptr && ckpt_every > 0 ? static_cast<uint64_t>(ckpt_every)
                                         : 0;
  server::SqlServer srv(&cat, &sched, opts);
  if (Status st = srv.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u (%zu statement executor(s)); "
              "Ctrl-C stops gracefully\n", srv.port(), opts.executors);
  std::fflush(stdout);

  // Block until SIGINT/SIGTERM, then stop gracefully.
  int sig = 0;
  sigwait(&set, &sig);

  std::printf("\nsignal %d: stopping...\n", sig);
  srv.Stop();
  const auto ledger = srv.Ledger();
  std::printf("served %llu session(s), %llu statement(s)\n",
              static_cast<unsigned long long>(srv.sessions_accepted()),
              static_cast<unsigned long long>(srv.statements_executed()));
  std::printf("background maintenance: %llu idle point(s), %llu pass(es) run, "
              "%llu skipped by the load watermark; %llu split(s) done off the "
              "query path; pending columns after stop: %llu\n",
              static_cast<unsigned long long>(ledger.schedules),
              static_cast<unsigned long long>(ledger.runs),
              static_cast<unsigned long long>(ledger.skips),
              static_cast<unsigned long long>(ledger.background_total.splits),
              static_cast<unsigned long long>(ledger.columns_with_pending_work));
  if (store != nullptr) {
    const persist::PersistentStore::Stats ps = store->stats();
    std::printf("durable store: generation %llu, %llu live segment(s), "
                "%llu live byte(s), %llu dead byte(s); health: %s\n",
                static_cast<unsigned long long>(ps.generation),
                static_cast<unsigned long long>(ps.live_segments),
                static_cast<unsigned long long>(ps.live_payload_bytes),
                static_cast<unsigned long long>(ps.dead_payload_bytes),
                store->health().ok() ? "ok"
                                     : store->health().ToString().c_str());
  }
  return 0;
}
