// SQL shell over the full software stack: SQL -> MAL plan -> tactical
// optimizer (segment optimizer + dead code elimination) -> interpreter.
// The demo catalog is a mini SkyServer photo-object table P(ra, dec, objid)
// whose `ra` column is under adaptive-segmentation management, so repeated
// range queries visibly reorganize it (the paper's section 3.1 pipeline).
//
//   $ ./examples/sql_shell                # run the scripted demo
//   $ ./examples/sql_shell --threads 4    # parallel scan fan-out + background
//                                         # reorganization lane
//   $ echo "select objid from P where ra between 205.1 and 205.12" |
//       ./examples/sql_shell -            # read queries from stdin
//   $ ./examples/sql_shell --connect 127.0.0.1:5433
//                                         # drive a running socs_server
//                                         # instead of the in-process engine
//   $ ./examples/sql_shell --data-dir /tmp/socs
//                                         # durable mode: the learned layout
//                                         # survives across runs (first run
//                                         # seeds the demo, later runs
//                                         # recover it and keep adapting)
//
// --threads N (default 1) sizes the execution subsystem: segment deliveries
// fan out across N workers and deferred reorganization runs on the
// scheduler's background lane. The reported per-query numbers are
// byte-identical at any N.
//
// --connect host:port turns the shell into a thin client of the SQL server:
// statements go over the wire protocol through the same socs::client
// library socs_client uses; the demo script (or stdin with `-`) is replayed
// against the server's shared store.
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "engine/mal_interpreter.h"
#include "engine/optimizer.h"
#include "exec/task_scheduler.h"
#include "exec/threads_flag.h"
#include "persist/bootstrap.h"
#include "persist/store.h"
#include "server/client.h"
#include "sql/compiler.h"
#include "sql/parser.h"

namespace {

using namespace socs;

void BuildDemoCatalog(Catalog* cat, SegmentSpace* space) {
  Rng rng(2008);
  const size_t n = 200'000;
  std::vector<OidValue> ra;
  std::vector<double> dec;
  std::vector<int64_t> objid;
  for (size_t i = 0; i < n; ++i) {
    ra.push_back({i, rng.NextUniform(0.0, 360.0)});
    dec.push_back(rng.NextUniform(-90.0, 90.0));
    objid.push_back(static_cast<int64_t>(587722981742084097LL + i));
  }
  auto strat = std::make_unique<AdaptiveSegmentation<OidValue>>(
      ra, ValueRange(0.0, 360.0), std::make_unique<Apm>(64 * kKiB, 256 * kKiB),
      space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               space);
  (void)cat->AddSegmentedColumn("P", "ra", std::move(col));
  (void)cat->AddColumn("P", "dec", TypedVector::Of(dec));
  (void)cat->AddColumn("P", "objid", TypedVector::Of(objid));
}

/// The scripted demo, shared by the in-process run and the --connect
/// replay: the paper's example query, repeats that trigger and then profit
/// from reorganization, plus an INSERT riding the write path. `verbose`
/// (in-process only) prints the MAL plans around the statement.
struct DemoStep {
  const char* sql;
  bool verbose;
};
constexpr DemoStep kDemoScript[] = {
    {"select objid from P where ra between 205.1 and 205.12", true},
    {"select count(*) from P where ra between 200 and 210", false},
    {"select objid, dec from P where ra between 204 and 206 and "
     "dec between -10 and 10",
     false},
    {"select objid from P where ra between 205.1 and 205.12", true},
    {"insert into P (ra, dec, objid) values (205.11, 0.5, 999999999)", true},
    {"select objid from P where ra between 205.1 and 205.12", false},
};

void RunQuery(const std::string& text, Catalog* cat, TaskScheduler* sched,
              bool verbose) {
  std::printf("sql> %s\n", text.c_str());
  auto stmt = sql::ParseStatement(text);
  if (!stmt.ok()) {
    std::printf("  parse error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  auto prog = sql::Compile(*stmt, *cat);
  if (!prog.ok()) {
    std::printf("  compile error: %s\n", prog.status().ToString().c_str());
    return;
  }
  if (verbose) {
    std::printf("-- unoptimized MAL plan:\n%s", prog->ToString().c_str());
  }
  OptContext ctx;
  ctx.catalog = cat;
  PassManager pm = MakeDefaultPipeline();
  if (Status st = pm.Run(&prog.value(), &ctx); !st.ok()) {
    std::printf("  optimizer error: %s\n", st.ToString().c_str());
    return;
  }
  if (verbose) {
    std::printf("-- after tactical optimization (segment optimizer + DCE):\n%s",
                prog->ToString().c_str());
    if (ctx.estimated_scan_bytes > 0) {
      std::printf("-- optimizer scan estimate: %s\n",
                  FormatBytes(ctx.estimated_scan_bytes).c_str());
    }
  }
  MalInterpreter interp(cat);
  interp.set_exec(sched);
  auto rs = interp.Run(*prog);
  if (!rs.ok()) {
    std::printf("  runtime error: %s\n", rs.status().ToString().c_str());
    return;
  }
  std::printf("-- %llu row(s)", static_cast<unsigned long long>((*rs)->NumRows()));
  if (!(*rs)->cols.empty() && (*rs)->NumRows() > 0) {
    std::printf("; first rows:");
    const size_t show = std::min<size_t>(3, (*rs)->NumRows());
    for (size_t r = 0; r < show; ++r) {
      std::printf(" (");
      for (size_t c = 0; c < (*rs)->cols.size(); ++c) {
        std::printf("%s%.6g", c ? ", " : "",
                    (*rs)->cols[c].bat->tail().DoubleAt(r));
      }
      std::printf(")");
    }
  }
  const auto& exec = interp.last_execution();
  std::printf("\n-- adaptive work: %llu split(s), %s scanned, %s rewritten\n\n",
              static_cast<unsigned long long>(exec.splits),
              FormatBytes(exec.read_bytes).c_str(),
              FormatBytes(exec.write_bytes).c_str());
}

/// The --connect client mode: every statement rides the wire protocol to a
/// running socs_server (shared store, remote adaptive work in the trailer).
int RunConnected(const std::string& target, bool from_stdin) {
  std::string host = "127.0.0.1";
  uint16_t port = client::kDefaultPort;
  client::ParseHostPort(target, &host, &port);
  auto conn = client::Connection::Connect(host, port);
  if (!conn.ok()) {
    std::printf("connect %s:%u failed: %s\n", host.c_str(), port,
                conn.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to socs_server at %s:%u\n\n", host.c_str(), port);
  const auto run = [&](const std::string& text) -> bool {
    std::printf("sql> %s\n", text.c_str());
    auto reply = conn->Execute(text);
    if (!reply.ok()) {
      std::printf("connection lost: %s\n", reply.status().ToString().c_str());
      return false;
    }
    std::fputs(server::FormatReplyForDisplay(*reply).c_str(), stdout);
    std::printf("\n");
    return true;
  };
  if (from_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!run(line)) return 1;
    }
    return 0;
  }
  // The scripted demo, replayed against the server's shared store.
  for (const DemoStep& step : kDemoScript) {
    if (!run(step.sql)) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t threads = ParseThreadsFlag(argc, argv);
  bool from_stdin = false;
  bool compression = false;
  bool kernels = true;
  std::string connect_target;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-") == 0) from_stdin = true;
    if (std::strcmp(argv[i], "--compression") == 0) compression = true;
    if (std::strcmp(argv[i], "--kernels") == 0) kernels = true;
    if (std::strcmp(argv[i], "--no-kernels") == 0) kernels = false;
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_target = argv[i + 1];
    }
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect_target = argv[i] + 10;
    }
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[i + 1];
    }
    if (std::strncmp(argv[i], "--data-dir=", 11) == 0) {
      data_dir = argv[i] + 11;
    }
  }
  if (!connect_target.empty()) return RunConnected(connect_target, from_stdin);

  Catalog cat;
  SegmentSpace::Options sopts;
  // --compression: store cold segments encoded (see docs/ARCHITECTURE.md,
  // "Storage encodings"); scans still deliver logical values.
  // --no-kernels: disable the predicate kernels that filter encoded
  // segments without decoding them (docs/ARCHITECTURE.md, "Scan kernels").
  sopts.compression = compression;
  sopts.kernels = kernels;
  SegmentSpace space(CostParams{}, /*pool_capacity_bytes=*/0, sopts);
  // threads > 1: segment deliveries prefetch across the pool and deferred
  // reorganization rides the background lane; the default stays the
  // byte-reproducible sequential engine.
  TaskScheduler sched(threads);
  TaskScheduler* sp = threads > 1 ? &sched : nullptr;

  // --data-dir: attach the durable store before any segment materializes, so
  // the build (or restore) below is mirrored to disk from the start; a final
  // checkpoint on exit commits whatever this run's queries learned.
  std::unique_ptr<persist::PersistentStore> store;
  if (!data_dir.empty()) {
    ::mkdir(data_dir.c_str(), 0755);  // fine if it already exists
    persist::PersistentStore::Options popts;
    popts.dir = data_dir;
    auto opened = persist::PersistentStore::Open(std::move(popts));
    if (!opened.ok()) {
      std::printf("open --data-dir %s failed: %s\n", data_dir.c_str(),
                  opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(*opened);
    space.set_durability(store.get());
  }
  const auto commit = [&]() -> int {
    if (sp != nullptr) sp->DrainBackground();
    if (store == nullptr) return 0;
    auto gen = persist::CheckpointNow(store.get(), cat);
    if (!gen.ok()) {
      std::printf("final checkpoint failed: %s\n",
                  gen.status().ToString().c_str());
      return 1;
    }
    std::printf("committed checkpoint generation %llu to %s\n",
                static_cast<unsigned long long>(*gen), data_dir.c_str());
    return 0;
  };

  if (store != nullptr && !store->image().tables.empty()) {
    std::printf("recovering from %s (generation %llu)...\n", data_dir.c_str(),
                static_cast<unsigned long long>(store->recovery().generation));
    auto report = persist::RestoreDatabase(store.get(), &space, &cat);
    if (!report.ok()) {
      std::printf("restore failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("restored %llu column(s), %llu segment(s); the layout below "
                "starts where the last run left off\n\n",
                static_cast<unsigned long long>(report->columns),
                static_cast<unsigned long long>(report->segments_restored));
  } else {
    std::printf("building demo catalog P(ra segmented, dec, objid), 200K rows"
                " (exec threads: %zu)...\n\n", threads);
    BuildDemoCatalog(&cat, &space);
  }

  if (from_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunQuery(line, &cat, sp, /*verbose=*/true);
    }
    return commit();
  }

  // The scripted demo (kDemoScript, shared with the --connect replay).
  for (size_t i = 0; i < std::size(kDemoScript); ++i) {
    RunQuery(kDemoScript[i].sql, &cat, sp, kDemoScript[i].verbose);
    if (i == 3) {
      std::printf("note: the second run of the same query iterates far "
                  "smaller segments.\n\n");
    }
  }
  std::printf("note: the inserted row went through bpm.append (an adaptation "
              "side effect)\nand is already visible to the segment scan.\n");
  if (sp != nullptr) {
    sp->DrainBackground();
    std::printf("background maintenance passes run off the query path: %llu\n",
                static_cast<unsigned long long>(sp->background_runs()));
  }
  return commit();
}
