// Figures 11 and 12: cumulative and moving-average query time for the
// random SkyServer workload (200 queries over the whole footprint).
#include "bench_sky_driver.inc"

int main(int argc, char** argv) {
  using namespace socs::bench;
  const auto cfg = SkyConfig();
  PrintSkyTimeFigures("random", socs::MakeRandomWorkload(cfg, 200), "11", "12",
                      ThreadsFlag(argc, argv));
  std::cout << "Expected shape (paper): adaptive schemes start slower (re-\n"
               "organization) but cross below NoSegm within a few tens of\n"
               "queries; APM 1-25 amortizes first.\n";
  return 0;
}
