// Shared infrastructure for the figure/table-regeneration benches.
//
// Simulation setting (paper section 6.1): a column of 100K int32 values from
// a 1M-value integer domain (400KB), 10K range selections, selectivity 0.1 /
// 0.01, uniform or Zipf query placement, APM bounds 3KB / 12KB.
//
// SkyServer setting (paper section 6.2): a synthetic `ra` float column of
// 45M values (~180MB), 200-query workloads (random / skewed / changing),
// APM bounds 1MB / {5MB, 25MB}, and GD. Simulated milliseconds come from the
// calibrated cost model; tuple reconstruction for the projected objid column
// is charged at gather bandwidth (the paper's plans join candidates with the
// objid column, Fig. 1).
#ifndef SOCS_BENCH_BENCH_COMMON_H_
#define SOCS_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/gaussian_dice.h"
#include "core/non_segmented.h"
#include "core/run_stats.h"
#include "exec/thread_pool.h"
#include "exec/threads_flag.h"
#include "workload/range_generator.h"
#include "workload/skyserver.h"

namespace socs::bench {

// --- shared driver flags -----------------------------------------------------

/// `--threads N` / `--threads=N` for the bench drivers (the shared parser
/// lives in exec/threads_flag.h; sql_shell uses it too).
inline size_t ThreadsFlag(int argc, char** argv, size_t default_threads = 1) {
  return ParseThreadsFlag(argc, argv, default_threads);
}

// --- simulation setting ------------------------------------------------------

inline constexpr size_t kSimValues = 100'000;
inline constexpr int32_t kSimDomain = 1'000'000;
inline constexpr size_t kSimQueries = 10'000;
inline constexpr uint64_t kSimApmMin = 3 * kKiB;
inline constexpr uint64_t kSimApmMax = 12 * kKiB;
inline constexpr uint64_t kSimSeed = 2008;

enum class Scheme { kGdSegm, kGdRepl, kApmSegm, kApmRepl };

inline const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kGdSegm: return "GD Segm";
    case Scheme::kGdRepl: return "GD Repl";
    case Scheme::kApmSegm: return "APM Segm";
    case Scheme::kApmRepl: return "APM Repl";
  }
  return "?";
}

inline std::vector<Scheme> AllSchemes() {
  return {Scheme::kGdSegm, Scheme::kGdRepl, Scheme::kApmSegm, Scheme::kApmRepl};
}

inline std::unique_ptr<SegmentationModel> MakeSimModel(Scheme s) {
  if (s == Scheme::kGdSegm || s == Scheme::kGdRepl) {
    return std::make_unique<GaussianDice>(kSimSeed ^ 0xd1ce);
  }
  return std::make_unique<Apm>(kSimApmMin, kSimApmMax);
}

inline std::unique_ptr<AccessStrategy<int32_t>> MakeSimStrategy(
    Scheme s, const std::vector<int32_t>& data, SegmentSpace* space) {
  const ValueRange domain(0, kSimDomain);
  switch (s) {
    case Scheme::kGdSegm:
    case Scheme::kApmSegm:
      return std::make_unique<AdaptiveSegmentation<int32_t>>(
          data, domain, MakeSimModel(s), space);
    case Scheme::kGdRepl:
    case Scheme::kApmRepl:
      return std::make_unique<AdaptiveReplication<int32_t>>(
          data, domain, MakeSimModel(s), space);
  }
  return nullptr;
}

inline std::vector<int32_t> MakeSimColumn() {
  return MakeUniformIntColumn(kSimValues, kSimDomain, kSimSeed);
}

/// Uniform or Zipf placement. Zipf: theta 1 over a grid of 1000 cells,
/// contiguous rank->cell mapping, windows aligned to cell starts (hot
/// queries repeat verbatim) -- see range_generator.h and DESIGN.md.
inline std::unique_ptr<QueryGenerator> MakeSimGen(bool zipf, double selectivity) {
  const ValueRange domain(0, kSimDomain);
  if (zipf) {
    return std::make_unique<ZipfRangeGenerator>(domain, selectivity,
                                                kSimSeed + 17, 1.0, 1000,
                                                /*scramble=*/false,
                                                /*align=*/true);
  }
  return std::make_unique<UniformRangeGenerator>(domain, selectivity,
                                                 kSimSeed + 17);
}

/// Runs a workload against a strategy, recording per-query series. A
/// non-null `pool` fans each query's scan phase across the workers (the
/// recorded metrics are byte-identical either way).
template <typename T>
RunRecorder RunWorkload(AccessStrategy<T>& strat, const Workload& w,
                        ThreadPool* pool = nullptr) {
  RunRecorder rec;
  for (const RangeQuery& q : w) {
    rec.Record(strat.RunRange(q.range, nullptr, pool), strat.Footprint());
  }
  return rec;
}

/// Log-spaced sample indices in [1, n] (for the paper's log-x plots).
inline std::vector<size_t> LogSpacedIndices(size_t n, size_t per_decade = 9) {
  std::vector<size_t> out;
  double x = 1.0;
  const double step = std::pow(10.0, 1.0 / per_decade);
  while (static_cast<size_t>(x) <= n) {
    const size_t i = static_cast<size_t>(x);
    if (out.empty() || i != out.back()) out.push_back(i);
    x *= step;
  }
  if (out.back() != n) out.push_back(n);
  return out;
}

// --- SkyServer setting -------------------------------------------------------

/// Scale factor: SOCS_SKY_SCALE=0.1 shrinks the 45M-value column for quick
/// runs; the default regenerates the paper-scale experiment.
inline SkyServerConfig SkyConfig() {
  SkyServerConfig cfg;
  const char* scale_env = std::getenv("SOCS_SKY_SCALE");
  const double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  if (scale > 0 && scale < 1.0) {
    cfg.num_objects = static_cast<size_t>(cfg.num_objects * scale);
  }
  return cfg;
}

enum class SkyScheme { kNoSegm, kGd, kApm25, kApm5 };

inline const char* SkySchemeName(SkyScheme s) {
  switch (s) {
    case SkyScheme::kNoSegm: return "NoSegm";
    case SkyScheme::kGd: return "GD";
    case SkyScheme::kApm25: return "APM 1-25";
    case SkyScheme::kApm5: return "APM 1-5";
  }
  return "?";
}

inline std::vector<SkyScheme> AllSkySchemes() {
  return {SkyScheme::kNoSegm, SkyScheme::kGd, SkyScheme::kApm25,
          SkyScheme::kApm5};
}

/// APM bounds scale with the column so reduced-scale runs keep the paper's
/// segment-count geometry (1MB/5MB/25MB at full scale).
inline std::unique_ptr<AccessStrategy<float>> MakeSkyStrategy(
    SkyScheme s, const std::vector<float>& ra, const SkyServerConfig& cfg,
    SegmentSpace* space) {
  const double scale =
      static_cast<double>(ra.size()) / static_cast<double>(45'000'000);
  const auto mb = [&](double m) {
    return static_cast<uint64_t>(m * scale * kMiB) + 1;
  };
  switch (s) {
    case SkyScheme::kNoSegm:
      return std::make_unique<NonSegmented<float>>(ra, cfg.footprint, space);
    case SkyScheme::kGd:
      return std::make_unique<AdaptiveSegmentation<float>>(
          ra, cfg.footprint, std::make_unique<GaussianDice>(0xd1ce), space);
    case SkyScheme::kApm25:
      return std::make_unique<AdaptiveSegmentation<float>>(
          ra, cfg.footprint, std::make_unique<Apm>(mb(1), mb(25)), space);
    case SkyScheme::kApm5:
      return std::make_unique<AdaptiveSegmentation<float>>(
          ra, cfg.footprint, std::make_unique<Apm>(mb(1), mb(5)), space);
  }
  return nullptr;
}

struct SkyRun {
  std::vector<double> selection_ms;   // per query
  std::vector<double> adaptation_ms;  // per query
  std::vector<double> total_ms;       // selection + adaptation + reconstruction
};

/// Runs one workload, charging tuple reconstruction (objid fetch: 8B oid +
/// 8B objid per result row) at gather bandwidth on top of the strategy time.
/// A non-null `pool` parallelizes each query's scan phase.
inline SkyRun RunSkyWorkload(AccessStrategy<float>& strat, const Workload& w,
                             const CostModel& model, ThreadPool* pool = nullptr) {
  SkyRun run;
  for (const RangeQuery& q : w) {
    QueryExecution ex = strat.RunRange(q.range, nullptr, pool);
    const double reconstruct_s = model.Gather(ex.result_count * 16);
    run.selection_ms.push_back((ex.selection_seconds + reconstruct_s) * 1e3);
    run.adaptation_ms.push_back(ex.adaptation_seconds * 1e3);
    run.total_ms.push_back(run.selection_ms.back() + run.adaptation_ms.back());
  }
  return run;
}

/// Shared driver for Figs. 11-16: runs the four schemes on one workload and
/// prints cumulative time (Figs. 11/13/15) and the moving-average per-query
/// time (Figs. 12/14/16, window 20). `threads > 1` runs the scan phases on a
/// worker pool; the figures stay byte-identical, only wall time changes.
void PrintSkyTimeFigures(const std::string& workload_name, const Workload& w,
                         const char* cum_fig, const char* avg_fig,
                         size_t threads = 1);

}  // namespace socs::bench

#endif  // SOCS_BENCH_BENCH_COMMON_H_
