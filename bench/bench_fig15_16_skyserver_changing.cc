// Figures 15 and 16: cumulative and moving-average query time for the
// changing SkyServer workload (four 50-query phases with moving focus).
#include "bench_sky_driver.inc"

int main(int argc, char** argv) {
  using namespace socs::bench;
  const auto cfg = SkyConfig();
  PrintSkyTimeFigures("changing", socs::MakeChangingWorkload(cfg, 200), "15",
                      "16", ThreadsFlag(argc, argv));
  std::cout << "Expected shape (paper): shifting the point of interest at\n"
               "queries 50/100/150 triggers reorganization of untouched\n"
               "segments -- visible as temporary bumps in the moving average\n"
               "that even out soon after.\n";
  return 0;
}
