// Ablation: the tuple-reconstruction trade-off of paper section 1 -- "since
// the positional correspondence of values in multiple columns is not kept,
// operators that rely on it, e.g., tuple reconstruction, may become somewhat
// slower." We join candidate oid lists against an objid column: candidates
// in positional (ascending-oid) order, as a positional engine produces them,
// versus value-clustered order, as segments of a value-organized column
// produce them. Wall-clock, real work (no cost model).
#include <algorithm>
#include <iostream>

#include "bat/algebra.h"
#include "common/rng.h"
#include "common/series.h"
#include "common/stopwatch.h"

using namespace socs;

namespace {

double MeasureJoinSeconds(const Bat& probe, const Bat& col, int reps) {
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    auto out = algebra::Join(probe, col);
    if (!out.ok() || out->size() == 0) std::abort();
  }
  return sw.ElapsedSeconds() / reps;
}

}  // namespace

int main() {
  constexpr size_t kRows = 10'000'000;
  constexpr int kReps = 5;
  std::vector<int64_t> objid(kRows);
  for (size_t i = 0; i < kRows; ++i) objid[i] = 1'000'000 + static_cast<int64_t>(i);
  const Bat col = Bat::DenseTyped(TypedVector::Of(std::move(objid)));

  ResultTable table(
      "Ablation (paper 1): tuple reconstruction, positional vs value order",
      {"candidates", "positional_ms", "value_clustered_ms", "slowdown"});
  Rng rng(7);
  for (double sel : {0.001, 0.01, 0.1}) {
    const size_t n = static_cast<size_t>(kRows * sel);
    // Positional order: candidates ascend (contiguous ranges of oids).
    std::vector<Oid> ordered;
    ordered.reserve(n);
    const size_t start = rng.NextBelow(kRows - n);
    for (size_t i = 0; i < n; ++i) ordered.push_back(start + i);
    // Value-clustered order: same cardinality, oids scattered (a value-range
    // segment holds arbitrary row positions).
    std::vector<Oid> scattered;
    scattered.reserve(n);
    for (size_t i = 0; i < n; ++i) scattered.push_back(rng.NextBelow(kRows));
    std::sort(scattered.begin(), scattered.end());
    scattered.erase(std::unique(scattered.begin(), scattered.end()),
                    scattered.end());
    Shuffle(scattered, rng);

    const Bat p1 = algebra::Reverse(algebra::MarkT(Bat::OidList(ordered), 0));
    const Bat p2 = algebra::Reverse(algebra::MarkT(Bat::OidList(scattered), 0));
    const double t1 = MeasureJoinSeconds(p1, col, kReps) * 1e3;
    const double t2 = MeasureJoinSeconds(p2, col, kReps) * 1e3;
    table.AddRow(FormatNumber(sel * 100) + "% of rows", t1, t2, t2 / t1);
  }
  table.Print(std::cout);
  std::cout << "Reading: random-order gathers pay cache misses that\n"
               "sequential positional fetches avoid -- the cost the paper\n"
               "accepts in exchange for value-based segment pruning, and the\n"
               "reason its section 1 calls tuple reconstruction 'somewhat\n"
               "slower' under value-based organization.\n";
  return 0;
}
