// Table 2: segment statistics after 200 queries per SkyServer workload --
// number of segments, average size (MB), standard deviation.
// Paper values for reference:
//   Load     Scheme     Segm.#  Avg size  Deviation
//   Random   GD         31      5.6       7.9
//   Random   APM 1-25   23      7.6       7.5
//   Random   APM 1-5    62      2.8       1.3
//   Skewed   GD         100     1.7       9.9
//   Skewed   APM 1-25   6       28.9      9.6
//   Skewed   APM 1-5    10      17.4      14.5
#include <iostream>

#include "bench_common.h"
#include "common/math_util.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const SkyServerConfig cfg = SkyConfig();
  const auto ra = MakeRaColumn(cfg);
  std::cout << "SkyServer ra column: " << ra.size() << " values ("
            << FormatBytes(ra.size() * sizeof(float)) << ")\n\n";
  struct Wl {
    const char* name;
    Workload w;
  };
  const std::vector<Wl> workloads{{"Random", MakeRandomWorkload(cfg, 200)},
                                  {"Skewed", MakeSkewedWorkload(cfg, 200)},
                                  {"Changing", MakeChangingWorkload(cfg, 200)}};
  ResultTable table("Table 2: segment statistics after 200 queries",
                    {"Load", "Scheme", "Segm.#", "Avg size (MB)", "Deviation"});
  for (const Wl& wl : workloads) {
    for (SkyScheme s : {SkyScheme::kGd, SkyScheme::kApm25, SkyScheme::kApm5}) {
      SegmentSpace space;
      auto strat = MakeSkyStrategy(s, ra, cfg, &space);
      for (const RangeQuery& q : wl.w) strat->RunRange(q.range);
      std::vector<double> sizes_mb;
      for (const SegmentInfo& seg : strat->Segments()) {
        sizes_mb.push_back(static_cast<double>(seg.count * sizeof(float)) /
                           static_cast<double>(kMiB));
      }
      table.AddRow(wl.name, SkySchemeName(s), sizes_mb.size(), Mean(sizes_mb),
                   StdDev(sizes_mb));
    }
  }
  table.Print(std::cout);
  std::cout << "Expected shape (paper): APM 1-5 builds ~2-3x more (and\n"
               "smaller) segments than APM 1-25; under the skewed load APM\n"
               "splits very little while GD fragments the hot areas into\n"
               "many small segments (high deviation).\n";
  return 0;
}
