// Compression ablation: bytes-scanned vs decode-CPU, per strategy, with the
// store's segment codecs on and off (storage/segment_codec.h, the
// CompressionAdvisor's cold sweeps). The column is dictionary-friendly
// (values quantized to a coarse grid, the SkyServer calibration-grid shape),
// so cold segments encode well; hot segments stay raw.
//
// For every scheme x {uniform, Zipf} the bench runs the identical workload
// twice -- compression off, then on -- and enforces result-set identity
// (per-query counts and an order-independent value checksum) before
// reporting. Reorganization decisions are driven by *logical* geometry, so
// the structural evolution (splits/merges/replicas) must match exactly; the
// only deltas are physical pool bytes, scanned bytes, and the decode-CPU
// charge. Writes BENCH_compression.json.
//
//   $ ./bench/bench_compression            # full run (2000 queries/cell)
//   $ ./bench/bench_compression --smoke    # tiny run + the ctest assertions:
//                                          # Zipf cold-heavy >= 2x physical
//                                          # reduction, identical results
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/series.h"
#include "common/units.h"

using namespace socs;
using namespace socs::bench;

namespace {

/// The simulation column quantized to a 4096-wide grid: ~245 distinct
/// values, so kDict encodes at one index byte per element (~4x) while the
/// value *distribution* (uniform over the domain) and every range-query
/// result keep the original shape.
std::vector<int32_t> MakeQuantizedColumn() {
  std::vector<int32_t> data = MakeSimColumn();
  for (int32_t& v : data) v -= v % 4096;
  return data;
}

struct AblationRun {
  QueryExecution ex;                  // summed execution records
  IoStats stats;                      // store-side counters (physical bytes)
  uint64_t logical_bytes = 0;         // live logical bytes at end of run
  uint64_t physical_bytes = 0;        // live physical (encoded) bytes
  uint64_t checksum = 0;              // order-independent result checksum
  std::vector<uint64_t> counts;       // per-query result counts
};

AblationRun RunCell(Scheme s, bool zipf, bool compression,
                    const std::vector<int32_t>& data, size_t queries) {
  SegmentSpace::Options sopts;
  sopts.compression = compression;
  SegmentSpace space(CostParams{}, /*pool_capacity_bytes=*/0, sopts);
  auto strat = MakeSimStrategy(s, data, &space);
  auto gen = MakeSimGen(zipf, /*selectivity=*/0.01);
  AblationRun run;
  run.counts.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    const RangeQuery q = gen->Next();
    std::vector<int32_t> result;
    run.ex += strat->RunRange(q.range, &result);
    run.counts.push_back(result.size());
    for (int32_t v : result) {
      run.checksum += static_cast<uint64_t>(static_cast<uint32_t>(v));
    }
  }
  run.stats = space.stats();
  run.logical_bytes = space.total_logical_bytes();
  run.physical_bytes = space.total_physical_bytes();
  return run;
}

/// The on-run must be indistinguishable from the off-run at the result and
/// structure level -- encoding is storage-only.
void CheckIdentity(const AblationRun& off, const AblationRun& on,
                   const char* cell) {
  SOCS_CHECK_EQ(off.ex.result_count, on.ex.result_count) << cell;
  SOCS_CHECK_EQ(off.checksum, on.checksum) << cell;
  SOCS_CHECK(off.counts == on.counts) << cell << ": per-query counts differ";
  SOCS_CHECK_EQ(off.ex.splits, on.ex.splits) << cell;
  SOCS_CHECK_EQ(off.ex.merges, on.ex.merges) << cell;
  SOCS_CHECK_EQ(off.ex.replicas_created, on.ex.replicas_created) << cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t queries = smoke ? 400 : 2000;
  const auto data = MakeQuantizedColumn();

  std::cout << "column: " << data.size() << " int32 values quantized to a "
            << "4096-grid (" << FormatBytes(data.size() * sizeof(int32_t))
            << " logical), " << queries
            << " selections per cell, selectivity 0.01\n\n";

  std::ofstream json("BENCH_compression.json");
  json << "{\n  \"queries\": " << queries << ",\n"
       << "  \"column_bytes\": " << data.size() * sizeof(int32_t) << ",\n"
       << "  \"cells\": [\n";
  bool first_cell = true;

  for (const bool zipf : {false, true}) {
    ResultTable table(std::string(zipf ? "Zipf" : "Uniform") +
                          " workload: compression off vs on "
                          "(result identity enforced per row)",
                      {"scheme", "phys_off", "phys_on", "ratio", "scan_off",
                       "scan_on", "decode", "recompr", "sel_off_s", "sel_on_s"});
    for (const Scheme s : AllSchemes()) {
      const AblationRun off = RunCell(s, zipf, /*compression=*/false, data,
                                      queries);
      const AblationRun on = RunCell(s, zipf, /*compression=*/true, data,
                                     queries);
      const std::string cell = std::string(SchemeName(s)) +
                               (zipf ? " / zipf" : " / uniform");
      CheckIdentity(off, on, cell.c_str());
      SOCS_CHECK_EQ(off.physical_bytes, off.logical_bytes)
          << cell << ": off-run stored non-raw segments";
      const double ratio =
          on.physical_bytes == 0
              ? 1.0
              : static_cast<double>(off.physical_bytes) /
                    static_cast<double>(on.physical_bytes);
      // The acceptance bar: a cold-heavy Zipf workload must at least halve
      // the physical pool bytes (cold segments dict-encode ~4x; only the
      // hot set stays raw).
      if (zipf) {
        SOCS_CHECK_GE(off.physical_bytes, 2 * on.physical_bytes)
            << cell << ": expected >= 2x physical reduction";
      }
      table.AddRow(SchemeName(s), FormatBytes(off.physical_bytes),
                   FormatBytes(on.physical_bytes), FormatNumber(ratio),
                   FormatBytes(off.ex.read_bytes),
                   FormatBytes(on.ex.read_bytes),
                   FormatBytes(on.stats.decode_bytes),
                   on.stats.segments_recompressed,
                   FormatNumber(off.ex.selection_seconds),
                   FormatNumber(on.ex.selection_seconds));
      json << (first_cell ? "" : ",\n") << "    {\"scheme\": \""
           << SchemeName(s) << "\", \"workload\": \""
           << (zipf ? "zipf" : "uniform") << "\""
           << ", \"logical_bytes\": " << off.logical_bytes
           << ", \"physical_off\": " << off.physical_bytes
           << ", \"physical_on\": " << on.physical_bytes
           << ", \"ratio\": " << ratio
           << ", \"scan_bytes_off\": " << off.ex.read_bytes
           << ", \"scan_bytes_on\": " << on.ex.read_bytes
           << ", \"decode_bytes\": " << on.stats.decode_bytes
           << ", \"segments_recompressed\": " << on.stats.segments_recompressed
           << ", \"selection_s_off\": " << off.ex.selection_seconds
           << ", \"selection_s_on\": " << on.ex.selection_seconds << "}";
      first_cell = false;
    }
    table.Print(std::cout);
  }

  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_compression.json\n";
  std::cout << "note: scan bytes shrink where cold segments are read encoded; "
               "the decode-CPU\ncharge (cost-model Decode term) is the "
               "sel_on_s - sel_off_s gap.\n";
  return 0;
}
