// Scan-kernel ablation: predicate-on-compressed-data selection vs
// decode-then-filter, per strategy, compression ON in both cells
// (storage/scan_kernels.h; the `kernels` toggle on SegmentSpace::Options).
// The column is dictionary-friendly (values quantized to a coarse grid), so
// cold segments encode well and the kernels have encoded payloads to chew.
//
// For every scheme x {uniform, Zipf} the bench runs the identical workload
// twice -- kernels off (the decode-then-filter differential oracle), then on
// -- and enforces result-set identity (per-query counts and an
// order-independent value checksum) plus identical structural evolution
// before reporting. The deltas are the decode-CPU charge (decode_bytes: the
// kernels inflate only qualifying bytes) and the kernel_scans counter.
// Writes BENCH_scan_kernels.json.
//
//   $ ./bench/bench_scan_kernels           # full run (2000 queries/cell)
//   $ ./bench/bench_scan_kernels --smoke   # tiny run + the ctest assertions:
//                                          # identical results, >= 3x
//                                          # decode_bytes reduction on the
//                                          # Zipf (cold-heavy) cells
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/series.h"
#include "common/units.h"

using namespace socs;
using namespace socs::bench;

namespace {

/// The simulation column quantized to a 4096-wide grid (the SkyServer
/// calibration-grid shape): ~245 distinct values, so cold segments dict- or
/// run-length-encode while every range-query result keeps its shape.
std::vector<int32_t> MakeQuantizedColumn() {
  std::vector<int32_t> data = MakeSimColumn();
  for (int32_t& v : data) v -= v % 4096;
  return data;
}

struct AblationRun {
  QueryExecution ex;                  // summed execution records
  IoStats stats;                      // store-side counters
  uint64_t checksum = 0;              // order-independent result checksum
  std::vector<uint64_t> counts;       // per-query result counts
};

AblationRun RunCell(Scheme s, bool zipf, bool kernels,
                    const std::vector<int32_t>& data, size_t queries) {
  SegmentSpace::Options sopts;
  sopts.compression = true;
  sopts.kernels = kernels;
  // Pin the advisor's kernel heat tolerance to 0 so both cells re-encode
  // the identical segment population and the ablation isolates the kernels'
  // filter-on-encoded effect. The tolerance is a separate policy (encode
  // mildly-warm segments, trading kernel decode CPU for pool bytes); left
  // at its default it would have the ON cell encode more segments than the
  // OFF cell and muddy the decode-bytes comparison.
  sopts.kernel_heat_tolerance = 0;
  SegmentSpace space(CostParams{}, /*pool_capacity_bytes=*/0, sopts);
  auto strat = MakeSimStrategy(s, data, &space);
  auto gen = MakeSimGen(zipf, /*selectivity=*/0.01);
  AblationRun run;
  run.counts.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    const RangeQuery q = gen->Next();
    std::vector<int32_t> result;
    run.ex += strat->RunRange(q.range, &result);
    run.counts.push_back(result.size());
    for (int32_t v : result) {
      run.checksum += static_cast<uint64_t>(static_cast<uint32_t>(v));
    }
  }
  run.stats = space.stats();
  return run;
}

/// The kernels-on run must be indistinguishable from the oracle at the
/// result and structure level -- kernels change how encoded segments are
/// filtered, never what a query returns or how the column reorganizes.
void CheckIdentity(const AblationRun& off, const AblationRun& on,
                   const char* cell) {
  SOCS_CHECK_EQ(off.ex.result_count, on.ex.result_count) << cell;
  SOCS_CHECK_EQ(off.checksum, on.checksum) << cell;
  SOCS_CHECK(off.counts == on.counts) << cell << ": per-query counts differ";
  SOCS_CHECK_EQ(off.ex.splits, on.ex.splits) << cell;
  SOCS_CHECK_EQ(off.ex.merges, on.ex.merges) << cell;
  SOCS_CHECK_EQ(off.ex.replicas_created, on.ex.replicas_created) << cell;
  SOCS_CHECK_EQ(off.stats.kernel_scans, 0u) << cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t queries = smoke ? 400 : 2000;
  const auto data = MakeQuantizedColumn();

  std::cout << "column: " << data.size() << " int32 values quantized to a "
            << "4096-grid (" << FormatBytes(data.size() * sizeof(int32_t))
            << " logical), " << queries
            << " selections per cell, selectivity 0.01, compression ON in "
            << "every cell\n\n";

  std::ofstream json("BENCH_scan_kernels.json");
  json << "{\n  \"queries\": " << queries << ",\n"
       << "  \"column_bytes\": " << data.size() * sizeof(int32_t) << ",\n"
       << "  \"cells\": [\n";
  bool first_cell = true;

  for (const bool zipf : {false, true}) {
    ResultTable table(std::string(zipf ? "Zipf" : "Uniform") +
                          " workload: kernels off (decode-then-filter) vs on "
                          "(result identity enforced per row)",
                      {"scheme", "decode_off", "decode_on", "ratio",
                       "kern_scans", "scan_off", "scan_on", "sel_off_s",
                       "sel_on_s"});
    for (const Scheme s : AllSchemes()) {
      const AblationRun off = RunCell(s, zipf, /*kernels=*/false, data,
                                      queries);
      const AblationRun on = RunCell(s, zipf, /*kernels=*/true, data,
                                     queries);
      const std::string cell = std::string(SchemeName(s)) +
                               (zipf ? " / zipf" : " / uniform");
      CheckIdentity(off, on, cell.c_str());
      const uint64_t decode_off = off.stats.decode_bytes;
      const uint64_t decode_on = on.stats.decode_bytes;
      const double ratio =
          decode_on == 0 ? 0.0
                         : static_cast<double>(decode_off) /
                               static_cast<double>(decode_on);
      // The acceptance bar: on the cold-heavy Zipf cells the kernels must
      // cut the decode-CPU charge at least 3x -- tail queries land on big
      // still-encoded segments where decode-then-filter inflates the whole
      // payload and the kernels inflate only the qualifying slice.
      if (zipf) {
        SOCS_CHECK_GT(decode_off, 0u) << cell;
        SOCS_CHECK_GE(decode_off, 3 * decode_on)
            << cell << ": expected >= 3x decode reduction";
        SOCS_CHECK_GT(on.stats.kernel_scans, 0u) << cell;
      }
      table.AddRow(SchemeName(s), FormatBytes(decode_off),
                   FormatBytes(decode_on),
                   decode_on == 0 ? std::string("inf") : FormatNumber(ratio),
                   on.stats.kernel_scans, FormatBytes(off.ex.read_bytes),
                   FormatBytes(on.ex.read_bytes),
                   FormatNumber(off.ex.selection_seconds),
                   FormatNumber(on.ex.selection_seconds));
      json << (first_cell ? "" : ",\n") << "    {\"scheme\": \""
           << SchemeName(s) << "\", \"workload\": \""
           << (zipf ? "zipf" : "uniform") << "\""
           << ", \"decode_bytes_off\": " << decode_off
           << ", \"decode_bytes_on\": " << decode_on
           << ", \"kernel_scans\": " << on.stats.kernel_scans
           << ", \"scan_bytes_off\": " << off.ex.read_bytes
           << ", \"scan_bytes_on\": " << on.ex.read_bytes
           << ", \"selection_s_off\": " << off.ex.selection_seconds
           << ", \"selection_s_on\": " << on.ex.selection_seconds << "}";
      first_cell = false;
    }
    table.Print(std::cout);
  }

  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_scan_kernels.json\n";
  std::cout << "note: decode_off - decode_on is the CPU the kernels never "
               "spend; the physical\nscan bytes barely move because the "
               "encoded blob still travels through the pool.\n";
  return 0;
}
