// Figure 5: cumulative memory writes due to segment materialization, uniform
// query placement, selectivity 0.1 (a) and 0.01 (b). Four curves: GD/APM x
// segmentation/replication, over 10K queries (log-log in the paper).
#include <iostream>

#include "bench_common.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  for (double sel : {0.1, 0.01}) {
    std::vector<RunRecorder> recs;
    for (Scheme s : AllSchemes()) {
      SegmentSpace space;
      auto strat = MakeSimStrategy(s, data, &space);
      auto gen = MakeSimGen(/*zipf=*/false, sel);
      recs.push_back(RunWorkload(*strat, gen->Generate(kSimQueries)));
    }
    ResultTable table("Figure 5" + std::string(sel == 0.1 ? "a" : "b") +
                          ": cumulative memory writes (bytes), uniform, "
                          "selectivity " + FormatNumber(sel),
                      {"queries", "GD Segm", "GD Repl", "APM Segm", "APM Repl"});
    std::vector<std::vector<double>> cum;
    cum.reserve(recs.size());
    for (const auto& r : recs) cum.push_back(r.CumulativeWrites());
    for (size_t q : LogSpacedIndices(kSimQueries)) {
      table.AddRow(q, cum[0][q - 1], cum[1][q - 1], cum[2][q - 1], cum[3][q - 1]);
    }
    table.Print(std::cout);
  }
  std::cout << "Expected shape (paper): replication writes less than its\n"
               "segmentation counterpart for every model/selectivity; APM\n"
               "saturates after ~100 queries, GD keeps reorganizing with\n"
               "decreasing probability.\n";
  return 0;
}
