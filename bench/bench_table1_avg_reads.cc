// Table 1: average read size in KB per query over the full 10K-query run,
// for each strategy and each (placement, selectivity) combination.
// Paper values for reference:
//   Strategy   U 0.1  U 0.01  Z 0.1  Z 0.01
//   GD Segm    40.7   31.2    41.8   11.2
//   GD Repl    41.1   28.5    43.7   11.1
//   APM Segm   43.6   12.7    46.3   11.3
//   APM Repl   45.0   13.2    48.5   13.4
#include <iostream>

#include "bench_common.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  struct Cell {
    bool zipf;
    double sel;
    const char* name;
  };
  const std::vector<Cell> cells{{false, 0.1, "U 0.1"},
                                {false, 0.01, "U 0.01"},
                                {true, 0.1, "Z 0.1"},
                                {true, 0.01, "Z 0.01"}};
  ResultTable table("Table 1: average read size in KB for 10K queries",
                    {"Strategy", "U 0.1", "U 0.01", "Z 0.1", "Z 0.01"});
  for (Scheme s : AllSchemes()) {
    std::vector<std::string> row{SchemeName(s)};
    for (const Cell& c : cells) {
      SegmentSpace space;
      auto strat = MakeSimStrategy(s, data, &space);
      auto gen = MakeSimGen(c.zipf, c.sel);
      RunRecorder rec = RunWorkload(*strat, gen->Generate(kSimQueries));
      row.push_back(FormatNumber(rec.AverageReadBytes() / 1024.0));
    }
    table.AddRowStrings(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "Expected shape (paper): ~40KB for selectivity 0.1 (the\n"
               "selection size) across strategies; for 0.01 APM converges to\n"
               "11-13KB (bounded below by Mmax-sized segments) while GD stays\n"
               "higher under uniform placement because small selections\n"
               "rarely win the dice.\n";
  return 0;
}
