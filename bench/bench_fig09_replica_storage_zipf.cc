// Figure 9: replica-tree storage under Zipf placement over the full 10K
// queries, selectivity 0.1 (a) and 0.01 (b). With skew the collapse back to
// column size takes thousands of queries (cold areas replicate late).
#include <iostream>

#include "bench_common.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  const uint64_t db_size = data.size() * sizeof(int32_t);
  for (double sel : {0.1, 0.01}) {
    SegmentSpace s1, s2;
    auto gd = MakeSimStrategy(Scheme::kGdRepl, data, &s1);
    auto apm = MakeSimStrategy(Scheme::kApmRepl, data, &s2);
    auto g1 = MakeSimGen(true, sel);
    auto g2 = MakeSimGen(true, sel);
    RunRecorder r1 = RunWorkload(*gd, g1->Generate(kSimQueries));
    RunRecorder r2 = RunWorkload(*apm, g2->Generate(kSimQueries));
    ResultTable table("Figure 9" + std::string(sel == 0.1 ? "a" : "b") +
                          ": replica storage (bytes), Zipf, selectivity " +
                          FormatNumber(sel),
                      {"queries", "DB size", "GD Repl", "APM Repl"});
    for (size_t q = 250; q <= kSimQueries; q += 250) {
      table.AddRow(q, db_size, r1.storage_bytes()[q - 1],
                   r2.storage_bytes()[q - 1]);
    }
    table.Print(std::cout);
  }
  std::cout << "Expected shape (paper): same convergence as Fig. 8 but much\n"
               "slower -- the skewed load takes thousands of queries to touch\n"
               "and reorganize all areas; GD storage shrinks faster than "
               "APM's.\n";
  return 0;
}
