// Concurrent metered scans: wall-clock throughput of the scan-phase fan-out
// (AccessStrategy::RunRange over a ThreadPool) at 1/2/4/N workers, with a
// built-in byte-parity guard -- every threaded run must report exactly the
// IoStats totals and summed execution records of the 1-thread run, or the
// bench aborts. Registered as a ctest smoke (tiny scale via
// SOCS_BENCH_SCALE) so the parallel path is exercised on every tier-1 run.
//
// The reader-stall phase at the end races long scans against FlushBatch
// reorganizations under both disciplines -- the old shared/exclusive latch
// (set_snapshot_scans(false): every flush stalls every reader) and the
// epoch-versioned covers (scans pin a snapshot and never block) -- and
// writes the p50/p99 scan latencies plus maintenance wall time to
// BENCH_scan_stall.json.
//
//   $ ./bench/bench_concurrent_scans [--threads N]   # add an N-worker row
#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/series.h"
#include "common/stopwatch.h"
#include "common/units.h"
#include "core/apm.h"
#include "core/static_partition.h"
#include "core/background_maintenance.h"
#include "core/deferred_segmentation.h"
#include "exec/task_scheduler.h"

using namespace socs;
using namespace socs::bench;

namespace {

struct RunTotals {
  QueryExecution ex;
  IoStats stats;
  double wall_s = 0.0;
};

std::unique_ptr<AccessStrategy<int32_t>> MakeBenchStrategy(
    bool adaptive, const std::vector<int32_t>& data, SegmentSpace* space) {
  if (!adaptive) {
    return std::make_unique<StaticPartition<int32_t>>(
        data, ValueRange(0, kSimDomain), 64, space);
  }
  // APM bounds scale with the column (~1/64 .. ~1/16 of it) so a covering
  // set spans a handful of segments big enough that one segment is a
  // meaningful unit of parallel work -- the SkyServer geometry (1-25MB
  // segments on a 180MB column), not the simulation's 3-12KB micro-segments.
  const uint64_t min_b = std::max<uint64_t>(4 * kKiB,
                                            data.size() * sizeof(int32_t) / 64);
  return std::make_unique<AdaptiveSegmentation<int32_t>>(
      data, ValueRange(0, kSimDomain), std::make_unique<Apm>(min_b, 4 * min_b),
      space);
}

RunTotals RunAt(size_t threads, bool adaptive, const std::vector<int32_t>& data,
                const Workload& w) {
  SegmentSpace space;
  auto strat = MakeBenchStrategy(adaptive, data, &space);
  ThreadPool pool(threads);
  Stopwatch sw;
  RunTotals t;
  for (const RangeQuery& q : w) {
    std::vector<int32_t> result;
    t.ex += strat->RunRange(q.range, &result, &pool);
  }
  t.wall_s = sw.ElapsedSeconds();
  t.stats = space.stats();
  return t;
}

void CheckParity(const RunTotals& base, const RunTotals& run, size_t threads) {
  SOCS_CHECK_EQ(base.ex.read_bytes, run.ex.read_bytes) << threads << " threads";
  SOCS_CHECK_EQ(base.ex.write_bytes, run.ex.write_bytes) << threads << " threads";
  SOCS_CHECK_EQ(base.ex.result_count, run.ex.result_count) << threads << " threads";
  SOCS_CHECK_EQ(base.ex.splits, run.ex.splits) << threads << " threads";
  SOCS_CHECK_EQ(base.ex.selection_seconds, run.ex.selection_seconds)
      << threads << " threads";
  SOCS_CHECK_EQ(base.ex.adaptation_seconds, run.ex.adaptation_seconds)
      << threads << " threads";
  SOCS_CHECK_EQ(base.stats.mem_read_bytes, run.stats.mem_read_bytes)
      << threads << " threads";
  SOCS_CHECK_EQ(base.stats.mem_write_bytes, run.stats.mem_write_bytes)
      << threads << " threads";
  SOCS_CHECK_EQ(base.stats.segments_scanned, run.stats.segments_scanned)
      << threads << " threads";
}

// --- reader-stall phase ------------------------------------------------------

struct StallRun {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double maintenance_s = 0.0;  // wall time spent inside FlushBatch
  uint64_t flushes = 0;
  uint64_t rows_last_scan = 0;
};

double PercentileMs(std::vector<double> lat, double p) {
  std::sort(lat.begin(), lat.end());
  const size_t idx = std::min(lat.size() - 1,
                              static_cast<size_t>(p * (lat.size() - 1)));
  return lat[idx] * 1e3;
}

/// One reader issuing `scans` full-range selections while a writer keeps
/// appending and flushing batches. With `snapshot` off the scans take the
/// shared latch and every flush (exclusive) stalls them -- the old
/// discipline; with it on they pin an epoch cover and never wait.
StallRun RunStallPhase(bool snapshot, size_t scans,
                       const std::vector<int32_t>& data) {
  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1 << 30;  // flushes only via the writer thread below
  DeferredSegmentation<int32_t> strat(
      data, ValueRange(0, kSimDomain),
      std::make_unique<Apm>(std::max<uint64_t>(4 * kKiB, data.size() / 16),
                            std::max<uint64_t>(16 * kKiB, data.size() / 4)),
      &space, opts);
  strat.set_snapshot_scans(snapshot);

  StallRun out;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng rng(kSimSeed + 7);
    Stopwatch flush_sw;
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<int32_t> batch;
      for (int i = 0; i < 64; ++i) {
        batch.push_back(static_cast<int32_t>(rng.NextInt(0, kSimDomain - 1)));
      }
      strat.Append(batch);
      if (strat.HasIdleWork()) {
        flush_sw.Restart();
        strat.RunIdleWork();  // exclusive-latch reorganization
        out.maintenance_s += flush_sw.ElapsedSeconds();
        ++out.flushes;
      }
    }
  });

  std::vector<double> lat;
  lat.reserve(scans);
  const ValueRange full(0, kSimDomain);
  Stopwatch sw;
  for (size_t i = 0; i < scans; ++i) {
    sw.Restart();
    const QueryExecution ex = strat.RunRange(full);
    lat.push_back(sw.ElapsedSeconds());
    out.rows_last_scan = ex.result_count;
  }
  done.store(true);
  writer.join();

  // Scans under either discipline must observe whole appends only.
  SOCS_CHECK_EQ((out.rows_last_scan - data.size()) % 64, 0u)
      << "torn scan: partial append visible";
  if (snapshot) {
    SOCS_CHECK_GT(strat.epochs().pins(), 0u);
    SOCS_CHECK_EQ(strat.PendingRetired(), 0u) << "retire list did not drain";
  }
  out.p50_ms = PercentileMs(lat, 0.50);
  out.p99_ms = PercentileMs(lat, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // SOCS_BENCH_SCALE shrinks the column/workload for the ctest smoke.
  const char* scale_env = std::getenv("SOCS_BENCH_SCALE");
  const double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  const size_t n =
      static_cast<size_t>(2'000'000 * (scale > 0 && scale <= 1.0 ? scale : 1.0));
  const size_t num_queries =
      static_cast<size_t>(600 * (scale > 0 && scale <= 1.0 ? scale : 1.0)) + 20;

  const auto data = MakeUniformIntColumn(n, kSimDomain, kSimSeed);
  auto gen = MakeSimGen(/*zipf=*/false, /*selectivity=*/0.2);
  Workload w;
  for (size_t i = 0; i < num_queries; ++i) w.push_back(gen->Next());

  std::cout << "column: " << n << " int32 values ("
            << FormatBytes(n * sizeof(int32_t)) << "), " << w.size()
            << " uniform selections, selectivity 0.2\n"
            << "hardware threads: " << std::thread::hardware_concurrency()
            << " (speedup is hardware-bound; the byte-parity checks are "
               "not)\n\n";

  std::vector<size_t> thread_counts{1, 2, 4};
  const size_t flag = ThreadsFlag(argc, argv, /*default_threads=*/0);
  if (flag > 0) thread_counts.push_back(flag);
  const size_t hw = std::thread::hardware_concurrency();
  if (flag == 0 && hw > 4) thread_counts.push_back(hw);

  // Static partitioning is the read-mostly showcase: Reorganize is a no-op,
  // so the whole query is the parallel scan phase. Adaptive segmentation
  // shows the Amdahl cost of the reorganizing module: its decision pass
  // re-reads the cover under the exclusive latch, serializing a large slice
  // of every query (the motivation for the background lane below). On a
  // single-core host both tables degenerate to ~1x -- the parity checks are
  // what must hold everywhere.
  for (const bool adaptive : {false, true}) {
    ResultTable table(std::string(adaptive ? "APM adaptive segmentation"
                                           : "Static 64-way partitioning") +
                          " (byte-parity enforced per row)",
                      {"threads", "wall_s", "speedup", "mem_read", "splits",
                       "sim_select_s"});
    RunTotals base;
    for (size_t threads : thread_counts) {
      const RunTotals t = RunAt(threads, adaptive, data, w);
      if (threads == 1) {
        base = t;
      } else {
        CheckParity(base, t, threads);  // N-thread == 1-thread, byte for byte
      }
      table.AddRow(threads, FormatNumber(t.wall_s),
                   FormatNumber(base.wall_s / t.wall_s),
                   FormatBytes(t.ex.read_bytes), t.ex.splits,
                   FormatNumber(t.ex.selection_seconds));
    }
    table.Print(std::cout);
  }

  // Background reorganization: the deferred batch on the scheduler's
  // background lane, entirely off the (timed) query path.
  SegmentSpace space;
  DeferredSegmentation<int32_t>::Options opts;
  opts.batch_queries = 1 << 30;  // only the background lane flushes
  DeferredSegmentation<int32_t> deferred(
      data, ValueRange(0, kSimDomain), MakeSimModel(Scheme::kApmSegm), &space,
      opts);
  TaskScheduler sched(2);
  BackgroundMaintenance<int32_t> maint(&deferred);
  Stopwatch sw;
  QueryExecution fg;
  for (const RangeQuery& q : w) {
    fg += deferred.RunRange(q.range);
    maint.Schedule(&sched);
  }
  const double fg_wall = sw.ElapsedSeconds();
  sched.DrainBackground();

  ResultTable bg("Deferred segmentation with background FlushBatch",
                 {"where", "splits", "sim_adapt_s", "wall_s"});
  bg.AddRow("query path (foreground)", fg.splits,
            FormatNumber(fg.adaptation_seconds), FormatNumber(fg_wall));
  bg.AddRow("background lane", maint.total().splits,
            FormatNumber(maint.total().adaptation_seconds),
            std::string("off the query path"));
  bg.Print(std::cout);
  SOCS_CHECK_GT(maint.total().splits, 0u)
      << "background lane never reorganized";
  std::cout << "note: every reorganization ran off-thread; the foreground "
               "adaptation seconds\ncover only the mark bookkeeping.\n";

  // Reader-stall phase: long scans racing FlushBatch under the old latch
  // discipline vs epoch-versioned covers. On a single-core host the latency
  // gap narrows (the threads time-slice anyway); the isolation checks inside
  // RunStallPhase are what must hold everywhere.
  const size_t stall_scans = 50;
  const StallRun old_run = RunStallPhase(/*snapshot=*/false, stall_scans, data);
  const StallRun new_run = RunStallPhase(/*snapshot=*/true, stall_scans, data);

  ResultTable stall("Reader stall under concurrent FlushBatch (" +
                        std::to_string(stall_scans) + " full scans)",
                    {"discipline", "p50_ms", "p99_ms", "maint_s", "flushes"});
  stall.AddRow("latched scans (old)", FormatNumber(old_run.p50_ms),
               FormatNumber(old_run.p99_ms), FormatNumber(old_run.maintenance_s),
               old_run.flushes);
  stall.AddRow("epoch covers (new)", FormatNumber(new_run.p50_ms),
               FormatNumber(new_run.p99_ms), FormatNumber(new_run.maintenance_s),
               new_run.flushes);
  stall.Print(std::cout);

  std::ofstream json("BENCH_scan_stall.json");
  json << "{\n"
       << "  \"scans\": " << stall_scans << ",\n"
       << "  \"column_bytes\": " << data.size() * sizeof(int32_t) << ",\n"
       << "  \"old_latched\": {\"p50_ms\": " << old_run.p50_ms
       << ", \"p99_ms\": " << old_run.p99_ms
       << ", \"maintenance_s\": " << old_run.maintenance_s
       << ", \"flushes\": " << old_run.flushes << "},\n"
       << "  \"new_epoch_covers\": {\"p50_ms\": " << new_run.p50_ms
       << ", \"p99_ms\": " << new_run.p99_ms
       << ", \"maintenance_s\": " << new_run.maintenance_s
       << ", \"flushes\": " << new_run.flushes << "}\n"
       << "}\n";
  std::cout << "wrote BENCH_scan_stall.json\n";
  return 0;
}
