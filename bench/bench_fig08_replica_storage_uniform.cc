// Figure 8: replica-tree storage over the first 500 queries with uniform
// placement, selectivity 0.1 (a) and 0.01 (b). The "DB size" line is the
// 400KB column; drops in the curves are parents released by check4Drop.
#include <iostream>

#include "bench_common.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  const uint64_t db_size = data.size() * sizeof(int32_t);
  for (double sel : {0.1, 0.01}) {
    SegmentSpace s1, s2;
    auto gd = MakeSimStrategy(Scheme::kGdRepl, data, &s1);
    auto apm = MakeSimStrategy(Scheme::kApmRepl, data, &s2);
    auto g1 = MakeSimGen(false, sel);
    auto g2 = MakeSimGen(false, sel);
    RunRecorder r1 = RunWorkload(*gd, g1->Generate(500));
    RunRecorder r2 = RunWorkload(*apm, g2->Generate(500));
    ResultTable table("Figure 8" + std::string(sel == 0.1 ? "a" : "b") +
                          ": replica storage (bytes), uniform, selectivity " +
                          FormatNumber(sel),
                      {"queries", "DB size", "GD Repl", "APM Repl"});
    for (size_t q = 10; q <= 500; q += 10) {
      table.AddRow(q, db_size, r1.storage_bytes()[q - 1],
                   r2.storage_bytes()[q - 1]);
    }
    table.Print(std::cout);
  }
  std::cout << "Expected shape (paper): storage peaks around 2-2.5x the DB\n"
               "size, then drops sharply once the initial full-column segment\n"
               "is fully replicated and released; GD releases earlier than "
               "APM.\n";
  return 0;
}
