// Ablation: the three reorganization-timing alternatives of paper section
// 3.3 -- post-processing (deferred, batched, equi-depth), eager
// materialization (adaptive segmentation) and lazy materialization (adaptive
// replication) -- plus the section-8 merging extension that counters GD's
// fragmentation. Simulation setting, APM model, 2000 queries.
#include <iostream>

#include "bench_common.h"
#include "common/series.h"
#include "core/deferred_segmentation.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  const ValueRange domain(0, kSimDomain);
  constexpr size_t kQueries = 2000;

  for (double sel : {0.1, 0.01}) {
    ResultTable table(
        "Ablation (paper 3.3): reorganization timing, uniform, selectivity " +
            FormatNumber(sel),
        {"alternative", "avg_read_KB", "first100_read_KB", "total_write_MB",
         "sim_total_ms", "segments"});

    auto report = [&](const char* name, AccessStrategy<int32_t>& strat) {
      auto gen = MakeSimGen(false, sel);
      RunRecorder rec = RunWorkload(strat, gen->Generate(kQueries));
      double first100 = 0;
      for (size_t i = 0; i < 100; ++i) first100 += rec.reads()[i];
      table.AddRow(name, rec.AverageReadBytes() / 1024.0, first100 / 100 / 1024.0,
                   rec.CumulativeWrites().back() / (1024.0 * 1024.0),
                   rec.CumulativeTotalSeconds().back() * 1e3,
                   strat.Footprint().segment_count);
    };

    {
      SegmentSpace sp;
      DeferredSegmentation<int32_t>::Options o;
      o.batch_queries = 32;
      DeferredSegmentation<int32_t> s(data, domain, MakeSimModel(Scheme::kApmSegm),
                                      &sp, o);
      report("post-processing (batch 32)", s);
    }
    {
      SegmentSpace sp;
      DeferredSegmentation<int32_t>::Options o;
      o.batch_queries = 1;
      DeferredSegmentation<int32_t> s(data, domain, MakeSimModel(Scheme::kApmSegm),
                                      &sp, o);
      report("post-processing (batch 1)", s);
    }
    {
      SegmentSpace sp;
      auto s = MakeSimStrategy(Scheme::kApmSegm, data, &sp);
      report("eager (adaptive segmentation)", *s);
    }
    {
      SegmentSpace sp;
      auto s = MakeSimStrategy(Scheme::kApmRepl, data, &sp);
      report("lazy (adaptive replication)", *s);
    }
    table.Print(std::cout);
  }

  // Merging extension: GD on a near-point skewed load (its worst case).
  ResultTable merge_table(
      "Ablation (paper 8): GD fragmentation with and without merging "
      "(skewed near-point queries)",
      {"variant", "segments", "tiny_segments_<1.5KB", "avg_read_KB",
       "merges"});
  for (bool merging : {false, true}) {
    SegmentSpace sp;
    AdaptiveSegmentation<int32_t>::Options o;
    o.merge_small_segments = merging;
    o.merge_threshold_bytes = 3 * kKiB;
    AdaptiveSegmentation<int32_t> s(data, domain,
                                    std::make_unique<GaussianDice>(0xd1ce), &sp,
                                    o);
    Rng rng(99);
    uint64_t reads = 0, merges = 0;
    for (int i = 0; i < 3000; ++i) {
      const double lo = kSimDomain * 0.5 + rng.NextUniform(-5000, 5000);
      auto ex = s.RunRange(ValueRange(lo, lo + kSimDomain * 0.01));
      reads += ex.read_bytes;
      merges += ex.merges;
    }
    size_t tiny = 0;
    for (const auto& seg : s.Segments()) {
      if (seg.count * sizeof(int32_t) < 1536) ++tiny;
    }
    merge_table.AddRow(merging ? "GD + merging" : "GD", s.Segments().size(),
                       tiny, reads / 3000.0 / 1024.0, merges);
  }
  merge_table.Print(std::cout);

  // Replica budget: storage cap vs read overhead.
  ResultTable budget_table(
      "Ablation (paper 8): adaptive replication under storage budgets "
      "(uniform, sel 0.1, 1000 queries)",
      {"budget", "peak_storage_KB", "avg_read_KB", "evictions"});
  for (uint64_t budget_kb : {0, 1000, 600, 450}) {
    SegmentSpace sp;
    AdaptiveReplication<int32_t>::Options o;
    o.storage_budget_bytes = budget_kb * kKiB;
    AdaptiveReplication<int32_t> s(data, domain, MakeSimModel(Scheme::kApmRepl),
                                   &sp, o);
    auto gen = MakeSimGen(false, 0.1);
    uint64_t peak = 0, reads = 0, evictions = 0;
    for (int i = 0; i < 1000; ++i) {
      auto ex = s.RunRange(gen->Next().range);
      reads += ex.read_bytes;
      evictions += ex.replicas_evicted;
      peak = std::max(peak, s.Footprint().materialized_bytes);
    }
    budget_table.AddRow(budget_kb == 0 ? std::string("unlimited")
                                       : FormatBytes(budget_kb * kKiB),
                        peak / 1024.0, reads / 1000.0 / 1024.0, evictions);
  }
  budget_table.Print(std::cout);

  std::cout << "Reading: post-processing delays benefits (high early reads)\n"
               "and re-reads marked segments, but batching yields balanced\n"
               "equi-depth segments; eager pays everything up front; lazy\n"
               "writes least. Merging removes GD's tiny-segment pathology.\n"
               "Tighter replica budgets trade storage for re-scans of the\n"
               "covering segments.\n";
  return 0;
}
