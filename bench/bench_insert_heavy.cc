// Insert-heavy SkyServer variant (beyond the paper's read-only setting):
// the random 200-query workload interleaved with appends -- after every
// select, a batch of fresh photo objects (0.05% of the column) lands via the
// strategies' Append phase. Shows what the write path costs each scheme:
// NoSegm pays a flat tail-append, GD/APM segmentation rewrites the routed
// segments (and re-splits them on later queries).
//
// Also the CI smoke for the write path: registered with ctest at
// SOCS_SKY_SCALE=0.002 (see bench/CMakeLists.txt).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const SkyServerConfig cfg = SkyConfig();
  const auto ra = MakeRaColumn(cfg);
  const Workload w = MakeRandomWorkload(cfg, 200);
  const size_t batch = std::max<size_t>(1, ra.size() / 2000);  // 0.05% / query

  ResultTable table(
      "Insert-heavy SkyServer (random placement, " + FormatNumber(batch) +
          " appended values per query)",
      {"scheme", "select s", "adapt s", "appended MB", "written MB",
       "segments"});
  for (SkyScheme s : AllSkySchemes()) {
    SegmentSpace space;
    auto strat = MakeSkyStrategy(s, ra, cfg, &space);
    Rng rng(0xbeef);
    QueryExecution total;
    uint64_t appended = 0;
    for (const RangeQuery& q : w) {
      total += strat->RunRange(q.range);
      std::vector<float> fresh;
      fresh.reserve(batch);
      for (size_t i = 0; i < batch; ++i) {
        fresh.push_back(static_cast<float>(
            rng.NextUniform(cfg.footprint.lo, cfg.footprint.hi)));
      }
      total += strat->Append(fresh);
      appended += fresh.size() * sizeof(float);
    }
    table.AddRow(strat->Name(), total.selection_seconds,
                 total.adaptation_seconds,
                 static_cast<double>(appended) / kMiB,
                 static_cast<double>(total.write_bytes) / kMiB,
                 strat->Footprint().segment_count);
  }
  table.Print(std::cout);
  std::cout << "Expected shape: NoSegm's written MB equals the appended MB\n"
               "(pure tail-append); the adaptive schemes amplify writes by\n"
               "rewriting the routed segments but keep selection time low by\n"
               "scanning only covering segments.\n";
  return 0;
}
