// Figures 13 and 14: cumulative and moving-average query time for the
// skewed SkyServer workload (200 queries in two very limited areas).
#include "bench_sky_driver.inc"

int main(int argc, char** argv) {
  using namespace socs::bench;
  const auto cfg = SkyConfig();
  PrintSkyTimeFigures("skewed", socs::MakeSkewedWorkload(cfg, 200), "13", "14",
                      ThreadsFlag(argc, argv));
  std::cout << "Expected shape (paper): APM overhead is smaller than under\n"
               "the random load (reorganization touches a very limited area);\n"
               "GD hits its worst case, fragmenting the hot areas into many\n"
               "tiny segments.\n";
  return 0;
}
