// Ablation (paper section 8 future work): sensitivity of APM to its Mmin /
// Mmax bounds -- the knobs the paper says should eventually self-tune.
// Simulation setting, uniform placement, selectivity 0.01, 10K queries.
#include <iostream>

#include "bench_common.h"
#include "common/series.h"
#include "core/adaptive_segmentation.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  const ValueRange domain(0, kSimDomain);
  ResultTable table(
      "Ablation: APM bound sensitivity (uniform, sel 0.01, 10K queries)",
      {"Mmin", "Mmax", "avg_read_KB", "total_write_MB", "segments",
       "avg_seg_KB"});
  for (uint64_t mmin : {kKiB + kKiB / 2, 3 * kKiB, 6 * kKiB}) {
    for (uint64_t mmax_factor : {2, 4, 8, 16}) {
      const uint64_t mmax = mmin * mmax_factor;
      SegmentSpace space;
      AdaptiveSegmentation<int32_t> strat(
          data, domain, std::make_unique<Apm>(mmin, mmax), &space);
      auto gen = MakeSimGen(false, 0.01);
      RunRecorder rec = RunWorkload(strat, gen->Generate(kSimQueries));
      const auto fp = strat.Footprint();
      table.AddRow(FormatBytes(mmin), FormatBytes(mmax),
                   rec.AverageReadBytes() / 1024.0,
                   rec.CumulativeWrites().back() / (1024.0 * 1024.0),
                   fp.segment_count,
                   fp.materialized_bytes / 1024.0 /
                       static_cast<double>(fp.segment_count));
    }
  }
  table.Print(std::cout);
  std::cout << "Reading: tighter Mmax lowers per-query reads (smaller\n"
               "segments) at the cost of more reorganization writes and a\n"
               "larger meta-index -- the trade-off behind the paper's\n"
               "APM 1-5 vs APM 1-25 comparison.\n";
  return 0;
}
