// Figure 2: the Gaussian Dice decision function O(x) = G(x)/G(0.5) over the
// partition ratio x, for several sigma values (sigma = segment size relative
// to the column). Regenerates the curves of the paper's Fig. 2.
#include <iostream>

#include "common/series.h"
#include "core/gaussian_dice.h"

int main() {
  using socs::GaussianDice;
  const std::vector<double> sigmas{0.05, 0.10, 0.20, 0.30, 0.50, 1.00};
  std::vector<std::string> cols{"partition_ratio"};
  for (double s : sigmas) cols.push_back("sigma=" + socs::FormatNumber(s));
  socs::ResultTable table(
      "Figure 2: Gaussian Dice decision probability O(x), mu=0.5", cols);
  for (int i = 0; i <= 20; ++i) {
    const double x = i * 0.05;
    std::vector<std::string> row{socs::FormatNumber(x)};
    for (double s : sigmas) {
      row.push_back(socs::FormatNumber(GaussianDice::DecisionProbability(x, s)));
    }
    table.AddRowStrings(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "Reading: selections splitting a segment near its middle "
               "(x ~ 0.5) are most likely to trigger reorganization;\n"
               "large segments (sigma -> 1) are split almost regardless of "
               "the ratio, small ones almost never off-center.\n";
  return 0;
}
