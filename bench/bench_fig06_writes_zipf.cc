// Figure 6: cumulative memory writes due to segment materialization with
// skewed (Zipf) query placement, selectivity 0.1 (a) and 0.01 (b).
#include <iostream>

#include "bench_common.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  for (double sel : {0.1, 0.01}) {
    std::vector<RunRecorder> recs;
    for (Scheme s : AllSchemes()) {
      SegmentSpace space;
      auto strat = MakeSimStrategy(s, data, &space);
      auto gen = MakeSimGen(/*zipf=*/true, sel);
      recs.push_back(RunWorkload(*strat, gen->Generate(kSimQueries)));
    }
    ResultTable table("Figure 6" + std::string(sel == 0.1 ? "a" : "b") +
                          ": cumulative memory writes (bytes), Zipf, "
                          "selectivity " + FormatNumber(sel),
                      {"queries", "GD Segm", "GD Repl", "APM Segm", "APM Repl"});
    std::vector<std::vector<double>> cum;
    for (const auto& r : recs) cum.push_back(r.CumulativeWrites());
    for (size_t q : LogSpacedIndices(kSimQueries)) {
      table.AddRow(q, cum[0][q - 1], cum[1][q - 1], cum[2][q - 1], cum[3][q - 1]);
    }
    table.Print(std::cout);
  }
  std::cout << "Expected shape (paper): as Fig. 5, but reorganization "
               "continues deep into the run\n(previously untouched areas are "
               "hit for the first time after thousands of queries).\n";
  return 0;
}
