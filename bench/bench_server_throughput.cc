// Server throughput: N concurrent TCP clients replay SkyServer query
// streams against ONE socs SqlServer over loopback -- one shared deferred-
// segmentation store, one shared scheduler, background FlushBatch racing the
// live query stream (the Automatic-Clustering-in-Hyrise shape from
// PAPERS.md). Reports aggregate and per-client statements/sec (wall clock),
// the simulated per-query work, and the background-maintenance ledger
// (passes run off the query path vs. skipped by the load watermark).
//
//   $ ./bench/bench_server_throughput                  # 8 clients x 200
//   $ ./bench/bench_server_throughput --clients 16 --queries 500 --threads 8
//   $ ./bench/bench_server_throughput --smoke          # tiny self-checking
//                                                      # run (the ctest smoke)
//
// --smoke shrinks the store and stream, then *fails* (non-zero exit) unless
// every reply succeeded, the per-client counts match a sequential oracle
// replay, and the shutdown drain left the maintenance ledger balanced.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/units.h"
#include "core/apm.h"
#include "core/deferred_segmentation.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "exec/threads_flag.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/skyserver.h"

namespace {

using namespace socs;

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::string BetweenQuery(const ValueRange& q) {
  // The workload generator hands out half-open [lo, hi); BETWEEN is
  // inclusive, so nudge hi just below the bound.
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "select count(*) from P where ra between %.17g and %.17g",
                q.lo, std::nextafter(q.hi, q.lo));
  return buf;
}

struct ClientResult {
  uint64_t statements = 0;
  uint64_t failures = 0;
  uint64_t rows_total = 0;  // sum of count(*) results
  double wall_seconds = 0.0;
  double simulated_seconds = 0.0;
};

// --- hot-column phase: cooperative shared scans under pipelined floods ------

struct HotResult {
  uint64_t statements = 0;
  uint64_t failures = 0;
  uint64_t count_mismatches = 0;  // replies disagreeing with the oracle
  double wall_seconds = 0.0;
  uint64_t batches = 0;
  uint64_t batched_statements = 0;
  uint64_t scans_saved = 0;
};

/// Every client pipelines the SAME hot-range count(*) `per_client` times --
/// the dispatcher's scan batches absorb the concurrently admitted floods
/// when `shared_scans` is on; off is the per-statement baseline.
HotResult RunHotPhase(Catalog* cat, TaskScheduler* sched, size_t executors,
                      size_t clients, size_t per_client,
                      const std::string& stmt, uint64_t expected_count,
                      bool shared_scans) {
  HotResult out;
  server::SqlServer::Options opts;
  opts.executors = executors;
  opts.shared_scans = shared_scans;
  server::SqlServer srv(cat, sched, opts);
  if (!srv.Start().ok()) {
    out.failures = clients * per_client;
    return out;
  }

  std::vector<HotResult> per(clients);
  Stopwatch wall;
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto conn = client::Connection::Connect("127.0.0.1", srv.port());
      if (!conn.ok()) {
        per[c].failures = per_client;
        return;
      }
      for (size_t i = 0; i < per_client; ++i) {
        if (!conn->Send(stmt).ok()) {
          ++per[c].failures;
          return;
        }
      }
      for (size_t i = 0; i < per_client; ++i) {
        auto reply = conn->ReadReply();
        ++per[c].statements;
        if (!reply.ok() || !reply->ok || reply->rows.size() != 1) {
          ++per[c].failures;
          continue;
        }
        if (std::strtoull(reply->rows[0].c_str(), nullptr, 10) !=
            expected_count) {
          ++per[c].count_mismatches;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  out.wall_seconds = wall.ElapsedSeconds();
  srv.Stop();

  for (const HotResult& r : per) {
    out.statements += r.statements;
    out.failures += r.failures;
    out.count_mismatches += r.count_mismatches;
  }
  out.batches = srv.scan_batches();
  out.batched_statements = srv.batched_statements();
  out.scans_saved = srv.shared_scans_saved();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const size_t threads =
      ParseThreadsFlag(argc, argv, /*default_threads=*/smoke ? 4 : 4);
  const size_t clients =
      static_cast<size_t>(ParseLongFlag(argc, argv, "--clients", smoke ? 3 : 8));
  const size_t queries =
      static_cast<size_t>(ParseLongFlag(argc, argv, "--queries", smoke ? 40 : 200));
  const size_t num_values = smoke ? 60'000 : 2'000'000;

  // One shared store: the SkyServer ra column under *deferred* segmentation,
  // so reorganization batches ride the background lane while clients query.
  SkyServerConfig cfg;
  cfg.num_objects = num_values;
  std::vector<float> ra = MakeRaColumn(cfg);
  std::vector<OidValue> pairs;
  pairs.reserve(ra.size());
  for (size_t i = 0; i < ra.size(); ++i) pairs.push_back({i, ra[i]});

  Catalog cat;
  SegmentSpace space;
  TaskScheduler sched(threads);
  // APM bounds small enough that the initial column violates them: the
  // background lane has real splitting to do while clients query.
  auto apm = smoke ? std::make_unique<Apm>(16 * kKiB, 64 * kKiB)
                   : std::make_unique<Apm>(256 * kKiB, 1 * kMiB);
  auto strat = std::make_unique<DeferredSegmentation<OidValue>>(
      std::move(pairs), cfg.footprint, std::move(apm), &space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               &space);
  if (!cat.AddSegmentedColumn("P", "ra", std::move(col)).ok()) return 1;

  server::SqlServer::Options opts;
  opts.executors = std::max<size_t>(2, threads / 2);
  server::SqlServer srv(&cat, &sched, opts);
  if (Status st = srv.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Per-client query streams: same generator family as the paper's
  // SkyServer runs (random placement), distinct seeds per client.
  std::vector<std::vector<std::string>> streams(clients);
  std::vector<std::vector<ValueRange>> ranges(clients);
  for (size_t c = 0; c < clients; ++c) {
    SkyServerConfig ccfg = cfg;
    ccfg.seed = cfg.seed + 101 * c;
    Workload w = MakeRandomWorkload(ccfg, queries);
    for (const auto& q : w) {
      ranges[c].push_back(q.range);
      streams[c].push_back(BetweenQuery(q.range));
    }
  }

  std::printf("bench_server_throughput: %zu client(s) x %zu quer%s, "
              "%zu-value shared ra column, exec threads %zu, %zu executor(s)\n",
              clients, queries, queries == 1 ? "y" : "ies", num_values,
              threads, opts.executors);

  Stopwatch wall;
  std::vector<ClientResult> results(clients);
  std::atomic<bool> connect_failed{false};
  std::vector<std::thread> workers;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto conn = client::Connection::Connect("127.0.0.1", srv.port());
      if (!conn.ok()) {
        connect_failed.store(true);
        return;
      }
      Stopwatch sw;
      for (const std::string& stmt : streams[c]) {
        auto reply = conn->Execute(stmt);
        ++results[c].statements;
        if (!reply.ok() || !reply->ok || reply->rows.size() != 1) {
          ++results[c].failures;
          continue;
        }
        results[c].rows_total +=
            std::strtoull(reply->rows[0].c_str(), nullptr, 10);
        results[c].simulated_seconds += reply->stats.TotalSeconds();
      }
      results[c].wall_seconds = sw.ElapsedSeconds();
    });
  }
  for (auto& t : workers) t.join();
  const double total_wall = wall.ElapsedSeconds();

  srv.Stop();
  const auto ledger = srv.Ledger();

  uint64_t total_stmts = 0, total_failures = 0, total_rows = 0;
  double total_sim = 0.0;
  for (size_t c = 0; c < clients; ++c) {
    total_stmts += results[c].statements;
    total_failures += results[c].failures;
    total_rows += results[c].rows_total;
    total_sim += results[c].simulated_seconds;
  }
  std::printf("\n  aggregate: %llu statement(s) in %.3f s wall  ->  %.0f stmt/s\n",
              static_cast<unsigned long long>(total_stmts), total_wall,
              total_wall > 0 ? total_stmts / total_wall : 0.0);
  for (size_t c = 0; c < clients; ++c) {
    std::printf("  client %2zu: %llu stmt, %.3f s wall (%.0f stmt/s), "
                "%.3f s simulated, %llu qualifying row(s)\n",
                c, static_cast<unsigned long long>(results[c].statements),
                results[c].wall_seconds,
                results[c].wall_seconds > 0
                    ? results[c].statements / results[c].wall_seconds
                    : 0.0,
                results[c].simulated_seconds,
                static_cast<unsigned long long>(results[c].rows_total));
  }
  std::printf("  simulated query work: %.3f s across all clients\n", total_sim);
  std::printf("  background maintenance: %llu idle point(s) -> %llu pass(es) "
              "run, %llu skipped by the load watermark; %llu split(s), %s "
              "rewritten off the query path; %llu column(s) pending after "
              "stop\n",
              static_cast<unsigned long long>(ledger.schedules),
              static_cast<unsigned long long>(ledger.runs),
              static_cast<unsigned long long>(ledger.skips),
              static_cast<unsigned long long>(ledger.background_total.splits),
              FormatBytes(ledger.background_total.write_bytes).c_str(),
              static_cast<unsigned long long>(ledger.columns_with_pending_work));
  std::printf("  admission: peak session queue %zu, %llu blocked submit(s)\n",
              srv.peak_session_queue(),
              static_cast<unsigned long long>(srv.admission_waits()));

  // --- hot-column phase: 64 pipelining clients hammer one popular range ----
  // Shared scans ON vs OFF over the same (by now adapted) store: the ON run
  // must save physical filter passes; both runs must agree with the oracle.
  const size_t hot_clients = 64;
  const size_t hot_per_client = smoke ? 4 : 50;
  const double span = cfg.footprint.hi - cfg.footprint.lo;
  const ValueRange hot_range(cfg.footprint.lo + 0.30 * span,
                             cfg.footprint.lo + 0.35 * span);
  uint64_t hot_expected = 0;
  for (const float v : ra) {
    if (v >= hot_range.lo && v < hot_range.hi) ++hot_expected;
  }
  const std::string hot_stmt = BetweenQuery(hot_range);
  const HotResult hot_on =
      RunHotPhase(&cat, &sched, opts.executors, hot_clients, hot_per_client,
                  hot_stmt, hot_expected, /*shared_scans=*/true);
  const HotResult hot_off =
      RunHotPhase(&cat, &sched, opts.executors, hot_clients, hot_per_client,
                  hot_stmt, hot_expected, /*shared_scans=*/false);
  std::printf("\n  hot column (%zu clients x %zu pipelined, one %.1f%%-"
              "selectivity range):\n",
              hot_clients, hot_per_client, 100.0 * 0.05);
  const auto hot_line = [](const char* label, const HotResult& r) {
    std::printf("    shared scans %s: %llu stmt in %.3f s  ->  %.0f stmt/s; "
                "%llu batch(es), %llu batched stmt(s), %llu scan(s) saved\n",
                label, static_cast<unsigned long long>(r.statements),
                r.wall_seconds,
                r.wall_seconds > 0 ? r.statements / r.wall_seconds : 0.0,
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.batched_statements),
                static_cast<unsigned long long>(r.scans_saved));
  };
  hot_line("ON ", hot_on);
  hot_line("off", hot_off);

  if (!smoke) return connect_failed.load() ? 1 : 0;

  // --- smoke self-checks (the ctest gate) ----------------------------------
  int rc = 0;
  const auto fail = [&rc](const char* what) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
    rc = 1;
  };
  if (connect_failed.load()) fail("a client failed to connect");
  if (total_failures != 0) fail("a statement reply failed");
  if (total_stmts != clients * queries) fail("statement count mismatch");
  // Oracle: replay every client's ranges against the raw column.
  for (size_t c = 0; c < clients && rc == 0; ++c) {
    uint64_t expect = 0;
    for (const ValueRange& q : ranges[c]) {
      for (const float v : ra) {
        if (v >= q.lo && v < q.hi) ++expect;
      }
    }
    if (expect != results[c].rows_total) fail("count(*) oracle mismatch");
  }
  if (ledger.schedules != ledger.runs + ledger.skips) {
    fail("maintenance ledger unbalanced after stop");
  }
  if (ledger.columns_with_pending_work != 0) {
    fail("pending idle work left after graceful stop");
  }
  if (ledger.runs == 0) fail("background lane never ran");
  // Hot-column gates: every pipelined statement got its (correct) reply on
  // both servers, and the cooperative batches provably shared work.
  if (hot_on.failures != 0 || hot_off.failures != 0) {
    fail("hot-column phase dropped a statement");
  }
  if (hot_on.statements != hot_clients * hot_per_client ||
      hot_off.statements != hot_clients * hot_per_client) {
    fail("hot-column statement count mismatch");
  }
  if (hot_on.count_mismatches != 0 || hot_off.count_mismatches != 0) {
    fail("hot-column count(*) oracle mismatch");
  }
  if (hot_on.scans_saved == 0) fail("shared scans saved nothing at 64 clients");
  if (hot_off.batches != 0 || hot_off.scans_saved != 0) {
    fail("baseline server formed scan batches with sharing off");
  }
  std::printf("  smoke: %s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}
