// Figure 10: average time spent in adaptation vs. selection per query after
// the first 200 queries, for the three SkyServer workloads (random / skewed /
// changing) and the four schemes (NoSegm, GD, APM 1-25MB, APM 1-5MB).
// Times are simulated milliseconds from the calibrated cost model (see
// DESIGN.md substitution notes); wall-clock seconds per run are reported as
// a sanity column.
#include <iostream>

#include "bench_common.h"
#include "common/math_util.h"
#include "common/series.h"
#include "common/stopwatch.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const SkyServerConfig cfg = SkyConfig();
  const auto ra = MakeRaColumn(cfg);
  std::cout << "SkyServer ra column: " << ra.size() << " values ("
            << FormatBytes(ra.size() * sizeof(float)) << ")\n\n";
  struct Wl {
    const char* name;
    Workload w;
  };
  const std::vector<Wl> workloads{{"Random", MakeRandomWorkload(cfg, 200)},
                                  {"Skewed", MakeSkewedWorkload(cfg, 200)},
                                  {"Changing", MakeChangingWorkload(cfg, 200)}};
  for (const Wl& wl : workloads) {
    ResultTable table(std::string("Figure 10 (") + wl.name +
                          " workload): avg per-query time after 200 queries",
                      {"scheme", "adaptation_ms", "selection_ms", "total_ms",
                       "wall_s"});
    for (SkyScheme s : AllSkySchemes()) {
      SegmentSpace space;
      auto strat = MakeSkyStrategy(s, ra, cfg, &space);
      Stopwatch sw;
      SkyRun run = RunSkyWorkload(*strat, wl.w, space.model());
      table.AddRow(SkySchemeName(s), Mean(run.adaptation_ms),
                   Mean(run.selection_ms), Mean(run.total_ms),
                   FormatNumber(sw.ElapsedSeconds()));
    }
    table.Print(std::cout);
  }
  std::cout << "Expected shape (paper): APM adaptation overhead < GD's;\n"
               "APM 1-5 adapts more but selects faster than APM 1-25 (smaller\n"
               "segments); every adaptive scheme beats NoSegm on total time.\n";
  return 0;
}
