// Operator microbenchmarks (google-benchmark): the primitive costs behind
// the simulator's cost model -- scans, partitioning, meta-index lookups,
// replica-tree covers, cracking, and the BAT operators.
#include <benchmark/benchmark.h>

#include "bat/algebra.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "core/cracking.h"
#include "core/replica_tree.h"
#include "core/segment_meta_index.h"
#include "core/strategy.h"
#include "workload/range_generator.h"

namespace socs {
namespace {

std::vector<int32_t> Data(size_t n) { return MakeUniformIntColumn(n, 1'000'000, 7); }

void BM_FilterRangeScan(benchmark::State& state) {
  const auto data = Data(static_cast<size_t>(state.range(0)));
  std::span<const int32_t> span(data);
  const ValueRange q(100'000, 200'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterRange<int32_t>(span, q, nullptr));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          data.size() * sizeof(int32_t));
}
BENCHMARK(BM_FilterRangeScan)->Arg(100'000)->Arg(1'000'000);

void BM_PartitionByCuts(benchmark::State& state) {
  const auto data = Data(static_cast<size_t>(state.range(0)));
  std::span<const int32_t> span(data);
  const std::vector<double> cuts{250'000, 500'000, 750'000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionByCuts(span, cuts));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          data.size() * sizeof(int32_t));
}
BENCHMARK(BM_PartitionByCuts)->Arg(100'000)->Arg(1'000'000);

void BM_MetaIndexLookup(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  SegmentMetaIndex idx(ValueRange(0, 1'000'000));
  std::vector<SegmentInfo> segs;
  for (size_t i = 0; i < parts; ++i) {
    segs.push_back(SegmentInfo{ValueRange(i * 1e6 / parts, (i + 1) * 1e6 / parts),
                               100, i + 1});
  }
  segs.back().range.hi = 1'000'000;
  idx.InitTiling(segs);
  Rng rng(3);
  for (auto _ : state) {
    const double lo = rng.NextUniform(0, 900'000);
    benchmark::DoNotOptimize(idx.FindOverlapping(ValueRange(lo, lo + 50'000)));
  }
}
BENCHMARK(BM_MetaIndexLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_ReplicaTreeCover(benchmark::State& state) {
  // A replica tree shaped like a converged run: a flat forest of segments.
  const size_t leaves = static_cast<size_t>(state.range(0));
  ReplicaTree tree(ValueRange(0, 1'000'000));
  ReplicaNode* root = tree.InitColumn(1'000'000, 1);
  std::vector<ReplicaNodeSpec> specs;
  for (size_t i = 0; i < leaves; ++i) {
    specs.push_back({{i * 1e6 / leaves, (i + 1) * 1e6 / leaves}, 1000});
  }
  specs.back().range.hi = 1'000'000;
  auto kids = tree.AddChildren(root, specs);
  for (auto* k : kids) {
    k->materialized = true;
    k->seg = 2;
  }
  Rng rng(5);
  std::vector<ReplicaNode*> cover;
  for (auto _ : state) {
    const double lo = rng.NextUniform(0, 900'000);
    tree.GetCover(ValueRange(lo, lo + 50'000), &cover);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_ReplicaTreeCover)->Arg(16)->Arg(256)->Arg(4096);

void BM_AdaptiveSegmentationQuery(benchmark::State& state) {
  SegmentSpace space;
  AdaptiveSegmentation<int32_t> strat(Data(100'000), ValueRange(0, 1'000'000),
                                      std::make_unique<Apm>(3 * kKiB, 12 * kKiB),
                                      &space);
  UniformRangeGenerator warm(ValueRange(0, 1'000'000), 0.01, 9);
  for (int i = 0; i < 500; ++i) strat.RunRange(warm.Next().range);  // converge
  Rng rng(11);
  for (auto _ : state) {
    const double lo = rng.NextUniform(0, 990'000);
    benchmark::DoNotOptimize(strat.RunRange(ValueRange(lo, lo + 10'000)));
  }
}
BENCHMARK(BM_AdaptiveSegmentationQuery);

void BM_CrackingQuery(benchmark::State& state) {
  SegmentSpace space;
  CrackingColumn<int32_t> strat(Data(100'000), ValueRange(0, 1'000'000), &space);
  UniformRangeGenerator warm(ValueRange(0, 1'000'000), 0.01, 13);
  for (int i = 0; i < 500; ++i) strat.RunRange(warm.Next().range);
  Rng rng(15);
  for (auto _ : state) {
    const double lo = rng.NextUniform(0, 990'000);
    benchmark::DoNotOptimize(strat.RunRange(ValueRange(lo, lo + 10'000)));
  }
}
BENCHMARK(BM_CrackingQuery);

void BM_BatSelect(benchmark::State& state) {
  Bat b = Bat::DenseTyped(TypedVector::Of(Data(static_cast<size_t>(state.range(0)))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::Select(b, 100'000, 200'000));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          b.size() * sizeof(int32_t));
}
BENCHMARK(BM_BatSelect)->Arg(100'000)->Arg(1'000'000);

void BM_BatJoinPositional(benchmark::State& state) {
  const size_t n = 100'000;
  Bat col = Bat::DenseTyped(TypedVector::Of(std::vector<int64_t>(n, 7)));
  std::vector<Oid> cand;
  Rng rng(17);
  for (size_t i = 0; i < n / 10; ++i) cand.push_back(rng.NextBelow(n));
  Bat probe = algebra::Reverse(algebra::MarkT(Bat::OidList(cand), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::Join(probe, col));
  }
}
BENCHMARK(BM_BatJoinPositional);

}  // namespace
}  // namespace socs
