// Ablation (paper section 8): self-tuning APM bounds. The paper's fixed
// APM 3KB/12KB is tuned for ~4KB selections; a workload with a different
// selectivity pays read amplification until a human retunes it. AutoApm
// derives its bounds from an EMA of observed selection sizes. Simulation
// setting, uniform placement, 10K queries per cell.
#include <iostream>

#include "bench_common.h"
#include "common/series.h"
#include "core/auto_apm.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  const ValueRange domain(0, kSimDomain);
  ResultTable table(
      "Ablation (paper 8): fixed APM 3-12KB vs self-tuning AutoApm",
      {"selectivity", "model", "avg_read_KB", "read_amplification",
       "total_write_MB", "segments"});
  for (double sel : {0.1, 0.01, 0.001, 0.0001}) {
    const double selection_kb = 400000.0 * sel / 1024.0;
    for (int which = 0; which < 2; ++which) {
      SegmentSpace space;
      std::unique_ptr<SegmentationModel> model;
      if (which == 0) {
        model = std::make_unique<Apm>(kSimApmMin, kSimApmMax);
      } else {
        model = std::make_unique<AutoApm>();
      }
      const std::string name = model->Name();
      AdaptiveSegmentation<int32_t> strat(data, domain, std::move(model),
                                          &space);
      auto gen = MakeSimGen(false, sel);
      RunRecorder rec = RunWorkload(strat, gen->Generate(kSimQueries));
      table.AddRow(sel, name, rec.AverageReadBytes() / 1024.0,
                   rec.AverageReadBytes() / 1024.0 / selection_kb,
                   rec.CumulativeWrites().back() / (1024.0 * 1024.0),
                   strat.Footprint().segment_count);
    }
  }
  table.Print(std::cout);
  std::cout << "Reading: the fixed bounds are near-optimal only at the\n"
               "selectivity they were tuned for; AutoApm keeps read\n"
               "amplification within a small constant factor across four\n"
               "orders of magnitude of selectivity -- the self-tuning the\n"
               "paper's section 8 calls for.\n";
  return 0;
}
