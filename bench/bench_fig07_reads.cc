// Figure 7: memory reads per query for the first 1000 queries (uniform
// placement, selectivity 0.1), one panel per strategy. We print a sampled
// series plus the full-scan spike count for the replication strategies.
#include <iostream>

#include "bench_common.h"
#include "common/series.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  constexpr size_t kQueries = 1000;
  std::vector<RunRecorder> recs;
  for (Scheme s : AllSchemes()) {
    SegmentSpace space;
    auto strat = MakeSimStrategy(s, data, &space);
    auto gen = MakeSimGen(/*zipf=*/false, 0.1);
    recs.push_back(RunWorkload(*strat, gen->Generate(kQueries)));
  }
  ResultTable table(
      "Figure 7: memory reads (bytes) per query, uniform, selectivity 0.1",
      {"query", "GD Segm", "GD Repl", "APM Segm", "APM Repl"});
  for (size_t q = 1; q <= kQueries; q += (q < 50 ? 7 : 50)) {
    table.AddRow(q, recs[0].reads()[q - 1], recs[1].reads()[q - 1],
                 recs[2].reads()[q - 1], recs[3].reads()[q - 1]);
  }
  table.Print(std::cout);

  // The paper's visual signature: replication curves show full-column spikes
  // when a query first hits an area covered only by virtual segments.
  ResultTable spikes("Figure 7 auxiliary: full-column-scan spikes (reads >= 300KB)",
                     {"strategy", "spikes", "final_reads_B"});
  for (size_t i = 0; i < recs.size(); ++i) {
    int n = 0;
    for (double r : recs[i].reads()) n += (r >= 300'000.0);
    spikes.AddRow(SchemeName(AllSchemes()[i]), n, recs[i].reads().back());
  }
  spikes.Print(std::cout);
  std::cout << "Expected shape (paper): reads drop fast for segmentation;\n"
               "replication shows early full-scan spikes, then stabilizes "
               "near the 40KB selection size.\n";
  return 0;
}
