// Durability-cost benchmark: wall-clock price of the crash-safe segment
// store (src/persist) on the demo-shaped SkyServer catalog. Measures the
// four durable phases separately:
//
//   mirror      -- building the catalog with the durability sink attached
//                  (every materialized segment is appended to the size-class
//                  files and the object-table delta log, fsync'd)
//   checkpoint  -- first full checkpoint (object-table snapshot + database
//                  image + superblock flip)
//   checkpoint2 -- incremental checkpoint after the column adapted under a
//                  query stream (the steady-state background-lane cost)
//   recover     -- cold reopen: superblock -> checkpoint parse -> delta-log
//                  replay -> segment materialization -> strategy rebuild
//
// The run is crash-shaped: after the last checkpoint a deterministic query
// tail reorganizes the column further (delta-log records, no checkpoint) and
// the store is dropped without a final commit. Recovery must replay the
// delta tail, resurrect image-referenced segments, and -- the self-check --
// re-running the same tail must produce byte-identical "#layout" geometry
// and probe replies. Writes BENCH_recovery.json.
//
//   $ ./bench/bench_recovery            # full run (4.5M-row ra column)
//   $ ./bench/bench_recovery --smoke    # tiny run + ctest assertions
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/series.h"
#include "common/units.h"
#include "core/adaptive_segmentation.h"
#include "core/apm.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "persist/bootstrap.h"
#include "persist/store.h"
#include "server/session.h"
#include "workload/skyserver.h"

using namespace socs;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The demo-shaped catalog: P(ra adaptive-segmented, objid), same build as
// examples/socs_server and the recovery tests.
void BuildSkyCatalog(Catalog* cat, SegmentSpace* space,
                     const SkyServerConfig& cfg) {
  const std::vector<float> ra_floats = MakeRaColumn(cfg);
  std::vector<OidValue> ra;
  std::vector<int64_t> objid;
  ra.reserve(ra_floats.size());
  for (size_t i = 0; i < ra_floats.size(); ++i) {
    ra.push_back({i, static_cast<double>(ra_floats[i])});
    objid.push_back(static_cast<int64_t>(587722981742084097LL + i));
  }
  // APM bounds scale with the column (aiming for tens of segments) so smoke
  // and full runs keep the same geometry -- and so the post-checkpoint tail
  // below actually splits, exercising delta-log replay on recovery.
  const uint64_t col_bytes = ra.size() * sizeof(OidValue);
  auto strat = std::make_unique<AdaptiveSegmentation<OidValue>>(
      ra, cfg.footprint,
      std::make_unique<Apm>(col_bytes / 72 + 1, col_bytes / 18 + 1), space);
  auto col = std::make_unique<SegmentedColumn>(Catalog::SegHandle("P", "ra"),
                                               ValType::kDbl, std::move(strat),
                                               space);
  SOCS_CHECK(cat->AddSegmentedColumn("P", "ra", std::move(col)).ok());
  SOCS_CHECK(cat->AddColumn("P", "objid", TypedVector::Of(objid)).ok());
}

std::vector<std::string> SkyQueries(const SkyServerConfig& cfg, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) {
    const double width = rng.NextUniform(1.0, 8.0);
    const double lo =
        rng.NextUniform(cfg.footprint.lo, cfg.footprint.hi - width);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "select objid from P where ra between %.6f and %.6f", lo,
                  lo + width);
    out.push_back(buf);
  }
  return out;
}

void RunAll(server::Session* session, const std::vector<std::string>& queries) {
  for (const std::string& q : queries) {
    const server::WireReply r = session->Execute(q);
    SOCS_CHECK(r.ok) << q << ": " << r.error;
  }
}

StatusOr<std::unique_ptr<persist::PersistentStore>> OpenStore(
    const std::string& dir) {
  persist::PersistentStore::Options opts;
  opts.dir = dir;
  return persist::PersistentStore::Open(std::move(opts));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  SkyServerConfig cfg;
  cfg.num_objects = smoke ? 150'000 : 4'500'000;
  const size_t adapt_queries = smoke ? 60 : 400;
  const size_t tail_queries = smoke ? 20 : 100;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "socs_bench_recovery").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto adapt = SkyQueries(cfg, adapt_queries, /*seed=*/11);
  const auto mid = SkyQueries(cfg, tail_queries, /*seed=*/12);
  const auto tail = SkyQueries(cfg, tail_queries, /*seed=*/13);
  const std::string probe =
      "select objid from P where ra between 205.100000 and 205.160000";

  double mirror_s = 0, ckpt_s = 0, ckpt2_s = 0, recover_s = 0;
  uint64_t ckpt_bytes = 0, delta_records = 0, live_segments = 0;
  uint64_t live_bytes = 0, last_gen = 0;
  std::vector<std::string> pre_layout, pre_probe;

  {
    auto store = OpenStore(dir);
    SOCS_CHECK(store.ok()) << store.status().ToString();
    Catalog cat;
    SegmentSpace space;
    space.set_durability(store->get());
    TaskScheduler sched(1);  // query-driven adaptation only: deterministic

    auto t0 = std::chrono::steady_clock::now();
    BuildSkyCatalog(&cat, &space, cfg);
    mirror_s = Seconds(t0);

    server::Session session(&cat, &sched);
    RunAll(&session, adapt);

    t0 = std::chrono::steady_clock::now();
    auto gen = persist::CheckpointNow(store->get(), cat);
    ckpt_s = Seconds(t0);
    SOCS_CHECK(gen.ok()) << gen.status().ToString();

    // Adapt further, then commit again: the steady-state incremental cost.
    RunAll(&session, mid);
    t0 = std::chrono::steady_clock::now();
    gen = persist::CheckpointNow(store->get(), cat);
    ckpt2_s = Seconds(t0);
    SOCS_CHECK(gen.ok()) << gen.status().ToString();
    last_gen = *gen;
    ckpt_bytes = std::filesystem::file_size(
        dir + "/checkpoint_" + std::to_string(*gen) + ".ckpt");

    // Crash-shaped epilogue: a deterministic tail reorganizes past the last
    // checkpoint (delta-log records only), then the process "dies" -- no
    // final commit. The same tail re-run after recovery must evolve the
    // restored column identically.
    RunAll(&session, tail);
    pre_layout = session.Execute("#layout").rows;
    pre_probe = session.Execute(probe).rows;

    const persist::PersistentStore::Stats s = (*store)->stats();
    delta_records = s.delta_records_since_checkpoint;
    live_segments = s.live_segments;
    live_bytes = s.live_payload_bytes;
    SOCS_CHECK_GT(delta_records, 0u)
        << "post-checkpoint tail logged nothing: recovery would not "
           "exercise delta replay";
    space.set_durability(nullptr);
  }

  {
    auto t0 = std::chrono::steady_clock::now();
    auto store = OpenStore(dir);
    SOCS_CHECK(store.ok()) << store.status().ToString();
    Catalog cat;
    SegmentSpace space;
    space.set_durability(store->get());
    auto report = persist::RestoreDatabase(store->get(), &space, &cat);
    SOCS_CHECK(report.ok()) << report.status().ToString();
    recover_s = Seconds(t0);

    const persist::RecoveryInfo& rec = (*store)->recovery();
    SOCS_CHECK_EQ(rec.generation, last_gen);
    SOCS_CHECK(!rec.fell_back);

    TaskScheduler sched(1);
    server::Session session(&cat, &sched);
    RunAll(&session, tail);  // the same post-checkpoint tail
    const std::vector<std::string> post_layout =
        session.Execute("#layout").rows;
    const std::vector<std::string> post_probe = session.Execute(probe).rows;
    if (post_layout != pre_layout) {
      for (size_t i = 0; i < std::max(post_layout.size(), pre_layout.size());
           ++i) {
        const std::string a = i < pre_layout.size() ? pre_layout[i] : "<none>";
        const std::string b =
            i < post_layout.size() ? post_layout[i] : "<none>";
        if (a != b) {
          std::cerr << "row " << i << ":\n  pre:  " << a << "\n  post: " << b
                    << "\n";
        }
      }
    }
    SOCS_CHECK(post_layout == pre_layout)
        << "recovered #layout differs (" << post_layout.size() << " vs "
        << pre_layout.size() << " rows)";
    SOCS_CHECK(post_probe == pre_probe) << "recovered probe reply differs";

    ResultTable table("Durability cost (ra column, " +
                          std::to_string(cfg.num_objects) + " rows)",
                      {"phase", "seconds", "notes"});
    table.AddRow("mirror", FormatNumber(mirror_s),
                 FormatBytes(live_bytes) + " live in " +
                     std::to_string(live_segments) + " segment(s)");
    table.AddRow("checkpoint", FormatNumber(ckpt_s),
                 FormatBytes(ckpt_bytes) + " checkpoint file");
    table.AddRow("checkpoint2", FormatNumber(ckpt2_s), "incremental commit");
    table.AddRow("recover", FormatNumber(recover_s),
                 std::to_string(report->segments_restored) + " restored, " +
                     std::to_string(report->segments_swept) + " swept, " +
                     std::to_string(rec.delta_records) + " delta record(s)");
    table.Print(std::cout);

    std::ofstream json("BENCH_recovery.json");
    json << "{\n  \"smoke\": " << (smoke ? "true" : "false")
         << ",\n  \"rows\": " << cfg.num_objects
         << ",\n  \"adapt_queries\": " << adapt_queries
         << ",\n  \"tail_queries\": " << tail_queries
         << ",\n  \"mirror_s\": " << mirror_s
         << ",\n  \"checkpoint_s\": " << ckpt_s
         << ",\n  \"checkpoint2_s\": " << ckpt2_s
         << ",\n  \"checkpoint_bytes\": " << ckpt_bytes
         << ",\n  \"live_segments\": " << live_segments
         << ",\n  \"live_bytes\": " << live_bytes
         << ",\n  \"delta_records\": " << delta_records
         << ",\n  \"recover_s\": " << recover_s
         << ",\n  \"segments_restored\": " << report->segments_restored
         << ",\n  \"segments_swept\": " << report->segments_swept
         << ",\n  \"replayed_records\": " << rec.delta_records
         << ",\n  \"layout_rows\": " << pre_layout.size() << "\n}\n";
    std::cout << "wrote BENCH_recovery.json\n";
    std::cout << "self-check: post-recovery #layout and probe replies are "
                 "byte-identical to the\npre-crash run ("
              << pre_layout.size() << " layout row(s), " << pre_probe.size()
              << " probe row(s))\n";
    space.set_durability(nullptr);
  }

  std::filesystem::remove_all(dir);
  return 0;
}
