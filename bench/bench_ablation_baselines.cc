// Ablation (beyond the paper): the adaptive strategies against the static
// alternatives the paper's introduction argues against -- a non-segmented
// scan, C-Store-style fixed positional blocks (with and without zone maps),
// a DBA-style static value partitioning -- and against database cracking,
// the closest related work. Simulation setting, 2000 queries.
#include <iostream>

#include "bench_common.h"
#include "common/series.h"
#include "core/cracking.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"

using namespace socs;
using namespace socs::bench;

int main() {
  const auto data = MakeSimColumn();
  const ValueRange domain(0, kSimDomain);
  constexpr size_t kQueries = 2000;

  for (bool zipf : {false, true}) {
    for (double sel : {0.1, 0.01}) {
      ResultTable table(
          std::string("Ablation: strategies under ") +
              (zipf ? "Zipf" : "uniform") + " placement, selectivity " +
              FormatNumber(sel) + ", 2000 queries",
          {"strategy", "avg_read_KB", "total_write_MB", "sim_total_ms",
           "segments", "storage_KB"});

      auto report = [&](AccessStrategy<int32_t>& strat) {
        auto gen = MakeSimGen(zipf, sel);
        RunRecorder rec = RunWorkload(strat, gen->Generate(kQueries));
        table.AddRow(strat.Name(), rec.AverageReadBytes() / 1024.0,
                     rec.CumulativeWrites().back() / (1024.0 * 1024.0),
                     rec.CumulativeTotalSeconds().back() * 1e3,
                     strat.Footprint().segment_count,
                     strat.Footprint().materialized_bytes / 1024.0);
      };

      {
        SegmentSpace sp;
        NonSegmented<int32_t> s(data, domain, &sp);
        report(s);
      }
      {
        SegmentSpace sp;
        PositionalBlocks<int32_t> s(data, domain, 64 * kKiB, &sp);
        report(s);
      }
      {
        SegmentSpace sp;
        PositionalBlocks<int32_t> s(data, domain, 64 * kKiB, &sp, true);
        report(s);
      }
      {
        SegmentSpace sp;
        StaticPartition<int32_t> s(data, domain, 33, &sp);  // ~12KB parts
        report(s);
      }
      {
        SegmentSpace sp;
        CrackingColumn<int32_t> s(data, domain, &sp);
        report(s);
      }
      {
        SegmentSpace sp;
        auto s = MakeSimStrategy(Scheme::kApmSegm, data, &sp);
        report(*s);
      }
      {
        SegmentSpace sp;
        auto s = MakeSimStrategy(Scheme::kApmRepl, data, &sp);
        report(*s);
      }
      table.Print(std::cout);
    }
  }
  std::cout << "Reading: positional blocks cannot prune by value; static\n"
               "partitioning matches adaptive reads only when the DBA's grid\n"
               "fits the workload; cracking reads least but keeps a full\n"
               "in-memory replica (storage 2x) and pays per-query write\n"
               "traffic; the adaptive strategies approach cracking's reads\n"
               "with disk-manageable segments.\n";
  return 0;
}
