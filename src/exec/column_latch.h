// Per-column latch of the parallel execution subsystem. Under the versioned
// cover discipline (strategy.h, exec/epoch_manager.h) this latch is the
// WRITE-WRITE path only: scans pin the published epoch and walk an immutable
// cover snapshot latch-free, so the latch serializes just the mutators
// against each other:
//
//   exclusive  -- Reorganize, the Append write path, background maintenance
//                 (deferred batch flushes), and the first-cover publish;
//   shared     -- retained solely by strategies that opted out of snapshot
//                 scans (cracking reorganizes its in-memory array in place)
//                 and by the engine's unmetered full-scan fallback, whose
//                 reads have no cover to pin.
//
// Counter semantics match the discipline: shared_acquisitions counts only
// those opt-out/fallback reads (an ordinary snapshot workload leaves it at
// 0), while scans are proven by EpochManager::pins() and mutation safety by
// its retire/reclaim counters. exclusive_acquisitions keeps counting every
// writer entry.
//
// The latch is deliberately not recursive: the virtual phase methods are
// unlatched, and only the non-virtual entry points (RunRange, Append,
// RunIdleWork, the engine's SegmentedColumn) acquire it.
#ifndef SOCS_EXEC_COLUMN_LATCH_H_
#define SOCS_EXEC_COLUMN_LATCH_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace socs {

class ColumnLatch {
 public:
  ColumnLatch() = default;
  ColumnLatch(const ColumnLatch&) = delete;
  ColumnLatch& operator=(const ColumnLatch&) = delete;

  void LockShared() {
    mu_.lock_shared();
    shared_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnlockShared() { mu_.unlock_shared(); }

  void LockExclusive() {
    mu_.lock();
    exclusive_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnlockExclusive() { mu_.unlock(); }

  /// Acquisition counters: cheap proof in tests/benches that the latch
  /// actually guards the phases (scans shared, reorganization exclusive).
  uint64_t shared_acquisitions() const {
    return shared_acquisitions_.load(std::memory_order_relaxed);
  }
  uint64_t exclusive_acquisitions() const {
    return exclusive_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_mutex mu_;
  std::atomic<uint64_t> shared_acquisitions_{0};
  std::atomic<uint64_t> exclusive_acquisitions_{0};
};

/// RAII guard for the scan phase.
class SharedColumnGuard {
 public:
  explicit SharedColumnGuard(ColumnLatch& latch) : latch_(latch) {
    latch_.LockShared();
  }
  SharedColumnGuard(const SharedColumnGuard&) = delete;
  SharedColumnGuard& operator=(const SharedColumnGuard&) = delete;
  ~SharedColumnGuard() { latch_.UnlockShared(); }

 private:
  ColumnLatch& latch_;
};

/// RAII guard for the reorganizing module / write path.
class ExclusiveColumnGuard {
 public:
  explicit ExclusiveColumnGuard(ColumnLatch& latch) : latch_(latch) {
    latch_.LockExclusive();
  }
  ExclusiveColumnGuard(const ExclusiveColumnGuard&) = delete;
  ExclusiveColumnGuard& operator=(const ExclusiveColumnGuard&) = delete;
  ~ExclusiveColumnGuard() { latch_.UnlockExclusive(); }

 private:
  ColumnLatch& latch_;
};

}  // namespace socs

#endif  // SOCS_EXEC_COLUMN_LATCH_H_
