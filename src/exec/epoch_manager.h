// Epoch-based reclamation for versioned segment covers (the MVCC-style
// snapshot-read discipline of the parallel execution subsystem).
//
// One EpochManager per column. Writers (Reorganize / Append / FlushBatch)
// build the new segmentation off to the side and make it visible with a
// single Advance() of the published epoch; readers Pin() the published epoch
// into a per-reader slot before walking a cover and Unpin() when done. A
// segment retired by a mutation that published epoch E may be reclaimed only
// once every active reader has pinned an epoch >= E (MinActive() >= E):
// readers pinned at E-1 may still be walking the pre-mutation cover that
// references it, while readers pinned at E and later only ever see the new
// cover. Readers therefore never block on reorganization and never observe
// a freed segment.
//
// Pin() uses the classic two-step protocol: claim a free slot with the
// currently published epoch, then re-read the published epoch and update the
// slot until it is stable. With seq_cst ordering on the published counter and
// the slots this closes the announce race: either the reader's slot value is
// visible to a writer's post-Advance MinActive() scan, or the reader is
// guaranteed to have observed the new epoch (and the new cover published
// before it).
//
// Slots are a fixed array; a reader arriving while all slots are claimed
// spins (yielding) until one frees up -- scans always finish, so this bounds
// only peak reader concurrency (far above the server's session cap), never
// progress.
#ifndef SOCS_EXEC_EPOCH_MANAGER_H_
#define SOCS_EXEC_EPOCH_MANAGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>

namespace socs {

class EpochManager {
 public:
  static constexpr size_t kMaxReaders = 128;
  /// MinActive() when no reader is pinned: every retired epoch qualifies.
  static constexpr uint64_t kNoReaders = UINT64_MAX;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The currently published epoch. Starts at 1 so a slot value of 0 can
  /// unambiguously mean "free".
  uint64_t published() const { return published_.load(); }

  /// Publishes the next epoch (writers call this AFTER installing the new
  /// cover, under the column's exclusive latch). Returns the new epoch.
  uint64_t Advance() { return published_.fetch_add(1) + 1; }

  /// Pins the published epoch into a free per-reader slot and returns the
  /// slot index. Lock-free against writers; spins only when all kMaxReaders
  /// slots are simultaneously claimed.
  size_t Pin() {
    for (;;) {
      for (size_t i = 0; i < kMaxReaders; ++i) {
        uint64_t expected = 0;
        uint64_t e = published_.load();
        if (!slots_[i].compare_exchange_strong(expected, e)) continue;
        // Confirm loop: re-read until the announcement is stable, so a
        // concurrent Advance either sees our slot or we see its epoch.
        for (;;) {
          const uint64_t now = published_.load();
          if (now == e) break;
          slots_[i].store(now);
          e = now;
        }
        pins_.fetch_add(1, std::memory_order_relaxed);
        return i;
      }
      std::this_thread::yield();
    }
  }

  /// Releases a slot returned by Pin().
  void Unpin(size_t slot) { slots_[slot].store(0); }

  /// The epoch a slot currently holds (0 when free). Test/diagnostic hook.
  uint64_t PinnedAt(size_t slot) const { return slots_[slot].load(); }

  /// Minimum epoch pinned by any active reader, or kNoReaders when none.
  /// Writers compare retired epochs against this to decide reclamation.
  uint64_t MinActive() const {
    uint64_t min = kNoReaders;
    for (const auto& s : slots_) {
      const uint64_t v = s.load();
      if (v != 0 && v < min) min = v;
    }
    return min;
  }

  /// Currently pinned reader count (test/diagnostic hook; racy by nature).
  size_t ActivePins() const {
    size_t n = 0;
    for (const auto& s : slots_) {
      if (s.load(std::memory_order_relaxed) != 0) ++n;
    }
    return n;
  }

  // --- lifetime counters ------------------------------------------------------
  // Cheap proof in tests/benches that the guard actually engages: scans pin
  // epochs (not the shared latch), mutations retire segments instead of
  // freeing them, and reclamation happens only after the pins pass.

  void NoteRetire() { retires_.fetch_add(1, std::memory_order_relaxed); }
  void NoteReclaim() { reclaims_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t pins() const { return pins_.load(std::memory_order_relaxed); }
  uint64_t retires() const { return retires_.load(std::memory_order_relaxed); }
  uint64_t reclaims() const {
    return reclaims_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> published_{1};
  std::array<std::atomic<uint64_t>, kMaxReaders> slots_{};  // 0 = free
  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> retires_{0};
  std::atomic<uint64_t> reclaims_{0};
};

}  // namespace socs

#endif  // SOCS_EXEC_EPOCH_MANAGER_H_
