// Shared `--threads N` flag parsing for every driver that sizes the
// execution subsystem (examples/sql_shell, the bench drivers). The default
// of 1 keeps published figures byte-reproducible; any N is safe because the
// scan fan-out is metering-deterministic (sim/io_lane.h).
#ifndef SOCS_EXEC_THREADS_FLAG_H_
#define SOCS_EXEC_THREADS_FLAG_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace socs {

/// Accepts `--threads N` and `--threads=N`; non-positive or missing values
/// fall back to `default_threads`.
inline size_t ParseThreadsFlag(int argc, char** argv,
                               size_t default_threads = 1) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long n = std::atol(argv[i + 1]);
      return n > 0 ? static_cast<size_t>(n) : default_threads;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long n = std::atol(argv[i] + 10);
      return n > 0 ? static_cast<size_t>(n) : default_threads;
    }
  }
  return default_threads;
}

}  // namespace socs

#endif  // SOCS_EXEC_THREADS_FLAG_H_
