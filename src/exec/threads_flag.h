// Shared `--threads N` flag parsing for every driver that sizes the
// execution subsystem (examples/sql_shell, the bench drivers). The default
// of 1 keeps published figures byte-reproducible; any N is safe because the
// scan fan-out is metering-deterministic (sim/io_lane.h).
#ifndef SOCS_EXEC_THREADS_FLAG_H_
#define SOCS_EXEC_THREADS_FLAG_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace socs {

/// Generic numeric driver flag: accepts `<name> N` and `<name>=N`, falling
/// back to `fallback` when absent (socs_server's --port/--executors, the
/// server bench's --clients/--queries, ...).
inline long ParseLongFlag(int argc, char** argv, const char* name,
                          long fallback) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return std::atol(argv[i + 1]);
    }
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atol(argv[i] + len + 1);
    }
  }
  return fallback;
}

/// Accepts `--threads N` and `--threads=N`; non-positive or missing values
/// fall back to `default_threads`.
inline size_t ParseThreadsFlag(int argc, char** argv,
                               size_t default_threads = 1) {
  const long n = ParseLongFlag(argc, argv, "--threads", 0);
  return n > 0 ? static_cast<size_t>(n) : default_threads;
}

}  // namespace socs

#endif  // SOCS_EXEC_THREADS_FLAG_H_
