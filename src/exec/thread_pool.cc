#include "exec/thread_pool.h"

#include <memory>

#include "common/logging.h"

namespace socs {

ThreadPool::ThreadPool(size_t threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ > 1 ? threads_ - 1 : 0);
  for (size_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    // A queued unit counts toward the backlog from Enqueue until its
    // execution finishes, so backlog() covers running tasks too.
    backlog_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    SOCS_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    // Count before the task becomes visible to workers: a worker could
    // otherwise pop, run and decrement first, wrapping the counter.
    backlog_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (inline_mode()) {
    backlog_.fetch_add(1, std::memory_order_relaxed);
    fn();
    backlog_.fetch_sub(1, std::memory_order_relaxed);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Count at execution, not in WorkerLoop: ParallelFor's helper runners go
  // through the raw Enqueue and are counted per *chunk* (below), not per
  // runner, so tasks_run() is deterministic.
  Enqueue([this, fn = std::move(fn)] {
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  });
}

std::future<void> ThreadPool::SubmitTask(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> ready = task->get_future();
  Submit([task] { (*task)(); });
  return ready;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (inline_mode() || n == 1) {
    backlog_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) fn(i);
    backlog_.fetch_sub(1, std::memory_order_relaxed);
    tasks_run_.fetch_add(n, std::memory_order_relaxed);
    return;
  }
  // Each call gets its own group; workers and the caller pull indices from
  // the group's counter, so concurrent ParallelFor calls never interleave
  // their iteration spaces.
  struct Group {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto group = std::make_shared<Group>();
  auto runner = [group, n, &fn] {
    for (;;) {
      const size_t i = group->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      if (group->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lk(group->mu);
        group->cv.notify_all();
      }
    }
  };
  // The caller claims indices too, so cap the helpers at n - 1. The `&fn`
  // capture stays valid: this frame outlives every helper's runner call
  // because it waits for done == n below.
  // Each busy runner (helpers via Enqueue, the caller here) counts as one
  // backlog unit -- "lanes occupied", the granularity the saturation
  // watermark cares about.
  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t i = 0; i < helpers; ++i) Enqueue(runner);
  backlog_.fetch_add(1, std::memory_order_relaxed);
  runner();
  backlog_.fetch_sub(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(group->mu);
  group->cv.wait(lk, [&] { return group->done.load(std::memory_order_acquire) == n; });
  tasks_run_.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace socs
