// Worker pool for the parallel execution subsystem. Queries fan their scan
// phase out across the workers (AccessStrategy::RunRange, the BPM segment
// iterator); the calling thread always participates in its own fan-out, so a
// pool is never a bottleneck for the query that owns it.
//
// A pool constructed with threads <= 1 is an *inline* pool: it spawns no
// workers and runs every task immediately on the caller's thread, in
// submission order. The default execution mode everywhere is an inline pool
// (or no pool at all), so single-threaded runs stay byte-identical to the
// pre-parallel engine.
#ifndef SOCS_EXEC_THREAD_POOL_H_
#define SOCS_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace socs {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane);
  /// threads <= 1 yields an inline pool with no workers at all.
  explicit ThreadPool(size_t threads = 1);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// The parallelism this pool was built for (>= 1).
  size_t threads() const { return threads_; }
  /// True when the pool runs everything on the caller's thread.
  bool inline_mode() const { return workers_.empty(); }

  /// Schedules `fn`. Inline pools run it before returning; threaded pools
  /// enqueue it for the next free worker. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Submit with a completion handle (the BPM iterator's segment prefetch
  /// waits per-slot, in delivery order).
  std::future<void> SubmitTask(std::function<void()> fn);

  /// Runs fn(0) .. fn(n-1), returning once all completed. The caller
  /// participates, so this makes progress even when every worker is busy
  /// with other groups, and concurrent ParallelFor calls from different
  /// threads are safe. Inline pools run the iterations sequentially in
  /// index order -- byte-identical to a plain loop.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Tasks executed so far (Submit/SubmitTask bodies + ParallelFor chunks).
  uint64_t tasks_run() const { return tasks_run_.load(std::memory_order_relaxed); }

  /// Foreground load right now: tasks queued plus tasks being executed
  /// (including the chunks of in-flight ParallelFor groups). An advisory
  /// snapshot -- the value can change before the caller acts on it -- used by
  /// the TaskScheduler's idle-detection watermark.
  size_t backlog() const { return backlog_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> fn);

  size_t threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<size_t> backlog_{0};
};

}  // namespace socs

#endif  // SOCS_EXEC_THREAD_POOL_H_
