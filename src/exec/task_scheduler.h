// Two-lane task scheduler: a foreground ThreadPool for query fan-out and a
// background lane for idle-time maintenance -- the place deferred
// reorganization batches (DeferredSegmentation::FlushBatch) run so they stay
// off the query path entirely (paper section 3.3's post-processing
// alternative, executed like Hyrise's background clustering plugin).
//
// Background jobs run FIFO on a dedicated background worker when the
// scheduler is threaded; a single-threaded scheduler queues them until an
// explicit idle point calls DrainBackground(), which keeps single-threaded
// runs deterministic. Jobs synchronize with queries through the per-column
// ColumnLatch (a background flush takes the column's exclusive latch), never
// through the scheduler itself.
#ifndef SOCS_EXEC_TASK_SCHEDULER_H_
#define SOCS_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "exec/thread_pool.h"

namespace socs {

class TaskScheduler {
 public:
  /// `threads` sizes the foreground pool; any value > 1 also starts the
  /// dedicated background worker.
  explicit TaskScheduler(size_t threads = 1);
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;
  ~TaskScheduler();

  /// The foreground fan-out pool (scan-phase parallelism).
  ThreadPool& pool() { return pool_; }

  /// Load watermark for idle detection: true while the foreground lanes are
  /// saturated (at least as many queued+running tasks as worker lanes).
  /// BackgroundMaintenance::Schedule consults this to *skip* enqueuing
  /// maintenance passes while query traffic already occupies the machine --
  /// the "schedule on pool idleness" refinement over scheduling after every
  /// statement. Advisory: the load can change right after the call.
  bool ForegroundSaturated() const {
    return pool_.backlog() >= pool_.threads();
  }

  /// Enqueues an idle-time job. Threaded schedulers run it on the background
  /// worker as soon as it is free; single-threaded schedulers hold it until
  /// DrainBackground(). Jobs must not throw.
  void ScheduleBackground(std::function<void()> fn);

  /// An explicit idle point: blocks until every job scheduled so far has
  /// finished (running them inline on a single-threaded scheduler).
  void DrainBackground();

  /// Background jobs completed so far.
  uint64_t background_runs() const {
    return background_runs_.load(std::memory_order_relaxed);
  }
  /// Jobs scheduled but not yet finished.
  size_t background_pending() const;

 private:
  void BackgroundLoop();

  ThreadPool pool_;
  std::thread bg_worker_;
  std::deque<std::function<void()>> bg_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the background worker
  std::condition_variable idle_cv_;  // wakes DrainBackground waiters
  bool stop_ = false;
  bool bg_busy_ = false;
  std::atomic<uint64_t> background_runs_{0};
};

}  // namespace socs

#endif  // SOCS_EXEC_TASK_SCHEDULER_H_
