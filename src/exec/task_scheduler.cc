#include "exec/task_scheduler.h"

namespace socs {

TaskScheduler::TaskScheduler(size_t threads) : pool_(threads) {
  if (!pool_.inline_mode()) {
    bg_worker_ = std::thread([this] { BackgroundLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (bg_worker_.joinable()) bg_worker_.join();
}

void TaskScheduler::BackgroundLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !bg_queue_.empty(); });
      if (bg_queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(bg_queue_.front());
      bg_queue_.pop_front();
      bg_busy_ = true;
    }
    job();
    background_runs_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      bg_busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void TaskScheduler::ScheduleBackground(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    bg_queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void TaskScheduler::DrainBackground() {
  if (!bg_worker_.joinable()) {
    // Single-threaded scheduler: this call *is* the idle point.
    for (;;) {
      std::function<void()> job;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (bg_queue_.empty()) return;
        job = std::move(bg_queue_.front());
        bg_queue_.pop_front();
      }
      job();
      background_runs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return bg_queue_.empty() && !bg_busy_; });
}

size_t TaskScheduler::background_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bg_queue_.size() + (bg_busy_ ? 1 : 0);
}

}  // namespace socs
