// Recursive-descent parser for the mini SQL dialect:
//   SELECT col [, col]... | COUNT(*)
//   FROM table
//   [WHERE col BETWEEN num AND num [AND col BETWEEN num AND num]...] [;]
// | INSERT INTO table [(col [, col]...)] VALUES (num [, num]...) [, (...)] [;]
#ifndef SOCS_SQL_PARSER_H_
#define SOCS_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace socs::sql {

/// Parses a SELECT (the historical entry point; INSERTs are rejected).
StatusOr<SelectStmt> Parse(const std::string& query);

/// Parses either statement kind -- what the shell and the engine use.
StatusOr<Statement> ParseStatement(const std::string& query);

}  // namespace socs::sql

#endif  // SOCS_SQL_PARSER_H_
