// AST of the mini SQL dialect: single-table SELECT with BETWEEN predicates.
#ifndef SOCS_SQL_AST_H_
#define SOCS_SQL_AST_H_

#include <sstream>
#include <string>
#include <vector>

namespace socs::sql {

struct BetweenPred {
  std::string column;
  double lo = 0.0;
  double hi = 0.0;  // inclusive bounds, SQL semantics
};

/// Aggregate functions in the projection position.
enum class AggFn { kNone, kCount, kSum, kMin, kMax, kAvg };

inline const char* AggFnName(AggFn f) {
  switch (f) {
    case AggFn::kNone: return "";
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "";
}

struct SelectStmt {
  bool count_star = false;             // SELECT COUNT(*)
  AggFn agg = AggFn::kNone;            // SELECT SUM(col) / MIN / MAX / AVG
  std::string agg_column;              // argument of the aggregate
  std::vector<std::string> columns;    // projection list (plain SELECT)
  std::string table;
  std::vector<BetweenPred> predicates;  // conjunctive

  std::string ToString() const {
    std::ostringstream os;
    os << "select ";
    if (count_star) {
      os << "count(*)";
    } else if (agg != AggFn::kNone) {
      os << AggFnName(agg) << "(" << agg_column << ")";
    } else {
      for (size_t i = 0; i < columns.size(); ++i) {
        os << columns[i] << (i + 1 < columns.size() ? ", " : "");
      }
    }
    os << " from " << table;
    for (size_t i = 0; i < predicates.size(); ++i) {
      os << (i == 0 ? " where " : " and ") << predicates[i].column << " between "
         << predicates[i].lo << " and " << predicates[i].hi;
    }
    return os.str();
  }
};

}  // namespace socs::sql

#endif  // SOCS_SQL_AST_H_
