// AST of the mini SQL dialect: single-table SELECT with BETWEEN predicates,
// plus multi-row INSERT INTO ... VALUES (the engine's write path).
#ifndef SOCS_SQL_AST_H_
#define SOCS_SQL_AST_H_

#include <sstream>
#include <string>
#include <vector>

namespace socs::sql {

struct BetweenPred {
  std::string column;
  double lo = 0.0;
  double hi = 0.0;  // inclusive bounds, SQL semantics
};

/// Aggregate functions in the projection position.
enum class AggFn { kNone, kCount, kSum, kMin, kMax, kAvg };

inline const char* AggFnName(AggFn f) {
  switch (f) {
    case AggFn::kNone: return "";
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "";
}

struct SelectStmt {
  bool count_star = false;             // SELECT COUNT(*)
  AggFn agg = AggFn::kNone;            // SELECT SUM(col) / MIN / MAX / AVG
  std::string agg_column;              // argument of the aggregate
  std::vector<std::string> columns;    // projection list (plain SELECT)
  std::string table;
  std::vector<BetweenPred> predicates;  // conjunctive

  std::string ToString() const {
    std::ostringstream os;
    os << "select ";
    if (count_star) {
      os << "count(*)";
    } else if (agg != AggFn::kNone) {
      os << AggFnName(agg) << "(" << agg_column << ")";
    } else {
      for (size_t i = 0; i < columns.size(); ++i) {
        os << columns[i] << (i + 1 < columns.size() ? ", " : "");
      }
    }
    os << " from " << table;
    for (size_t i = 0; i < predicates.size(); ++i) {
      os << (i == 0 ? " where " : " and ") << predicates[i].column << " between "
         << predicates[i].lo << " and " << predicates[i].hi;
    }
    return os.str();
  }
};

/// INSERT INTO t [(c1, c2, ...)] VALUES (v, ...), (v, ...), ...
/// Every column of the table must receive a value in each row (columns stay
/// positionally aligned); omitting the column list uses the catalog order.
struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;       // empty = catalog column order
  std::vector<std::vector<double>> rows;  // one entry per VALUES tuple

  std::string ToString() const {
    std::ostringstream os;
    os << "insert into " << table;
    if (!columns.empty()) {
      os << " (";
      for (size_t i = 0; i < columns.size(); ++i) {
        os << columns[i] << (i + 1 < columns.size() ? ", " : "");
      }
      os << ")";
    }
    os << " values ";
    for (size_t r = 0; r < rows.size(); ++r) {
      os << (r == 0 ? "(" : ", (");
      for (size_t i = 0; i < rows[r].size(); ++i) {
        os << rows[r][i] << (i + 1 < rows[r].size() ? ", " : "");
      }
      os << ")";
    }
    return os.str();
  }
};

/// A parsed statement of either kind (ParseStatement's result).
struct Statement {
  enum class Kind { kSelect, kInsert };
  Kind kind = Kind::kSelect;
  SelectStmt select;  // valid when kind == kSelect
  InsertStmt insert;  // valid when kind == kInsert

  std::string ToString() const {
    return kind == Kind::kSelect ? select.ToString() : insert.ToString();
  }
};

}  // namespace socs::sql

#endif  // SOCS_SQL_AST_H_
