#include "sql/compiler.h"

#include "engine/mal_builder.h"

namespace socs::sql {

using socs::MalArg;

StatusOr<MalProgram> Compile(const SelectStmt& stmt, const Catalog& catalog) {
  if (!catalog.HasTable(stmt.table)) {
    return Status::NotFound("unknown table " + stmt.table);
  }
  for (const auto& col : stmt.columns) {
    if (!catalog.HasColumn(stmt.table, col)) {
      return Status::NotFound("unknown column " + stmt.table + "." + col);
    }
  }
  if (stmt.agg != AggFn::kNone && !stmt.count_star &&
      !catalog.HasColumn(stmt.table, stmt.agg_column)) {
    return Status::NotFound("unknown column " + stmt.table + "." +
                            stmt.agg_column);
  }
  for (const auto& pred : stmt.predicates) {
    if (!catalog.HasColumn(stmt.table, pred.column)) {
      return Status::NotFound("unknown column " + stmt.table + "." + pred.column);
    }
  }

  MalProgram prog;
  MalBuilder b(&prog);

  auto bind = [&](const std::string& column) {
    return b.Call("sql", "bind",
                  {MalArg::Str("sys"), MalArg::Str(stmt.table),
                   MalArg::Str(column), MalArg::Num(0)});
  };

  // Candidate list from the conjunctive BETWEEN predicates.
  int cand = -1;
  for (const auto& pred : stmt.predicates) {
    const int col = bind(pred.column);
    const int sel = b.Call("algebra", "uselect",
                           {MalArg::Var(col), MalArg::Num(pred.lo),
                            MalArg::Num(pred.hi), MalArg::Num(1), MalArg::Num(1)});
    cand = cand < 0 ? sel
                    : b.Call("algebra", "kintersect",
                             {MalArg::Var(cand), MalArg::Var(sel)});
  }

  const int rs = b.Call("sql", "resultSet", {}, "X");

  if (stmt.count_star) {
    int n;
    if (cand >= 0) {
      n = b.Call("aggr", "count", {MalArg::Var(cand)});
    } else {
      const auto cols = catalog.ColumnNames(stmt.table);
      if (cols.empty()) {
        return Status::InvalidArgument("table has no columns: " + stmt.table);
      }
      n = b.Call("aggr", "count", {MalArg::Var(bind(cols.front()))});
    }
    b.CallVoid("sql", "rsColumn",
               {MalArg::Var(rs), MalArg::Str("count"), MalArg::Var(n)});
  } else if (stmt.agg != AggFn::kNone) {
    // SUM/MIN/MAX/AVG over one column, restricted to the candidates.
    int values = bind(stmt.agg_column);
    if (cand >= 0) {
      const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
      const int marked =
          b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
      const int renumbered = b.Call("bat", "reverse", {MalArg::Var(marked)});
      values = b.Call("algebra", "join",
                      {MalArg::Var(renumbered), MalArg::Var(values)});
    }
    const char* op = stmt.agg == AggFn::kSum   ? "sum"
                     : stmt.agg == AggFn::kMin ? "min"
                     : stmt.agg == AggFn::kMax ? "max"
                                               : "avg";
    const int agg = b.Call("aggr", op, {MalArg::Var(values)});
    b.CallVoid("sql", "rsColumn",
               {MalArg::Var(rs),
                MalArg::Str(std::string(AggFnName(stmt.agg)) + "(" +
                            stmt.agg_column + ")"),
                MalArg::Var(agg)});
  } else {
    // Tuple reconstruction per projected column (Fig. 1's mark/reverse/join).
    int renumbered = -1;
    if (cand >= 0) {
      const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
      const int marked =
          b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
      renumbered = b.Call("bat", "reverse", {MalArg::Var(marked)});
    }
    for (const auto& col : stmt.columns) {
      const int colbat = bind(col);
      int out = colbat;
      if (renumbered >= 0) {
        out = b.Call("algebra", "join", {MalArg::Var(renumbered), MalArg::Var(colbat)});
      }
      b.CallVoid("sql", "rsColumn",
                 {MalArg::Var(rs), MalArg::Str(stmt.table + "." + col),
                  MalArg::Var(out)});
    }
  }
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

}  // namespace socs::sql
