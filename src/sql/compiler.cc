#include "sql/compiler.h"

#include <algorithm>

#include "engine/mal_builder.h"

namespace socs::sql {

using socs::MalArg;

StatusOr<MalProgram> Compile(const SelectStmt& stmt, const Catalog& catalog) {
  if (!catalog.HasTable(stmt.table)) {
    return Status::NotFound("unknown table " + stmt.table);
  }
  for (const auto& col : stmt.columns) {
    if (!catalog.HasColumn(stmt.table, col)) {
      return Status::NotFound("unknown column " + stmt.table + "." + col);
    }
  }
  if (stmt.agg != AggFn::kNone && !stmt.count_star &&
      !catalog.HasColumn(stmt.table, stmt.agg_column)) {
    return Status::NotFound("unknown column " + stmt.table + "." +
                            stmt.agg_column);
  }
  for (const auto& pred : stmt.predicates) {
    if (!catalog.HasColumn(stmt.table, pred.column)) {
      return Status::NotFound("unknown column " + stmt.table + "." + pred.column);
    }
  }

  MalProgram prog;
  MalBuilder b(&prog);

  auto bind = [&](const std::string& column) {
    return b.Call("sql", "bind",
                  {MalArg::Str("sys"), MalArg::Str(stmt.table),
                   MalArg::Str(column), MalArg::Num(0)});
  };

  // Candidate list from the conjunctive BETWEEN predicates.
  int cand = -1;
  for (const auto& pred : stmt.predicates) {
    const int col = bind(pred.column);
    const int sel = b.Call("algebra", "uselect",
                           {MalArg::Var(col), MalArg::Num(pred.lo),
                            MalArg::Num(pred.hi), MalArg::Num(1), MalArg::Num(1)});
    cand = cand < 0 ? sel
                    : b.Call("algebra", "kintersect",
                             {MalArg::Var(cand), MalArg::Var(sel)});
  }

  const int rs = b.Call("sql", "resultSet", {}, "X");

  if (stmt.count_star) {
    int n;
    if (cand >= 0) {
      n = b.Call("aggr", "count", {MalArg::Var(cand)});
    } else {
      const auto cols = catalog.ColumnNames(stmt.table);
      if (cols.empty()) {
        return Status::InvalidArgument("table has no columns: " + stmt.table);
      }
      n = b.Call("aggr", "count", {MalArg::Var(bind(cols.front()))});
    }
    b.CallVoid("sql", "rsColumn",
               {MalArg::Var(rs), MalArg::Str("count"), MalArg::Var(n)});
  } else if (stmt.agg != AggFn::kNone) {
    // SUM/MIN/MAX/AVG over one column, restricted to the candidates.
    int values = bind(stmt.agg_column);
    if (cand >= 0) {
      const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
      const int marked =
          b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
      const int renumbered = b.Call("bat", "reverse", {MalArg::Var(marked)});
      values = b.Call("algebra", "join",
                      {MalArg::Var(renumbered), MalArg::Var(values)});
    }
    const char* op = stmt.agg == AggFn::kSum   ? "sum"
                     : stmt.agg == AggFn::kMin ? "min"
                     : stmt.agg == AggFn::kMax ? "max"
                                               : "avg";
    const int agg = b.Call("aggr", op, {MalArg::Var(values)});
    b.CallVoid("sql", "rsColumn",
               {MalArg::Var(rs),
                MalArg::Str(std::string(AggFnName(stmt.agg)) + "(" +
                            stmt.agg_column + ")"),
                MalArg::Var(agg)});
  } else {
    // Tuple reconstruction per projected column (Fig. 1's mark/reverse/join).
    int renumbered = -1;
    if (cand >= 0) {
      const int zero = b.Call("calc", "oid", {MalArg::Num(0)});
      const int marked =
          b.Call("algebra", "markT", {MalArg::Var(cand), MalArg::Var(zero)});
      renumbered = b.Call("bat", "reverse", {MalArg::Var(marked)});
    }
    for (const auto& col : stmt.columns) {
      const int colbat = bind(col);
      int out = colbat;
      if (renumbered >= 0) {
        out = b.Call("algebra", "join", {MalArg::Var(renumbered), MalArg::Var(colbat)});
      }
      b.CallVoid("sql", "rsColumn",
                 {MalArg::Var(rs), MalArg::Str(stmt.table + "." + col),
                  MalArg::Var(out)});
    }
  }
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

StatusOr<MalProgram> Compile(const InsertStmt& stmt, const Catalog& catalog) {
  if (!catalog.HasTable(stmt.table)) {
    return Status::NotFound("unknown table " + stmt.table);
  }
  if (stmt.rows.empty()) {
    return Status::InvalidArgument("INSERT without VALUES");
  }
  // Column order: the explicit list, or the table's catalog order. Every
  // column must receive a value per row -- columns stay positionally
  // aligned, there are no NULLs in this dialect.
  const std::vector<std::string> all = catalog.ColumnNames(stmt.table);
  std::vector<std::string> order = stmt.columns.empty() ? all : stmt.columns;
  if (order.size() != all.size()) {
    return Status::InvalidArgument(
        "INSERT must provide a value for every column of " + stmt.table +
        " (" + std::to_string(all.size()) + " columns)");
  }
  for (const auto& col : order) {
    if (!catalog.HasColumn(stmt.table, col)) {
      return Status::NotFound("unknown column " + stmt.table + "." + col);
    }
  }
  {
    std::vector<std::string> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("duplicate column in INSERT column list");
    }
  }
  for (const auto& row : stmt.rows) {
    if (row.size() != order.size()) {
      return Status::InvalidArgument(
          "VALUES arity " + std::to_string(row.size()) + " != " +
          std::to_string(order.size()) + " columns of " + stmt.table);
    }
  }

  MalProgram prog;
  MalBuilder b(&prog);
  const double n = static_cast<double>(stmt.rows.size());

  // The oid base of the new rows: the pre-insert row count. All bpm.append
  // calls of this statement share it; sql.grow commits it afterwards.
  int base = -1;
  for (size_t c = 0; c < order.size(); ++c) {
    if (!catalog.IsSegmented(stmt.table, order[c])) continue;
    base = b.Call("sql", "rowCount",
                  {MalArg::Str("sys"), MalArg::Str(stmt.table)}, "B");
    break;
  }

  for (size_t c = 0; c < order.size(); ++c) {
    std::vector<MalArg> vals;
    vals.reserve(stmt.rows.size());
    for (const auto& row : stmt.rows) vals.push_back(MalArg::Num(row[c]));
    if (catalog.IsSegmented(stmt.table, order[c])) {
      const int col = b.Call(
          "bpm", "take",
          {MalArg::Str(Catalog::SegHandle(stmt.table, order[c]))}, "Y");
      std::vector<MalArg> args = {MalArg::Var(col), MalArg::Var(base)};
      args.insert(args.end(), vals.begin(), vals.end());
      b.Call("bpm", "append", std::move(args));
    } else {
      std::vector<MalArg> args = {MalArg::Str("sys"), MalArg::Str(stmt.table),
                                  MalArg::Str(order[c])};
      args.insert(args.end(), vals.begin(), vals.end());
      b.Call("sql", "append", std::move(args));
    }
  }
  const int total = b.Call("sql", "grow",
                           {MalArg::Str("sys"), MalArg::Str(stmt.table),
                            MalArg::Num(n)});
  (void)total;

  const int rs = b.Call("sql", "resultSet", {}, "X");
  b.CallVoid("sql", "rsColumn",
             {MalArg::Var(rs), MalArg::Str("inserted"), MalArg::Num(n)});
  b.CallVoid("sql", "exportResult", {MalArg::Var(rs)});
  return prog;
}

StatusOr<MalProgram> Compile(const Statement& stmt, const Catalog& catalog) {
  return stmt.kind == Statement::Kind::kInsert ? Compile(stmt.insert, catalog)
                                               : Compile(stmt.select, catalog);
}

}  // namespace socs::sql
