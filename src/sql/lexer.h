// SQL lexer for the mini front-end: enough for the paper's workload shape
// (single-table range selections like Fig. 1's
//   select objId from P where ra between 205.1 and 205.12).
#ifndef SOCS_SQL_LEXER_H_
#define SOCS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace socs::sql {

enum class TokenType {
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kSemicolon,
  // Keywords (case-insensitive).
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kBetween,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kInsert,
  kInto,
  kValues,
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   // identifier / string literal spelling
  double number = 0;  // for kNumber
  size_t pos = 0;     // byte offset, for error messages
};

const char* TokenTypeName(TokenType t);

/// Tokenizes `input`; the final token is always kEnd.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace socs::sql

#endif  // SOCS_SQL_LEXER_H_
