#include "sql/parser.h"

#include <sstream>

namespace socs::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  StatusOr<Statement> RunStatement() {
    Statement out;
    if (Peek().type == TokenType::kInsert) {
      out.kind = Statement::Kind::kInsert;
      auto ins = RunInsert();
      if (!ins.ok()) return ins.status();
      out.insert = std::move(ins.value());
      return out;
    }
    out.kind = Statement::Kind::kSelect;
    auto sel = Run();
    if (!sel.ok()) return sel.status();
    out.select = std::move(sel.value());
    return out;
  }

  StatusOr<InsertStmt> RunInsert() {
    InsertStmt stmt;
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kInsert));
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kInto));
    if (Peek().type != TokenType::kIdent) return Err("table name");
    stmt.table = Advance().text;
    if (Peek().type == TokenType::kLParen) {
      Advance();
      while (true) {
        if (Peek().type != TokenType::kIdent) return Err("column name");
        stmt.columns.push_back(Advance().text);
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kValues));
    while (true) {
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      std::vector<double> row;
      while (true) {
        if (Peek().type != TokenType::kNumber) return Err("value");
        row.push_back(Advance().number);
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      if (!stmt.rows.empty() && row.size() != stmt.rows.front().size()) {
        return Status::InvalidArgument(
            "VALUES tuples have inconsistent arity for " + stmt.table);
      }
      stmt.rows.push_back(std::move(row));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    if (!stmt.columns.empty() &&
        stmt.rows.front().size() != stmt.columns.size()) {
      return Status::InvalidArgument(
          "VALUES arity does not match the column list for " + stmt.table);
    }
    if (Peek().type == TokenType::kSemicolon) Advance();
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kEnd));
    return stmt;
  }

  StatusOr<SelectStmt> Run() {
    SelectStmt stmt;
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kSelect));
    if (Peek().type == TokenType::kCount) {
      Advance();
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kStar));
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      stmt.count_star = true;
      stmt.agg = AggFn::kCount;
    } else if (Peek().type == TokenType::kSum || Peek().type == TokenType::kMin ||
               Peek().type == TokenType::kMax || Peek().type == TokenType::kAvg) {
      switch (Advance().type) {
        case TokenType::kSum: stmt.agg = AggFn::kSum; break;
        case TokenType::kMin: stmt.agg = AggFn::kMin; break;
        case TokenType::kMax: stmt.agg = AggFn::kMax; break;
        default: stmt.agg = AggFn::kAvg; break;
      }
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      if (Peek().type != TokenType::kIdent) return Err("aggregate column");
      stmt.agg_column = Advance().text;
      SOCS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    } else {
      while (true) {
        if (Peek().type != TokenType::kIdent) return Err("projection column");
        stmt.columns.push_back(Advance().text);
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kFrom));
    if (Peek().type != TokenType::kIdent) return Err("table name");
    stmt.table = Advance().text;

    if (Peek().type == TokenType::kWhere) {
      Advance();
      while (true) {
        BetweenPred pred;
        if (Peek().type != TokenType::kIdent) return Err("predicate column");
        pred.column = Advance().text;
        SOCS_RETURN_IF_ERROR(Expect(TokenType::kBetween));
        if (Peek().type != TokenType::kNumber) return Err("lower bound");
        pred.lo = Advance().number;
        SOCS_RETURN_IF_ERROR(Expect(TokenType::kAnd));
        if (Peek().type != TokenType::kNumber) return Err("upper bound");
        pred.hi = Advance().number;
        if (pred.lo > pred.hi) {
          return Status::InvalidArgument("BETWEEN bounds out of order for " +
                                         pred.column);
        }
        stmt.predicates.push_back(pred);
        if (Peek().type != TokenType::kAnd) break;
        Advance();
      }
    }
    if (Peek().type == TokenType::kSemicolon) Advance();
    SOCS_RETURN_IF_ERROR(Expect(TokenType::kEnd));
    return stmt;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  Token Advance() { return toks_[pos_++]; }

  Status Expect(TokenType t) {
    if (Peek().type != t) {
      std::ostringstream os;
      os << "expected " << TokenTypeName(t) << " but found "
         << TokenTypeName(Peek().type) << " at offset " << Peek().pos;
      return Status::InvalidArgument(os.str());
    }
    Advance();
    return Status::OK();
  }

  Status Err(const std::string& what) {
    std::ostringstream os;
    os << "expected " << what << " but found " << TokenTypeName(Peek().type)
       << " at offset " << Peek().pos;
    return Status::InvalidArgument(os.str());
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectStmt> Parse(const std::string& query) {
  auto toks = Lex(query);
  if (!toks.ok()) return toks.status();
  Parser p(std::move(toks.value()));
  return p.Run();
}

StatusOr<Statement> ParseStatement(const std::string& query) {
  auto toks = Lex(query);
  if (!toks.ok()) return toks.status();
  Parser p(std::move(toks.value()));
  return p.RunStatement();
}

}  // namespace socs::sql
