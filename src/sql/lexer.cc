#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace socs::sql {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kIdent: return "identifier";
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kComma: return "','";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kSelect: return "SELECT";
    case TokenType::kFrom: return "FROM";
    case TokenType::kWhere: return "WHERE";
    case TokenType::kAnd: return "AND";
    case TokenType::kBetween: return "BETWEEN";
    case TokenType::kCount: return "COUNT";
    case TokenType::kSum: return "SUM";
    case TokenType::kMin: return "MIN";
    case TokenType::kMax: return "MAX";
    case TokenType::kAvg: return "AVG";
    case TokenType::kInsert: return "INSERT";
    case TokenType::kInto: return "INTO";
    case TokenType::kValues: return "VALUES";
    case TokenType::kEnd: return "<end>";
  }
  return "?";
}

namespace {
std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

TokenType KeywordOrIdent(const std::string& word) {
  const std::string w = Lower(word);
  if (w == "select") return TokenType::kSelect;
  if (w == "from") return TokenType::kFrom;
  if (w == "where") return TokenType::kWhere;
  if (w == "and") return TokenType::kAnd;
  if (w == "between") return TokenType::kBetween;
  if (w == "count") return TokenType::kCount;
  if (w == "sum") return TokenType::kSum;
  if (w == "min") return TokenType::kMin;
  if (w == "max") return TokenType::kMax;
  if (w == "avg") return TokenType::kAvg;
  if (w == "insert") return TokenType::kInsert;
  if (w == "into") return TokenType::kInto;
  if (w == "values") return TokenType::kValues;
  return TokenType::kIdent;
}
}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      tok.text = input.substr(i, j - i);
      tok.type = KeywordOrIdent(tok.text);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
               ((c == '-' || c == '+') && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
                 input[i + 1] == '.'))) {
      char* end = nullptr;
      tok.number = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) {
        return Status::InvalidArgument("bad number at offset " + std::to_string(i));
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(i, end - (input.c_str() + i));
      i = static_cast<size_t>(end - input.c_str());
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      switch (c) {
        case ',': tok.type = TokenType::kComma; break;
        case '(': tok.type = TokenType::kLParen; break;
        case ')': tok.type = TokenType::kRParen; break;
        case '*': tok.type = TokenType::kStar; break;
        case ';': tok.type = TokenType::kSemicolon; break;
        default:
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at offset " + std::to_string(i));
      }
      tok.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(tok));
  }
  Token end_tok;
  end_tok.type = TokenType::kEnd;
  end_tok.pos = n;
  out.push_back(end_tok);
  return out;
}

}  // namespace socs::sql
