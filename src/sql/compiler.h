// SQL-to-MAL compiler: maps a SelectStmt onto the plan shape of the paper's
// Figure 1 (binds, uselect candidate lists, mark/reverse/join tuple
// reconstruction, result-set export). The produced plan is *unoptimized*;
// the tactical optimizer (segment optimizer + dead code elimination) rewrites
// it before execution.
#ifndef SOCS_SQL_COMPILER_H_
#define SOCS_SQL_COMPILER_H_

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/mal_program.h"
#include "sql/ast.h"

namespace socs::sql {

StatusOr<MalProgram> Compile(const SelectStmt& stmt, const Catalog& catalog);

}  // namespace socs::sql

#endif  // SOCS_SQL_COMPILER_H_
