// SQL-to-MAL compiler: maps a SelectStmt onto the plan shape of the paper's
// Figure 1 (binds, uselect candidate lists, mark/reverse/join tuple
// reconstruction, result-set export). The produced plan is *unoptimized*;
// the tactical optimizer (segment optimizer + dead code elimination) rewrites
// it before execution.
#ifndef SOCS_SQL_COMPILER_H_
#define SOCS_SQL_COMPILER_H_

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/mal_program.h"
#include "sql/ast.h"

namespace socs::sql {

StatusOr<MalProgram> Compile(const SelectStmt& stmt, const Catalog& catalog);

/// Lowers an INSERT to the write-path plan: sql.rowCount fetches the oid
/// base, each segmented column appends through bpm.take + bpm.append (the
/// strategy's Append phase, charged as adaptation), each plain column
/// through sql.append, and sql.grow commits the table's row count. Every
/// column of the table must receive values (columns stay aligned).
StatusOr<MalProgram> Compile(const InsertStmt& stmt, const Catalog& catalog);

/// Dispatches on the statement kind.
StatusOr<MalProgram> Compile(const Statement& stmt, const Catalog& catalog);

}  // namespace socs::sql

#endif  // SOCS_SQL_COMPILER_H_
