// Deterministic random number generation for the simulator and workload
// generators: xoshiro256** core, uniform/Gaussian variates, and a Zipf sampler
// (Gray et al., "Quickly Generating Billion-Record Synthetic Databases").
// All experiments are seeded, so every figure in EXPERIMENTS.md is exactly
// reproducible.
#ifndef SOCS_COMMON_RNG_H_
#define SOCS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace socs {

/// xoshiro256** pseudo-random generator, seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

 private:
  uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Zipf-distributed ranks over {0, ..., n-1}: rank 0 is the most popular.
/// theta in (0, ~2]; theta = 0 would be uniform, theta = 1 is classic Zipf.
/// Uses the analytic approximation from Gray et al. (SIGMOD'94), which avoids
/// materializing the full CDF and is accurate for large n.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draws a rank in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// Returns the generalized harmonic number H_{n,theta} = sum_{i=1..n} 1/i^theta.
double Zeta(uint64_t n, double theta);

/// Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.NextBelow(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace socs

#endif  // SOCS_COMMON_RNG_H_
