#include "common/series.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace socs {

std::string FormatNumber(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string ResultTable::ToCell(double v) { return FormatNumber(v); }

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::AddRowStrings(std::vector<std::string> row) {
  SOCS_CHECK_EQ(row.size(), columns_.size()) << "row arity mismatch in " << title_;
  rows_.push_back(std::move(row));
}

void ResultTable::Print(std::ostream& os) const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        for (size_t p = row[c].size(); p < width[c] + 2; ++p) os << ' ';
      }
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  os << '\n';
}

void ResultTable::PrintCsv(std::ostream& os) const {
  os << "# " << title_ << '\n';
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace socs
