// Output helpers for the benchmark harness: aligned tables (for humans) that
// can also be dumped as CSV (for gnuplot/pandas). Each paper figure/table is
// regenerated as one or more ResultTable objects.
#ifndef SOCS_COMMON_SERIES_H_
#define SOCS_COMMON_SERIES_H_

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace socs {

/// A rectangular result table with named columns.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  /// Appends a row; cells are converted with operator<<.
  template <typename... Ts>
  void AddRow(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(ToCell(cells)), ...);
    AddRowStrings(std::move(row));
  }

  void AddRowStrings(std::vector<std::string> row);

  /// Pretty-prints with aligned columns, preceded by "== <title> ==".
  void Print(std::ostream& os) const;

  /// Prints "title,col1,col2,..." free CSV (no alignment).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  template <typename T>
  static std::string ToCell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }
  static std::string ToCell(double v);
  static std::string ToCell(const std::string& v) { return v; }
  static std::string ToCell(const char* v) { return v; }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly: integers without decimals, otherwise %.4g.
std::string FormatNumber(double v);

}  // namespace socs

#endif  // SOCS_COMMON_SERIES_H_
