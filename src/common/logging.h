// Leveled logging and assertion macros. SOCS_CHECK* abort with a message on
// violated invariants; they stay active in release builds (database engines
// prefer a loud crash over silent corruption).
#ifndef SOCS_COMMON_LOGGING_H_
#define SOCS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace socs {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits one log line to stderr ("[I] file:line message"). Thread-safe: the
/// line is assembled off to the side and emitted with a single write(2), so
/// concurrent workers never interleave within a line; the level threshold is
/// an atomic.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& msg);

/// Stream collector used by the macros below.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { FailCheck(file_, line_, expr_, stream_.str()); }
  template <typename T>
  CheckStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SOCS_LOG(level)                                                    \
  ::socs::internal::LogStream(::socs::LogLevel::k##level, __FILE__, __LINE__)

#define SOCS_CHECK(cond)                                              \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::socs::internal::CheckStream(__FILE__, __LINE__, #cond)

#define SOCS_CHECK_EQ(a, b) SOCS_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOCS_CHECK_NE(a, b) SOCS_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOCS_CHECK_LT(a, b) SOCS_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOCS_CHECK_LE(a, b) SOCS_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOCS_CHECK_GT(a, b) SOCS_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SOCS_CHECK_GE(a, b) SOCS_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace socs

#endif  // SOCS_COMMON_LOGGING_H_
