// Byte-size constants and formatting helpers.
#ifndef SOCS_COMMON_UNITS_H_
#define SOCS_COMMON_UNITS_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace socs {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The paper reports KB/MB in decimal-ish plot labels; we standardize on
// binary units internally and in output.

/// "512B", "3.0KB", "1.5MB", "2.0GB".
inline std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes < kKiB) {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  } else if (bytes < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(bytes) / kKiB);
  } else if (bytes < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(bytes) / kMiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(bytes) / kGiB);
  }
  return buf;
}

}  // namespace socs

#endif  // SOCS_COMMON_UNITS_H_
