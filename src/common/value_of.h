// ValueOf: the customization point mapping an element to the double sort key
// a strategy organizes it by. The generic overload (any arithmetic element is
// its own key) lives here, below core, so the storage layer's scan kernels
// can evaluate range predicates on typed payloads; core/oid_value.h adds the
// OidValue overload, found by ADL wherever kernels are instantiated.
#ifndef SOCS_COMMON_VALUE_OF_H_
#define SOCS_COMMON_VALUE_OF_H_

namespace socs {

template <typename T>
inline double ValueOf(const T& v) {
  return static_cast<double>(v);
}

}  // namespace socs

#endif  // SOCS_COMMON_VALUE_OF_H_
