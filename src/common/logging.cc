#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace socs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarning: return 'W';
    case LogLevel::kError: return 'E';
  }
  return '?';
}

/// One atomic write(2) per line: workers logging concurrently can interleave
/// whole lines but never bytes within a line (stdio would buffer in chunks).
void EmitLine(char tag, const char* file, int line, const std::string& msg) {
  char prefix[32];
  const int n = std::snprintf(prefix, sizeof(prefix), "[%c] ", tag);
  std::string out;
  out.reserve(static_cast<size_t>(n) + msg.size() + 64);
  out.append(prefix, static_cast<size_t>(n));
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ' ';
  out += msg;
  out += '\n';
  ssize_t written = ::write(STDERR_FILENO, out.data(), out.size());
  (void)written;  // best effort: nowhere to report a failing stderr
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  EmitLine(LevelChar(level), file, line, msg);
}

void FailCheck(const char* file, int line, const char* expr, const std::string& msg) {
  EmitLine('F', file, line, std::string("CHECK failed: ") + expr + " " + msg);
  std::abort();
}

}  // namespace internal
}  // namespace socs
