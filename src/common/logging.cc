#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace socs {

namespace {
LogLevel g_level = LogLevel::kInfo;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarning: return 'W';
    case LogLevel::kError: return 'E';
  }
  return '?';
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%c] %s:%d %s\n", LevelChar(level), file, line, msg.c_str());
}

void FailCheck(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "[F] %s:%d CHECK failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace socs
