// Status: lightweight error propagation used across the library (no exceptions
// on hot paths, per the database-engine idiom).
#ifndef SOCS_COMMON_STATUS_H_
#define SOCS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace socs {

/// Error taxonomy. Mirrors the usual database-engine set; extend sparingly.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  /// Unrecoverable corruption of stored bytes (bad checksum, torn record).
  kDataLoss,
};

/// Returns a stable human-readable name for a code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type status. Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Minimal StatusOr: either a value or a non-OK status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }
  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define SOCS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::socs::Status _socs_st = (expr);           \
    if (!_socs_st.ok()) return _socs_st;        \
  } while (0)

}  // namespace socs

#endif  // SOCS_COMMON_STATUS_H_
