// Small statistics helpers shared by benches and tests.
#ifndef SOCS_COMMON_MATH_UTIL_H_
#define SOCS_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace socs {

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Population standard deviation (matches the paper's "Deviation" column).
inline double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

/// Centered moving average with window w (clipped at the edges).
inline std::vector<double> MovingAverage(const std::vector<double>& xs, size_t w) {
  std::vector<double> out(xs.size());
  if (xs.empty()) return out;
  if (w < 1) w = 1;
  for (size_t i = 0; i < xs.size(); ++i) {
    size_t lo = i >= w / 2 ? i - w / 2 : 0;
    size_t hi = std::min(xs.size(), lo + w);
    lo = hi >= w ? hi - w : 0;
    double s = 0.0;
    for (size_t j = lo; j < hi; ++j) s += xs[j];
    out[i] = s / static_cast<double>(hi - lo);
  }
  return out;
}

/// Prefix sums: out[i] = xs[0] + ... + xs[i].
inline std::vector<double> CumulativeSum(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  double s = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    s += xs[i];
    out[i] = s;
  }
  return out;
}

}  // namespace socs

#endif  // SOCS_COMMON_MATH_UTIL_H_
