#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace socs {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  SOCS_CHECK_GT(n, 0u);
  // Lemire's nearly-divisionless bounded sampling.
  __uint128_t m = static_cast<__uint128_t>(Next()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SOCS_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  SOCS_CHECK_GT(n, 0u);
  SOCS_CHECK_GT(theta, 0.0);
  // Gray's analytic inverse has a pole at theta == 1; nudge off it.
  if (std::abs(theta_ - 1.0) < 1e-6) theta_ = 1.0 - 1e-6;
  zetan_ = Zeta(n, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double raw = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(raw);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace socs
