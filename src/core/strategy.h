// AccessStrategy: the common interface of all column-access schemes compared
// in the paper -- non-segmented scan, static partitionings, adaptive
// segmentation, adaptive replication, and the database-cracking comparator.
// A strategy owns one column's worth of data (through a SegmentSpace) and
// answers range selections through a three-phase, single-pass execution
// protocol:
//
//   1. CoverSegments(q)       -- planning: the disjoint segments a selection
//      must touch (a meta-index / replica-tree lookup, never the data).
//   2. ScanSegment(seg, q, out) -- the only metered data access: one scan of
//      one covering segment, charging its payload bytes to SegmentSpace /
//      IoStats exactly once and extracting the qualifying values.
//   3. Reorganize(q)          -- the reorganizing module: only the adaptation
//      side effects (splits, merges, replication, deferred batching) and
//      their write/bookkeeping costs. Piece observations are re-derived from
//      the just-scanned, still-resident payloads via unmetered Peek, so no
//      segment is ever charged twice for one query.
//
// RunRange() is a non-virtual template method composing the three phases;
// strategies customize the phases, not the composition. The engine's BPM
// module drives the same phases from MAL (bpm.newIterator/hasMoreElements ->
// ScanSegment, bpm.adapt -> Reorganize), so the SQL/engine path and the
// direct core path report identical per-query accounting.
//
// Concurrency: because the scan phase is read-only, RunRange can fan it out
// across a ThreadPool -- one lane-metered ScanSegment per covering segment,
// folded back in cover order so the execution record, the result vector and
// the IoStats totals are byte-identical to a single-threaded run. The phases
// synchronize on the per-column ColumnLatch: CoverSegments + ScanSegment
// under the shared latch, Reorganize / Append / IdleWork under the exclusive
// latch. The virtual phase methods themselves are unlatched; only the
// non-virtual entry points (RunRange, Append, RunIdleWork -- and the
// engine's SegmentedColumn) acquire the latch.
#ifndef SOCS_CORE_STRATEGY_H_
#define SOCS_CORE_STRATEGY_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/oid_value.h"
#include "core/range.h"
#include "core/segment.h"
#include "core/segment_meta_index.h"
#include "exec/column_latch.h"
#include "exec/thread_pool.h"
#include "sim/io_lane.h"
#include "storage/segment_space.h"

namespace socs {

/// Per-query execution record: the paper's metrics for one range selection.
struct QueryExecution {
  uint64_t result_count = 0;
  /// Memory reads: bytes of materialized segments scanned (Fig. 7, Table 1).
  uint64_t read_bytes = 0;
  /// Memory writes due to segment materialization (Figs. 5-6).
  uint64_t write_bytes = 0;
  uint64_t segments_scanned = 0;
  uint64_t splits = 0;          // reorganization decisions taken
  uint64_t merges = 0;          // small segments glued back together
  uint64_t replicas_created = 0;
  uint64_t segments_dropped = 0;
  uint64_t replicas_evicted = 0;  // demoted to virtual by a storage budget
  /// Simulated seconds answering the query (scans + per-segment overheads).
  double selection_seconds = 0.0;
  /// Simulated seconds reorganizing (segment materialization).
  double adaptation_seconds = 0.0;

  double TotalSeconds() const { return selection_seconds + adaptation_seconds; }
};

/// Accumulates per-query records (e.g., over a whole workload).
QueryExecution& operator+=(QueryExecution& a, const QueryExecution& b);

/// Storage-side footprint of a strategy (Figs. 8-9, Table 2).
struct StorageFootprint {
  uint64_t materialized_bytes = 0;  // payload bytes of live segments/replicas
  uint64_t segment_count = 0;       // materialized segments
  uint64_t meta_bytes = 0;          // meta-index / replica-tree bookkeeping
};

/// Outcome of one metered scan of one covering segment (phase 2).
template <typename T>
struct SegmentScan {
  uint64_t read_bytes = 0;    // payload bytes charged (0 when pruned)
  uint64_t result_count = 0;  // qualifying values seen in this segment
  double seconds = 0.0;       // simulated selection seconds of this scan
  bool scanned = true;        // false when pruned without touching the data
  /// The scanned payload (for the engine's segment-to-BAT delivery); valid
  /// until the next reorganization or bulk load frees the segment.
  std::span<const T> payload;
};

/// Folds one scan record into the selection half of an execution record --
/// the single fold used by RunRange and the engine's segment delivery, so
/// both paths accumulate in the same order with the same arithmetic.
template <typename T>
inline void FoldScanIntoExecution(const SegmentScan<T>& s, QueryExecution* ex) {
  ex->read_bytes += s.read_bytes;
  ex->result_count += s.result_count;
  ex->selection_seconds += s.seconds;
  if (s.scanned) ++ex->segments_scanned;
}

template <typename T>
class AccessStrategy {
 public:
  /// `space` must outlive the strategy; it meters every data access and
  /// provides the cost model.
  explicit AccessStrategy(SegmentSpace* space) : space_(space) {}
  virtual ~AccessStrategy() = default;

  /// Executes a range selection end-to-end: plan (CoverSegments), one metered
  /// scan per covering segment (ScanSegment), then the reorganizing module
  /// (Reorganize). When `result` is non-null the qualifying values are
  /// appended (unordered; value-based organization gives up positional
  /// order). With a non-inline `pool` the scan phase fans out across the
  /// workers; the per-segment records, lane stats and result chunks are
  /// folded back in cover order, so the returned record, `*result` and the
  /// space's IoStats are byte-identical to the single-threaded run. Returns
  /// the per-query execution record.
  QueryExecution RunRange(const ValueRange& q, std::vector<T>* result = nullptr,
                          ThreadPool* pool = nullptr);

  // --- phase 1: planning ----------------------------------------------------

  /// Disjoint materialized segments whose union covers q's intersection with
  /// the column -- what the engine's segment iterator walks. The default
  /// (all overlapping segments) is correct for strategies whose segments
  /// tile the domain; adaptive replication overrides it with the replica
  /// tree's minimal cover. Callers hold at least the shared latch.
  virtual std::vector<SegmentInfo> CoverSegments(const ValueRange& q) const {
    std::vector<SegmentInfo> out;
    for (const SegmentInfo& s : Segments()) {
      if (s.range.Overlaps(q)) out.push_back(s);
    }
    return out;
  }

  // --- phase 2: the metered scan --------------------------------------------

  /// One metered scan of covering segment `seg`: charges the payload bytes to
  /// SegmentSpace/IoStats exactly once, appends the values inside `q` to
  /// `out` (when non-null), and returns the scan record including the raw
  /// payload. With a non-null `lane` the charge accumulates there instead of
  /// the shared stats (the parallel fan-out path; the caller commits lanes
  /// in cover order). With a non-null `precomputed` (a shared scan batch
  /// already filtered this segment against q -- see core/shared_scan.h) the
  /// metered charge is identical but the O(n) filter pass is skipped: the
  /// qualifying set is taken from `precomputed` verbatim. The default reads
  /// through SegmentSpace::Scan; strategies without segment-space payloads
  /// (cracking) or with scan-time pruning (zone maps) override it. Callers
  /// hold at least the shared latch.
  virtual SegmentScan<T> ScanSegment(const SegmentInfo& seg, const ValueRange& q,
                                     std::vector<T>* out, IoLane* lane = nullptr,
                                     const std::vector<T>* precomputed = nullptr) {
    SegmentScan<T> s;
    IoCost cost;
    s.payload = space_->template Scan<T>(seg.id, &cost, lane);
    s.read_bytes = cost.bytes;
    s.seconds = cost.seconds;
    if (precomputed != nullptr) {
      s.result_count = precomputed->size();
      if (out != nullptr) {
        out->insert(out->end(), precomputed->begin(), precomputed->end());
      }
    } else {
      s.result_count = FilterRange(s.payload, q, out);
    }
    return s;
  }

  // --- phase 3: the reorganizing module --------------------------------------

  /// Performs only the adaptation side effects for query `q` and returns the
  /// adaptation half of the execution record (write bytes, splits, merges,
  /// replicas, adaptation seconds). Reads needed to *decide* reuse the
  /// payloads scanned in phase 2 via unmetered Peek; reads that are genuine
  /// extra work (e.g. deferred batches re-loading marked segments, merge
  /// glue) stay metered. The default is the no-op of non-adaptive baselines.
  /// Callers hold the exclusive latch.
  virtual QueryExecution Reorganize(const ValueRange& /*q*/) {
    return QueryExecution{};
  }

  // --- the write path --------------------------------------------------------

  /// Appends `values` to the column as an adaptation side effect: the
  /// appended payload bytes (plus any reorganization the strategy performs --
  /// segment rewrites, replica refreshes, cracked-piece shifting) are charged
  /// to the adaptation half of the returned record (write_bytes /
  /// adaptation_seconds). Values outside the column's domain widen it instead
  /// of failing. The engine's bpm.append op drives exactly this phase, so the
  /// SQL INSERT path and a direct core Append report identical accounting.
  /// Non-virtual: takes the exclusive latch and runs the strategy's
  /// AppendImpl.
  QueryExecution Append(const std::vector<T>& values) {
    ExclusiveColumnGuard guard(latch_);
    if (!values.empty()) {
      data_epoch_.fetch_add(1, std::memory_order_release);
    }
    return AppendImpl(values);
  }

  // --- idle-time maintenance --------------------------------------------------

  /// True when the strategy has reorganization work it could run off the
  /// query path (deferred segmentation's pending batch). Callers hold the
  /// exclusive latch (the pending set is mutated by Reorganize/Append).
  virtual bool HasIdleWork() const { return false; }

  /// Runs the pending idle work and returns its execution record (the
  /// background ledger's unit of accounting). Callers hold the exclusive
  /// latch; background jobs go through RunIdleWork instead.
  virtual QueryExecution IdleWork() { return QueryExecution{}; }

  /// Latched idle-work entry point: what a TaskScheduler background job
  /// calls (exec/task_scheduler.h, core/background_maintenance.h).
  QueryExecution RunIdleWork() {
    ExclusiveColumnGuard guard(latch_);
    const QueryExecution r = IdleWork();
    NoteReorganization(r);
    return r;
  }

  // --- data-epoch coherence ---------------------------------------------------

  /// Monotonic counter bumped whenever segment payloads may have changed
  /// (non-empty Append, or a Reorganize/IdleWork record showing mutation).
  /// Shared scan batches key their per-segment caches on it, so a member
  /// running after a predecessor's reorganization misses the stale entries
  /// and re-scans instead of delivering moved data.
  uint64_t data_epoch() const {
    return data_epoch_.load(std::memory_order_acquire);
  }

  /// True when `r` indicates payload mutation (writes, splits, merges,
  /// replica churn) as opposed to pure bookkeeping.
  static bool MutatesData(const QueryExecution& r) {
    return r.write_bytes != 0 || r.splits != 0 || r.merges != 0 ||
           r.replicas_created != 0 || r.segments_dropped != 0 ||
           r.replicas_evicted != 0;
  }

  /// Bumps the data epoch if the reorganization record shows mutation.
  /// Called by RunRange/RunIdleWork and the engine's adaptation driver after
  /// every Reorganize, under the exclusive latch.
  void NoteReorganization(const QueryExecution& r) {
    if (MutatesData(r)) {
      data_epoch_.fetch_add(1, std::memory_order_release);
    }
  }

  // --- statistics ------------------------------------------------------------

  virtual StorageFootprint Footprint() const = 0;

  /// Materialized segments, ordered by range (Table 2 statistics). May carry
  /// invalid segment ids for strategies without a segment-space notion
  /// (cracking pieces live in one in-memory array).
  virtual std::vector<SegmentInfo> Segments() const = 0;

  virtual std::string Name() const = 0;

  SegmentSpace* space() const { return space_; }

  /// The column's reader/writer latch (scan phase shared, reorganization /
  /// write path exclusive). Exposed so the engine's SegmentedColumn and the
  /// background scheduler synchronize on the same latch as RunRange.
  ColumnLatch& latch() const { return latch_; }

 protected:
  /// The strategy-specific write path (see Append). Implementations run
  /// under the exclusive latch.
  virtual QueryExecution AppendImpl(const std::vector<T>& values) = 0;

  SegmentSpace* space_;
  mutable ColumnLatch latch_;

 private:
  std::atomic<uint64_t> data_epoch_{0};
};

template <typename T>
QueryExecution AccessStrategy<T>::RunRange(const ValueRange& q,
                                           std::vector<T>* result,
                                           ThreadPool* pool) {
  QueryExecution ex;
  ex.selection_seconds = space_->model().QueryOverhead();
  if (q.Empty()) return ex;
  {
    SharedColumnGuard guard(latch_);
    const std::vector<SegmentInfo> cover = CoverSegments(q);
    if (pool == nullptr || pool->inline_mode() || cover.size() < 2) {
      for (const SegmentInfo& seg : cover) {
        FoldScanIntoExecution(ScanSegment(seg, q, result), &ex);
      }
    } else {
      // Scan fan-out: one lane-metered scan per covering segment, results in
      // per-segment chunks. The fold below walks the slots in cover order, so
      // stats commit order, seconds accumulation order and result order all
      // match the sequential loop above exactly.
      std::vector<SegmentScan<T>> scans(cover.size());
      std::vector<IoLane> lanes(cover.size());
      std::vector<std::vector<T>> chunks(result != nullptr ? cover.size() : 0);
      pool->ParallelFor(cover.size(), [&](size_t i) {
        scans[i] = ScanSegment(cover[i], q,
                               result != nullptr ? &chunks[i] : nullptr,
                               &lanes[i]);
      });
      for (size_t i = 0; i < cover.size(); ++i) {
        space_->CommitLane(&lanes[i]);
        FoldScanIntoExecution(scans[i], &ex);
        if (result != nullptr) {
          result->insert(result->end(), chunks[i].begin(), chunks[i].end());
        }
      }
    }
  }
  {
    ExclusiveColumnGuard guard(latch_);
    const QueryExecution reorg = Reorganize(q);
    NoteReorganization(reorg);
    ex += reorg;
  }
  return ex;
}

/// Helper shared by strategy implementations: partitions `values` into the
/// pieces delimited by ascending `cuts` (values < cuts[0] -> piece 0, etc.).
/// Single pass, stable within pieces.
template <typename T>
std::vector<std::vector<T>> PartitionByCuts(std::span<const T> values,
                                            const std::vector<double>& cuts) {
  std::vector<std::vector<T>> pieces(cuts.size() + 1);
  for (const T& v : values) {
    size_t p = 0;
    while (p < cuts.size() && ValueOf(v) >= cuts[p]) ++p;
    pieces[p].push_back(v);
  }
  return pieces;
}

/// Smallest half-open range containing every value of `values` (the upper
/// bound is nudged one ulp past the maximum). Used by the Append phase to
/// widen a column's domain before routing incoming values; empty input
/// yields an empty range that never widens anything.
template <typename T>
ValueRange ValueEnvelope(const std::vector<T>& values) {
  if (values.empty()) return ValueRange();
  double lo = ValueOf(values.front());
  double hi = lo;
  for (const T& v : values) {
    const double d = ValueOf(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return ValueRange(lo, std::nextafter(hi, std::numeric_limits<double>::max()));
}

/// Shared write-path routing over a SegmentMetaIndex: widens the domain to
/// cover `values` (charging the boundary meta updates as adaptation
/// bookkeeping into `ex`) and groups the values by owning index position.
template <typename T>
std::map<size_t, std::vector<T>> RouteAppend(SegmentMetaIndex* index,
                                             const std::vector<T>& values,
                                             const CostModel& model,
                                             QueryExecution* ex) {
  const size_t widened = index->WidenDomain(ValueEnvelope(values));
  ex->adaptation_seconds += model.SegmentOverhead(widened);
  std::map<size_t, std::vector<T>> buckets;
  for (const T& v : values) {
    buckets[index->PositionOf(ValueOf(v))].push_back(v);
  }
  return buckets;
}

/// Tail-extends each routed bucket's segment in place, charging the appended
/// bytes into `ex` and updating the index counts. `on_segment` observes each
/// updated descriptor (deferred segmentation marks oversized ones there).
template <typename T, typename OnSegment>
void TailExtendBuckets(SegmentMetaIndex* index, SegmentSpace* space,
                       const std::map<size_t, std::vector<T>>& buckets,
                       QueryExecution* ex, OnSegment&& on_segment) {
  for (const auto& [pos, incoming] : buckets) {
    const SegmentInfo seg = index->At(pos);
    IoCost cost;
    space->template Append<T>(seg.id, incoming, &cost);
    ex->write_bytes += cost.bytes;
    ex->adaptation_seconds += cost.seconds;
    const SegmentInfo updated{seg.range, seg.count + incoming.size(), seg.id};
    index->Update(pos, updated);
    on_segment(updated);
  }
}

/// Appends the values of `span` falling inside `q` to `out`; returns count.
template <typename T>
uint64_t FilterRange(std::span<const T> span, const ValueRange& q,
                     std::vector<T>* out) {
  uint64_t n = 0;
  for (const T& v : span) {
    const double d = ValueOf(v);
    if (d >= q.lo && d < q.hi) {
      ++n;
      if (out != nullptr) out->push_back(v);
    }
  }
  return n;
}

}  // namespace socs

#endif  // SOCS_CORE_STRATEGY_H_
