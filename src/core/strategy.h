// AccessStrategy: the common interface of all column-access schemes compared
// in the paper -- non-segmented scan, static partitionings, adaptive
// segmentation, adaptive replication, and the database-cracking comparator.
// A strategy owns one column's worth of data (through a SegmentSpace) and
// answers range selections through a three-phase, single-pass execution
// protocol:
//
//   1. CoverSegments(q)       -- planning: the disjoint segments a selection
//      must touch (a meta-index / replica-tree lookup, never the data).
//   2. ScanSegment(seg, q, out) -- the only metered data access: one scan of
//      one covering segment, charging its payload bytes to SegmentSpace /
//      IoStats exactly once and extracting the qualifying values.
//   3. Reorganize(q)          -- the reorganizing module: only the adaptation
//      side effects (splits, merges, replication, deferred batching) and
//      their write/bookkeeping costs. Piece observations are re-derived from
//      the just-scanned, still-resident payloads via unmetered Peek, so no
//      segment is ever charged twice for one query.
//
// RunRange() is a non-virtual template method composing the three phases;
// strategies customize the phases, not the composition. The engine's BPM
// module drives the same phases from MAL (bpm.newIterator/hasMoreElements ->
// ScanSegment, bpm.adapt -> Reorganize), so the SQL/engine path and the
// direct core path report identical per-query accounting.
//
// Concurrency: because the scan phase is read-only, RunRange can fan it out
// across a ThreadPool -- one lane-metered ScanSegment per covering segment,
// folded back in cover order so the execution record, the result vector and
// the IoStats totals are byte-identical to a single-threaded run.
//
// Readers and writers synchronize through versioned covers, not a latch:
// every structural mutation (Reorganize / Append / FlushBatch / BulkAppend)
// runs under the column's exclusive ColumnLatch (the write-write path),
// builds the new segmentation off to the side -- copy-on-write payload
// rewrites via SegmentSpace::AppendCow, retired (not freed) predecessors --
// and finishes by PublishCover(): install an immutable ColumnCover snapshot,
// flip the EpochManager's published epoch. The scan phase pins the epoch,
// walks the pinned cover latch-free, and unpins; a scan that started before
// a mutation finishes on the pre-mutation cover with byte-identical results
// and metering to a solo run, because every segment it covers stays alive
// (and buffer-pool resident) until the minimum active reader epoch passes
// the segment's retire epoch (see RetireSegment/TryReclaim). Cracking opts
// out (snapshot_scans() == false -- it reorganizes its in-memory array in
// place, so its scans retain the classic shared-latch discipline). The
// virtual phase methods themselves are unlatched; only the non-virtual
// entry points (RunRange, Append, RunIdleWork -- and the engine's
// SegmentedColumn) pin epochs or acquire the latch.
#ifndef SOCS_CORE_STRATEGY_H_
#define SOCS_CORE_STRATEGY_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/column_cover.h"
#include "core/compression_advisor.h"
#include "core/oid_value.h"
#include "core/range.h"
#include "core/segment.h"
#include "core/segment_meta_index.h"
#include "exec/column_latch.h"
#include "exec/epoch_manager.h"
#include "exec/thread_pool.h"
#include "sim/io_lane.h"
#include "storage/segment_space.h"

namespace socs {

class StrategyState;

/// Per-query execution record: the paper's metrics for one range selection.
struct QueryExecution {
  uint64_t result_count = 0;
  /// Memory reads: bytes of materialized segments scanned (Fig. 7, Table 1).
  uint64_t read_bytes = 0;
  /// Memory writes due to segment materialization (Figs. 5-6).
  uint64_t write_bytes = 0;
  uint64_t segments_scanned = 0;
  uint64_t splits = 0;          // reorganization decisions taken
  uint64_t merges = 0;          // small segments glued back together
  uint64_t replicas_created = 0;
  uint64_t segments_dropped = 0;
  uint64_t replicas_evicted = 0;  // demoted to virtual by a storage budget
  /// Segments re-encoded by the compression advisor's cold sweep.
  uint64_t segments_recompressed = 0;
  /// Logical bytes decoded from encoded segment payloads along the way.
  uint64_t decode_bytes = 0;
  /// Simulated seconds answering the query (scans + per-segment overheads).
  double selection_seconds = 0.0;
  /// Simulated seconds reorganizing (segment materialization).
  double adaptation_seconds = 0.0;

  double TotalSeconds() const { return selection_seconds + adaptation_seconds; }
};

/// Accumulates per-query records (e.g., over a whole workload).
QueryExecution& operator+=(QueryExecution& a, const QueryExecution& b);

/// Storage-side footprint of a strategy (Figs. 8-9, Table 2).
struct StorageFootprint {
  uint64_t materialized_bytes = 0;  // payload bytes of live segments/replicas
  uint64_t segment_count = 0;       // materialized segments
  uint64_t meta_bytes = 0;          // meta-index / replica-tree bookkeeping
  // Decode-cache buffers the secondary store holds for this strategy's live
  // encoded segments (full-decode reads cache their logical array). Real
  // memory on top of materialized_bytes; kernels keep it near zero.
  uint64_t decode_cache_bytes = 0;
};

/// Outcome of one metered scan of one covering segment (phase 2).
template <typename T>
struct SegmentScan {
  uint64_t read_bytes = 0;    // physical payload bytes charged (0 when pruned)
  uint64_t decode_bytes = 0;  // logical bytes decoded (encoded payloads only)
  uint64_t result_count = 0;  // qualifying values seen in this segment
  double seconds = 0.0;       // simulated selection seconds of this scan
  bool scanned = true;        // false when pruned without touching the data
  /// The scanned payload (for the engine's segment-to-BAT delivery); valid
  /// until the next reorganization or bulk load frees the segment.
  std::span<const T> payload;
};

/// Folds one scan record into the selection half of an execution record --
/// the single fold used by RunRange and the engine's segment delivery, so
/// both paths accumulate in the same order with the same arithmetic.
template <typename T>
inline void FoldScanIntoExecution(const SegmentScan<T>& s, QueryExecution* ex) {
  ex->read_bytes += s.read_bytes;
  ex->decode_bytes += s.decode_bytes;
  ex->result_count += s.result_count;
  ex->selection_seconds += s.seconds;
  if (s.scanned) ++ex->segments_scanned;
}

template <typename T>
class AccessStrategy {
 public:
  /// `space` must outlive the strategy; it meters every data access and
  /// provides the cost model.
  explicit AccessStrategy(SegmentSpace* space) : space_(space) {
    if (space_->compression_enabled()) {
      advisor_ = std::make_unique<CompressionAdvisor>(space_);
    }
  }
  virtual ~AccessStrategy() = default;

  /// Executes a range selection end-to-end: plan (CoverSegments), one metered
  /// scan per covering segment (ScanSegment), then the reorganizing module
  /// (Reorganize). When `result` is non-null the qualifying values are
  /// appended (unordered; value-based organization gives up positional
  /// order). With a non-inline `pool` the scan phase fans out across the
  /// workers; the per-segment records, lane stats and result chunks are
  /// folded back in cover order, so the returned record, `*result` and the
  /// space's IoStats are byte-identical to the single-threaded run. Returns
  /// the per-query execution record.
  QueryExecution RunRange(const ValueRange& q, std::vector<T>* result = nullptr,
                          ThreadPool* pool = nullptr);

  // --- phase 1: planning ----------------------------------------------------

  /// Disjoint materialized segments whose union covers q's intersection with
  /// the column -- what the engine's segment iterator walks. The default
  /// (all overlapping segments) is correct for strategies whose segments
  /// tile the domain; adaptive replication overrides it with the replica
  /// tree's minimal cover. Callers hold at least the shared latch.
  virtual std::vector<SegmentInfo> CoverSegments(const ValueRange& q) const {
    std::vector<SegmentInfo> out;
    for (const SegmentInfo& s : Segments()) {
      if (s.range.Overlaps(q)) out.push_back(s);
    }
    return out;
  }

  // --- phase 2: the metered scan --------------------------------------------

  /// One metered scan of covering segment `seg`: charges the payload bytes to
  /// SegmentSpace/IoStats exactly once, appends the values inside `q` to
  /// `out` (when non-null), and returns the scan record including the raw
  /// payload. With a non-null `lane` the charge accumulates there instead of
  /// the shared stats (the parallel fan-out path; the caller commits lanes
  /// in cover order). With a non-null `precomputed` (a shared scan batch
  /// already filtered this segment against q -- see core/shared_scan.h) the
  /// metered charge is identical but the O(n) filter pass is skipped: the
  /// qualifying set is taken from `precomputed` verbatim. The default reads
  /// through SegmentSpace::Scan; strategies without segment-space payloads
  /// (cracking) or with scan-time pruning (zone maps) override it. Callers
  /// hold at least the shared latch.
  ///
  /// Kernel routing: when the caller asked for *filtered* delivery (`out` or
  /// `precomputed` non-null) and the segment is kernel-eligible (encoded,
  /// kernels on), the predicate runs directly on the encoded payload via
  /// SegmentSpace::ScanFiltered -- same result bytes, decode CPU only for
  /// the bytes actually inflated -- and `s.payload` stays empty (nothing was
  /// materialized). Full-payload delivery (`out == nullptr` without a
  /// precomputed batch, e.g. the engine's whole-segment BAT mode) keeps the
  /// decode-then-filter path, as does every raw segment.
  virtual SegmentScan<T> ScanSegment(const SegmentInfo& seg, const ValueRange& q,
                                     std::vector<T>* out, IoLane* lane = nullptr,
                                     const std::vector<T>* precomputed = nullptr) {
    SegmentScan<T> s;
    IoCost cost;
    const bool kernel = (out != nullptr || precomputed != nullptr) &&
                        space_->KernelEligible(seg.id);
    if (kernel) {
      if (precomputed != nullptr) {
        // A shared batch already holds the qualifying set; run the kernel in
        // count-only mode so the replayed charges are byte-identical to the
        // producing scan's (KernelStats is a function of (blob, q) only).
        space_->template ScanFiltered<T>(seg.id, q.lo, q.hi, nullptr, &cost,
                                         lane);
        s.result_count = precomputed->size();
        if (out != nullptr) {
          out->insert(out->end(), precomputed->begin(), precomputed->end());
        }
      } else {
        s.result_count = space_->template ScanFiltered<T>(seg.id, q.lo, q.hi,
                                                          out, &cost, lane);
      }
    } else {
      s.payload = space_->template Scan<T>(seg.id, &cost, lane);
      if (precomputed != nullptr) {
        s.result_count = precomputed->size();
        if (out != nullptr) {
          out->insert(out->end(), precomputed->begin(), precomputed->end());
        }
      } else if (out != nullptr && space_->kernels_enabled()) {
        // Raw segment with kernels on: the branch-free raw kernel replaces
        // the branching filter loop. Identical results and charges.
        s.result_count = ScanRawSegment(s.payload, q.lo, q.hi, out);
      } else {
        s.result_count = FilterRange(s.payload, q, out);
      }
    }
    s.read_bytes = cost.bytes;
    s.decode_bytes = cost.decode_bytes;
    s.seconds = cost.seconds;
    return s;
  }

  // --- phase 3: the reorganizing module --------------------------------------

  /// Performs only the adaptation side effects for query `q` and returns the
  /// adaptation half of the execution record (write bytes, splits, merges,
  /// replicas, adaptation seconds). Reads needed to *decide* reuse the
  /// payloads scanned in phase 2 via unmetered Peek; reads that are genuine
  /// extra work (e.g. deferred batches re-loading marked segments, merge
  /// glue) stay metered. The default is the no-op of non-adaptive baselines.
  /// Callers hold the exclusive latch.
  virtual QueryExecution Reorganize(const ValueRange& /*q*/) {
    return QueryExecution{};
  }

  // --- the write path --------------------------------------------------------

  /// Appends `values` to the column as an adaptation side effect: the
  /// appended payload bytes (plus any reorganization the strategy performs --
  /// segment rewrites, replica refreshes, cracked-piece shifting) are charged
  /// to the adaptation half of the returned record (write_bytes /
  /// adaptation_seconds). Values outside the column's domain widen it instead
  /// of failing. The engine's bpm.append op drives exactly this phase, so the
  /// SQL INSERT path and a direct core Append report identical accounting.
  /// Non-virtual: takes the exclusive latch, runs the strategy's AppendImpl,
  /// and publishes the post-append cover (appends always mutate payloads, so
  /// in-flight pinned scans keep reading the pre-append cover).
  QueryExecution Append(const std::vector<T>& values) {
    ExclusiveColumnGuard guard(latch_);
    const QueryExecution r = AppendImpl(values);
    if (!values.empty()) PublishCover();
    return r;
  }

  // --- idle-time maintenance --------------------------------------------------

  /// True when the strategy has reorganization work it could run off the
  /// query path (deferred segmentation's pending batch). Callers hold the
  /// exclusive latch (the pending set is mutated by Reorganize/Append).
  virtual bool HasIdleWork() const { return false; }

  /// Runs the pending idle work and returns its execution record (the
  /// background ledger's unit of accounting). Callers hold the exclusive
  /// latch; background jobs go through RunIdleWork instead.
  virtual QueryExecution IdleWork() { return QueryExecution{}; }

  /// Latched idle-work entry point: what a TaskScheduler background job
  /// calls (exec/task_scheduler.h, core/background_maintenance.h).
  QueryExecution RunIdleWork() {
    ExclusiveColumnGuard guard(latch_);
    const QueryExecution r = IdleWork();
    NoteReorganization(r);
    return r;
  }

  // --- versioned covers (epoch-published snapshots) --------------------------

  /// The published epoch: a monotonic counter advanced whenever segment
  /// payloads may have changed (non-empty Append, or a Reorganize/IdleWork
  /// record showing mutation) -- each advance publishing the matching cover
  /// snapshot. Shared scan batches key their per-segment caches on it, so a
  /// member running after a predecessor's reorganization misses the stale
  /// entries and re-scans instead of delivering moved data. Non-mutating
  /// reorganizations (pure bookkeeping) deliberately do NOT advance it.
  uint64_t data_epoch() const { return epochs_.published(); }

  /// The column's epoch manager: per-reader pin slots plus the published
  /// epoch. Exposed so the engine's iterator and tests/benches observe the
  /// same pin/retire/reclaim counters RunRange drives.
  EpochManager& epochs() const { return epochs_; }

  /// True when scans read epoch-pinned cover snapshots latch-free (the
  /// default). Cracking turns this off in its constructor: it reorganizes
  /// the in-memory cracker array in place, so its scans cannot survive a
  /// concurrent mutation and retain the shared-latch discipline. Benches
  /// also force it off to measure the old reader-stall behaviour.
  bool snapshot_scans() const { return snapshot_scans_; }
  void set_snapshot_scans(bool on) { snapshot_scans_ = on; }

  /// True when `r` indicates payload mutation (writes, splits, merges,
  /// replica churn) as opposed to pure bookkeeping.
  static bool MutatesData(const QueryExecution& r) {
    return r.write_bytes != 0 || r.splits != 0 || r.merges != 0 ||
           r.replicas_created != 0 || r.segments_dropped != 0 ||
           r.replicas_evicted != 0 || r.segments_recompressed != 0;
  }

  /// Publishes the post-mutation cover if the reorganization record shows
  /// mutation. Called by RunRange/RunIdleWork and the engine's adaptation
  /// driver after every Reorganize, under the exclusive latch.
  void NoteReorganization(const QueryExecution& r) {
    if (MutatesData(r)) PublishCover();
  }

  /// Builds the current cover snapshot and installs it under the next
  /// epoch, then attempts reclamation of retired segments whose epoch every
  /// active reader has passed. Callers hold the exclusive latch. Invariant:
  /// every mutation that called RetireSegment() must reach a PublishCover()
  /// before releasing the latch -- retirement epochs are assigned against
  /// the upcoming publish.
  void PublishCover() {
    std::shared_ptr<const ColumnCover> fresh = BuildCover(epochs_.published() + 1);
    {
      std::lock_guard<std::mutex> lk(cover_mu_);
      cover_ = std::move(fresh);
    }
    epochs_.Advance();
    TryReclaim();
  }

  /// Hands a previously published segment to epoch-based reclamation instead
  /// of freeing it: readers pinned before the enclosing mutation publishes
  /// may still scan it. Callers hold the exclusive latch and must publish
  /// before releasing it (see PublishCover). Segments created and discarded
  /// within one mutation (never visible to any cover) are freed directly.
  void RetireSegment(SegmentId id) {
    if (id == kInvalidSegment) return;
    if (advisor_ != nullptr) advisor_->Forget(id);
    epochs_.NoteRetire();
    std::lock_guard<std::mutex> lk(retire_mu_);
    retired_.push_back(RetiredSegment{id, epochs_.published() + 1});
  }

  /// Frees every retired segment whose retire epoch has been published AND
  /// is at or below the minimum active reader epoch -- the reclamation rule:
  /// a reader pinned at E-1 may still walk the cover that referenced a
  /// segment retired at E; readers pinned at >= E only see the successor
  /// cover. Runs after every publish and after every scan unpin.
  void TryReclaim() {
    std::lock_guard<std::mutex> lk(retire_mu_);
    if (retired_.empty()) return;
    const uint64_t published = epochs_.published();
    const uint64_t min_active = epochs_.MinActive();
    size_t kept = 0;
    for (const RetiredSegment& r : retired_) {
      if (r.epoch <= published && r.epoch <= min_active) {
        space_->Free(r.id);
        epochs_.NoteReclaim();
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }

  /// Retired segments not yet reclaimed (test/diagnostic hook).
  size_t PendingRetired() const {
    std::lock_guard<std::mutex> lk(retire_mu_);
    return retired_.size();
  }

  /// Pins the published epoch and returns the matching cover snapshot (the
  /// reader half of the protocol; pair with UnpinCover). The first call on a
  /// freshly constructed/restored column publishes the initial cover under
  /// the exclusive latch -- construction cannot, because BuildCover is
  /// virtual.
  std::shared_ptr<const ColumnCover> PinCover(size_t* slot) {
    *slot = epochs_.Pin();
    std::shared_ptr<const ColumnCover> cover = CurrentCover();
    if (cover == nullptr) {
      epochs_.Unpin(*slot);
      EnsureCoverPublished();
      *slot = epochs_.Pin();
      cover = CurrentCover();
    }
    return cover;
  }

  /// Releases a PinCover slot and attempts reclamation (this reader may have
  /// been the last one holding a retired segment's epoch back).
  void UnpinCover(size_t slot) {
    epochs_.Unpin(slot);
    TryReclaim();
  }

  /// The currently published cover (nullptr before the first publish).
  /// Never pins: the shared_ptr keeps the snapshot alive, but the segments
  /// it references are only guaranteed scannable under a pin.
  std::shared_ptr<const ColumnCover> CurrentCover() const {
    std::lock_guard<std::mutex> lk(cover_mu_);
    return cover_;
  }

  // --- statistics ------------------------------------------------------------

  virtual StorageFootprint Footprint() const = 0;

  /// Materialized segments, ordered by range (Table 2 statistics). May carry
  /// invalid segment ids for strategies without a segment-space notion
  /// (cracking pieces live in one in-memory array).
  virtual std::vector<SegmentInfo> Segments() const = 0;

  virtual std::string Name() const = 0;

  /// Captures the strategy's learned structure -- segment geometry, model
  /// parameters, counters -- into `out` for the persistence layer (see
  /// core/strategy_state.h). The inverse is RestoreStrategy<T>
  /// (core/strategy_restore.h). Callers hold at least the shared latch.
  virtual Status SaveState(StrategyState* /*out*/) const {
    return Status::Unimplemented(Name() + ": no persistence support");
  }

  SegmentSpace* space() const { return space_; }

  /// The compression policy, present only when the space was built with
  /// compression on (null otherwise -- the off path carries zero overhead).
  CompressionAdvisor* compression_advisor() const { return advisor_.get(); }

  /// The column's latch. Under versioned covers this is the write-write
  /// path: Reorganize / Append / IdleWork and the full-scan fallback
  /// serialize on it, while the epoch-pinned scan phase never touches it
  /// (except for cracking, whose scans still take it shared). Exposed so the
  /// engine's SegmentedColumn and the background scheduler synchronize on
  /// the same latch as RunRange.
  ColumnLatch& latch() const { return latch_; }

 protected:
  /// The strategy-specific write path (see Append). Implementations run
  /// under the exclusive latch.
  virtual QueryExecution AppendImpl(const std::vector<T>& values) = 0;

  /// Freezes the current segmentation as an immutable cover snapshot for
  /// `epoch`. The default (a range-pruning TiledCover over Segments())
  /// matches the base CoverSegments(); strategies that never prune by value
  /// override PruneCoverByRange(), and adaptive replication overrides
  /// BuildCover with a frozen replica-tree walk. Callers hold the exclusive
  /// latch (or constructor-time quiescence).
  virtual std::shared_ptr<const ColumnCover> BuildCover(uint64_t epoch) const {
    return std::make_shared<TiledCover>(epoch, Segments(), PruneCoverByRange());
  }

  /// Whether the default cover prunes segments by range overlap (value-based
  /// layouts) or always visits every segment (positional layouts).
  virtual bool PruneCoverByRange() const { return true; }

  /// Sum of the live segments' *physical* (stored, possibly encoded) bytes
  /// -- what Footprint reports as materialized storage (Figs. 8-9). Falls
  /// back to the logical size for segments without a segment-space payload
  /// (cracking's invalid ids). With compression off this equals the old
  /// count * sizeof(T) sum exactly.
  uint64_t MaterializedPhysicalBytes() const {
    uint64_t total = 0;
    for (const SegmentInfo& s : Segments()) {
      total += s.id == kInvalidSegment ? s.count * sizeof(T)
                                       : space_->PhysicalSizeOf(s.id);
    }
    return total;
  }

  /// Decode-cache bytes held for the live segments -- the companion of
  /// MaterializedPhysicalBytes for StorageFootprint::decode_cache_bytes.
  /// Zero with compression off and near zero with kernels on (the kernel
  /// path never fills the cache).
  uint64_t DecodedCacheBytes() const {
    uint64_t total = 0;
    for (const SegmentInfo& s : Segments()) {
      if (s.id != kInvalidSegment) total += space_->DecodedCacheBytesOf(s.id);
    }
    return total;
  }

  /// Cold-sweep hook for the compression advisor, called by strategies at
  /// their re-encode boundaries (end of Reorganize / FlushBatch) under the
  /// exclusive latch. Walks `segs`; every raw segment whose scan counter
  /// stood still across a full sweep period is re-encoded copy-on-write
  /// (SegmentSpace::RecompressCow), its raw predecessor retired through the
  /// epoch machinery, and the swap reported via `replace(i, fresh_info)` so
  /// the strategy rewrites its meta-index/block entry. All probe and rewrite
  /// charges land in the adaptation half of `ex`; a non-zero
  /// ex->segments_recompressed makes MutatesData publish the new cover.
  template <typename ReplaceFn>
  void SweepCompression(const std::vector<SegmentInfo>& segs,
                        QueryExecution* ex, ReplaceFn&& replace) {
    if (advisor_ == nullptr || !advisor_->ShouldSweep()) return;
    for (size_t i = 0; i < segs.size(); ++i) {
      const SegmentInfo& seg = segs[i];
      if (seg.id == kInvalidSegment || seg.count == 0) continue;
      if (!advisor_->IsColdRawCandidate(seg.id, seg.count * sizeof(T))) {
        continue;
      }
      advisor_->NoteTried(seg.id);
      IoCost read, write;
      const SegmentId fresh =
          space_->template RecompressCow<T>(seg.id, &read, &write);
      ex->read_bytes += read.bytes;
      ex->decode_bytes += read.decode_bytes;
      ex->write_bytes += write.bytes;
      ex->adaptation_seconds += read.seconds + write.seconds;
      if (fresh == seg.id) continue;  // probed, but compression did not win
      RetireSegment(seg.id);
      replace(i, SegmentInfo{seg.range, seg.count, fresh});
      ++ex->segments_recompressed;
    }
  }

  /// Publishes the initial cover exactly once (first reader; double-checked
  /// under the exclusive latch).
  void EnsureCoverPublished() {
    ExclusiveColumnGuard guard(latch_);
    if (CurrentCover() != nullptr) return;
    std::shared_ptr<const ColumnCover> fresh = BuildCover(epochs_.published());
    std::lock_guard<std::mutex> lk(cover_mu_);
    cover_ = std::move(fresh);
  }

  SegmentSpace* space_;
  mutable ColumnLatch latch_;
  /// Non-null iff the space runs with compression (see compression_advisor()).
  std::unique_ptr<CompressionAdvisor> advisor_;
  /// See snapshot_scans(); cracking clears this in its constructor.
  bool snapshot_scans_ = true;

 private:
  /// The scan half of RunRange over an already-planned cover: sequential, or
  /// fanned out with per-segment lanes folded back in cover order so record,
  /// result and IoStats are byte-identical to the sequential loop.
  void ScanCover(const std::vector<SegmentInfo>& cover, const ValueRange& q,
                 std::vector<T>* result, ThreadPool* pool, QueryExecution* ex) {
    if (pool == nullptr || pool->inline_mode() || cover.size() < 2) {
      for (const SegmentInfo& seg : cover) {
        FoldScanIntoExecution(ScanSegment(seg, q, result), ex);
      }
      return;
    }
    std::vector<SegmentScan<T>> scans(cover.size());
    std::vector<IoLane> lanes(cover.size());
    std::vector<std::vector<T>> chunks(result != nullptr ? cover.size() : 0);
    pool->ParallelFor(cover.size(), [&](size_t i) {
      scans[i] = ScanSegment(cover[i], q,
                             result != nullptr ? &chunks[i] : nullptr,
                             &lanes[i]);
    });
    for (size_t i = 0; i < cover.size(); ++i) {
      space_->CommitLane(&lanes[i]);
      FoldScanIntoExecution(scans[i], ex);
      if (result != nullptr) {
        result->insert(result->end(), chunks[i].begin(), chunks[i].end());
      }
    }
  }

  struct RetiredSegment {
    SegmentId id;
    uint64_t epoch;  // the publish that made the segment unreachable
  };

  mutable EpochManager epochs_;
  mutable std::mutex cover_mu_;
  std::shared_ptr<const ColumnCover> cover_;  // guarded by cover_mu_
  mutable std::mutex retire_mu_;
  std::vector<RetiredSegment> retired_;  // guarded by retire_mu_
};

template <typename T>
QueryExecution AccessStrategy<T>::RunRange(const ValueRange& q,
                                           std::vector<T>* result,
                                           ThreadPool* pool) {
  QueryExecution ex;
  ex.selection_seconds = space_->model().QueryOverhead();
  if (q.Empty()) return ex;
  if (snapshot_scans_) {
    // Snapshot read: pin the published epoch, plan against the immutable
    // cover, scan latch-free. A concurrent Reorganize/Append/FlushBatch
    // publishes its successor cover without disturbing this scan; the
    // segments covered here stay alive (and pool-resident) until the pin is
    // released, so results and metering are byte-identical to a solo run.
    size_t slot = 0;
    const std::shared_ptr<const ColumnCover> snapshot = PinCover(&slot);
    const std::vector<SegmentInfo> cover = snapshot->Cover(q);
    ScanCover(cover, q, result, pool, &ex);
    UnpinCover(slot);
  } else {
    // Classic discipline (cracking): scans share the latch with each other
    // and exclude writers.
    SharedColumnGuard guard(latch_);
    const std::vector<SegmentInfo> cover = CoverSegments(q);
    ScanCover(cover, q, result, pool, &ex);
  }
  {
    ExclusiveColumnGuard guard(latch_);
    const QueryExecution reorg = Reorganize(q);
    NoteReorganization(reorg);
    ex += reorg;
  }
  return ex;
}

/// Helper shared by strategy implementations: partitions `values` into the
/// pieces delimited by ascending `cuts` (values < cuts[0] -> piece 0, etc.).
/// Single pass, stable within pieces.
template <typename T>
std::vector<std::vector<T>> PartitionByCuts(std::span<const T> values,
                                            const std::vector<double>& cuts) {
  std::vector<std::vector<T>> pieces(cuts.size() + 1);
  for (const T& v : values) {
    size_t p = 0;
    while (p < cuts.size() && ValueOf(v) >= cuts[p]) ++p;
    pieces[p].push_back(v);
  }
  return pieces;
}

/// Smallest half-open range containing every value of `values` (the upper
/// bound is nudged one ulp past the maximum). Used by the Append phase to
/// widen a column's domain before routing incoming values; empty input
/// yields an empty range that never widens anything.
template <typename T>
ValueRange ValueEnvelope(const std::vector<T>& values) {
  if (values.empty()) return ValueRange();
  double lo = ValueOf(values.front());
  double hi = lo;
  for (const T& v : values) {
    const double d = ValueOf(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return ValueRange(lo, std::nextafter(hi, std::numeric_limits<double>::max()));
}

/// Shared write-path routing over a SegmentMetaIndex: widens the domain to
/// cover `values` (charging the boundary meta updates as adaptation
/// bookkeeping into `ex`) and groups the values by owning index position.
template <typename T>
std::map<size_t, std::vector<T>> RouteAppend(SegmentMetaIndex* index,
                                             const std::vector<T>& values,
                                             const CostModel& model,
                                             QueryExecution* ex) {
  const size_t widened = index->WidenDomain(ValueEnvelope(values));
  ex->adaptation_seconds += model.SegmentOverhead(widened);
  std::map<size_t, std::vector<T>> buckets;
  for (const T& v : values) {
    buckets[index->PositionOf(ValueOf(v))].push_back(v);
  }
  return buckets;
}

/// Tail-extends each routed bucket's segment, charging the appended bytes
/// into `ex` and updating the index counts. The extend is copy-on-write
/// (SegmentSpace::AppendCow): the bucket's values land in a successor
/// segment under a fresh id while the predecessor is retired for any
/// epoch-pinned reader still scanning it. `on_segment` observes each
/// (predecessor, successor) descriptor pair -- deferred segmentation
/// translates its pending marks and flags oversized successors there.
template <typename T, typename OnSegment>
void TailExtendBuckets(SegmentMetaIndex* index, AccessStrategy<T>* strategy,
                       const std::map<size_t, std::vector<T>>& buckets,
                       QueryExecution* ex, OnSegment&& on_segment) {
  for (const auto& [pos, incoming] : buckets) {
    const SegmentInfo seg = index->At(pos);
    IoCost cost;
    const SegmentId fresh =
        strategy->space()->template AppendCow<T>(seg.id, incoming, &cost);
    ex->write_bytes += cost.bytes;
    ex->decode_bytes += cost.decode_bytes;
    ex->adaptation_seconds += cost.seconds;
    const SegmentInfo updated{seg.range, seg.count + incoming.size(), fresh};
    index->Update(pos, updated);
    strategy->RetireSegment(seg.id);
    on_segment(seg, updated);
  }
}

/// Appends the values of `span` falling inside `q` to `out`; returns count.
template <typename T>
uint64_t FilterRange(std::span<const T> span, const ValueRange& q,
                     std::vector<T>* out) {
  uint64_t n = 0;
  for (const T& v : span) {
    const double d = ValueOf(v);
    if (d >= q.lo && d < q.hi) {
      ++n;
      if (out != nullptr) out->push_back(v);
    }
  }
  return n;
}

}  // namespace socs

#endif  // SOCS_CORE_STRATEGY_H_
