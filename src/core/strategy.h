// AccessStrategy: the common interface of all column-access schemes compared
// in the paper -- non-segmented scan, static partitionings, adaptive
// segmentation, adaptive replication, and the database-cracking comparator.
// A strategy owns one column's worth of data (through a SegmentSpace) and
// answers range selections, possibly reorganizing itself as a side effect.
#ifndef SOCS_CORE_STRATEGY_H_
#define SOCS_CORE_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/oid_value.h"
#include "core/range.h"
#include "core/segment.h"
#include "storage/segment_space.h"

namespace socs {

/// Per-query execution record: the paper's metrics for one range selection.
struct QueryExecution {
  uint64_t result_count = 0;
  /// Memory reads: bytes of materialized segments scanned (Fig. 7, Table 1).
  uint64_t read_bytes = 0;
  /// Memory writes due to segment materialization (Figs. 5-6).
  uint64_t write_bytes = 0;
  uint64_t segments_scanned = 0;
  uint64_t splits = 0;          // reorganization decisions taken
  uint64_t merges = 0;          // small segments glued back together
  uint64_t replicas_created = 0;
  uint64_t segments_dropped = 0;
  uint64_t replicas_evicted = 0;  // demoted to virtual by a storage budget
  /// Simulated seconds answering the query (scans + per-segment overheads).
  double selection_seconds = 0.0;
  /// Simulated seconds reorganizing (segment materialization).
  double adaptation_seconds = 0.0;

  double TotalSeconds() const { return selection_seconds + adaptation_seconds; }
};

/// Accumulates per-query records (e.g., over a whole workload).
QueryExecution& operator+=(QueryExecution& a, const QueryExecution& b);

/// Storage-side footprint of a strategy (Figs. 8-9, Table 2).
struct StorageFootprint {
  uint64_t materialized_bytes = 0;  // payload bytes of live segments/replicas
  uint64_t segment_count = 0;       // materialized segments
  uint64_t meta_bytes = 0;          // meta-index / replica-tree bookkeeping
};

template <typename T>
class AccessStrategy {
 public:
  virtual ~AccessStrategy() = default;

  /// Executes a range selection. When `result` is non-null the qualifying
  /// values are appended (unordered; value-based organization gives up
  /// positional order). Returns the per-query execution record.
  virtual QueryExecution RunRange(const ValueRange& q,
                                  std::vector<T>* result = nullptr) = 0;

  virtual StorageFootprint Footprint() const = 0;

  /// Materialized segments, ordered by range (Table 2 statistics). May be
  /// empty for strategies without a segment notion (cracking).
  virtual std::vector<SegmentInfo> Segments() const = 0;

  /// Disjoint materialized segments whose union covers q's intersection with
  /// the column -- what the engine's segment iterator walks. The default
  /// (all overlapping segments) is correct for strategies whose segments
  /// tile the domain; adaptive replication overrides it with the replica
  /// tree's minimal cover.
  virtual std::vector<SegmentInfo> CoverSegments(const ValueRange& q) const {
    std::vector<SegmentInfo> out;
    for (const SegmentInfo& s : Segments()) {
      if (s.range.Overlaps(q)) out.push_back(s);
    }
    return out;
  }

  virtual std::string Name() const = 0;
};

/// Helper shared by strategy implementations: partitions `values` into the
/// pieces delimited by ascending `cuts` (values < cuts[0] -> piece 0, etc.).
/// Single pass, stable within pieces.
template <typename T>
std::vector<std::vector<T>> PartitionByCuts(std::span<const T> values,
                                            const std::vector<double>& cuts) {
  std::vector<std::vector<T>> pieces(cuts.size() + 1);
  for (const T& v : values) {
    size_t p = 0;
    while (p < cuts.size() && ValueOf(v) >= cuts[p]) ++p;
    pieces[p].push_back(v);
  }
  return pieces;
}

/// Appends the values of `span` falling inside `q` to `out`; returns count.
template <typename T>
uint64_t FilterRange(std::span<const T> span, const ValueRange& q,
                     std::vector<T>* out) {
  uint64_t n = 0;
  for (const T& v : span) {
    const double d = ValueOf(v);
    if (d >= q.lo && d < q.hi) {
      ++n;
      if (out != nullptr) out->push_back(v);
    }
  }
  return n;
}

}  // namespace socs

#endif  // SOCS_CORE_STRATEGY_H_
