#include "core/apm.h"

#include <sstream>

#include "common/logging.h"

namespace socs {

std::string Apm::Name() const {
  std::ostringstream os;
  os << "APM " << FormatBytes(min_bytes_) << "-" << FormatBytes(max_bytes_);
  return os.str();
}

SplitAction Apm::Decide(const SplitGeometry& g) {
  SOCS_CHECK_LT(min_bytes_, max_bytes_);
  if (g.seg_bytes < min_bytes_) return SplitAction::kKeep;       // rule 1
  if (g.QueryCoversSegment()) return SplitAction::kKeep;         // nothing to split
  if (g.MinPieceBytes() >= min_bytes_) {
    return SplitAction::kSplitAtBounds;                          // rule 2
  }
  if (g.seg_bytes > max_bytes_) return SplitAction::kSplitBounded;  // rule 3
  return SplitAction::kKeep;
}

}  // namespace socs
