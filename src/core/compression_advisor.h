// CompressionAdvisor: the self-organizing policy half of the SegmentCodec
// seam (storage/segment_codec.h holds the mechanism). Following the storage
// advisor's hot/cold framing, the advisor classifies segments by the access
// counters the metered scan path already maintains (SegmentSpace::ScanCount)
// and tells the strategies' re-encode boundaries -- Reorganize, FlushBatch,
// idle maintenance -- which raw segments went cold and are worth
// re-encoding. Freshly rewritten segments (splits, merges, appends) were
// just touched by a query, so they stay raw; initial bulk loads are cold by
// definition and compress at Create time (CompressionHint::kCold).
//
// Cold detection needs no clock: a segment is cold when its scan count is
// *unchanged* between two consecutive sweeps -- a full sweep period without
// a single metered scan. That makes the decision a pure function of the
// metered access sequence, so compressed runs stay deterministic and
// replayable like everything else in the simulator.
//
// Thread safety: none of its own. Every method runs under the owning
// column's exclusive latch (the write-write path), like the reorganization
// state it rides along with.
#ifndef SOCS_CORE_COMPRESSION_ADVISOR_H_
#define SOCS_CORE_COMPRESSION_ADVISOR_H_

#include <unordered_map>
#include <unordered_set>

#include "storage/segment_space.h"

namespace socs {

class CompressionAdvisor {
 public:
  struct Options {
    /// A sweep runs on every N-th boundary call: spacing observations out
    /// keeps the probe overhead off the query path and gives busy segments
    /// time to visibly move their scan counters between observations.
    uint32_t sweep_period = 8;
    /// Segments smaller than this are never worth re-encoding.
    uint64_t min_bytes = 512;
  };

  explicit CompressionAdvisor(SegmentSpace* space)
      : space_(space) {}
  CompressionAdvisor(SegmentSpace* space, Options opts)
      : space_(space), opts_(opts) {}

  /// Called once per re-encode boundary; true when a cold sweep should run.
  bool ShouldSweep() { return ++boundary_calls_ % opts_.sweep_period == 0; }

  /// True when `id` is a raw, sweep-worthy segment whose scan count moved by
  /// at most the heat tolerance since the previous sweep observed it --
  /// strictly unmoved with kernels off, the space's kernel_heat_tolerance
  /// otherwise (mildly warm segments are still worth encoding when kernels
  /// make encoded scans cheap). The first observation of a segment only
  /// records a baseline (never cold); a segment that failed a re-encode
  /// attempt (NoteTried) is not offered again.
  bool IsColdRawCandidate(SegmentId id, uint64_t logical_bytes) {
    if (logical_bytes < opts_.min_bytes) return false;
    if (tried_.count(id) > 0) return false;
    if (space_->CodecOf(id) != SegmentCodec::kRaw) return false;
    const uint64_t scans = space_->ScanCount(id);
    auto [it, first_observation] = last_scan_count_.try_emplace(id, scans);
    if (first_observation) return false;
    const uint64_t moved = scans - it->second;
    it->second = scans;
    const uint64_t tolerance = space_->kernels_enabled()
                                   ? space_->options().kernel_heat_tolerance
                                   : 0;
    return moved <= tolerance;
  }

  /// Records a re-encode attempt so incompressible segments are probed at
  /// most once (ids are never reused, so the set self-limits).
  void NoteTried(SegmentId id) { tried_.insert(id); }

  /// Drops bookkeeping for a retired segment.
  void Forget(SegmentId id) {
    last_scan_count_.erase(id);
    tried_.erase(id);
  }

  uint64_t boundary_calls() const { return boundary_calls_; }
  const Options& options() const { return opts_; }

 private:
  SegmentSpace* space_;
  Options opts_;
  uint64_t boundary_calls_ = 0;
  std::unordered_map<SegmentId, uint64_t> last_scan_count_;
  std::unordered_set<SegmentId> tried_;
};

}  // namespace socs

#endif  // SOCS_CORE_COMPRESSION_ADVISOR_H_
