// Persistence of a segmented-column layout: the segment meta-index as a
// text manifest plus one raw little-endian payload file per segment. This is
// the "large columns residing on disk" side of the paper's design -- a
// reorganized column can be shut down and restored without losing the
// workload-learned segmentation.
//
// Layout of <dir>:
//   manifest.txt   "socs-column 1 <value_size> <n>" + one line per segment:
//                  "<lo> <hi> <count> <file>"
//   seg_<k>.bin    raw payload of segment k
#ifndef SOCS_CORE_COLUMN_PERSISTENCE_H_
#define SOCS_CORE_COLUMN_PERSISTENCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/segment.h"
#include "storage/segment_space.h"

namespace socs {

/// Writes `segments` (ordered, as returned by AccessStrategy::Segments())
/// and their payloads from `space` into `dir` (created if missing).
template <typename T>
Status SaveSegments(const std::vector<SegmentInfo>& segments,
                    const SegmentSpace& space, const std::string& dir);

/// Reads a layout saved by SaveSegments<T>; payloads are materialized into
/// `space` (fresh segment ids). Fails on size/type mismatches.
template <typename T>
StatusOr<std::vector<SegmentInfo>> LoadSegments(SegmentSpace* space,
                                                const std::string& dir);

}  // namespace socs

#endif  // SOCS_CORE_COLUMN_PERSISTENCE_H_
