#include "core/column_persistence.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "core/oid_value.h"

namespace socs {

namespace fs = std::filesystem;

namespace {
constexpr int kFormatVersion = 1;
}  // namespace

template <typename T>
Status SaveSegments(const std::vector<SegmentInfo>& segments,
                    const SegmentSpace& space, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create " + dir + ": " + ec.message());

  const std::string manifest_path = dir + "/manifest.txt";
  std::FILE* mf = std::fopen(manifest_path.c_str(), "w");
  if (mf == nullptr) return Status::NotFound("cannot write " + manifest_path);
  std::fprintf(mf, "socs-column %d %zu %zu\n", kFormatVersion, sizeof(T),
               segments.size());
  for (size_t k = 0; k < segments.size(); ++k) {
    const SegmentInfo& s = segments[k];
    char file[32];
    std::snprintf(file, sizeof(file), "seg_%zu.bin", k);
    std::fprintf(mf, "%.17g %.17g %" PRIu64 " %s\n", s.range.lo, s.range.hi,
                 s.count, file);
    std::FILE* pf = std::fopen((dir + "/" + file).c_str(), "wb");
    if (pf == nullptr) {
      std::fclose(mf);
      return Status::NotFound(std::string("cannot write segment file ") + file);
    }
    auto span = space.Peek<T>(s.id);
    if (span.size() != s.count) {
      std::fclose(pf);
      std::fclose(mf);
      return Status::Internal("segment payload/count mismatch");
    }
    if (!span.empty() &&
        std::fwrite(span.data(), sizeof(T), span.size(), pf) != span.size()) {
      std::fclose(pf);
      std::fclose(mf);
      return Status::Internal(std::string("short write to ") + file);
    }
    std::fclose(pf);
  }
  std::fclose(mf);
  return Status::OK();
}

template <typename T>
StatusOr<std::vector<SegmentInfo>> LoadSegments(SegmentSpace* space,
                                                const std::string& dir) {
  const std::string manifest_path = dir + "/manifest.txt";
  std::FILE* mf = std::fopen(manifest_path.c_str(), "r");
  if (mf == nullptr) return Status::NotFound("cannot read " + manifest_path);
  int version = 0;
  size_t value_size = 0, n = 0;
  if (std::fscanf(mf, "socs-column %d %zu %zu", &version, &value_size, &n) != 3 ||
      version != kFormatVersion) {
    std::fclose(mf);
    return Status::InvalidArgument("bad manifest header in " + manifest_path);
  }
  if (value_size != sizeof(T)) {
    std::fclose(mf);
    return Status::InvalidArgument("value size mismatch: manifest has " +
                                   std::to_string(value_size) + ", caller " +
                                   std::to_string(sizeof(T)));
  }
  std::vector<SegmentInfo> out;
  out.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    double lo = 0, hi = 0;
    uint64_t count = 0;
    char file[64];
    if (std::fscanf(mf, "%lg %lg %" SCNu64 " %63s", &lo, &hi, &count, file) != 4) {
      std::fclose(mf);
      return Status::InvalidArgument("bad manifest row " + std::to_string(k));
    }
    std::FILE* pf = std::fopen((dir + "/" + file).c_str(), "rb");
    if (pf == nullptr) {
      std::fclose(mf);
      return Status::NotFound(std::string("missing segment file ") + file);
    }
    std::vector<T> values(count);
    if (count > 0 && std::fread(values.data(), sizeof(T), count, pf) != count) {
      std::fclose(pf);
      std::fclose(mf);
      return Status::Internal(std::string("short read from ") + file);
    }
    std::fclose(pf);
    IoCost setup;
    SegmentId id = space->Create(values, &setup);
    out.push_back(SegmentInfo{ValueRange(lo, hi), count, id});
  }
  std::fclose(mf);
  return out;
}

#define SOCS_INSTANTIATE_PERSISTENCE(T)                                     \
  template Status SaveSegments<T>(const std::vector<SegmentInfo>&,          \
                                  const SegmentSpace&, const std::string&); \
  template StatusOr<std::vector<SegmentInfo>> LoadSegments<T>(              \
      SegmentSpace*, const std::string&)

SOCS_INSTANTIATE_PERSISTENCE(int32_t);
SOCS_INSTANTIATE_PERSISTENCE(int64_t);
SOCS_INSTANTIATE_PERSISTENCE(float);
SOCS_INSTANTIATE_PERSISTENCE(double);
SOCS_INSTANTIATE_PERSISTENCE(OidValue);

#undef SOCS_INSTANTIATE_PERSISTENCE

}  // namespace socs
