// Sparse segment meta-index (paper section 3.1): an in-memory, ordered
// catalog of the value-range segments of one column. The query optimizer
// uses it to pre-select only segments overlapping a predicate; the adaptive
// strategies mutate it as segments split. Invariant: segments are adjacent,
// non-overlapping, and tile the column's domain exactly.
#ifndef SOCS_CORE_SEGMENT_META_INDEX_H_
#define SOCS_CORE_SEGMENT_META_INDEX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/segment.h"

namespace socs {

class SegmentMetaIndex {
 public:
  SegmentMetaIndex() = default;
  explicit SegmentMetaIndex(ValueRange domain) : domain_(domain) {}

  /// Installs the initial single segment covering the whole domain.
  void InitSingle(const SegmentInfo& seg);

  /// Installs a full tiling (used by static partitioning). Dies if the
  /// segments do not tile the domain.
  void InitTiling(std::vector<SegmentInfo> segs);

  /// Index range [first, last) of segments overlapping `q`.
  /// Segments are sorted by range.lo; lookup is binary search.
  std::pair<size_t, size_t> FindOverlapping(const ValueRange& q) const;

  /// Index position of the segment owning value `d` under the half-open
  /// convention. A value at (or beyond) the domain's upper bound clamps into
  /// the last segment -- the append path's boundary case, which a naive
  /// FindOverlapping probe would map to no segment. Dies when `d` is below
  /// the domain.
  size_t PositionOf(double d) const;

  /// Replaces the segment at `pos` with `pieces` (ordered, tiling the
  /// replaced segment's range). Dies on invariant violations.
  void Replace(size_t pos, const std::vector<SegmentInfo>& pieces);

  /// Replaces the `span` adjacent segments starting at `pos` with `pieces`
  /// (used by merging: many segments -> one). Same invariants as Replace.
  void ReplaceSpan(size_t pos, size_t span, const std::vector<SegmentInfo>& pieces);

  /// Swaps the descriptor at `pos` for one covering the same range but a
  /// possibly different count/payload (bulk appends). Dies on range change.
  void Update(size_t pos, const SegmentInfo& seg);

  /// Widens the domain to include `r`, extending the boundary segments'
  /// ranges so appends outside the original domain route into them instead
  /// of crashing. Returns how many boundary segments changed (0, 1 or 2).
  size_t WidenDomain(const ValueRange& r);

  const SegmentInfo& At(size_t pos) const { return segments_[pos]; }
  size_t Size() const { return segments_.size(); }
  const std::vector<SegmentInfo>& segments() const { return segments_; }
  const ValueRange& domain() const { return domain_; }

  uint64_t TotalCount() const;

  /// Approximate in-memory footprint of the index itself (the paper's
  /// argument: a *sparse* index stays small).
  uint64_t IndexBytes() const { return segments_.size() * sizeof(SegmentInfo); }

  /// Checks the tiling invariant; returns the first violation found.
  Status Validate() const;

 private:
  ValueRange domain_;
  std::vector<SegmentInfo> segments_;  // sorted by range.lo
};

}  // namespace socs

#endif  // SOCS_CORE_SEGMENT_META_INDEX_H_
