// StrategyState: the serialized form of one strategy's learned structure --
// segment geometry, model parameters, counters -- as an ordered key -> bytes
// document. The persistence layer (src/persist) stores one StrategyState per
// segmented column inside each checkpoint; recovery parses it back and hands
// it to RestoreStrategy<T> (core/strategy_restore.h).
//
// Every value is little-endian raw bytes with a typed accessor; doubles are
// stored as their IEEE-754 bit pattern (bit-exact round trips -- the
// replacement for the seed-era "%.17g" text manifest, which could not
// round-trip every double). Serialization is deterministic: fields are
// ordered by key, so identical states produce identical bytes (checkpoints
// of an unchanged column are byte-stable).
#ifndef SOCS_CORE_STRATEGY_STATE_H_
#define SOCS_CORE_STRATEGY_STATE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/segment.h"

namespace socs {

class SegmentationModel;

class StrategyState {
 public:
  void PutU64(const std::string& key, uint64_t v);
  /// Bit-exact double (IEEE-754 bit pattern, little-endian).
  void PutDouble(const std::string& key, double v);
  void PutString(const std::string& key, std::string v);
  void PutBytes(const std::string& key, std::vector<std::byte> v);
  void PutU64s(const std::string& key, const std::vector<uint64_t>& v);
  void PutDoubles(const std::string& key, const std::vector<double>& v);
  /// Segment list: (lo, hi, count, id) per segment, 32 bytes each.
  void PutSegments(const std::string& key, const std::vector<SegmentInfo>& v);

  StatusOr<uint64_t> GetU64(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;
  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<std::vector<std::byte>> GetBytes(const std::string& key) const;
  StatusOr<std::vector<uint64_t>> GetU64s(const std::string& key) const;
  StatusOr<std::vector<double>> GetDoubles(const std::string& key) const;
  StatusOr<std::vector<SegmentInfo>> GetSegments(const std::string& key) const;

  bool Has(const std::string& key) const { return fields_.count(key) > 0; }
  size_t field_count() const { return fields_.size(); }

  /// Deterministic wire form (see file comment) / its inverse.
  std::vector<std::byte> Serialize() const;
  static StatusOr<StrategyState> Parse(std::span<const std::byte> bytes);

  bool operator==(const StrategyState& o) const { return fields_ == o.fields_; }

 private:
  const std::vector<std::byte>* Find(const std::string& key) const;

  std::map<std::string, std::vector<std::byte>> fields_;
};

/// Captures a segmentation model's identity and parameters under "model.*"
/// keys. APM and AutoAPM restore exactly (AutoAPM keeps its learned EMA);
/// GD's dice stream restarts from its seed -- the learned *layout* is exact,
/// future split draws replay from the beginning.
Status SaveModel(const SegmentationModel& model, StrategyState* out);
StatusOr<std::unique_ptr<SegmentationModel>> RestoreModel(
    const StrategyState& st);

}  // namespace socs

#endif  // SOCS_CORE_STRATEGY_STATE_H_
