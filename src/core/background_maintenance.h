// Background reorganization wiring: hands a strategy's idle work (deferred
// segmentation's pending batch, see DeferredSegmentation::IdleWork) to a
// TaskScheduler so batches run off the query path entirely -- the paper's
// post-processing reorganization executed the way Hyrise runs automatic
// clustering as a background plugin. Jobs take the column's exclusive latch
// (AccessStrategy::RunIdleWork), so they serialize against queries and
// appends without any cooperation from the query threads; their execution
// records accumulate in a ledger here instead of any query's record.
#ifndef SOCS_CORE_BACKGROUND_MAINTENANCE_H_
#define SOCS_CORE_BACKGROUND_MAINTENANCE_H_

#include <cstdint>
#include <mutex>

#include "core/strategy.h"
#include "exec/task_scheduler.h"

namespace socs {

template <typename T>
class BackgroundMaintenance {
 public:
  /// `strategy` must outlive this object and any scheduled jobs (drain the
  /// scheduler before tearing either down).
  explicit BackgroundMaintenance(AccessStrategy<T>* strategy)
      : strategy_(strategy) {}
  BackgroundMaintenance(const BackgroundMaintenance&) = delete;
  BackgroundMaintenance& operator=(const BackgroundMaintenance&) = delete;

  /// Enqueues one idle-work pass on `sched` (an idle point, e.g. "query
  /// finished"). A pass with nothing pending is a cheap latched no-op.
  void Schedule(TaskScheduler* sched) {
    sched->ScheduleBackground([this] {
      const QueryExecution ex = strategy_->RunIdleWork();
      std::lock_guard<std::mutex> lk(mu_);
      total_ += ex;
      ++runs_;
    });
  }

  /// Sum of all background execution records so far.
  QueryExecution total() const {
    std::lock_guard<std::mutex> lk(mu_);
    return total_;
  }
  /// Background passes completed (including no-op passes).
  uint64_t runs() const {
    std::lock_guard<std::mutex> lk(mu_);
    return runs_;
  }

 private:
  AccessStrategy<T>* strategy_;
  mutable std::mutex mu_;
  QueryExecution total_;
  uint64_t runs_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_BACKGROUND_MAINTENANCE_H_
