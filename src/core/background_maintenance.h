// Background reorganization wiring: hands a strategy's idle work (deferred
// segmentation's pending batch, see DeferredSegmentation::IdleWork) to a
// TaskScheduler so batches run off the query path entirely -- the paper's
// post-processing reorganization executed the way Hyrise runs automatic
// clustering as a background plugin. Jobs take the column's exclusive latch
// (AccessStrategy::RunIdleWork), so they serialize against queries and
// appends without any cooperation from the query threads; their execution
// records accumulate in a ledger here instead of any query's record.
#ifndef SOCS_CORE_BACKGROUND_MAINTENANCE_H_
#define SOCS_CORE_BACKGROUND_MAINTENANCE_H_

#include <cstdint>
#include <mutex>

#include "core/strategy.h"
#include "exec/task_scheduler.h"

namespace socs {

template <typename T>
class BackgroundMaintenance {
 public:
  /// `strategy` must outlive this object and any scheduled jobs (drain the
  /// scheduler before tearing either down).
  explicit BackgroundMaintenance(AccessStrategy<T>* strategy)
      : strategy_(strategy) {}
  BackgroundMaintenance(const BackgroundMaintenance&) = delete;
  BackgroundMaintenance& operator=(const BackgroundMaintenance&) = delete;

  /// Requests one idle-work pass on `sched` (an idle point, e.g. "query
  /// finished"). The request is *gated on the scheduler's load watermark*:
  /// while the foreground lanes are saturated with query work the pass is
  /// skipped (counted in the ledger, see skips()) instead of queued behind
  /// the traffic -- maintenance only rides genuinely idle capacity. Passing
  /// `force` bypasses the watermark (the graceful-shutdown drain uses it so
  /// no pending batch is ever dropped). Returns whether a pass was enqueued.
  /// A pass with nothing pending is a cheap latched no-op.
  bool Schedule(TaskScheduler* sched, bool force = false) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++schedules_;
      if (!force && sched->ForegroundSaturated()) {
        ++skips_;
        return false;
      }
    }
    sched->ScheduleBackground([this] {
      const QueryExecution ex = strategy_->RunIdleWork();
      std::lock_guard<std::mutex> lk(mu_);
      total_ += ex;
      ++runs_;
    });
    return true;
  }

  /// Sum of all background execution records so far.
  QueryExecution total() const {
    std::lock_guard<std::mutex> lk(mu_);
    return total_;
  }
  /// Background passes completed (including no-op passes).
  uint64_t runs() const {
    std::lock_guard<std::mutex> lk(mu_);
    return runs_;
  }
  /// Idle points observed (Schedule calls, enqueued or skipped).
  uint64_t schedules() const {
    std::lock_guard<std::mutex> lk(mu_);
    return schedules_;
  }
  /// Passes skipped by the load watermark. After a DrainBackground the
  /// ledger balances: schedules() == runs() + skips().
  uint64_t skips() const {
    std::lock_guard<std::mutex> lk(mu_);
    return skips_;
  }

 private:
  AccessStrategy<T>* strategy_;
  mutable std::mutex mu_;
  QueryExecution total_;
  uint64_t runs_ = 0;
  uint64_t schedules_ = 0;
  uint64_t skips_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_BACKGROUND_MAINTENANCE_H_
