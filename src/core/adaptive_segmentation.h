// Paper concept: adaptive segmentation, the eager-materialization
// self-organizing strategy (Ivanova, Kersten, Nes, EDBT 2008, section 4).
//
// The column is a list of adjacent, non-overlapping value-range segments,
// initially one segment holding everything. Each range selection gives every
// overlapping segment a chance to split; the segmentation model (GD or APM)
// decides. A split rewrites the whole segment as 2-3 sub-segments, so the
// selected sub-segment is piggy-backed on the query scan while complements
// are materialized eagerly -- high start-up cost, minimal storage.
//
// Three-phase protocol: the meta-index provides the cover, the default
// metered ScanSegment answers the selection, and Reorganize replays the
// model's split decisions over the just-scanned payloads (unmetered Peek)
// before executing them -- the segment reads are charged once, in the scan
// phase, and only the split/merge writes (plus merge glue reads, genuine
// extra work) appear in the adaptation half.
#ifndef SOCS_CORE_ADAPTIVE_SEGMENTATION_H_
#define SOCS_CORE_ADAPTIVE_SEGMENTATION_H_

#include <memory>
#include <vector>

#include "core/model.h"
#include "core/segment_meta_index.h"
#include "core/strategy.h"

namespace socs {

template <typename T>
class AdaptiveSegmentation : public AccessStrategy<T> {
 public:
  struct Options {
    /// Glue adjacent small segments back together after each query (the
    /// paper's section 3.1 "glue segments together" / section 8 merging
    /// strategy countering GD's fragmentation on skewed workloads).
    bool merge_small_segments = false;
    /// Adjacent segments whose combined size stays at or below this are
    /// merged; 0 derives the threshold from the model (Mmin, or 4KB for
    /// unbounded models such as GD).
    uint64_t merge_threshold_bytes = 0;
  };

  AdaptiveSegmentation(std::vector<T> values, ValueRange domain,
                       std::unique_ptr<SegmentationModel> model,
                       SegmentSpace* space, Options opts = {});

  /// Restores a previously saved layout (core/strategy_restore.h): the
  /// segments must tile `domain` and already live in `space`.
  AdaptiveSegmentation(ValueRange domain, std::vector<SegmentInfo> segments,
                       std::unique_ptr<SegmentationModel> model,
                       SegmentSpace* space, Options opts = {});

  /// The reorganizing module: walks the segments overlapping `q`
  /// right-to-left, asks the model about each one's split geometry, executes
  /// the chosen splits, then optionally glues small neighbours.
  QueryExecution Reorganize(const ValueRange& q) override;

  /// Bulk-loads additional values (the paper targets warehouses with "few
  /// large bulk loads and prevailing read-only queries"). Values are routed
  /// to their value-range segments; each affected segment is rewritten once.
  /// Values outside the column's domain widen it (the boundary segment's
  /// range is extended); the widening cost is part of the returned record.
  /// Takes the column's exclusive latch -- safe alongside concurrent scans.
  QueryExecution BulkAppend(const std::vector<T>& values) {
    ExclusiveColumnGuard guard(this->latch_);
    const QueryExecution r = BulkAppendLocked(values);
    this->NoteReorganization(r);  // publish: retired segments await it
    return r;
  }

  StorageFootprint Footprint() const override;
  std::vector<SegmentInfo> Segments() const override {
    return index_.segments();
  }
  std::string Name() const override { return "Segm/" + model_->Name(); }
  Status SaveState(StrategyState* out) const override;

  const SegmentMetaIndex& index() const { return index_; }
  const SegmentationModel& model() const { return *model_; }

 protected:
  /// The write-path phase is the segment-rewriting bulk append (the caller,
  /// Append, already holds the exclusive latch).
  QueryExecution AppendImpl(const std::vector<T>& values) override {
    return BulkAppendLocked(values);
  }

 private:
  QueryExecution BulkAppendLocked(const std::vector<T>& values);
  struct PieceCounts {
    uint64_t left = 0, mid = 0, right = 0;
  };

  /// One pass over the segment: counts values per query-cut piece.
  PieceCounts CountPieces(std::span<const T> span, const ValueRange& q) const;

  SplitGeometry MakeGeometry(const SegmentInfo& seg, const ValueRange& q,
                             const PieceCounts& pc) const;

  /// Executes the split of the segment at index position `pos`; returns true
  /// if a reorganization actually happened.
  bool SplitSegment(size_t pos, const SegmentInfo& seg, std::span<const T> span,
                    const ValueRange& q, SplitAction action, QueryExecution* ex);

  /// Picks the single cut for SplitAction::kSplitBounded (APM rule 3):
  /// a query bound that keeps both sides >= Mmin if one exists, otherwise an
  /// approximation of the mean value of the segment.
  double ChooseBoundedCut(const SegmentInfo& seg, std::span<const T> span,
                          const ValueRange& q, const PieceCounts& pc) const;

  /// Merging pass over the segments in the query's neighbourhood: glues
  /// adjacent segments while their combined size stays under the threshold.
  void MergeAround(const ValueRange& q, QueryExecution* ex);

  /// Glues segments [pos, pos+1] into one; charges reads + the write.
  void Glue(size_t pos, QueryExecution* ex);

  uint64_t MergeThreshold() const;

  std::unique_ptr<SegmentationModel> model_;
  SegmentMetaIndex index_;
  Options opts_;
  uint64_t total_bytes_;
};

}  // namespace socs

#endif  // SOCS_CORE_ADAPTIVE_SEGMENTATION_H_
