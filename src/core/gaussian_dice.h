// Gaussian Dice (GD) model, paper section 3.2.1: a "learning" randomized
// policy. For a segment S from which a query extracts a piece P, let
// x = size(P)/size(S) and sigma = size(S)/size(column). The split
// probability is O(x) = G(x)/G(0.5) = exp(-(x - 0.5)^2 / (2 sigma^2)), so
// selections that halve a relatively large segment are most likely to
// trigger reorganization, and point queries rarely fragment the column.
#ifndef SOCS_CORE_GAUSSIAN_DICE_H_
#define SOCS_CORE_GAUSSIAN_DICE_H_

#include "common/rng.h"
#include "core/model.h"

namespace socs {

class GaussianDice : public SegmentationModel {
 public:
  explicit GaussianDice(uint64_t seed = 0xd1ce) : rng_(seed), seed_(seed) {}

  SplitAction Decide(const SplitGeometry& g) override;

  std::string Name() const override { return "GD"; }
  std::unique_ptr<SegmentationModel> Clone() const override {
    return std::make_unique<GaussianDice>(seed_);
  }

  /// The decision function O(x) for partition ratio x and the given sigma
  /// (exposed for Fig. 2 and for tests).
  static double DecisionProbability(double x, double sigma);

  /// Construction seed. Persistence restores GD from it: the learned layout
  /// is exact, the dice stream replays from the beginning (common/rng.h's
  /// generator does not expose its internal state).
  uint64_t seed() const { return seed_; }

 private:
  Rng rng_;
  uint64_t seed_;
};

}  // namespace socs

#endif  // SOCS_CORE_GAUSSIAN_DICE_H_
