// Replica tree (paper section 5): the hierarchy of materialized and virtual
// segments maintained by adaptive replication. A node's children tile its
// value range exactly; a segment S is an ancestor of the nodes whose ranges
// it contains. Virtual nodes carry only an estimated size -- their data lives
// in the nearest materialized ancestor. Invariant: every domain point is
// covered by at least one materialized node on its root-to-leaf path.
//
// A sentinel root (never materialized, never dropped) holds the forest that
// remains after the original full-column segment is dropped.
#ifndef SOCS_CORE_REPLICA_TREE_H_
#define SOCS_CORE_REPLICA_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/column_cover.h"
#include "core/segment.h"

namespace socs {

struct ReplicaNode {
  ValueRange range;
  uint64_t count = 0;        // exact once materialized, estimate while virtual
  bool count_exact = false;
  bool materialized = false;
  SegmentId seg = kInvalidSegment;
  uint64_t last_access = 0;  // query counter; drives budget-based eviction
  ReplicaNode* parent = nullptr;
  std::vector<std::unique_ptr<ReplicaNode>> children;  // sorted by lo, tile range

  bool IsLeaf() const { return children.empty(); }
  bool IsSentinel() const { return parent == nullptr; }

  /// True when some proper ancestor (excluding the sentinel) is materialized,
  /// i.e. this node's payload is redundant and safe to demote.
  bool HasMaterializedAncestor() const {
    for (const ReplicaNode* p = parent; p != nullptr && !p->IsSentinel();
         p = p->parent) {
      if (p->materialized) return true;
    }
    return false;
  }
};

/// Specification of a node to attach (see ReplicaTree::AddChildren).
struct ReplicaNodeSpec {
  ValueRange range;
  uint64_t estimated_count = 0;
};

/// Flat pre-order image of one node (sentinel first) -- the unit of the
/// persistence layer's tree serialization (Flatten / FromImages).
struct ReplicaNodeImage {
  ValueRange range;
  uint64_t count = 0;
  bool count_exact = false;
  bool materialized = false;
  SegmentId seg = kInvalidSegment;
  uint64_t last_access = 0;
  uint64_t num_children = 0;
};

class ReplicaTree {
 public:
  explicit ReplicaTree(ValueRange domain);

  /// Installs the initial materialized segment holding the whole column.
  ReplicaNode* InitColumn(uint64_t count, SegmentId seg);

  ReplicaNode* sentinel() { return sentinel_.get(); }
  const ReplicaNode* sentinel() const { return sentinel_.get(); }

  /// Algorithm 3: minimal covering set of materialized nodes for `q`
  /// (deepest materialized nodes, falling back to a materialized ancestor
  /// when a subtree lacks coverage). Returns false only when the coverage
  /// invariant is broken. Cover elements have pairwise disjoint ranges.
  bool GetCover(const ValueRange& q, std::vector<ReplicaNode*>* cover);

  /// Attaches children tiling `parent`'s range (specs ordered by range.lo).
  /// Dies if `parent` already has children or specs do not tile its range.
  std::vector<ReplicaNode*> AddChildren(ReplicaNode* parent,
                                        const std::vector<ReplicaNodeSpec>& specs);

  /// Algorithm 5 (check4Drop): bottom-up over the subtree of `s`, drops every
  /// node (including `s`, excluding the sentinel) whose children are all
  /// materialized, splicing its children into its parent. Segment ids of
  /// dropped *materialized* nodes are appended to `freed` (caller releases
  /// the storage); `*drops` counts dropped nodes.
  void CheckForDrop(ReplicaNode* s, std::vector<SegmentId>* freed, uint64_t* drops);

  /// Widens the domain to include `r`, extending the ranges of the nodes on
  /// the leftmost/rightmost root-to-leaf paths so appends outside the
  /// original domain route into the boundary replicas. Returns how many
  /// sides changed (0, 1 or 2).
  size_t WidenDomain(const ValueRange& r);

  /// Uniform-interpolation size estimate of a sub-range of `n` (the paper
  /// estimates virtual-segment sizes; exact sizes arrive on materialization).
  static uint64_t EstimateCount(const ReplicaNode& n, const ValueRange& sub);

  /// Const variant of GetCover returning segment descriptors.
  std::vector<SegmentInfo> CoverInfos(const ValueRange& q) const;

  // --- statistics / inspection ----------------------------------------------
  uint64_t MaterializedValues() const;  // sum of counts over materialized nodes
  uint64_t MaterializedNodeCount() const;
  uint64_t NodeCount() const;
  size_t MaxDepth() const;  // sentinel = depth 0
  std::vector<const ReplicaNode*> MaterializedNodes() const;

  /// Validates tiling, ordering and the coverage invariant.
  Status Validate() const;

  /// Pre-order flat copy of the whole hierarchy, sentinel first.
  std::vector<ReplicaNodeImage> Flatten() const;

  /// Rebuilds a tree from a Flatten() image. Validates the tiling and
  /// coverage invariants before returning.
  static StatusOr<std::unique_ptr<ReplicaTree>> FromImages(
      ValueRange domain, const std::vector<ReplicaNodeImage>& images);

  const ValueRange& domain() const { return domain_; }

 private:
  bool GetCoverRec(ReplicaNode* s, const ValueRange& q,
                   std::vector<ReplicaNode*>* cover);
  /// Returns true if `s` was dropped (and destroyed).
  bool CheckForDropRec(ReplicaNode* s, std::vector<SegmentId>* freed,
                       uint64_t* drops);
  void Splice(ReplicaNode* s);

  ValueRange domain_;
  std::unique_ptr<ReplicaNode> sentinel_;
};

/// Epoch-published cover snapshot of a replica tree: a frozen, flattened copy
/// of the hierarchy taken at publish time (under the column's exclusive
/// latch). Cover(q) replays Algorithm 3 (GetCoverRec, with its backtrack rule)
/// against the frozen nodes, so an epoch-pinned reader gets exactly the
/// minimal covering set the live tree would have produced at publish time --
/// while the live tree mutates freely underneath.
class ReplicaCoverSnapshot : public ColumnCover {
 public:
  ReplicaCoverSnapshot(uint64_t epoch, const ReplicaTree& tree);

  std::vector<SegmentInfo> Cover(const ValueRange& q) const override;

 private:
  struct Node {
    ValueRange range;
    uint64_t count = 0;
    SegmentId seg = kInvalidSegment;
    bool materialized = false;
    std::vector<size_t> children;  // indices into nodes_, sorted by range.lo
  };

  size_t Flatten(const ReplicaNode& n);
  bool CoverRec(size_t idx, const ValueRange& q,
                std::vector<SegmentInfo>* out) const;

  ValueRange domain_;
  std::vector<Node> nodes_;  // nodes_[0] = the sentinel
};

}  // namespace socs

#endif  // SOCS_CORE_REPLICA_TREE_H_
