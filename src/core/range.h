// Value ranges. All ranges in the library are half-open [lo, hi) over
// doubles; the paper's inclusive integer ranges [QL, QH] map to [QL, QH+1).
// Half-open ranges tile a domain without +/-1 arithmetic and work unchanged
// for the integer simulation domain and the float SkyServer domain.
#ifndef SOCS_CORE_RANGE_H_
#define SOCS_CORE_RANGE_H_

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace socs {

struct ValueRange {
  double lo = 0.0;
  double hi = 0.0;  // exclusive

  ValueRange() = default;
  ValueRange(double l, double h) : lo(l), hi(h) { SOCS_CHECK_LE(l, h); }

  double Span() const { return hi - lo; }
  bool Empty() const { return lo >= hi; }
  bool Contains(double v) const { return v >= lo && v < hi; }
  bool ContainsRange(const ValueRange& o) const { return lo <= o.lo && o.hi <= hi; }
  bool Overlaps(const ValueRange& o) const { return lo < o.hi && o.lo < hi; }

  ValueRange Intersect(const ValueRange& o) const {
    double l = std::max(lo, o.lo);
    double h = std::min(hi, o.hi);
    if (l > h) return ValueRange(l, l);
    return ValueRange(l, h);
  }

  bool operator==(const ValueRange& o) const { return lo == o.lo && hi == o.hi; }

  std::string ToString() const;
};

inline std::string ValueRange::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%g, %g)", lo, hi);
  return buf;
}

/// A range-selection query (the only query shape the strategies react to;
/// the paper addresses read-only scan-heavy workloads).
struct RangeQuery {
  ValueRange range;

  RangeQuery() = default;
  RangeQuery(double lo, double hi) : range(lo, hi) {}
  explicit RangeQuery(ValueRange r) : range(r) {}
};

}  // namespace socs

#endif  // SOCS_CORE_RANGE_H_
