// Segmentation models (paper section 3.2): the policy that decides, per
// selection and per overlapping segment, whether the selection should be
// used to reorganize the column. Models reason about *sizes in bytes* only;
// they never see the data.
#ifndef SOCS_CORE_MODEL_H_
#define SOCS_CORE_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>

namespace socs {

/// Geometry of the candidate split of segment S by a query: sizes of the up
/// to three pieces the query bounds would carve out of S.
struct SplitGeometry {
  uint64_t seg_bytes = 0;    // size of S
  uint64_t total_bytes = 0;  // size of the whole column
  uint64_t left_bytes = 0;   // piece of S below the query range
  uint64_t mid_bytes = 0;    // piece of S inside the query range (the selection)
  uint64_t right_bytes = 0;  // piece of S above the query range
  bool has_left = false;     // the query's low bound cuts S
  bool has_right = false;    // the query's high bound cuts S

  /// True when the query range covers all of S (no split possible).
  bool QueryCoversSegment() const { return !has_left && !has_right; }

  /// Smallest piece the bound-split would create (only existing pieces).
  uint64_t MinPieceBytes() const {
    uint64_t m = mid_bytes;
    if (has_left && left_bytes < m) m = left_bytes;
    if (has_right && right_bytes < m) m = right_bytes;
    return m;
  }

  int NumPieces() const { return 1 + (has_left ? 1 : 0) + (has_right ? 1 : 0); }
};

/// What to do with the segment.
enum class SplitAction {
  kKeep,           // leave the segment intact
  kSplitAtBounds,  // split into the 2-3 pieces at the query bounds
  // The bound-split would create a too-small piece, but the segment is too
  // large to keep (APM rule 3): split at a single query bound, or at an
  // approximation of the segment's mean value, whichever avoids small pieces.
  kSplitBounded,
};

const char* SplitActionName(SplitAction a);

class SegmentationModel {
 public:
  virtual ~SegmentationModel() = default;

  /// Decides the fate of one segment for one query. Stateful models (GD's
  /// random draw) advance their state, hence non-const.
  virtual SplitAction Decide(const SplitGeometry& g) = 0;

  virtual std::string Name() const = 0;

  /// APM bounds; the defaults make non-APM models "never too small/large".
  virtual uint64_t min_bytes() const { return 0; }
  virtual uint64_t max_bytes() const { return UINT64_MAX; }

  /// Fresh instance with identical parameters (strategies own their model).
  virtual std::unique_ptr<SegmentationModel> Clone() const = 0;
};

inline const char* SplitActionName(SplitAction a) {
  switch (a) {
    case SplitAction::kKeep: return "keep";
    case SplitAction::kSplitAtBounds: return "split-at-bounds";
    case SplitAction::kSplitBounded: return "split-bounded";
  }
  return "?";
}

}  // namespace socs

#endif  // SOCS_CORE_MODEL_H_
