#include "core/positional_blocks.h"

#include <algorithm>
#include <sstream>

#include "core/strategy_state.h"

namespace socs {

template <typename T>
PositionalBlocks<T>::PositionalBlocks(std::vector<T> values, ValueRange domain,
                                      uint64_t block_bytes, SegmentSpace* space,
                                      bool use_zone_maps)
    : AccessStrategy<T>(space), domain_(domain), block_bytes_(block_bytes),
      use_zone_maps_(use_zone_maps), total_count_(values.size()) {
  SOCS_CHECK_GE(block_bytes, sizeof(T));
  const size_t per_block = block_bytes / sizeof(T);
  for (size_t off = 0; off < values.size(); off += per_block) {
    const size_t n = std::min(per_block, values.size() - off);
    std::vector<T> chunk(values.begin() + off, values.begin() + off + n);
    double mn = ValueOf(chunk.front());
    double mx = mn;
    for (const T& v : chunk) {
      mn = std::min(mn, ValueOf(v));
      mx = std::max(mx, ValueOf(v));
    }
    IoCost setup;
    SegmentId id = space->Create(chunk, &setup, CompressionHint::kCold);
    blocks_.push_back(Block{id, n, mn, mx});
  }
}

template <typename T>
PositionalBlocks<T>::PositionalBlocks(ValueRange domain, uint64_t block_bytes,
                                      bool use_zone_maps,
                                      std::vector<Block> blocks,
                                      uint64_t total_count, SegmentSpace* space)
    : AccessStrategy<T>(space), domain_(domain), block_bytes_(block_bytes),
      use_zone_maps_(use_zone_maps), blocks_(std::move(blocks)),
      total_count_(total_count) {
  SOCS_CHECK_GE(block_bytes, sizeof(T));
}

template <typename T>
Status PositionalBlocks<T>::SaveState(StrategyState* out) const {
  out->PutString("kind", "positional_blocks");
  out->PutU64("value_size", sizeof(T));
  out->PutDouble("domain.lo", domain_.lo);
  out->PutDouble("domain.hi", domain_.hi);
  out->PutU64("block_bytes", block_bytes_);
  out->PutU64("zone_maps", use_zone_maps_ ? 1 : 0);
  out->PutU64("total_count", total_count_);
  // Blocks as parallel arrays: zone maps are not ValueRanges (an all-equal
  // block has min == max), so the segment-list encoding does not apply.
  std::vector<uint64_t> ids, counts;
  std::vector<double> mins, maxs;
  for (const Block& b : blocks_) {
    ids.push_back(b.id);
    counts.push_back(b.count);
    mins.push_back(b.min_value);
    maxs.push_back(b.max_value);
  }
  out->PutU64s("blocks.ids", ids);
  out->PutU64s("blocks.counts", counts);
  out->PutDoubles("blocks.min", mins);
  out->PutDoubles("blocks.max", maxs);
  return Status::OK();
}

template <typename T>
SegmentScan<T> PositionalBlocks<T>::ScanSegment(const SegmentInfo& seg,
                                                const ValueRange& q,
                                                std::vector<T>* out,
                                                IoLane* lane,
                                                const std::vector<T>* precomputed) {
  // `seg.range` carries the block's zone map (see Segments()). A pruned
  // block has an empty qualifying set, so `precomputed` is irrelevant here.
  if (use_zone_maps_ && (seg.range.hi < q.lo || seg.range.lo >= q.hi)) {
    SegmentScan<T> s;
    s.scanned = false;  // payload skipped; only the block header is visited
    s.seconds = this->space_->model().SegmentOverhead();
    return s;
  }
  return AccessStrategy<T>::ScanSegment(seg, q, out, lane, precomputed);
}

template <typename T>
QueryExecution PositionalBlocks<T>::AppendImpl(const std::vector<T>& values) {
  QueryExecution ex;
  if (values.empty()) return ex;
  const ValueRange env = ValueEnvelope(values);
  domain_.lo = std::min(domain_.lo, env.lo);
  domain_.hi = std::max(domain_.hi, env.hi);
  const size_t per_block = block_bytes_ / sizeof(T);
  size_t off = 0;
  while (off < values.size()) {
    if (!blocks_.empty() && blocks_.back().count < per_block) {
      Block& b = blocks_.back();
      const size_t n =
          std::min(per_block - b.count, values.size() - off);
      std::vector<T> chunk(values.begin() + off, values.begin() + off + n);
      IoCost cost;
      const SegmentId fresh =
          this->space_->template AppendCow<T>(b.id, chunk, &cost);
      this->RetireSegment(b.id);
      b.id = fresh;
      ex.write_bytes += cost.bytes;
      ex.decode_bytes += cost.decode_bytes;
      ex.adaptation_seconds += cost.seconds;
      for (const T& v : chunk) {
        b.min_value = std::min(b.min_value, ValueOf(v));
        b.max_value = std::max(b.max_value, ValueOf(v));
      }
      b.count += n;
      off += n;
    } else {
      const size_t n = std::min(per_block, values.size() - off);
      std::vector<T> chunk(values.begin() + off, values.begin() + off + n);
      double mn = ValueOf(chunk.front());
      double mx = mn;
      for (const T& v : chunk) {
        mn = std::min(mn, ValueOf(v));
        mx = std::max(mx, ValueOf(v));
      }
      IoCost create;
      SegmentId id = this->space_->Create(chunk, &create);
      ex.write_bytes += create.bytes;
      ex.adaptation_seconds += create.seconds;
      blocks_.push_back(Block{id, n, mn, mx});
      off += n;
    }
  }
  total_count_ += values.size();
  return ex;
}

template <typename T>
QueryExecution PositionalBlocks<T>::Reorganize(const ValueRange& /*q*/) {
  // Blocks never move, but blocks the workload stopped touching re-encode;
  // zone maps are untouched by a codec swap (same values, same order).
  QueryExecution ex;
  this->SweepCompression(Segments(), &ex,
                         [&](size_t pos, const SegmentInfo& info) {
                           blocks_[pos].id = info.id;
                         });
  return ex;
}

template <typename T>
StorageFootprint PositionalBlocks<T>::Footprint() const {
  return {this->MaterializedPhysicalBytes(), blocks_.size(),
          blocks_.size() * sizeof(Block), this->DecodedCacheBytes()};
}

template <typename T>
std::vector<SegmentInfo> PositionalBlocks<T>::Segments() const {
  // Positional blocks have no value ranges; report their zone maps.
  std::vector<SegmentInfo> out;
  out.reserve(blocks_.size());
  for (const Block& b : blocks_) {
    out.push_back(SegmentInfo{ValueRange(b.min_value, b.max_value), b.count, b.id});
  }
  return out;
}

template <typename T>
std::string PositionalBlocks<T>::Name() const {
  std::ostringstream os;
  os << "Blocks" << FormatBytes(block_bytes_) << (use_zone_maps_ ? "+zm" : "");
  return os.str();
}

template class PositionalBlocks<int32_t>;
template class PositionalBlocks<int64_t>;
template class PositionalBlocks<float>;
template class PositionalBlocks<double>;
template class PositionalBlocks<OidValue>;

}  // namespace socs
