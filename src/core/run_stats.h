// RunRecorder accumulates per-query execution records over a workload run and
// derives the series the paper plots: cumulative memory writes, per-query
// reads, storage curves, cumulative and moving-average times.
#ifndef SOCS_CORE_RUN_STATS_H_
#define SOCS_CORE_RUN_STATS_H_

#include <cstdint>
#include <vector>

#include "core/strategy.h"

namespace socs {

class RunRecorder {
 public:
  void Record(const QueryExecution& ex, const StorageFootprint& fp);

  size_t NumQueries() const { return reads_.size(); }

  // Raw per-query series.
  const std::vector<double>& reads() const { return reads_; }
  const std::vector<double>& writes() const { return writes_; }
  const std::vector<double>& storage_bytes() const { return storage_; }
  const std::vector<double>& segment_counts() const { return segment_counts_; }
  const std::vector<double>& selection_seconds() const { return selection_s_; }
  const std::vector<double>& adaptation_seconds() const { return adaptation_s_; }
  const std::vector<double>& total_seconds() const { return total_s_; }
  const std::vector<double>& result_counts() const { return results_; }

  // Derived series / aggregates.
  std::vector<double> CumulativeWrites() const;
  std::vector<double> CumulativeTotalSeconds() const;
  std::vector<double> MovingAverageSeconds(size_t window) const;
  double AverageReadBytes() const;
  double AverageSelectionSeconds() const;
  double AverageAdaptationSeconds() const;
  uint64_t TotalSplits() const { return total_splits_; }
  uint64_t TotalDrops() const { return total_drops_; }

 private:
  std::vector<double> reads_, writes_, storage_, segment_counts_;
  std::vector<double> selection_s_, adaptation_s_, total_s_, results_;
  uint64_t total_splits_ = 0;
  uint64_t total_drops_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_RUN_STATS_H_
