// Baseline: positional fixed-size blocks (C-Store style, paper section 1:
// "a column is represented as a sequence of 64KB blocks"). Blocks preserve
// insertion order, so a range selection must visit every block -- there is
// no value-based pruning; the per-block min/max sketch (a zone map) can skip
// a block's *data* only when the workload produced clustered data.
#ifndef SOCS_CORE_POSITIONAL_BLOCKS_H_
#define SOCS_CORE_POSITIONAL_BLOCKS_H_

#include <vector>

#include "common/units.h"
#include "core/strategy.h"

namespace socs {

template <typename T>
class PositionalBlocks : public AccessStrategy<T> {
 public:
  PositionalBlocks(std::vector<T> values, ValueRange domain,
                   uint64_t block_bytes, SegmentSpace* space,
                   bool use_zone_maps = false);

  QueryExecution RunRange(const ValueRange& q,
                          std::vector<T>* result = nullptr) override;

  StorageFootprint Footprint() const override;
  std::vector<SegmentInfo> Segments() const override;
  /// Positional blocks have no value order: every block must be visited.
  std::vector<SegmentInfo> CoverSegments(const ValueRange& q) const override {
    (void)q;
    return Segments();
  }
  std::string Name() const override;

 private:
  struct Block {
    SegmentId id;
    uint64_t count;
    double min_value, max_value;  // zone map
  };

  SegmentSpace* space_;
  ValueRange domain_;
  uint64_t block_bytes_;
  bool use_zone_maps_;
  std::vector<Block> blocks_;
  uint64_t total_count_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_POSITIONAL_BLOCKS_H_
