// Baseline: positional fixed-size blocks (C-Store style, paper section 1:
// "a column is represented as a sequence of 64KB blocks"). Blocks preserve
// insertion order, so a range selection must visit every block -- the cover
// is always the full block list and there is no value-based pruning; the
// per-block min/max sketch (a zone map) lets ScanSegment skip a block's
// *data* (paying only the header overhead) when the workload produced
// clustered data. Never reorganizes.
#ifndef SOCS_CORE_POSITIONAL_BLOCKS_H_
#define SOCS_CORE_POSITIONAL_BLOCKS_H_

#include <vector>

#include "common/units.h"
#include "core/strategy.h"

namespace socs {

template <typename T>
class PositionalBlocks : public AccessStrategy<T> {
 public:
  struct Block {
    SegmentId id;
    uint64_t count;
    double min_value, max_value;  // zone map
  };

  PositionalBlocks(std::vector<T> values, ValueRange domain,
                   uint64_t block_bytes, SegmentSpace* space,
                   bool use_zone_maps = false);

  /// Restores a previously saved layout: the blocks' segments must already
  /// live in `space`, in insertion order.
  PositionalBlocks(ValueRange domain, uint64_t block_bytes, bool use_zone_maps,
                   std::vector<Block> blocks, uint64_t total_count,
                   SegmentSpace* space);

  /// Positional blocks have no value order: every block must be visited.
  std::vector<SegmentInfo> CoverSegments(const ValueRange& q) const override {
    (void)q;
    return Segments();
  }

  /// Zone-map pruning happens at scan time: a skipped block charges only the
  /// per-segment header overhead and reports `scanned = false`.
  SegmentScan<T> ScanSegment(const SegmentInfo& seg, const ValueRange& q,
                             std::vector<T>* out, IoLane* lane = nullptr,
                             const std::vector<T>* precomputed = nullptr) override;

  /// Blocks never reorganize; Reorganize only runs the compression
  /// advisor's cold sweep (a no-op when compression is off).
  QueryExecution Reorganize(const ValueRange& q) override;

  StorageFootprint Footprint() const override;
  std::vector<SegmentInfo> Segments() const override;
  std::string Name() const override;
  Status SaveState(StrategyState* out) const override;

 protected:
  /// Appends in insertion order: fills the tail block to `block_bytes`
  /// (copy-on-write, retiring the old tail for pinned readers), then opens
  /// fresh blocks. Zone maps of touched blocks are maintained; only the
  /// appended bytes are charged (C-Store style tail load).
  QueryExecution AppendImpl(const std::vector<T>& values) override;

  /// Positional cover: every block is always visited (see CoverSegments);
  /// zone-map pruning happens inside ScanSegment, not in the cover.
  bool PruneCoverByRange() const override { return false; }

 private:
  ValueRange domain_;
  uint64_t block_bytes_;
  bool use_zone_maps_;
  std::vector<Block> blocks_;
  uint64_t total_count_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_POSITIONAL_BLOCKS_H_
