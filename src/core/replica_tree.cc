#include "core/replica_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "common/logging.h"

namespace socs {

ReplicaTree::ReplicaTree(ValueRange domain) : domain_(domain) {
  sentinel_ = std::make_unique<ReplicaNode>();
  sentinel_->range = domain;
  sentinel_->materialized = false;
}

ReplicaNode* ReplicaTree::InitColumn(uint64_t count, SegmentId seg) {
  SOCS_CHECK(sentinel_->children.empty()) << "column already initialized";
  auto node = std::make_unique<ReplicaNode>();
  node->range = domain_;
  node->count = count;
  node->count_exact = true;
  node->materialized = true;
  node->seg = seg;
  node->parent = sentinel_.get();
  ReplicaNode* raw = node.get();
  sentinel_->children.push_back(std::move(node));
  return raw;
}

bool ReplicaTree::GetCover(const ValueRange& q, std::vector<ReplicaNode*>* cover) {
  cover->clear();
  ValueRange eff = q.Intersect(domain_);
  if (eff.Empty()) return true;
  return GetCoverRec(sentinel_.get(), eff, cover);
}

bool ReplicaTree::GetCoverRec(ReplicaNode* s, const ValueRange& q,
                              std::vector<ReplicaNode*>* cover) {
  if (s->IsLeaf()) {
    if (!s->materialized) return false;
    cover->push_back(s);
    return true;
  }
  const size_t start = cover->size();
  for (auto& child : s->children) {
    if (!child->range.Overlaps(q)) continue;
    if (!GetCoverRec(child.get(), q, cover)) {
      cover->resize(start);  // backtrack: cover this subtree with s itself
      if (!s->materialized) return false;
      cover->push_back(s);
      return true;
    }
  }
  return true;
}

std::vector<ReplicaNode*> ReplicaTree::AddChildren(
    ReplicaNode* parent, const std::vector<ReplicaNodeSpec>& specs) {
  SOCS_CHECK(parent->children.empty())
      << "AddChildren on non-leaf " << parent->range.ToString();
  SOCS_CHECK(!specs.empty());
  SOCS_CHECK_EQ(specs.front().range.lo, parent->range.lo);
  SOCS_CHECK_EQ(specs.back().range.hi, parent->range.hi);
  std::vector<ReplicaNode*> out;
  out.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) {
      SOCS_CHECK_EQ(specs[i].range.lo, specs[i - 1].range.hi);
    }
    SOCS_CHECK(!specs[i].range.Empty());
    auto node = std::make_unique<ReplicaNode>();
    node->range = specs[i].range;
    node->count = specs[i].estimated_count;
    node->count_exact = false;
    node->materialized = false;
    node->parent = parent;
    out.push_back(node.get());
    parent->children.push_back(std::move(node));
  }
  return out;
}

void ReplicaTree::CheckForDrop(ReplicaNode* s, std::vector<SegmentId>* freed,
                               uint64_t* drops) {
  (void)CheckForDropRec(s, freed, drops);
}

bool ReplicaTree::CheckForDropRec(ReplicaNode* s, std::vector<SegmentId>* freed,
                                  uint64_t* drops) {
  if (s->IsLeaf()) return false;
  for (size_t i = 0; i < s->children.size();) {
    ReplicaNode* c = s->children[i].get();
    const size_t before = s->children.size();
    if (CheckForDropRec(c, freed, drops)) {
      // c was replaced in-place by its (already processed) children.
      i += (s->children.size() - before) + 1;
    } else {
      ++i;
    }
  }
  if (s->IsSentinel()) return false;
  for (const auto& c : s->children) {
    if (!c->materialized) return false;  // children do not replicate s yet
  }
  if (s->materialized) freed->push_back(s->seg);
  ++*drops;
  Splice(s);  // destroys s
  return true;
}

void ReplicaTree::Splice(ReplicaNode* s) {
  ReplicaNode* parent = s->parent;
  auto it = std::find_if(parent->children.begin(), parent->children.end(),
                         [s](const std::unique_ptr<ReplicaNode>& p) {
                           return p.get() == s;
                         });
  SOCS_CHECK(it != parent->children.end());
  const size_t pos = static_cast<size_t>(it - parent->children.begin());
  std::vector<std::unique_ptr<ReplicaNode>> grandkids = std::move(s->children);
  for (auto& g : grandkids) g->parent = parent;
  parent->children.erase(parent->children.begin() + pos);
  parent->children.insert(parent->children.begin() + pos,
                          std::make_move_iterator(grandkids.begin()),
                          std::make_move_iterator(grandkids.end()));
}

std::vector<SegmentInfo> ReplicaTree::CoverInfos(const ValueRange& q) const {
  std::vector<ReplicaNode*> cover;
  // GetCover never mutates the tree; the non-const signature only reflects
  // that callers receive mutable nodes.
  const bool ok = const_cast<ReplicaTree*>(this)->GetCover(q, &cover);
  SOCS_CHECK(ok) << "replica tree lost coverage for " << q.ToString();
  std::vector<SegmentInfo> out;
  out.reserve(cover.size());
  for (const ReplicaNode* n : cover) {
    out.push_back(SegmentInfo{n->range, n->count, n->seg});
  }
  return out;
}

size_t ReplicaTree::WidenDomain(const ValueRange& r) {
  size_t changed = 0;
  if (r.lo < domain_.lo) {
    domain_.lo = r.lo;
    for (ReplicaNode* n = sentinel_.get(); n != nullptr;
         n = n->IsLeaf() ? nullptr : n->children.front().get()) {
      n->range.lo = r.lo;
    }
    ++changed;
  }
  if (r.hi > domain_.hi) {
    domain_.hi = r.hi;
    for (ReplicaNode* n = sentinel_.get(); n != nullptr;
         n = n->IsLeaf() ? nullptr : n->children.back().get()) {
      n->range.hi = r.hi;
    }
    ++changed;
  }
  return changed;
}

uint64_t ReplicaTree::EstimateCount(const ReplicaNode& n, const ValueRange& sub) {
  if (n.range.Span() <= 0.0) return 0;
  const ValueRange eff = n.range.Intersect(sub);
  const double frac = eff.Span() / n.range.Span();
  return static_cast<uint64_t>(std::llround(frac * static_cast<double>(n.count)));
}

namespace {
template <typename F>
void PreOrder(const ReplicaNode* n, size_t depth, F&& f) {
  f(n, depth);
  for (const auto& c : n->children) PreOrder(c.get(), depth + 1, f);
}
}  // namespace

uint64_t ReplicaTree::MaterializedValues() const {
  uint64_t sum = 0;
  PreOrder(sentinel_.get(), 0, [&](const ReplicaNode* n, size_t) {
    if (n->materialized) sum += n->count;
  });
  return sum;
}

uint64_t ReplicaTree::MaterializedNodeCount() const {
  uint64_t k = 0;
  PreOrder(sentinel_.get(), 0, [&](const ReplicaNode* n, size_t) {
    if (n->materialized) ++k;
  });
  return k;
}

uint64_t ReplicaTree::NodeCount() const {
  uint64_t k = 0;
  PreOrder(sentinel_.get(), 0, [&](const ReplicaNode*, size_t) { ++k; });
  return k - 1;  // exclude the sentinel
}

size_t ReplicaTree::MaxDepth() const {
  size_t d = 0;
  PreOrder(sentinel_.get(), 0, [&](const ReplicaNode*, size_t depth) {
    d = std::max(d, depth);
  });
  return d;
}

std::vector<const ReplicaNode*> ReplicaTree::MaterializedNodes() const {
  std::vector<const ReplicaNode*> out;
  PreOrder(sentinel_.get(), 0, [&](const ReplicaNode* n, size_t) {
    if (n->materialized) out.push_back(n);
  });
  std::sort(out.begin(), out.end(), [](const ReplicaNode* a, const ReplicaNode* b) {
    return a->range.lo < b->range.lo || (a->range.lo == b->range.lo &&
                                         a->range.hi < b->range.hi);
  });
  return out;
}

Status ReplicaTree::Validate() const {
  Status status = Status::OK();
  std::function<bool(const ReplicaNode*, bool)> rec =
      [&](const ReplicaNode* n, bool covered) -> bool {
    covered = covered || n->materialized;
    if (n->IsLeaf()) {
      if (!covered && status.ok()) {
        status = Status::Internal("uncovered leaf " + n->range.ToString());
      }
      return covered;
    }
    // Children must tile n's range in order.
    if (n->children.front()->range.lo != n->range.lo ||
        n->children.back()->range.hi != n->range.hi) {
      if (status.ok()) {
        status = Status::Internal("children do not tile " + n->range.ToString());
      }
    }
    for (size_t i = 0; i < n->children.size(); ++i) {
      if (i > 0 &&
          n->children[i]->range.lo != n->children[i - 1]->range.hi &&
          status.ok()) {
        status = Status::Internal("child gap under " + n->range.ToString());
      }
      if (n->children[i]->parent != n && status.ok()) {
        status = Status::Internal("bad parent link under " + n->range.ToString());
      }
      rec(n->children[i].get(), covered);
    }
    return covered;
  };
  rec(sentinel_.get(), false);
  return status;
}

std::vector<ReplicaNodeImage> ReplicaTree::Flatten() const {
  std::vector<ReplicaNodeImage> out;
  PreOrder(sentinel_.get(), 0, [&](const ReplicaNode* n, size_t) {
    out.push_back(ReplicaNodeImage{n->range, n->count, n->count_exact,
                                   n->materialized, n->seg, n->last_access,
                                   n->children.size()});
  });
  return out;
}

StatusOr<std::unique_ptr<ReplicaTree>> ReplicaTree::FromImages(
    ValueRange domain, const std::vector<ReplicaNodeImage>& images) {
  if (images.empty()) {
    return Status::InvalidArgument("replica tree image: no sentinel");
  }
  auto tree_ptr = std::make_unique<ReplicaTree>(domain);
  ReplicaTree& tree = *tree_ptr;
  // Consume the pre-order stream recursively; each node owns the next
  // `num_children` subtrees.
  size_t next = 0;
  std::function<Status(ReplicaNode*)> build =
      [&](ReplicaNode* parent) -> Status {
    const uint64_t kids = images[next - 1].num_children;
    for (uint64_t i = 0; i < kids; ++i) {
      if (next >= images.size()) {
        return Status::DataLoss("replica tree image: truncated pre-order");
      }
      const ReplicaNodeImage& img = images[next++];
      auto node = std::make_unique<ReplicaNode>();
      node->range = img.range;
      node->count = img.count;
      node->count_exact = img.count_exact;
      node->materialized = img.materialized;
      node->seg = img.materialized ? img.seg : kInvalidSegment;
      node->last_access = img.last_access;
      node->parent = parent;
      ReplicaNode* raw = node.get();
      parent->children.push_back(std::move(node));
      Status st = build(raw);
      if (!st.ok()) return st;
    }
    return Status::OK();
  };
  // images[0] is the sentinel: only its child count matters (the fresh
  // sentinel already carries the domain range).
  next = 1;
  Status st = build(tree.sentinel_.get());
  if (!st.ok()) return st;
  if (next != images.size()) {
    return Status::DataLoss("replica tree image: trailing nodes");
  }
  st = tree.Validate();
  if (!st.ok()) return st;
  return tree_ptr;
}

ReplicaCoverSnapshot::ReplicaCoverSnapshot(uint64_t epoch,
                                           const ReplicaTree& tree)
    : ColumnCover(epoch), domain_(tree.domain()) {
  Flatten(*tree.sentinel());
}

size_t ReplicaCoverSnapshot::Flatten(const ReplicaNode& n) {
  const size_t idx = nodes_.size();
  nodes_.push_back(Node{n.range, n.count, n.seg, n.materialized, {}});
  std::vector<size_t> kids;
  kids.reserve(n.children.size());
  for (const auto& c : n.children) kids.push_back(Flatten(*c));
  nodes_[idx].children = std::move(kids);
  return idx;
}

std::vector<SegmentInfo> ReplicaCoverSnapshot::Cover(const ValueRange& q) const {
  std::vector<SegmentInfo> out;
  const ValueRange eff = q.Intersect(domain_);
  if (eff.Empty()) return out;
  const bool ok = CoverRec(0, eff, &out);
  SOCS_CHECK(ok) << "replica cover snapshot lost coverage for " << q.ToString();
  return out;
}

bool ReplicaCoverSnapshot::CoverRec(size_t idx, const ValueRange& q,
                                    std::vector<SegmentInfo>* out) const {
  const Node& s = nodes_[idx];
  if (s.children.empty()) {
    if (!s.materialized) return false;
    out->push_back(SegmentInfo{s.range, s.count, s.seg});
    return true;
  }
  const size_t start = out->size();
  for (const size_t child : s.children) {
    if (!nodes_[child].range.Overlaps(q)) continue;
    if (!CoverRec(child, q, out)) {
      out->resize(start);  // backtrack: cover this subtree with s itself
      if (!s.materialized) return false;
      out->push_back(SegmentInfo{s.range, s.count, s.seg});
      return true;
    }
  }
  return true;
}

}  // namespace socs
