// Segment descriptor: the meta-index entry for one value-range segment.
#ifndef SOCS_CORE_SEGMENT_H_
#define SOCS_CORE_SEGMENT_H_

#include <cstdint>
#include <string>

#include "core/range.h"
#include "storage/secondary_store.h"

namespace socs {

/// Descriptor of a materialized segment: which value range it covers, how
/// many values it holds, and where its payload lives.
struct SegmentInfo {
  ValueRange range;
  uint64_t count = 0;      // number of values
  SegmentId id = kInvalidSegment;

  /// Logical payload size: count * element width. The *physical* (possibly
  /// encoded) size lives with the payload -- SegmentSpace::PhysicalSizeOf.
  uint64_t LogicalBytes(size_t value_size) const { return count * value_size; }
  std::string ToString() const;
};

inline std::string SegmentInfo::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "seg{%s n=%llu id=%llu}",
                range.ToString().c_str(),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace socs

#endif  // SOCS_CORE_SEGMENT_H_
