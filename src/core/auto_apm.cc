#include "core/auto_apm.h"

#include <algorithm>

namespace socs {

AutoApm::AutoApm() : AutoApm(Tuning()) {}

uint64_t AutoApm::max_bytes() const {
  double mx = tuning_.max_factor * ema_;
  mx = std::max(mx, static_cast<double>(tuning_.floor_bytes));
  if (tuning_.cap_bytes > 0) {
    mx = std::min(mx, static_cast<double>(tuning_.cap_bytes));
  }
  return static_cast<uint64_t>(mx);
}

SplitAction AutoApm::Decide(const SplitGeometry& g) {
  // Observe the selection piece this consultation is about. The per-segment
  // piece understates a multi-segment selection, but at the fixed point
  // (segments ~ Mmax ~ max_factor * width) a query overlaps O(1) segments,
  // so the EMA tracks the query width up to a constant the factor absorbs.
  if (!seeded_) {
    ema_ = static_cast<double>(g.mid_bytes);
    seeded_ = true;
  } else {
    ema_ += tuning_.ema_alpha * (static_cast<double>(g.mid_bytes) - ema_);
  }
  Apm apm(min_bytes(), max_bytes());
  return apm.Decide(g);
}

}  // namespace socs
