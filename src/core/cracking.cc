#include "core/cracking.h"

#include <algorithm>
#include <cstring>

#include "core/strategy_state.h"

namespace socs {

template <typename T>
CrackingColumn<T>::CrackingColumn(std::vector<T> values, ValueRange domain,
                                  SegmentSpace* space)
    : AccessStrategy<T>(space), domain_(domain), cracker_(std::move(values)) {
  // Cracking reorganizes the in-memory cracker array in place -- a scan
  // cannot survive a concurrent mutation on an epoch-pinned snapshot, so it
  // keeps the classic shared-latch discipline.
  this->set_snapshot_scans(false);
}

template <typename T>
CrackingColumn<T>::CrackingColumn(ValueRange domain, std::vector<T> cracker,
                                  std::map<double, size_t> index,
                                  SegmentSpace* space)
    : AccessStrategy<T>(space), domain_(domain), cracker_(std::move(cracker)),
      index_(std::move(index)) {
  for (const auto& [bound, pos] : index_) {
    SOCS_CHECK_LE(pos, cracker_.size()) << "cracked bound past the array";
  }
  this->set_snapshot_scans(false);
}

template <typename T>
Status CrackingColumn<T>::SaveState(StrategyState* out) const {
  out->PutString("kind", "cracking");
  out->PutU64("value_size", sizeof(T));
  out->PutDouble("domain.lo", domain_.lo);
  out->PutDouble("domain.hi", domain_.hi);
  // The cracker array is this strategy's data (its segments have no
  // SegmentSpace payloads), so the state carries the payload itself.
  std::vector<std::byte> payload(cracker_.size() * sizeof(T));
  if (!payload.empty()) {
    std::memcpy(payload.data(), cracker_.data(), payload.size());
  }
  out->PutBytes("payload", std::move(payload));
  std::vector<double> bounds;
  std::vector<uint64_t> positions;
  for (const auto& [bound, pos] : index_) {
    bounds.push_back(bound);
    positions.push_back(pos);
  }
  out->PutDoubles("index.bounds", bounds);
  out->PutU64s("index.positions", positions);
  return Status::OK();
}

template <typename T>
SegmentScan<T> CrackingColumn<T>::ScanSegment(const SegmentInfo& seg,
                                              const ValueRange& q,
                                              std::vector<T>* out, IoLane* lane,
                                              const std::vector<T>* precomputed) {
  SegmentScan<T> s;
  size_t start = 0;
  if (seg.range.lo > domain_.lo) {
    auto it = index_.find(seg.range.lo);
    SOCS_CHECK(it != index_.end())
        << "unknown cracker piece " << seg.range.ToString();
    start = it->second;
  }
  s.payload = std::span<const T>(cracker_.data() + start, seg.count);
  const uint64_t bytes = seg.count * sizeof(T);
  s.read_bytes = bytes;
  s.seconds = this->space_->model().MemRead(bytes);
  this->space_->ChargeScanBytes(bytes, lane);
  if (precomputed != nullptr) {
    s.result_count = precomputed->size();
    if (out != nullptr) {
      out->insert(out->end(), precomputed->begin(), precomputed->end());
    }
  } else {
    s.result_count = FilterRange(s.payload, q, out);
  }
  return s;
}

template <typename T>
QueryExecution CrackingColumn<T>::AppendImpl(const std::vector<T>& values) {
  QueryExecution ex;
  if (values.empty()) return ex;
  const ValueRange env = ValueEnvelope(values);
  domain_.lo = std::min(domain_.lo, env.lo);
  domain_.hi = std::max(domain_.hi, env.hi);
  cracker_.reserve(cracker_.size() + values.size());
  uint64_t moved = 0;
  for (const T& v : values) {
    const double d = ValueOf(v);
    // Ripple insert: the placeholder opens a hole at the array end; walking
    // the cracked bounds above `d` from the top, each later piece donates
    // its front element to its back, until the hole sits at the end of the
    // piece owning `d`.
    cracker_.push_back(v);
    size_t hole = cracker_.size() - 1;
    for (auto it = index_.rbegin(); it != index_.rend() && it->first > d;
         ++it) {
      cracker_[hole] = cracker_[it->second];
      hole = it->second;
      ++it->second;  // the piece starting at this bound shifts right by one
      ++moved;
    }
    cracker_[hole] = v;
  }
  const uint64_t write_bytes = (moved + values.size()) * sizeof(T);
  ex.write_bytes += write_bytes;
  ex.adaptation_seconds += this->space_->model().MemWrite(write_bytes);
  this->space_->ChargeWriteBytes(write_bytes);
  return ex;
}

template <typename T>
size_t CrackingColumn<T>::Crack(double bound, QueryExecution* ex) {
  if (bound <= domain_.lo) return 0;
  if (bound >= domain_.hi) return cracker_.size();
  auto hit = index_.find(bound);
  if (hit != index_.end()) return hit->second;

  // Enclosing piece [lo_pos, hi_pos).
  size_t lo_pos = 0, hi_pos = cracker_.size();
  auto up = index_.upper_bound(bound);
  if (up != index_.end()) hi_pos = up->second;
  if (up != index_.begin()) lo_pos = std::prev(up)->second;

  // In-place two-pointer partition: values < bound to the left. The pass
  // runs over data the scan phase charged this query; only the swap writes
  // are new work.
  size_t i = lo_pos, j = hi_pos;
  uint64_t moved = 0;
  while (i < j) {
    if (ValueOf(cracker_[i]) < bound) {
      ++i;
    } else {
      --j;
      std::swap(cracker_[i], cracker_[j]);
      ++moved;
    }
  }
  index_[bound] = i;

  const uint64_t write_bytes = 2 * moved * sizeof(T);  // both swap sides move
  ex->write_bytes += write_bytes;
  ex->adaptation_seconds += this->space_->model().MemWrite(write_bytes);
  ++ex->splits;
  this->space_->ChargeWriteBytes(write_bytes);
  return i;
}

template <typename T>
QueryExecution CrackingColumn<T>::Reorganize(const ValueRange& q) {
  QueryExecution ex;
  if (q.Empty()) return ex;
  const size_t p1 = Crack(q.lo, &ex);
  const size_t p2 = Crack(q.hi, &ex);
  SOCS_CHECK_LE(p1, p2);
  return ex;
}

template <typename T>
StorageFootprint CrackingColumn<T>::Footprint() const {
  StorageFootprint fp;
  // Cracking maintains a complete replica next to the base column.
  fp.materialized_bytes = 2 * cracker_.size() * sizeof(T);
  fp.segment_count = NumPieces();
  fp.meta_bytes = index_.size() * (sizeof(double) + sizeof(size_t)) * 2;
  return fp;
}

template <typename T>
std::vector<SegmentInfo> CrackingColumn<T>::Segments() const {
  std::vector<SegmentInfo> out;
  double lo = domain_.lo;
  size_t lo_pos = 0;
  for (const auto& [bound, pos] : index_) {
    out.push_back(SegmentInfo{ValueRange(lo, bound), pos - lo_pos, kInvalidSegment});
    lo = bound;
    lo_pos = pos;
  }
  out.push_back(SegmentInfo{ValueRange(lo, domain_.hi), cracker_.size() - lo_pos,
                            kInvalidSegment});
  return out;
}

template class CrackingColumn<int32_t>;
template class CrackingColumn<int64_t>;
template class CrackingColumn<float>;
template class CrackingColumn<double>;
template class CrackingColumn<OidValue>;

}  // namespace socs
