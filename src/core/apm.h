// Paper concept: the Adaptive Pagination Model (APM) segmentation model
// (Ivanova, Kersten, Nes, EDBT 2008, section 3.2.2) — a deterministic
// split policy with size bounds Mmin < Mmax.
//   rule 1: segments below Mmin are never split;
//   rule 2: split at the query bounds when every resulting piece is >= Mmin;
//   rule 3: if the bound-split would create a too-small piece but the segment
//           exceeds Mmax, split anyway -- at a query bound that avoids small
//           pieces or at an approximation of the segment's mean value.
// Segment sizes touched by queries converge to [Mmin, Mmax].
#ifndef SOCS_CORE_APM_H_
#define SOCS_CORE_APM_H_

#include "common/units.h"
#include "core/model.h"

namespace socs {

class Apm : public SegmentationModel {
 public:
  Apm(uint64_t min_bytes, uint64_t max_bytes)
      : min_bytes_(min_bytes), max_bytes_(max_bytes) {}

  SplitAction Decide(const SplitGeometry& g) override;

  std::string Name() const override;
  uint64_t min_bytes() const override { return min_bytes_; }
  uint64_t max_bytes() const override { return max_bytes_; }
  std::unique_ptr<SegmentationModel> Clone() const override {
    return std::make_unique<Apm>(min_bytes_, max_bytes_);
  }

 private:
  uint64_t min_bytes_;
  uint64_t max_bytes_;
};

}  // namespace socs

#endif  // SOCS_CORE_APM_H_
