// Baseline: positional, non-segmented column. Every range selection scans
// the entire column (the behaviour of a plain MonetDB BAT, paper section 2);
// no reorganization ever happens. Under the three-phase protocol the cover
// is always the single whole-column segment (no value-based pruning), the
// default ScanSegment reads it, and Reorganize stays the base-class no-op.
#ifndef SOCS_CORE_NON_SEGMENTED_H_
#define SOCS_CORE_NON_SEGMENTED_H_

#include <vector>

#include "core/strategy.h"
#include "core/strategy_state.h"

namespace socs {

template <typename T>
class NonSegmented : public AccessStrategy<T> {
 public:
  /// Takes ownership of the column values; `space` must outlive the strategy.
  NonSegmented(std::vector<T> values, ValueRange domain, SegmentSpace* space)
      : AccessStrategy<T>(space), domain_(domain), count_(values.size()) {
    IoCost setup;  // initial load is not attributed to any query
    id_ = space->Create(values, &setup, CompressionHint::kCold);
  }

  /// Restores a previously saved column: `id` must already live in `space`.
  NonSegmented(ValueRange domain, uint64_t count, SegmentId id,
               SegmentSpace* space)
      : AccessStrategy<T>(space), domain_(domain), count_(count), id_(id) {}

  /// A positional column cannot prune by value: every query scans the one
  /// full-column segment, whether or not its range overlaps.
  std::vector<SegmentInfo> CoverSegments(const ValueRange&) const override {
    return Segments();
  }

  StorageFootprint Footprint() const override {
    return {this->MaterializedPhysicalBytes(), 1, sizeof(SegmentInfo),
            this->DecodedCacheBytes()};
  }

  std::vector<SegmentInfo> Segments() const override {
    return {SegmentInfo{domain_, count_, id_}};
  }

  std::string Name() const override { return "NoSegm"; }

  Status SaveState(StrategyState* out) const override {
    out->PutString("kind", "non_segmented");
    out->PutU64("value_size", sizeof(T));
    out->PutDouble("domain.lo", domain_.lo);
    out->PutDouble("domain.hi", domain_.hi);
    out->PutU64("count", count_);
    out->PutU64("segment", id_);
    return Status::OK();
  }

 protected:
  /// Plain tail-append to the single full-column segment: only the appended
  /// bytes are charged (no reorganization ever happens here). Copy-on-write
  /// so epoch-pinned scans keep reading the pre-append payload.
  QueryExecution AppendImpl(const std::vector<T>& values) override {
    QueryExecution ex;
    if (values.empty()) return ex;
    const ValueRange env = ValueEnvelope(values);
    domain_.lo = std::min(domain_.lo, env.lo);
    domain_.hi = std::max(domain_.hi, env.hi);
    IoCost cost;
    const SegmentId fresh =
        this->space_->template AppendCow<T>(id_, values, &cost);
    this->RetireSegment(id_);
    id_ = fresh;
    ex.write_bytes += cost.bytes;
    ex.decode_bytes += cost.decode_bytes;
    ex.adaptation_seconds += cost.seconds;
    count_ += values.size();
    return ex;
  }

  /// Positional baseline: the cover never prunes by value (see CoverSegments).
  bool PruneCoverByRange() const override { return false; }

 private:
  ValueRange domain_;
  uint64_t count_;
  SegmentId id_ = kInvalidSegment;
};

}  // namespace socs

#endif  // SOCS_CORE_NON_SEGMENTED_H_
