// Baseline: positional, non-segmented column. Every range selection scans
// the entire column (the behaviour of a plain MonetDB BAT, paper section 2);
// no reorganization ever happens.
#ifndef SOCS_CORE_NON_SEGMENTED_H_
#define SOCS_CORE_NON_SEGMENTED_H_

#include <vector>

#include "core/strategy.h"

namespace socs {

template <typename T>
class NonSegmented : public AccessStrategy<T> {
 public:
  /// Takes ownership of the column values; `space` must outlive the strategy.
  NonSegmented(std::vector<T> values, ValueRange domain, SegmentSpace* space)
      : space_(space), domain_(domain), count_(values.size()) {
    IoCost setup;  // initial load is not attributed to any query
    id_ = space_->Create(values, &setup);
  }

  QueryExecution RunRange(const ValueRange& q,
                          std::vector<T>* result = nullptr) override {
    QueryExecution ex;
    IoCost scan;
    auto span = space_->template Scan<T>(id_, &scan);
    ex.read_bytes = scan.bytes;
    ex.selection_seconds = scan.seconds + space_->model().QueryOverhead();
    ex.segments_scanned = 1;
    ex.result_count = FilterRange(span, q, result);
    return ex;
  }

  StorageFootprint Footprint() const override {
    return {count_ * sizeof(T), 1, sizeof(SegmentInfo)};
  }

  std::vector<SegmentInfo> Segments() const override {
    return {SegmentInfo{domain_, count_, id_}};
  }

  std::string Name() const override { return "NoSegm"; }

 private:
  SegmentSpace* space_;
  ValueRange domain_;
  uint64_t count_;
  SegmentId id_ = kInvalidSegment;
};

}  // namespace socs

#endif  // SOCS_CORE_NON_SEGMENTED_H_
