#include "core/deferred_segmentation.h"

#include <algorithm>
#include <utility>

#include "common/units.h"
#include "core/strategy_state.h"

namespace socs {

template <typename T>
DeferredSegmentation<T>::DeferredSegmentation(
    std::vector<T> values, ValueRange domain,
    std::unique_ptr<SegmentationModel> model, SegmentSpace* space, Options opts)
    : AccessStrategy<T>(space), model_(std::move(model)), index_(domain),
      opts_(opts), total_bytes_(values.size() * sizeof(T)) {
  SOCS_CHECK_GT(opts_.batch_queries, 0u);
  IoCost setup;
  SegmentId id = space->Create(values, &setup, CompressionHint::kCold);
  index_.InitSingle(SegmentInfo{domain, values.size(), id});
}

template <typename T>
DeferredSegmentation<T>::DeferredSegmentation(
    ValueRange domain, std::vector<SegmentInfo> segments,
    std::unique_ptr<SegmentationModel> model, SegmentSpace* space, Options opts,
    size_t queries_since_batch, std::set<SegmentId> marked)
    : AccessStrategy<T>(space), model_(std::move(model)), index_(domain),
      opts_(opts), total_bytes_(0), queries_since_batch_(queries_since_batch),
      marked_(std::move(marked)) {
  SOCS_CHECK_GT(opts_.batch_queries, 0u);
  index_.InitTiling(std::move(segments));
  total_bytes_ = index_.TotalCount() * sizeof(T);
}

template <typename T>
Status DeferredSegmentation<T>::SaveState(StrategyState* out) const {
  out->PutString("kind", "deferred_segmentation");
  out->PutU64("value_size", sizeof(T));
  out->PutDouble("domain.lo", index_.domain().lo);
  out->PutDouble("domain.hi", index_.domain().hi);
  out->PutU64("opts.batch_queries", opts_.batch_queries);
  out->PutU64("opts.target_bytes", opts_.target_bytes);
  out->PutU64("queries_since_batch", queries_since_batch_);
  out->PutU64s("marked",
               std::vector<uint64_t>(marked_.begin(), marked_.end()));
  out->PutSegments("segments", index_.segments());
  return SaveModel(*model_, out);
}

template <typename T>
uint64_t DeferredSegmentation<T>::TargetBytes() const {
  if (opts_.target_bytes > 0) return opts_.target_bytes;
  if (model_->max_bytes() != UINT64_MAX) {
    return (model_->min_bytes() + model_->max_bytes()) / 2;
  }
  return 8 * kKiB;
}

template <typename T>
uint64_t DeferredSegmentation<T>::MarkThresholdBytes() const {
  if (model_->max_bytes() != UINT64_MAX) return model_->max_bytes();
  return 2 * TargetBytes();
}

template <typename T>
QueryExecution DeferredSegmentation<T>::AppendImpl(const std::vector<T>& values) {
  QueryExecution ex;
  if (values.empty()) return ex;
  const auto buckets = RouteAppend(&index_, values, this->space_->model(), &ex);
  const uint64_t threshold = MarkThresholdBytes();
  TailExtendBuckets(&index_, this, buckets, &ex,
                    [&](const SegmentInfo& before, const SegmentInfo& after) {
                      // Marks are keyed by segment id; the copy-on-write
                      // extend retired `before` for a successor, so a pending
                      // mark must follow the payload to the fresh id.
                      if (marked_.erase(before.id) > 0) {
                        marked_.insert(after.id);
                      }
                      if (after.count * sizeof(T) > threshold) {
                        marked_.insert(after.id);
                      }
                    });
  total_bytes_ = index_.TotalCount() * sizeof(T);
  return ex;
}

template <typename T>
QueryExecution DeferredSegmentation<T>::Reorganize(const ValueRange& q) {
  QueryExecution ex;
  if (q.Empty()) return ex;
  auto [first, last] = index_.FindOverlapping(q);
  for (size_t pos = first; pos < last; ++pos) {
    const SegmentInfo& seg = index_.At(pos);
    // The payload was scanned (and charged) in phase 2; Peek re-derives the
    // piece geometry the model decides on without charging it again.
    auto span = this->space_->template Peek<T>(seg.id);
    uint64_t left = 0, mid = 0, right = 0;
    for (const T& v : span) {
      const double d = ValueOf(v);
      if (d < q.lo) {
        ++left;
      } else if (d >= q.hi) {
        ++right;
      } else {
        ++mid;
      }
    }
    SplitGeometry g;
    g.seg_bytes = seg.count * sizeof(T);
    g.total_bytes = total_bytes_;
    g.left_bytes = left * sizeof(T);
    g.mid_bytes = mid * sizeof(T);
    g.right_bytes = right * sizeof(T);
    g.has_left = q.lo > seg.range.lo && q.lo < seg.range.hi;
    g.has_right = q.hi < seg.range.hi && q.hi > seg.range.lo;
    if (model_->Decide(g) != SplitAction::kKeep) {
      marked_.insert(seg.id);  // only marked; reorganization is deferred
    }
  }
  if (++queries_since_batch_ >= opts_.batch_queries) {
    ex += FlushBatchLocked();
  }
  // Re-encode boundary: marks key split work by id, so the sweep's id swaps
  // must translate pending marks exactly like the copy-on-write append does.
  this->SweepCompression(index_.segments(), &ex,
                         [&](size_t pos, const SegmentInfo& info) {
                           const SegmentId old_id = index_.At(pos).id;
                           if (marked_.erase(old_id) > 0) {
                             marked_.insert(info.id);
                           }
                           index_.Update(pos, info);
                         });
  return ex;
}

template <typename T>
void DeferredSegmentation<T>::SplitEquiDepth(size_t pos, QueryExecution* ex) {
  const SegmentInfo seg = index_.At(pos);
  const uint64_t target = TargetBytes();
  const uint64_t pieces_wanted =
      std::max<uint64_t>(2, (seg.count * sizeof(T) + target - 1) / target);

  // Deferred reorganization must re-read the segment (paper: "requires all
  // marked segments to be loaded again in memory and scanned").
  IoCost scan;
  auto span = this->space_->template Scan<T>(seg.id, &scan);
  ex->read_bytes += scan.bytes;
  ex->decode_bytes += scan.decode_bytes;
  ex->adaptation_seconds += scan.seconds;

  // Equi-depth cut points: values at ranks k * n/pieces of the sorted data.
  std::vector<T> sorted(span.begin(), span.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const T& a, const T& b) { return ValueOf(a) < ValueOf(b); });
  ex->adaptation_seconds +=
      this->space_->model().MemRead(seg.count * sizeof(T));  // sort pass
  std::vector<double> cuts;
  for (uint64_t k = 1; k < pieces_wanted; ++k) {
    const double cut = ValueOf(sorted[k * seg.count / pieces_wanted]);
    if (cut > seg.range.lo && cut < seg.range.hi &&
        (cuts.empty() || cut > cuts.back())) {
      cuts.push_back(cut);
    }
  }
  if (cuts.empty()) return;

  auto parts = PartitionByCuts(span, cuts);
  std::vector<SegmentInfo> infos;
  double lo = seg.range.lo;
  for (size_t i = 0; i < parts.size(); ++i) {
    const double hi = i < cuts.size() ? cuts[i] : seg.range.hi;
    if (parts[i].empty()) {
      if (!infos.empty()) {
        infos.back().range.hi = hi;
        lo = hi;
      }
      continue;
    }
    IoCost create;
    SegmentId id = this->space_->Create(parts[i], &create);
    ex->write_bytes += create.bytes;
    ex->adaptation_seconds += create.seconds;
    infos.push_back(SegmentInfo{ValueRange(lo, hi), parts[i].size(), id});
    lo = hi;
  }
  if (infos.size() < 2) {
    // Degenerate split: the scratch pieces were never published in any
    // cover, so no reader can hold them -- free directly, no retirement.
    for (const auto& info : infos) this->space_->Free(info.id);
    return;
  }
  this->RetireSegment(seg.id);
  index_.Replace(pos, infos);
  ++ex->splits;
}

template <typename T>
QueryExecution DeferredSegmentation<T>::FlushBatchLocked() {
  QueryExecution ex;
  // An idle flush with nothing marked must not reset the query counter:
  // doing so would silently push back a batch the threshold already owes.
  if (marked_.empty()) return ex;
  queries_since_batch_ = 0;
  // std::exchange (not move-then-clear: clearing a moved-from set relies on
  // an unspecified state) empties marked_ for the marks the batch creates.
  const std::set<SegmentId> marks = std::exchange(marked_, {});
  // Process right-to-left so Replace() does not shift pending positions.
  for (size_t pos = index_.Size(); pos-- > 0;) {
    if (marks.count(index_.At(pos).id) > 0) SplitEquiDepth(pos, &ex);
  }
  return ex;
}

template <typename T>
StorageFootprint DeferredSegmentation<T>::Footprint() const {
  StorageFootprint fp;
  fp.materialized_bytes = this->MaterializedPhysicalBytes();
  fp.segment_count = index_.Size();
  fp.meta_bytes = index_.IndexBytes() + marked_.size() * sizeof(SegmentId);
  fp.decode_cache_bytes = this->DecodedCacheBytes();
  return fp;
}

template class DeferredSegmentation<int32_t>;
template class DeferredSegmentation<int64_t>;
template class DeferredSegmentation<float>;
template class DeferredSegmentation<double>;
template class DeferredSegmentation<OidValue>;

}  // namespace socs
