#include "core/run_stats.h"

#include "common/math_util.h"

namespace socs {

void RunRecorder::Record(const QueryExecution& ex, const StorageFootprint& fp) {
  reads_.push_back(static_cast<double>(ex.read_bytes));
  writes_.push_back(static_cast<double>(ex.write_bytes));
  storage_.push_back(static_cast<double>(fp.materialized_bytes));
  segment_counts_.push_back(static_cast<double>(fp.segment_count));
  selection_s_.push_back(ex.selection_seconds);
  adaptation_s_.push_back(ex.adaptation_seconds);
  total_s_.push_back(ex.TotalSeconds());
  results_.push_back(static_cast<double>(ex.result_count));
  total_splits_ += ex.splits;
  total_drops_ += ex.segments_dropped;
}

std::vector<double> RunRecorder::CumulativeWrites() const {
  return CumulativeSum(writes_);
}

std::vector<double> RunRecorder::CumulativeTotalSeconds() const {
  return CumulativeSum(total_s_);
}

std::vector<double> RunRecorder::MovingAverageSeconds(size_t window) const {
  return MovingAverage(total_s_, window);
}

double RunRecorder::AverageReadBytes() const { return Mean(reads_); }
double RunRecorder::AverageSelectionSeconds() const { return Mean(selection_s_); }
double RunRecorder::AverageAdaptationSeconds() const { return Mean(adaptation_s_); }

}  // namespace socs
