// OidValue: the element type used when a strategy manages MonetDB-style
// [oid, value] pairs instead of bare values. Value-based segmentation gives
// up positional order, so each element must carry its oid explicitly for
// tuple reconstruction (paper section 1's trade-off discussion).
#ifndef SOCS_CORE_OID_VALUE_H_
#define SOCS_CORE_OID_VALUE_H_

#include <cstdint>

#include "common/value_of.h"

namespace socs {

struct OidValue {
  uint64_t oid = 0;
  double value = 0.0;

  friend bool operator==(const OidValue& a, const OidValue& b) {
    return a.oid == b.oid && a.value == b.value;
  }
};

/// Customization point (see common/value_of.h for the generic overload): the
/// sort key a strategy organizes [oid, value] pairs by is the value half.
inline double ValueOf(const OidValue& v) { return v.value; }

}  // namespace socs

#endif  // SOCS_CORE_OID_VALUE_H_
