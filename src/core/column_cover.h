// Versioned segment covers: the immutable planning snapshot a scan walks
// while reorganization publishes new structure off to the side.
//
// A ColumnCover freezes one column's segmentation as of one published epoch
// (see exec/epoch_manager.h). AccessStrategy::PublishCover() builds a fresh
// cover at the end of every mutating Reorganize/Append/FlushBatch and
// installs it with a single atomic epoch flip; readers pin the epoch, load
// the cover, and answer Cover(q) from the frozen state -- no latch, no
// visibility into in-progress mutations. Segment payloads referenced by a
// cover are copy-on-write (SegmentSpace::AppendCow) and retired rather than
// freed, so every SegmentInfo a cover hands out stays scannable until the
// last reader pinned at or before its epoch unpins.
#ifndef SOCS_CORE_COLUMN_COVER_H_
#define SOCS_CORE_COLUMN_COVER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/range.h"
#include "core/segment.h"

namespace socs {

class ColumnCover {
 public:
  explicit ColumnCover(uint64_t epoch) : epoch_(epoch) {}
  virtual ~ColumnCover() = default;

  /// The published epoch this snapshot describes.
  uint64_t epoch() const { return epoch_; }

  /// Disjoint materialized segments whose union covers q's intersection with
  /// the column, exactly as the strategy's live CoverSegments() would have
  /// answered at publish time.
  virtual std::vector<SegmentInfo> Cover(const ValueRange& q) const = 0;

 private:
  uint64_t epoch_;
};

/// The cover of every strategy whose segments tile the domain (and of the
/// positional baselines): a frozen, range-ordered segment list. With
/// `prune_by_range` the cover is the overlapping subset (the base
/// CoverSegments policy); without it every segment is always visited
/// (positional layouts cannot prune by value -- zone-map skipping happens at
/// scan time against the SegmentInfo ranges carried here).
class TiledCover : public ColumnCover {
 public:
  TiledCover(uint64_t epoch, std::vector<SegmentInfo> segments,
             bool prune_by_range)
      : ColumnCover(epoch), segments_(std::move(segments)),
        prune_by_range_(prune_by_range) {}

  std::vector<SegmentInfo> Cover(const ValueRange& q) const override {
    if (!prune_by_range_) return segments_;
    std::vector<SegmentInfo> out;
    for (const SegmentInfo& s : segments_) {
      if (s.range.Overlaps(q)) out.push_back(s);
    }
    return out;
  }

 private:
  std::vector<SegmentInfo> segments_;
  bool prune_by_range_;
};

}  // namespace socs

#endif  // SOCS_CORE_COLUMN_COVER_H_
