// Post-processing reorganization (paper section 3.3, first alternative):
// the optimizer only *marks* segments for splitting during query execution;
// the actual reorganization runs after the query (here: every
// `batch_queries` queries), combining several suggested splits in one batch
// and choosing ideal split points -- equi-depth sub-segments that balance
// memory resources. Compared to eager adaptive segmentation this delays the
// benefit (queries between batches keep scanning large segments) and re-reads
// the marked segments, but produces balanced segments independent of the
// exact query bounds.
//
// Three-phase protocol: the default metered ScanSegment answers the
// selection; Reorganize replays the model's decisions over the just-scanned
// payloads (unmetered Peek) to mark segments, then runs the batch when due.
// The batch's re-read of marked segments stays metered -- it is genuine
// extra work the paper charges ("requires all marked segments to be loaded
// again in memory and scanned").
#ifndef SOCS_CORE_DEFERRED_SEGMENTATION_H_
#define SOCS_CORE_DEFERRED_SEGMENTATION_H_

#include <memory>
#include <set>
#include <vector>

#include "core/model.h"
#include "core/segment_meta_index.h"
#include "core/strategy.h"

namespace socs {

template <typename T>
class DeferredSegmentation : public AccessStrategy<T> {
 public:
  struct Options {
    /// Reorganize after this many queries (the paper's "performed at once"
    /// batch; 1 = reorganize after every query).
    size_t batch_queries = 32;
    /// Target equi-depth piece size; 0 derives it from the model's bounds
    /// ((Mmin+Mmax)/2, or 8KB for unbounded models such as GD).
    uint64_t target_bytes = 0;
  };

  DeferredSegmentation(std::vector<T> values, ValueRange domain,
                       std::unique_ptr<SegmentationModel> model,
                       SegmentSpace* space, Options opts = {});

  /// Restores a previously saved layout, including the pending batch state
  /// (marked segments, queries since the last batch).
  DeferredSegmentation(ValueRange domain, std::vector<SegmentInfo> segments,
                       std::unique_ptr<SegmentationModel> model,
                       SegmentSpace* space, Options opts,
                       size_t queries_since_batch, std::set<SegmentId> marked);

  /// Marks the overlapping segments the model wants split (no data rewrite)
  /// and, every `batch_queries` queries, executes the pending batch.
  QueryExecution Reorganize(const ValueRange& q) override;

  StorageFootprint Footprint() const override;
  std::vector<SegmentInfo> Segments() const override {
    return index_.segments();
  }
  std::string Name() const override { return "Post/" + model_->Name(); }
  Status SaveState(StrategyState* out) const override;

  /// Forces the pending batch to run now (e.g., at an idle point). Takes the
  /// column's exclusive latch -- safe to call while other threads scan the
  /// column. Returns the reorganization record.
  QueryExecution FlushBatch() {
    ExclusiveColumnGuard guard(this->latch_);
    const QueryExecution r = FlushBatchLocked();
    this->NoteReorganization(r);  // publish: retired segments await it
    return r;
  }

  /// The pending batch is this strategy's idle work: a TaskScheduler
  /// background job (RunIdleWork / core/background_maintenance.h) flushes it
  /// off the query path entirely, under the column's exclusive latch.
  bool HasIdleWork() const override { return !marked_.empty(); }
  QueryExecution IdleWork() override { return FlushBatchLocked(); }

  size_t pending_marks() const { return marked_.size(); }
  size_t queries_since_batch() const { return queries_since_batch_; }
  const SegmentMetaIndex& index() const { return index_; }

 protected:
  /// Deferred-style append: routes values to their segments and tail-extends
  /// them in place, marking any segment grown past the model's bounds for
  /// the next batch -- the rebalancing itself stays off the write path.
  QueryExecution AppendImpl(const std::vector<T>& values) override;

 private:
  /// The batch itself; callers hold the exclusive latch (the FlushBatch
  /// wrapper, IdleWork via RunIdleWork, Reorganize via RunRange).
  QueryExecution FlushBatchLocked();

  uint64_t TargetBytes() const;
  /// Size past which an append-grown segment is marked for the next batch.
  uint64_t MarkThresholdBytes() const;
  /// Equi-depth split of one segment; appends work to `ex`.
  void SplitEquiDepth(size_t pos, QueryExecution* ex);

  std::unique_ptr<SegmentationModel> model_;
  SegmentMetaIndex index_;
  Options opts_;
  uint64_t total_bytes_;
  size_t queries_since_batch_ = 0;
  std::set<SegmentId> marked_;
};

}  // namespace socs

#endif  // SOCS_CORE_DEFERRED_SEGMENTATION_H_
