#include "core/strategy.h"

namespace socs {

QueryExecution& operator+=(QueryExecution& a, const QueryExecution& b) {
  a.result_count += b.result_count;
  a.read_bytes += b.read_bytes;
  a.write_bytes += b.write_bytes;
  a.segments_scanned += b.segments_scanned;
  a.splits += b.splits;
  a.merges += b.merges;
  a.replicas_created += b.replicas_created;
  a.segments_dropped += b.segments_dropped;
  a.replicas_evicted += b.replicas_evicted;
  a.segments_recompressed += b.segments_recompressed;
  a.decode_bytes += b.decode_bytes;
  a.selection_seconds += b.selection_seconds;
  a.adaptation_seconds += b.adaptation_seconds;
  return a;
}

}  // namespace socs
