// Paper concept: self-tuning APM parameters — the future-work direction of
// Ivanova, Kersten, Nes, EDBT 2008 (section 8: "to achieve complete
// self-organization, the APM segmentation model needs to automatically
// determine the values of its controlling parameters"). AutoApm tracks an
// exponential moving average of the selection sizes it is consulted about
// and derives its bounds from it:
//   Mmax = clamp(max_factor * ema, floor, cap),   Mmin = Mmax / divisor.
// Rationale: Table 1 shows converged per-query reads are bounded below by
// the segment size (reads ~ Mmax even for tiny selections). Keeping Mmax a
// small multiple of the *typical* selection bounds the read amplification by
// that multiple, for any workload selectivity, with no manual tuning.
#ifndef SOCS_CORE_AUTO_APM_H_
#define SOCS_CORE_AUTO_APM_H_

#include "common/logging.h"
#include "core/apm.h"
#include "core/model.h"

namespace socs {

class AutoApm : public SegmentationModel {
 public:
  struct Tuning {
    double max_factor = 3.0;       // Mmax = max_factor * EMA(selection piece)
    uint64_t divisor = 4;          // Mmin = Mmax / divisor
    uint64_t floor_bytes = 1024;   // never tune Mmax below this
    uint64_t cap_bytes = 0;        // 0 = no cap
    double ema_alpha = 0.05;       // smoothing of the selection-size signal
  };

  AutoApm();  // default tuning
  explicit AutoApm(Tuning tuning) : tuning_(tuning) {
    SOCS_CHECK_GE(tuning_.divisor, 2u);  // Mmin must stay below Mmax
    SOCS_CHECK_GT(tuning_.floor_bytes, 0u);
  }
  /// Restore constructor: resumes with a previously learned EMA.
  AutoApm(Tuning tuning, double ema, bool seeded) : AutoApm(tuning) {
    ema_ = ema;
    seeded_ = seeded;
  }

  SplitAction Decide(const SplitGeometry& g) override;

  std::string Name() const override { return "AutoAPM"; }
  uint64_t min_bytes() const override { return max_bytes() / tuning_.divisor; }
  uint64_t max_bytes() const override;
  std::unique_ptr<SegmentationModel> Clone() const override {
    return std::make_unique<AutoApm>(tuning_);
  }

  /// Current selection-size estimate (bytes); exposed for tests/benches.
  double ema() const { return ema_; }
  const Tuning& tuning() const { return tuning_; }
  bool seeded() const { return seeded_; }

 private:
  Tuning tuning_;
  double ema_ = 0.0;
  bool seeded_ = false;
};

}  // namespace socs

#endif  // SOCS_CORE_AUTO_APM_H_
