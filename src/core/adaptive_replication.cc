#include "core/adaptive_replication.h"

#include <algorithm>
#include <functional>

#include "core/strategy_state.h"

namespace socs {

template <typename T>
AdaptiveReplication<T>::AdaptiveReplication(
    std::vector<T> values, ValueRange domain,
    std::unique_ptr<SegmentationModel> model, SegmentSpace* space, Options opts)
    : AccessStrategy<T>(space), model_(std::move(model)), tree_(domain),
      opts_(opts), total_bytes_(values.size() * sizeof(T)) {
  IoCost setup;  // initial load, not charged to a query
  SegmentId id = space->Create(values, &setup, CompressionHint::kCold);
  tree_.InitColumn(values.size(), id);
}

template <typename T>
Status AdaptiveReplication<T>::SaveState(StrategyState* out) const {
  out->PutString("kind", "adaptive_replication");
  out->PutU64("value_size", sizeof(T));
  out->PutDouble("domain.lo", tree_.domain().lo);
  out->PutDouble("domain.hi", tree_.domain().hi);
  out->PutU64("opts.budget", opts_.storage_budget_bytes);
  out->PutU64("total_bytes", total_bytes_);
  out->PutU64("query_counter", query_counter_);
  // The replica hierarchy as parallel pre-order arrays (sentinel first);
  // flags packs count_exact (bit 0) and materialized (bit 1).
  const std::vector<ReplicaNodeImage> images = tree_.Flatten();
  std::vector<double> lo, hi;
  std::vector<uint64_t> counts, flags, segs, last, kids;
  for (const ReplicaNodeImage& img : images) {
    lo.push_back(img.range.lo);
    hi.push_back(img.range.hi);
    counts.push_back(img.count);
    flags.push_back((img.count_exact ? 1u : 0u) |
                    (img.materialized ? 2u : 0u));
    segs.push_back(img.seg);
    last.push_back(img.last_access);
    kids.push_back(img.num_children);
  }
  out->PutDoubles("tree.lo", lo);
  out->PutDoubles("tree.hi", hi);
  out->PutU64s("tree.count", counts);
  out->PutU64s("tree.flags", flags);
  out->PutU64s("tree.seg", segs);
  out->PutU64s("tree.last", last);
  out->PutU64s("tree.kids", kids);
  return SaveModel(*model_, out);
}

template <typename T>
void AdaptiveReplication<T>::EnforceBudget(QueryExecution* ex) {
  if (opts_.storage_budget_bytes == 0) return;
  while (tree_.MaterializedValues() * sizeof(T) > opts_.storage_budget_bytes) {
    // Victim: the least-recently-used redundant replica. Non-redundant
    // segments are never demoted -- the budget can therefore overshoot when
    // all storage is load-bearing.
    ReplicaNode* victim = nullptr;
    std::function<void(ReplicaNode*)> visit = [&](ReplicaNode* n) {
      if (n->materialized && n->HasMaterializedAncestor()) {
        if (victim == nullptr || n->last_access < victim->last_access) {
          victim = n;
        }
      }
      for (auto& c : n->children) visit(c.get());
    };
    visit(tree_.sentinel());
    if (victim == nullptr) return;
    this->RetireSegment(victim->seg);
    victim->materialized = false;
    victim->seg = kInvalidSegment;
    ++ex->replicas_evicted;
  }
}

template <typename T>
void AdaptiveReplication<T>::AnalyzeReplicas(ReplicaNode* n, const ValueRange& q,
                                             std::vector<ReplicaNode*>* plan) {
  if (!n->IsLeaf()) {
    // Children may gain their own children while we recurse, but the set of
    // direct children we iterate over is fixed before descending.
    std::vector<ReplicaNode*> kids;
    kids.reserve(n->children.size());
    for (auto& c : n->children) {
      if (c->range.Overlaps(q)) kids.push_back(c.get());
    }
    for (ReplicaNode* c : kids) AnalyzeReplicas(c, q, plan);
    return;
  }
  AnalyzeLeaf(n, q, plan);
}

template <typename T>
void AdaptiveReplication<T>::AnalyzeLeaf(ReplicaNode* n, const ValueRange& q,
                                         std::vector<ReplicaNode*>* plan) {
  const ValueRange ov = n->range.Intersect(q);
  if (ov.Empty()) return;
  const bool has_left = ov.lo > n->range.lo;
  const bool has_right = ov.hi < n->range.hi;

  // Piece sizes are estimates (uniform interpolation), as in the paper; exact
  // counts arrive when a node is materialized.
  SplitGeometry g;
  g.seg_bytes = n->count * sizeof(T);
  g.total_bytes = total_bytes_;
  g.mid_bytes = ReplicaTree::EstimateCount(*n, ov) * sizeof(T);
  g.left_bytes =
      has_left ? ReplicaTree::EstimateCount(*n, {n->range.lo, ov.lo}) * sizeof(T) : 0;
  g.right_bytes =
      has_right ? ReplicaTree::EstimateCount(*n, {ov.hi, n->range.hi}) * sizeof(T) : 0;
  g.has_left = has_left;
  g.has_right = has_right;

  const SplitAction action = model_->Decide(g);

  auto plan_whole_if_virtual = [&] {
    // Case 0: no split; a virtual leaf is materialized as-is (the smallest
    // existing super-set of the selection).
    if (!n->materialized) plan->push_back(n);
  };

  switch (action) {
    case SplitAction::kKeep:
      plan_whole_if_virtual();
      return;
    case SplitAction::kSplitAtBounds: {
      // Cases 1-3: materialize the selection's piece, complete the range
      // with virtual siblings.
      std::vector<ReplicaNodeSpec> specs;
      size_t mid_pos = 0;
      if (has_left) {
        specs.push_back({{n->range.lo, ov.lo},
                         ReplicaTree::EstimateCount(*n, {n->range.lo, ov.lo})});
        mid_pos = 1;
      }
      specs.push_back({ov, ReplicaTree::EstimateCount(*n, ov)});
      if (has_right) {
        specs.push_back({{ov.hi, n->range.hi},
                         ReplicaTree::EstimateCount(*n, {ov.hi, n->range.hi})});
      }
      auto nodes = tree_.AddChildren(n, specs);
      plan->push_back(nodes[mid_pos]);
      return;
    }
    case SplitAction::kSplitBounded: {
      if (has_left && has_right) {
        // Case 4: split at the query bound producing the smaller materialized
        // super-set of the selection.
        std::vector<ReplicaNodeSpec> specs;
        size_t mat_pos;
        if (g.left_bytes + g.mid_bytes < g.mid_bytes + g.right_bytes) {
          specs.push_back({{n->range.lo, ov.hi},
                           ReplicaTree::EstimateCount(*n, {n->range.lo, ov.hi})});
          specs.push_back({{ov.hi, n->range.hi},
                           ReplicaTree::EstimateCount(*n, {ov.hi, n->range.hi})});
          mat_pos = 0;
        } else {
          specs.push_back({{n->range.lo, ov.lo},
                           ReplicaTree::EstimateCount(*n, {n->range.lo, ov.lo})});
          specs.push_back({{ov.lo, n->range.hi},
                           ReplicaTree::EstimateCount(*n, {ov.lo, n->range.hi})});
          mat_pos = 1;
        }
        auto nodes = tree_.AddChildren(n, specs);
        plan->push_back(nodes[mat_pos]);
      } else {
        // One-sided overlap whose complement is too small to stand alone:
        // fall back to materializing the whole (virtual) leaf.
        plan_whole_if_virtual();
      }
      return;
    }
  }
}

template <typename T>
void AdaptiveReplication<T>::MaterializePlan(
    ReplicaNode* s, const std::vector<ReplicaNode*>& plan, QueryExecution* ex) {
  if (plan.empty()) return;
  // The scan phase already charged this covering segment's read; Peek feeds
  // the planned replicas from the same (pool-resident) payload.
  auto span = this->space_->template Peek<T>(s->seg);
  for (ReplicaNode* node : plan) {
    std::vector<T> values;
    for (const T& v : span) {
      if (node->range.Contains(ValueOf(v))) values.push_back(v);
    }
    IoCost create;
    SegmentId id = this->space_->Create(values, &create);
    ex->write_bytes += create.bytes;
    ex->adaptation_seconds += create.seconds;
    node->materialized = true;
    node->seg = id;
    node->count = values.size();
    node->count_exact = true;
    node->last_access = query_counter_;
    ++ex->replicas_created;
  }
}

template <typename T>
void AdaptiveReplication<T>::AppendRec(ReplicaNode* n,
                                       const std::vector<T>& values,
                                       QueryExecution* ex) {
  if (values.empty()) return;
  if (!n->IsSentinel()) {
    n->count += values.size();
    if (n->materialized) {
      IoCost cost;
      const SegmentId fresh =
          this->space_->template AppendCow<T>(n->seg, values, &cost);
      this->RetireSegment(n->seg);
      n->seg = fresh;
      ex->write_bytes += cost.bytes;
      ex->decode_bytes += cost.decode_bytes;
      ex->adaptation_seconds += cost.seconds;
    }
  }
  for (auto& c : n->children) {
    std::vector<T> slice;
    for (const T& v : values) {
      if (c->range.Contains(ValueOf(v))) slice.push_back(v);
    }
    AppendRec(c.get(), slice, ex);
  }
}

template <typename T>
QueryExecution AdaptiveReplication<T>::AppendImpl(const std::vector<T>& values) {
  QueryExecution ex;
  if (values.empty()) return ex;
  const size_t widened = tree_.WidenDomain(ValueEnvelope(values));
  ex.adaptation_seconds += this->space_->model().SegmentOverhead(widened);
  AppendRec(tree_.sentinel(), values, &ex);
  total_bytes_ += values.size() * sizeof(T);
  EnforceBudget(&ex);
  return ex;
}

template <typename T>
QueryExecution AdaptiveReplication<T>::Reorganize(const ValueRange& q) {
  QueryExecution ex;
  if (q.Empty()) return ex;

  std::vector<ReplicaNode*> cover;
  const bool ok = tree_.GetCover(q, &cover);
  SOCS_CHECK(ok) << "replica tree lost coverage for " << q.ToString();

  ++query_counter_;
  for (ReplicaNode* s : cover) {
    s->last_access = query_counter_;
    std::vector<ReplicaNode*> plan;
    AnalyzeReplicas(s, q, &plan);
    MaterializePlan(s, plan, &ex);
    std::vector<SegmentId> freed;
    uint64_t drops = 0;
    tree_.CheckForDrop(s, &freed, &drops);
    for (SegmentId id : freed) this->RetireSegment(id);
    ex.segments_dropped += drops;
  }
  EnforceBudget(&ex);
  // Re-encode boundary: replicas (and the root column) the workload stopped
  // selecting from re-encode copy-on-write. The budget and the replication
  // estimates stay in logical bytes, so the tree evolves identically with
  // compression on or off.
  if (this->compression_advisor() != nullptr) {
    std::vector<ReplicaNode*> nodes;
    std::function<void(ReplicaNode*)> visit = [&](ReplicaNode* n) {
      if (n->materialized) nodes.push_back(n);
      for (auto& c : n->children) visit(c.get());
    };
    visit(tree_.sentinel());
    std::vector<SegmentInfo> segs;
    segs.reserve(nodes.size());
    for (const ReplicaNode* n : nodes) {
      segs.push_back(SegmentInfo{n->range, n->count, n->seg});
    }
    this->SweepCompression(segs, &ex,
                           [&](size_t i, const SegmentInfo& info) {
                             nodes[i]->seg = info.id;
                           });
  }
  return ex;
}

template <typename T>
StorageFootprint AdaptiveReplication<T>::Footprint() const {
  StorageFootprint fp;
  fp.materialized_bytes = this->MaterializedPhysicalBytes();
  fp.segment_count = tree_.MaterializedNodeCount();
  fp.meta_bytes = tree_.NodeCount() * sizeof(ReplicaNode);
  fp.decode_cache_bytes = this->DecodedCacheBytes();
  return fp;
}

template <typename T>
std::vector<SegmentInfo> AdaptiveReplication<T>::Segments() const {
  std::vector<SegmentInfo> out;
  for (const ReplicaNode* n : tree_.MaterializedNodes()) {
    out.push_back(SegmentInfo{n->range, n->count, n->seg});
  }
  return out;
}

template class AdaptiveReplication<int32_t>;
template class AdaptiveReplication<int64_t>;
template class AdaptiveReplication<float>;
template class AdaptiveReplication<double>;
template class AdaptiveReplication<OidValue>;

}  // namespace socs
