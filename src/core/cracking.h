// Paper concept: database cracking — the in-memory self-organization
// baseline the EDBT'08 paper compares its disk-oriented strategies against
// (Ivanova, Kersten, Nes, EDBT 2008, section 7; originally Idreos, Kersten,
// Manegold, CIDR'07).
//
// Cracking keeps a full in-memory
// replica of the column (the "cracker column") and physically reorganizes it
// in place: each range selection partitions the pieces containing the query
// bounds, so the qualifying values end up contiguous. Contrast with adaptive
// segmentation, which reorganizes the column itself into disk-manageable
// segments and keeps only a sparse meta-index in memory.
#ifndef SOCS_CORE_CRACKING_H_
#define SOCS_CORE_CRACKING_H_

#include <map>
#include <vector>

#include "core/strategy.h"

namespace socs {

template <typename T>
class CrackingColumn : public AccessStrategy<T> {
 public:
  CrackingColumn(std::vector<T> values, ValueRange domain, SegmentSpace* space);

  QueryExecution RunRange(const ValueRange& q,
                          std::vector<T>* result = nullptr) override;

  StorageFootprint Footprint() const override;
  /// Cracker pieces between consecutive index entries (no segment ids; the
  /// cracker column is one contiguous in-memory array).
  std::vector<SegmentInfo> Segments() const override;
  std::string Name() const override { return "Cracking"; }

  size_t NumPieces() const { return index_.size() + 1; }

 private:
  /// Ensures `bound` is a cracked position: partitions the piece containing
  /// it so that values < bound precede it. Returns the split position and
  /// accounts the work into `ex`.
  size_t Crack(double bound, QueryExecution* ex);

  SegmentSpace* space_;   // cost model + global stats only
  ValueRange domain_;
  std::vector<T> cracker_;            // the in-memory replica
  std::map<double, size_t> index_;    // bound value -> first position >= bound
};

}  // namespace socs

#endif  // SOCS_CORE_CRACKING_H_
