// Paper concept: database cracking — the in-memory self-organization
// baseline the EDBT'08 paper compares its disk-oriented strategies against
// (Ivanova, Kersten, Nes, EDBT 2008, section 7; originally Idreos, Kersten,
// Manegold, CIDR'07).
//
// Cracking keeps a full in-memory
// replica of the column (the "cracker column") and physically reorganizes it
// in place: each range selection partitions the pieces containing the query
// bounds, so the qualifying values end up contiguous. Contrast with adaptive
// segmentation, which reorganizes the column itself into disk-manageable
// segments and keeps only a sparse meta-index in memory.
//
// Under the three-phase protocol the cracker pieces overlapping the query
// are the cover; ScanSegment reads a piece straight from the in-memory
// array (metering the read); Reorganize then cracks the query bounds
// in place, piggy-backing the partition pass on the data just scanned so
// only the swap writes are charged.
#ifndef SOCS_CORE_CRACKING_H_
#define SOCS_CORE_CRACKING_H_

#include <map>
#include <vector>

#include "core/strategy.h"

namespace socs {

template <typename T>
class CrackingColumn : public AccessStrategy<T> {
 public:
  CrackingColumn(std::vector<T> values, ValueRange domain, SegmentSpace* space);

  /// Restores a previously saved cracker column: `cracker` is the reorganized
  /// in-memory array, `index` the cracked bounds (bound -> first position).
  CrackingColumn(ValueRange domain, std::vector<T> cracker,
                 std::map<double, size_t> index, SegmentSpace* space);

  /// Reads one cracker piece from the in-memory array: cracking's segments
  /// have no SegmentSpace payloads, so the metering is charged through the
  /// space's unpooled scan charge (into `lane` when the scan fans out).
  SegmentScan<T> ScanSegment(const SegmentInfo& seg, const ValueRange& q,
                             std::vector<T>* out, IoLane* lane = nullptr,
                             const std::vector<T>* precomputed = nullptr) override;

  /// Cracks both query bounds in place. The partition pass runs over pieces
  /// the scan phase already charged, so it only accounts the swap writes.
  QueryExecution Reorganize(const ValueRange& q) override;

  StorageFootprint Footprint() const override;
  /// Cracker pieces between consecutive index entries (no segment ids; the
  /// cracker column is one contiguous in-memory array).
  std::vector<SegmentInfo> Segments() const override;
  std::string Name() const override { return "Cracking"; }
  Status SaveState(StrategyState* out) const override;

  size_t NumPieces() const { return index_.size() + 1; }

 protected:
  /// Piece-aware insertion (the cracking-updates "ripple"): each value lands
  /// at the end of the piece owning it; the hole is made by moving one
  /// element per later piece from its front to its back, shifting those
  /// pieces right by one. Charges one element write per moved element plus
  /// the inserted values.
  QueryExecution AppendImpl(const std::vector<T>& values) override;

 private:
  /// Ensures `bound` is a cracked position: partitions the piece containing
  /// it so that values < bound precede it. Returns the split position and
  /// accounts the reorganization writes into `ex`.
  size_t Crack(double bound, QueryExecution* ex);

  ValueRange domain_;
  std::vector<T> cracker_;            // the in-memory replica
  std::map<double, size_t> index_;    // bound value -> first position >= bound
};

}  // namespace socs

#endif  // SOCS_CORE_CRACKING_H_
