#include "core/non_segmented.h"

namespace socs {

template class NonSegmented<int32_t>;
template class NonSegmented<int64_t>;
template class NonSegmented<float>;
template class NonSegmented<double>;
template class NonSegmented<OidValue>;

}  // namespace socs
