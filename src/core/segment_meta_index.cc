#include "core/segment_meta_index.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace socs {

void SegmentMetaIndex::InitSingle(const SegmentInfo& seg) {
  SOCS_CHECK(seg.range == domain_) << "initial segment must cover the domain";
  segments_ = {seg};
}

void SegmentMetaIndex::InitTiling(std::vector<SegmentInfo> segs) {
  segments_ = std::move(segs);
  Status st = Validate();
  SOCS_CHECK(st.ok()) << st.ToString();
}

std::pair<size_t, size_t> SegmentMetaIndex::FindOverlapping(const ValueRange& q) const {
  if (q.Empty() || segments_.empty()) return {0, 0};
  // First segment with range.hi > q.lo.
  auto lo_it = std::upper_bound(
      segments_.begin(), segments_.end(), q.lo,
      [](double v, const SegmentInfo& s) { return v < s.range.hi; });
  // First segment with range.lo >= q.hi.
  auto hi_it = std::lower_bound(
      segments_.begin(), segments_.end(), q.hi,
      [](const SegmentInfo& s, double v) { return s.range.lo < v; });
  return {static_cast<size_t>(lo_it - segments_.begin()),
          static_cast<size_t>(hi_it - segments_.begin())};
}

size_t SegmentMetaIndex::PositionOf(double d) const {
  SOCS_CHECK(!segments_.empty());
  SOCS_CHECK_GE(d, domain_.lo) << "value below the column domain "
                               << domain_.ToString();
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), d,
      [](double v, const SegmentInfo& s) { return v < s.range.hi; });
  if (it == segments_.end()) return segments_.size() - 1;  // clamp to the last
  return static_cast<size_t>(it - segments_.begin());
}

void SegmentMetaIndex::Replace(size_t pos, const std::vector<SegmentInfo>& pieces) {
  ReplaceSpan(pos, 1, pieces);
}

void SegmentMetaIndex::ReplaceSpan(size_t pos, size_t span,
                                   const std::vector<SegmentInfo>& pieces) {
  SOCS_CHECK_GT(span, 0u);
  SOCS_CHECK_LE(pos + span, segments_.size());
  SOCS_CHECK(!pieces.empty());
  const ValueRange old_range(segments_[pos].range.lo,
                             segments_[pos + span - 1].range.hi);
  uint64_t old_count = 0;
  for (size_t i = 0; i < span; ++i) old_count += segments_[pos + i].count;
  SOCS_CHECK(pieces.front().range.lo == old_range.lo &&
             pieces.back().range.hi == old_range.hi)
      << "pieces must tile " << old_range.ToString();
  uint64_t count = 0;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      SOCS_CHECK_EQ(pieces[i].range.lo, pieces[i - 1].range.hi);
    }
    count += pieces[i].count;
  }
  SOCS_CHECK_EQ(count, old_count) << "pieces must preserve the value count";
  segments_.erase(segments_.begin() + pos, segments_.begin() + pos + span);
  segments_.insert(segments_.begin() + pos, pieces.begin(), pieces.end());
}

void SegmentMetaIndex::Update(size_t pos, const SegmentInfo& seg) {
  SOCS_CHECK_LT(pos, segments_.size());
  SOCS_CHECK(segments_[pos].range == seg.range)
      << "Update must preserve the range";
  segments_[pos] = seg;
}

size_t SegmentMetaIndex::WidenDomain(const ValueRange& r) {
  SOCS_CHECK(!segments_.empty());
  size_t changed = 0;
  if (r.lo < domain_.lo) {
    domain_.lo = r.lo;
    segments_.front().range.lo = r.lo;
    ++changed;
  }
  if (r.hi > domain_.hi) {
    domain_.hi = r.hi;
    segments_.back().range.hi = r.hi;
    ++changed;
  }
  return changed;
}

uint64_t SegmentMetaIndex::TotalCount() const {
  uint64_t n = 0;
  for (const auto& s : segments_) n += s.count;
  return n;
}

Status SegmentMetaIndex::Validate() const {
  if (segments_.empty()) return Status::FailedPrecondition("empty index");
  if (segments_.front().range.lo != domain_.lo ||
      segments_.back().range.hi != domain_.hi) {
    return Status::Internal("segments do not cover the domain");
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].range.Empty()) {
      std::ostringstream os;
      os << "empty segment range at " << i << ": " << segments_[i].ToString();
      return Status::Internal(os.str());
    }
    if (i > 0 && segments_[i].range.lo != segments_[i - 1].range.hi) {
      std::ostringstream os;
      os << "gap/overlap between segments " << i - 1 << " and " << i;
      return Status::Internal(os.str());
    }
  }
  return Status::OK();
}

}  // namespace socs
