#include "core/static_partition.h"

#include <sstream>

#include "core/strategy_state.h"

namespace socs {

template <typename T>
StaticPartition<T>::StaticPartition(std::vector<T> values, ValueRange domain,
                                    size_t num_parts, SegmentSpace* space)
    : AccessStrategy<T>(space), index_(domain), num_parts_(num_parts) {
  SOCS_CHECK_GT(num_parts, 0u);
  std::vector<double> cuts;
  cuts.reserve(num_parts - 1);
  for (size_t i = 1; i < num_parts; ++i) {
    cuts.push_back(domain.lo +
                   domain.Span() * static_cast<double>(i) /
                       static_cast<double>(num_parts));
  }
  auto pieces = PartitionByCuts(std::span<const T>(values), cuts);
  std::vector<SegmentInfo> infos;
  double lo = domain.lo;
  for (size_t i = 0; i < pieces.size(); ++i) {
    const double hi = i < cuts.size() ? cuts[i] : domain.hi;
    IoCost setup;
    SegmentId id = space->Create(pieces[i], &setup, CompressionHint::kCold);
    infos.push_back(SegmentInfo{ValueRange(lo, hi), pieces[i].size(), id});
    lo = hi;
  }
  index_.InitTiling(std::move(infos));
}

template <typename T>
StaticPartition<T>::StaticPartition(ValueRange domain, size_t num_parts,
                                    std::vector<SegmentInfo> segments,
                                    SegmentSpace* space)
    : AccessStrategy<T>(space), index_(domain), num_parts_(num_parts) {
  SOCS_CHECK_GT(num_parts, 0u);
  index_.InitTiling(std::move(segments));
}

template <typename T>
Status StaticPartition<T>::SaveState(StrategyState* out) const {
  out->PutString("kind", "static_partition");
  out->PutU64("value_size", sizeof(T));
  out->PutDouble("domain.lo", index_.domain().lo);
  out->PutDouble("domain.hi", index_.domain().hi);
  out->PutU64("num_parts", num_parts_);
  out->PutSegments("segments", index_.segments());
  return Status::OK();
}

template <typename T>
QueryExecution StaticPartition<T>::AppendImpl(const std::vector<T>& values) {
  QueryExecution ex;
  if (values.empty()) return ex;
  const auto buckets = RouteAppend(&index_, values, this->space_->model(), &ex);
  TailExtendBuckets(&index_, this, buckets, &ex,
                    [](const SegmentInfo&, const SegmentInfo&) {});
  return ex;
}

template <typename T>
QueryExecution StaticPartition<T>::Reorganize(const ValueRange& /*q*/) {
  // The partitioning never adapts, but partitions that went cold still
  // re-encode: a DBA's static layout gets storage savings for free.
  QueryExecution ex;
  this->SweepCompression(index_.segments(), &ex,
                         [&](size_t pos, const SegmentInfo& info) {
                           index_.Update(pos, info);
                         });
  return ex;
}

template <typename T>
StorageFootprint StaticPartition<T>::Footprint() const {
  return {this->MaterializedPhysicalBytes(), index_.Size(),
          index_.IndexBytes(), this->DecodedCacheBytes()};
}

template <typename T>
std::string StaticPartition<T>::Name() const {
  std::ostringstream os;
  os << "Static" << num_parts_;
  return os.str();
}

template class StaticPartition<int32_t>;
template class StaticPartition<int64_t>;
template class StaticPartition<float>;
template class StaticPartition<double>;
template class StaticPartition<OidValue>;

}  // namespace socs
