#include "core/strategy_state.h"

#include <cstring>

#include "core/apm.h"
#include "core/auto_apm.h"
#include "core/gaussian_dice.h"
#include "core/model.h"

namespace socs {

namespace {

void AppendU64(std::vector<std::byte>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void AppendU32(std::vector<std::byte>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadU64(const std::byte* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(std::to_integer<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint32_t ReadU32(const std::byte* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(std::to_integer<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

void StrategyState::PutU64(const std::string& key, uint64_t v) {
  std::vector<std::byte> bytes;
  AppendU64(&bytes, v);
  fields_[key] = std::move(bytes);
}

void StrategyState::PutDouble(const std::string& key, double v) {
  PutU64(key, DoubleBits(v));
}

void StrategyState::PutString(const std::string& key, std::string v) {
  std::vector<std::byte> bytes(v.size());
  std::memcpy(bytes.data(), v.data(), v.size());
  fields_[key] = std::move(bytes);
}

void StrategyState::PutBytes(const std::string& key, std::vector<std::byte> v) {
  fields_[key] = std::move(v);
}

void StrategyState::PutU64s(const std::string& key,
                            const std::vector<uint64_t>& v) {
  std::vector<std::byte> bytes;
  bytes.reserve(v.size() * 8);
  for (uint64_t x : v) AppendU64(&bytes, x);
  fields_[key] = std::move(bytes);
}

void StrategyState::PutDoubles(const std::string& key,
                               const std::vector<double>& v) {
  std::vector<std::byte> bytes;
  bytes.reserve(v.size() * 8);
  for (double d : v) AppendU64(&bytes, DoubleBits(d));
  fields_[key] = std::move(bytes);
}

void StrategyState::PutSegments(const std::string& key,
                                const std::vector<SegmentInfo>& v) {
  std::vector<std::byte> bytes;
  bytes.reserve(v.size() * 32);
  for (const SegmentInfo& s : v) {
    AppendU64(&bytes, DoubleBits(s.range.lo));
    AppendU64(&bytes, DoubleBits(s.range.hi));
    AppendU64(&bytes, s.count);
    AppendU64(&bytes, s.id);
  }
  fields_[key] = std::move(bytes);
}

const std::vector<std::byte>* StrategyState::Find(const std::string& key) const {
  auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

StatusOr<uint64_t> StrategyState::GetU64(const std::string& key) const {
  const auto* f = Find(key);
  if (f == nullptr) return Status::NotFound("state field " + key);
  if (f->size() != 8) return Status::DataLoss("field " + key + ": bad size");
  return ReadU64(f->data());
}

StatusOr<double> StrategyState::GetDouble(const std::string& key) const {
  auto bits = GetU64(key);
  if (!bits.ok()) return bits.status();
  return BitsDouble(*bits);
}

StatusOr<std::string> StrategyState::GetString(const std::string& key) const {
  const auto* f = Find(key);
  if (f == nullptr) return Status::NotFound("state field " + key);
  return std::string(reinterpret_cast<const char*>(f->data()), f->size());
}

StatusOr<std::vector<std::byte>> StrategyState::GetBytes(
    const std::string& key) const {
  const auto* f = Find(key);
  if (f == nullptr) return Status::NotFound("state field " + key);
  return *f;
}

StatusOr<std::vector<uint64_t>> StrategyState::GetU64s(
    const std::string& key) const {
  const auto* f = Find(key);
  if (f == nullptr) return Status::NotFound("state field " + key);
  if (f->size() % 8 != 0) return Status::DataLoss("field " + key + ": bad size");
  std::vector<uint64_t> out(f->size() / 8);
  for (size_t i = 0; i < out.size(); ++i) out[i] = ReadU64(f->data() + 8 * i);
  return out;
}

StatusOr<std::vector<double>> StrategyState::GetDoubles(
    const std::string& key) const {
  auto raw = GetU64s(key);
  if (!raw.ok()) return raw.status();
  std::vector<double> out(raw->size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = BitsDouble((*raw)[i]);
  return out;
}

StatusOr<std::vector<SegmentInfo>> StrategyState::GetSegments(
    const std::string& key) const {
  const auto* f = Find(key);
  if (f == nullptr) return Status::NotFound("state field " + key);
  if (f->size() % 32 != 0) return Status::DataLoss("field " + key + ": bad size");
  std::vector<SegmentInfo> out;
  out.reserve(f->size() / 32);
  for (size_t off = 0; off < f->size(); off += 32) {
    const double lo = BitsDouble(ReadU64(f->data() + off));
    const double hi = BitsDouble(ReadU64(f->data() + off + 8));
    if (!(lo <= hi)) return Status::DataLoss("field " + key + ": bad range");
    SegmentInfo s;
    s.range = ValueRange(lo, hi);
    s.count = ReadU64(f->data() + off + 16);
    s.id = ReadU64(f->data() + off + 24);
    out.push_back(s);
  }
  return out;
}

std::vector<std::byte> StrategyState::Serialize() const {
  std::vector<std::byte> out;
  AppendU32(&out, static_cast<uint32_t>(fields_.size()));
  for (const auto& [key, value] : fields_) {
    AppendU32(&out, static_cast<uint32_t>(key.size()));
    for (char c : key) out.push_back(static_cast<std::byte>(c));
    AppendU64(&out, value.size());
    out.insert(out.end(), value.begin(), value.end());
  }
  return out;
}

StatusOr<StrategyState> StrategyState::Parse(std::span<const std::byte> bytes) {
  StrategyState st;
  size_t off = 0;
  auto need = [&](size_t n) { return off + n <= bytes.size(); };
  if (!need(4)) return Status::DataLoss("strategy state: truncated header");
  const uint32_t count = ReadU32(bytes.data());
  off = 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (!need(4)) return Status::DataLoss("strategy state: truncated key len");
    const uint32_t klen = ReadU32(bytes.data() + off);
    off += 4;
    if (klen > 4096 || !need(klen)) {
      return Status::DataLoss("strategy state: truncated key");
    }
    std::string key(reinterpret_cast<const char*>(bytes.data() + off), klen);
    off += klen;
    if (!need(8)) return Status::DataLoss("strategy state: truncated value len");
    const uint64_t vlen = ReadU64(bytes.data() + off);
    off += 8;
    if (!need(vlen)) return Status::DataLoss("strategy state: truncated value");
    st.fields_[key] =
        std::vector<std::byte>(bytes.begin() + off, bytes.begin() + off + vlen);
    off += vlen;
  }
  if (off != bytes.size()) {
    return Status::DataLoss("strategy state: trailing bytes");
  }
  return st;
}

namespace {
// Model kinds in "model.kind".
constexpr uint64_t kModelApm = 1;
constexpr uint64_t kModelGd = 2;
constexpr uint64_t kModelAutoApm = 3;
}  // namespace

Status SaveModel(const SegmentationModel& model, StrategyState* out) {
  if (const auto* apm = dynamic_cast<const Apm*>(&model)) {
    out->PutU64("model.kind", kModelApm);
    out->PutU64("model.min_bytes", apm->min_bytes());
    out->PutU64("model.max_bytes", apm->max_bytes());
    return Status::OK();
  }
  if (const auto* gd = dynamic_cast<const GaussianDice*>(&model)) {
    out->PutU64("model.kind", kModelGd);
    out->PutU64("model.seed", gd->seed());
    return Status::OK();
  }
  if (const auto* aa = dynamic_cast<const AutoApm*>(&model)) {
    const AutoApm::Tuning& t = aa->tuning();
    out->PutU64("model.kind", kModelAutoApm);
    out->PutDouble("model.max_factor", t.max_factor);
    out->PutU64("model.divisor", t.divisor);
    out->PutU64("model.floor_bytes", t.floor_bytes);
    out->PutU64("model.cap_bytes", t.cap_bytes);
    out->PutDouble("model.ema_alpha", t.ema_alpha);
    out->PutDouble("model.ema", aa->ema());
    out->PutU64("model.seeded", aa->seeded() ? 1 : 0);
    return Status::OK();
  }
  return Status::Unimplemented("model " + model.Name() + ": no persistence");
}

StatusOr<std::unique_ptr<SegmentationModel>> RestoreModel(
    const StrategyState& st) {
  auto kind = st.GetU64("model.kind");
  if (!kind.ok()) return kind.status();
  switch (*kind) {
    case kModelApm: {
      auto mn = st.GetU64("model.min_bytes");
      auto mx = st.GetU64("model.max_bytes");
      if (!mn.ok() || !mx.ok()) return Status::DataLoss("APM: missing bounds");
      return std::unique_ptr<SegmentationModel>(
          std::make_unique<Apm>(*mn, *mx));
    }
    case kModelGd: {
      auto seed = st.GetU64("model.seed");
      if (!seed.ok()) return seed.status();
      return std::unique_ptr<SegmentationModel>(
          std::make_unique<GaussianDice>(*seed));
    }
    case kModelAutoApm: {
      AutoApm::Tuning t;
      auto mf = st.GetDouble("model.max_factor");
      auto dv = st.GetU64("model.divisor");
      auto fb = st.GetU64("model.floor_bytes");
      auto cb = st.GetU64("model.cap_bytes");
      auto ea = st.GetDouble("model.ema_alpha");
      auto ema = st.GetDouble("model.ema");
      auto seeded = st.GetU64("model.seeded");
      if (!mf.ok() || !dv.ok() || !fb.ok() || !cb.ok() || !ea.ok() ||
          !ema.ok() || !seeded.ok()) {
        return Status::DataLoss("AutoAPM: missing tuning");
      }
      t.max_factor = *mf;
      t.divisor = *dv;
      t.floor_bytes = *fb;
      t.cap_bytes = *cb;
      t.ema_alpha = *ea;
      return std::unique_ptr<SegmentationModel>(
          std::make_unique<AutoApm>(t, *ema, *seeded != 0));
    }
    default:
      return Status::DataLoss("unknown model kind " + std::to_string(*kind));
  }
}

}  // namespace socs
