#include "core/gaussian_dice.h"

#include <cmath>

namespace socs {

double GaussianDice::DecisionProbability(double x, double sigma) {
  if (sigma <= 0.0) return 0.0;
  const double d = x - 0.5;
  return std::exp(-(d * d) / (2.0 * sigma * sigma));
}

SplitAction GaussianDice::Decide(const SplitGeometry& g) {
  if (g.QueryCoversSegment() || g.seg_bytes == 0 || g.total_bytes == 0) {
    return SplitAction::kKeep;
  }
  const double x = static_cast<double>(g.mid_bytes) / static_cast<double>(g.seg_bytes);
  const double sigma =
      static_cast<double>(g.seg_bytes) / static_cast<double>(g.total_bytes);
  const double p = DecisionProbability(x, sigma);
  return rng_.NextDouble() < p ? SplitAction::kSplitAtBounds : SplitAction::kKeep;
}

}  // namespace socs
