// RestoreStrategy<T>: the inverse of AccessStrategy::SaveState. Given a
// parsed StrategyState and a SegmentSpace already holding the referenced
// segment payloads (the persistence layer materializes them first), rebuilds
// the strategy with its learned structure -- segment geometry, model
// parameters, counters -- exactly as captured. Every referenced segment id
// is checked against the space before construction, so a checkpoint that
// disagrees with its segment files surfaces as a Status, not a crash.
#ifndef SOCS_CORE_STRATEGY_RESTORE_H_
#define SOCS_CORE_STRATEGY_RESTORE_H_

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/adaptive_replication.h"
#include "core/adaptive_segmentation.h"
#include "core/cracking.h"
#include "core/deferred_segmentation.h"
#include "core/non_segmented.h"
#include "core/positional_blocks.h"
#include "core/static_partition.h"
#include "core/strategy.h"
#include "core/strategy_state.h"

namespace socs {

namespace restore_detail {

inline Status CheckLive(SegmentSpace* space, SegmentId id) {
  if (id == kInvalidSegment || !space->Contains(id)) {
    return Status::DataLoss("restored state references missing segment " +
                            std::to_string(id));
  }
  return Status::OK();
}

inline Status CheckLive(SegmentSpace* space,
                        const std::vector<SegmentInfo>& segs) {
  for (const SegmentInfo& s : segs) {
    Status st = CheckLive(space, s.id);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

inline StatusOr<ValueRange> GetDomain(const StrategyState& st) {
  auto lo = st.GetDouble("domain.lo");
  auto hi = st.GetDouble("domain.hi");
  if (!lo.ok()) return lo.status();
  if (!hi.ok()) return hi.status();
  if (!(*lo <= *hi)) return Status::DataLoss("restored state: bad domain");
  return ValueRange(*lo, *hi);
}

}  // namespace restore_detail

/// Rebuilds the strategy captured in `st`. The referenced segments must
/// already live in `space`; fails with DataLoss/NotFound when the state is
/// incomplete or disagrees with the space, and InvalidArgument when the
/// element type does not match the caller's T.
template <typename T>
StatusOr<std::unique_ptr<AccessStrategy<T>>> RestoreStrategy(
    const StrategyState& st, SegmentSpace* space) {
  using restore_detail::CheckLive;
  auto kind = st.GetString("kind");
  if (!kind.ok()) return kind.status();
  auto vsize = st.GetU64("value_size");
  if (!vsize.ok()) return vsize.status();
  if (*vsize != sizeof(T)) {
    return Status::InvalidArgument("restored state holds " +
                                   std::to_string(*vsize) +
                                   "-byte values, caller expects " +
                                   std::to_string(sizeof(T)));
  }
  auto domain = restore_detail::GetDomain(st);
  if (!domain.ok()) return domain.status();

  if (*kind == "non_segmented") {
    auto count = st.GetU64("count");
    auto seg = st.GetU64("segment");
    if (!count.ok()) return count.status();
    if (!seg.ok()) return seg.status();
    Status live = CheckLive(space, *seg);
    if (!live.ok()) return live;
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<NonSegmented<T>>(*domain, *count, *seg, space));
  }

  if (*kind == "static_partition") {
    auto parts = st.GetU64("num_parts");
    auto segs = st.GetSegments("segments");
    if (!parts.ok()) return parts.status();
    if (!segs.ok()) return segs.status();
    Status live = CheckLive(space, *segs);
    if (!live.ok()) return live;
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<StaticPartition<T>>(*domain, *parts, std::move(*segs),
                                             space));
  }

  if (*kind == "positional_blocks") {
    auto block_bytes = st.GetU64("block_bytes");
    auto zone_maps = st.GetU64("zone_maps");
    auto total = st.GetU64("total_count");
    auto ids = st.GetU64s("blocks.ids");
    auto counts = st.GetU64s("blocks.counts");
    auto mins = st.GetDoubles("blocks.min");
    auto maxs = st.GetDoubles("blocks.max");
    if (!block_bytes.ok()) return block_bytes.status();
    if (!zone_maps.ok()) return zone_maps.status();
    if (!total.ok()) return total.status();
    if (!ids.ok()) return ids.status();
    if (!counts.ok()) return counts.status();
    if (!mins.ok()) return mins.status();
    if (!maxs.ok()) return maxs.status();
    if (ids->size() != counts->size() || ids->size() != mins->size() ||
        ids->size() != maxs->size()) {
      return Status::DataLoss("positional blocks: ragged block arrays");
    }
    std::vector<typename PositionalBlocks<T>::Block> blocks;
    blocks.reserve(ids->size());
    for (size_t i = 0; i < ids->size(); ++i) {
      Status live = CheckLive(space, (*ids)[i]);
      if (!live.ok()) return live;
      blocks.push_back(typename PositionalBlocks<T>::Block{
          (*ids)[i], (*counts)[i], (*mins)[i], (*maxs)[i]});
    }
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<PositionalBlocks<T>>(*domain, *block_bytes,
                                              *zone_maps != 0,
                                              std::move(blocks), *total,
                                              space));
  }

  if (*kind == "cracking") {
    auto payload = st.GetBytes("payload");
    auto bounds = st.GetDoubles("index.bounds");
    auto positions = st.GetU64s("index.positions");
    if (!payload.ok()) return payload.status();
    if (!bounds.ok()) return bounds.status();
    if (!positions.ok()) return positions.status();
    if (payload->size() % sizeof(T) != 0) {
      return Status::DataLoss("cracking: payload not a whole value array");
    }
    if (bounds->size() != positions->size()) {
      return Status::DataLoss("cracking: ragged index arrays");
    }
    std::vector<T> cracker(payload->size() / sizeof(T));
    if (!cracker.empty()) {
      std::memcpy(cracker.data(), payload->data(), payload->size());
    }
    std::map<double, size_t> index;
    for (size_t i = 0; i < bounds->size(); ++i) {
      if ((*positions)[i] > cracker.size()) {
        return Status::DataLoss("cracking: cracked bound past the array");
      }
      index[(*bounds)[i]] = (*positions)[i];
    }
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<CrackingColumn<T>>(*domain, std::move(cracker),
                                            std::move(index), space));
  }

  if (*kind == "adaptive_segmentation") {
    auto segs = st.GetSegments("segments");
    auto merge = st.GetU64("opts.merge");
    auto threshold = st.GetU64("opts.merge_threshold");
    if (!segs.ok()) return segs.status();
    if (!merge.ok()) return merge.status();
    if (!threshold.ok()) return threshold.status();
    auto model = RestoreModel(st);
    if (!model.ok()) return model.status();
    Status live = CheckLive(space, *segs);
    if (!live.ok()) return live;
    typename AdaptiveSegmentation<T>::Options opts;
    opts.merge_small_segments = *merge != 0;
    opts.merge_threshold_bytes = *threshold;
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<AdaptiveSegmentation<T>>(*domain, std::move(*segs),
                                                  std::move(*model), space,
                                                  opts));
  }

  if (*kind == "deferred_segmentation") {
    auto segs = st.GetSegments("segments");
    auto batch = st.GetU64("opts.batch_queries");
    auto target = st.GetU64("opts.target_bytes");
    auto since = st.GetU64("queries_since_batch");
    auto marked = st.GetU64s("marked");
    if (!segs.ok()) return segs.status();
    if (!batch.ok()) return batch.status();
    if (!target.ok()) return target.status();
    if (!since.ok()) return since.status();
    if (!marked.ok()) return marked.status();
    auto model = RestoreModel(st);
    if (!model.ok()) return model.status();
    Status live = CheckLive(space, *segs);
    if (!live.ok()) return live;
    if (*batch == 0) return Status::DataLoss("deferred: zero batch_queries");
    typename DeferredSegmentation<T>::Options opts;
    opts.batch_queries = *batch;
    opts.target_bytes = *target;
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<DeferredSegmentation<T>>(
            *domain, std::move(*segs), std::move(*model), space, opts, *since,
            std::set<SegmentId>(marked->begin(), marked->end())));
  }

  if (*kind == "adaptive_replication") {
    auto budget = st.GetU64("opts.budget");
    auto total = st.GetU64("total_bytes");
    auto queries = st.GetU64("query_counter");
    auto lo = st.GetDoubles("tree.lo");
    auto hi = st.GetDoubles("tree.hi");
    auto counts = st.GetU64s("tree.count");
    auto flags = st.GetU64s("tree.flags");
    auto segs = st.GetU64s("tree.seg");
    auto last = st.GetU64s("tree.last");
    auto kids = st.GetU64s("tree.kids");
    if (!budget.ok()) return budget.status();
    if (!total.ok()) return total.status();
    if (!queries.ok()) return queries.status();
    if (!lo.ok()) return lo.status();
    if (!hi.ok()) return hi.status();
    if (!counts.ok()) return counts.status();
    if (!flags.ok()) return flags.status();
    if (!segs.ok()) return segs.status();
    if (!last.ok()) return last.status();
    if (!kids.ok()) return kids.status();
    const size_t n = lo->size();
    if (hi->size() != n || counts->size() != n || flags->size() != n ||
        segs->size() != n || last->size() != n || kids->size() != n) {
      return Status::DataLoss("adaptive replication: ragged tree arrays");
    }
    std::vector<ReplicaNodeImage> images;
    images.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ReplicaNodeImage img;
      img.range = ValueRange((*lo)[i], (*hi)[i]);
      img.count = (*counts)[i];
      img.count_exact = ((*flags)[i] & 1u) != 0;
      img.materialized = ((*flags)[i] & 2u) != 0;
      img.seg = (*segs)[i];
      img.last_access = (*last)[i];
      img.num_children = (*kids)[i];
      if (img.materialized) {
        Status live = CheckLive(space, img.seg);
        if (!live.ok()) return live;
      }
      images.push_back(img);
    }
    auto model = RestoreModel(st);
    if (!model.ok()) return model.status();
    auto tree = ReplicaTree::FromImages(*domain, images);
    if (!tree.ok()) return tree.status();
    typename AdaptiveReplication<T>::Options opts;
    opts.storage_budget_bytes = *budget;
    return std::unique_ptr<AccessStrategy<T>>(
        std::make_unique<AdaptiveReplication<T>>(std::move(**tree),
                                                 std::move(*model), space,
                                                 opts, *total, *queries));
  }

  return Status::InvalidArgument("unknown strategy kind '" + *kind + "'");
}

}  // namespace socs

#endif  // SOCS_CORE_STRATEGY_RESTORE_H_
