// SharedScanPass: the cooperative-scan cache behind the server's scan
// batches. When the dispatcher groups K concurrently admitted selections on
// one segmented column into a batch, every member registers its predicate
// here and the batch executes the members in admission order against ONE
// physical pass over each covering segment: the first member to deliver a
// segment filters its own payload (the strategy's metered ScanSegment, as
// always) and then *co-evaluates every other registered predicate over the
// same still-hot payload span* -- predicate fan-out at delivery time. Later
// members find their qualifying set cached and hand it back to ScanSegment
// as `precomputed`, which replays the exact simulated charge (bytes,
// seconds, buffer-pool touch) without re-walking the payload.
//
// The accounting invariant: sharing is purely *physical*. Every member still
// charges its own metered scan, still runs its own Reorganize in admission
// order, and still reports the per-query record it would have reported
// alone -- byte-identical replies and #stats, proven by the shared-scan and
// differential-fuzz suites. What a batch saves is the O(n) filter pass per
// segment per member, which is exactly the work the paper's hot-column
// traffic multiplies.
//
// Cache coherence: entries are keyed by (segment id, segment range, count,
// column data epoch). AccessStrategy bumps its data epoch whenever a
// Reorganize/Append/IdleWork actually mutates payloads (splits, merges,
// replicas, writes), so a member whose predecessor reorganized the column
// simply misses the stale entries and re-scans -- correctness never depends
// on the cache being warm.
//
// Thread safety: Lookup/Publish are mutex-guarded; the co-evaluation pass
// itself runs outside the lock so parallel prefetch workers of one member
// don't serialize on the cache. Distinct segments have distinct keys, so
// concurrent publishes never collide on an entry (first writer wins).
#ifndef SOCS_CORE_SHARED_SCAN_H_
#define SOCS_CORE_SHARED_SCAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "core/range.h"
#include "core/segment.h"

namespace socs {

template <typename T>
class SharedScanPass {
 public:
  /// Cache key of one delivered segment. `epoch` is the owning strategy's
  /// data epoch at delivery time; cracking pieces share kInvalidSegment ids,
  /// so the piece range + count disambiguate them. `encoding` is the
  /// segment's codec at delivery: a cold sweep re-encodes copy-on-write
  /// under a fresh id, but the belt-and-braces key keeps a cached
  /// qualifying set from ever outliving the payload representation it was
  /// filtered from.
  struct SegKey {
    SegmentId id = kInvalidSegment;
    double lo = 0.0;
    double hi = 0.0;
    uint64_t count = 0;
    uint64_t epoch = 0;
    uint8_t encoding = 0;

    bool operator<(const SegKey& o) const {
      return std::tie(id, lo, hi, count, epoch, encoding) <
             std::tie(o.id, o.lo, o.hi, o.count, o.epoch, o.encoding);
    }
  };

  /// Registers one batch member's predicate (half-open, the engine's
  /// iterator range). Members register in admission order, before any
  /// member executes; the returned index is the member's consumer id.
  size_t RegisterConsumer(const ValueRange& q) {
    std::lock_guard<std::mutex> lk(mu_);
    consumers_.push_back(q);
    return consumers_.size() - 1;
  }

  size_t consumers() const {
    std::lock_guard<std::mutex> lk(mu_);
    return consumers_.size();
  }

  /// The qualifying set a predecessor co-evaluated for `consumer` on this
  /// segment, or null on a miss. `q` must equal the registered predicate
  /// (an engine/analysis mismatch degrades to a miss, never to a wrong
  /// result). A hit means one physical filter pass was saved.
  std::shared_ptr<const std::vector<T>> Lookup(const SegKey& key,
                                               size_t consumer,
                                               const ValueRange& q) {
    std::lock_guard<std::mutex> lk(mu_);
    if (consumer >= consumers_.size() || !(consumers_[consumer] == q)) {
      return nullptr;
    }
    auto it = cache_.find(key);
    if (it == cache_.end()) return nullptr;
    std::shared_ptr<const std::vector<T>> hit = it->second[consumer];
    if (hit != nullptr) ++hits_;
    return hit;
  }

  /// Predicate fan-out: one pass over `payload` evaluating every registered
  /// predicate other than the producer's own `q` (whose qualifying set is
  /// `own`, just computed by the metered scan). Consumers registered with
  /// exactly `q` alias `own` without another pass -- the hot-column case of
  /// K identical selections costs ONE filter pass total per segment.
  void Publish(const SegKey& key, const ValueRange& q,
               std::span<const T> payload,
               std::shared_ptr<const std::vector<T>> own) {
    std::vector<ValueRange> ranges;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (cache_.count(key) != 0) return;  // a concurrent pass won
      ranges = consumers_;
    }
    std::vector<std::shared_ptr<const std::vector<T>>> entry(ranges.size());
    std::vector<std::vector<T>*> fill(ranges.size(), nullptr);
    std::vector<std::shared_ptr<std::vector<T>>> fresh(ranges.size());
    bool any_fresh = false;
    for (size_t k = 0; k < ranges.size(); ++k) {
      if (ranges[k] == q) {
        entry[k] = own;
      } else {
        fresh[k] = std::make_shared<std::vector<T>>();
        fill[k] = fresh[k].get();
        any_fresh = true;
      }
    }
    if (any_fresh) {
      for (const T& v : payload) {
        const double d = ValueOf(v);
        for (size_t k = 0; k < ranges.size(); ++k) {
          if (fill[k] != nullptr && d >= ranges[k].lo && d < ranges[k].hi) {
            fill[k]->push_back(v);
          }
        }
      }
      for (size_t k = 0; k < ranges.size(); ++k) {
        if (fill[k] != nullptr) entry[k] = std::move(fresh[k]);
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = cache_.emplace(key, std::move(entry));
    if (inserted) ++passes_;
  }

  /// Kernel-path variant of Publish for producers that never materialized
  /// the payload (the scan ran a predicate kernel on the encoded blob, so
  /// there is no span to co-evaluate over). Sibling predicates are instead
  /// served by `filter(range, out)` -- an *unmetered* refilter of the same
  /// segment, typically SegmentSpace::PeekFiltered -- once per distinct
  /// non-producer predicate. Consumers registered with exactly `q` still
  /// alias `own`; the accounting invariant is untouched because each
  /// consumer's metered charge replays through ScanSegment's count-only
  /// kernel run at its own delivery.
  template <typename Filter>
  void PublishWithFilter(const SegKey& key, const ValueRange& q,
                         std::shared_ptr<const std::vector<T>> own,
                         Filter&& filter) {
    std::vector<ValueRange> ranges;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (cache_.count(key) != 0) return;  // a concurrent pass won
      ranges = consumers_;
    }
    std::vector<std::shared_ptr<const std::vector<T>>> entry(ranges.size());
    for (size_t k = 0; k < ranges.size(); ++k) {
      if (ranges[k] == q) {
        entry[k] = own;
        continue;
      }
      // Reuse a sibling's set when an earlier consumer had the same
      // predicate, mirroring Publish's one-pass-per-distinct-range shape.
      for (size_t j = 0; j < k; ++j) {
        if (ranges[j] == ranges[k]) {
          entry[k] = entry[j];
          break;
        }
      }
      if (entry[k] == nullptr) {
        auto fresh = std::make_shared<std::vector<T>>();
        filter(ranges[k], fresh.get());
        entry[k] = std::move(fresh);
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = cache_.emplace(key, std::move(entry));
    if (inserted) ++passes_;
  }

  /// Physical filter passes avoided so far (Lookup hits): the batch's
  /// measured win, aggregated into the dispatcher's scans-saved counter.
  uint64_t scans_saved() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
  }

  /// Co-evaluation passes run (segments published to the cache).
  uint64_t passes_run() const {
    std::lock_guard<std::mutex> lk(mu_);
    return passes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ValueRange> consumers_;  // registered predicates, batch order
  std::map<SegKey, std::vector<std::shared_ptr<const std::vector<T>>>> cache_;
  uint64_t hits_ = 0;
  uint64_t passes_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_SHARED_SCAN_H_
