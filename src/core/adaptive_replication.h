// Paper concept: adaptive replication, the lazy-materialization
// self-organizing strategy (Ivanova, Kersten, Nes, EDBT 2008, section 5).
//
// Query results are retained as partial replicas in a replica tree. Per
// query:
//   1. find the minimal covering set of materialized segments (Algorithm 3)
//      -- the CoverSegments phase;
//   2. one metered scan per covering segment answers the selection -- the
//      ScanSegment phase;
//   3. Reorganize analyzes which replicas to create (Algorithm 4,
//      model-driven, cases 0-4) and materializes them from the covering
//      segments' just-scanned payloads (unmetered Peek: the reorganization
//      is piggy-backed on the query scan, so only the replica writes are
//      charged), then drops segments fully replicated by their children
//      (Algorithm 5) and enforces the storage budget.
// Lower reorganization overhead than adaptive segmentation at the price of
// temporarily replicated storage.
#ifndef SOCS_CORE_ADAPTIVE_REPLICATION_H_
#define SOCS_CORE_ADAPTIVE_REPLICATION_H_

#include <memory>
#include <vector>

#include "core/model.h"
#include "core/replica_tree.h"
#include "core/strategy.h"

namespace socs {

template <typename T>
class AdaptiveReplication : public AccessStrategy<T> {
 public:
  struct Options {
    /// Upper bound on materialized bytes (0 = unlimited, the paper's
    /// default). When a query pushes storage above the budget, redundant
    /// replicas (materialized nodes whose data also lives in a materialized
    /// ancestor) are demoted back to virtual, least-recently-used first --
    /// the storage-limitation mechanism the paper's section 8 calls for.
    uint64_t storage_budget_bytes = 0;
  };

  AdaptiveReplication(std::vector<T> values, ValueRange domain,
                      std::unique_ptr<SegmentationModel> model,
                      SegmentSpace* space, Options opts = {});

  /// Restores a previously saved replica hierarchy (ReplicaTree::FromImages)
  /// with its learned counters.
  AdaptiveReplication(ReplicaTree tree,
                      std::unique_ptr<SegmentationModel> model,
                      SegmentSpace* space, Options opts, uint64_t total_bytes,
                      uint64_t query_counter)
      : AccessStrategy<T>(space), model_(std::move(model)),
        tree_(std::move(tree)), opts_(opts), total_bytes_(total_bytes),
        query_counter_(query_counter) {}

  /// The reorganizing module: plans replicas per covering segment
  /// (Algorithm 4), materializes them from the covering payloads, drops
  /// fully-replicated parents (Algorithm 5), and enforces the budget.
  QueryExecution Reorganize(const ValueRange& q) override;

  StorageFootprint Footprint() const override;
  std::vector<SegmentInfo> Segments() const override;
  std::vector<SegmentInfo> CoverSegments(const ValueRange& q) const override {
    return tree_.CoverInfos(q);
  }
  std::string Name() const override { return "Repl/" + model_->Name(); }
  Status SaveState(StrategyState* out) const override;

  ReplicaTree& tree() { return tree_; }
  const ReplicaTree& tree() const { return tree_; }

 protected:
  /// Replica refresh: every materialized node whose range contains an
  /// incoming value receives it (replicas duplicate data, so one inserted
  /// row may cost several replica writes -- the price of lazy
  /// materialization under updates). Virtual nodes' counts stay exact
  /// because their data lives in the refreshed materialized ancestor.
  QueryExecution AppendImpl(const std::vector<T>& values) override;

  /// The replica tree's cover is a hierarchy walk, not a tiled overlap
  /// filter: freeze the whole tree so pinned readers replay Algorithm 3
  /// against publish-time state (see ReplicaCoverSnapshot).
  std::shared_ptr<const ColumnCover> BuildCover(uint64_t epoch) const override {
    return std::make_shared<ReplicaCoverSnapshot>(epoch, tree_);
  }

 private:
  /// Algorithm 4: walks from covering segment `s` down to the leaves
  /// overlapping `q` and plans materializations (new replica children and/or
  /// whole virtual leaves). Planned nodes are attached to the tree
  /// immediately; their data arrives in MaterializePlan.
  void AnalyzeReplicas(ReplicaNode* n, const ValueRange& q,
                       std::vector<ReplicaNode*>* plan);

  /// Case analysis for one leaf (Algorithm 4's switch).
  void AnalyzeLeaf(ReplicaNode* n, const ValueRange& q,
                   std::vector<ReplicaNode*>* plan);

  /// Fills every planned node's payload from covering segment `s`'s data
  /// (unmetered Peek -- the scan phase already charged the read); only the
  /// replica writes are accounted.
  void MaterializePlan(ReplicaNode* s, const std::vector<ReplicaNode*>& plan,
                       QueryExecution* ex);

  /// Demotes least-recently-used redundant replicas until the storage budget
  /// is met (no-op without a budget).
  void EnforceBudget(QueryExecution* ex);

  /// Appends `values` (all inside n's range) down the subtree of `n`:
  /// refreshes n's payload when materialized, then recurses with each
  /// child's slice of the values.
  void AppendRec(ReplicaNode* n, const std::vector<T>& values,
                 QueryExecution* ex);

  std::unique_ptr<SegmentationModel> model_;
  ReplicaTree tree_;
  Options opts_;
  uint64_t total_bytes_;
  uint64_t query_counter_ = 0;
};

}  // namespace socs

#endif  // SOCS_CORE_ADAPTIVE_REPLICATION_H_
