// Baseline: static value-range partitioning. The column is split once, up
// front, into K equal-width value ranges with a sparse index -- what a DBA
// would configure for a *predicted* workload (paper section 7's "static,
// non self-organizing" segmentation). Queries scan only overlapping
// segments (the default cover + metered scan); the partitioning never
// adapts, so Reorganize stays the base-class no-op.
#ifndef SOCS_CORE_STATIC_PARTITION_H_
#define SOCS_CORE_STATIC_PARTITION_H_

#include <vector>

#include "core/segment_meta_index.h"
#include "core/strategy.h"

namespace socs {

template <typename T>
class StaticPartition : public AccessStrategy<T> {
 public:
  /// Splits `values` into `num_parts` equal-width value ranges.
  StaticPartition(std::vector<T> values, ValueRange domain, size_t num_parts,
                  SegmentSpace* space);

  /// Restores a previously saved layout: `segments` must tile `domain` and
  /// already live in `space`.
  StaticPartition(ValueRange domain, size_t num_parts,
                  std::vector<SegmentInfo> segments, SegmentSpace* space);

  /// The partitioning never changes; Reorganize only runs the compression
  /// advisor's cold sweep (a no-op when compression is off, preserving the
  /// baseline's "never adapts" behaviour byte-for-byte).
  QueryExecution Reorganize(const ValueRange& q) override;

  StorageFootprint Footprint() const override;
  std::vector<SegmentInfo> Segments() const override { return index_.segments(); }
  std::string Name() const override;
  Status SaveState(StrategyState* out) const override;

 protected:
  /// Routes each value to its partition and tail-extends the affected
  /// partitions in place; the partitioning itself never changes (a DBA's
  /// static layout degrades under appends -- that is the point).
  QueryExecution AppendImpl(const std::vector<T>& values) override;

 private:
  SegmentMetaIndex index_;
  size_t num_parts_;
};

}  // namespace socs

#endif  // SOCS_CORE_STATIC_PARTITION_H_
