#include "core/adaptive_segmentation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/units.h"
#include "core/strategy_state.h"

namespace socs {

template <typename T>
AdaptiveSegmentation<T>::AdaptiveSegmentation(
    std::vector<T> values, ValueRange domain,
    std::unique_ptr<SegmentationModel> model, SegmentSpace* space, Options opts)
    : AccessStrategy<T>(space), model_(std::move(model)), index_(domain),
      opts_(opts), total_bytes_(values.size() * sizeof(T)) {
  IoCost setup;  // the initial load is not charged to any query
  SegmentId id = space->Create(values, &setup, CompressionHint::kCold);
  index_.InitSingle(SegmentInfo{domain, values.size(), id});
}

template <typename T>
AdaptiveSegmentation<T>::AdaptiveSegmentation(ValueRange domain,
                                              std::vector<SegmentInfo> segments,
                                              std::unique_ptr<SegmentationModel> model,
                                              SegmentSpace* space, Options opts)
    : AccessStrategy<T>(space), model_(std::move(model)), index_(domain),
      opts_(opts), total_bytes_(0) {
  index_.InitTiling(std::move(segments));
  total_bytes_ = index_.TotalCount() * sizeof(T);
}

template <typename T>
Status AdaptiveSegmentation<T>::SaveState(StrategyState* out) const {
  out->PutString("kind", "adaptive_segmentation");
  out->PutU64("value_size", sizeof(T));
  out->PutDouble("domain.lo", index_.domain().lo);
  out->PutDouble("domain.hi", index_.domain().hi);
  out->PutU64("opts.merge", opts_.merge_small_segments ? 1 : 0);
  out->PutU64("opts.merge_threshold", opts_.merge_threshold_bytes);
  out->PutSegments("segments", index_.segments());
  return SaveModel(*model_, out);
}

template <typename T>
QueryExecution AdaptiveSegmentation<T>::BulkAppendLocked(
    const std::vector<T>& values) {
  QueryExecution ex;
  if (values.empty()) return ex;
  // Values outside the column domain widen it (extending the boundary
  // segments' ranges) instead of dying, and values exactly at the domain's
  // upper bound clamp into the last segment -- both inside RouteAppend.
  const auto buckets = RouteAppend(&index_, values, this->space_->model(), &ex);
  // Rewrite each affected segment once (old payload + routed values).
  for (const auto& [pos, incoming] : buckets) {
    const SegmentInfo seg = index_.At(pos);
    IoCost scan;
    auto span = this->space_->template Scan<T>(seg.id, &scan);
    ex.read_bytes += scan.bytes;
    ex.decode_bytes += scan.decode_bytes;
    ex.adaptation_seconds += scan.seconds;
    std::vector<T> merged;
    merged.reserve(span.size() + incoming.size());
    merged.insert(merged.end(), span.begin(), span.end());
    merged.insert(merged.end(), incoming.begin(), incoming.end());
    IoCost create;
    SegmentId id = this->space_->Create(merged, &create);
    ex.write_bytes += create.bytes;
    ex.adaptation_seconds += create.seconds;
    this->RetireSegment(seg.id);
    index_.Update(pos, SegmentInfo{seg.range, merged.size(), id});
  }
  total_bytes_ = index_.TotalCount() * sizeof(T);
  return ex;
}

template <typename T>
uint64_t AdaptiveSegmentation<T>::MergeThreshold() const {
  if (opts_.merge_threshold_bytes > 0) return opts_.merge_threshold_bytes;
  if (model_->min_bytes() > 0) return model_->min_bytes();
  return 4 * kKiB;
}

template <typename T>
void AdaptiveSegmentation<T>::Glue(size_t pos, QueryExecution* ex) {
  const SegmentInfo a = index_.At(pos);
  const SegmentInfo b = index_.At(pos + 1);
  IoCost scan_a, scan_b;
  auto sa = this->space_->template Scan<T>(a.id, &scan_a);
  auto sb = this->space_->template Scan<T>(b.id, &scan_b);
  ex->adaptation_seconds += scan_a.seconds + scan_b.seconds;
  ex->read_bytes += scan_a.bytes + scan_b.bytes;
  ex->decode_bytes += scan_a.decode_bytes + scan_b.decode_bytes;
  std::vector<T> merged;
  merged.reserve(sa.size() + sb.size());
  merged.insert(merged.end(), sa.begin(), sa.end());
  merged.insert(merged.end(), sb.begin(), sb.end());
  IoCost create;
  SegmentId id = this->space_->Create(merged, &create);
  ex->write_bytes += create.bytes;
  ex->adaptation_seconds += create.seconds;
  this->RetireSegment(a.id);
  this->RetireSegment(b.id);
  index_.ReplaceSpan(pos, 2,
                     {SegmentInfo{ValueRange(a.range.lo, b.range.hi),
                                  a.count + b.count, id}});
  ++ex->merges;
}

template <typename T>
void AdaptiveSegmentation<T>::MergeAround(const ValueRange& q,
                                          QueryExecution* ex) {
  const uint64_t threshold = MergeThreshold();
  auto [first, last] = index_.FindOverlapping(q);
  (void)last;
  size_t pos = first > 0 ? first - 1 : 0;  // include the left neighbour
  while (pos + 1 < index_.Size()) {
    const SegmentInfo& a = index_.At(pos);
    if (a.range.lo >= q.hi) break;  // past the touched neighbourhood
    const SegmentInfo& b = index_.At(pos + 1);
    if ((a.count + b.count) * sizeof(T) <= threshold) {
      Glue(pos, ex);  // stay at pos: the merged segment may absorb more
    } else {
      ++pos;
    }
  }
}

template <typename T>
typename AdaptiveSegmentation<T>::PieceCounts
AdaptiveSegmentation<T>::CountPieces(std::span<const T> span,
                                     const ValueRange& q) const {
  PieceCounts pc;
  for (const T& v : span) {
    const double d = ValueOf(v);
    if (d < q.lo) {
      ++pc.left;
    } else if (d >= q.hi) {
      ++pc.right;
    } else {
      ++pc.mid;
    }
  }
  return pc;
}

template <typename T>
SplitGeometry AdaptiveSegmentation<T>::MakeGeometry(const SegmentInfo& seg,
                                                    const ValueRange& q,
                                                    const PieceCounts& pc) const {
  SplitGeometry g;
  g.seg_bytes = seg.count * sizeof(T);
  g.total_bytes = total_bytes_;
  g.left_bytes = pc.left * sizeof(T);
  g.mid_bytes = pc.mid * sizeof(T);
  g.right_bytes = pc.right * sizeof(T);
  g.has_left = q.lo > seg.range.lo && q.lo < seg.range.hi;
  g.has_right = q.hi < seg.range.hi && q.hi > seg.range.lo;
  return g;
}

template <typename T>
double AdaptiveSegmentation<T>::ChooseBoundedCut(const SegmentInfo& seg,
                                                 std::span<const T> span,
                                                 const ValueRange& q,
                                                 const PieceCounts& pc) const {
  const uint64_t min_bytes = model_->min_bytes();
  // Candidate cuts at the query bounds, with the piece sizes they induce.
  struct Candidate {
    double cut;
    uint64_t below, above;  // value counts on each side
  };
  std::vector<Candidate> cands;
  if (q.lo > seg.range.lo && q.lo < seg.range.hi) {
    cands.push_back({q.lo, pc.left, pc.mid + pc.right});
  }
  if (q.hi < seg.range.hi && q.hi > seg.range.lo) {
    cands.push_back({q.hi, pc.left + pc.mid, pc.right});
  }
  double best_cut = 0.0;
  uint64_t best_min = 0;
  bool have = false;
  for (const auto& c : cands) {
    const uint64_t mn = std::min(c.below, c.above) * sizeof(T);
    if (mn >= min_bytes && (!have || mn > best_min)) {
      best_cut = c.cut;
      best_min = mn;
      have = true;
    }
  }
  if (have) return best_cut;
  // No query bound keeps both sides large enough: split at an approximation
  // of the mean value of the segment (paper rule 3 / Fig. 3 example Q3).
  double sum = 0.0;
  for (const T& v : span) sum += ValueOf(v);
  double mean = span.empty() ? (seg.range.lo + seg.range.hi) / 2.0
                             : sum / static_cast<double>(span.size());
  // Keep the cut strictly inside the range so both pieces are non-empty.
  if (mean <= seg.range.lo || mean >= seg.range.hi) {
    mean = seg.range.lo + seg.range.Span() / 2.0;
  }
  return mean;
}

template <typename T>
bool AdaptiveSegmentation<T>::SplitSegment(size_t pos, const SegmentInfo& seg,
                                           std::span<const T> span,
                                           const ValueRange& q, SplitAction action,
                                           QueryExecution* ex) {
  std::vector<double> cuts;
  if (action == SplitAction::kSplitAtBounds) {
    if (q.lo > seg.range.lo && q.lo < seg.range.hi) cuts.push_back(q.lo);
    if (q.hi < seg.range.hi && q.hi > seg.range.lo) cuts.push_back(q.hi);
  } else {
    PieceCounts pc = CountPieces(span, q);
    cuts.push_back(ChooseBoundedCut(seg, span, q, pc));
  }
  if (cuts.empty()) return false;

  auto pieces = PartitionByCuts(span, cuts);
  // Build candidate (range, values) pairs, then coalesce empty pieces into a
  // neighbour so the index never holds zero-count segments.
  struct Piece {
    ValueRange range;
    std::vector<T> values;
  };
  std::vector<Piece> keep;
  double lo = seg.range.lo;
  for (size_t i = 0; i < pieces.size(); ++i) {
    const double hi = i < cuts.size() ? cuts[i] : seg.range.hi;
    if (pieces[i].empty()) {
      if (!keep.empty()) {
        keep.back().range.hi = hi;  // extend previous piece's range
      } else {
        // Leading empty piece: fold its range into the next piece by keeping
        // `lo` unchanged.
        continue;
      }
    } else {
      keep.push_back({ValueRange(lo, hi), std::move(pieces[i])});
    }
    lo = hi;
  }
  if (keep.size() < 2) return false;  // degenerate split, nothing gained

  std::vector<SegmentInfo> infos;
  infos.reserve(keep.size());
  for (auto& p : keep) {
    IoCost create;
    SegmentId id = this->space_->Create(p.values, &create);
    ex->write_bytes += create.bytes;
    ex->adaptation_seconds += create.seconds;
    infos.push_back(SegmentInfo{p.range, p.values.size(), id});
  }
  this->RetireSegment(seg.id);
  index_.Replace(pos, infos);
  ++ex->splits;
  return true;
}

template <typename T>
QueryExecution AdaptiveSegmentation<T>::Reorganize(const ValueRange& q) {
  QueryExecution ex;
  if (q.Empty()) return ex;
  auto [first, last] = index_.FindOverlapping(q);
  // Right-to-left: splitting at `pos` only shifts positions > pos, so earlier
  // positions stay valid. The payloads were scanned (and charged) in phase 2;
  // Peek re-derives the piece geometry without charging them again.
  for (size_t pos = last; pos-- > first;) {
    const SegmentInfo seg = index_.At(pos);
    auto span = this->space_->template Peek<T>(seg.id);
    PieceCounts pc = CountPieces(span, q);
    SplitGeometry g = MakeGeometry(seg, q, pc);
    SplitAction action = model_->Decide(g);
    if (action != SplitAction::kKeep) {
      SplitSegment(pos, seg, span, q, action, &ex);
    }
  }
  if (opts_.merge_small_segments) MergeAround(q, &ex);
  // Re-encode boundary: segments the workload stopped touching re-encode
  // copy-on-write; hot segments (anything the splits above just rewrote)
  // stay raw. Decision geometry above is purely logical-byte-based, so the
  // structure evolves identically with compression on or off.
  this->SweepCompression(index_.segments(), &ex,
                         [&](size_t pos, const SegmentInfo& info) {
                           index_.Update(pos, info);
                         });
  return ex;
}

template <typename T>
StorageFootprint AdaptiveSegmentation<T>::Footprint() const {
  StorageFootprint fp;
  fp.materialized_bytes = this->MaterializedPhysicalBytes();
  fp.segment_count = index_.Size();
  fp.meta_bytes = index_.IndexBytes();
  fp.decode_cache_bytes = this->DecodedCacheBytes();
  return fp;
}

template class AdaptiveSegmentation<int32_t>;
template class AdaptiveSegmentation<int64_t>;
template class AdaptiveSegmentation<float>;
template class AdaptiveSegmentation<double>;
template class AdaptiveSegmentation<OidValue>;

}  // namespace socs
