#include "engine/mal_interpreter.h"

#include <unordered_map>

#include "bat/algebra.h"
#include "core/strategy.h"

namespace socs {

// ---------------------------------------------------------------------------
// EngineValue
// ---------------------------------------------------------------------------

EngineValue EngineValue::Number(double v) {
  EngineValue e;
  e.kind_ = Kind::kNum;
  e.num_ = v;
  return e;
}
EngineValue EngineValue::String(std::string s) {
  EngineValue e;
  e.kind_ = Kind::kStr;
  e.str_ = std::move(s);
  return e;
}
EngineValue EngineValue::OfBat(Bat b) {
  EngineValue e;
  e.kind_ = Kind::kBat;
  e.bat_ = std::make_shared<Bat>(std::move(b));
  return e;
}
EngineValue EngineValue::Iter(int iter_id) {
  EngineValue e;
  e.kind_ = Kind::kIter;
  e.iter_ = iter_id;
  return e;
}
EngineValue EngineValue::SegCol(SegmentedColumn* col) {
  EngineValue e;
  e.kind_ = Kind::kSegCol;
  e.segcol_ = col;
  return e;
}
EngineValue EngineValue::RSet(std::shared_ptr<ResultSet> rs) {
  EngineValue e;
  e.kind_ = Kind::kResultSet;
  e.rset_ = std::move(rs);
  return e;
}

double EngineValue::num() const {
  SOCS_CHECK(kind_ == Kind::kNum);
  return num_;
}
const std::string& EngineValue::str() const {
  SOCS_CHECK(kind_ == Kind::kStr);
  return str_;
}
const BatPtr& EngineValue::bat() const {
  SOCS_CHECK(kind_ == Kind::kBat) << "expected bat value";
  return bat_;
}
int EngineValue::iter() const {
  SOCS_CHECK(kind_ == Kind::kIter);
  return iter_;
}
SegmentedColumn* EngineValue::segcol() const {
  SOCS_CHECK(kind_ == Kind::kSegCol) << "expected segmented-column handle";
  return segcol_;
}
const std::shared_ptr<ResultSet>& EngineValue::rset() const {
  SOCS_CHECK(kind_ == Kind::kResultSet) << "expected result set";
  return rset_;
}

// ---------------------------------------------------------------------------
// Argument helpers
// ---------------------------------------------------------------------------

namespace {
Status ArityError(const MalInstr& in, size_t want) {
  return Status::InvalidArgument(in.module + "." + in.op + ": expected >= " +
                                 std::to_string(want) + " args, got " +
                                 std::to_string(in.args.size()));
}

const EngineValue* VarValue(const std::vector<EngineValue>& vars, int id) {
  if (id < 0 || static_cast<size_t>(id) >= vars.size()) return nullptr;
  return &vars[id];
}
}  // namespace

StatusOr<double> MalInterpreter::NumArg(const ExecContext& ctx, const MalInstr& in,
                                        size_t i) {
  if (i >= in.args.size()) return ArityError(in, i + 1);
  const MalArg& a = in.args[i];
  if (a.kind == MalArg::Kind::kNum) return a.num;
  if (a.kind == MalArg::Kind::kVar) {
    const EngineValue* v = VarValue(ctx.vars, a.var);
    if (v != nullptr && v->kind() == EngineValue::Kind::kNum) return v->num();
  }
  return Status::InvalidArgument(in.module + "." + in.op + ": arg " +
                                 std::to_string(i) + " is not numeric");
}

StatusOr<std::string> MalInterpreter::StrArg(const ExecContext& ctx,
                                             const MalInstr& in, size_t i) {
  if (i >= in.args.size()) return ArityError(in, i + 1);
  const MalArg& a = in.args[i];
  if (a.kind == MalArg::Kind::kStr) return a.str;
  if (a.kind == MalArg::Kind::kVar) {
    const EngineValue* v = VarValue(ctx.vars, a.var);
    if (v != nullptr && v->kind() == EngineValue::Kind::kStr) return v->str();
  }
  return Status::InvalidArgument(in.module + "." + in.op + ": arg " +
                                 std::to_string(i) + " is not a string");
}

StatusOr<BatPtr> MalInterpreter::BatArg(const ExecContext& ctx, const MalInstr& in,
                                        size_t i) {
  if (i >= in.args.size()) return ArityError(in, i + 1);
  const MalArg& a = in.args[i];
  if (a.kind == MalArg::Kind::kVar) {
    const EngineValue* v = VarValue(ctx.vars, a.var);
    if (v != nullptr && v->kind() == EngineValue::Kind::kBat) return v->bat();
  }
  return Status::InvalidArgument(in.module + "." + in.op + ": arg " +
                                 std::to_string(i) + " is not a bat");
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

MalInterpreter::MalInterpreter(Catalog* catalog) : catalog_(catalog) {
  RegisterBuiltins();
}

void MalInterpreter::Register(const std::string& module, const std::string& op,
                              Handler h) {
  handlers_[module + "." + op] = std::move(h);
}

void MalInterpreter::RegisterBuiltins() {
  // --- algebra -------------------------------------------------------------
  auto select_like = [this](bool uselect) {
    return [this, uselect](ExecContext& ctx,
                           const MalInstr& in) -> StatusOr<EngineValue> {
      auto bat = BatArg(ctx, in, 0);
      if (!bat.ok()) return bat.status();
      auto lo = NumArg(ctx, in, 1);
      if (!lo.ok()) return lo.status();
      auto hi = NumArg(ctx, in, 2);
      if (!hi.ok()) return hi.status();
      bool li = true, hinc = true;
      if (in.args.size() >= 5) {
        auto a3 = NumArg(ctx, in, 3);
        auto a4 = NumArg(ctx, in, 4);
        if (!a3.ok()) return a3.status();
        if (!a4.ok()) return a4.status();
        li = a3.value() != 0.0;
        hinc = a4.value() != 0.0;
      }
      auto out = uselect ? algebra::Uselect(**bat, *lo, *hi, li, hinc)
                         : algebra::Select(**bat, *lo, *hi, li, hinc);
      if (!out.ok()) return out.status();
      return EngineValue::OfBat(std::move(out.value()));
    };
  };
  Register("algebra", "select", select_like(false));
  Register("algebra", "uselect", select_like(true));

  auto binop = [this](StatusOr<Bat> (*fn)(const Bat&, const Bat&)) {
    return [this, fn](ExecContext& ctx,
                      const MalInstr& in) -> StatusOr<EngineValue> {
      auto a = BatArg(ctx, in, 0);
      if (!a.ok()) return a.status();
      auto b = BatArg(ctx, in, 1);
      if (!b.ok()) return b.status();
      auto out = fn(**a, **b);
      if (!out.ok()) return out.status();
      return EngineValue::OfBat(std::move(out.value()));
    };
  };
  Register("algebra", "kunion", binop(&algebra::KUnion));
  Register("algebra", "kdifference", binop(&algebra::KDifference));
  Register("algebra", "kintersect", binop(&algebra::KIntersect));
  Register("algebra", "join", binop(&algebra::Join));
  Register("bat", "append", binop(&algebra::Append));

  Register("bat", "reverse",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto b = BatArg(ctx, in, 0);
             if (!b.ok()) return b.status();
             return EngineValue::OfBat(algebra::Reverse(**b));
           });

  Register("algebra", "markT",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto b = BatArg(ctx, in, 0);
             if (!b.ok()) return b.status();
             auto base = NumArg(ctx, in, 1);
             if (!base.ok()) return base.status();
             return EngineValue::OfBat(
                 algebra::MarkT(**b, static_cast<Oid>(base.value())));
           });

  // --- aggr ----------------------------------------------------------------
  auto agg = [this](StatusOr<double> (*fn)(const Bat&)) {
    return [this, fn](ExecContext& ctx,
                      const MalInstr& in) -> StatusOr<EngineValue> {
      auto b = BatArg(ctx, in, 0);
      if (!b.ok()) return b.status();
      auto v = fn(**b);
      if (!v.ok()) return v.status();
      return EngineValue::Number(v.value());
    };
  };
  Register("aggr", "sum", agg(&algebra::Sum));
  Register("aggr", "min", agg(&algebra::Min));
  Register("aggr", "max", agg(&algebra::Max));
  Register("aggr", "avg",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto b = BatArg(ctx, in, 0);
             if (!b.ok()) return b.status();
             const uint64_t n = algebra::Count(**b);
             if (n == 0) return Status::InvalidArgument("aggr.avg: empty bat");
             auto s = algebra::Sum(**b);
             if (!s.ok()) return s.status();
             return EngineValue::Number(s.value() / static_cast<double>(n));
           });
  Register("aggr", "count",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto b = BatArg(ctx, in, 0);
             if (!b.ok()) return b.status();
             return EngineValue::Number(
                 static_cast<double>(algebra::Count(**b)));
           });

  // --- calc ----------------------------------------------------------------
  Register("calc", "oid",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto v = NumArg(ctx, in, 0);
             if (!v.ok()) return v.status();
             return EngineValue::Number(v.value());
           });

  // --- sql -----------------------------------------------------------------
  Register("sql", "bind",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             // sql.bind("sys", table, column, level)
             auto table = StrArg(ctx, in, 1);
             if (!table.ok()) return table.status();
             auto column = StrArg(ctx, in, 2);
             if (!column.ok()) return column.status();
             auto b = catalog_->Bind(*table, *column);
             if (!b.ok()) return b.status();
             return EngineValue::OfBat(std::move(b.value()));
           });

  Register("sql", "rowCount",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             // sql.rowCount("sys", table): the INSERT path's oid base.
             auto table = StrArg(ctx, in, 1);
             if (!table.ok()) return table.status();
             auto rows = catalog_->RowCount(*table);
             if (!rows.ok()) return rows.status();
             return EngineValue::Number(static_cast<double>(*rows));
           });

  Register("sql", "append",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             // sql.append("sys", table, column, v0, v1, ...): plain-column
             // tail append (unmetered positional storage).
             auto table = StrArg(ctx, in, 1);
             if (!table.ok()) return table.status();
             auto column = StrArg(ctx, in, 2);
             if (!column.ok()) return column.status();
             std::vector<double> values;
             values.reserve(in.args.size() - 3);
             for (size_t i = 3; i < in.args.size(); ++i) {
               auto v = NumArg(ctx, in, i);
               if (!v.ok()) return v.status();
               values.push_back(*v);
             }
             Status st = catalog_->AppendPlain(*table, *column, values);
             if (!st.ok()) return st;
             return EngineValue::Number(static_cast<double>(values.size()));
           });

  Register("sql", "grow",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             // sql.grow("sys", table, n): commits the row-count growth.
             auto table = StrArg(ctx, in, 1);
             if (!table.ok()) return table.status();
             auto n = NumArg(ctx, in, 2);
             if (!n.ok()) return n.status();
             Status st = catalog_->Grow(*table, static_cast<uint64_t>(*n));
             if (!st.ok()) return st;
             auto rows = catalog_->RowCount(*table);
             if (!rows.ok()) return rows.status();
             return EngineValue::Number(static_cast<double>(*rows));
           });

  Register("sql", "resultSet",
           [](ExecContext&, const MalInstr&) -> StatusOr<EngineValue> {
             return EngineValue::RSet(std::make_shared<ResultSet>());
           });

  Register("sql", "rsColumn",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             // sql.rsColumn(rs, name, bat_or_num)
             if (in.args.size() < 3) return ArityError(in, 3);
             const EngineValue* rsv = VarValue(ctx.vars, in.args[0].var);
             if (rsv == nullptr ||
                 rsv->kind() != EngineValue::Kind::kResultSet) {
               return Status::InvalidArgument("sql.rsColumn: arg 0 not a result set");
             }
             auto name = StrArg(ctx, in, 1);
             if (!name.ok()) return name.status();
             ResultSet::Col col;
             col.name = *name;
             auto bat = BatArg(ctx, in, 2);
             if (bat.ok()) {
               col.bat = *bat;
             } else {
               auto num = NumArg(ctx, in, 2);  // scalar -> 1-row bat
               if (!num.ok()) return num.status();
               col.bat = std::make_shared<Bat>(Bat::DenseTyped(
                   TypedVector::Of(std::vector<double>{num.value()})));
             }
             rsv->rset()->cols.push_back(std::move(col));
             return EngineValue::Nil();
           });

  Register("sql", "exportResult",
           [](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             if (in.args.empty()) return ArityError(in, 1);
             const EngineValue* rsv = VarValue(ctx.vars, in.args[0].var);
             if (rsv == nullptr ||
                 rsv->kind() != EngineValue::Kind::kResultSet) {
               return Status::InvalidArgument(
                   "sql.exportResult: arg 0 not a result set");
             }
             ctx.exported = rsv->rset();
             return EngineValue::Nil();
           });

  // --- bpm (segment-optimizer runtime) ---------------------------------------
  Register("bpm", "take",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto handle = StrArg(ctx, in, 0);
             if (!handle.ok()) return handle.status();
             auto col = catalog_->GetSegmented(*handle);
             if (!col.ok()) return col.status();
             return EngineValue::SegCol(*col);
           });

  Register("bpm", "new",
           [](ExecContext&, const MalInstr&) -> StatusOr<EngineValue> {
             // Empty accumulator; typed lazily on first addSegment.
             return EngineValue::OfBat(Bat::OidList({}));
           });

  Register("bpm", "newIterator",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             if (in.args.empty() || in.args[0].kind != MalArg::Kind::kVar) {
               return Status::InvalidArgument("bpm.newIterator: bad args");
             }
             const EngineValue* cv = VarValue(ctx.vars, in.args[0].var);
             if (cv == nullptr || cv->kind() != EngineValue::Kind::kSegCol) {
               return Status::InvalidArgument(
                   "bpm.newIterator: arg 0 not a segmented column");
             }
             auto lo = NumArg(ctx, in, 1);
             if (!lo.ok()) return lo.status();
             auto hi = NumArg(ctx, in, 2);
             if (!hi.ok()) return hi.status();
             auto iter = std::make_unique<BpmIterator>();
             // Optional 4th arg: the delivery mode the segment optimizer
             // selected (0 raw, 1 filtered pairs, 2 candidate oids).
             if (in.args.size() >= 4) {
               auto mode = NumArg(ctx, in, 3);
               if (!mode.ok()) return mode.status();
               iter->mode = static_cast<int>(*mode);
             }
             // Optional 5th arg: the plan-choice pass decided the cover
             // degenerates to ~the whole column -- deliver it coalesced, as
             // one BAT in a single iteration (see ScanCoverBat).
             if (in.args.size() >= 5) {
               auto coal = NumArg(ctx, in, 4);
               if (!coal.ok()) return coal.status();
               iter->coalesce = *coal != 0.0;
             }
             iter->Open(cv->segcol(), *lo, *hi);
             const int id = static_cast<int>(ctx.iters.size());
             ctx.iters.push_back(std::move(iter));
             BpmIterator* it = ctx.iters.back().get();
             // One per-query overhead per select, as in the core RunRange.
             last_exec_.selection_seconds +=
                 it->column->cost_model().QueryOverhead();
             // With a threaded scheduler, scan every covering segment across
             // the pool now; deliveries below just wait on their slot. A
             // coalesced iterator scans everything in its one delivery --
             // prefetching would double-charge the cover.
             if (sched_ != nullptr && !sched_->pool().inline_mode() &&
                 it->segments.size() > 1 && !it->coalesce) {
               PrefetchSegments(it);
             }
             // The iterator id rides along in the barrier variable; the bat is
             // what the loop body consumes. We pack both: the bat is returned,
             // the id is re-derivable because hasMoreElements uses the same
             // ret var. Store id -> last iterator in ctx (single voyage).
             ctx.vars.resize(std::max(ctx.vars.size(),
                                      static_cast<size_t>(in.rets[0]) + 1));
             iter_of_var_[in.rets[0]] = id;
             return DeliverNextSegment(it, *lo, *hi);
           });

  Register("bpm", "hasMoreElements",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             auto idit = iter_of_var_.find(in.rets[0]);
             if (idit == iter_of_var_.end()) {
               return Status::Internal("bpm.hasMoreElements without newIterator");
             }
             BpmIterator* it = ctx.iters[idit->second].get();
             auto lo = NumArg(ctx, in, 1);
             if (!lo.ok()) return lo.status();
             auto hi = NumArg(ctx, in, 2);
             if (!hi.ok()) return hi.status();
             return DeliverNextSegment(it, *lo, *hi);
           });

  Register("bpm", "addSegment",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             if (in.args.size() < 2 || in.args[0].kind != MalArg::Kind::kVar) {
               return Status::InvalidArgument("bpm.addSegment: bad args");
             }
             auto dst = BatArg(ctx, in, 0);
             if (!dst.ok()) return dst.status();
             auto src = BatArg(ctx, in, 1);
             if (!src.ok()) return src.status();
             StatusOr<Bat> merged = (*dst)->size() == 0
                                        ? StatusOr<Bat>(Bat(**src))
                                        : algebra::Append(**dst, **src);
             if (!merged.ok()) return merged.status();
             ctx.vars[in.args[0].var] = EngineValue::OfBat(std::move(merged.value()));
             return EngineValue::Nil();
           });

  Register("bpm", "append",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             // bpm.append(col, oid_base, v0, v1, ...): the write path. The
             // append runs as an adaptation side effect; its record folds
             // into last_execution like bpm.adapt's does.
             if (in.args.empty() || in.args[0].kind != MalArg::Kind::kVar) {
               return Status::InvalidArgument("bpm.append: bad args");
             }
             const EngineValue* cv = VarValue(ctx.vars, in.args[0].var);
             if (cv == nullptr || cv->kind() != EngineValue::Kind::kSegCol) {
               return Status::InvalidArgument(
                   "bpm.append: arg 0 not a segmented column");
             }
             auto base = NumArg(ctx, in, 1);
             if (!base.ok()) return base.status();
             std::vector<double> values;
             values.reserve(in.args.size() - 2);
             for (size_t i = 2; i < in.args.size(); ++i) {
               auto v = NumArg(ctx, in, i);
               if (!v.ok()) return v.status();
               values.push_back(*v);
             }
             last_exec_ += cv->segcol()->Append(
                 values, static_cast<uint64_t>(*base));
             return EngineValue::Number(static_cast<double>(values.size()));
           });

  Register("bpm", "adapt",
           [this](ExecContext& ctx, const MalInstr& in) -> StatusOr<EngineValue> {
             const EngineValue* cv = VarValue(ctx.vars, in.args[0].var);
             if (cv == nullptr || cv->kind() != EngineValue::Kind::kSegCol) {
               return Status::InvalidArgument(
                   "bpm.adapt: arg 0 not a segmented column");
             }
             auto lo = NumArg(ctx, in, 1);
             if (!lo.ok()) return lo.status();
             auto hi = NumArg(ctx, in, 2);
             if (!hi.ok()) return hi.status();
             last_exec_ += cv->segcol()->Reorganize(*lo, *hi);
             // The query's adaptation is done -- an idle point: hand any
             // deferred batch work to the background lane, off the query
             // path (its record lands in the column's background ledger,
             // never in last_execution).
             if (sched_ != nullptr) {
               cv->segcol()->ScheduleIdleMaintenance(sched_);
             }
             return EngineValue::Nil();
           });
}

void MalInterpreter::PrefetchSegments(BpmIterator* it) {
  // Null slots; tasks are submitted a bounded window ahead of delivery so
  // peak memory is O(window) materialized BATs, not the whole cover. The
  // selection bounds come from the iterator itself (recorded by Open).
  it->prefetch.resize(it->segments.size());
  const size_t window = 2 * sched_->pool().threads();
  while (it->next_to_submit < it->segments.size() &&
         it->next_to_submit < window) {
    SubmitPrefetchSlot(it, it->next_to_submit++);
  }
}

void MalInterpreter::SubmitPrefetchSlot(BpmIterator* it, size_t i) {
  auto slot = std::make_unique<BpmIterator::Prefetched>();
  BpmIterator::Prefetched* s = slot.get();
  SegmentedColumn* column = it->column;
  const SegmentInfo seg = it->segments[i];
  const double lo = it->lo, hi = it->hi;
  const int mode = it->mode;
  SharedScanPass<OidValue>* shared = mode != 0 ? shared_pass_ : nullptr;
  const size_t consumer = shared_consumer_;
  const uint64_t epoch = it->epoch;
  s->ready = sched_->pool().SubmitTask([s, column, seg, lo, hi, mode, shared,
                                        consumer, epoch] {
    s->bat = column->PrefetchSegmentBat(seg, lo, hi, &s->scan, &s->lane, mode,
                                        shared, consumer, epoch);
  });
  it->prefetch[i] = std::move(slot);
}

EngineValue MalInterpreter::DeliverNextSegment(BpmIterator* it, double lo,
                                               double hi) {
  if (it->next >= it->segments.size()) {
    // Exhausted: release the epoch pin (or shared latch) so retired
    // segments can reclaim and bpm.adapt (exclusive) can run.
    it->ReleaseRead();
    return EngineValue::Nil();
  }
  if (it->coalesce) {
    // Cost-based coalesced delivery: the whole cover in one BAT, one
    // barrier iteration -- per-segment metered charges identical to the
    // per-iteration path below.
    Bat all = it->column->ScanCoverBat(
        it->segments, lo, hi, &last_exec_, it->mode,
        it->mode != 0 ? shared_pass_ : nullptr, shared_consumer_, it->epoch);
    it->next = it->segments.size();
    return EngineValue::OfBat(std::move(all));
  }
  if (!it->prefetch.empty()) {
    // Parallel path: the scan already ran off-thread; commit its metering
    // lane here, in delivery (= cover) order, then fold the scan record --
    // the same order and arithmetic as the sequential branch below. Keep
    // the prefetch window full by submitting one more slot per delivery.
    BpmIterator::Prefetched& slot = *it->prefetch[it->next];
    slot.ready.get();
    it->column->CommitScanLane(&slot.lane);
    FoldScanIntoExecution(slot.scan, &last_exec_);
    ++it->next;
    if (it->next_to_submit < it->segments.size()) {
      SubmitPrefetchSlot(it, it->next_to_submit++);
    }
    return EngineValue::OfBat(std::move(slot.bat));
  }
  Bat seg = it->column->ScanSegmentBat(
      it->segments[it->next], lo, hi, &last_exec_, it->mode,
      it->mode != 0 ? shared_pass_ : nullptr, shared_consumer_, it->epoch);
  ++it->next;
  return EngineValue::OfBat(std::move(seg));
}

StatusOr<EngineValue> MalInterpreter::Eval(ExecContext& ctx, const MalInstr& in) {
  auto it = handlers_.find(in.module + "." + in.op);
  if (it == handlers_.end()) {
    return Status::Unimplemented("unknown MAL operator " + in.module + "." + in.op);
  }
  return it->second(ctx, in);
}

StatusOr<std::shared_ptr<ResultSet>> MalInterpreter::Run(const MalProgram& prog) {
  last_exec_ = QueryExecution{};
  iter_of_var_.clear();
  ExecContext ctx;
  ctx.vars.resize(prog.NumVars());

  // Pre-compute barrier -> exit and exit -> barrier jump targets.
  std::unordered_map<int, size_t> exit_of_barrier;   // barrier var -> exit index
  std::unordered_map<int, size_t> barrier_of_var;    // barrier var -> barrier index
  {
    std::vector<std::pair<int, size_t>> stack;  // (barrier var, index)
    for (size_t i = 0; i < prog.instrs.size(); ++i) {
      const MalInstr& in = prog.instrs[i];
      if (in.kind == MalInstr::Kind::kBarrier) {
        stack.emplace_back(in.rets[0], i);
        barrier_of_var[in.rets[0]] = i;
      } else if (in.kind == MalInstr::Kind::kExit) {
        if (stack.empty() || stack.back().first != in.rets[0]) {
          return Status::InvalidArgument("mismatched barrier/exit block");
        }
        exit_of_barrier[in.rets[0]] = i;
        stack.pop_back();
      }
    }
    if (!stack.empty()) return Status::InvalidArgument("unterminated barrier");
  }

  for (size_t pc = 0; pc < prog.instrs.size(); ++pc) {
    const MalInstr& in = prog.instrs[pc];
    switch (in.kind) {
      case MalInstr::Kind::kAssign: {
        auto v = Eval(ctx, in);
        if (!v.ok()) return v.status();
        if (!in.rets.empty()) ctx.vars[in.rets[0]] = std::move(v.value());
        break;
      }
      case MalInstr::Kind::kBarrier: {
        auto v = Eval(ctx, in);
        if (!v.ok()) return v.status();
        if (v->is_nil()) {
          pc = exit_of_barrier.at(in.rets[0]);  // skip the block
        } else {
          ctx.vars[in.rets[0]] = std::move(v.value());
        }
        break;
      }
      case MalInstr::Kind::kRedo: {
        auto v = Eval(ctx, in);
        if (!v.ok()) return v.status();
        if (!v->is_nil()) {
          ctx.vars[in.rets[0]] = std::move(v.value());
          pc = barrier_of_var.at(in.rets[0]);  // jump to start of block body
        }
        break;
      }
      case MalInstr::Kind::kExit:
        break;
    }
  }
  if (ctx.exported == nullptr) ctx.exported = std::make_shared<ResultSet>();
  return ctx.exported;
}

}  // namespace socs
