// BPM ("bat partition manager"): the runtime module the segment optimizer
// targets (paper section 3.1). It bridges MAL execution to the core adaptive
// strategies: bpm.take binds a segmented column, bpm.newIterator /
// hasMoreElements drive the predicate-enhanced segment iterator, and
// bpm.adapt invokes the reorganizing module after the selects.
//
// Accounting note: iterator scans deliver segment payloads *unmetered*; the
// metered scan + reorganization happens in Adapt() (one RunRange of the
// underlying strategy), so the per-query byte accounting matches the core
// experiments exactly instead of being charged twice.
#ifndef SOCS_ENGINE_BPM_H_
#define SOCS_ENGINE_BPM_H_

#include <memory>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "core/strategy.h"

namespace socs {

/// Engine-side handle for a column managed by an adaptive strategy over
/// [oid, value] pairs.
class SegmentedColumn {
 public:
  /// `sql_type` is the SQL-facing tail type of the column (kDbl, kFlt, ...).
  /// The strategy must manage OidValue elements; `space` is the strategy's
  /// segment space (used for unmetered payload access).
  SegmentedColumn(std::string name, ValType sql_type,
                  std::unique_ptr<AccessStrategy<OidValue>> strategy,
                  SegmentSpace* space);

  const std::string& name() const { return name_; }
  ValType sql_type() const { return sql_type_; }
  AccessStrategy<OidValue>* strategy() { return strategy_.get(); }

  /// Disjoint segments covering the inclusive selection [lo, hi].
  std::vector<SegmentInfo> CoverSegments(double lo, double hi) const;

  /// Materializes one segment as a [oid, T] BAT (unmetered; see above).
  Bat SegmentBat(SegmentId id) const;

  /// Runs the reorganizing module: the strategy's metered RunRange.
  QueryExecution Adapt(double lo, double hi);

  /// Whole column as a [oid, T] BAT (the fallback when a plan was not
  /// rewritten by the segment optimizer).
  Bat FullScanBat() const;

  /// Estimated bytes a selection must touch (sum of covering segment sizes);
  /// used by the optimizer's footprint estimation.
  uint64_t EstimateSelectionBytes(double lo, double hi) const;

  /// Converts an inclusive SQL range to the core's half-open range.
  static ValueRange InclusiveToHalfOpen(double lo, double hi);

 private:
  std::string name_;
  ValType sql_type_;
  std::unique_ptr<AccessStrategy<OidValue>> strategy_;
  SegmentSpace* space_;
};

/// Iterator state for one barrier block instance.
struct BpmIterator {
  SegmentedColumn* column = nullptr;
  std::vector<SegmentInfo> segments;
  size_t next = 0;
};

}  // namespace socs

#endif  // SOCS_ENGINE_BPM_H_
