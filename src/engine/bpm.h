// BPM ("bat partition manager"): the runtime module the segment optimizer
// targets (paper section 3.1). It bridges MAL execution to the core adaptive
// strategies: bpm.take binds a segmented column, bpm.newIterator /
// hasMoreElements drive the predicate-enhanced segment iterator, and
// bpm.adapt invokes the reorganizing module after the selects.
//
// Single-pass protocol: the iterator delivers each covering segment through
// the strategy's metered ScanSegment API, so a segment's payload bytes are
// charged to SegmentSpace/IoStats exactly once -- when it is handed to the
// plan's select. bpm.adapt then runs only the strategy's Reorganize phase
// (splits/replicas/merges and their write costs). The MAL interpreter
// assembles the per-query QueryExecution from both halves, making the
// engine path report the same numbers as a direct AccessStrategy::RunRange;
// nothing is scanned twice.
#ifndef SOCS_ENGINE_BPM_H_
#define SOCS_ENGINE_BPM_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "core/strategy.h"

namespace socs {

/// Engine-side handle for a column managed by an adaptive strategy over
/// [oid, value] pairs.
class SegmentedColumn {
 public:
  /// `sql_type` is the SQL-facing tail type of the column (kDbl, kFlt, ...).
  /// The strategy must manage OidValue elements; `space` is the strategy's
  /// segment space (used for the unmetered full-scan fallback).
  SegmentedColumn(std::string name, ValType sql_type,
                  std::unique_ptr<AccessStrategy<OidValue>> strategy,
                  SegmentSpace* space);

  const std::string& name() const { return name_; }
  ValType sql_type() const { return sql_type_; }
  AccessStrategy<OidValue>* strategy() { return strategy_.get(); }
  const CostModel& cost_model() const;

  /// Disjoint segments covering the inclusive selection [lo, hi].
  std::vector<SegmentInfo> CoverSegments(double lo, double hi) const;

  /// Metered delivery of one covering segment as a [oid, T] BAT: one
  /// ScanSegment call charges the payload bytes exactly once, and the scan's
  /// metering (reads, seconds, qualifying count) is folded into `*ex`.
  Bat ScanSegmentBat(const SegmentInfo& seg, double lo, double hi,
                     QueryExecution* ex);

  /// Runs only the reorganizing module: the strategy's Reorganize phase.
  /// Returns the adaptation half of the query's execution record.
  QueryExecution Reorganize(double lo, double hi);

  /// The write path (bpm.append): appends `values` as rows
  /// oid_base .. oid_base+n-1 through the strategy's Append phase. The
  /// returned record carries only adaptation-side costs (write bytes,
  /// adaptation seconds), so an engine INSERT reports exactly what a direct
  /// core Append would.
  QueryExecution Append(const std::vector<double>& values, uint64_t oid_base);

  /// Whole column as a [oid, T] BAT (the fallback when a plan was not
  /// rewritten by the segment optimizer; unmetered).
  Bat FullScanBat() const;

  /// Estimated bytes a selection must touch (sum of covering segment sizes);
  /// used by the optimizer's footprint estimation.
  uint64_t EstimateSelectionBytes(double lo, double hi) const;

  /// Converts an inclusive SQL range to the core's half-open range.
  static ValueRange InclusiveToHalfOpen(double lo, double hi);

 private:
  /// Shared segment-to-BAT conversion: appends one payload span to the
  /// (oids, values) pair under construction. Callers reserve capacity.
  static void AppendSpan(std::span<const OidValue> span, std::vector<Oid>* oids,
                         TypedVector* values);

  std::string name_;
  ValType sql_type_;
  std::unique_ptr<AccessStrategy<OidValue>> strategy_;
  SegmentSpace* space_;
};

/// Iterator state for one barrier block instance.
struct BpmIterator {
  SegmentedColumn* column = nullptr;
  std::vector<SegmentInfo> segments;
  size_t next = 0;
};

}  // namespace socs

#endif  // SOCS_ENGINE_BPM_H_
