// BPM ("bat partition manager"): the runtime module the segment optimizer
// targets (paper section 3.1). It bridges MAL execution to the core adaptive
// strategies: bpm.take binds a segmented column, bpm.newIterator /
// hasMoreElements drive the predicate-enhanced segment iterator, and
// bpm.adapt invokes the reorganizing module after the selects.
//
// Single-pass protocol: the iterator delivers each covering segment through
// the strategy's metered ScanSegment API, so a segment's payload bytes are
// charged to SegmentSpace/IoStats exactly once -- when it is handed to the
// plan's select. bpm.adapt then runs only the strategy's Reorganize phase
// (splits/replicas/merges and their write costs). The MAL interpreter
// assembles the per-query QueryExecution from both halves, making the
// engine path report the same numbers as a direct AccessStrategy::RunRange;
// nothing is scanned twice.
//
// Concurrency: segment delivery is a snapshot read -- the iterator pins the
// column's published epoch at Open and walks the pinned cover latch-free,
// exactly as the core RunRange does, so a concurrent Reorganize/Append/
// background flush publishes its new segmentation without disturbing
// deliveries in flight (covered segments stay alive until the pin is
// released). Reorganize/Append still serialize on the column's exclusive
// ColumnLatch (the write-write path); cracking columns opt out of snapshot
// scans and keep the classic shared-latch delivery. When the interpreter
// has a ThreadPool, deliveries are *prefetched*: every covering segment is
// scanned (and its BAT built) off-thread into a lane, and the sequential
// delivery loop commits the lanes in cover order -- byte-identical
// accounting to the single-threaded engine.
#ifndef SOCS_ENGINE_BPM_H_
#define SOCS_ENGINE_BPM_H_

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "core/background_maintenance.h"
#include "core/shared_scan.h"
#include "core/strategy.h"
#include "exec/task_scheduler.h"
#include "sim/io_lane.h"

namespace socs {

/// Engine-side handle for a column managed by an adaptive strategy over
/// [oid, value] pairs.
class SegmentedColumn {
 public:
  /// `sql_type` is the SQL-facing tail type of the column (kDbl, kFlt, ...).
  /// The strategy must manage OidValue elements; `space` is the strategy's
  /// segment space (used for the unmetered full-scan fallback).
  SegmentedColumn(std::string name, ValType sql_type,
                  std::unique_ptr<AccessStrategy<OidValue>> strategy,
                  SegmentSpace* space);

  const std::string& name() const { return name_; }
  ValType sql_type() const { return sql_type_; }
  AccessStrategy<OidValue>* strategy() { return strategy_.get(); }
  SegmentSpace* space() const { return space_; }
  const CostModel& cost_model() const;

  /// Disjoint segments covering the inclusive selection [lo, hi] (from a
  /// briefly pinned cover snapshot; under the shared latch for strategies
  /// that opted out of snapshot scans).
  std::vector<SegmentInfo> CoverSegments(double lo, double hi) const;

  /// Metered delivery of one covering segment as a BAT: one ScanSegment call
  /// charges the payload bytes exactly once, and the scan's metering (reads,
  /// seconds, qualifying count) is folded into `*ex`.
  /// The caller (the BPM iterator) already holds an epoch pin (or, for
  /// latch-discipline columns, the shared latch) -- see BpmIterator: the pin
  /// keeps every covered segment alive and pool-resident between deliveries
  /// while writers publish new covers concurrently.
  ///
  /// `mode` selects the delivery shape (the bpm.newIterator mode argument):
  ///   0 -- the raw full-segment [oid, value] BAT (the plan re-filters);
  ///   1 -- filtered [oid, value] pairs inside [lo, hi] (selection push-down
  ///        of algebra.select: the plan's body select is skipped);
  ///   2 -- filtered candidate oids as an oid list (push-down of
  ///        algebra.uselect).
  /// With a non-null `shared` pass (a dispatcher scan batch; modes 1-2 only),
  /// the filtered set is looked up in / published to the batch's cooperative
  /// cache under `consumer`'s registered predicate -- a hit replays the
  /// metered charge via ScanSegment's `precomputed` path without re-walking
  /// the payload. `epoch` is the iterator's *pinned* epoch, keying the
  /// shared cache so payloads filtered against an old cover are never served
  /// to a member pinned after a reorganization published (0 = no iterator,
  /// test/diagnostic callers without a shared pass).
  Bat ScanSegmentBat(const SegmentInfo& seg, double lo, double hi,
                     QueryExecution* ex, int mode = 0,
                     SharedScanPass<OidValue>* shared = nullptr,
                     size_t consumer = 0, uint64_t epoch = 0);

  /// Coalesced delivery (the cost-based plan choice for degenerate covers):
  /// every covering segment is scanned sequentially in cover order -- each
  /// through the same metered ScanSegment charge as per-segment delivery --
  /// and the rows land in ONE combined BAT, skipping the per-iteration
  /// barrier-loop overhead and the O(n^2) accumulator copies of bpm.addSegment.
  /// Byte-identical accounting and row order to draining the iterator.
  Bat ScanCoverBat(const std::vector<SegmentInfo>& cover, double lo, double hi,
                   QueryExecution* ex, int mode = 0,
                   SharedScanPass<OidValue>* shared = nullptr,
                   size_t consumer = 0, uint64_t epoch = 0);

  /// Off-thread delivery variant for the iterator prefetch: meters into
  /// `lane` (committed later, in delivery order, via CommitScanLane) and
  /// reports the scan record in `*scan` instead of folding it. Safe from
  /// pool workers: the dispatching iterator holds its epoch pin (or shared
  /// latch) for its whole lifetime (and the pool's queue handoff provides
  /// the happens-before edge from the pin acquisition).
  Bat PrefetchSegmentBat(const SegmentInfo& seg, double lo, double hi,
                         SegmentScan<OidValue>* scan, IoLane* lane,
                         int mode = 0,
                         SharedScanPass<OidValue>* shared = nullptr,
                         size_t consumer = 0, uint64_t epoch = 0);

  /// Merges one prefetch lane into the space's IoStats / buffer pool. The
  /// interpreter calls this in delivery (= cover) order, which keeps the
  /// parallel engine's accounting byte-identical to the sequential one.
  void CommitScanLane(IoLane* lane);

  /// Runs only the reorganizing module: the strategy's Reorganize phase,
  /// under the column's exclusive latch. Returns the adaptation half of the
  /// query's execution record.
  QueryExecution Reorganize(double lo, double hi);

  /// The write path (bpm.append): appends `values` as rows
  /// oid_base .. oid_base+n-1 through the strategy's Append phase (which
  /// takes the exclusive latch). The returned record carries only
  /// adaptation-side costs (write bytes, adaptation seconds), so an engine
  /// INSERT reports exactly what a direct core Append would.
  QueryExecution Append(const std::vector<double>& values, uint64_t oid_base);

  /// Requests one idle-maintenance pass for this column (deferred batch
  /// flushing) on the scheduler's background lane; the pass takes the
  /// exclusive latch and its record lands in the background ledger below,
  /// never in a query's last_execution. Gated on the scheduler's load
  /// watermark unless `force` (see BackgroundMaintenance::Schedule); the
  /// server's graceful shutdown forces a final pass so nothing stays pending.
  bool ScheduleIdleMaintenance(TaskScheduler* sched, bool force = false) {
    return maintenance_.Schedule(sched, force);
  }

  /// Background-ledger accessors: work done off the query path so far.
  QueryExecution background_execution() const { return maintenance_.total(); }
  uint64_t background_runs() const { return maintenance_.runs(); }
  uint64_t background_schedules() const { return maintenance_.schedules(); }
  uint64_t background_skips() const { return maintenance_.skips(); }

  /// True while the strategy still has reorganization work it could run off
  /// the query path (takes the exclusive latch briefly). After a graceful
  /// server stop this must be false for every column.
  bool HasPendingIdleWork() const {
    ExclusiveColumnGuard guard(strategy_->latch());
    return strategy_->HasIdleWork();
  }

  /// Whole column as a [oid, T] BAT (the fallback when a plan was not
  /// rewritten by the segment optimizer; unmetered).
  Bat FullScanBat() const;

  /// Planning estimate of a selection: covering-segment bytes and count.
  /// Drives the optimizer's footprint annotation and the cost-based plan
  /// choice (coalesced delivery when the cover degenerates to ~the column).
  struct SelectionEstimate {
    uint64_t bytes = 0;
    uint64_t segments = 0;
  };
  SelectionEstimate EstimateSelection(double lo, double hi) const;

  /// Estimated bytes a selection must touch (sum of covering segment sizes);
  /// used by the optimizer's footprint estimation.
  uint64_t EstimateSelectionBytes(double lo, double hi) const {
    return EstimateSelection(lo, hi).bytes;
  }

  /// Per-column encoding snapshot: logical vs physical bytes of the
  /// column's current segments plus a per-codec segment histogram. Feeds
  /// the server's `#compression` report; takes the shared latch.
  struct CompressionStats {
    uint64_t logical_bytes = 0;
    uint64_t physical_bytes = 0;
    // Secondary-store decode caches held for this column's live encoded
    // segments (full-decode reads; near zero with kernels on).
    uint64_t decode_cache_bytes = 0;
    uint64_t codec_segments[kNumSegmentCodecs] = {};
    double Ratio() const {
      return physical_bytes == 0
                 ? 1.0
                 : static_cast<double>(logical_bytes) /
                       static_cast<double>(physical_bytes);
    }
  };
  CompressionStats GetCompressionStats() const;

  /// Converts an inclusive SQL range to the core's half-open range.
  static ValueRange InclusiveToHalfOpen(double lo, double hi);

 private:
  /// Shared segment-to-BAT conversion: appends one payload span to the
  /// (oids, values) pair under construction. Callers reserve capacity.
  static void AppendSpan(std::span<const OidValue> span, std::vector<Oid>* oids,
                         TypedVector* values);

  /// Unlatched scan-to-BAT core shared by the sequential and prefetch paths.
  Bat ScanToBat(const SegmentInfo& seg, double lo, double hi,
                SegmentScan<OidValue>* scan, IoLane* lane, int mode,
                SharedScanPass<OidValue>* shared, size_t consumer,
                uint64_t epoch);

  /// Builds the push-down delivery BAT from a filtered qualifying set:
  /// mode 2 -> candidate oid list, mode 1 -> [oid, value] pairs.
  Bat FilteredBat(const std::vector<OidValue>& vals, int mode) const;

  std::string name_;
  ValType sql_type_;
  std::unique_ptr<AccessStrategy<OidValue>> strategy_;
  SegmentSpace* space_;
  BackgroundMaintenance<OidValue> maintenance_;
};

/// Iterator state for one barrier block instance. The iterator *pins the
/// column's published epoch from creation until exhaustion* (or
/// destruction): its segment cover is the pinned epoch's immutable snapshot,
/// so a concurrent writer (another query's Reorganize, an Append, a
/// background flush) publishes new structure without freeing or rewriting a
/// covered segment mid-iteration -- retired predecessors are reclaimed only
/// after the pin is released. Columns that opted out of snapshot scans
/// (cracking) fall back to holding the shared latch for the same window.
struct BpmIterator {
  SegmentedColumn* column = nullptr;
  std::vector<SegmentInfo> segments;
  size_t next = 0;
  double lo = 0.0, hi = 0.0;
  bool holds_latch = false;
  /// Epoch-pin state (the snapshot-scan read protocol).
  bool holds_pin = false;
  size_t pin_slot = 0;
  /// The pinned published epoch (under holds_latch: the live data epoch at
  /// Open). Keys the dispatcher's shared-scan cache for every delivery.
  uint64_t epoch = 0;
  /// Delivery mode of this iterator's segments (see ScanSegmentBat).
  int mode = 0;
  /// Cost-based plan choice: deliver the whole cover as ONE BAT in a single
  /// iteration (see ScanCoverBat) instead of one segment per iteration.
  bool coalesce = false;

  /// Prefetch slot: one covering segment scanned off-thread. The lane holds
  /// its deferred metering until the slot is delivered.
  struct Prefetched {
    Bat bat;
    SegmentScan<OidValue> scan;
    IoLane lane;
    std::future<void> ready;
  };
  /// Sized to segments.size() iff the interpreter dispatched this iterator
  /// through the pool; slot i corresponds to segments[i]. Slots are
  /// submitted a bounded window ahead of delivery (never the whole cover at
  /// once), so peak memory stays O(window), not O(column).
  std::vector<std::unique_ptr<Prefetched>> prefetch;
  size_t next_to_submit = 0;

  /// Pins the published epoch (or, for latch-discipline columns, acquires
  /// the shared latch) and plans the cover from the pinned snapshot.
  /// Constraint for hand-built MAL programs on latch-discipline columns:
  /// at most ONE open iterator per column per thread, drained before
  /// bpm.adapt / bpm.append on that column -- recursive shared locking is UB
  /// on writer-priority implementations. Optimizer-generated plans satisfy
  /// this by construction: each barrier loop drains before the next block.
  void Open(SegmentedColumn* col, double lo_incl, double hi_incl);
  /// Releases the epoch pin and/or shared latch (idempotent; called at
  /// exhaustion). Releasing the pin may reclaim retired segments this
  /// iterator was holding back.
  void ReleaseRead();
  /// Waits out any undelivered prefetch tasks (they write into the slots),
  /// then releases the pin/latch if still held.
  ~BpmIterator();
};

}  // namespace socs

#endif  // SOCS_ENGINE_BPM_H_
