#include "engine/bpm.h"

#include <cmath>
#include <limits>

namespace socs {

SegmentedColumn::SegmentedColumn(std::string name, ValType sql_type,
                                 std::unique_ptr<AccessStrategy<OidValue>> strategy,
                                 SegmentSpace* space)
    : name_(std::move(name)), sql_type_(sql_type), strategy_(std::move(strategy)),
      space_(space) {
  SOCS_CHECK(sql_type_ != ValType::kVoid);
}

ValueRange SegmentedColumn::InclusiveToHalfOpen(double lo, double hi) {
  return ValueRange(lo, std::nextafter(hi, std::numeric_limits<double>::infinity()));
}

std::vector<SegmentInfo> SegmentedColumn::CoverSegments(double lo, double hi) const {
  return strategy_->CoverSegments(InclusiveToHalfOpen(lo, hi));
}

Bat SegmentedColumn::SegmentBat(SegmentId id) const {
  auto span = space_->Peek<OidValue>(id);
  std::vector<Oid> oids;
  oids.reserve(span.size());
  TypedVector values(sql_type_);
  values.Reserve(span.size());
  for (const OidValue& v : span) {
    oids.push_back(v.oid);
    values.AppendDouble(v.value);
  }
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

QueryExecution SegmentedColumn::Adapt(double lo, double hi) {
  return strategy_->RunRange(InclusiveToHalfOpen(lo, hi), nullptr);
}

Bat SegmentedColumn::FullScanBat() const {
  std::vector<Oid> oids;
  TypedVector values(sql_type_);
  for (const SegmentInfo& s : strategy_->Segments()) {
    if (s.id == kInvalidSegment) continue;
    auto span = space_->Peek<OidValue>(s.id);
    for (const OidValue& v : span) {
      oids.push_back(v.oid);
      values.AppendDouble(v.value);
    }
  }
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

uint64_t SegmentedColumn::EstimateSelectionBytes(double lo, double hi) const {
  uint64_t bytes = 0;
  for (const SegmentInfo& s : CoverSegments(lo, hi)) {
    bytes += s.count * sizeof(OidValue);
  }
  return bytes;
}

}  // namespace socs
