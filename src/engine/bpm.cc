#include "engine/bpm.h"

#include <cmath>
#include <limits>

namespace socs {

SegmentedColumn::SegmentedColumn(std::string name, ValType sql_type,
                                 std::unique_ptr<AccessStrategy<OidValue>> strategy,
                                 SegmentSpace* space)
    : name_(std::move(name)), sql_type_(sql_type), strategy_(std::move(strategy)),
      space_(space) {
  SOCS_CHECK(sql_type_ != ValType::kVoid);
}

const CostModel& SegmentedColumn::cost_model() const { return space_->model(); }

ValueRange SegmentedColumn::InclusiveToHalfOpen(double lo, double hi) {
  return ValueRange(lo, std::nextafter(hi, std::numeric_limits<double>::infinity()));
}

std::vector<SegmentInfo> SegmentedColumn::CoverSegments(double lo, double hi) const {
  return strategy_->CoverSegments(InclusiveToHalfOpen(lo, hi));
}

void SegmentedColumn::AppendSpan(std::span<const OidValue> span,
                                 std::vector<Oid>* oids, TypedVector* values) {
  for (const OidValue& v : span) {
    oids->push_back(v.oid);
    values->AppendDouble(v.value);
  }
}

Bat SegmentedColumn::ScanSegmentBat(const SegmentInfo& seg, double lo, double hi,
                                    QueryExecution* ex) {
  SegmentScan<OidValue> scan =
      strategy_->ScanSegment(seg, InclusiveToHalfOpen(lo, hi), nullptr);
  if (ex != nullptr) {
    ex->read_bytes += scan.read_bytes;
    ex->result_count += scan.result_count;
    ex->selection_seconds += scan.seconds;
    if (scan.scanned) ++ex->segments_scanned;
  }
  std::vector<Oid> oids;
  oids.reserve(scan.payload.size());
  TypedVector values(sql_type_);
  values.Reserve(scan.payload.size());
  AppendSpan(scan.payload, &oids, &values);
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

QueryExecution SegmentedColumn::Reorganize(double lo, double hi) {
  return strategy_->Reorganize(InclusiveToHalfOpen(lo, hi));
}

QueryExecution SegmentedColumn::Append(const std::vector<double>& values,
                                       uint64_t oid_base) {
  std::vector<OidValue> pairs;
  pairs.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    pairs.push_back({oid_base + i, values[i]});
  }
  return strategy_->Append(pairs);
}

Bat SegmentedColumn::FullScanBat() const {
  const std::vector<SegmentInfo> segs = strategy_->Segments();
  uint64_t total = 0;
  for (const SegmentInfo& s : segs) {
    if (s.id != kInvalidSegment) total += s.count;
  }
  std::vector<Oid> oids;
  oids.reserve(total);
  TypedVector values(sql_type_);
  values.Reserve(total);
  for (const SegmentInfo& s : segs) {
    if (s.id == kInvalidSegment) continue;
    AppendSpan(space_->Peek<OidValue>(s.id), &oids, &values);
  }
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

uint64_t SegmentedColumn::EstimateSelectionBytes(double lo, double hi) const {
  uint64_t bytes = 0;
  for (const SegmentInfo& s : CoverSegments(lo, hi)) {
    bytes += s.count * sizeof(OidValue);
  }
  return bytes;
}

}  // namespace socs
