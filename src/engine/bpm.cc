#include "engine/bpm.h"

#include <cmath>
#include <limits>

namespace socs {

SegmentedColumn::SegmentedColumn(std::string name, ValType sql_type,
                                 std::unique_ptr<AccessStrategy<OidValue>> strategy,
                                 SegmentSpace* space)
    : name_(std::move(name)), sql_type_(sql_type), strategy_(std::move(strategy)),
      space_(space), maintenance_(strategy_.get()) {
  SOCS_CHECK(sql_type_ != ValType::kVoid);
}

const CostModel& SegmentedColumn::cost_model() const { return space_->model(); }

ValueRange SegmentedColumn::InclusiveToHalfOpen(double lo, double hi) {
  return ValueRange(lo, std::nextafter(hi, std::numeric_limits<double>::infinity()));
}

std::vector<SegmentInfo> SegmentedColumn::CoverSegments(double lo, double hi) const {
  SharedColumnGuard guard(strategy_->latch());
  return strategy_->CoverSegments(InclusiveToHalfOpen(lo, hi));
}

void SegmentedColumn::AppendSpan(std::span<const OidValue> span,
                                 std::vector<Oid>* oids, TypedVector* values) {
  for (const OidValue& v : span) {
    oids->push_back(v.oid);
    values->AppendDouble(v.value);
  }
}

Bat SegmentedColumn::FilteredBat(const std::vector<OidValue>& vals,
                                 int mode) const {
  std::vector<Oid> oids;
  oids.reserve(vals.size());
  if (mode == 2) {
    for (const OidValue& v : vals) oids.push_back(v.oid);
    return Bat::OidList(std::move(oids));
  }
  TypedVector values(sql_type_);
  values.Reserve(vals.size());
  AppendSpan(vals, &oids, &values);
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

Bat SegmentedColumn::ScanToBat(const SegmentInfo& seg, double lo, double hi,
                               SegmentScan<OidValue>* scan, IoLane* lane,
                               int mode, SharedScanPass<OidValue>* shared,
                               size_t consumer) {
  const ValueRange q = InclusiveToHalfOpen(lo, hi);
  if (mode == 0) {
    // Raw delivery: the plan's own select re-filters the full segment.
    *scan = strategy_->ScanSegment(seg, q, nullptr, lane);
    std::vector<Oid> oids;
    oids.reserve(scan->payload.size());
    TypedVector values(sql_type_);
    values.Reserve(scan->payload.size());
    AppendSpan(scan->payload, &oids, &values);
    return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
               BatColumn::Materialized(std::move(values)));
  }
  // Push-down delivery: the metered scan and the delivery filter are one
  // pass -- ScanSegment extracts the qualifying set we hand to the plan.
  if (shared != nullptr) {
    const typename SharedScanPass<OidValue>::SegKey key{
        seg.id, seg.range.lo, seg.range.hi, seg.count, strategy_->data_epoch()};
    if (std::shared_ptr<const std::vector<OidValue>> cached =
            shared->Lookup(key, consumer, q)) {
      // A batch predecessor already filtered this segment for our predicate:
      // replay the identical metered charge, skip the walk.
      *scan = strategy_->ScanSegment(seg, q, nullptr, lane, cached.get());
      return FilteredBat(*cached, mode);
    }
    auto mine = std::make_shared<std::vector<OidValue>>();
    *scan = strategy_->ScanSegment(seg, q, mine.get(), lane);
    if (scan->scanned) {
      // Predicate fan-out for the rest of the batch over the hot payload.
      shared->Publish(key, q, scan->payload, mine);
    }
    return FilteredBat(*mine, mode);
  }
  std::vector<OidValue> mine;
  *scan = strategy_->ScanSegment(seg, q, &mine, lane);
  return FilteredBat(mine, mode);
}

Bat SegmentedColumn::ScanSegmentBat(const SegmentInfo& seg, double lo, double hi,
                                    QueryExecution* ex, int mode,
                                    SharedScanPass<OidValue>* shared,
                                    size_t consumer) {
  // No latch here: the driving BpmIterator holds the shared latch for its
  // whole lifetime (see bpm.h), which also pins the cached cover.
  SegmentScan<OidValue> scan;
  Bat bat = ScanToBat(seg, lo, hi, &scan, nullptr, mode, shared, consumer);
  if (ex != nullptr) FoldScanIntoExecution(scan, ex);
  return bat;
}

Bat SegmentedColumn::PrefetchSegmentBat(const SegmentInfo& seg, double lo,
                                        double hi, SegmentScan<OidValue>* scan,
                                        IoLane* lane, int mode,
                                        SharedScanPass<OidValue>* shared,
                                        size_t consumer) {
  // No latch here either -- same contract as ScanSegmentBat.
  return ScanToBat(seg, lo, hi, scan, lane, mode, shared, consumer);
}

void SegmentedColumn::CommitScanLane(IoLane* lane) { space_->CommitLane(lane); }

QueryExecution SegmentedColumn::Reorganize(double lo, double hi) {
  ExclusiveColumnGuard guard(strategy_->latch());
  const QueryExecution r = strategy_->Reorganize(InclusiveToHalfOpen(lo, hi));
  strategy_->NoteReorganization(r);
  return r;
}

QueryExecution SegmentedColumn::Append(const std::vector<double>& values,
                                       uint64_t oid_base) {
  std::vector<OidValue> pairs;
  pairs.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    pairs.push_back({oid_base + i, values[i]});
  }
  return strategy_->Append(pairs);  // takes the exclusive latch
}

Bat SegmentedColumn::FullScanBat() const {
  SharedColumnGuard guard(strategy_->latch());
  const std::vector<SegmentInfo> segs = strategy_->Segments();
  uint64_t total = 0;
  for (const SegmentInfo& s : segs) {
    if (s.id != kInvalidSegment) total += s.count;
  }
  std::vector<Oid> oids;
  oids.reserve(total);
  TypedVector values(sql_type_);
  values.Reserve(total);
  for (const SegmentInfo& s : segs) {
    if (s.id == kInvalidSegment) continue;
    AppendSpan(space_->Peek<OidValue>(s.id), &oids, &values);
  }
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

uint64_t SegmentedColumn::EstimateSelectionBytes(double lo, double hi) const {
  uint64_t bytes = 0;
  for (const SegmentInfo& s : CoverSegments(lo, hi)) {
    bytes += s.count * sizeof(OidValue);
  }
  return bytes;
}

void BpmIterator::Open(SegmentedColumn* col, double lo_incl, double hi_incl) {
  column = col;
  lo = lo_incl;
  hi = hi_incl;
  // Hold the shared latch until exhaustion: the cover computed here stays
  // valid across deliveries (no exclusive-latch holder can free or rewrite
  // a covered segment mid-iteration), and the prefetch tasks inherit the
  // protection without taking the latch themselves.
  column->strategy()->latch().LockShared();
  holds_latch = true;
  segments = column->strategy()->CoverSegments(
      SegmentedColumn::InclusiveToHalfOpen(lo_incl, hi_incl));
}

void BpmIterator::ReleaseLatch() {
  if (!holds_latch) return;
  holds_latch = false;
  column->strategy()->latch().UnlockShared();
}

BpmIterator::~BpmIterator() {
  for (auto& slot : prefetch) {
    if (slot != nullptr && slot->ready.valid()) slot->ready.wait();
  }
  ReleaseLatch();
}

}  // namespace socs
