#include "engine/bpm.h"

#include <cmath>
#include <limits>

namespace socs {

SegmentedColumn::SegmentedColumn(std::string name, ValType sql_type,
                                 std::unique_ptr<AccessStrategy<OidValue>> strategy,
                                 SegmentSpace* space)
    : name_(std::move(name)), sql_type_(sql_type), strategy_(std::move(strategy)),
      space_(space), maintenance_(strategy_.get()) {
  SOCS_CHECK(sql_type_ != ValType::kVoid);
}

const CostModel& SegmentedColumn::cost_model() const { return space_->model(); }

ValueRange SegmentedColumn::InclusiveToHalfOpen(double lo, double hi) {
  return ValueRange(lo, std::nextafter(hi, std::numeric_limits<double>::infinity()));
}

std::vector<SegmentInfo> SegmentedColumn::CoverSegments(double lo, double hi) const {
  const ValueRange q = InclusiveToHalfOpen(lo, hi);
  if (strategy_->snapshot_scans()) {
    size_t slot = 0;
    const std::shared_ptr<const ColumnCover> cover = strategy_->PinCover(&slot);
    std::vector<SegmentInfo> out = cover->Cover(q);
    strategy_->UnpinCover(slot);
    return out;
  }
  SharedColumnGuard guard(strategy_->latch());
  return strategy_->CoverSegments(q);
}

void SegmentedColumn::AppendSpan(std::span<const OidValue> span,
                                 std::vector<Oid>* oids, TypedVector* values) {
  for (const OidValue& v : span) {
    oids->push_back(v.oid);
    values->AppendDouble(v.value);
  }
}

Bat SegmentedColumn::FilteredBat(const std::vector<OidValue>& vals,
                                 int mode) const {
  std::vector<Oid> oids;
  oids.reserve(vals.size());
  if (mode == 2) {
    for (const OidValue& v : vals) oids.push_back(v.oid);
    return Bat::OidList(std::move(oids));
  }
  TypedVector values(sql_type_);
  values.Reserve(vals.size());
  AppendSpan(vals, &oids, &values);
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

Bat SegmentedColumn::ScanToBat(const SegmentInfo& seg, double lo, double hi,
                               SegmentScan<OidValue>* scan, IoLane* lane,
                               int mode, SharedScanPass<OidValue>* shared,
                               size_t consumer, uint64_t epoch) {
  const ValueRange q = InclusiveToHalfOpen(lo, hi);
  if (mode == 0) {
    // Raw delivery: the plan's own select re-filters the full segment.
    *scan = strategy_->ScanSegment(seg, q, nullptr, lane);
    std::vector<Oid> oids;
    oids.reserve(scan->payload.size());
    TypedVector values(sql_type_);
    values.Reserve(scan->payload.size());
    AppendSpan(scan->payload, &oids, &values);
    return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
               BatColumn::Materialized(std::move(values)));
  }
  // Push-down delivery: the metered scan and the delivery filter are one
  // pass -- ScanSegment extracts the qualifying set we hand to the plan.
  if (shared != nullptr) {
    // Keyed by the iterator's PINNED epoch, never the live data_epoch(): a
    // writer may publish mid-iteration, and an old-cover payload cached
    // under the new epoch would serve stale rows to a member pinned later.
    // Cracking pieces carry kInvalidSegment (payloads live outside the
    // space), so they have no codec to key on.
    const typename SharedScanPass<OidValue>::SegKey key{
        seg.id, seg.range.lo, seg.range.hi, seg.count, epoch,
        seg.id == kInvalidSegment
            ? uint8_t{0}
            : static_cast<uint8_t>(space_->CodecOf(seg.id))};
    if (std::shared_ptr<const std::vector<OidValue>> cached =
            shared->Lookup(key, consumer, q)) {
      // A batch predecessor already filtered this segment for our predicate:
      // replay the identical metered charge, skip the walk.
      *scan = strategy_->ScanSegment(seg, q, nullptr, lane, cached.get());
      return FilteredBat(*cached, mode);
    }
    auto mine = std::make_shared<std::vector<OidValue>>();
    *scan = strategy_->ScanSegment(seg, q, mine.get(), lane);
    if (scan->scanned) {
      if (!scan->payload.empty() || seg.count == 0) {
        // Predicate fan-out for the rest of the batch over the hot payload.
        shared->Publish(key, q, scan->payload, mine);
      } else {
        // Kernel scan: no payload was materialized. Siblings' qualifying
        // sets come from unmetered refilters of the encoded blob; their
        // metered charges replay at their own deliveries as always.
        shared->PublishWithFilter(
            key, q, mine,
            [this, &seg](const ValueRange& r, std::vector<OidValue>* out) {
              space_->PeekFiltered<OidValue>(seg.id, r.lo, r.hi, out);
            });
      }
    }
    return FilteredBat(*mine, mode);
  }
  // Per-worker scratch arena: the hot-column workloads hit this path once
  // per segment per query per client, and a fresh vector each time is an
  // allocation storm. The shared-path `mine` above must NOT use it -- that
  // buffer escapes into the batch cache.
  thread_local std::vector<OidValue> scratch;
  scratch.clear();
  *scan = strategy_->ScanSegment(seg, q, &scratch, lane);
  return FilteredBat(scratch, mode);
}

Bat SegmentedColumn::ScanSegmentBat(const SegmentInfo& seg, double lo, double hi,
                                    QueryExecution* ex, int mode,
                                    SharedScanPass<OidValue>* shared,
                                    size_t consumer, uint64_t epoch) {
  // No latch here: the driving BpmIterator holds its epoch pin (or shared
  // latch) for its whole lifetime (see bpm.h), keeping the cover scannable.
  SegmentScan<OidValue> scan;
  Bat bat = ScanToBat(seg, lo, hi, &scan, nullptr, mode, shared, consumer, epoch);
  if (ex != nullptr) FoldScanIntoExecution(scan, ex);
  return bat;
}

Bat SegmentedColumn::ScanCoverBat(const std::vector<SegmentInfo>& cover,
                                  double lo, double hi, QueryExecution* ex,
                                  int mode, SharedScanPass<OidValue>* shared,
                                  size_t consumer, uint64_t epoch) {
  const ValueRange q = InclusiveToHalfOpen(lo, hi);
  if (mode == 0) {
    // Raw coalesced delivery: every payload lands in one [oid, value] BAT,
    // reserved once (the per-iteration path re-copies the accumulator on
    // every bpm.addSegment).
    uint64_t total = 0;
    for (const SegmentInfo& s : cover) total += s.count;
    std::vector<Oid> oids;
    oids.reserve(total);
    TypedVector values(sql_type_);
    values.Reserve(total);
    for (const SegmentInfo& seg : cover) {
      SegmentScan<OidValue> scan = strategy_->ScanSegment(seg, q, nullptr);
      AppendSpan(scan.payload, &oids, &values);
      if (ex != nullptr) FoldScanIntoExecution(scan, ex);
    }
    return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
               BatColumn::Materialized(std::move(values)));
  }
  // Push-down coalesced delivery: the per-segment metered charges and the
  // shared-cache interplay are identical to per-iteration delivery; only the
  // qualifying rows are concatenated into one BAT.
  std::vector<OidValue> all;
  for (const SegmentInfo& seg : cover) {
    SegmentScan<OidValue> scan;
    if (shared != nullptr) {
      const typename SharedScanPass<OidValue>::SegKey key{
          seg.id, seg.range.lo, seg.range.hi, seg.count, epoch,
          seg.id == kInvalidSegment
              ? uint8_t{0}
              : static_cast<uint8_t>(space_->CodecOf(seg.id))};
      if (std::shared_ptr<const std::vector<OidValue>> cached =
              shared->Lookup(key, consumer, q)) {
        scan = strategy_->ScanSegment(seg, q, nullptr, nullptr, cached.get());
        all.insert(all.end(), cached->begin(), cached->end());
      } else {
        auto mine = std::make_shared<std::vector<OidValue>>();
        scan = strategy_->ScanSegment(seg, q, mine.get(), nullptr);
        if (scan.scanned) {
          if (!scan.payload.empty() || seg.count == 0) {
            shared->Publish(key, q, scan.payload, mine);
          } else {
            shared->PublishWithFilter(
                key, q, mine,
                [this, &seg](const ValueRange& r, std::vector<OidValue>* out) {
                  space_->PeekFiltered<OidValue>(seg.id, r.lo, r.hi, out);
                });
          }
        }
        all.insert(all.end(), mine->begin(), mine->end());
      }
    } else {
      scan = strategy_->ScanSegment(seg, q, &all, nullptr);
    }
    if (ex != nullptr) FoldScanIntoExecution(scan, ex);
  }
  return FilteredBat(all, mode);
}

Bat SegmentedColumn::PrefetchSegmentBat(const SegmentInfo& seg, double lo,
                                        double hi, SegmentScan<OidValue>* scan,
                                        IoLane* lane, int mode,
                                        SharedScanPass<OidValue>* shared,
                                        size_t consumer, uint64_t epoch) {
  // No latch here either -- same contract as ScanSegmentBat.
  return ScanToBat(seg, lo, hi, scan, lane, mode, shared, consumer, epoch);
}

void SegmentedColumn::CommitScanLane(IoLane* lane) { space_->CommitLane(lane); }

QueryExecution SegmentedColumn::Reorganize(double lo, double hi) {
  ExclusiveColumnGuard guard(strategy_->latch());
  const QueryExecution r = strategy_->Reorganize(InclusiveToHalfOpen(lo, hi));
  strategy_->NoteReorganization(r);
  return r;
}

QueryExecution SegmentedColumn::Append(const std::vector<double>& values,
                                       uint64_t oid_base) {
  std::vector<OidValue> pairs;
  pairs.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    pairs.push_back({oid_base + i, values[i]});
  }
  return strategy_->Append(pairs);  // takes the exclusive latch
}

Bat SegmentedColumn::FullScanBat() const {
  SharedColumnGuard guard(strategy_->latch());
  const std::vector<SegmentInfo> segs = strategy_->Segments();
  uint64_t total = 0;
  for (const SegmentInfo& s : segs) {
    if (s.id != kInvalidSegment) total += s.count;
  }
  std::vector<Oid> oids;
  oids.reserve(total);
  TypedVector values(sql_type_);
  values.Reserve(total);
  for (const SegmentInfo& s : segs) {
    if (s.id == kInvalidSegment) continue;
    AppendSpan(space_->Peek<OidValue>(s.id), &oids, &values);
  }
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Materialized(std::move(values)));
}

SegmentedColumn::SelectionEstimate SegmentedColumn::EstimateSelection(
    double lo, double hi) const {
  SelectionEstimate est;
  for (const SegmentInfo& s : CoverSegments(lo, hi)) {
    // Physical bytes: a scan of an encoded segment moves the encoded payload
    // through the pool (decode CPU is charged separately), so the optimizer
    // should see the post-codec transfer volume. Cracking pieces live
    // outside the space -- their transfer is the logical piece size.
    est.bytes += s.id == kInvalidSegment ? s.count * sizeof(OidValue)
                                         : space_->PhysicalSizeOf(s.id);
    ++est.segments;
  }
  return est;
}

SegmentedColumn::CompressionStats SegmentedColumn::GetCompressionStats() const {
  SharedColumnGuard guard(strategy_->latch());
  CompressionStats cs;
  for (const SegmentInfo& s : strategy_->Segments()) {
    if (s.id == kInvalidSegment) {
      // Cracking pieces live outside the space and are always raw.
      const uint64_t b = s.count * sizeof(OidValue);
      cs.logical_bytes += b;
      cs.physical_bytes += b;
      ++cs.codec_segments[static_cast<size_t>(SegmentCodec::kRaw)];
      continue;
    }
    cs.logical_bytes += space_->LogicalSizeOf(s.id);
    cs.physical_bytes += space_->PhysicalSizeOf(s.id);
    cs.decode_cache_bytes += space_->DecodedCacheBytesOf(s.id);
    ++cs.codec_segments[static_cast<size_t>(space_->CodecOf(s.id))];
  }
  return cs;
}

void BpmIterator::Open(SegmentedColumn* col, double lo_incl, double hi_incl) {
  column = col;
  lo = lo_incl;
  hi = hi_incl;
  AccessStrategy<OidValue>* strat = column->strategy();
  const ValueRange q = SegmentedColumn::InclusiveToHalfOpen(lo_incl, hi_incl);
  if (strat->snapshot_scans()) {
    // Pin the published epoch until exhaustion: the cover planned here is an
    // immutable snapshot, and every segment it references stays alive (and
    // pool-resident) until ReleaseRead -- writers publish successor covers
    // concurrently without disturbing the deliveries. Prefetch tasks inherit
    // the protection without pinning themselves.
    const std::shared_ptr<const ColumnCover> cover = strat->PinCover(&pin_slot);
    holds_pin = true;
    epoch = cover->epoch();
    segments = cover->Cover(q);
    return;
  }
  // Latch-discipline column (cracking): hold the shared latch until
  // exhaustion so no exclusive-latch holder can rewrite covered state
  // mid-iteration.
  strat->latch().LockShared();
  holds_latch = true;
  epoch = strat->data_epoch();
  segments = strat->CoverSegments(q);
}

void BpmIterator::ReleaseRead() {
  if (holds_pin) {
    holds_pin = false;
    column->strategy()->UnpinCover(pin_slot);
  }
  if (holds_latch) {
    holds_latch = false;
    column->strategy()->latch().UnlockShared();
  }
}

BpmIterator::~BpmIterator() {
  for (auto& slot : prefetch) {
    if (slot != nullptr && slot->ready.valid()) slot->ready.wait();
  }
  ReleaseRead();
}

}  // namespace socs
