// MAL-like plan representation (paper section 2): a MonetDB Assembly
// Language program is a linear sequence of instructions over single-
// assignment variables, with guarded blocks (barrier/redo/exit) for
// iteration -- exactly the constructs the paper's segment optimizer emits.
#ifndef SOCS_ENGINE_MAL_PROGRAM_H_
#define SOCS_ENGINE_MAL_PROGRAM_H_

#include <string>
#include <vector>

namespace socs {

struct MalArg {
  enum class Kind { kVar, kNum, kStr };
  Kind kind = Kind::kVar;
  int var = -1;
  double num = 0.0;
  std::string str;

  static MalArg Var(int id) {
    MalArg a;
    a.kind = Kind::kVar;
    a.var = id;
    return a;
  }
  static MalArg Num(double v) {
    MalArg a;
    a.kind = Kind::kNum;
    a.num = v;
    return a;
  }
  static MalArg Str(std::string s) {
    MalArg a;
    a.kind = Kind::kStr;
    a.str = std::move(s);
    return a;
  }
};

struct MalInstr {
  enum class Kind {
    kAssign,   // ret := module.op(args)
    kBarrier,  // barrier ret := module.op(args)   enter block if non-nil
    kRedo,     // redo ret := module.op(args)      loop back if non-nil
    kExit,     // exit ret                          block end marker
  };
  Kind kind = Kind::kAssign;
  std::string module;
  std::string op;
  std::vector<int> rets;     // assigned variables (usually one)
  std::vector<MalArg> args;

  bool Is(const std::string& m, const std::string& o) const {
    return module == m && op == o;
  }
};

class MalProgram {
 public:
  /// Creates a fresh variable; `hint` seeds the display name (X1, Y2, ...).
  int NewVar(const std::string& hint = "X");

  size_t NumVars() const { return var_names_.size(); }
  const std::string& VarName(int id) const { return var_names_[id]; }

  /// Pretty-prints in the style of the paper's Figure 1.
  std::string ToString() const;

  std::vector<MalInstr> instrs;

 private:
  std::vector<std::string> var_names_;
};

}  // namespace socs

#endif  // SOCS_ENGINE_MAL_PROGRAM_H_
