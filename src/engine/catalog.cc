#include "engine/catalog.h"

namespace socs {

Status Catalog::CheckRowCount(TableEntry& t, uint64_t rows,
                              const std::string& what) {
  if (t.rows_known && t.rows != rows) {
    return Status::InvalidArgument(what + ": row count " + std::to_string(rows) +
                                   " != table's " + std::to_string(t.rows));
  }
  t.rows = rows;
  t.rows_known = true;
  return Status::OK();
}

Status Catalog::AddColumn(const std::string& table, const std::string& column,
                          TypedVector values) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  TableEntry& t = tables_[table];
  if (t.columns.count(column)) {
    return Status::AlreadyExists(table + "." + column);
  }
  SOCS_RETURN_IF_ERROR(CheckRowCount(t, values.size(), table + "." + column));
  ColumnEntry e;
  e.segmented = false;
  e.plain = std::move(values);
  t.columns.emplace(column, std::move(e));
  t.column_order.push_back(column);
  return Status::OK();
}

Status Catalog::AddSegmentedColumn(const std::string& table,
                                   const std::string& column,
                                   std::unique_ptr<SegmentedColumn> sc) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  TableEntry& t = tables_[table];
  if (t.columns.count(column)) {
    return Status::AlreadyExists(table + "." + column);
  }
  // Registration happens right after construction, when the strategy holds a
  // single segment per value: covering segments partition the domain.
  uint64_t rows = 0;
  for (const SegmentInfo& s :
       sc->strategy()->CoverSegments(ValueRange(-1e300, 1e300))) {
    rows += s.count;
  }
  SOCS_RETURN_IF_ERROR(CheckRowCount(t, rows, table + "." + column));
  ColumnEntry e;
  e.segmented = true;
  e.seg = std::move(sc);
  seg_handles_[SegHandle(table, column)] = e.seg.get();
  t.columns.emplace(column, std::move(e));
  t.column_order.push_back(column);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return tables_.count(table) > 0;
}

bool Catalog::HasColumn(const std::string& table, const std::string& column) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  return it != tables_.end() && it->second.columns.count(column) > 0;
}

bool Catalog::IsSegmented(const std::string& table, const std::string& column) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return false;
  auto cit = it->second.columns.find(column);
  return cit != it->second.columns.end() && cit->second.segmented;
}

StatusOr<Bat> Catalog::Bind(const std::string& table,
                            const std::string& column) const {
  SegmentedColumn* seg = nullptr;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("table " + table);
    auto cit = it->second.columns.find(column);
    if (cit == it->second.columns.end()) {
      return Status::NotFound(table + "." + column);
    }
    // Plain columns snapshot under the catalog mutex (DenseTyped copies the
    // payload AppendPlain mutates), so the returned BAT is immune to later
    // appends.
    if (!cit->second.segmented) return Bat::DenseTyped(cit->second.plain);
    seg = cit->second.seg.get();
  }
  // Segmented columns materialize OUTSIDE the catalog mutex -- the column
  // pointer is stable for the catalog's lifetime and FullScanBat snapshots
  // under the column's own latch, which can wait behind a background flush;
  // holding mu_ across that would stall every concurrent INSERT commit.
  return seg->FullScanBat();
}

StatusOr<SegmentedColumn*> Catalog::GetSegmented(const std::string& handle) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = seg_handles_.find(handle);
  if (it == seg_handles_.end()) {
    return Status::NotFound("segmented column " + handle);
  }
  return it->second;
}

SegmentedColumn* Catalog::GetSegmentedOrNull(const std::string& table,
                                             const std::string& column) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = seg_handles_.find(SegHandle(table, column));
  return it == seg_handles_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::ColumnNames(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  return it->second.column_order;
}

std::vector<SegmentedColumn*> Catalog::SegmentedColumns() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<SegmentedColumn*> out;
  out.reserve(seg_handles_.size());
  for (const auto& [handle, col] : seg_handles_) out.push_back(col);
  return out;
}

std::unique_lock<std::mutex> Catalog::LockTableWrites(const std::string& table) {
  std::mutex* mu = nullptr;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = tables_.find(table);
    if (it != tables_.end()) mu = it->second.write_mu.get();
  }
  if (mu == nullptr) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(*mu);
}

Status Catalog::AppendPlain(const std::string& table, const std::string& column,
                            const std::vector<double>& values) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  auto cit = it->second.columns.find(column);
  if (cit == it->second.columns.end()) {
    return Status::NotFound(table + "." + column);
  }
  if (cit->second.segmented) {
    return Status::InvalidArgument(table + "." + column +
                                   " is segmented; append through bpm.append");
  }
  for (double v : values) cit->second.plain.AppendDouble(v);
  return Status::OK();
}

Status Catalog::Grow(const std::string& table, uint64_t delta) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  if (!it->second.rows_known) {
    return Status::FailedPrecondition("table " + table + " has no columns");
  }
  it->second.rows += delta;
  return Status::OK();
}

StatusOr<uint64_t> Catalog::RowCount(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  return it->second.rows;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

StatusOr<TypedVector> Catalog::PlainColumn(const std::string& table,
                                           const std::string& column) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  auto cit = it->second.columns.find(column);
  if (cit == it->second.columns.end()) {
    return Status::NotFound(table + "." + column);
  }
  if (cit->second.segmented) {
    return Status::InvalidArgument(table + "." + column + " is segmented");
  }
  return cit->second.plain;
}

}  // namespace socs
