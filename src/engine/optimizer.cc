#include "engine/optimizer.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "engine/segment_optimizer.h"

namespace socs {

Status PassManager::Run(MalProgram* prog, OptContext* ctx) {
  for (auto& pass : passes_) {
    SOCS_RETURN_IF_ERROR(pass->Apply(prog, ctx));
  }
  return Status::OK();
}

bool DeadCodeElimPass::HasSideEffects(const MalInstr& in) {
  if (in.rets.empty()) return true;  // statement-position call
  if (in.module == "sql" && (in.op == "rsColumn" || in.op == "exportResult")) {
    return true;
  }
  if (in.module == "bpm" &&
      (in.op == "addSegment" || in.op == "adapt" || in.op == "append")) {
    return true;
  }
  if (in.module == "sql" && (in.op == "append" || in.op == "grow")) {
    return true;
  }
  if (in.module == "io") return true;
  return false;
}

Status DeadCodeElimPass::Apply(MalProgram* prog, OptContext* ctx) {
  (void)ctx;
  std::unordered_set<int> used;
  std::vector<bool> keep(prog->instrs.size(), false);
  for (size_t i = prog->instrs.size(); i-- > 0;) {
    const MalInstr& in = prog->instrs[i];
    bool live = in.kind != MalInstr::Kind::kAssign || HasSideEffects(in);
    for (int r : in.rets) {
      if (used.count(r)) live = true;
    }
    if (!live) continue;
    keep[i] = true;
    for (const MalArg& a : in.args) {
      if (a.kind == MalArg::Kind::kVar) used.insert(a.var);
    }
  }
  std::vector<MalInstr> out;
  out.reserve(prog->instrs.size());
  for (size_t i = 0; i < prog->instrs.size(); ++i) {
    if (keep[i]) out.push_back(std::move(prog->instrs[i]));
  }
  prog->instrs = std::move(out);
  return Status::OK();
}

namespace {

/// Resolves a bpm.newIterator instruction (with numeric bounds) back to its
/// segmented column through the def-map of bpm.take handles. Returns nullptr
/// when the shape does not match.
SegmentedColumn* ResolveIteratorColumn(
    const MalInstr& in, const std::unordered_map<int, const MalInstr*>& def,
    Catalog* catalog) {
  if (!in.Is("bpm", "newIterator") || in.args.size() < 3) return nullptr;
  if (in.args[0].kind != MalArg::Kind::kVar) return nullptr;
  auto dit = def.find(in.args[0].var);
  if (dit == def.end() || !dit->second->Is("bpm", "take")) return nullptr;
  if (dit->second->args.empty() ||
      dit->second->args[0].kind != MalArg::Kind::kStr) {
    return nullptr;
  }
  if (in.args[1].kind != MalArg::Kind::kNum ||
      in.args[2].kind != MalArg::Kind::kNum) {
    return nullptr;
  }
  auto col = catalog->GetSegmented(dit->second->args[0].str);
  if (!col.ok()) return nullptr;
  return col.value();
}

std::unordered_map<int, const MalInstr*> BuildDefMap(const MalProgram& prog) {
  std::unordered_map<int, const MalInstr*> def;
  for (const MalInstr& in : prog.instrs) {
    for (int r : in.rets) def[r] = &in;
  }
  return def;
}

}  // namespace

Status EstimateFootprintPass::Apply(MalProgram* prog, OptContext* ctx) {
  if (ctx->catalog == nullptr) return Status::OK();
  const auto def = BuildDefMap(*prog);
  for (const MalInstr& in : prog->instrs) {
    SegmentedColumn* col = ResolveIteratorColumn(in, def, ctx->catalog);
    if (col == nullptr) continue;
    ctx->estimated_scan_bytes +=
        col->EstimateSelectionBytes(in.args[1].num, in.args[2].num);
  }
  return Status::OK();
}

Status PlanChoicePass::Apply(MalProgram* prog, OptContext* ctx) {
  if (ctx->catalog == nullptr) return Status::OK();
  const auto def = BuildDefMap(*prog);
  for (MalInstr& in : prog->instrs) {
    SegmentedColumn* col = ResolveIteratorColumn(in, def, ctx->catalog);
    if (col == nullptr) continue;
    // Only annotate the canonical 4-arg shape the segment optimizer emits
    // (col, lo, hi, mode); hand-built programs keep their own arity.
    if (in.args.size() != 4) continue;
    const SegmentedColumn::SelectionEstimate est =
        col->EstimateSelection(in.args[1].num, in.args[2].num);
    const SegmentedColumn::SelectionEstimate total = col->EstimateSelection(
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity());
    if (total.bytes == 0 || est.segments < kMinCoverSegments) continue;
    if (static_cast<double>(est.bytes) <
        kCoalesceFraction * static_cast<double>(total.bytes)) {
      continue;
    }
    in.args.push_back(MalArg::Num(1));  // 5th arg: coalesced delivery
    ++coalesced_;
  }
  return Status::OK();
}

PassManager MakeDefaultPipeline() {
  PassManager pm;
  pm.Add(std::make_unique<SegmentOptimizerPass>());
  pm.Add(std::make_unique<EstimateFootprintPass>());
  pm.Add(std::make_unique<PlanChoicePass>());
  pm.Add(std::make_unique<DeadCodeElimPass>());
  return pm;
}

}  // namespace socs
