#include "engine/segment_optimizer.h"

#include <unordered_map>

namespace socs {

namespace {

/// Returns the (table, column) of a sql.bind instruction, or nullopt-like
/// empty strings when the shape does not match.
bool BindTarget(const MalInstr& in, std::string* table, std::string* column) {
  if (!in.Is("sql", "bind") || in.args.size() < 3) return false;
  if (in.args[1].kind != MalArg::Kind::kStr ||
      in.args[2].kind != MalArg::Kind::kStr) {
    return false;
  }
  *table = in.args[1].str;
  *column = in.args[2].str;
  return true;
}

}  // namespace

Status SegmentOptimizerPass::Apply(MalProgram* prog, OptContext* ctx) {
  rewrites_ = 0;
  if (ctx->catalog == nullptr) return Status::OK();

  std::unordered_map<int, size_t> def;  // var -> defining instr index
  for (size_t i = 0; i < prog->instrs.size(); ++i) {
    for (int r : prog->instrs[i].rets) def[r] = i;
  }

  std::vector<MalInstr> out;
  out.reserve(prog->instrs.size() + 8);

  for (size_t i = 0; i < prog->instrs.size(); ++i) {
    const MalInstr in = prog->instrs[i];
    const bool is_select =
        in.kind == MalInstr::Kind::kAssign &&
        (in.Is("algebra", "select") || in.Is("algebra", "uselect")) &&
        !in.args.empty() && in.args[0].kind == MalArg::Kind::kVar &&
        in.args.size() >= 3;
    if (!is_select) {
      out.push_back(in);
      continue;
    }
    auto dit = def.find(in.args[0].var);
    std::string table, column;
    if (dit == def.end() ||
        !BindTarget(prog->instrs[dit->second], &table, &column) ||
        !ctx->catalog->IsSegmented(table, column)) {
      out.push_back(in);
      continue;
    }

    // Rewrite into the segment-aware iterator sequence (paper section 3.1).
    const std::string handle = Catalog::SegHandle(table, column);
    const MalArg lo = in.args[1];
    const MalArg hi = in.args[2];
    std::vector<MalArg> bound_args;  // (lo, hi [, incl flags]) pass-through
    for (size_t a = 1; a < in.args.size(); ++a) bound_args.push_back(in.args[a]);

    const int y1 = prog->NewVar("Y");
    const int result = in.rets[0];  // the accumulator takes the select's var
    const int rseg = prog->NewVar("rseg");
    const int t1 = prog->NewVar("T");

    MalInstr take;
    take.module = "bpm";
    take.op = "take";
    take.rets = {y1};
    take.args = {MalArg::Str(handle)};
    out.push_back(take);

    MalInstr mknew;
    mknew.module = "bpm";
    mknew.op = "new";
    mknew.rets = {result};
    out.push_back(mknew);

    MalInstr barrier;
    barrier.kind = MalInstr::Kind::kBarrier;
    barrier.module = "bpm";
    barrier.op = "newIterator";
    barrier.rets = {rseg};
    barrier.args = {MalArg::Var(y1), lo, hi};
    out.push_back(barrier);

    MalInstr body = in;  // same select op and bound args, over the segment
    body.rets = {t1};
    body.args.clear();
    body.args.push_back(MalArg::Var(rseg));
    for (const MalArg& a : bound_args) body.args.push_back(a);
    out.push_back(body);

    MalInstr add;
    add.module = "bpm";
    add.op = "addSegment";
    add.args = {MalArg::Var(result), MalArg::Var(t1)};
    out.push_back(add);

    MalInstr redo;
    redo.kind = MalInstr::Kind::kRedo;
    redo.module = "bpm";
    redo.op = "hasMoreElements";
    redo.rets = {rseg};
    redo.args = {MalArg::Var(y1), lo, hi};
    out.push_back(redo);

    MalInstr exit_i;
    exit_i.kind = MalInstr::Kind::kExit;
    exit_i.rets = {rseg};
    out.push_back(exit_i);

    MalInstr adapt;
    adapt.module = "bpm";
    adapt.op = "adapt";
    adapt.args = {MalArg::Var(y1), lo, hi};
    out.push_back(adapt);

    ++rewrites_;
  }

  prog->instrs = std::move(out);
  return Status::OK();
}

}  // namespace socs
