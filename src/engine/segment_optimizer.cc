#include "engine/segment_optimizer.h"

#include <unordered_map>

namespace socs {

namespace {

/// Returns the (table, column) of a sql.bind instruction, or nullopt-like
/// empty strings when the shape does not match.
bool BindTarget(const MalInstr& in, std::string* table, std::string* column) {
  if (!in.Is("sql", "bind") || in.args.size() < 3) return false;
  if (in.args[1].kind != MalArg::Kind::kStr ||
      in.args[2].kind != MalArg::Kind::kStr) {
    return false;
  }
  *table = in.args[1].str;
  *column = in.args[2].str;
  return true;
}

}  // namespace

Status SegmentOptimizerPass::Apply(MalProgram* prog, OptContext* ctx) {
  rewrites_ = 0;
  if (ctx->catalog == nullptr) return Status::OK();

  std::unordered_map<int, size_t> def;  // var -> defining instr index
  for (size_t i = 0; i < prog->instrs.size(); ++i) {
    for (int r : prog->instrs[i].rets) def[r] = i;
  }

  std::vector<MalInstr> out;
  out.reserve(prog->instrs.size() + 8);

  for (size_t i = 0; i < prog->instrs.size(); ++i) {
    const MalInstr in = prog->instrs[i];
    const bool is_select =
        in.kind == MalInstr::Kind::kAssign &&
        (in.Is("algebra", "select") || in.Is("algebra", "uselect")) &&
        !in.args.empty() && in.args[0].kind == MalArg::Kind::kVar &&
        in.args.size() >= 3;
    if (!is_select) {
      out.push_back(in);
      continue;
    }
    auto dit = def.find(in.args[0].var);
    std::string table, column;
    if (dit == def.end() ||
        !BindTarget(prog->instrs[dit->second], &table, &column) ||
        !ctx->catalog->IsSegmented(table, column)) {
      out.push_back(in);
      continue;
    }

    // Rewrite into the segment-aware iterator sequence (paper section 3.1).
    const std::string handle = Catalog::SegHandle(table, column);
    const MalArg lo = in.args[1];
    const MalArg hi = in.args[2];
    std::vector<MalArg> bound_args;  // (lo, hi [, incl flags]) pass-through
    for (size_t a = 1; a < in.args.size(); ++a) bound_args.push_back(in.args[a]);

    // Selection push-down: when the bounds are plainly inclusive (the 3-arg
    // form, or literal non-zero inclusive flags) and the column's SQL type
    // is double (filtered delivery compares raw doubles; other tail types
    // re-compare post-truncation values in the body select), ask the
    // iterator for filtered delivery and drop the MAL-side re-filter: mode 2
    // (candidate oids) for uselect, mode 1 ([oid,value] pairs) for select.
    const bool inclusive =
        in.args.size() == 3 ||
        (in.args.size() >= 5 && in.args[3].kind == MalArg::Kind::kNum &&
         in.args[3].num != 0 && in.args[4].kind == MalArg::Kind::kNum &&
         in.args[4].num != 0);
    int mode = 0;
    if (inclusive) {
      auto col = ctx->catalog->GetSegmented(handle);
      if (col.ok() && (*col)->sql_type() == ValType::kDbl) {
        mode = in.Is("algebra", "uselect") ? 2 : 1;
      }
    }

    const int y1 = prog->NewVar("Y");
    const int result = in.rets[0];  // the accumulator takes the select's var
    const int rseg = prog->NewVar("rseg");
    const int t1 = mode == 0 ? prog->NewVar("T") : -1;

    MalInstr take;
    take.module = "bpm";
    take.op = "take";
    take.rets = {y1};
    take.args = {MalArg::Str(handle)};
    out.push_back(take);

    MalInstr mknew;
    mknew.module = "bpm";
    mknew.op = "new";
    mknew.rets = {result};
    out.push_back(mknew);

    MalInstr barrier;
    barrier.kind = MalInstr::Kind::kBarrier;
    barrier.module = "bpm";
    barrier.op = "newIterator";
    barrier.rets = {rseg};
    barrier.args = {MalArg::Var(y1), lo, hi, MalArg::Num(mode)};
    out.push_back(barrier);

    if (mode == 0) {
      MalInstr body = in;  // same select op and bound args, over the segment
      body.rets = {t1};
      body.args.clear();
      body.args.push_back(MalArg::Var(rseg));
      for (const MalArg& a : bound_args) body.args.push_back(a);
      out.push_back(body);
    }

    MalInstr add;
    add.module = "bpm";
    add.op = "addSegment";
    // With push-down the delivered segment IS the filtered result; there is
    // no body select output to accumulate.
    add.args = {MalArg::Var(result),
                MalArg::Var(mode == 0 ? t1 : rseg)};
    out.push_back(add);

    MalInstr redo;
    redo.kind = MalInstr::Kind::kRedo;
    redo.module = "bpm";
    redo.op = "hasMoreElements";
    redo.rets = {rseg};
    redo.args = {MalArg::Var(y1), lo, hi, MalArg::Num(mode)};
    out.push_back(redo);

    MalInstr exit_i;
    exit_i.kind = MalInstr::Kind::kExit;
    exit_i.rets = {rseg};
    out.push_back(exit_i);

    MalInstr adapt;
    adapt.module = "bpm";
    adapt.op = "adapt";
    adapt.args = {MalArg::Var(y1), lo, hi};
    out.push_back(adapt);

    ++rewrites_;
  }

  prog->instrs = std::move(out);
  return Status::OK();
}

}  // namespace socs
