// Tactical optimizer (paper sections 2-3): a MAL-to-MAL transformation
// framework. Passes rewrite plans using global information (the catalog and
// the in-memory segment meta-index) before execution -- the level the paper
// argues self-organization belongs at.
#ifndef SOCS_ENGINE_OPTIMIZER_H_
#define SOCS_ENGINE_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/mal_program.h"

namespace socs {

struct OptContext {
  Catalog* catalog = nullptr;
  /// Filled by EstimateFootprintPass: projected peak bytes touched by scans.
  uint64_t estimated_scan_bytes = 0;
};

class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;
  virtual std::string Name() const = 0;
  virtual Status Apply(MalProgram* prog, OptContext* ctx) = 0;
};

/// Runs passes in registration order.
class PassManager {
 public:
  void Add(std::unique_ptr<OptimizerPass> pass) {
    passes_.push_back(std::move(pass));
  }
  Status Run(MalProgram* prog, OptContext* ctx);
  size_t NumPasses() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<OptimizerPass>> passes_;
};

/// Removes pure instructions whose results are never used.
class DeadCodeElimPass : public OptimizerPass {
 public:
  std::string Name() const override { return "deadcode"; }
  Status Apply(MalProgram* prog, OptContext* ctx) override;

  /// Ops with side effects (never eliminated even if their result is unused).
  static bool HasSideEffects(const MalInstr& in);
};

/// Sums the estimated bytes every select over a segmented column must touch,
/// using only the segment meta-index (paper section 3.1: the catalog lets the
/// optimizer estimate the memory footprint without touching data).
class EstimateFootprintPass : public OptimizerPass {
 public:
  std::string Name() const override { return "footprint"; }
  Status Apply(MalProgram* prog, OptContext* ctx) override;
};

/// Cost-based plan choice over the same meta-index estimates: when a
/// select's cover degenerates to ~the whole column split across several
/// segments, per-iteration segment delivery buys no pruning -- it only pays
/// the barrier-loop interpreter overhead and the O(n^2) bpm.addSegment
/// accumulator copies. This pass flags such iterators for *coalesced*
/// delivery (bpm.newIterator 5th arg; see SegmentedColumn::ScanCoverBat):
/// the whole cover arrives as one BAT in one iteration, with byte-identical
/// per-segment metered accounting.
class PlanChoicePass : public OptimizerPass {
 public:
  /// Coalesce when the cover's estimated bytes reach this fraction of the
  /// whole column and span at least kMinCoverSegments segments.
  static constexpr double kCoalesceFraction = 0.9;
  static constexpr uint64_t kMinCoverSegments = 2;

  std::string Name() const override { return "planchoice"; }
  Status Apply(MalProgram* prog, OptContext* ctx) override;

  /// Iterators flagged for coalesced delivery so far (test/diagnostic hook).
  uint64_t coalesced() const { return coalesced_; }

 private:
  uint64_t coalesced_ = 0;
};

/// Builds the default tactical pipeline: segment optimizer, footprint
/// estimation, cost-based plan choice, dead-code elimination.
PassManager MakeDefaultPipeline();

}  // namespace socs

#endif  // SOCS_ENGINE_OPTIMIZER_H_
