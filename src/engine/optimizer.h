// Tactical optimizer (paper sections 2-3): a MAL-to-MAL transformation
// framework. Passes rewrite plans using global information (the catalog and
// the in-memory segment meta-index) before execution -- the level the paper
// argues self-organization belongs at.
#ifndef SOCS_ENGINE_OPTIMIZER_H_
#define SOCS_ENGINE_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/mal_program.h"

namespace socs {

struct OptContext {
  Catalog* catalog = nullptr;
  /// Filled by EstimateFootprintPass: projected peak bytes touched by scans.
  uint64_t estimated_scan_bytes = 0;
};

class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;
  virtual std::string Name() const = 0;
  virtual Status Apply(MalProgram* prog, OptContext* ctx) = 0;
};

/// Runs passes in registration order.
class PassManager {
 public:
  void Add(std::unique_ptr<OptimizerPass> pass) {
    passes_.push_back(std::move(pass));
  }
  Status Run(MalProgram* prog, OptContext* ctx);
  size_t NumPasses() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<OptimizerPass>> passes_;
};

/// Removes pure instructions whose results are never used.
class DeadCodeElimPass : public OptimizerPass {
 public:
  std::string Name() const override { return "deadcode"; }
  Status Apply(MalProgram* prog, OptContext* ctx) override;

  /// Ops with side effects (never eliminated even if their result is unused).
  static bool HasSideEffects(const MalInstr& in);
};

/// Sums the estimated bytes every select over a segmented column must touch,
/// using only the segment meta-index (paper section 3.1: the catalog lets the
/// optimizer estimate the memory footprint without touching data).
class EstimateFootprintPass : public OptimizerPass {
 public:
  std::string Name() const override { return "footprint"; }
  Status Apply(MalProgram* prog, OptContext* ctx) override;
};

/// Builds the default tactical pipeline: segment optimizer, footprint
/// estimation, dead-code elimination.
PassManager MakeDefaultPipeline();

}  // namespace socs

#endif  // SOCS_ENGINE_OPTIMIZER_H_
