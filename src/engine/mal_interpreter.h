// MAL interpreter: executes MAL programs against a catalog. Implements the
// operator modules the paper's plans use (algebra.*, bat.*, aggr.*, sql.*,
// calc.*) plus the bpm.* runtime of the segment optimizer, including
// barrier/redo/exit guarded blocks for the segment iterator.
#ifndef SOCS_ENGINE_MAL_INTERPRETER_H_
#define SOCS_ENGINE_MAL_INTERPRETER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "core/strategy.h"
#include "engine/bpm.h"
#include "engine/catalog.h"
#include "engine/mal_program.h"
#include "exec/task_scheduler.h"

namespace socs {

/// The result of sql.exportResult: named result columns.
struct ResultSet {
  struct Col {
    std::string name;
    BatPtr bat;
  };
  std::vector<Col> cols;

  uint64_t NumRows() const { return cols.empty() ? 0 : cols[0].bat->size(); }
};

/// A runtime value bound to a MAL variable.
class EngineValue {
 public:
  enum class Kind { kNil, kNum, kStr, kBat, kIter, kSegCol, kResultSet };

  EngineValue() : kind_(Kind::kNil) {}
  static EngineValue Nil() { return EngineValue(); }
  static EngineValue Number(double v);
  static EngineValue String(std::string s);
  static EngineValue OfBat(Bat b);
  static EngineValue Iter(int iter_id);
  static EngineValue SegCol(SegmentedColumn* col);
  static EngineValue RSet(std::shared_ptr<ResultSet> rs);

  Kind kind() const { return kind_; }
  bool is_nil() const { return kind_ == Kind::kNil; }
  double num() const;
  const std::string& str() const;
  const BatPtr& bat() const;
  int iter() const;
  SegmentedColumn* segcol() const;
  const std::shared_ptr<ResultSet>& rset() const;

 private:
  Kind kind_;
  double num_ = 0.0;
  std::string str_;
  BatPtr bat_;
  int iter_ = -1;
  SegmentedColumn* segcol_ = nullptr;
  std::shared_ptr<ResultSet> rset_;
};

class MalInterpreter {
 public:
  explicit MalInterpreter(Catalog* catalog);

  /// Attaches the parallel execution subsystem. With a threaded scheduler
  /// the bpm iterator prefetches every covering segment across the pool
  /// (committing the metering lanes in delivery order, so last_execution()
  /// and the IoStats totals stay byte-identical to a single-threaded run),
  /// and bpm.adapt enqueues idle maintenance (deferred batch flushes) on the
  /// background lane. Pass nullptr (the default state) for the sequential
  /// engine.
  void set_exec(TaskScheduler* sched) { sched_ = sched; }

  /// Attaches (or detaches, with nullptr) a dispatcher scan batch: push-down
  /// segment deliveries (bpm.newIterator mode != 0) look up / publish their
  /// filtered sets in the batch's cooperative cache under `consumer`'s
  /// registered predicate. Raw deliveries (mode 0) never touch the pass, so
  /// a mis-analyzed statement degrades to the per-query path. The pass must
  /// outlive the Run() calls made while attached.
  void set_shared_scan(SharedScanPass<OidValue>* pass, size_t consumer) {
    shared_pass_ = pass;
    shared_consumer_ = consumer;
  }

  /// Executes the program. Returns the exported result set (empty set if the
  /// program exports nothing).
  StatusOr<std::shared_ptr<ResultSet>> Run(const MalProgram& prog);

  /// Per-query execution record assembled during the last Run(): the
  /// selection half comes from the metered segment deliveries of
  /// bpm.newIterator / hasMoreElements, the adaptation half from bpm.adapt's
  /// Reorganize call -- together the same totals a direct
  /// AccessStrategy::RunRange would report.
  const QueryExecution& last_execution() const { return last_exec_; }

 private:
  struct ExecContext {
    std::vector<EngineValue> vars;
    std::vector<std::unique_ptr<BpmIterator>> iters;
    std::shared_ptr<ResultSet> exported;
  };

  using Handler =
      std::function<StatusOr<EngineValue>(ExecContext&, const MalInstr&)>;

  void Register(const std::string& module, const std::string& op, Handler h);
  void RegisterBuiltins();

  /// Evaluates one call instruction (assign/barrier/redo bodies).
  StatusOr<EngineValue> Eval(ExecContext& ctx, const MalInstr& in);

  /// Shared delivery step of bpm.newIterator / bpm.hasMoreElements: the next
  /// covering segment as a BAT through the metered ScanSegment API (folding
  /// the scan into last_exec_), or Nil when the iterator is exhausted.
  EngineValue DeliverNextSegment(BpmIterator* it, double lo, double hi);

  // Argument helpers (Status-checked).
  static StatusOr<double> NumArg(const ExecContext& ctx, const MalInstr& in,
                                 size_t i);
  static StatusOr<std::string> StrArg(const ExecContext& ctx, const MalInstr& in,
                                      size_t i);
  static StatusOr<BatPtr> BatArg(const ExecContext& ctx, const MalInstr& in,
                                 size_t i);

  /// Fans the iterator's segments out across the scheduler's pool (called
  /// at newIterator when a threaded scheduler is attached), bounded to a
  /// window of in-flight slots; DeliverNextSegment refills the window.
  void PrefetchSegments(BpmIterator* it);
  void SubmitPrefetchSlot(BpmIterator* it, size_t i);

  Catalog* catalog_;
  std::map<std::string, Handler> handlers_;
  std::map<int, int> iter_of_var_;  // barrier var -> iterator id (per Run)
  QueryExecution last_exec_;
  TaskScheduler* sched_ = nullptr;
  SharedScanPass<OidValue>* shared_pass_ = nullptr;
  size_t shared_consumer_ = 0;
};

}  // namespace socs

#endif  // SOCS_ENGINE_MAL_INTERPRETER_H_
