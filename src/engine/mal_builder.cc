#include "engine/mal_builder.h"

namespace socs {

int MalBuilder::Call(const std::string& module, const std::string& op,
                     std::vector<MalArg> args, const std::string& hint) {
  MalInstr in;
  in.module = module;
  in.op = op;
  in.args = std::move(args);
  const int ret = prog_->NewVar(hint);
  in.rets = {ret};
  prog_->instrs.push_back(std::move(in));
  return ret;
}

void MalBuilder::CallVoid(const std::string& module, const std::string& op,
                          std::vector<MalArg> args) {
  MalInstr in;
  in.module = module;
  in.op = op;
  in.args = std::move(args);
  prog_->instrs.push_back(std::move(in));
}

int MalBuilder::Barrier(const std::string& module, const std::string& op,
                        std::vector<MalArg> args, const std::string& hint) {
  MalInstr in;
  in.kind = MalInstr::Kind::kBarrier;
  in.module = module;
  in.op = op;
  in.args = std::move(args);
  const int ret = prog_->NewVar(hint);
  in.rets = {ret};
  prog_->instrs.push_back(std::move(in));
  return ret;
}

void MalBuilder::Redo(int barrier_var, const std::string& module,
                      const std::string& op, std::vector<MalArg> args) {
  MalInstr in;
  in.kind = MalInstr::Kind::kRedo;
  in.module = module;
  in.op = op;
  in.args = std::move(args);
  in.rets = {barrier_var};
  prog_->instrs.push_back(std::move(in));
}

void MalBuilder::Exit(int barrier_var) {
  MalInstr in;
  in.kind = MalInstr::Kind::kExit;
  in.rets = {barrier_var};
  prog_->instrs.push_back(std::move(in));
}

}  // namespace socs
