// Segment optimizer pass (paper section 3.1): detects selections over
// segmented columns and rewrites them into a segment-aware instruction
// sequence. The pattern
//     Xb := sql.bind("sys", T, C, 0);          -- C under adaptive management
//     Xs := algebra.(u)select(Xb, lo, hi...);
// becomes
//     Y1 := bpm.take("sys_T_C");
//     Y2 := bpm.new();
//     barrier rseg := bpm.newIterator(Y1, lo, hi, mode);
//       T1 := algebra.(u)select(rseg, lo, hi...);   -- only when mode = 0
//       bpm.addSegment(Y2, T1);                     -- (Y2, rseg) when mode != 0
//     redo rseg := bpm.hasMoreElements(Y1, lo, hi, mode);
//     exit rseg;
//     bpm.adapt(Y1, lo, hi);                    -- the reorganizing module
//     Xs := Y2;  (Y2 takes Xs's variable)
// The leftover sql.bind becomes dead code and is removed by DeadCodeElimPass.
//
// Selection push-down: for plainly inclusive bounds over a double-typed
// column the pass sets mode != 0 (1 for select, 2 for uselect), asking the
// iterator for *filtered* delivery -- the metered scan and the predicate
// filter become one pass and the MAL-side body select disappears. The
// filtered BAT shapes match the body select's outputs exactly, so plans,
// results and accounting are indistinguishable downstream.
//
// The iterator delivers segments through the strategy's metered ScanSegment
// (selection half), while bpm.adapt runs only the Reorganize phase
// (adaptation half): each covering segment is scanned exactly once per query.
#ifndef SOCS_ENGINE_SEGMENT_OPTIMIZER_H_
#define SOCS_ENGINE_SEGMENT_OPTIMIZER_H_

#include "engine/optimizer.h"

namespace socs {

class SegmentOptimizerPass : public OptimizerPass {
 public:
  std::string Name() const override { return "segments"; }
  Status Apply(MalProgram* prog, OptContext* ctx) override;

  /// Number of selections rewritten by the last Apply().
  int rewrites() const { return rewrites_; }

 private:
  int rewrites_ = 0;
};

}  // namespace socs

#endif  // SOCS_ENGINE_SEGMENT_OPTIMIZER_H_
