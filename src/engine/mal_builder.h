// Convenience builder for MAL programs.
#ifndef SOCS_ENGINE_MAL_BUILDER_H_
#define SOCS_ENGINE_MAL_BUILDER_H_

#include <string>
#include <vector>

#include "engine/mal_program.h"

namespace socs {

class MalBuilder {
 public:
  explicit MalBuilder(MalProgram* prog) : prog_(prog) {}

  /// ret := module.op(args); returns ret.
  int Call(const std::string& module, const std::string& op,
           std::vector<MalArg> args, const std::string& hint = "X");

  /// module.op(args) with no return value.
  void CallVoid(const std::string& module, const std::string& op,
                std::vector<MalArg> args);

  /// barrier ret := module.op(args); returns the barrier variable.
  int Barrier(const std::string& module, const std::string& op,
              std::vector<MalArg> args, const std::string& hint = "rseg");

  /// redo barrier_var := module.op(args);
  void Redo(int barrier_var, const std::string& module, const std::string& op,
            std::vector<MalArg> args);

  /// exit barrier_var;
  void Exit(int barrier_var);

  MalProgram* program() { return prog_; }

 private:
  MalProgram* prog_;
};

}  // namespace socs

#endif  // SOCS_ENGINE_MAL_BUILDER_H_
