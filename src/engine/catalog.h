// Catalog: maps SQL tables/columns onto BATs and segmented columns. The SQL
// compiler maps relational tables into collections of BATs whose head is an
// oid (paper section 2); columns under adaptive management are registered as
// SegmentedColumn handles the segment optimizer can discover.
//
// Concurrency: one catalog is shared by every server session, so the catalog
// maps and the plain-column payloads are guarded by a reader/writer mutex --
// reads (Bind, RowCount, lookups) take it shared, registration and the
// plain-column write path (AppendPlain/Grow) exclusive. Bind *snapshots* a
// plain column (the returned BAT owns a copy), so an executing plan never
// reads a vector another session is appending to. Segmented columns
// synchronize on their own per-column latch; the catalog mutex only covers
// the handle lookup. Statement-level write atomicity (the oid base a
// compiled INSERT captured staying the tail until its appends land) is the
// per-table write lock, held by a session for the whole INSERT execution --
// see LockTableWrites.
#ifndef SOCS_ENGINE_CATALOG_H_
#define SOCS_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "common/status.h"
#include "engine/bpm.h"

namespace socs {

class Catalog {
 public:
  /// Registers a plain (positional, non-segmented) column.
  Status AddColumn(const std::string& table, const std::string& column,
                   TypedVector values);

  /// Registers a column managed by an adaptive strategy.
  Status AddSegmentedColumn(const std::string& table, const std::string& column,
                            std::unique_ptr<SegmentedColumn> sc);

  bool HasTable(const std::string& table) const;
  bool HasColumn(const std::string& table, const std::string& column) const;
  bool IsSegmented(const std::string& table, const std::string& column) const;

  /// sql.bind: the column as a BAT. Plain columns bind as [void, T]; for a
  /// segmented column this synthesizes a full [oid, T] scan (the unoptimized
  /// fallback -- the segment optimizer avoids it).
  StatusOr<Bat> Bind(const std::string& table, const std::string& column) const;

  /// The bpm.take handle ("sys_<table>_<column>").
  StatusOr<SegmentedColumn*> GetSegmented(const std::string& handle) const;
  SegmentedColumn* GetSegmentedOrNull(const std::string& table,
                                      const std::string& column) const;

  static std::string SegHandle(const std::string& table, const std::string& column) {
    return "sys_" + table + "_" + column;
  }

  /// Column names in declaration order -- the positional order a
  /// column-list-free INSERT binds its VALUES to.
  std::vector<std::string> ColumnNames(const std::string& table) const;
  StatusOr<uint64_t> RowCount(const std::string& table) const;

  /// Registered table names (sorted). Checkpointing walks these.
  std::vector<std::string> TableNames() const;

  /// A copy of a plain column's payload (snapshot under the shared lock).
  /// Fails for segmented columns -- their state is the strategy's.
  StatusOr<TypedVector> PlainColumn(const std::string& table,
                                    const std::string& column) const;

  /// Every registered segmented column (stable order). The server's shutdown
  /// drain walks these to force a final maintenance pass per column.
  std::vector<SegmentedColumn*> SegmentedColumns() const;

  /// Statement-scoped write lock for `table`: a session executing an INSERT
  /// holds this from before sql.rowCount until after sql.grow, so concurrent
  /// sessions inserting into one table cannot interleave their oid-base
  /// reads with each other's appends (which would assign duplicate row ids).
  /// Reads never take it -- a SELECT racing an INSERT sees each column's
  /// committed prefix. Returns an unlocked dummy for unknown tables (the
  /// statement will fail cleanly at compile/execute time instead).
  std::unique_lock<std::mutex> LockTableWrites(const std::string& table);

  // --- the write path (INSERT bookkeeping) -----------------------------------

  /// sql.append: appends `values` to a plain column's tail (segmented
  /// columns take the bpm.append path instead). The table's row count is NOT
  /// bumped here -- Grow() commits it once per INSERT after every column of
  /// the table received its values.
  Status AppendPlain(const std::string& table, const std::string& column,
                     const std::vector<double>& values);

  /// sql.grow: commits an INSERT's row-count growth (+delta rows).
  Status Grow(const std::string& table, uint64_t delta);

 private:
  struct ColumnEntry {
    bool segmented = false;
    TypedVector plain;                       // when !segmented
    std::unique_ptr<SegmentedColumn> seg;    // when segmented
  };
  struct TableEntry {
    std::map<std::string, ColumnEntry> columns;
    std::vector<std::string> column_order;  // declaration order
    uint64_t rows = 0;
    bool rows_known = false;
    // Statement-scoped INSERT serialization (LockTableWrites). Behind a
    // unique_ptr so TableEntry stays movable; the map node gives it a
    // stable address.
    std::unique_ptr<std::mutex> write_mu = std::make_unique<std::mutex>();
  };

  Status CheckRowCount(TableEntry& t, uint64_t rows, const std::string& what);

  // Guards tables_/seg_handles_ and the plain payloads within (see the file
  // comment). Sessions holding it never call back into the catalog, so the
  // catalog -> column-latch lock order is acyclic.
  mutable std::shared_mutex mu_;
  std::map<std::string, TableEntry> tables_;
  std::map<std::string, SegmentedColumn*> seg_handles_;
};

}  // namespace socs

#endif  // SOCS_ENGINE_CATALOG_H_
