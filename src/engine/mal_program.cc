#include "engine/mal_program.h"

#include <sstream>

namespace socs {

int MalProgram::NewVar(const std::string& hint) {
  const int id = static_cast<int>(var_names_.size());
  var_names_.push_back(hint + std::to_string(id));
  return id;
}

namespace {
void PrintArg(std::ostringstream& os, const MalArg& a, const MalProgram& p) {
  switch (a.kind) {
    case MalArg::Kind::kVar: os << p.VarName(a.var); break;
    case MalArg::Kind::kNum: os << a.num; break;
    case MalArg::Kind::kStr: os << '"' << a.str << '"'; break;
  }
}
}  // namespace

std::string MalProgram::ToString() const {
  std::ostringstream os;
  int indent = 0;
  for (const MalInstr& in : instrs) {
    if (in.kind == MalInstr::Kind::kExit && indent > 0) --indent;
    for (int i = 0; i < indent * 2 + 2; ++i) os << ' ';
    switch (in.kind) {
      case MalInstr::Kind::kBarrier: os << "barrier "; break;
      case MalInstr::Kind::kRedo: os << "redo "; break;
      case MalInstr::Kind::kExit: os << "exit "; break;
      case MalInstr::Kind::kAssign: break;
    }
    for (size_t r = 0; r < in.rets.size(); ++r) {
      os << VarName(in.rets[r]) << (r + 1 < in.rets.size() ? ", " : "");
    }
    if (in.kind == MalInstr::Kind::kExit) {
      os << ";\n";
      continue;
    }
    if (!in.rets.empty()) os << " := ";
    os << in.module << '.' << in.op << '(';
    for (size_t a = 0; a < in.args.size(); ++a) {
      PrintArg(os, in.args[a], *this);
      if (a + 1 < in.args.size()) os << ", ";
    }
    os << ");\n";
    if (in.kind == MalInstr::Kind::kBarrier) ++indent;
  }
  return os.str();
}

}  // namespace socs
