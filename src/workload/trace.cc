#include "workload/trace.h"

#include <cstdio>

namespace socs {

Status SaveTrace(const Workload& workload, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::NotFound("cannot open for write: " + path);
  for (const RangeQuery& q : workload) {
    std::fprintf(f, "%.17g %.17g\n", q.range.lo, q.range.hi);
  }
  std::fclose(f);
  return Status::OK();
}

StatusOr<Workload> LoadTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open for read: " + path);
  Workload w;
  double lo, hi;
  int line = 0;
  while (true) {
    const int got = std::fscanf(f, "%lg %lg", &lo, &hi);
    if (got == EOF) break;
    ++line;
    if (got != 2 || lo > hi) {
      std::fclose(f);
      return Status::InvalidArgument("bad trace line " + std::to_string(line) +
                                     " in " + path);
    }
    w.push_back(RangeQuery(lo, hi));
  }
  std::fclose(f);
  return w;
}

}  // namespace socs
