// Synthetic SkyServer substitute (paper section 6.2). The paper ran against
// a 100GB SDSS-4 sample; the column of interest is the right ascension `ra`
// (a 4-byte real) of the photo-object table, queried by spatial searches like
//   select objId from P where ra between 205.1 and 205.12.
// We synthesize (a) an `ra` column of ~45M floats (~180MB, the column mass
// implied by the paper's Table 2) laid out in SDSS-like survey stripes, and
// (b) the three 200-query workloads the paper extracted from a one-month
// query log: `random` (uniform over the footprint), `skew` (two very
// narrow hot regions), and `changing` (four 50-query phases with a moving
// point of access). See DESIGN.md for why this substitution preserves the
// paper's behaviour.
#ifndef SOCS_WORKLOAD_SKYSERVER_H_
#define SOCS_WORKLOAD_SKYSERVER_H_

#include <cstdint>
#include <vector>

#include "workload/range_generator.h"

namespace socs {

struct SkyServerConfig {
  /// Right-ascension footprint of the simulated sample, in degrees.
  ValueRange footprint{110.0, 260.0};
  /// Number of photo objects (ra values). Default ~45M -> ~180MB of float32.
  size_t num_objects = 45'000'000;
  /// Number of survey stripes the objects cluster into.
  int num_stripes = 15;
  /// Query window widths in degrees (drawn uniformly from this range).
  double min_width_deg = 0.05;
  double max_width_deg = 0.50;
  uint64_t seed = 2008;
};

/// Synthesizes the `ra` column: a mixture of `num_stripes` dense stripes
/// (uniform within each stripe) over the footprint plus a sparse background.
std::vector<float> MakeRaColumn(const SkyServerConfig& cfg);

/// `random` workload: n queries placed uniformly over the footprint.
Workload MakeRandomWorkload(const SkyServerConfig& cfg, size_t n = 200);

/// `skew` workload: n queries confined to two very limited areas.
Workload MakeSkewedWorkload(const SkyServerConfig& cfg, size_t n = 200);

/// `changing` workload: `phases` blocks of n/phases queries, each block
/// confined to a different narrow area (the paper's four pieces of 50).
Workload MakeChangingWorkload(const SkyServerConfig& cfg, size_t n = 200,
                              int phases = 4);

}  // namespace socs

#endif  // SOCS_WORKLOAD_SKYSERVER_H_
