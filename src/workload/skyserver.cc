#include "workload/skyserver.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace socs {

namespace {

/// Clamps a query window into the footprint.
RangeQuery WindowAt(double lo, double width, const ValueRange& fp) {
  lo = std::clamp(lo, fp.lo, fp.hi - width);
  return RangeQuery(lo, lo + width);
}

double NextWidth(Rng& rng, const SkyServerConfig& cfg) {
  return rng.NextUniform(cfg.min_width_deg, cfg.max_width_deg);
}

}  // namespace

std::vector<float> MakeRaColumn(const SkyServerConfig& cfg) {
  SOCS_CHECK_GT(cfg.num_stripes, 0);
  Rng rng(cfg.seed);
  // Stripe centers spread over the footprint with jitter; ~90% of objects
  // fall into stripes, the rest is uniform background.
  struct Stripe {
    double lo, hi;
  };
  std::vector<Stripe> stripes;
  const double span = cfg.footprint.Span();
  for (int s = 0; s < cfg.num_stripes; ++s) {
    const double center = cfg.footprint.lo +
                          span * (s + 0.5) / cfg.num_stripes +
                          rng.NextGaussian(0.0, span * 0.01);
    const double half_width = rng.NextUniform(1.0, 2.5);
    stripes.push_back({std::max(cfg.footprint.lo, center - half_width),
                       std::min(cfg.footprint.hi, center + half_width)});
  }
  std::vector<float> ra;
  ra.reserve(cfg.num_objects);
  for (size_t i = 0; i < cfg.num_objects; ++i) {
    double v;
    if (rng.NextDouble() < 0.9) {
      const Stripe& st = stripes[rng.NextBelow(stripes.size())];
      v = rng.NextUniform(st.lo, st.hi);
    } else {
      v = rng.NextUniform(cfg.footprint.lo, cfg.footprint.hi);
    }
    ra.push_back(static_cast<float>(v));
  }
  return ra;
}

Workload MakeRandomWorkload(const SkyServerConfig& cfg, size_t n) {
  Rng rng(cfg.seed ^ 0xabcd01);
  Workload w;
  w.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double width = NextWidth(rng, cfg);
    const double lo = rng.NextUniform(cfg.footprint.lo, cfg.footprint.hi - width);
    w.push_back(WindowAt(lo, width, cfg.footprint));
  }
  return w;
}

Workload MakeSkewedWorkload(const SkyServerConfig& cfg, size_t n) {
  Rng rng(cfg.seed ^ 0xabcd02);
  // Two very limited areas of the domain (paper: "access two very limited
  // areas"), each ~2 degrees wide.
  const double span = cfg.footprint.Span();
  const ValueRange hot1{cfg.footprint.lo + 0.30 * span,
                        cfg.footprint.lo + 0.30 * span + 2.0};
  const ValueRange hot2{cfg.footprint.lo + 0.70 * span,
                        cfg.footprint.lo + 0.70 * span + 2.0};
  Workload w;
  w.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const ValueRange& hot = rng.NextDouble() < 0.5 ? hot1 : hot2;
    const double width = NextWidth(rng, cfg);
    const double lo = rng.NextUniform(hot.lo, hot.hi);
    w.push_back(WindowAt(lo, width, cfg.footprint));
  }
  return w;
}

Workload MakeChangingWorkload(const SkyServerConfig& cfg, size_t n, int phases) {
  SOCS_CHECK_GT(phases, 0);
  Rng rng(cfg.seed ^ 0xabcd03);
  const double span = cfg.footprint.Span();
  Workload w;
  w.reserve(n);
  const size_t per_phase = n / phases;
  for (int ph = 0; ph < phases; ++ph) {
    // Each phase focuses on a different narrow area (~3 degrees).
    const double base = cfg.footprint.lo + span * (0.12 + 0.22 * ph);
    const ValueRange area{base, base + 3.0};
    const size_t count = (ph + 1 == phases) ? n - per_phase * (phases - 1)
                                            : per_phase;
    for (size_t i = 0; i < count; ++i) {
      const double width = NextWidth(rng, cfg);
      const double lo = rng.NextUniform(area.lo, area.hi);
      w.push_back(WindowAt(lo, width, cfg.footprint));
    }
  }
  return w;
}

}  // namespace socs
