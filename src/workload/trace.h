// Query-trace persistence: save/load a workload as a plain-text file
// ("lo hi" per line), so experiments can be replayed and diffed.
#ifndef SOCS_WORKLOAD_TRACE_H_
#define SOCS_WORKLOAD_TRACE_H_

#include <string>

#include "common/status.h"
#include "workload/range_generator.h"

namespace socs {

Status SaveTrace(const Workload& workload, const std::string& path);
StatusOr<Workload> LoadTrace(const std::string& path);

}  // namespace socs

#endif  // SOCS_WORKLOAD_TRACE_H_
