#include "workload/range_generator.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace socs {

UniformRangeGenerator::UniformRangeGenerator(ValueRange domain, double selectivity,
                                             uint64_t seed)
    : domain_(domain), width_(domain.Span() * selectivity), rng_(seed) {
  SOCS_CHECK_GT(selectivity, 0.0);
  SOCS_CHECK_LE(selectivity, 1.0);
}

RangeQuery UniformRangeGenerator::Next() {
  const double lo = rng_.NextUniform(domain_.lo, domain_.hi - width_);
  return RangeQuery(lo, lo + width_);
}

ZipfRangeGenerator::ZipfRangeGenerator(ValueRange domain, double selectivity,
                                       uint64_t seed, double theta, uint64_t bins,
                                       bool scramble, bool align)
    : domain_(domain), width_(domain.Span() * selectivity), rng_(seed),
      zipf_(bins, theta), align_(align) {
  SOCS_CHECK_GT(selectivity, 0.0);
  SOCS_CHECK_LE(selectivity, 1.0);
  bin_of_rank_.resize(bins);
  std::iota(bin_of_rank_.begin(), bin_of_rank_.end(), 0u);
  if (scramble) {
    Rng scramble_rng(seed ^ 0x5ca3b1e);
    Shuffle(bin_of_rank_, scramble_rng);
  }
}

RangeQuery ZipfRangeGenerator::Next() {
  const uint64_t rank = zipf_.Next(rng_);
  const uint64_t bin = bin_of_rank_[rank];
  const double cell = domain_.Span() / static_cast<double>(bin_of_rank_.size());
  double lo = domain_.lo + cell * static_cast<double>(bin);
  if (!align_) lo += rng_.NextDouble() * cell;
  lo = std::min(lo, domain_.hi - width_);
  return RangeQuery(lo, lo + width_);
}

std::vector<int32_t> MakeUniformIntColumn(size_t n, int32_t domain_size,
                                          uint64_t seed) {
  SOCS_CHECK_GT(domain_size, 0);
  Rng rng(seed);
  std::vector<int32_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<int32_t>(rng.NextBelow(domain_size)));
  }
  return values;
}

}  // namespace socs
