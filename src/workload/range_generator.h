// Range-query workload generators for the simulation experiments (paper
// section 6.1): range selections of a fixed selectivity whose *placement*
// over the attribute domain is uniform or skewed (Zipf).
#ifndef SOCS_WORKLOAD_RANGE_GENERATOR_H_
#define SOCS_WORKLOAD_RANGE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/range.h"

namespace socs {

using Workload = std::vector<RangeQuery>;

class QueryGenerator {
 public:
  virtual ~QueryGenerator() = default;
  virtual RangeQuery Next() = 0;
  virtual std::string Name() const = 0;

  Workload Generate(size_t n) {
    Workload w;
    w.reserve(n);
    for (size_t i = 0; i < n; ++i) w.push_back(Next());
    return w;
  }
};

/// Uniform placement: the query window (width = selectivity * domain span)
/// starts anywhere in the domain with equal probability.
class UniformRangeGenerator : public QueryGenerator {
 public:
  UniformRangeGenerator(ValueRange domain, double selectivity, uint64_t seed);
  RangeQuery Next() override;
  std::string Name() const override { return "uniform"; }

 private:
  ValueRange domain_;
  double width_;
  Rng rng_;
};

/// Skewed placement: the domain is divided into `bins` cells; a Zipf draw
/// picks the cell (rank 0 = hottest), the window starts uniformly inside it.
/// By default ranks map to cells in order (the hot area sits at the domain's
/// low end and cold areas stay untouched for a long time -- the behaviour
/// behind the paper's Fig. 6/9 observations); with `scramble` the rank->cell
/// mapping is shuffled so hot spots scatter over the domain.
class ZipfRangeGenerator : public QueryGenerator {
 public:
  /// With `align`, windows start exactly at cell boundaries, so queries into
  /// the same cell repeat verbatim -- hot selections then create exact-fit
  /// segments that later repeats reuse (the regime behind the paper's low
  /// Z/0.01 read sizes in Table 1).
  ZipfRangeGenerator(ValueRange domain, double selectivity, uint64_t seed,
                     double theta = 1.0, uint64_t bins = 1000,
                     bool scramble = false, bool align = false);
  RangeQuery Next() override;
  std::string Name() const override { return "zipf"; }

 private:
  ValueRange domain_;
  double width_;
  Rng rng_;
  ZipfGenerator zipf_;
  bool align_;
  std::vector<uint32_t> bin_of_rank_;  // rank -> (possibly scrambled) cell
};

/// Generates the simulation column: `n` values drawn uniformly from the
/// integer domain [0, domain_size).
std::vector<int32_t> MakeUniformIntColumn(size_t n, int32_t domain_size,
                                          uint64_t seed);

}  // namespace socs

#endif  // SOCS_WORKLOAD_RANGE_GENERATOR_H_
