#include "sim/io_stats.h"

#include <sstream>

#include "common/units.h"

namespace socs {

IoStats& IoStats::operator+=(const IoStats& o) {
  mem_read_bytes += o.mem_read_bytes;
  mem_write_bytes += o.mem_write_bytes;
  disk_read_bytes += o.disk_read_bytes;
  disk_write_bytes += o.disk_write_bytes;
  segments_created += o.segments_created;
  segments_freed += o.segments_freed;
  segments_scanned += o.segments_scanned;
  decode_bytes += o.decode_bytes;
  encode_bytes += o.encode_bytes;
  segments_recompressed += o.segments_recompressed;
  kernel_scans += o.kernel_scans;
  return *this;
}

IoStats IoStats::operator-(const IoStats& o) const {
  IoStats d;
  d.mem_read_bytes = mem_read_bytes - o.mem_read_bytes;
  d.mem_write_bytes = mem_write_bytes - o.mem_write_bytes;
  d.disk_read_bytes = disk_read_bytes - o.disk_read_bytes;
  d.disk_write_bytes = disk_write_bytes - o.disk_write_bytes;
  d.segments_created = segments_created - o.segments_created;
  d.segments_freed = segments_freed - o.segments_freed;
  d.segments_scanned = segments_scanned - o.segments_scanned;
  d.decode_bytes = decode_bytes - o.decode_bytes;
  d.encode_bytes = encode_bytes - o.encode_bytes;
  d.segments_recompressed = segments_recompressed - o.segments_recompressed;
  d.kernel_scans = kernel_scans - o.kernel_scans;
  return d;
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "mem_read=" << FormatBytes(mem_read_bytes)
     << " mem_write=" << FormatBytes(mem_write_bytes)
     << " disk_read=" << FormatBytes(disk_read_bytes)
     << " disk_write=" << FormatBytes(disk_write_bytes)
     << " seg_created=" << segments_created << " seg_freed=" << segments_freed
     << " seg_scanned=" << segments_scanned;
  if (decode_bytes > 0 || encode_bytes > 0 || segments_recompressed > 0) {
    os << " decode=" << FormatBytes(decode_bytes)
       << " encode=" << FormatBytes(encode_bytes)
       << " seg_recompressed=" << segments_recompressed;
  }
  if (kernel_scans > 0) os << " kernel_scans=" << kernel_scans;
  return os.str();
}

}  // namespace socs
