// Per-worker metering lane for parallel scan fan-out. Under the single-pass
// protocol every covering segment is charged exactly once; when the scan
// phase runs across workers, each scan charges a *lane* instead of the
// shared IoStats, and the lanes are merged back deterministically -- in
// cover order, at the query's fold point -- so an N-thread run reports
// byte-identical IoStats totals (and bit-identical simulated seconds) to the
// single-threaded run.
//
// The lane also journals its buffer-pool touches: the pool's LRU bookkeeping
// cannot be mutated mid-fan-out without racing other scanners, so the touch
// (with the hit/miss outcome observed against the pool's resident set at
// scan time) is recorded here and replayed by SegmentSpace::CommitLane in
// the same deterministic order the stats merge in.
//
// Scope of the byte-identity guarantee: it holds unconditionally for the
// *unbounded* buffer pool (capacity 0, the paper's simulation setting and
// the default everywhere), where every probe is a hit. With a
// capacity-bounded pool, a probe observes the resident set as of whichever
// lane commits preceded it -- the fan-out start for the core RunRange
// barrier path, possibly mid-delivery state for the engine's pipelined
// prefetch -- rather than the exact mid-query evolution a sequential run
// would see, so hit/miss attribution (disk bytes/seconds) can differ from
// the 1-thread interleaving while remaining internally consistent and
// race-free. Run bounded-pool experiments single-threaded when exact
// sequential equivalence matters.
#ifndef SOCS_SIM_IO_LANE_H_
#define SOCS_SIM_IO_LANE_H_

#include <cstdint>
#include <vector>

#include "sim/io_stats.h"

namespace socs {

/// One deferred buffer-pool touch (segment ids are storage-layer uint64s).
struct PoolTouch {
  uint64_t segment_id = 0;
  uint64_t bytes = 0;
  bool hit = false;  // outcome observed at scan time
};

struct IoLane {
  IoStats stats;
  std::vector<PoolTouch> touches;

  bool Empty() const {
    return touches.empty() && stats.mem_read_bytes == 0 &&
           stats.mem_write_bytes == 0 && stats.segments_scanned == 0;
  }
  void Clear() {
    stats.Clear();
    touches.clear();
  }
};

}  // namespace socs

#endif  // SOCS_SIM_IO_LANE_H_
